// Section V-B — the O(mn^2) time / O(mn) space claims, measured.
//
// We time the literal Section-V implementation (naive inner scan, the
// paper's O(mn^2)) and the optimized window-min variant across n, fit the
// time-vs-n power law, and account the index structure's O(mn) footprint.
#include <cstdio>
#include <vector>

#include "core/request_index.hpp"
#include "harness_solvers.hpp"
#include "trace/generators.hpp"
#include "util/stats.hpp"
#include "util/stopwatch.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace dpg;

namespace {

Flow flow_of_first_item(const RequestSequence& seq) {
  return make_item_flow(seq, 0);
}

double time_solver(const Flow& flow, const CostModel& model, std::size_t m,
                   bool fast, int repeats) {
  OptimalOfflineOptions options;
  options.fast_range_min = fast;
  options.build_schedule = false;
  Stopwatch watch;
  for (int r = 0; r < repeats; ++r) {
    const SolveResult result = solve_optimal_offline(flow, model, m, options);
    (void)result;
  }
  return watch.elapsed_seconds() / repeats;
}

}  // namespace

int main() {
  std::printf("Section V-B: time O(mn^2), space O(mn) — measured scaling\n\n");
  const CostModel model{1.0, 1.0, 0.8};
  const std::size_t m = 16;

  // Adversarial request pattern for the naive scan: frequent same-server
  // revisits keep the D-window wide.
  TextTable table({"n", "naive (ms)", "window-min (ms)", "index bytes"});
  std::vector<double> ns, naive_times, fast_times;
  for (const std::size_t n : {500u, 1000u, 2000u, 4000u, 8000u}) {
    UniformTraceConfig config;
    config.server_count = m;
    config.item_count = 1;
    config.request_count = n;
    Rng rng(7);
    const RequestSequence seq = generate_uniform_trace(config, rng);
    const Flow flow = flow_of_first_item(seq);

    const int repeats = n <= 1000 ? 20 : 5;
    const double naive = time_solver(flow, model, m, false, repeats);
    const double fast = time_solver(flow, model, m, true, repeats);
    // The Section-V structures: per node an m-size snapshot of int32.
    const std::size_t index_bytes = (flow.size() + 1) * m * sizeof(std::int32_t);
    ns.push_back(static_cast<double>(n));
    naive_times.push_back(naive);
    fast_times.push_back(fast);
    table.add_row({std::to_string(n), format_fixed(naive * 1e3, 3),
                   format_fixed(fast * 1e3, 3), std::to_string(index_bytes)});
  }
  std::printf("%s\n", table.render().c_str());

  const PowerFit naive_fit = fit_power_law(ns, naive_times);
  const PowerFit fast_fit = fit_power_law(ns, fast_times);
  std::printf("naive D-scan   : time ~ n^%s (R^2 %s) on uniform traces\n",
              format_fixed(naive_fit.exponent, 2).c_str(),
              format_fixed(naive_fit.r_squared, 3).c_str());
  std::printf("window-min     : time ~ n^%s (R^2 %s) — near-linear\n",
              format_fixed(fast_fit.exponent, 2).c_str(),
              format_fixed(fast_fit.r_squared, 3).c_str());
  std::printf("space          : index snapshots are exactly (n+1)*m*4 bytes "
              "= O(mn)\n\n");

  // Worst case: the round-robin pattern keeps every D window m nodes wide,
  // so the naive scan does Θ(mn) = Θ(n²/rounds) work — the paper's O(mn²)
  // term made visible.
  std::printf("adversarial round-robin pattern (m = n/4, the O(mn^2) regime):\n");
  TextTable adversarial({"n", "naive (ms)", "window-min (ms)"});
  std::vector<double> adv_ns, adv_naive;
  for (const std::size_t n : {1024u, 2048u, 4096u, 8192u}) {
    AdversarialWindowConfig config;
    config.server_count = n / 4;
    config.rounds = 4;
    const RequestSequence seq = generate_adversarial_window_trace(config);
    const Flow flow = flow_of_first_item(seq);
    const int repeats = n <= 2048 ? 10 : 3;
    const double naive = time_solver(flow, model, config.server_count, false,
                                     repeats);
    const double fast = time_solver(flow, model, config.server_count, true,
                                    repeats);
    adv_ns.push_back(static_cast<double>(n));
    adv_naive.push_back(naive);
    adversarial.add_row({std::to_string(n), format_fixed(naive * 1e3, 3),
                         format_fixed(fast * 1e3, 3)});
  }
  std::printf("%s\n", adversarial.render().c_str());
  const PowerFit adv_fit = fit_power_law(adv_ns, adv_naive);
  std::printf("naive D-scan on the adversarial pattern: time ~ n^%s "
              "(R^2 %s) — the quadratic worst case\n",
              format_fixed(adv_fit.exponent, 2).c_str(),
              format_fixed(adv_fit.r_squared, 3).c_str());
  return 0;
}
