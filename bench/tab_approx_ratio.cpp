// Theorem 1 empirically — C_DPG / C* <= 2/alpha.
//
// C* (the optimum of the packed model) is lower-bounded by
// alpha * (C1_opt + C2_opt) (Lemma 1), with the per-item optima taken from
// exhaustive search on small instances and from the (brute-force-validated)
// DP on larger ones.  We report the worst observed ratio against that
// lower bound per alpha; staying below 2/alpha confirms the theorem's
// chain on random workloads.
#include <algorithm>
#include <cstdio>

#include "harness_solvers.hpp"
#include "trace/generators.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace dpg;

namespace {

RequestSequence random_two_item_trace(Rng& rng, std::size_t n,
                                      std::size_t servers, double co) {
  SequenceBuilder builder(servers, 2);
  Time t = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    t += 0.125 * static_cast<Time>(rng.next_int(1, 16));
    std::vector<ItemId> items;
    if (rng.next_bool(co)) {
      items = {0, 1};
    } else {
      items = {rng.next_bool(0.5) ? ItemId{0} : ItemId{1}};
    }
    builder.add(static_cast<ServerId>(rng.next_below(servers)), t,
                std::move(items));
  }
  return std::move(builder).build();
}

}  // namespace

int main() {
  std::printf("Theorem 1: C_DPG <= (2/alpha) * C*  — empirical check\n\n");

  TextTable table({"alpha", "bound 2/a", "worst vs a(C1+C2)", "mean",
                   "instances", "anchor"});
  for (const double alpha : {0.2, 0.4, 0.6, 0.8, 1.0}) {
    const CostModel model{1.0, 1.0, alpha};
    DpGreedyOptions options;
    options.theta = 0.0;  // always pack co-occurring items
    Rng rng(0xABCD + static_cast<std::uint64_t>(alpha * 10));

    double worst = 0.0, sum = 0.0;
    std::size_t count = 0;

    // Small instances anchored to exhaustive search.
    for (int trial = 0; trial < 60; ++trial) {
      const RequestSequence seq = random_two_item_trace(rng, 9, 3, 0.5);
      const double dpg = solve_dp_greedy(seq, model, options).total_cost;
      const double c1 = solve_bruteforce(make_item_flow(seq, 0), model).raw_cost;
      const double c2 = solve_bruteforce(make_item_flow(seq, 1), model).raw_cost;
      const double lb = alpha * (c1 + c2);
      if (lb <= 0.0) continue;
      const double ratio = dpg / lb;
      worst = std::max(worst, ratio);
      sum += ratio;
      ++count;
    }
    // Larger instances anchored to the (bruteforce-validated) DP.
    for (int trial = 0; trial < 60; ++trial) {
      const RequestSequence seq = random_two_item_trace(rng, 120, 6, 0.5);
      const double dpg = solve_dp_greedy(seq, model, options).total_cost;
      const double c1 =
          solve_optimal_offline(make_item_flow(seq, 0), model, 6).raw_cost;
      const double c2 =
          solve_optimal_offline(make_item_flow(seq, 1), model, 6).raw_cost;
      const double lb = alpha * (c1 + c2);
      if (lb <= 0.0) continue;
      const double ratio = dpg / lb;
      worst = std::max(worst, ratio);
      sum += ratio;
      ++count;
    }

    table.add_row({format_fixed(alpha, 1), format_fixed(2.0 / alpha, 2),
                   format_fixed(worst, 4),
                   format_fixed(sum / static_cast<double>(count), 4),
                   std::to_string(count), "BF + DP"});
    if (worst > 2.0 / alpha + 1e-9) {
      std::printf("!! BOUND VIOLATED at alpha=%.1f: %.4f > %.4f\n", alpha,
                  worst, 2.0 / alpha);
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("the worst observed ratio stays below 2/alpha for every alpha,\n"
              "consistent with Theorem 1 (the lower bound makes the check\n"
              "conservative: the true C* can only be larger).\n");
  return 0;
}
