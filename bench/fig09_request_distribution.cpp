// Fig. 9 — the spatial distribution of requests over the city's zones.
// The paper plots the Shenzhen taxi trace's request scatter; our substitute
// fleet must show the same qualitative skew: a few hotspot zones absorbing
// a large share of the requests.
#include <algorithm>
#include <cstdio>

#include "harness_common.hpp"
#include "trace/stats.hpp"
#include "util/strings.hpp"

using namespace dpg;

int main() {
  harness::print_header(
      "Fig. 9: distribution of requests across city zones",
      "requests concentrate around commercial hotspots (heavy spatial skew)");

  const RequestSequence trace = harness::evaluation_trace();
  const TraceStats stats = compute_trace_stats(trace);
  std::printf("%s\n", render_spatial_distribution(stats, 48).c_str());

  std::vector<std::size_t> sorted = stats.per_server;
  std::sort(sorted.rbegin(), sorted.rend());
  std::size_t top5 = 0;
  for (std::size_t i = 0; i < 5 && i < sorted.size(); ++i) top5 += sorted[i];
  std::printf("summary: %zu requests over %zu zones, horizon %s\n",
              stats.request_count, stats.server_count,
              format_fixed(stats.horizon, 1).c_str());
  std::printf("skew: top-5 zones hold %s%% of all requests "
              "(uniform would be %s%%)\n",
              format_fixed(100.0 * static_cast<double>(top5) /
                               static_cast<double>(stats.request_count), 1)
                  .c_str(),
              format_fixed(100.0 * 5.0 / static_cast<double>(stats.server_count), 1)
                  .c_str());
  return 0;
}
