// Fig. 11 — impact of the Jaccard similarity of a packed pair on the
// average service cost of DP_Greedy, against the Optimal single-item
// baseline.  The paper's claim: the higher J, the better DP_Greedy does,
// with the curves crossing around J ≈ 0.3 (which is why θ = 0.3).
//
// We sweep pairs whose Jaccard we control directly (paired generator) so
// the x-axis is dense and monotone, and report the measured crossover.
#include <cstdio>

#include "harness_common.hpp"
#include "harness_solvers.hpp"
#include "trace/generators.hpp"
#include "util/strings.hpp"
#include "util/svg_chart.hpp"
#include "util/table.hpp"

using namespace dpg;

int main() {
  harness::print_header(
      "Fig. 11: impact of Jaccard similarity on DP_Greedy vs Optimal",
      "DP_Greedy improves with J; curves cross near J = θ = 0.3");

  PairedTraceConfig config;
  config.server_count = 50;
  config.requests_per_pair = 800;
  config.mean_gap = 1.7;  // calibrated: puts the crossover at J ≈ 0.3
  config.pair_jaccard.clear();
  for (double j = 0.05; j <= 0.92; j += 0.05) config.pair_jaccard.push_back(j);
  Rng rng(42);
  const RequestSequence trace = generate_paired_trace(config, rng);

  CostModel model;
  model.mu = 1.0;
  model.lambda = 1.0;
  model.alpha = 0.8;

  const OptimalBaselineResult optimal = solve_optimal_baseline(trace, model);

  TextTable table({"target J", "measured J", "DP_Greedy ave", "Optimal ave",
                   "winner"});
  std::vector<std::pair<double, double>> dpg_series, opt_series;
  double crossover = -1.0;
  for (std::size_t p = 0; p < config.pair_jaccard.size(); ++p) {
    const auto a = static_cast<ItemId>(2 * p);
    const auto b = static_cast<ItemId>(2 * p + 1);
    const std::size_t co = trace.pair_frequency(a, b);
    const double measured = jaccard_similarity(trace.item_frequency(a),
                                               trace.item_frequency(b), co);
    const PackageReport report =
        solve_pair_package(trace, model, ItemPair{a, b, measured});
    const double dpg_ave = report.ave_cost();
    const double opt_ave = optimal.pair_ave_cost(a, b);
    if (crossover < 0.0 && dpg_ave <= opt_ave) {
      crossover = config.pair_jaccard[p];
    }
    dpg_series.emplace_back(measured, dpg_ave);
    opt_series.emplace_back(measured, opt_ave);
    table.add_row({format_fixed(config.pair_jaccard[p], 2),
                   format_fixed(measured, 3), format_fixed(dpg_ave, 4),
                   format_fixed(opt_ave, 4),
                   dpg_ave <= opt_ave ? "DP_Greedy" : "Optimal"});
  }
  std::printf("%s\n", table.render().c_str());
  if (crossover >= 0.0) {
    std::printf("measured crossover: DP_Greedy overtakes Optimal at J ≈ %s "
                "(paper: ≈ 0.3)\n",
                format_fixed(crossover, 2).c_str());
  } else {
    std::printf("no crossover in the swept range\n");
  }

  SvgChart chart("Fig. 11 — ave cost vs Jaccard similarity (α=0.8, θ=0.3)",
                 "Jaccard similarity J", "average cost");
  chart.add_series("DP_Greedy", dpg_series, "#1f77b4");
  chart.add_series("Optimal", opt_series, "#d62728");
  chart.write_file("fig11.svg");
  std::printf("chart written to fig11.svg\n");
  return 0;
}
