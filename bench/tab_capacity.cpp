// Replica footprint (extension).  The paper's model treats cloud cache
// capacity as unbounded; this harness replays each algorithm's plan and
// reports the capacity a deployment would actually need: peak concurrent
// replicas overall and on the busiest server, plus total cache-hours.
#include <algorithm>
#include <cstdio>

#include "harness_common.hpp"
#include "sim/replay.hpp"
#include "harness_solvers.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace dpg;

namespace {

ReplayMetrics replay_dpg(const RequestSequence& trace, const CostModel& model,
                         double theta, Cost* unmaterialized_singleton_cost) {
  DpGreedyOptions options;
  options.theta = theta;
  const DpGreedyResult result = solve_dp_greedy(trace, model, options);
  std::vector<FlowPlan> plans;
  *unmaterialized_singleton_cost = 0.0;
  for (const PackageReport& r : result.packages) {
    plans.push_back(FlowPlan{make_package_flow(trace, r.pair.a, r.pair.b),
                             r.package_schedule, "package"});
    // Phase 2's greedy singleton services are decision costs without a
    // materialized schedule; report them alongside the replayed part.
    *unmaterialized_singleton_cost += r.singleton_cost;
  }
  for (const SingleItemReport& r : result.singles) {
    plans.push_back(FlowPlan{make_item_flow(trace, r.item), r.schedule, "item"});
  }
  return replay_plans(plans, model, trace.server_count());
}

ReplayMetrics replay_optimal(const RequestSequence& trace,
                             const CostModel& model) {
  const OptimalBaselineResult result = solve_optimal_baseline(trace, model);
  std::vector<FlowPlan> plans;
  for (const OptimalItemReport& r : result.items) {
    plans.push_back(FlowPlan{make_item_flow(trace, r.item), r.schedule, "item"});
  }
  return replay_plans(plans, model, trace.server_count());
}

ReplayMetrics replay_package_served(const RequestSequence& trace,
                                    const CostModel& model, double theta) {
  const PackageServedResult result = solve_package_served(trace, model, theta);
  std::vector<FlowPlan> plans;
  for (const PackageServedPair& r : result.pairs) {
    plans.push_back(FlowPlan{make_union_flow(trace, {r.pair.a, r.pair.b}),
                             r.schedule, "package"});
  }
  for (const OptimalItemReport& r : result.singles) {
    plans.push_back(FlowPlan{make_item_flow(trace, r.item), r.schedule, "item"});
  }
  return replay_plans(plans, model, trace.server_count());
}

void emit_row(TextTable& table, const char* name, const ReplayMetrics& m) {
  std::size_t busiest = 0;
  for (const std::size_t peak : m.per_server_peak_copies) {
    busiest = std::max(busiest, peak);
  }
  table.add_row({name, format_fixed(m.total_cost, 1),
                 std::to_string(m.transfer_count),
                 format_fixed(m.total_cache_time, 1),
                 std::to_string(m.peak_concurrent_copies),
                 std::to_string(busiest),
                 format_fixed(m.cache_hit_ratio(), 3)});
}

}  // namespace

int main() {
  harness::print_header(
      "replica footprint of each algorithm (operational replay)",
      "cost-optimal plans also need modest capacity (bounded peak replicas)");

  const RequestSequence trace = harness::evaluation_trace();
  CostModel model;
  model.mu = 1.0;
  model.lambda = 2.0;
  model.alpha = 0.8;

  TextTable table({"algorithm", "cost", "transfers", "cache-hours",
                   "peak replicas", "busiest server", "hit ratio"});
  emit_row(table, "Optimal", replay_optimal(trace, model));
  emit_row(table, "Package_Served", replay_package_served(trace, model, 0.3));
  Cost singleton_cost = 0.0;
  emit_row(table, "DP_Greedy*", replay_dpg(trace, model, 0.3, &singleton_cost));
  std::printf("%s\n", table.render().c_str());
  std::printf("peak replicas counts copies across all items/packages at one\n"
              "instant; 'busiest server' is the per-zone capacity that would\n"
              "have to be provisioned.\n"
              "* DP_Greedy's row replays its materialized schedules; the\n"
              "  greedy singleton services add %s of decision cost on top\n"
              "  (no physical plan is emitted for them by Algorithm 1).\n",
              format_fixed(singleton_cost, 1).c_str());
  return 0;
}
