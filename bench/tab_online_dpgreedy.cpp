// Online DP_Greedy (extension) vs the offline two-phase algorithm: how much
// does dropping the known-trajectory assumption cost, and how well does the
// sliding-window correlation detector track the true packing?
#include <cstdio>

#include "harness_common.hpp"
#include "harness_solvers.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace dpg;

int main() {
  harness::print_header(
      "online DP_Greedy vs offline DP_Greedy",
      "windowed correlation detection recovers most of the packing benefit");

  const RequestSequence trace = harness::evaluation_trace();
  CostModel model;
  model.mu = 1.0;
  model.lambda = 2.0;
  model.alpha = 0.8;

  DpGreedyOptions offline_options;
  offline_options.theta = 0.3;
  const DpGreedyResult offline = solve_dp_greedy(trace, model, offline_options);
  std::printf("offline DP_Greedy: total %s, ave %s, %zu packages\n\n",
              format_fixed(offline.total_cost, 1).c_str(),
              format_fixed(offline.ave_cost, 4).c_str(),
              offline.packages.size());

  TextTable table({"window", "repack", "total", "ratio vs offline", "packs",
                   "unpacks", "fetches"});
  for (const std::size_t window : {50u, 200u, 800u}) {
    for (const std::size_t repack : {25u, 100u}) {
      OnlineDpGreedyOptions options;
      options.theta = 0.3;
      options.window = window;
      options.repack_interval = repack;
      const OnlineDpGreedyResult online =
          solve_online_dp_greedy(trace, model, options);
      table.add_row({std::to_string(window), std::to_string(repack),
                     format_fixed(online.total_cost, 1),
                     format_fixed(online.total_cost / offline.total_cost, 3),
                     std::to_string(online.pack_events),
                     std::to_string(online.unpack_events),
                     std::to_string(online.package_fetches)});
    }
  }
  std::printf("%s\n", table.render().c_str());

  // The no-packing online floor for context.
  OnlineDpGreedyOptions never;
  never.theta = 1.0;
  const OnlineDpGreedyResult unpacked = solve_online_dp_greedy(trace, model, never);
  std::printf("online without packing (theta=1): total %s "
              "(ratio %s vs offline DP_Greedy)\n",
              format_fixed(unpacked.total_cost, 1).c_str(),
              format_fixed(unpacked.total_cost / offline.total_cost, 3).c_str());
  return 0;
}
