// Streaming-engine perf harness: sustained push ingest rate, the O(window)
// steady-state memory ceiling, snapshot latency under load, the running
// online-vs-offline cost-ratio probe, the decode→push pipeline vs the
// per-push serial serve loop, and the sharded N×M topology vs its serial
// anchors — emitted as the "streaming", "streaming_pipeline" and
// "streaming_sharded" sections of a fragment for dpgreedy_bench to merge
// (see bench/harness/fragment.hpp).
//
// The load-bearing number is the memory ceiling: the stream must hold the
// engine's allocation count *exactly flat* after warm-up — the window ring,
// scratch vectors and package-slot free list are O(window + m + items),
// never O(n).  The harness asserts it (exact engine counters, not RSS
// sampling) and additionally records peak RSS before/after so a baseline
// diff localizes any regression.
//
// Usage: bm_stream [--fragment FILE] [--requests N]
// (default: bm_stream.fragment.json in the CWD, 10M requests; the quick CI
// tier runs 1M — every gate on this section is size-independent.)
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "engine/serve_config.hpp"
#include "engine/serve_pipeline.hpp"
#include "engine/sharded_serve.hpp"
#include "engine/streaming_engine.hpp"
#include "trace/shard_source.hpp"
#include "harness/fragment.hpp"
#include "harness_common.hpp"
#include "trace/block_reader.hpp"
#include "trace/io.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

namespace dpg {
namespace {

// The synthetic serving workload: Zipf-skewed popularity over a small item
// universe with a fixed-partner co-access pull (the regime where epoch
// re-pairing keeps firing), generated procedurally so the harness itself is
// O(1) in stream length — materializing 10M requests up front would defeat
// the point of the memory ceiling.
struct StreamSource {
  Rng rng{4242};
  std::size_t server_count = 24;
  std::size_t item_count = 64;
  double co_access = 0.5;
  Time t = 0.0;
  std::vector<ItemId> items;

  void next() {
    t += 0.125 * static_cast<Time>(rng.next_int(1, 8));
    items.clear();
    // Crude Zipf skew: min of two uniforms biases towards small ids.
    const ItemId a = static_cast<ItemId>(
        std::min(rng.next_below(item_count), rng.next_below(item_count)));
    items.push_back(a);
    if (rng.next_bool(co_access)) {
      const ItemId partner = a ^ 1u;
      if (partner < item_count && partner != a) items.push_back(partner);
    }
  }

  [[nodiscard]] ServerId server() {
    return static_cast<ServerId>(rng.next_below(server_count));
  }
};

StreamingOptions stream_options() {
  StreamingOptions options;
  options.online.theta = 0.4;
  options.online.window = 256;
  options.online.repack_interval = 64;
  return options;
}

/// The main ingest run: `requests` pushes, snapshots on a fixed cadence.
struct IngestReport {
  std::size_t requests = 0;
  std::size_t window = 0;
  double ingest_s = 0.0;
  double requests_per_s = 0.0;
  std::size_t epochs = 0;
  std::size_t live_packages = 0;
  Cost total_cost = 0.0;
  // The ceiling: engine allocation events at the warm-up mark vs the end.
  std::uint64_t allocs_warm = 0;
  std::uint64_t allocs_final = 0;
  bool allocs_flat = false;
  // Snapshot latency over the run (mean / worst, milliseconds).
  std::size_t snapshots = 0;
  double snapshot_mean_ms = 0.0;
  double snapshot_max_ms = 0.0;
  std::uint64_t rss_before = 0;
  std::uint64_t rss_after = 0;
};

IngestReport run_ingest(std::size_t requests) {
  const CostModel model{1.0, 1.0, 0.8};
  StreamingOptions options = stream_options();
  StreamSource source;
  options.item_count_hint = source.item_count;
  options.server_count_hint = source.server_count;
  StreamingEngine engine(model, options);

  IngestReport report;
  report.requests = requests;
  report.window = options.online.window;
  report.rss_before = harness::peak_rss_bytes();

  // Warm-up: several windows + repacks, enough for every scratch vector and
  // the pair-count map to reach steady shape.
  const std::size_t warm_mark =
      std::min(requests / 2, 100 * options.online.window);
  const std::size_t snapshot_every = std::max<std::size_t>(requests / 10, 1);

  double snapshot_total_ms = 0.0;
  Stopwatch ingest_watch;
  for (std::size_t i = 1; i <= requests; ++i) {
    source.next();
    engine.push(source.server(), source.t, source.items);
    if (i == warm_mark) {
      report.allocs_warm = engine.snapshot().state_alloc_events;
    }
    if (i % snapshot_every == 0) {
      Stopwatch snap_watch;
      const StreamingSnapshot snapshot = engine.snapshot();
      const double ms = snap_watch.elapsed_seconds() * 1e3;
      snapshot_total_ms += ms;
      report.snapshot_max_ms = std::max(report.snapshot_max_ms, ms);
      ++report.snapshots;
      report.allocs_final = snapshot.state_alloc_events;
      report.epochs = snapshot.epoch;
      report.live_packages = snapshot.live_packages;
    }
  }
  report.ingest_s = ingest_watch.elapsed_seconds();
  report.requests_per_s =
      static_cast<double>(requests) / std::max(report.ingest_s, 1e-12);
  report.snapshot_mean_ms =
      report.snapshots > 0
          ? snapshot_total_ms / static_cast<double>(report.snapshots)
          : 0.0;
  report.total_cost = engine.finish().total_cost;
  report.allocs_flat = report.allocs_final == report.allocs_warm;
  report.rss_after = harness::peak_rss_bytes();
  return report;
}

/// The ratio probe at bench scale: a shorter stream with the chunked offline
/// optimum enabled, recording the running competitive-ratio estimate and the
/// per-epoch cadence it is refreshed at.
struct ProbeReport {
  std::size_t requests = 0;
  std::size_t probe_chunk = 0;
  std::size_t probe_chunks = 0;
  std::size_t epochs = 0;
  double cost_ratio = 0.0;
  double ingest_s = 0.0;  // probe solves included — the serving-path cost
};

ProbeReport run_probe(std::size_t requests) {
  const CostModel model{1.0, 1.0, 0.8};
  StreamingOptions options = stream_options();
  options.probe_chunk = 10000;
  StreamSource source;
  options.item_count_hint = source.item_count;
  options.server_count_hint = source.server_count;
  StreamingEngine engine(model, options);

  ProbeReport report;
  report.requests = requests;
  report.probe_chunk = options.probe_chunk;
  Stopwatch watch;
  for (std::size_t i = 0; i < requests; ++i) {
    source.next();
    engine.push(source.server(), source.t, source.items);
  }
  (void)engine.finish();
  report.ingest_s = watch.elapsed_seconds();
  report.probe_chunks = engine.probe_chunks();
  report.cost_ratio = engine.cost_ratio();
  report.epochs = engine.epoch();
  return report;
}

/// The decode→push pipeline vs the per-push serial serve path, both reading
/// the same on-disk CSV so the comparison includes the decode work the
/// pipeline overlaps with ingest.  The trace is streamed to disk row by row
/// (never materialized) so the harness stays O(window + batch) in memory.
struct PipelineReport {
  std::size_t requests = 0;
  std::size_t batch_rows = 0;
  std::size_t ring_capacity = 0;
  std::uint64_t trace_bytes = 0;
  double serial_s = 0.0;
  double serial_requests_per_s = 0.0;
  double pipeline_s = 0.0;
  double pipeline_requests_per_s = 0.0;
  double speedup = 0.0;
  bool multicore = false;      // >= 2 hardware threads: the 2x gate arms
  bool bit_identical = false;  // pipeline final report == serial final report
  Cost total_cost = 0.0;
  std::uint64_t allocs_warm = 0;
  std::uint64_t allocs_final = 0;
  bool allocs_flat = false;
  std::uint64_t enqueue_blocked = 0;
  std::uint64_t dequeue_blocked = 0;
};

std::uint64_t write_trace_csv(const std::string& path, std::size_t requests) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  require(file != nullptr, "bm_stream: cannot write " + path);
  std::fputs("server,time,items\n", file);
  StreamSource source;
  for (std::size_t i = 0; i < requests; ++i) {
    source.next();
    const ServerId server = source.server();
    // t advances in exact 0.125 steps, so %.3f round-trips bit-exactly.
    if (source.items.size() == 2) {
      std::fprintf(file, "%u,%.3f,%u;%u\n", server, source.t, source.items[0],
                   source.items[1]);
    } else {
      std::fprintf(file, "%u,%.3f,%u\n", server, source.t, source.items[0]);
    }
  }
  const long bytes = std::ftell(file);
  std::fclose(file);
  return bytes > 0 ? static_cast<std::uint64_t>(bytes) : 0;
}

StreamingEngine make_pipeline_engine() {
  StreamingOptions options = stream_options();
  StreamSource shape;  // only for the universe hints
  options.item_count_hint = shape.item_count;
  options.server_count_hint = shape.server_count;
  return StreamingEngine(CostModel{1.0, 1.0, 0.8}, options);
}

bool reports_identical(const RunReport& a, const RunReport& b) {
  return a.total_cost == b.total_cost && a.raw_cost == b.raw_cost &&
         a.cache_cost == b.cache_cost && a.transfer_cost == b.transfer_cost &&
         a.total_item_accesses == b.total_item_accesses &&
         a.package_count == b.package_count &&
         a.unpack_events == b.unpack_events &&
         a.transfer_events == b.transfer_events &&
         a.cache_segments == b.cache_segments;
}

PipelineReport run_pipeline_compare(const std::string& trace_path,
                                    std::size_t requests) {
  PipelineReport report;
  report.requests = requests;
  report.multicore = std::thread::hardware_concurrency() >= 2;
  report.trace_bytes = write_trace_csv(trace_path, requests);

  // Serial baseline: the pre-pipeline serve loop — line-at-a-time CSV
  // decode and one engine.push() per row, all on one thread.
  RunReport serial_report;
  {
    std::ifstream file(trace_path, std::ios::binary);
    require(file.is_open(), "bm_stream: cannot reopen " + trace_path);
    CsvStreamReader reader(file, trace_path);
    StreamingEngine engine = make_pipeline_engine();
    CsvStreamRow row;
    Stopwatch watch;
    while (reader.next(row)) engine.push(row.server, row.time, row.items);
    report.serial_s = watch.elapsed_seconds();
    serial_report = engine.finish();
  }

  // Pipelined: chunked CSV decode on a producer thread, block hand-off over
  // the SPSC ring, push_batch on this thread — the `serve --pipeline` path.
  RunReport pipeline_report;
  {
    std::ifstream file(trace_path, std::ios::binary);
    require(file.is_open(), "bm_stream: cannot reopen " + trace_path);
    ServeConfig options;  // serve defaults: batch 1024, ring 8
    report.batch_rows = options.batch_rows;
    report.ring_capacity = options.ring_capacity;
    CsvBlockReader source(file, trace_path, options.batch_rows);
    StreamingEngine engine = make_pipeline_engine();
    const std::size_t warm_mark =
        std::min(requests / 2, 100 * stream_options().online.window);
    bool warm_done = false;
    Stopwatch watch;
    const ServePipelineStats stats = run_serve_pipeline(
        source, engine, options,
        [&](const RequestBlock&, const StreamingDecision&, std::size_t rows) {
          if (!warm_done && rows >= warm_mark) {
            report.allocs_warm = engine.snapshot().state_alloc_events;
            warm_done = true;
          }
        });
    report.pipeline_s = watch.elapsed_seconds();
    report.allocs_final = engine.snapshot().state_alloc_events;
    report.enqueue_blocked = stats.enqueue_blocked;
    report.dequeue_blocked = stats.dequeue_blocked;
    pipeline_report = engine.finish();
  }

  report.serial_requests_per_s =
      static_cast<double>(requests) / std::max(report.serial_s, 1e-12);
  report.pipeline_requests_per_s =
      static_cast<double>(requests) / std::max(report.pipeline_s, 1e-12);
  report.speedup = report.serial_s / std::max(report.pipeline_s, 1e-12);
  report.bit_identical = reports_identical(serial_report, pipeline_report);
  report.total_cost = pipeline_report.total_cost;
  report.allocs_flat = report.allocs_final == report.allocs_warm;
  std::remove(trace_path.c_str());
  return report;
}

/// The sharded N×M topology against its two determinism anchors, plus the
/// throughput floor: a 2×1 run must reproduce the 1×1 pipeline report
/// bit-for-bit (M = 1 ingests the exact global stream), and a 2×2 run by
/// item set must reproduce a serial routed two-engine reference (the
/// canonical partitioned answer).  Timing compares the 2×2 run to the
/// serial per-push loop over the same on-disk CSV.
struct ShardedReport {
  std::size_t requests = 0;
  std::size_t shards = 2;
  std::size_t partitions = 2;
  std::size_t batch_rows = 0;
  std::size_t ring_capacity = 0;
  double serial_s = 0.0;
  double serial_requests_per_s = 0.0;
  double sharded_s = 0.0;
  double sharded_requests_per_s = 0.0;
  double speedup = 0.0;
  bool multicore = false;  // >= 4 hardware threads: the 2x gate arms
  bool bit_identical = false;         // 2x1 == 1x1 pipeline (and serial)
  bool partitioned_identical = false;  // 2x2 == routed serial reference
  Cost total_cost = 0.0;
  std::uint64_t allocs_warm = 0;
  std::uint64_t allocs_final = 0;
  bool allocs_flat = false;
  std::uint64_t enqueue_blocked = 0;
  std::uint64_t dequeue_blocked = 0;
};

ShardedReport run_sharded_compare(const std::string& trace_path,
                                  std::size_t requests) {
  ShardedReport report;
  report.requests = requests;
  report.multicore = std::thread::hardware_concurrency() >= 4;
  write_trace_csv(trace_path, requests);
  const CostModel model{1.0, 1.0, 0.8};
  StreamingOptions eopts = stream_options();
  StreamSource shape;  // only for the universe hints
  eopts.item_count_hint = shape.item_count;
  eopts.server_count_hint = shape.server_count;

  const auto open_trace = [&trace_path] {
    std::ifstream file(trace_path, std::ios::binary);
    require(file.is_open(), "bm_stream: cannot reopen " + trace_path);
    return file;
  };

  // Anchor 1: the 1×1 pipeline report (PR 9's own anchor is the per-push
  // loop, so matching this transitively matches both).
  RunReport pipeline_report;
  {
    std::ifstream file = open_trace();
    const ServeConfig config;
    CsvBlockReader source(file, trace_path, config.batch_rows);
    StreamingEngine engine(model, eopts);
    run_serve_pipeline(source, engine, config, {});
    pipeline_report = engine.finish();
  }

  // Timing baseline: the serial per-push loop (decode + push, one thread).
  {
    std::ifstream file = open_trace();
    CsvStreamReader reader(file, trace_path);
    StreamingEngine engine(model, eopts);
    CsvStreamRow row;
    Stopwatch watch;
    while (reader.next(row)) engine.push(row.server, row.time, row.items);
    report.serial_s = watch.elapsed_seconds();
    (void)engine.finish();
  }

  // 2×1: two decode shards, one engine partition — bit-identity required.
  {
    std::ifstream file = open_trace();
    ServeConfig config;
    config.shards(2).partitions(1);
    CsvClaimSource source(file, trace_path, config.batch_rows, 0);
    const ShardedServeResult result =
        run_sharded_serve(source, model, config, eopts);
    report.bit_identical =
        result.feed_error.empty() &&
        reports_identical(result.report, pipeline_report);
  }

  // Anchor 2: the serial routed reference for M = 2 by item set — decode on
  // one thread, route every row with the same hash, merge in partition
  // order.  This is the canonical partitioned answer the 2×2 run must hit.
  RunReport reference_report;
  {
    std::ifstream file = open_trace();
    CsvStreamReader reader(file, trace_path);
    std::vector<std::unique_ptr<StreamingEngine>> engines;
    for (std::size_t j = 0; j < 2; ++j) {
      engines.push_back(std::make_unique<StreamingEngine>(model, eopts));
    }
    CsvStreamRow row;
    while (reader.next(row)) {
      const std::size_t j = serve_partition_of(
          row.server, row.items, ServeRoute::kByItemSet, engines.size());
      engines[j]->push(row.server, row.time, row.items);
    }
    std::vector<RunReport> parts;
    parts.reserve(engines.size());
    for (auto& engine : engines) parts.push_back(engine->finish());
    reference_report = merge_partition_reports(parts);
  }

  // The timed 2×2 run, snapshotting on the ingest cadence for the
  // allocation ceiling (merged state_alloc_events sums the partitions).
  {
    std::ifstream file = open_trace();
    ServeConfig config;
    config.shards(2).partitions(2).route(ServeRoute::kByItemSet).snapshot_every(
        std::max<std::size_t>(requests / 10, 1));
    report.batch_rows = config.batch_rows;
    report.ring_capacity = config.ring_capacity;
    CsvClaimSource source(file, trace_path, config.batch_rows, 0);
    const std::size_t warm_mark =
        std::min(requests / 2, 100 * eopts.online.window);
    bool warm_done = false;
    Stopwatch watch;
    const ShardedServeResult result = run_sharded_serve(
        source, model, config, eopts,
        [&](const StreamingSnapshot& s, std::size_t rows) {
          if (!warm_done && rows >= warm_mark) {
            report.allocs_warm = s.state_alloc_events;
            warm_done = true;
          }
          report.allocs_final = s.state_alloc_events;
        });
    report.sharded_s = watch.elapsed_seconds();
    report.partitioned_identical =
        result.feed_error.empty() &&
        reports_identical(result.report, reference_report);
    report.total_cost = result.report.total_cost;
    report.enqueue_blocked = result.stats.enqueue_blocked;
    report.dequeue_blocked = result.stats.dequeue_blocked;
    report.allocs_flat = warm_done &&
                         report.allocs_final == report.allocs_warm;
  }

  report.serial_requests_per_s =
      static_cast<double>(requests) / std::max(report.serial_s, 1e-12);
  report.sharded_requests_per_s =
      static_cast<double>(requests) / std::max(report.sharded_s, 1e-12);
  report.speedup = report.serial_s / std::max(report.sharded_s, 1e-12);
  std::remove(trace_path.c_str());
  return report;
}

int run(const std::string& fragment_path, std::size_t requests) {
  std::printf("streaming ingest (%zu requests) ...\n", requests);
  const IngestReport ingest = run_ingest(requests);
  std::printf("ratio probe ...\n");
  const ProbeReport probe = run_probe(std::min<std::size_t>(requests, 200000));
  // Sampled before the pipeline comparison so the streaming section's RSS
  // gate keeps measuring the engine alone, not the CSV decode buffers.
  const std::uint64_t streaming_peak_rss = harness::peak_rss_bytes();
  std::printf("pipeline vs per-push (%zu requests via on-disk CSV) ...\n",
              requests);
  const PipelineReport pipeline =
      run_pipeline_compare(fragment_path + ".trace.csv", requests);
  std::printf("sharded 2x1/2x2 vs serial (%zu requests via on-disk CSV) ...\n",
              requests);
  const ShardedReport sharded =
      run_sharded_compare(fragment_path + ".sharded.csv", requests);

  std::ostringstream section;
  section.setf(std::ios::fixed);
  section.precision(3);
  section << "{\"requests\": " << ingest.requests
          << ", \"window\": " << ingest.window
          << ", \"ingest_s\": " << ingest.ingest_s
          << ", \"requests_per_s\": " << ingest.requests_per_s
          << ", \"epochs\": " << ingest.epochs
          << ", \"live_packages\": " << ingest.live_packages
          << ", \"total_cost\": " << ingest.total_cost
          << ", \"allocs_warm\": " << ingest.allocs_warm
          << ", \"allocs_final\": " << ingest.allocs_final
          << ", \"allocs_flat\": " << (ingest.allocs_flat ? "true" : "false")
          << ", \"snapshots\": " << ingest.snapshots
          << ", \"snapshot_mean_ms\": " << ingest.snapshot_mean_ms
          << ", \"snapshot_max_ms\": " << ingest.snapshot_max_ms
          << ", \"rss_before_bytes\": " << ingest.rss_before
          << ", \"rss_after_bytes\": " << ingest.rss_after
          << ", \"ratio_probe\": {\"requests\": " << probe.requests
          << ", \"probe_chunk\": " << probe.probe_chunk
          << ", \"probe_chunks\": " << probe.probe_chunks
          << ", \"epochs\": " << probe.epochs
          << ", \"cost_ratio\": " << probe.cost_ratio
          << ", \"ingest_s\": " << probe.ingest_s
          << "}, \"peak_rss_bytes\": " << streaming_peak_rss << "}";

  std::ostringstream pipe_section;
  pipe_section.setf(std::ios::fixed);
  pipe_section.precision(3);
  pipe_section << "{\"requests\": " << pipeline.requests
               << ", \"batch_rows\": " << pipeline.batch_rows
               << ", \"ring_capacity\": " << pipeline.ring_capacity
               << ", \"trace_bytes\": " << pipeline.trace_bytes
               << ", \"serial_s\": " << pipeline.serial_s
               << ", \"serial_requests_per_s\": "
               << pipeline.serial_requests_per_s
               << ", \"pipeline_s\": " << pipeline.pipeline_s
               << ", \"pipeline_requests_per_s\": "
               << pipeline.pipeline_requests_per_s
               << ", \"speedup\": " << pipeline.speedup << ", \"multicore\": "
               << (pipeline.multicore ? "true" : "false")
               << ", \"bit_identical\": "
               << (pipeline.bit_identical ? "true" : "false")
               << ", \"total_cost\": " << pipeline.total_cost
               << ", \"allocs_warm\": " << pipeline.allocs_warm
               << ", \"allocs_final\": " << pipeline.allocs_final
               << ", \"allocs_flat\": "
               << (pipeline.allocs_flat ? "true" : "false")
               << ", \"enqueue_blocked\": " << pipeline.enqueue_blocked
               << ", \"dequeue_blocked\": " << pipeline.dequeue_blocked
               << ", \"peak_rss_bytes\": " << harness::peak_rss_bytes() << "}";

  std::ostringstream shard_section;
  shard_section.setf(std::ios::fixed);
  shard_section.precision(3);
  shard_section << "{\"requests\": " << sharded.requests
                << ", \"shards\": " << sharded.shards
                << ", \"partitions\": " << sharded.partitions
                << ", \"batch_rows\": " << sharded.batch_rows
                << ", \"ring_capacity\": " << sharded.ring_capacity
                << ", \"serial_s\": " << sharded.serial_s
                << ", \"serial_requests_per_s\": "
                << sharded.serial_requests_per_s
                << ", \"sharded_s\": " << sharded.sharded_s
                << ", \"sharded_requests_per_s\": "
                << sharded.sharded_requests_per_s
                << ", \"speedup\": " << sharded.speedup << ", \"multicore\": "
                << (sharded.multicore ? "true" : "false")
                << ", \"bit_identical\": "
                << (sharded.bit_identical ? "true" : "false")
                << ", \"partitioned_identical\": "
                << (sharded.partitioned_identical ? "true" : "false")
                << ", \"total_cost\": " << sharded.total_cost
                << ", \"allocs_warm\": " << sharded.allocs_warm
                << ", \"allocs_final\": " << sharded.allocs_final
                << ", \"allocs_flat\": "
                << (sharded.allocs_flat ? "true" : "false")
                << ", \"enqueue_blocked\": " << sharded.enqueue_blocked
                << ", \"dequeue_blocked\": " << sharded.dequeue_blocked
                << ", \"peak_rss_bytes\": " << harness::peak_rss_bytes()
                << "}";

  const int status = bench::write_fragment(
      fragment_path, {{"streaming", section.str()},
                      {"streaming_pipeline", pipe_section.str()},
                      {"streaming_sharded", shard_section.str()}});
  if (status == 0) std::printf("wrote %s\n", fragment_path.c_str());

  std::printf(
      "ingest: %zu requests in %.2fs (%.2fM req/s)  %zu epochs  "
      "%zu packages live  cost %.2f\n",
      ingest.requests, ingest.ingest_s, ingest.requests_per_s / 1e6,
      ingest.epochs, ingest.live_packages, ingest.total_cost);
  std::printf(
      "memory ceiling: allocs warm %llu -> final %llu (%s)  rss %.1f -> "
      "%.1f MiB\n",
      static_cast<unsigned long long>(ingest.allocs_warm),
      static_cast<unsigned long long>(ingest.allocs_final),
      ingest.allocs_flat ? "FLAT" : "GREW",
      static_cast<double>(ingest.rss_before) / (1024.0 * 1024.0),
      static_cast<double>(ingest.rss_after) / (1024.0 * 1024.0));
  std::printf("snapshot latency: mean %.3f ms  max %.3f ms over %zu\n",
              ingest.snapshot_mean_ms, ingest.snapshot_max_ms,
              ingest.snapshots);
  std::printf(
      "ratio probe: %zu requests, %zu chunks of %zu -> ratio %.3f "
      "(%zu epochs, %.2fs with offline solves)\n",
      probe.requests, probe.probe_chunks, probe.probe_chunk, probe.cost_ratio,
      probe.epochs, probe.ingest_s);

  std::printf(
      "pipeline: serial %.2fs (%.2fM req/s) -> pipelined %.2fs (%.2fM req/s) "
      " speedup %.2fx (%s)  reports %s  allocs %llu -> %llu (%s)  blocked "
      "enq %llu deq %llu\n",
      pipeline.serial_s, pipeline.serial_requests_per_s / 1e6,
      pipeline.pipeline_s, pipeline.pipeline_requests_per_s / 1e6,
      pipeline.speedup, pipeline.multicore ? "multicore" : "single core",
      pipeline.bit_identical ? "IDENTICAL" : "DIVERGED",
      static_cast<unsigned long long>(pipeline.allocs_warm),
      static_cast<unsigned long long>(pipeline.allocs_final),
      pipeline.allocs_flat ? "FLAT" : "GREW",
      static_cast<unsigned long long>(pipeline.enqueue_blocked),
      static_cast<unsigned long long>(pipeline.dequeue_blocked));

  std::printf(
      "sharded: serial %.2fs (%.2fM req/s) -> 2x2 %.2fs (%.2fM req/s)  "
      "speedup %.2fx (%s)  2x1 vs 1x1 %s  2x2 vs reference %s  allocs "
      "%llu -> %llu (%s)  blocked enq %llu deq %llu\n",
      sharded.serial_s, sharded.serial_requests_per_s / 1e6, sharded.sharded_s,
      sharded.sharded_requests_per_s / 1e6, sharded.speedup,
      sharded.multicore ? "multicore" : "single core",
      sharded.bit_identical ? "IDENTICAL" : "DIVERGED",
      sharded.partitioned_identical ? "IDENTICAL" : "DIVERGED",
      static_cast<unsigned long long>(sharded.allocs_warm),
      static_cast<unsigned long long>(sharded.allocs_final),
      sharded.allocs_flat ? "FLAT" : "GREW",
      static_cast<unsigned long long>(sharded.enqueue_blocked),
      static_cast<unsigned long long>(sharded.dequeue_blocked));

  // The acceptance gate: O(window) steady state — the engine's allocation
  // count is bit-flat from warm-up to the end of a 10M-request stream — the
  // probe produced a live ratio, the decode→push pipeline reproduced the
  // serial report bit-exactly, and the sharded topology reproduced both of
  // its anchors (the 2x throughput floors are enforced by the registry
  // gates, armed only on multicore hosts).
  const bool pass = ingest.allocs_flat && probe.probe_chunks > 0 &&
                    probe.cost_ratio > 0.0 && pipeline.bit_identical &&
                    pipeline.allocs_flat && sharded.bit_identical &&
                    sharded.partitioned_identical && sharded.allocs_flat;
  std::printf("streaming acceptance: %s\n", pass ? "PASS" : "FAIL");
  return status != 0 ? status : (pass ? 0 : 2);
}

}  // namespace
}  // namespace dpg

int main(int argc, char** argv) {
  std::string fragment = "bm_stream.fragment.json";
  std::size_t requests = 10000000;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--requests" && i + 1 < argc) {
      requests = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (arg == "--fragment" && i + 1 < argc) {
      fragment = argv[++i];
    } else {
      std::fprintf(stderr, "usage: bm_stream [--fragment FILE] [--requests N]\n");
      return 2;
    }
  }
  return dpg::run(fragment, requests);
}
