// google-benchmark microbenchmarks for the solver substrate: the optimal
// offline DP (both inner-minimum strategies), greedy, the Section-V index
// build, correlation analysis, the full DP_Greedy pipeline, and every
// registry solver end to end (one benchmark per registered name).
//
// `bm_solvers --fragment FILE` skips the google-benchmark suite and instead
// measures the branch-light DP kernels (solver/kernels.hpp) against their
// scalar reference loops, emitting the "dp_kernel" section as a fragment
// for dpgreedy_bench to merge, with a >=2x single-thread speedup gate armed
// (the gate only applies where a SIMD variant compiled).
#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "core/request_index.hpp"
#include "harness/fragment.hpp"
#include "harness_common.hpp"
#include "harness_solvers.hpp"
#include "engine/registry.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "parallel/thread_pool.hpp"
#include "solver/kernels.hpp"
#include "trace/generators.hpp"
#include "util/stopwatch.hpp"

namespace dpg {
namespace {

Flow make_flow(std::size_t n, std::size_t m, std::uint64_t seed) {
  UniformTraceConfig config;
  config.server_count = m;
  config.item_count = 1;
  config.request_count = n;
  Rng rng(seed);
  return make_item_flow(generate_uniform_trace(config, rng), 0);
}

void BM_OptimalOfflineWindowMin(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Flow flow = make_flow(n, 16, 1);
  const CostModel model{1.0, 1.0, 0.8};
  OptimalOfflineOptions options;
  options.build_schedule = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        solve_optimal_offline(flow, model, 16, options).raw_cost);
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_OptimalOfflineWindowMin)->Range(256, 16384)->Complexity();

void BM_OptimalOfflineNaiveScan(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Flow flow = make_flow(n, 16, 1);
  const CostModel model{1.0, 1.0, 0.8};
  OptimalOfflineOptions options;
  options.build_schedule = false;
  options.fast_range_min = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        solve_optimal_offline(flow, model, 16, options).raw_cost);
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_OptimalOfflineNaiveScan)->Range(256, 4096)->Complexity();

void BM_GreedySolve(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Flow flow = make_flow(n, 16, 2);
  const CostModel model{1.0, 1.0, 0.8};
  for (auto _ : state) {
    benchmark::DoNotOptimize(solve_greedy(flow, model, 16).raw_cost);
  }
}
BENCHMARK(BM_GreedySolve)->Range(256, 16384);

void BM_RequestIndexBuild(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto m = static_cast<std::size_t>(state.range(1));
  const Flow flow = make_flow(n, m, 3);
  for (auto _ : state) {
    const RequestIndex index(flow, m);
    benchmark::DoNotOptimize(index.node_count());
  }
}
BENCHMARK(BM_RequestIndexBuild)
    ->Args({1024, 8})
    ->Args({1024, 64})
    ->Args({8192, 8})
    ->Args({8192, 64});

void BM_CorrelationAnalysis(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  ZipfTraceConfig config;
  config.item_count = 10;
  config.request_count = n;
  Rng rng(4);
  const RequestSequence seq = generate_zipf_trace(config, rng);
  for (auto _ : state) {
    const CorrelationAnalysis analysis(seq);
    benchmark::DoNotOptimize(analysis.sorted_pairs().size());
  }
}
BENCHMARK(BM_CorrelationAnalysis)->Range(1024, 16384);

/// Phase-1 representations head to head at growing item counts on a sparse
/// workload (Zipf popularity, pairwise co-access): the dense triangle
/// materializes k(k−1)/2 pairs, the sparse hash only the observed ones.
RequestSequence sparse_phase1_trace(std::size_t k) {
  ZipfTraceConfig config;
  config.server_count = 50;
  config.item_count = k;
  config.request_count = 20000;
  config.co_access = 0.3;
  Rng rng(1234);
  return generate_zipf_trace(config, rng);
}

void BM_CorrelationDense(benchmark::State& state) {
  const RequestSequence seq =
      sparse_phase1_trace(static_cast<std::size_t>(state.range(0)));
  CorrelationOptions options;
  options.mode = CorrelationOptions::Mode::kDense;
  for (auto _ : state) {
    const CorrelationAnalysis analysis(seq, options);
    benchmark::DoNotOptimize(analysis.sorted_pairs().size());
  }
}
BENCHMARK(BM_CorrelationDense)->Arg(256)->Arg(512)->Arg(1024)->Arg(2048);

void BM_CorrelationSparse(benchmark::State& state) {
  const RequestSequence seq =
      sparse_phase1_trace(static_cast<std::size_t>(state.range(0)));
  CorrelationOptions options;
  options.mode = CorrelationOptions::Mode::kSparse;
  for (auto _ : state) {
    const CorrelationAnalysis analysis(seq, options);
    benchmark::DoNotOptimize(analysis.observed_pair_count());
  }
}
BENCHMARK(BM_CorrelationSparse)->Arg(256)->Arg(512)->Arg(1024)->Arg(2048);

void BM_CorrelationSparseSharded(benchmark::State& state) {
  const RequestSequence seq =
      sparse_phase1_trace(static_cast<std::size_t>(state.range(0)));
  ThreadPool pool;
  CorrelationOptions options;
  options.mode = CorrelationOptions::Mode::kSparse;
  options.pool = &pool;
  for (auto _ : state) {
    const CorrelationAnalysis analysis(seq, options);
    benchmark::DoNotOptimize(analysis.observed_pair_count());
  }
}
BENCHMARK(BM_CorrelationSparseSharded)->Arg(512)->Arg(2048);

/// Repeated DP solves with and without a reusable SolverWorkspace: the
/// workspace path's steady state allocates nothing (bench/bm_phase1 counts
/// the exact allocation numbers for the committed baseline).
void BM_OptimalOfflineFreshBuffers(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Flow flow = make_flow(n, 16, 7);
  const CostModel model{1.0, 1.0, 0.8};
  OptimalOfflineOptions options;
  options.build_schedule = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        solve_optimal_offline(flow, model, 16, options).raw_cost);
  }
}
BENCHMARK(BM_OptimalOfflineFreshBuffers)->Range(256, 4096);

void BM_OptimalOfflineWorkspaceReuse(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Flow flow = make_flow(n, 16, 7);
  const CostModel model{1.0, 1.0, 0.8};
  OptimalOfflineOptions options;
  options.build_schedule = false;
  SolverWorkspace workspace;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        solve_optimal_offline(flow, model, 16, options, &workspace).raw_cost);
  }
}
BENCHMARK(BM_OptimalOfflineWorkspaceReuse)->Range(256, 4096);

void BM_PackageFlowBuild(benchmark::State& state) {
  PairedTraceConfig config;
  config.server_count = 50;
  config.requests_per_pair = static_cast<std::size_t>(state.range(0));
  Rng rng(6);
  const RequestSequence seq = generate_paired_trace(config, rng);
  Flow scratch;
  for (auto _ : state) {
    make_package_flow(seq, 0, 1, scratch);
    benchmark::DoNotOptimize(scratch.size());
  }
}
BENCHMARK(BM_PackageFlowBuild)->Range(256, 4096);

void BM_DpGreedyEndToEnd(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  PairedTraceConfig config;
  config.server_count = 50;
  config.requests_per_pair = n / 5;
  Rng rng(5);
  const RequestSequence seq = generate_paired_trace(config, rng);
  const CostModel model{1.0, 2.0, 0.8};
  DpGreedyOptions options;
  options.theta = 0.3;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solve_dp_greedy(seq, model, options).total_cost);
  }
}
BENCHMARK(BM_DpGreedyEndToEnd)->Range(512, 8192);

/// Every registered solver, end to end through the engine, on one shared
/// paired trace — one benchmark per registry name, so adding a solver adds
/// its benchmark without touching this file.  The Solver instance lives
/// outside the loop, so workspace reuse across runs is part of what is
/// measured (exactly how a sweep harness drives the engine).
void BM_RegistrySolver(benchmark::State& state, const std::string& name) {
  PairedTraceConfig config;
  config.server_count = 50;
  config.requests_per_pair = 400;
  Rng rng(5);
  const RequestSequence seq = generate_paired_trace(config, rng);
  const CostModel model{1.0, 2.0, 0.8};
  SolverConfig solver_config;
  solver_config.theta = 0.3;
  solver_config.keep_schedules = false;
  const std::unique_ptr<Solver> solver = builtin_registry().create(name);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        solver->run(seq, model, solver_config).total_cost);
  }
}

[[maybe_unused]] const int kRegistryBenchmarks = [] {
  for (const std::string& name : builtin_registry().names()) {
    benchmark::RegisterBenchmark(("BM_RegistrySolver/" + name).c_str(),
                                 BM_RegistrySolver, name);
  }
  return 0;
}();

/// Phase-2 sharding sweep: the same end-to-end dp_greedy solve at a given
/// SolverConfig::threads, so `bm_solvers --benchmark_filter=Threads` prints
/// the serial-vs-pooled solve times side by side.  On a single-core host the
/// pooled rows mostly measure the sharding overhead (the interesting bound
/// there: how little determinism costs).
void BM_DpGreedyThreads(benchmark::State& state) {
  PairedTraceConfig config;
  config.server_count = 50;
  config.requests_per_pair = 400;
  Rng rng(5);
  const RequestSequence seq = generate_paired_trace(config, rng);
  const CostModel model{1.0, 2.0, 0.8};
  SolverConfig solver_config;
  solver_config.theta = 0.3;
  solver_config.keep_schedules = false;
  solver_config.threads(static_cast<std::size_t>(state.range(0)));
  const std::unique_ptr<Solver> solver = builtin_registry().create("dp_greedy");
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver->run(seq, model, solver_config).total_cost);
  }
}
BENCHMARK(BM_DpGreedyThreads)->Arg(0)->Arg(2)->Arg(4)->Arg(8);

/// The same end-to-end dp_greedy run with telemetry recording on vs off —
/// the measured bound behind the "≤2% disabled, single-digit % enabled"
/// overhead note in docs/observability.md.
void BM_DpGreedyTelemetry(benchmark::State& state, bool telemetry_on) {
  PairedTraceConfig config;
  config.server_count = 50;
  config.requests_per_pair = 400;
  Rng rng(5);
  const RequestSequence seq = generate_paired_trace(config, rng);
  const CostModel model{1.0, 2.0, 0.8};
  SolverConfig solver_config;
  solver_config.theta = 0.3;
  solver_config.keep_schedules = false;
  obs::set_enabled(telemetry_on);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        builtin_registry().run("dp_greedy", seq, model, solver_config)
            .total_cost);
    // Reset between iterations so the trace rings never saturate (dropped
    // events would make later iterations artificially cheap).
    if (telemetry_on) {
      state.PauseTiming();
      obs::reset_metrics();
      obs::reset_trace();
      state.ResumeTiming();
    }
  }
  obs::set_enabled(false);
}

[[maybe_unused]] const int kTelemetryBenchmarks = [] {
  benchmark::RegisterBenchmark("BM_DpGreedyTelemetry/off",
                               BM_DpGreedyTelemetry, false);
  benchmark::RegisterBenchmark("BM_DpGreedyTelemetry/on",
                               BM_DpGreedyTelemetry, true);
  return 0;
}();

// ---------------------------------------------------------------------------
// The `dp_kernel` section: solver/kernels.hpp vs the scalar reference loops
// it replaced, on columns gathered from a real flow.  Each kernel is checked
// bit-identical against its reference inside the timed harness, and the
// fused pipeline (w/W pass + window-minimum sweep — the two Phase-2 DP hot
// loops) carries the >=2x single-thread acceptance gate.

constexpr int kKernelRepetitions = 7;

/// Best-of-N wall time of `fn`, in milliseconds.
template <typename Fn>
double kernel_best_ms(Fn&& fn, int repetitions = kKernelRepetitions) {
  double best = 1e300;
  for (int rep = 0; rep < repetitions; ++rep) {
    Stopwatch watch;
    fn();
    best = std::min(best, watch.elapsed_seconds() * 1e3);
  }
  return best;
}

// The timed sweeps live in their own noinline functions so each hot loop
// gets stable code placement — inlined into one big harness function, loop
// alignment becomes a lottery that swamps the scalar/kernel ratio.
#if defined(_MSC_VER)
#define DPG_BENCH_NOINLINE __declspec(noinline)
#else
#define DPG_BENCH_NOINLINE __attribute__((noinline))
#endif

DPG_BENCH_NOINLINE double sweep_window_scalar(const double* v,
                                              std::size_t width,
                                              std::size_t n) {
  double acc = 0.0;
  for (std::size_t i = width; i < n; ++i) {
    acc += kernels::window_min_scalar(v, i - width, i).second;
  }
  return acc;
}

DPG_BENCH_NOINLINE double sweep_window_kernel(const double* v,
                                              std::size_t width,
                                              std::size_t n) {
  double acc = 0.0;
  for (std::size_t i = width; i < n; ++i) {
    acc += kernels::window_min(v, i - width, i).second;
  }
  return acc;
}

DPG_BENCH_NOINLINE void sweep_w_scalar(const Cost* link, double lambda,
                                       std::size_t n, Cost* w,
                                       Cost* w_prefix) {
  kernels::w_and_prefix_scalar(link, lambda, n, w, w_prefix);
}

DPG_BENCH_NOINLINE void sweep_w_kernel(const Cost* link, double lambda,
                                       std::size_t n, Cost* w,
                                       Cost* w_prefix) {
  kernels::w_and_prefix(link, lambda, n, w, w_prefix);
}

int run_dp_kernel(const std::string& fragment_path) {
  // Columns gathered exactly as the kernel path of solve_optimal_offline
  // gathers them: a 65536-request single-item flow over 16 servers, so the
  // same-server windows average n/m = 4096 nodes (the sweep below clamps to
  // the widths the blocked scan actually serves).
  const std::size_t n = 65536;
  const Flow flow = make_flow(n, 16, 9);
  const RequestIndex index(flow, 16);
  const std::size_t nodes = index.node_count();
  const Time* t = index.times().data();
  std::vector<std::int32_t> prev(nodes);
  prev[0] = RequestIndex::kNone;
  for (std::size_t j = 1; j < nodes; ++j) prev[j] = index.prev_same_server(j);
  const double mu = 1.0;
  const double lambda = 2.0;

  std::vector<Cost> link(nodes);
  kernels::link_costs(t, prev.data(), mu, nodes, link.data());
  // link_costs has no SIMD variant (the prev[] gather needs AVX2+); its cost
  // is recorded for context but shared by both pipelines below.
  const double link_ms = kernel_best_ms([&] {
    for (int i = 0; i < 8; ++i) {
      kernels::link_costs(t, prev.data(), mu, nodes, link.data());
    }
  });

  // Tie-heavy v column (0.125-quantized, like the equivalence fuzzers) so
  // the latest-argmin tie rule is genuinely exercised while being timed.
  std::vector<double> v(nodes);
  Rng rng(17);
  for (double& x : v) x = 0.125 * static_cast<double>(rng.next_below(4096));

  struct WindowRow {
    std::size_t width;
    double scalar_ms;
    double kernel_ms;
  };
  std::vector<WindowRow> windows;
  bool bit_identical = true;
  for (const std::size_t width : {std::size_t{16}, std::size_t{64},
                                  kernels::kWindowScanThreshold}) {
    for (std::size_t i = width; i < nodes; ++i) {
      const auto s = kernels::window_min_scalar(v.data(), i - width, i);
      const auto k = kernels::window_min(v.data(), i - width, i);
      if (s != k) bit_identical = false;
    }
    WindowRow row{width, 0.0, 0.0};
    row.scalar_ms = kernel_best_ms([&] {
      double acc = sweep_window_scalar(v.data(), width, nodes);
      benchmark::DoNotOptimize(acc);
    });
    row.kernel_ms = kernel_best_ms([&] {
      double acc = sweep_window_kernel(v.data(), width, nodes);
      benchmark::DoNotOptimize(acc);
    });
    windows.push_back(row);
  }

  std::vector<Cost> w_s(nodes), wp_s(nodes), w_k(nodes), wp_k(nodes);
  kernels::w_and_prefix_scalar(link.data(), lambda, nodes, w_s.data(),
                               wp_s.data());
  kernels::w_and_prefix(link.data(), lambda, nodes, w_k.data(), wp_k.data());
  if (w_s != w_k || wp_s != wp_k) bit_identical = false;
  const double w_scalar_ms = kernel_best_ms([&] {
    for (int i = 0; i < 8; ++i) {
      sweep_w_scalar(link.data(), lambda, nodes, w_s.data(), wp_s.data());
    }
    benchmark::DoNotOptimize(wp_s.data());
  });
  const double w_kernel_ms = kernel_best_ms([&] {
    for (int i = 0; i < 8; ++i) {
      sweep_w_kernel(link.data(), lambda, nodes, w_k.data(), wp_k.data());
    }
    benchmark::DoNotOptimize(wp_k.data());
  });

  // The fused pipeline both solver paths run per flow: one w/W pass, then a
  // window minimum per node, at the widest window the blocked scan serves
  // (wider windows take the SuffixMin stack on both paths, so the kernels
  // change nothing there).
  const std::size_t pipe_width = kernels::kWindowScanThreshold;
  const double pipeline_scalar_ms = kernel_best_ms([&] {
    sweep_w_scalar(link.data(), lambda, nodes, w_s.data(), wp_s.data());
    double acc = sweep_window_scalar(v.data(), pipe_width, nodes);
    benchmark::DoNotOptimize(acc);
  });
  const double pipeline_kernel_ms = kernel_best_ms([&] {
    sweep_w_kernel(link.data(), lambda, nodes, w_k.data(), wp_k.data());
    double acc = sweep_window_kernel(v.data(), pipe_width, nodes);
    benchmark::DoNotOptimize(acc);
  });
  const double pipeline_speedup = pipeline_scalar_ms / pipeline_kernel_ms;

  std::ostringstream section;
  section.setf(std::ios::fixed);
  section.precision(3);
  section << "{\"isa\": \""
          << kernels::active_isa() << "\", \"repetitions\": "
          << kKernelRepetitions << ", \"nodes\": " << nodes
          << ", \"link_costs_ms\": " << link_ms
          << ", \"w_and_prefix\": {\"scalar_ms\": " << w_scalar_ms
          << ", \"kernel_ms\": " << w_kernel_ms
          << ", \"speedup\": " << w_scalar_ms / w_kernel_ms
          << "}, \"window_min\": [";
  for (std::size_t i = 0; i < windows.size(); ++i) {
    if (i != 0) section << ", ";
    section << "{\"width\": " << windows[i].width
            << ", \"scalar_ms\": " << windows[i].scalar_ms
            << ", \"kernel_ms\": " << windows[i].kernel_ms
            << ", \"speedup\": " << windows[i].scalar_ms / windows[i].kernel_ms
            << "}";
  }
  section << "], \"pipeline\": {\"window_width\": " << pipe_width
          << ", \"scalar_ms\": " << pipeline_scalar_ms
          << ", \"kernel_ms\": " << pipeline_kernel_ms
          << ", \"speedup\": " << pipeline_speedup
          << "}, \"bit_identical\": " << (bit_identical ? "true" : "false")
          << ", \"peak_rss_bytes\": " << harness::peak_rss_bytes() << "}";

  const int status =
      bench::write_fragment(fragment_path, {{"dp_kernel", section.str()}});
  if (status == 0) std::printf("wrote %s\n", fragment_path.c_str());

  std::printf("dp_kernel isa=%s nodes=%zu\n", kernels::active_isa(), nodes);
  std::printf("w_and_prefix: scalar %.3f ms  kernel %.3f ms  %.2fx\n",
              w_scalar_ms, w_kernel_ms, w_scalar_ms / w_kernel_ms);
  for (const WindowRow& row : windows) {
    std::printf("window_min w=%zu: scalar %.3f ms  kernel %.3f ms  %.2fx\n",
                row.width, row.scalar_ms, row.kernel_ms,
                row.scalar_ms / row.kernel_ms);
  }
  std::printf("pipeline: scalar %.3f ms  kernel %.3f ms  speedup %.2fx  %s\n",
              pipeline_scalar_ms, pipeline_kernel_ms, pipeline_speedup,
              bit_identical ? "bit-identical" : "DIFFERS");

  // The >=2x gate is only meaningful where a SIMD variant compiled; on other
  // ISAs every kernel is its own scalar reference and the gate degenerates
  // to the bit-identity check.
  const bool simd = std::string(kernels::active_isa()) != "scalar";
  const bool pass = bit_identical && (!simd || pipeline_speedup >= 2.0);
  if (!simd) std::printf("speedup gate skipped (scalar ISA)\n");
  std::printf("dp_kernel acceptance (pipeline %.2fx >= 2x): %s\n",
              pipeline_speedup, pass ? "PASS" : "FAIL");
  return status != 0 ? status : (pass ? 0 : 2);
}

}  // namespace
}  // namespace dpg

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--fragment") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--fragment needs an output path\n");
        return 1;
      }
      return dpg::run_dp_kernel(argv[i + 1]);
    }
    if (arg.rfind("--fragment=", 0) == 0) {
      return dpg::run_dp_kernel(arg.substr(11));
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
