// google-benchmark microbenchmarks for the solver substrate: the optimal
// offline DP (both inner-minimum strategies), greedy, the Section-V index
// build, correlation analysis, the full DP_Greedy pipeline, and every
// registry solver end to end (one benchmark per registered name).
#include <benchmark/benchmark.h>

#include <string>

#include "core/request_index.hpp"
#include "harness_solvers.hpp"
#include "engine/registry.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "parallel/thread_pool.hpp"
#include "trace/generators.hpp"

namespace dpg {
namespace {

Flow make_flow(std::size_t n, std::size_t m, std::uint64_t seed) {
  UniformTraceConfig config;
  config.server_count = m;
  config.item_count = 1;
  config.request_count = n;
  Rng rng(seed);
  return make_item_flow(generate_uniform_trace(config, rng), 0);
}

void BM_OptimalOfflineWindowMin(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Flow flow = make_flow(n, 16, 1);
  const CostModel model{1.0, 1.0, 0.8};
  OptimalOfflineOptions options;
  options.build_schedule = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        solve_optimal_offline(flow, model, 16, options).raw_cost);
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_OptimalOfflineWindowMin)->Range(256, 16384)->Complexity();

void BM_OptimalOfflineNaiveScan(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Flow flow = make_flow(n, 16, 1);
  const CostModel model{1.0, 1.0, 0.8};
  OptimalOfflineOptions options;
  options.build_schedule = false;
  options.fast_range_min = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        solve_optimal_offline(flow, model, 16, options).raw_cost);
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_OptimalOfflineNaiveScan)->Range(256, 4096)->Complexity();

void BM_GreedySolve(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Flow flow = make_flow(n, 16, 2);
  const CostModel model{1.0, 1.0, 0.8};
  for (auto _ : state) {
    benchmark::DoNotOptimize(solve_greedy(flow, model, 16).raw_cost);
  }
}
BENCHMARK(BM_GreedySolve)->Range(256, 16384);

void BM_RequestIndexBuild(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto m = static_cast<std::size_t>(state.range(1));
  const Flow flow = make_flow(n, m, 3);
  for (auto _ : state) {
    const RequestIndex index(flow, m);
    benchmark::DoNotOptimize(index.node_count());
  }
}
BENCHMARK(BM_RequestIndexBuild)
    ->Args({1024, 8})
    ->Args({1024, 64})
    ->Args({8192, 8})
    ->Args({8192, 64});

void BM_CorrelationAnalysis(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  ZipfTraceConfig config;
  config.item_count = 10;
  config.request_count = n;
  Rng rng(4);
  const RequestSequence seq = generate_zipf_trace(config, rng);
  for (auto _ : state) {
    const CorrelationAnalysis analysis(seq);
    benchmark::DoNotOptimize(analysis.sorted_pairs().size());
  }
}
BENCHMARK(BM_CorrelationAnalysis)->Range(1024, 16384);

/// Phase-1 representations head to head at growing item counts on a sparse
/// workload (Zipf popularity, pairwise co-access): the dense triangle
/// materializes k(k−1)/2 pairs, the sparse hash only the observed ones.
RequestSequence sparse_phase1_trace(std::size_t k) {
  ZipfTraceConfig config;
  config.server_count = 50;
  config.item_count = k;
  config.request_count = 20000;
  config.co_access = 0.3;
  Rng rng(1234);
  return generate_zipf_trace(config, rng);
}

void BM_CorrelationDense(benchmark::State& state) {
  const RequestSequence seq =
      sparse_phase1_trace(static_cast<std::size_t>(state.range(0)));
  CorrelationOptions options;
  options.mode = CorrelationOptions::Mode::kDense;
  for (auto _ : state) {
    const CorrelationAnalysis analysis(seq, options);
    benchmark::DoNotOptimize(analysis.sorted_pairs().size());
  }
}
BENCHMARK(BM_CorrelationDense)->Arg(256)->Arg(512)->Arg(1024)->Arg(2048);

void BM_CorrelationSparse(benchmark::State& state) {
  const RequestSequence seq =
      sparse_phase1_trace(static_cast<std::size_t>(state.range(0)));
  CorrelationOptions options;
  options.mode = CorrelationOptions::Mode::kSparse;
  for (auto _ : state) {
    const CorrelationAnalysis analysis(seq, options);
    benchmark::DoNotOptimize(analysis.observed_pair_count());
  }
}
BENCHMARK(BM_CorrelationSparse)->Arg(256)->Arg(512)->Arg(1024)->Arg(2048);

void BM_CorrelationSparseSharded(benchmark::State& state) {
  const RequestSequence seq =
      sparse_phase1_trace(static_cast<std::size_t>(state.range(0)));
  ThreadPool pool;
  CorrelationOptions options;
  options.mode = CorrelationOptions::Mode::kSparse;
  options.pool = &pool;
  for (auto _ : state) {
    const CorrelationAnalysis analysis(seq, options);
    benchmark::DoNotOptimize(analysis.observed_pair_count());
  }
}
BENCHMARK(BM_CorrelationSparseSharded)->Arg(512)->Arg(2048);

/// Repeated DP solves with and without a reusable SolverWorkspace: the
/// workspace path's steady state allocates nothing (bench/bm_phase1 counts
/// the exact allocation numbers for the committed baseline).
void BM_OptimalOfflineFreshBuffers(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Flow flow = make_flow(n, 16, 7);
  const CostModel model{1.0, 1.0, 0.8};
  OptimalOfflineOptions options;
  options.build_schedule = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        solve_optimal_offline(flow, model, 16, options).raw_cost);
  }
}
BENCHMARK(BM_OptimalOfflineFreshBuffers)->Range(256, 4096);

void BM_OptimalOfflineWorkspaceReuse(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Flow flow = make_flow(n, 16, 7);
  const CostModel model{1.0, 1.0, 0.8};
  OptimalOfflineOptions options;
  options.build_schedule = false;
  SolverWorkspace workspace;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        solve_optimal_offline(flow, model, 16, options, &workspace).raw_cost);
  }
}
BENCHMARK(BM_OptimalOfflineWorkspaceReuse)->Range(256, 4096);

void BM_PackageFlowBuild(benchmark::State& state) {
  PairedTraceConfig config;
  config.server_count = 50;
  config.requests_per_pair = static_cast<std::size_t>(state.range(0));
  Rng rng(6);
  const RequestSequence seq = generate_paired_trace(config, rng);
  Flow scratch;
  for (auto _ : state) {
    make_package_flow(seq, 0, 1, scratch);
    benchmark::DoNotOptimize(scratch.size());
  }
}
BENCHMARK(BM_PackageFlowBuild)->Range(256, 4096);

void BM_DpGreedyEndToEnd(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  PairedTraceConfig config;
  config.server_count = 50;
  config.requests_per_pair = n / 5;
  Rng rng(5);
  const RequestSequence seq = generate_paired_trace(config, rng);
  const CostModel model{1.0, 2.0, 0.8};
  DpGreedyOptions options;
  options.theta = 0.3;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solve_dp_greedy(seq, model, options).total_cost);
  }
}
BENCHMARK(BM_DpGreedyEndToEnd)->Range(512, 8192);

/// Every registered solver, end to end through the engine, on one shared
/// paired trace — one benchmark per registry name, so adding a solver adds
/// its benchmark without touching this file.  The Solver instance lives
/// outside the loop, so workspace reuse across runs is part of what is
/// measured (exactly how a sweep harness drives the engine).
void BM_RegistrySolver(benchmark::State& state, const std::string& name) {
  PairedTraceConfig config;
  config.server_count = 50;
  config.requests_per_pair = 400;
  Rng rng(5);
  const RequestSequence seq = generate_paired_trace(config, rng);
  const CostModel model{1.0, 2.0, 0.8};
  SolverConfig solver_config;
  solver_config.theta = 0.3;
  solver_config.keep_schedules = false;
  const std::unique_ptr<Solver> solver = builtin_registry().create(name);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        solver->run(seq, model, solver_config).total_cost);
  }
}

[[maybe_unused]] const int kRegistryBenchmarks = [] {
  for (const std::string& name : builtin_registry().names()) {
    benchmark::RegisterBenchmark(("BM_RegistrySolver/" + name).c_str(),
                                 BM_RegistrySolver, name);
  }
  return 0;
}();

/// Phase-2 sharding sweep: the same end-to-end dp_greedy solve at a given
/// SolverConfig::threads, so `bm_solvers --benchmark_filter=Threads` prints
/// the serial-vs-pooled solve times side by side.  On a single-core host the
/// pooled rows mostly measure the sharding overhead (the interesting bound
/// there: how little determinism costs).
void BM_DpGreedyThreads(benchmark::State& state) {
  PairedTraceConfig config;
  config.server_count = 50;
  config.requests_per_pair = 400;
  Rng rng(5);
  const RequestSequence seq = generate_paired_trace(config, rng);
  const CostModel model{1.0, 2.0, 0.8};
  SolverConfig solver_config;
  solver_config.theta = 0.3;
  solver_config.keep_schedules = false;
  solver_config.threads(static_cast<std::size_t>(state.range(0)));
  const std::unique_ptr<Solver> solver = builtin_registry().create("dp_greedy");
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver->run(seq, model, solver_config).total_cost);
  }
}
BENCHMARK(BM_DpGreedyThreads)->Arg(0)->Arg(2)->Arg(4)->Arg(8);

/// The same end-to-end dp_greedy run with telemetry recording on vs off —
/// the measured bound behind the "≤2% disabled, single-digit % enabled"
/// overhead note in docs/observability.md.
void BM_DpGreedyTelemetry(benchmark::State& state, bool telemetry_on) {
  PairedTraceConfig config;
  config.server_count = 50;
  config.requests_per_pair = 400;
  Rng rng(5);
  const RequestSequence seq = generate_paired_trace(config, rng);
  const CostModel model{1.0, 2.0, 0.8};
  SolverConfig solver_config;
  solver_config.theta = 0.3;
  solver_config.keep_schedules = false;
  obs::set_enabled(telemetry_on);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        builtin_registry().run("dp_greedy", seq, model, solver_config)
            .total_cost);
    // Reset between iterations so the trace rings never saturate (dropped
    // events would make later iterations artificially cheap).
    if (telemetry_on) {
      state.PauseTiming();
      obs::reset_metrics();
      obs::reset_trace();
      state.ResumeTiming();
    }
  }
  obs::set_enabled(false);
}

[[maybe_unused]] const int kTelemetryBenchmarks = [] {
  benchmark::RegisterBenchmark("BM_DpGreedyTelemetry/off",
                               BM_DpGreedyTelemetry, false);
  benchmark::RegisterBenchmark("BM_DpGreedyTelemetry/on",
                               BM_DpGreedyTelemetry, true);
  return 0;
}();

}  // namespace
}  // namespace dpg
