// dpgreedy_bench: the one bench runner.
//
//   dpgreedy_bench list
//       prints the scenario registry (name, tier, binary, sections, gates).
//
//   dpgreedy_bench run [--nightly] [--only a,b] [--bench-dir DIR]
//                      [--out FILE] [--render-md FILE] [--keep-fragments]
//       runs the tier's scenarios (quick by default), merges the fragments
//       into a schema-v2 bench document, writes it to --out (default
//       BENCH_solvers.json next to nothing — stdout when --out is absent),
//       and optionally re-renders the docs/performance.md trajectory block.
//
//   dpgreedy_bench render --in FILE --md FILE
//       re-renders the trajectory block of an existing markdown file from an
//       existing schema-v2 document, without running anything.
//
// Gate *checking* lives in tools/bench_gate, which needs only the JSON
// files; this binary is the producer side.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "harness/gate.hpp"
#include "harness/runner.hpp"
#include "harness/scenario.hpp"

namespace {

using dpg::bench::Json;
using dpg::bench::JsonError;
using dpg::bench::RunOptions;
using dpg::bench::ScenarioSpec;

int usage() {
  std::fprintf(stderr,
               "usage: dpgreedy_bench list\n"
               "       dpgreedy_bench run [--nightly] [--only a,b]\n"
               "                          [--bench-dir DIR] [--out FILE]\n"
               "                          [--render-md FILE] "
               "[--keep-fragments]\n"
               "       dpgreedy_bench render --in FILE --md FILE\n");
  return 2;
}

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= csv.size()) {
    const std::size_t comma = csv.find(',', start);
    const std::size_t end = comma == std::string::npos ? csv.size() : comma;
    if (end > start) out.push_back(csv.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

std::string directory_of(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  return path.substr(0, slash);
}

int cmd_list() {
  for (const ScenarioSpec& scenario : dpg::bench::scenario_registry()) {
    std::printf("%-14s %-10s tier=%-13s %s\n", scenario.name.c_str(),
                scenario.binary.c_str(),
                scenario.quick ? "quick+nightly" : "nightly",
                scenario.description.c_str());
    for (const auto& section : scenario.sections) {
      std::printf("    section %-24s %zu gate(s)\n", section.key.c_str(),
                  section.thresholds.size());
    }
  }
  return 0;
}

int cmd_run(int argc, char** argv, const std::string& self_dir) {
  RunOptions options;
  options.bench_dir = self_dir;
  std::string out_path;
  std::string render_md;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) return nullptr;
      return argv[++i];
    };
    if (arg == "--nightly") {
      options.nightly = true;
    } else if (arg == "--only") {
      const char* value = next();
      if (value == nullptr) return usage();
      options.only = split_csv(value);
    } else if (arg == "--bench-dir") {
      const char* value = next();
      if (value == nullptr) return usage();
      options.bench_dir = value;
    } else if (arg == "--out") {
      const char* value = next();
      if (value == nullptr) return usage();
      out_path = value;
    } else if (arg == "--render-md") {
      const char* value = next();
      if (value == nullptr) return usage();
      render_md = value;
    } else if (arg == "--keep-fragments") {
      options.keep_fragments = true;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      return usage();
    }
  }

  const Json doc = dpg::bench::run_scenarios(options);
  const std::string text = dpg::bench::serialize_json(doc, 2) + "\n";
  if (out_path.empty()) {
    std::fputs(text.c_str(), stdout);
  } else {
    dpg::bench::write_text_file(out_path, text);
    std::fprintf(stderr, "[dpgreedy_bench] wrote %s\n", out_path.c_str());
  }
  if (!render_md.empty()) {
    dpg::bench::update_performance_doc(doc, render_md);
    std::fprintf(stderr, "[dpgreedy_bench] rendered %s\n", render_md.c_str());
  }
  return 0;
}

int cmd_render(int argc, char** argv) {
  std::string in_path;
  std::string md_path;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--in" && i + 1 < argc) {
      in_path = argv[++i];
    } else if (arg == "--md" && i + 1 < argc) {
      md_path = argv[++i];
    } else {
      return usage();
    }
  }
  if (in_path.empty() || md_path.empty()) return usage();
  const Json doc =
      dpg::bench::parse_json(dpg::bench::read_text_file(in_path));
  dpg::bench::update_performance_doc(doc, md_path);
  std::fprintf(stderr, "[dpgreedy_bench] rendered %s from %s\n",
               md_path.c_str(), in_path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  try {
    if (command == "list") return cmd_list();
    if (command == "run") return cmd_run(argc, argv, directory_of(argv[0]));
    if (command == "render") return cmd_render(argc, argv);
  } catch (const JsonError& error) {
    std::fprintf(stderr, "dpgreedy_bench: %s\n", error.what());
    return 1;
  }
  return usage();
}
