// Ablation of DP_Greedy's design choices (DESIGN.md §2.3):
//  (a) the θ threshold — packing everything vs selective packing,
//  (b) the package-fetch option (2αλ) in the Phase-2 greedy,
//  (c) the greedy singleton service vs serving singles with the DP too
//      (i.e. is the "greedy" half of DP_Greedy costing much?).
#include <algorithm>
#include <cstdio>

#include "harness_common.hpp"
#include "harness_solvers.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace dpg;

namespace {

/// Variant (b): DP_Greedy without the package-fetch option — singles pick
/// min(cache, transfer) only.  Recomputed here from the service records by
/// re-pricing each decision without the 2αλ choice.
double without_package_fetch(const RequestSequence& trace,
                             const CostModel& model, double theta) {
  DpGreedyOptions options;
  options.theta = theta;
  const DpGreedyResult dpg = solve_dp_greedy(trace, model, options);
  double total = 0.0;
  for (const PackageReport& report : dpg.packages) {
    total += report.package_cost;
    // Re-serve the singles with only cache/transfer options.
    for (const ItemId item : {report.pair.a, report.pair.b}) {
      const ItemId partner = item == report.pair.a ? report.pair.b
                                                   : report.pair.a;
      Time prev = 0.0;
      std::vector<Time> last_on(trace.server_count(), -1.0);
      last_on[kOriginServer] = 0.0;
      for (const std::size_t index : trace.indices_for_item(item)) {
        const Request& r = trace[index];
        if (!r.contains(partner)) {
          Cost cache = kInfiniteCost;
          if (last_on[r.server] >= 0.0) {
            cache = model.mu * (r.time - last_on[r.server]);
          }
          const Cost transfer = model.mu * (r.time - prev) + model.lambda;
          total += std::min(cache, transfer);
        }
        prev = r.time;
        last_on[r.server] = r.time;
      }
    }
  }
  for (const SingleItemReport& report : dpg.singles) total += report.cost;
  return total;
}

/// Variant (c): serve the singleton requests of each packed pair with the
/// optimal DP over the item's singleton flow (package requests excluded
/// from that flow but package fetches unavailable).
double singles_via_dp(const RequestSequence& trace, const CostModel& model,
                      double theta) {
  DpGreedyOptions options;
  options.theta = theta;
  const DpGreedyResult dpg = solve_dp_greedy(trace, model, options);
  double total = 0.0;
  for (const PackageReport& report : dpg.packages) {
    total += report.package_cost;
    for (const ItemId item : {report.pair.a, report.pair.b}) {
      const ItemId partner = item == report.pair.a ? report.pair.b
                                                   : report.pair.a;
      Flow singles;
      for (const std::size_t index : trace.indices_for_item(item)) {
        const Request& r = trace[index];
        if (!r.contains(partner)) {
          singles.points.push_back(ServicePoint{r.server, r.time, index});
        }
      }
      total +=
          solve_optimal_offline(singles, model, trace.server_count()).raw_cost;
    }
  }
  for (const SingleItemReport& report : dpg.singles) total += report.cost;
  return total;
}

}  // namespace

int main() {
  std::printf("DP_Greedy design ablations\n\n");
  const RequestSequence trace = harness::evaluation_trace();

  for (const double alpha : {0.4, 0.8}) {
    CostModel model;
    model.mu = 1.0;
    model.lambda = 2.0;
    model.alpha = alpha;

    std::printf("--- alpha = %.1f ---\n", alpha);
    TextTable table({"variant", "total cost", "vs DP_Greedy"});
    DpGreedyOptions base;
    base.theta = 0.3;
    const double reference = solve_dp_greedy(trace, model, base).total_cost;
    const auto rel = [&](double v) {
      return format_fixed(100.0 * (v / reference - 1.0), 2) + "%";
    };

    table.add_row({"DP_Greedy (theta=0.3)", format_fixed(reference, 1),
                   "+0.00%"});
    DpGreedyOptions pack_all;
    pack_all.theta = 0.0;
    const double theta0 = solve_dp_greedy(trace, model, pack_all).total_cost;
    table.add_row({"(a) theta=0 (pack any co-occurrence)",
                   format_fixed(theta0, 1), rel(theta0)});
    DpGreedyOptions pack_none;
    pack_none.theta = 1.0;
    const double theta1 = solve_dp_greedy(trace, model, pack_none).total_cost;
    table.add_row({"(a) theta=1 (never pack = Optimal)",
                   format_fixed(theta1, 1), rel(theta1)});
    const double no_fetch = without_package_fetch(trace, model, 0.3);
    table.add_row({"(b) no 2*alpha*lambda package-fetch option",
                   format_fixed(no_fetch, 1), rel(no_fetch)});
    const double dp_singles = singles_via_dp(trace, model, 0.3);
    table.add_row({"(c) singles served by DP instead of greedy",
                   format_fixed(dp_singles, 1), rel(dp_singles)});
    const double package_served =
        solve_package_served(trace, model, 0.3).total_cost;
    table.add_row({"Package_Served (always ship the pair)",
                   format_fixed(package_served, 1), rel(package_served)});
    std::printf("%s\n", table.render().c_str());
  }
  std::printf(
      "reading: (b) quantifies Observation 2's fetch option; (c) bounds how\n"
      "much the greedy half of Phase 2 leaves on the table versus a DP over\n"
      "the singleton flow (which ignores package copies, so it can lose on\n"
      "strongly packed traces).\n");
  return 0;
}
