// Heterogeneous-cost probe (extension; the paper restricts itself to the
// homogeneous model and notes the general case is NP-hard).  We perturb
// per-server cache rates around μ = 1 and measure how the greedy heuristic
// under the true heterogeneous rates compares to (a) greedy that ignores
// the heterogeneity and (b) the homogeneous optimum priced at the true
// rates — a robustness statement about the homogeneous assumption.
#include <algorithm>
#include <cstdio>

#include "harness_common.hpp"
#include "harness_solvers.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace dpg;

namespace {

/// Prices a schedule under heterogeneous rates.
Cost price_hetero(const Schedule& schedule, const HeterogeneousCostModel& model) {
  Cost cost = 0.0;
  for (const CacheSegment& s : schedule.segments()) {
    cost += model.mu(s.server) * (s.end - s.begin);
  }
  for (const TransferEdge& t : schedule.transfers()) {
    cost += model.lambda(t.from, t.to);
  }
  return cost;
}

}  // namespace

int main() {
  harness::print_header(
      "heterogeneous cache rates: robustness of the homogeneous assumption",
      "moderate rate noise keeps homogeneous plans near heterogeneous greedy");

  const RequestSequence trace = harness::evaluation_trace();
  const std::size_t m = trace.server_count();
  const CostModel homo{1.0, 2.0, 0.8};

  TextTable table({"mu noise", "hetero greedy", "homo greedy re-priced",
                   "homo optimal re-priced"});
  for (const double noise : {0.0, 0.25, 0.5, 1.0}) {
    Rng rng(99);
    HeterogeneousCostModel hetero(m, 1.0, 2.0);
    for (ServerId s = 0; s < m; ++s) {
      hetero.set_mu(s, std::max(0.05, 1.0 + noise * (rng.next_double() * 2.0 - 1.0)));
    }
    Cost hetero_greedy = 0.0, homo_greedy = 0.0, homo_optimal = 0.0;
    for (ItemId item = 0; item < trace.item_count(); ++item) {
      const Flow flow = make_item_flow(trace, item);
      if (flow.empty()) continue;
      hetero_greedy += solve_greedy_heterogeneous(flow, hetero).raw_cost;
      homo_greedy +=
          price_hetero(solve_greedy(flow, homo, m).schedule, hetero);
      homo_optimal +=
          price_hetero(solve_optimal_offline(flow, homo, m).schedule, hetero);
    }
    table.add_row({format_fixed(noise, 2), format_fixed(hetero_greedy, 1),
                   format_fixed(homo_greedy, 1),
                   format_fixed(homo_optimal, 1)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "reading: a homogeneous-optimal plan re-priced at the true rates stays\n"
      "competitive with rate-aware greedy until the noise approaches the\n"
      "base rate itself; beyond that, rate awareness starts to pay.\n");
  return 0;
}
