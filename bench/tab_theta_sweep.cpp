// θ sensitivity — the paper fixes θ = 0.3 after reading the Fig. 11
// crossover; this harness sweeps θ over [0, 1] on the taxi trace across the
// α regimes of Fig. 13 and reports where total cost is minimized.
#include <cstdio>

#include "harness_common.hpp"
#include "harness_solvers.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace dpg;

int main() {
  harness::print_header(
      "theta sweep: sensitivity of DP_Greedy to the correlation threshold",
      "theta = 0.3 sits in the flat optimum region at alpha = 0.8");

  const RequestSequence trace = harness::evaluation_trace();

  for (const double alpha : {0.4, 0.8}) {
    CostModel model;
    model.mu = 1.0;
    model.lambda = 2.0;
    model.alpha = alpha;
    std::printf("--- alpha = %.1f ---\n", alpha);
    TextTable table({"theta", "packages", "total cost", "ave cost"});
    double best_theta = 0.0, best_cost = -1.0;
    for (double theta = 0.0; theta <= 1.0 + 1e-9; theta += 0.1) {
      DpGreedyOptions options;
      options.theta = theta;
      const DpGreedyResult result = solve_dp_greedy(trace, model, options);
      if (best_cost < 0.0 || result.total_cost < best_cost) {
        best_cost = result.total_cost;
        best_theta = theta;
      }
      table.add_row({format_fixed(theta, 1),
                     std::to_string(result.packages.size()),
                     format_fixed(result.total_cost, 1),
                     format_fixed(result.ave_cost, 4)});
    }
    std::printf("%s", table.render().c_str());
    std::printf("cost-minimizing theta ≈ %s\n\n",
                format_fixed(best_theta, 1).c_str());
  }
  return 0;
}
