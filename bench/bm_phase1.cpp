// Perf-trajectory harness: dense vs sparse Phase-1 correlation, fresh vs
// workspace-reuse Phase-2 solves, every registered solver end to end, and
// the telemetry overhead breakdown.
//
// Usage: bm_phase1 [--fragment FILE]   — writes the sections
// phase1_dense_vs_sparse, phase2_workspace, registry_solvers and
// telemetry_overhead as a fragment for dpgreedy_bench to merge into the
// schema-v2 BENCH_solvers.json (see bench/harness/fragment.hpp).
//
// Allocation counts come from a global operator new/delete override local to
// this binary: every new/new[] bumps one relaxed atomic.  That makes
// "allocations per solve" an exact count, not a sampling estimate.
#include <atomic>
#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include "harness_solvers.hpp"
#include "engine/registry.hpp"
#include "harness/fragment.hpp"
#include "harness_common.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "parallel/thread_pool.hpp"
#include "trace/generators.hpp"
#include "util/stopwatch.hpp"

namespace {

std::atomic<std::uint64_t> g_allocations{0};

void* counted_alloc(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size > 0 ? size : 1);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* counted_aligned_alloc(std::size_t size, std::size_t alignment) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, alignment, size > 0 ? size : alignment) != 0) {
    throw std::bad_alloc();
  }
  return p;
}

}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace dpg {
namespace {

constexpr int kRepetitions = 5;

std::uint64_t allocations_now() {
  return g_allocations.load(std::memory_order_relaxed);
}

/// Best-of-N wall time of `fn`, in milliseconds.
template <typename Fn>
double time_best_ms(Fn&& fn, int repetitions = kRepetitions) {
  double best = 1e300;
  for (int rep = 0; rep < repetitions; ++rep) {
    Stopwatch watch;
    fn();
    best = std::min(best, watch.elapsed_seconds() * 1e3);
  }
  return best;
}

struct Phase1Row {
  std::size_t k = 0;
  std::size_t requests = 0;
  std::size_t dense_pairs = 0;     // k(k−1)/2, materialized by the triangle
  std::size_t observed_pairs = 0;  // co_freq > 0, all the sparse path keeps
  double dense_ms = 0.0;
  double sparse_ms = 0.0;
  std::uint64_t dense_allocs = 0;
  std::uint64_t sparse_allocs = 0;
  bool packing_identical = false;
};

bool same_packing(const Packing& x, const Packing& y) {
  if (x.pairs.size() != y.pairs.size() || x.singles != y.singles) return false;
  for (std::size_t i = 0; i < x.pairs.size(); ++i) {
    if (x.pairs[i].a != y.pairs[i].a || x.pairs[i].b != y.pairs[i].b) {
      return false;
    }
  }
  return true;
}

Phase1Row run_phase1(std::size_t k, std::size_t requests) {
  ZipfTraceConfig config;
  config.server_count = 50;
  config.item_count = k;
  config.request_count = requests;
  config.co_access = 0.3;
  Rng rng(1234);
  const RequestSequence seq = generate_zipf_trace(config, rng);

  CorrelationOptions dense;
  dense.mode = CorrelationOptions::Mode::kDense;
  CorrelationOptions sparse;
  sparse.mode = CorrelationOptions::Mode::kSparse;

  Phase1Row row;
  row.k = k;
  row.requests = requests;
  row.dense_pairs = k * (k - 1) / 2;

  row.dense_ms = time_best_ms([&] {
    const CorrelationAnalysis analysis(seq, dense);
    if (analysis.sorted_pairs().empty()) std::abort();  // keep it observable
  });
  row.sparse_ms = time_best_ms([&] {
    const CorrelationAnalysis analysis(seq, sparse);
    if (analysis.sorted_pairs().size() != analysis.observed_pair_count()) {
      std::abort();
    }
  });

  std::uint64_t before = allocations_now();
  const CorrelationAnalysis dense_analysis(seq, dense);
  row.dense_allocs = allocations_now() - before;
  before = allocations_now();
  const CorrelationAnalysis sparse_analysis(seq, sparse);
  row.sparse_allocs = allocations_now() - before;
  row.observed_pairs = sparse_analysis.observed_pair_count();

  row.packing_identical =
      same_packing(greedy_pairing(dense_analysis, 0.3),
                   greedy_pairing(sparse_analysis, 0.3));
  return row;
}

struct Phase2Report {
  std::size_t solves = 0;
  std::size_t pairs = 0;
  std::size_t singles = 0;
  double fresh_ms = 0.0;
  double workspace_ms = 0.0;
  double fresh_allocs_per_solve = 0.0;
  double workspace_allocs_per_solve = 0.0;
  bool costs_identical = false;
};

Phase2Report run_phase2() {
  // A paired trace with enough flows that per-solve scratch dominates:
  // 48 controlled-Jaccard pairs (96 items), 200 requests each.
  PairedTraceConfig config;
  config.server_count = 50;
  config.requests_per_pair = 200;
  config.pair_jaccard.clear();
  for (std::size_t p = 0; p < 48; ++p) {
    config.pair_jaccard.push_back(0.1 + 0.8 * static_cast<double>(p) / 47.0);
  }
  Rng rng(99);
  const RequestSequence seq = generate_paired_trace(config, rng);
  const CostModel model{1.0, 2.0, 0.8};

  const CorrelationAnalysis analysis(seq, {});
  const Packing packing = greedy_pairing(analysis, 0.3);

  // Cost-only solves isolate the scratch path: with build_schedule off the
  // only allocations left are the solver's own working buffers.
  OptimalOfflineOptions dp;
  dp.build_schedule = false;

  Phase2Report report;
  report.pairs = packing.pairs.size();
  report.singles = packing.singles.size();
  report.solves = packing.pairs.size() + packing.singles.size();

  const auto solve_all_fresh = [&]() {
    Cost total = 0.0;
    for (const ItemPair& pair : packing.pairs) {
      const Flow flow = make_package_flow(seq, pair.a, pair.b);
      total += solve_optimal_offline(flow, model, seq.server_count(), dp).cost;
    }
    for (const ItemId item : packing.singles) {
      const Flow flow = make_item_flow(seq, item);
      total += solve_optimal_offline(flow, model, seq.server_count(), dp).cost;
    }
    return total;
  };
  const auto solve_all_workspace = [&](SolverWorkspace& ws) {
    Cost total = 0.0;
    for (const ItemPair& pair : packing.pairs) {
      make_package_flow(seq, pair.a, pair.b, ws.flow);
      total +=
          solve_optimal_offline(ws.flow, model, seq.server_count(), dp, &ws)
              .cost;
    }
    for (const ItemId item : packing.singles) {
      make_item_flow(seq, item, ws.flow);
      total +=
          solve_optimal_offline(ws.flow, model, seq.server_count(), dp, &ws)
              .cost;
    }
    return total;
  };

  SolverWorkspace ws;
  const Cost warmup_total = solve_all_workspace(ws);  // grow buffers once
  report.costs_identical = warmup_total == solve_all_fresh();

  report.fresh_ms = time_best_ms([&] { (void)solve_all_fresh(); });
  report.workspace_ms = time_best_ms([&] { (void)solve_all_workspace(ws); });

  std::uint64_t before = allocations_now();
  (void)solve_all_fresh();
  const std::uint64_t fresh_allocs = allocations_now() - before;
  before = allocations_now();
  (void)solve_all_workspace(ws);
  const std::uint64_t workspace_allocs = allocations_now() - before;

  const double solves = static_cast<double>(report.solves);
  report.fresh_allocs_per_solve = static_cast<double>(fresh_allocs) / solves;
  report.workspace_allocs_per_solve =
      static_cast<double>(workspace_allocs) / solves;
  return report;
}

/// One row per registered solver, end to end through the engine on a shared
/// paired trace — the committed baseline rows carry the registry names, so
/// future diffs line up with `dpgreedy list`.
struct RegistryRow {
  std::string name;
  Cost total_cost = 0.0;
  double solve_ms = 0.0;
  std::uint64_t allocs = 0;
};

std::vector<RegistryRow> run_registry() {
  PairedTraceConfig config;
  config.server_count = 50;
  config.requests_per_pair = 200;
  Rng rng(7);
  const RequestSequence seq = generate_paired_trace(config, rng);
  const CostModel model{1.0, 2.0, 0.8};
  SolverConfig solver_config;
  solver_config.theta = 0.3;
  solver_config.keep_schedules = false;

  std::vector<RegistryRow> rows;
  for (const std::string& name : builtin_registry().names()) {
    const std::unique_ptr<Solver> solver = builtin_registry().create(name);
    RegistryRow row;
    row.name = name;
    // Warm-up run grows the solver's workspace and records the cost.
    row.total_cost = solver->run(seq, model, solver_config).total_cost;
    row.solve_ms =
        time_best_ms([&] { (void)solver->run(seq, model, solver_config); });
    const std::uint64_t before = allocations_now();
    (void)solver->run(seq, model, solver_config);
    row.allocs = allocations_now() - before;
    rows.push_back(row);
  }
  return rows;
}

/// Telemetry cost on the end-to-end dp_greedy solve, broken down: recording
/// fully off, counters only (spans disabled), and counters + spans.  The
/// workload is ~10x the registry rows' (2000 requests/pair) so each solve is
/// in the milliseconds and best-of-N percentages are stable.  Runs last so
/// enabling telemetry cannot perturb the alloc counts above.
struct TelemetryReport {
  double off_ms = 0.0;
  double counters_ms = 0.0;
  double full_ms = 0.0;
  bool cost_identical = false;
  std::string counters_json = "{}";
  std::uint64_t trace_events = 0;
};

TelemetryReport run_telemetry() {
  PairedTraceConfig config;
  config.server_count = 50;
  config.requests_per_pair = 2000;
  Rng rng(7);
  const RequestSequence seq = generate_paired_trace(config, rng);
  const CostModel model{1.0, 2.0, 0.8};
  SolverConfig solver_config;
  solver_config.theta = 0.3;
  solver_config.keep_schedules = false;

  TelemetryReport report;
  const auto solve_cost = [&] {
    return builtin_registry().run("dp_greedy", seq, model, solver_config)
        .total_cost;
  };
  const auto solve = [&] { (void)solve_cost(); };
  const Cost off_cost = solve_cost();  // warm-up
  report.off_ms = time_best_ms(solve);

  obs::set_enabled(true);
  obs::set_spans_enabled(false);
  obs::reset_metrics();
  obs::reset_trace();
  report.counters_ms = time_best_ms(solve);

  obs::set_spans_enabled(true);
  obs::reset_metrics();
  obs::reset_trace();
  report.full_ms = time_best_ms(solve);
  report.cost_identical = solve_cost() == off_cost;
  report.counters_json = harness::metrics_counters_json();
  report.trace_events = obs::snapshot_trace().size();
  obs::set_enabled(false);
  return report;
}

/// printf into a growing std::string (section bodies for the fragment).
void appendf(std::string& out, const char* fmt, ...) {
  char buffer[1024];
  va_list args;
  va_start(args, fmt);
  const int written = std::vsnprintf(buffer, sizeof buffer, fmt, args);
  va_end(args);
  if (written > 0) out.append(buffer, static_cast<std::size_t>(written));
}

int run(const std::string& fragment_path) {
  std::vector<Phase1Row> phase1;
  for (const std::size_t k : {512u, 1024u, 2048u}) {
    std::printf("phase1 k=%zu ...\n", k);
    phase1.push_back(run_phase1(k, 20000));
  }
  const std::uint64_t rss_after_phase1 = harness::peak_rss_bytes();
  std::printf("phase2 ...\n");
  const Phase2Report phase2 = run_phase2();
  const std::uint64_t rss_after_phase2 = harness::peak_rss_bytes();
  std::printf("registry solvers ...\n");
  const std::vector<RegistryRow> registry_rows = run_registry();
  const std::uint64_t rss_after_registry = harness::peak_rss_bytes();
  std::printf("telemetry overhead ...\n");
  const TelemetryReport telemetry = run_telemetry();
  const double counters_overhead_pct =
      telemetry.off_ms > 0.0
          ? (telemetry.counters_ms / telemetry.off_ms - 1.0) * 100.0
          : 0.0;
  const double full_overhead_pct =
      telemetry.off_ms > 0.0
          ? (telemetry.full_ms / telemetry.off_ms - 1.0) * 100.0
          : 0.0;

  std::string phase1_body;
  appendf(phase1_body, "{\"repetitions\": %d, \"rows\": [", kRepetitions);
  for (std::size_t i = 0; i < phase1.size(); ++i) {
    const Phase1Row& r = phase1[i];
    appendf(
        phase1_body,
        "%s{\"k\": %zu, \"requests\": %zu, \"dense_pairs\": %zu, "
        "\"observed_pairs\": %zu, \"dense_ms\": %.3f, \"sparse_ms\": %.3f, "
        "\"speedup\": %.2f, \"dense_allocs\": %llu, \"sparse_allocs\": %llu, "
        "\"packing_identical\": %s}",
        i == 0 ? "" : ", ", r.k, r.requests, r.dense_pairs, r.observed_pairs,
        r.dense_ms, r.sparse_ms, r.dense_ms / r.sparse_ms,
        static_cast<unsigned long long>(r.dense_allocs),
        static_cast<unsigned long long>(r.sparse_allocs),
        r.packing_identical ? "true" : "false");
  }
  appendf(phase1_body, "], \"peak_rss_bytes\": %llu}",
          static_cast<unsigned long long>(rss_after_phase1));

  std::string phase2_body;
  appendf(phase2_body,
          "{\"solves\": %zu, \"pairs\": %zu, \"singles\": %zu, "
          "\"fresh_ms\": %.3f, \"workspace_ms\": %.3f, \"speedup\": %.2f, "
          "\"fresh_allocs_per_solve\": %.1f, "
          "\"workspace_allocs_per_solve\": %.1f, \"costs_identical\": %s, "
          "\"peak_rss_bytes\": %llu}",
          phase2.solves, phase2.pairs, phase2.singles, phase2.fresh_ms,
          phase2.workspace_ms, phase2.fresh_ms / phase2.workspace_ms,
          phase2.fresh_allocs_per_solve, phase2.workspace_allocs_per_solve,
          phase2.costs_identical ? "true" : "false",
          static_cast<unsigned long long>(rss_after_phase2));

  std::string registry_body;
  appendf(registry_body, "{\"rows\": [");
  for (std::size_t i = 0; i < registry_rows.size(); ++i) {
    const RegistryRow& r = registry_rows[i];
    appendf(registry_body,
            "%s{\"solver\": \"%s\", \"total_cost\": %.6f, "
            "\"solve_ms\": %.3f, \"allocs\": %llu}",
            i == 0 ? "" : ", ", r.name.c_str(), r.total_cost, r.solve_ms,
            static_cast<unsigned long long>(r.allocs));
  }
  appendf(registry_body, "], \"peak_rss_bytes\": %llu}",
          static_cast<unsigned long long>(rss_after_registry));

  std::string telemetry_body;
  appendf(telemetry_body,
          "{\"dp_greedy_off_ms\": %.3f, \"counters_only_ms\": %.3f, "
          "\"full_ms\": %.3f, \"counters_overhead_pct\": %.1f, "
          "\"full_overhead_pct\": %.1f, \"cost_identical\": %s, "
          "\"trace_events\": %llu, \"counters\": %s, "
          "\"peak_rss_bytes\": %llu}",
          telemetry.off_ms, telemetry.counters_ms, telemetry.full_ms,
          counters_overhead_pct, full_overhead_pct,
          telemetry.cost_identical ? "true" : "false",
          static_cast<unsigned long long>(telemetry.trace_events),
          telemetry.counters_json.c_str(),
          static_cast<unsigned long long>(harness::peak_rss_bytes()));

  const int status = dpg::bench::write_fragment(
      fragment_path, {{"phase1_dense_vs_sparse", phase1_body},
                      {"phase2_workspace", phase2_body},
                      {"registry_solvers", registry_body},
                      {"telemetry_overhead", telemetry_body}});
  if (status != 0) return status;
  std::printf("wrote %s\n", fragment_path.c_str());

  for (const Phase1Row& r : phase1) {
    std::printf(
        "phase1 k=%5zu: dense %8.2f ms (%zu pairs, %llu allocs)  "
        "sparse %8.2f ms (%zu pairs, %llu allocs)  speedup %.2fx  packing %s\n",
        r.k, r.dense_ms, r.dense_pairs,
        static_cast<unsigned long long>(r.dense_allocs), r.sparse_ms,
        r.observed_pairs, static_cast<unsigned long long>(r.sparse_allocs),
        r.dense_ms / r.sparse_ms, r.packing_identical ? "identical" : "DIFFERS");
  }
  std::printf(
      "phase2 %zu solves: fresh %.2f ms (%.1f allocs/solve)  "
      "workspace %.2f ms (%.1f allocs/solve)  costs %s\n",
      phase2.solves, phase2.fresh_ms, phase2.fresh_allocs_per_solve,
      phase2.workspace_ms, phase2.workspace_allocs_per_solve,
      phase2.costs_identical ? "identical" : "DIFFER");
  for (const RegistryRow& r : registry_rows) {
    std::printf("registry %-18s total %12.2f  %8.2f ms  %llu allocs\n",
                r.name.c_str(), r.total_cost, r.solve_ms,
                static_cast<unsigned long long>(r.allocs));
  }
  std::printf(
      "telemetry dp_greedy: off %.3f ms, counters %.3f ms (%+.1f%%), "
      "full %.3f ms (%+.1f%%), %llu trace events, costs %s, "
      "peak rss %.1f MiB\n",
      telemetry.off_ms, telemetry.counters_ms, counters_overhead_pct,
      telemetry.full_ms, full_overhead_pct,
      static_cast<unsigned long long>(telemetry.trace_events),
      telemetry.cost_identical ? "identical" : "DIFFER",
      static_cast<double>(harness::peak_rss_bytes()) / (1024.0 * 1024.0));
  return 0;
}

}  // namespace
}  // namespace dpg

int main(int argc, char** argv) {
  std::string fragment_path = "bm_phase1.fragment.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--fragment" && i + 1 < argc) {
      fragment_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: bm_phase1 [--fragment FILE]\n");
      return 2;
    }
  }
  return dpg::run(fragment_path);
}
