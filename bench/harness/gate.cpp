#include "harness/gate.hpp"

#include <algorithm>
#include <cstdio>

namespace dpg::bench {

namespace {

/// Renders a gate value for the table: numbers keep their lexeme, bools
/// their keyword.
std::string render_value(const Json& value) {
  switch (value.kind()) {
    case Json::Kind::kBool:
      return value.as_bool() ? "true" : "false";
    case Json::Kind::kNumber:
      return value.lexeme();
    case Json::Kind::kString:
      return value.as_string();
    default:
      return serialize_json(value);
  }
}

/// Splits "a.b[*].c" into tokens {key, index kind}.
struct PathToken {
  std::string key;
  bool has_index = false;
  bool wildcard = false;
  std::size_t index = 0;
};

std::vector<PathToken> tokenize_path(const std::string& path) {
  std::vector<PathToken> tokens;
  std::size_t at = 0;
  while (at < path.size()) {
    std::size_t dot = path.find('.', at);
    if (dot == std::string::npos) dot = path.size();
    std::string part = path.substr(at, dot - at);
    PathToken token;
    const std::size_t bracket = part.find('[');
    if (bracket != std::string::npos && part.back() == ']') {
      token.key = part.substr(0, bracket);
      const std::string inner =
          part.substr(bracket + 1, part.size() - bracket - 2);
      token.has_index = true;
      if (inner == "*") {
        token.wildcard = true;
      } else {
        token.index = static_cast<std::size_t>(std::stoul(inner));
      }
    } else {
      token.key = part;
    }
    tokens.push_back(std::move(token));
    at = dot + 1;
  }
  return tokens;
}

void resolve_step(const Json& node, const std::vector<PathToken>& tokens,
                  std::size_t depth, const std::string& prefix,
                  std::vector<ResolvedValue>& out) {
  if (depth == tokens.size()) {
    out.push_back({prefix, &node});
    return;
  }
  const PathToken& token = tokens[depth];
  if (!node.is_object()) return;
  const Json* child = node.find(token.key);
  if (child == nullptr) return;
  const std::string base = prefix.empty() ? token.key : prefix + "." + token.key;
  if (!token.has_index) {
    resolve_step(*child, tokens, depth + 1, base, out);
    return;
  }
  if (!child->is_array()) return;
  if (token.wildcard) {
    for (std::size_t i = 0; i < child->size(); ++i) {
      resolve_step(child->at(i), tokens, depth + 1,
                   base + "[" + std::to_string(i) + "]", out);
    }
    return;
  }
  if (token.index < child->size()) {
    resolve_step(child->at(token.index), tokens, depth + 1,
                 base + "[" + std::to_string(token.index) + "]", out);
  }
}

/// The baseline value at a *concrete* (wildcard-free) path; nullptr when the
/// baseline lacks it.
const Json* lookup_concrete(const Json& data, const std::string& path) {
  const std::vector<ResolvedValue> hits = resolve_path(data, path);
  return hits.size() == 1 ? hits.front().value : nullptr;
}

struct ParsedGate {
  std::string path;
  std::string op;             // ">=", "<=", "=="
  const Json* value = nullptr;  // absolute bound (null for baseline gates)
  bool vs_baseline = false;
  double slack_pct = 0.0;
  const Json* skip_if = nullptr;  // {"path": ..., "equals": ...}
};

ParsedGate parse_gate(const Json& gate) {
  ParsedGate parsed;
  const Json* path = gate.find("path");
  const Json* op = gate.find("op");
  if (path == nullptr || op == nullptr) {
    throw JsonError("gate missing \"path\" or \"op\": " +
                    serialize_json(gate));
  }
  parsed.path = path->as_string();
  parsed.op = op->as_string();
  if (parsed.op != ">=" && parsed.op != "<=" && parsed.op != "==") {
    throw JsonError("gate op must be >=, <= or ==, got '" + parsed.op + "'");
  }
  if (const Json* baseline = gate.find("baseline");
      baseline != nullptr && baseline->as_bool()) {
    parsed.vs_baseline = true;
    if (const Json* slack = gate.find("slack_pct"); slack != nullptr) {
      parsed.slack_pct = slack->as_double();
    }
  } else {
    parsed.value = gate.find("value");
    if (parsed.value == nullptr) {
      throw JsonError("gate needs \"value\" or \"baseline\": true — " +
                      serialize_json(gate));
    }
  }
  parsed.skip_if = gate.find("skip_if");
  return parsed;
}

std::string gate_label(const ParsedGate& gate) {
  std::string label = gate.path + " " + gate.op + " ";
  if (gate.vs_baseline) {
    label += "baseline";
    if (gate.slack_pct > 0.0) {
      char buffer[32];
      std::snprintf(buffer, sizeof(buffer), "+%g%%", gate.slack_pct);
      label += buffer;
    }
  } else {
    label += render_value(*gate.value);
  }
  return label;
}

bool compare(const std::string& op, double current, double bound) {
  if (op == ">=") return current >= bound;
  if (op == "<=") return current <= bound;
  return current == bound;
}

void add_row(GateReport& report, GateRow row) {
  switch (row.verdict) {
    case Verdict::kPass: ++report.passed; break;
    case Verdict::kFail: ++report.failed; break;
    case Verdict::kSkip: ++report.skipped; break;
  }
  report.rows.push_back(std::move(row));
}

/// Evaluates one declared gate over one section's current/baseline data.
void evaluate_gate(const std::string& section, const Json& gate_json,
                   const Json& current_data, const Json& baseline_data,
                   GateReport& report) {
  const ParsedGate gate = parse_gate(gate_json);
  GateRow row;
  row.section = section;
  row.gate = gate_label(gate);

  if (gate.skip_if != nullptr) {
    const Json* skip_path = gate.skip_if->find("path");
    const Json* skip_equals = gate.skip_if->find("equals");
    if (skip_path == nullptr || skip_equals == nullptr) {
      throw JsonError("skip_if needs \"path\" and \"equals\"");
    }
    const Json* probe = lookup_concrete(current_data, skip_path->as_string());
    if (probe != nullptr && probe->equals(*skip_equals)) {
      row.verdict = Verdict::kSkip;
      row.current = "-";
      row.bound = "-";
      row.note = skip_path->as_string() + " == " + render_value(*skip_equals);
      add_row(report, std::move(row));
      return;
    }
  }

  const std::vector<ResolvedValue> hits =
      resolve_path(current_data, gate.path);
  if (hits.empty()) {
    row.verdict = Verdict::kFail;
    row.current = "-";
    row.bound = gate.vs_baseline ? "baseline" : render_value(*gate.value);
    row.note = "metric missing from current data";
    add_row(report, std::move(row));
    return;
  }

  for (const ResolvedValue& hit : hits) {
    GateRow fan = row;
    if (hits.size() > 1) fan.gate = hit.path + " " + gate.op + " ...";
    fan.current = render_value(*hit.value);

    if (gate.vs_baseline) {
      const Json* base = lookup_concrete(baseline_data, hit.path);
      if (base == nullptr) {
        fan.verdict = Verdict::kFail;
        fan.bound = "baseline";
        fan.note = "metric missing from baseline data";
        add_row(report, std::move(fan));
        continue;
      }
      if (gate.op == "==") {
        fan.bound = render_value(*base);
        fan.verdict =
            hit.value->equals(*base) ? Verdict::kPass : Verdict::kFail;
        if (fan.verdict == Verdict::kFail) fan.note = "differs from baseline";
      } else {
        const double base_value = base->as_double();
        const double bound = gate.op == "<="
                                 ? base_value * (1.0 + gate.slack_pct / 100.0)
                                 : base_value * (1.0 - gate.slack_pct / 100.0);
        char rendered[48];
        std::snprintf(rendered, sizeof(rendered), "%g", bound);
        fan.bound = rendered;
        fan.verdict = compare(gate.op, hit.value->as_double(), bound)
                          ? Verdict::kPass
                          : Verdict::kFail;
        if (fan.verdict == Verdict::kFail) {
          fan.note = "regressed vs baseline " + render_value(*base);
        }
      }
      add_row(report, std::move(fan));
      continue;
    }

    // Absolute bound.
    fan.bound = render_value(*gate.value);
    if (gate.value->is_bool() || hit.value->is_bool()) {
      fan.verdict = (gate.op == "==" && hit.value->equals(*gate.value))
                        ? Verdict::kPass
                        : Verdict::kFail;
      if (fan.verdict == Verdict::kFail) fan.note = "flag mismatch";
    } else {
      fan.verdict =
          compare(gate.op, hit.value->as_double(), gate.value->as_double())
              ? Verdict::kPass
              : Verdict::kFail;
      if (fan.verdict == Verdict::kFail) fan.note = "threshold tripped";
    }
    add_row(report, std::move(fan));
  }
}

}  // namespace

std::vector<ResolvedValue> resolve_path(const Json& data,
                                        const std::string& path) {
  std::vector<ResolvedValue> out;
  resolve_step(data, tokenize_path(path), 0, "", out);
  return out;
}

void require_bench_schema_v2(const Json& doc, const std::string& label) {
  if (!doc.is_object()) {
    throw JsonError(label + ": not a JSON object");
  }
  const Json* schema = doc.find("schema");
  if (schema == nullptr || !schema->is_string()) {
    throw JsonError(label + ": no \"schema\" field — refusing to guess " +
                    "(expected \"" + kBenchSchemaV2 + "\")");
  }
  if (schema->as_string() != kBenchSchemaV2) {
    throw JsonError(label + ": schema \"" + schema->as_string() +
                    "\" is not \"" + kBenchSchemaV2 +
                    "\" — regenerate with dpgreedy_bench run");
  }
  const Json* sections = doc.find("sections");
  if (sections == nullptr || !sections->is_object()) {
    throw JsonError(label + ": schema v2 requires a \"sections\" object");
  }
}

GateReport evaluate_gates(const Json& baseline, const Json& current) {
  require_bench_schema_v2(baseline, "baseline");
  require_bench_schema_v2(current, "current");

  GateReport report;
  const Json& baseline_sections = *baseline.find("sections");
  const Json& current_sections = *current.find("sections");

  for (const auto& [name, baseline_section] : baseline_sections.members()) {
    const Json* current_section = current_sections.find(name);
    if (current_section == nullptr) {
      // A section the runner was expected to regenerate but did not: loud
      // failure, not a skip.
      add_row(report, {name, "section present", "-", "present",
                       Verdict::kFail, "section missing from current file"});
      continue;
    }
    const Json* baseline_data = baseline_section.find("data");
    const Json* current_data = current_section->find("data");
    if (baseline_data == nullptr || current_data == nullptr) {
      add_row(report, {name, "section shape", "-", "data object",
                       Verdict::kFail, "section lacks a \"data\" object"});
      continue;
    }
    const Json* thresholds = baseline_section.find("thresholds");
    if (thresholds == nullptr || !thresholds->is_array() ||
        thresholds->size() == 0) {
      // An ungated section is legal (informational benchmarks) but recorded
      // so the table shows it was seen.
      add_row(report, {name, "(no gates declared)", "-", "-", Verdict::kSkip,
                       "informational section"});
      continue;
    }
    for (std::size_t i = 0; i < thresholds->size(); ++i) {
      evaluate_gate(name, thresholds->at(i), *current_data, *baseline_data,
                    report);
    }
  }

  // New sections in the current file are fine (a PR adding a benchmark
  // regenerates the baseline in the same diff) — note them.
  for (const auto& [name, section] : current_sections.members()) {
    (void)section;
    if (baseline_sections.find(name) == nullptr) {
      add_row(report, {name, "new section", "present", "-", Verdict::kSkip,
                       "no baseline yet"});
    }
  }
  return report;
}

std::string render_gate_report(const GateReport& report) {
  std::size_t section_width = 7;
  std::size_t gate_width = 4;
  std::size_t current_width = 7;
  std::size_t bound_width = 5;
  for (const GateRow& row : report.rows) {
    section_width = std::max(section_width, row.section.size());
    gate_width = std::max(gate_width, row.gate.size());
    current_width = std::max(current_width, row.current.size());
    bound_width = std::max(bound_width, row.bound.size());
  }
  std::string out;
  char line[512];
  std::snprintf(line, sizeof(line), "%-*s  %-*s  %*s  %*s  %-7s %s\n",
                static_cast<int>(section_width), "section",
                static_cast<int>(gate_width), "gate",
                static_cast<int>(current_width), "current",
                static_cast<int>(bound_width), "bound", "verdict", "note");
  out += line;
  out += std::string(section_width + gate_width + current_width + bound_width +
                         20,
                     '-') +
         "\n";
  for (const GateRow& row : report.rows) {
    const char* verdict = row.verdict == Verdict::kPass   ? "PASS"
                          : row.verdict == Verdict::kFail ? "FAIL"
                                                          : "SKIP";
    std::snprintf(line, sizeof(line), "%-*s  %-*s  %*s  %*s  %-7s %s\n",
                  static_cast<int>(section_width), row.section.c_str(),
                  static_cast<int>(gate_width), row.gate.c_str(),
                  static_cast<int>(current_width), row.current.c_str(),
                  static_cast<int>(bound_width), row.bound.c_str(), verdict,
                  row.note.c_str());
    out += line;
  }
  std::snprintf(line, sizeof(line),
                "%zu gates: %zu passed, %zu failed, %zu skipped -> %s\n",
                report.rows.size(), report.passed, report.failed,
                report.skipped, report.ok() ? "PASS" : "FAIL");
  out += line;
  return out;
}

}  // namespace dpg::bench
