// Fragment contract between the bench binaries and the runner.
//
// Each measuring binary, invoked with `--fragment FILE`, writes a standalone
// JSON object mapping its section keys to section data:
//
//   {"trace_io": {...}, "binary_io": {...}}
//
// The runner (dpgreedy_bench) parses the fragment, attaches the thresholds
// the scenario registry declares for each key, and merges everything into
// the schema-v2 BENCH_solvers.json.  Binaries build their section bodies as
// plain JSON text (snprintf-style, as before) — this header only assembles
// and writes the envelope, so it stays dependency-free and usable whether or
// not the binary links the harness library.
#pragma once

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

namespace dpg::bench {

/// Pairs of (section key, section body as valid JSON text).
using FragmentSections = std::vector<std::pair<std::string, std::string>>;

/// Writes `{"key1": body1, "key2": body2}` to `path`.  Returns 0 on success.
inline int write_fragment(const std::string& path,
                          const FragmentSections& sections) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write fragment %s\n", path.c_str());
    return 1;
  }
  std::fputs("{", out);
  for (std::size_t i = 0; i < sections.size(); ++i) {
    if (i != 0) std::fputs(",", out);
    std::fprintf(out, "\n\"%s\": %s", sections[i].first.c_str(),
                 sections[i].second.c_str());
  }
  std::fputs("\n}\n", out);
  const int status = std::ferror(out) != 0 ? 1 : 0;
  std::fclose(out);
  return status;
}

}  // namespace dpg::bench
