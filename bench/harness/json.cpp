#include "harness/json.hpp"

#include <array>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace dpg::bench {

namespace {

[[noreturn]] void kind_error(const char* want, Json::Kind got) {
  static constexpr std::array<const char*, 6> kNames = {
      "null", "bool", "number", "string", "array", "object"};
  throw JsonError(std::string("expected ") + want + ", got " +
                  kNames[static_cast<std::size_t>(got)]);
}

}  // namespace

Json Json::boolean(bool value) {
  Json j;
  j.kind_ = Kind::kBool;
  j.bool_ = value;
  return j;
}

Json Json::number(std::string lexeme) {
  Json j;
  j.kind_ = Kind::kNumber;
  j.scalar_ = std::move(lexeme);
  return j;
}

Json Json::number(double value) {
  char buffer[64];
  // Shortest round-trip, the same contract the benches print with.
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  double parsed = 0.0;
  std::sscanf(buffer, "%lf", &parsed);
  if (parsed == value) {
    // Try successively shorter forms for readability.
    for (int precision = 1; precision <= 17; ++precision) {
      std::snprintf(buffer, sizeof(buffer), "%.*g", precision, value);
      std::sscanf(buffer, "%lf", &parsed);
      if (parsed == value) break;
    }
  }
  return number(std::string(buffer));
}

Json Json::number(std::uint64_t value) {
  return number(std::to_string(value));
}

Json Json::string(std::string value) {
  Json j;
  j.kind_ = Kind::kString;
  j.scalar_ = std::move(value);
  return j;
}

Json Json::array() {
  Json j;
  j.kind_ = Kind::kArray;
  return j;
}

Json Json::object() {
  Json j;
  j.kind_ = Kind::kObject;
  return j;
}

bool Json::as_bool() const {
  if (kind_ != Kind::kBool) kind_error("bool", kind_);
  return bool_;
}

double Json::as_double() const {
  if (kind_ != Kind::kNumber) kind_error("number", kind_);
  double value = 0.0;
  const auto [ptr, ec] = std::from_chars(
      scalar_.data(), scalar_.data() + scalar_.size(), value);
  if (ec != std::errc() || ptr != scalar_.data() + scalar_.size()) {
    throw JsonError("bad number lexeme '" + scalar_ + "'");
  }
  return value;
}

const std::string& Json::as_string() const {
  if (kind_ != Kind::kString) kind_error("string", kind_);
  return scalar_;
}

const std::string& Json::lexeme() const {
  if (kind_ != Kind::kNumber) kind_error("number", kind_);
  return scalar_;
}

std::size_t Json::size() const {
  if (kind_ == Kind::kArray) return items_.size();
  if (kind_ == Kind::kObject) return members_.size();
  kind_error("array or object", kind_);
}

const Json& Json::at(std::size_t index) const {
  if (kind_ != Kind::kArray) kind_error("array", kind_);
  if (index >= items_.size()) {
    throw JsonError("array index " + std::to_string(index) +
                    " out of range (size " + std::to_string(items_.size()) +
                    ")");
  }
  return items_[index];
}

void Json::push_back(Json value) {
  if (kind_ != Kind::kArray) kind_error("array", kind_);
  items_.push_back(std::move(value));
}

const std::vector<std::pair<std::string, Json>>& Json::members() const {
  if (kind_ != Kind::kObject) kind_error("object", kind_);
  return members_;
}

const Json* Json::find(std::string_view key) const {
  if (kind_ != Kind::kObject) kind_error("object", kind_);
  for (const auto& [name, value] : members_) {
    if (name == key) return &value;
  }
  return nullptr;
}

void Json::set(std::string key, Json value) {
  if (kind_ != Kind::kObject) kind_error("object", kind_);
  for (auto& [name, existing] : members_) {
    if (name == key) {
      existing = std::move(value);
      return;
    }
  }
  members_.emplace_back(std::move(key), std::move(value));
}

bool Json::equals(const Json& other) const {
  if (kind_ != other.kind_) return false;
  switch (kind_) {
    case Kind::kNull:
      return true;
    case Kind::kBool:
      return bool_ == other.bool_;
    case Kind::kNumber:
      return as_double() == other.as_double();
    case Kind::kString:
      return scalar_ == other.scalar_;
    case Kind::kArray: {
      if (items_.size() != other.items_.size()) return false;
      for (std::size_t i = 0; i < items_.size(); ++i) {
        if (!items_[i].equals(other.items_[i])) return false;
      }
      return true;
    }
    case Kind::kObject: {
      if (members_.size() != other.members_.size()) return false;
      for (const auto& [name, value] : members_) {
        const Json* theirs = other.find(name);
        if (theirs == nullptr || !value.equals(*theirs)) return false;
      }
      return true;
    }
  }
  return false;
}

// ---------------------------------------------------------------------------
// Parser.

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json parse_document() {
    Json value = parse_value();
    skip_whitespace();
    if (at_ != text_.size()) fail("trailing content after JSON value");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    std::size_t line = 1;
    std::size_t column = 1;
    for (std::size_t i = 0; i < at_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        column = 1;
      } else {
        ++column;
      }
    }
    throw JsonError(message + " at line " + std::to_string(line) + ":" +
                    std::to_string(column));
  }

  void skip_whitespace() {
    while (at_ < text_.size() &&
           (text_[at_] == ' ' || text_[at_] == '\t' || text_[at_] == '\n' ||
            text_[at_] == '\r')) {
      ++at_;
    }
  }

  char peek() {
    skip_whitespace();
    if (at_ >= text_.size()) fail("unexpected end of input");
    return text_[at_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++at_;
  }

  bool consume_keyword(std::string_view word) {
    if (text_.substr(at_, word.size()) != word) return false;
    at_ += word.size();
    return true;
  }

  Json parse_value() {
    const char c = peek();
    switch (c) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        return Json::string(parse_string());
      case 't':
        if (!consume_keyword("true")) fail("bad keyword");
        return Json::boolean(true);
      case 'f':
        if (!consume_keyword("false")) fail("bad keyword");
        return Json::boolean(false);
      case 'n':
        if (!consume_keyword("null")) fail("bad keyword");
        return Json::null();
      default:
        return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    Json object = Json::object();
    if (peek() == '}') {
      ++at_;
      return object;
    }
    for (;;) {
      if (peek() != '"') fail("expected object key");
      std::string key = parse_string();
      expect(':');
      object.set(std::move(key), parse_value());
      const char next = peek();
      if (next == ',') {
        ++at_;
        continue;
      }
      if (next == '}') {
        ++at_;
        return object;
      }
      fail("expected ',' or '}' in object");
    }
  }

  Json parse_array() {
    expect('[');
    Json array = Json::array();
    if (peek() == ']') {
      ++at_;
      return array;
    }
    for (;;) {
      array.push_back(parse_value());
      const char next = peek();
      if (next == ',') {
        ++at_;
        continue;
      }
      if (next == ']') {
        ++at_;
        return array;
      }
      fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (at_ < text_.size()) {
      const char c = text_[at_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (at_ >= text_.size()) fail("unterminated escape");
      const char escape = text_[at_++];
      switch (escape) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (at_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[at_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          // Bench names are ASCII; encode BMP code points as UTF-8.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          fail("bad escape");
      }
    }
    fail("unterminated string");
  }

  Json parse_number() {
    const std::size_t start = at_;
    if (at_ < text_.size() && text_[at_] == '-') ++at_;
    while (at_ < text_.size() &&
           ((text_[at_] >= '0' && text_[at_] <= '9') || text_[at_] == '.' ||
            text_[at_] == 'e' || text_[at_] == 'E' || text_[at_] == '+' ||
            text_[at_] == '-')) {
      ++at_;
    }
    if (at_ == start) fail("expected a value");
    std::string lexeme(text_.substr(start, at_ - start));
    // Validate eagerly so bad lexemes fail at parse time, with position.
    double probe = 0.0;
    const auto [ptr, ec] =
        std::from_chars(lexeme.data(), lexeme.data() + lexeme.size(), probe);
    if (ec != std::errc() || ptr != lexeme.data() + lexeme.size()) {
      fail("bad number '" + lexeme + "'");
    }
    return Json::number(std::move(lexeme));
  }

  std::string_view text_;
  std::size_t at_ = 0;
};

void serialize_to(const Json& value, std::string& out, int pretty_levels,
                  int depth) {
  switch (value.kind()) {
    case Json::Kind::kNull:
      out += "null";
      return;
    case Json::Kind::kBool:
      out += value.as_bool() ? "true" : "false";
      return;
    case Json::Kind::kNumber:
      out += value.lexeme();
      return;
    case Json::Kind::kString:
      out += '"';
      out += json_escape_string(value.as_string());
      out += '"';
      return;
    case Json::Kind::kArray: {
      out += '[';
      for (std::size_t i = 0; i < value.size(); ++i) {
        if (i != 0) out += ", ";
        serialize_to(value.at(i), out, 0, depth + 1);
      }
      out += ']';
      return;
    }
    case Json::Kind::kObject: {
      const bool pretty = pretty_levels > 0;
      const std::string indent(static_cast<std::size_t>(depth + 1) * 2, ' ');
      out += '{';
      bool first = true;
      for (const auto& [name, member] : value.members()) {
        if (!first) out += pretty ? "," : ", ";
        if (pretty) {
          out += '\n';
          out += indent;
        }
        first = false;
        out += '"';
        out += json_escape_string(name);
        out += "\": ";
        serialize_to(member, out, pretty_levels - 1, depth + 1);
      }
      if (pretty && !first) {
        out += '\n';
        out += indent.substr(2);
      }
      out += '}';
      return;
    }
  }
}

}  // namespace

Json parse_json(std::string_view text) {
  return Parser(text).parse_document();
}

std::string serialize_json(const Json& value, int pretty_depth) {
  std::string out;
  serialize_to(value, out, pretty_depth, 0);
  return out;
}

std::string json_escape_string(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buffer[8];
      std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                    static_cast<unsigned>(static_cast<unsigned char>(c)));
      out += buffer;
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace dpg::bench
