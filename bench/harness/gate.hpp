// Regression-gate evaluation over schema-v2 bench baselines.
//
// A v2 BENCH_solvers.json is self-describing: every section carries the
// thresholds it must satisfy, declared by the scenario registry when the
// runner wrote the file.  The checker therefore needs no compiled-in gate
// table — it loads the committed baseline and a freshly-generated current
// file, takes the *baseline's* declared thresholds as the contract (so a PR
// cannot silently weaken a gate without a visible baseline diff), and
// evaluates each against the current data.
//
// Gate forms (the "thresholds" array of a section):
//
//   {"path": "csv_parse.speedup", "op": ">=", "value": 3.0}
//       absolute floor/ceiling/equality on the current data; `value` may be
//       a number or a bool (bit_identical flags).
//
//   {"path": "allocs", "op": "<=", "baseline": true, "slack_pct": 10}
//       relative: current must be <= the baseline's own value at the same
//       path, scaled by (1 + slack_pct/100).  With "op": "==" the values
//       must match exactly (bit-identical costs).
//
//   {"path": "rows[*].speedup", ...}
//       [*] fans the gate out over every element of an array.
//
//   {..., "skip_if": {"path": "isa", "equals": "scalar"}}
//       the gate is skipped (recorded, not silently dropped) when the
//       current section data matches — e.g. SIMD speedup floors on a
//       scalar-only host.
//
// Structural failures — a section present in the baseline but missing from
// the current file, an unresolvable gate path, a schema-version mismatch —
// are loud FAILs, never skips: a checker that cannot find what it is meant
// to check must not report green.
#pragma once

#include <string>
#include <vector>

#include "harness/json.hpp"

namespace dpg::bench {

inline constexpr const char* kBenchSchemaV2 = "dpgreedy-bench-v2";

enum class Verdict { kPass, kFail, kSkip };

/// One evaluated gate (or structural check), one row of the PASS/FAIL table.
struct GateRow {
  std::string section;
  std::string gate;     // "csv_parse.speedup >= 3" / "allocs <= baseline"
  std::string current;  // rendered current value ("-" when missing)
  std::string bound;    // rendered bound the value was checked against
  Verdict verdict = Verdict::kFail;
  std::string note;     // skip reason / failure detail
};

struct GateReport {
  std::vector<GateRow> rows;
  std::size_t passed = 0;
  std::size_t failed = 0;
  std::size_t skipped = 0;
  [[nodiscard]] bool ok() const { return failed == 0; }
};

/// Validates the document shape: schema == dpgreedy-bench-v2 with a
/// "sections" object.  Throws JsonError naming `label` otherwise — the
/// checker must fail loudly on a v1 or hand-spliced file, not skip it.
void require_bench_schema_v2(const Json& doc, const std::string& label);

/// Evaluates every gate declared in `baseline` against `current`.
/// Both documents must already satisfy require_bench_schema_v2.
[[nodiscard]] GateReport evaluate_gates(const Json& baseline,
                                        const Json& current);

/// The PASS/FAIL table plus a one-line summary.
[[nodiscard]] std::string render_gate_report(const GateReport& report);

/// Resolves a dot path ("csv_parse.speedup", "rows[*].speedup", "rows[2].x")
/// inside `data`; returns {concrete path, value} pairs — empty when the path
/// does not resolve.
struct ResolvedValue {
  std::string path;
  const Json* value = nullptr;
};
[[nodiscard]] std::vector<ResolvedValue> resolve_path(const Json& data,
                                                      const std::string& path);

}  // namespace dpg::bench
