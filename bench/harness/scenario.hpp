// The declared bench-scenario registry.
//
// One scenario = one invocation of one bench binary that emits one or more
// named JSON sections (written as a fragment file, see fragment.hpp).  The
// registry declares, per scenario: the binary, the extra arguments for the
// quick (per-PR) and nightly tiers, the emitted section keys, the regression
// thresholds each section must satisfy, and the headline metrics the
// performance-doc renderer surfaces.
//
// The runner (runner.hpp / dpgreedy_bench) walks this table; the thresholds
// are serialized into each section of the schema-v2 BENCH_solvers.json so
// tools/bench_gate needs only the JSON files, never this table.
#pragma once

#include <string>
#include <vector>

#include "harness/json.hpp"

namespace dpg::bench {

struct SectionSpec {
  std::string key;  // top-level key the binary emits in its fragment
  /// Gate objects per gate.hpp ({"path", "op", "value"/"baseline", ...}).
  std::vector<Json> thresholds;
  /// Paths into the section data shown in the generated perf-trajectory
  /// table (docs/performance.md).
  std::vector<std::string> headlines;
};

struct ScenarioSpec {
  std::string name;
  std::string binary;  // sibling executable in the build's bench/ directory
  std::string description;
  bool quick = false;        // part of the per-PR tier
  std::string quick_args;    // extra argv when run in the quick tier
  std::string nightly_args;  // extra argv in the nightly tier
  std::vector<SectionSpec> sections;
};

/// Every declared scenario, in baseline-file order.
[[nodiscard]] const std::vector<ScenarioSpec>& scenario_registry();

/// Helpers for building gate objects in the registry table.
[[nodiscard]] Json gate_abs(std::string path, std::string op, double value);
[[nodiscard]] Json gate_flag(std::string path, bool value);
[[nodiscard]] Json gate_vs_baseline(std::string path, std::string op,
                                    double slack_pct);
/// Adds {"skip_if": {"path": ..., "equals": ...}} to a gate.
[[nodiscard]] Json with_skip_if(Json gate, std::string path, Json equals);

}  // namespace dpg::bench
