// Minimal JSON DOM for the bench harness and gate checker.
//
// Two properties matter here and drove writing this instead of leaning on an
// external library (the container has none baked in):
//
//  * Numbers keep their raw source lexeme.  The harness merges fragments
//    written by different binaries into one committed baseline; re-emitting
//    "0.607" as "0.60699999999999998" would make every regeneration a noisy
//    diff.  as_double() parses on demand for gate arithmetic.
//  * Objects preserve insertion order, so the committed BENCH_solvers.json
//    stays in the order the scenario registry declares.
//
// The parser accepts strict JSON (no comments, no trailing commas) and
// reports 1-based line/column on error.  It is not a streaming parser; bench
// documents are a few KiB.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace dpg::bench {

/// Thrown by parse_json on malformed input and by the typed accessors on a
/// kind mismatch; the message carries the position or the offending path.
class JsonError : public std::runtime_error {
 public:
  explicit JsonError(const std::string& message)
      : std::runtime_error(message) {}
};

class Json {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() = default;

  static Json null() { return Json(); }
  static Json boolean(bool value);
  /// A number from its raw lexeme ("3.97", "12", "1e-3"); the lexeme is
  /// emitted verbatim by serialize().
  static Json number(std::string lexeme);
  static Json number(double value);
  static Json number(std::uint64_t value);
  static Json string(std::string value);
  static Json array();
  static Json object();

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_null() const { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_bool() const { return kind_ == Kind::kBool; }
  [[nodiscard]] bool is_number() const { return kind_ == Kind::kNumber; }
  [[nodiscard]] bool is_string() const { return kind_ == Kind::kString; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::kArray; }
  [[nodiscard]] bool is_object() const { return kind_ == Kind::kObject; }

  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_double() const;
  [[nodiscard]] const std::string& as_string() const;  // string value
  [[nodiscard]] const std::string& lexeme() const;     // raw number lexeme

  // Arrays.
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] const Json& at(std::size_t index) const;
  void push_back(Json value);

  // Objects (insertion-ordered).
  [[nodiscard]] const std::vector<std::pair<std::string, Json>>& members()
      const;
  /// nullptr when absent.
  [[nodiscard]] const Json* find(std::string_view key) const;
  /// Inserts or replaces `key`.
  void set(std::string key, Json value);

  /// Value equality: numbers compare by parsed double, objects by unordered
  /// member sets.  What the gate checker means by "== baseline".
  [[nodiscard]] bool equals(const Json& other) const;

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  std::string scalar_;  // number lexeme or string value
  std::vector<Json> items_;
  std::vector<std::pair<std::string, Json>> members_;
};

/// Parses one JSON document (throws JsonError with line:column context).
[[nodiscard]] Json parse_json(std::string_view text);

/// Serializes with the bench-baseline layout: objects within the top
/// `pretty_depth` levels are pretty-printed one member per line, everything
/// deeper is compact.  With pretty_depth = 2 the committed baseline diffs
/// line-per-section.  0 = fully compact.
[[nodiscard]] std::string serialize_json(const Json& value,
                                         int pretty_depth = 0);

/// JSON string escaping (shared with the table renderers).
[[nodiscard]] std::string json_escape_string(std::string_view text);

}  // namespace dpg::bench
