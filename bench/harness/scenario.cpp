#include "harness/scenario.hpp"

namespace dpg::bench {

Json gate_abs(std::string path, std::string op, double value) {
  Json gate = Json::object();
  gate.set("path", Json::string(std::move(path)));
  gate.set("op", Json::string(std::move(op)));
  gate.set("value", Json::number(value));
  return gate;
}

Json gate_flag(std::string path, bool value) {
  Json gate = Json::object();
  gate.set("path", Json::string(std::move(path)));
  gate.set("op", Json::string("=="));
  gate.set("value", Json::boolean(value));
  return gate;
}

Json gate_vs_baseline(std::string path, std::string op, double slack_pct) {
  Json gate = Json::object();
  gate.set("path", Json::string(std::move(path)));
  gate.set("op", Json::string(std::move(op)));
  gate.set("baseline", Json::boolean(true));
  if (slack_pct > 0.0) gate.set("slack_pct", Json::number(slack_pct));
  return gate;
}

Json with_skip_if(Json gate, std::string path, Json equals) {
  Json condition = Json::object();
  condition.set("path", Json::string(std::move(path)));
  condition.set("equals", std::move(equals));
  gate.set("skip_if", std::move(condition));
  return gate;
}

const std::vector<ScenarioSpec>& scenario_registry() {
  static const std::vector<ScenarioSpec>* registry = [] {
    auto* scenarios = new std::vector<ScenarioSpec>();

    // -----------------------------------------------------------------
    // core_solvers (bm_phase1): Phase-1 dense-vs-sparse, Phase-2 workspace
    // reuse, per-registry-solver end-to-end, telemetry overhead.
    {
      ScenarioSpec s;
      s.name = "core_solvers";
      s.binary = "bm_phase1";
      s.description =
          "Phase-1 correlation, Phase-2 workspace, registry solvers, "
          "telemetry overhead";
      s.quick = true;

      SectionSpec phase1;
      phase1.key = "phase1_dense_vs_sparse";
      phase1.thresholds = {
          // PR 1's floor: the sparse path must stay >= 3x dense at every k.
          gate_abs("rows[*].speedup", ">=", 3.0),
          gate_flag("rows[*].packing_identical", true),
          // RSS cap: ~4x the recorded 113 MiB peak of the whole binary.
          gate_abs("peak_rss_bytes", "<=", 450e6),
      };
      phase1.headlines = {"rows[2].k", "rows[2].speedup", "peak_rss_bytes"};
      s.sections.push_back(std::move(phase1));

      SectionSpec phase2;
      phase2.key = "phase2_workspace";
      phase2.thresholds = {
          // The zero-allocation steady state is the whole point of the
          // SolverWorkspace; any nonzero count is a regression.
          gate_abs("workspace_allocs_per_solve", "<=", 0.0),
          gate_flag("costs_identical", true),
      };
      phase2.headlines = {"solves", "workspace_ms",
                          "workspace_allocs_per_solve"};
      s.sections.push_back(std::move(phase2));

      SectionSpec registry_section;
      registry_section.key = "registry_solvers";
      registry_section.thresholds = {
          // Deterministic workload (fixed seed): every solver's cost must be
          // bit-identical to the committed baseline, and steady-state alloc
          // counts must not creep (10% slack absorbs libstdc++ drift).
          gate_vs_baseline("rows[*].total_cost", "==", 0.0),
          gate_vs_baseline("rows[*].allocs", "<=", 10.0),
      };
      registry_section.headlines = {"rows[1].solver", "rows[1].solve_ms",
                                    "rows[1].allocs"};
      s.sections.push_back(std::move(registry_section));

      SectionSpec telemetry;
      telemetry.key = "telemetry_overhead";
      telemetry.thresholds = {
          // Declared ceilings on the dp_greedy end-to-end overhead of
          // enabled telemetry, measured on a workload big enough (~1 ms
          // solves) that best-of-N is stable.  Counters alone must stay
          // cheap; counters + spans + the per-run snapshot delta may cost
          // more but is capped too.
          gate_abs("counters_overhead_pct", "<=", 15.0),
          gate_abs("full_overhead_pct", "<=", 30.0),
          gate_flag("cost_identical", true),
      };
      telemetry.headlines = {"dp_greedy_off_ms", "counters_overhead_pct",
                             "full_overhead_pct"};
      s.sections.push_back(std::move(telemetry));

      scenarios->push_back(std::move(s));
    }

    // -----------------------------------------------------------------
    // dp_kernel (bm_solvers): SIMD DP kernels vs scalar reference.
    {
      ScenarioSpec s;
      s.name = "dp_kernel";
      s.binary = "bm_solvers";
      s.description = "branch-light SIMD DP kernels vs the scalar reference";
      s.quick = true;

      SectionSpec kernel;
      kernel.key = "dp_kernel";
      kernel.thresholds = {
          gate_flag("bit_identical", true),
          // The fused w/W + window-min pipeline must hold >= 2x wherever a
          // SIMD variant compiled; on scalar-only hosts the gate is skipped
          // (bit-identity above still binds).
          with_skip_if(gate_abs("pipeline.speedup", ">=", 2.0), "isa",
                       Json::string("scalar")),
      };
      kernel.headlines = {"isa", "pipeline.speedup", "w_and_prefix.speedup"};
      s.sections.push_back(std::move(kernel));

      scenarios->push_back(std::move(s));
    }

    // -----------------------------------------------------------------
    // streaming (bm_stream): StreamingEngine ingest + ratio probe.  The
    // quick tier pushes 1M requests, nightly the full 10M; every gate here
    // is size-independent by construction (no baseline-relative gates).
    {
      ScenarioSpec s;
      s.name = "streaming";
      s.binary = "bm_stream";
      s.description = "StreamingEngine sustained ingest + O(window) ceiling";
      s.quick = true;
      s.quick_args = "--requests 1000000";
      s.nightly_args = "--requests 10000000";

      SectionSpec streaming;
      streaming.key = "streaming";
      streaming.thresholds = {
          // O(window) steady state: allocation events bit-flat from the
          // warm-up mark to the end of the stream.
          gate_flag("allocs_flat", true),
          // The ratio probe must have produced a live estimate.
          gate_abs("ratio_probe.probe_chunks", ">=", 1.0),
          // Snapshot latency under load (measured 6 us; CI-safe cap).
          gate_abs("snapshot_max_ms", "<=", 25.0),
          // RSS cap: the engine is O(window + items), not O(n).
          gate_abs("peak_rss_bytes", "<=", 256e6),
      };
      streaming.headlines = {"requests", "requests_per_s", "allocs_final",
                             "ratio_probe.cost_ratio"};
      s.sections.push_back(std::move(streaming));

      SectionSpec pipeline;
      pipeline.key = "streaming_pipeline";
      pipeline.thresholds = {
          // The decode→push pipeline must reproduce the per-push serial
          // final report bit-exactly at every batch size — the contract
          // push_batch is built on.
          gate_flag("bit_identical", true),
          // Same O(window) ceiling through the batch path: engine
          // allocation events bit-flat from warm-up to end of stream.
          gate_flag("allocs_flat", true),
          // The tentpole: overlapping CSV decode with ingest must at least
          // double throughput over the serial per-push loop.  On single-core
          // hosts the overlap cannot pay for itself, so the gate is skipped
          // (bit-identity and the honest serial row above still bind).
          with_skip_if(gate_abs("speedup", ">=", 2.0), "multicore",
                       Json::boolean(false)),
      };
      pipeline.headlines = {"speedup", "pipeline_requests_per_s",
                            "enqueue_blocked", "dequeue_blocked"};
      s.sections.push_back(std::move(pipeline));

      SectionSpec sharded;
      sharded.key = "streaming_sharded";
      sharded.thresholds = {
          // M = 1 determinism anchor: a 2-shard, 1-partition run must
          // reproduce the 1×1 pipeline final report bit-exactly.
          gate_flag("bit_identical", true),
          // M = 2 anchor: the 2×2 by-item-set run must reproduce the
          // serial routed two-engine reference (the canonical partitioned
          // answer) bit-exactly, independent of thread schedule.
          gate_flag("partitioned_identical", true),
          // O(window) ceiling per partition: the merged allocation count
          // is bit-flat from warm-up to end of stream.
          gate_flag("allocs_flat", true),
          // The throughput floor: two decode shards + two engine
          // partitions must at least double the serial per-push loop.
          // Below four hardware threads the topology cannot pay for its
          // own threads, so the gate is skipped (both identity rows above
          // still bind).
          with_skip_if(gate_abs("speedup", ">=", 2.0), "multicore",
                       Json::boolean(false)),
      };
      sharded.headlines = {"speedup", "sharded_requests_per_s",
                           "enqueue_blocked", "dequeue_blocked"};
      s.sections.push_back(std::move(sharded));

      scenarios->push_back(std::move(s));
    }

    // -----------------------------------------------------------------
    // trace_io (bm_trace): CSV parser, CSR build, file IO, 1M e2e and the
    // .dpt binary format.  Nightly tier only — the workloads are fixed at
    // 1M requests.
    {
      ScenarioSpec s;
      s.name = "trace_io";
      s.binary = "bm_trace";
      s.description = "streaming CSV parser, CSR build, .dpt binary format";
      s.quick = false;

      SectionSpec trace_io;
      trace_io.key = "trace_io";
      trace_io.thresholds = {
          gate_abs("csv_parse.speedup", ">=", 4.0),
          gate_abs("csv_parse.streaming_allocs", "<=", 16.0),
          gate_flag("csv_parse.sequences_identical", true),
          // O(1) CSR build: the alloc count must not scale with n (both
          // recorded sizes build with the same small constant).
          gate_abs("csr_build[*].build_allocs", "<=", 4.0),
          gate_flag("million_request_e2e.roundtrip_identical", true),
          gate_flag("million_request_e2e.threads8_identical", true),
          gate_abs("peak_rss_bytes", "<=", 1000e6),
      };
      trace_io.headlines = {"csv_parse.speedup", "csv_parse.streaming_mib_s",
                            "million_request_e2e.dp_greedy_solve_s"};
      s.sections.push_back(std::move(trace_io));

      SectionSpec binary_io;
      binary_io.key = "binary_io";
      binary_io.thresholds = {
          // The PR 6 acceptance: zero-copy open of a 1M-request trace under
          // 10 ms with checksums on, borrowing the mapping, bit-exact.
          gate_abs("open_map_ms", "<=", 10.0),
          gate_flag("map_borrows", true),
          gate_flag("roundtrip_identical", true),
          gate_abs("map_vs_read_speedup", ">=", 2.0),
      };
      binary_io.headlines = {"open_map_ms", "map_vs_csv_speedup",
                             "dpt_bytes"};
      s.sections.push_back(std::move(binary_io));

      scenarios->push_back(std::move(s));
    }

    return scenarios;
  }();
  return *registry;
}

}  // namespace dpg::bench
