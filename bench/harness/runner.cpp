#include "harness/runner.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "harness/gate.hpp"

namespace dpg::bench {
namespace {

std::string shell_quote(const std::string& arg) {
  std::string out = "'";
  for (const char c : arg) {
    if (c == '\'') {
      out += "'\\''";
    } else {
      out += c;
    }
  }
  out += "'";
  return out;
}

/// A scalar rendered for the markdown table (numbers keep their lexeme).
std::string render_scalar(const Json& value) {
  switch (value.kind()) {
    case Json::Kind::kNumber:
      return value.lexeme();
    case Json::Kind::kBool:
      return value.as_bool() ? "true" : "false";
    case Json::Kind::kString:
      return value.as_string();
    case Json::Kind::kNull:
      return "null";
    default:
      return "(composite)";
  }
}

}  // namespace

std::string read_text_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw JsonError("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (!in.good() && !in.eof()) throw JsonError("error reading " + path);
  return buffer.str();
}

void write_text_file(const std::string& path, const std::string& text) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw JsonError("cannot write " + tmp);
    out << text;
    if (!out) throw JsonError("error writing " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    throw JsonError("cannot rename " + tmp + " -> " + path);
  }
}

std::vector<const ScenarioSpec*> select_scenarios(const RunOptions& options) {
  std::vector<const ScenarioSpec*> selected;
  for (const ScenarioSpec& scenario : scenario_registry()) {
    if (!options.nightly && !scenario.quick) continue;
    selected.push_back(&scenario);
  }
  if (options.only.empty()) return selected;
  std::vector<const ScenarioSpec*> filtered;
  for (const std::string& name : options.only) {
    bool found = false;
    for (const ScenarioSpec* scenario : selected) {
      if (scenario->name == name) {
        filtered.push_back(scenario);
        found = true;
        break;
      }
    }
    if (!found) {
      throw JsonError("scenario '" + name + "' is not in the " +
                      (options.nightly ? std::string("nightly")
                                       : std::string("quick")) +
                      " tier (see `dpgreedy_bench list`)");
    }
  }
  return filtered;
}

Json build_bench_document(
    const std::vector<std::pair<const ScenarioSpec*, Json>>& results,
    const std::string& tier) {
  Json doc = Json::object();
  doc.set("schema", Json::string(kBenchSchemaV2));
  Json run = Json::object();
  run.set("generated_by", Json::string("dpgreedy_bench run"));
  run.set("tier", Json::string(tier));
  doc.set("run", std::move(run));

  Json sections = Json::object();
  for (const auto& [scenario, fragment] : results) {
    for (const SectionSpec& spec : scenario->sections) {
      const Json* data = fragment.find(spec.key);
      if (data == nullptr) {
        throw JsonError("scenario '" + scenario->name +
                        "' fragment is missing declared section '" + spec.key +
                        "'");
      }
      Json section = Json::object();
      section.set("scenario", Json::string(scenario->name));
      section.set("binary", Json::string(scenario->binary));
      Json thresholds = Json::array();
      for (const Json& gate : spec.thresholds) thresholds.push_back(gate);
      section.set("thresholds", std::move(thresholds));
      Json headlines = Json::array();
      for (const std::string& path : spec.headlines) {
        headlines.push_back(Json::string(path));
      }
      section.set("headlines", std::move(headlines));
      section.set("data", *data);
      sections.set(spec.key, std::move(section));
    }
  }
  doc.set("sections", std::move(sections));
  return doc;
}

Json run_scenarios(const RunOptions& options) {
  const std::vector<const ScenarioSpec*> selected = select_scenarios(options);
  const std::string bench_dir =
      options.bench_dir.empty() ? std::string(".") : options.bench_dir;
  const std::string fragment_dir =
      options.fragment_dir.empty() ? bench_dir : options.fragment_dir;

  std::vector<std::pair<const ScenarioSpec*, Json>> results;
  for (const ScenarioSpec* scenario : selected) {
    const std::string fragment_path =
        fragment_dir + "/" + scenario->name + ".fragment.json";
    std::string command = shell_quote(bench_dir + "/" + scenario->binary) +
                          " --fragment " + shell_quote(fragment_path);
    const std::string& extra =
        options.nightly ? scenario->nightly_args : scenario->quick_args;
    if (!extra.empty()) command += " " + extra;

    if (options.verbose) {
      std::fprintf(stderr, "[dpgreedy_bench] %s: %s\n",
                   scenario->name.c_str(), command.c_str());
    }
    const int status = std::system(command.c_str());
    if (status != 0) {
      throw JsonError("scenario '" + scenario->name + "' failed (command: " +
                      command + ", status " + std::to_string(status) + ")");
    }

    Json fragment;
    try {
      fragment = parse_json(read_text_file(fragment_path));
    } catch (const JsonError& error) {
      throw JsonError("scenario '" + scenario->name + "' wrote a malformed " +
                      "fragment: " + error.what());
    }
    if (!options.keep_fragments) std::remove(fragment_path.c_str());
    results.emplace_back(scenario, std::move(fragment));
  }
  return build_bench_document(results,
                              options.nightly ? "nightly" : "quick");
}

std::string render_trajectory_markdown(const Json& doc) {
  require_bench_schema_v2(doc, "bench document");
  const Json& sections = *doc.find("sections");

  std::string out;
  const Json* run = doc.find("run");
  const Json* tier = run != nullptr ? run->find("tier") : nullptr;
  out += "_Generated by `dpgreedy_bench render` from `BENCH_solvers.json`";
  if (tier != nullptr && tier->is_string()) {
    out += " (" + tier->as_string() + " tier)";
  }
  out += "; do not edit by hand._\n\n";

  out += "### Headline metrics\n\n";
  out += "| Section | Metric | Value |\n";
  out += "| --- | --- | --- |\n";
  for (const auto& [key, section] : sections.members()) {
    const Json* headlines = section.find("headlines");
    const Json* data = section.find("data");
    if (headlines == nullptr || data == nullptr) continue;
    for (std::size_t i = 0; i < headlines->size(); ++i) {
      const std::string& path = headlines->at(i).as_string();
      for (const ResolvedValue& resolved : resolve_path(*data, path)) {
        out += "| `" + key + "` | `" + resolved.path + "` | " +
               render_scalar(*resolved.value) + " |\n";
      }
    }
  }

  out += "\n### Declared gates (baseline self-check)\n\n";
  const GateReport report = evaluate_gates(doc, doc);
  out += "```\n" + render_gate_report(report) + "```\n";
  return out;
}

void update_performance_doc(const Json& doc, const std::string& md_path) {
  static const char* kBegin = "<!-- BEGIN BENCH TRAJECTORY -->";
  static const char* kEnd = "<!-- END BENCH TRAJECTORY -->";
  const std::string text = read_text_file(md_path);
  const std::size_t begin = text.find(kBegin);
  const std::size_t end = text.find(kEnd);
  if (begin == std::string::npos || end == std::string::npos || end < begin) {
    throw JsonError(md_path + " is missing the BENCH TRAJECTORY markers");
  }
  std::string updated = text.substr(0, begin);
  updated += kBegin;
  updated += "\n";
  updated += render_trajectory_markdown(doc);
  updated += text.substr(end);
  write_text_file(md_path, updated);
}

}  // namespace dpg::bench
