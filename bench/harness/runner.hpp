// The scenario runner: walks the registry, invokes each bench binary with
// `--fragment FILE`, merges the emitted sections with the declared
// thresholds into one schema-v2 document, and renders the perf-trajectory
// block of docs/performance.md from it.
#pragma once

#include <string>
#include <vector>

#include "harness/json.hpp"
#include "harness/scenario.hpp"

namespace dpg::bench {

struct RunOptions {
  /// nightly tier runs every scenario with nightly_args; the quick tier
  /// runs only scenarios marked quick, with quick_args.
  bool nightly = false;
  /// When non-empty, restricts the tier's list to these scenario names.
  std::vector<std::string> only;
  /// Directory holding the sibling bench binaries (default: the directory
  /// of the running dpgreedy_bench executable).
  std::string bench_dir;
  /// Directory for the intermediate fragment files (default: bench_dir).
  std::string fragment_dir;
  bool keep_fragments = false;
  bool verbose = true;
};

/// Scenarios the tier selects, in registry order.  Throws JsonError when a
/// name in `only` matches nothing (a typo must not silently pass CI).
[[nodiscard]] std::vector<const ScenarioSpec*> select_scenarios(
    const RunOptions& options);

/// Runs the selected scenarios and merges their fragments into a schema-v2
/// document.  Throws JsonError when a binary fails, a fragment is
/// malformed, or a declared section key is missing from its fragment.
[[nodiscard]] Json run_scenarios(const RunOptions& options);

/// Assembles the v2 envelope from already-parsed (scenario, fragment)
/// pairs — the merge step of run_scenarios, separated for testing.
[[nodiscard]] Json build_bench_document(
    const std::vector<std::pair<const ScenarioSpec*, Json>>& results,
    const std::string& tier);

/// The generated perf-trajectory markdown: per-section headline metrics plus
/// the self-evaluated gate table (doc checked against its own thresholds).
[[nodiscard]] std::string render_trajectory_markdown(const Json& doc);

/// Replaces the block between `<!-- BEGIN BENCH TRAJECTORY -->` and
/// `<!-- END BENCH TRAJECTORY -->` in `md_path` with the rendered
/// trajectory.  Throws JsonError when the markers are missing.
void update_performance_doc(const Json& doc, const std::string& md_path);

/// Reads a whole file (throws JsonError on IO failure, naming the path).
[[nodiscard]] std::string read_text_file(const std::string& path);

/// Atomically writes `text` to `path` via path.tmp + rename.
void write_text_file(const std::string& path, const std::string& text);

}  // namespace dpg::bench
