// Fig. 13 — impact of the discount factor α on the average cost of the
// three algorithms (Package_Served, Optimal, DP_Greedy) across pairs with
// different Jaccard similarities, α ∈ {0.2, 0.4, 0.6, 0.8}.
//
// Paper's story: for α < 0.5 packing always wins (Package_Served best,
// Optimal worst, DP_Greedy tracks Package_Served); as α grows the ordering
// flips (Optimal improves, Package_Served degrades) and at α = 0.8
// DP_Greedy is the best of the three, especially when J > 0.3.
#include <cstdio>

#include "harness_common.hpp"
#include "harness_solvers.hpp"
#include "trace/generators.hpp"
#include "util/strings.hpp"
#include "util/svg_chart.hpp"
#include "util/table.hpp"

using namespace dpg;

int main() {
  harness::print_header(
      "Fig. 13: impact of discount factor alpha on the three algorithms",
      "alpha<=0.4: Package_Served best / Optimal worst; alpha=0.8: DP_Greedy best");

  // Transfer-dominant, low-locality regime: per-item service pays mostly
  // transfers, so always-packing (2αλ per hop) genuinely hurts once α is
  // large.  See EXPERIMENTS.md for the regime discussion.
  PairedTraceConfig config;
  config.server_count = 50;
  config.requests_per_pair = 500;
  config.mean_gap = 2.0;
  config.locality = 0.2;
  config.pair_jaccard = {0.1, 0.2, 0.3, 0.4, 0.5, 0.65, 0.8, 0.9};
  Rng rng(42);
  const RequestSequence trace = generate_paired_trace(config, rng);

  const double theta = 0.3;
  for (const double alpha : {0.2, 0.4, 0.6, 0.8}) {
    CostModel model;
    model.mu = 1.0;
    model.lambda = 6.0;
    model.alpha = alpha;
    const OptimalBaselineResult optimal = solve_optimal_baseline(trace, model);

    std::printf("--- alpha = %.1f (theta = %.1f) ---\n", alpha, theta);
    TextTable table({"pair J", "Package_Served", "Optimal", "DP_Greedy",
                     "best"});
    std::vector<std::pair<double, double>> pack_series, opt_series, dpg_series;
    std::size_t dpg_wins = 0, pack_wins = 0, opt_wins = 0;
    for (std::size_t p = 0; p < config.pair_jaccard.size(); ++p) {
      const auto a = static_cast<ItemId>(2 * p);
      const auto b = static_cast<ItemId>(2 * p + 1);
      const ItemPair pair{a, b, config.pair_jaccard[p]};
      const double pack =
          solve_pair_package_served(trace, model, pair).ave_cost();
      const double opt = optimal.pair_ave_cost(a, b);
      // DP_Greedy applies its threshold: below θ the pair is not packed and
      // it behaves exactly like Optimal (selective packing ability).
      const double dpg = config.pair_jaccard[p] > theta
                             ? solve_pair_package(trace, model, pair).ave_cost()
                             : opt;
      const char* best = "DP_Greedy";
      if (pack <= dpg && pack <= opt) {
        best = "Package_Served";
        ++pack_wins;
      } else if (opt < dpg && opt < pack) {
        best = "Optimal";
        ++opt_wins;
      } else {
        ++dpg_wins;
      }
      table.add_row({format_fixed(config.pair_jaccard[p], 2),
                     format_fixed(pack, 4), format_fixed(opt, 4),
                     format_fixed(dpg, 4), best});
      pack_series.emplace_back(config.pair_jaccard[p], pack);
      opt_series.emplace_back(config.pair_jaccard[p], opt);
      dpg_series.emplace_back(config.pair_jaccard[p], dpg);
    }
    std::printf("%s", table.render().c_str());
    std::printf("wins: Package_Served %zu, Optimal %zu, DP_Greedy %zu\n\n",
                pack_wins, opt_wins, dpg_wins);

    SvgChart chart("Fig. 13 — ave cost vs J at α = " + format_fixed(alpha, 1),
                   "pair Jaccard similarity J", "average cost");
    chart.add_series("Package_Served", pack_series, "#2ca02c");
    chart.add_series("Optimal", opt_series, "#d62728");
    chart.add_series("DP_Greedy", dpg_series, "#1f77b4");
    const std::string file =
        "fig13_alpha" + format_fixed(alpha * 10, 0) + ".svg";
    chart.write_file(file);
    std::printf("chart written to %s\n\n", file.c_str());
  }
  std::printf(
      "reading: for alpha <= 0.6 Package_Served dominates and Optimal is\n"
      "worst; at alpha = 0.8 the ordering flips at low J (always-packing\n"
      "pays 2*alpha*lambda per hop) and DP_Greedy's selective packing keeps\n"
      "it best-or-near-best across the whole J range — never the worst,\n"
      "matching the paper's Fig. 13 story.  DP_Greedy can sit a hair above\n"
      "Optimal just past theta (greedy singleton service is approximate;\n"
      "Theorem 1 bounds the gap by 2/alpha).\n");
  return 0;
}
