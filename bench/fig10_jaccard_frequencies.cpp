// Fig. 10 — frequencies and Jaccard similarities of the frequent item
// pairs in the taxi trace.  The paper's chart shows per-pair request
// frequencies alongside a spread of Jaccard values (e.g. J(d8,d9)=0.5227);
// the reproduction must show the same structure: partner pairs with
// non-zero, spread-out similarities and zero similarity across pairs.
#include <cstdio>

#include "harness_common.hpp"
#include "harness_solvers.hpp"
#include "trace/stats.hpp"
#include "util/strings.hpp"

using namespace dpg;

int main() {
  harness::print_header(
      "Fig. 10: frequency and Jaccard similarity of frequent item pairs",
      "partner items show a spread of similarities; unrelated items ~0");

  const RequestSequence trace = harness::evaluation_trace();
  std::printf("%s\n", render_frequent_pairs(trace, 10).c_str());

  const CorrelationAnalysis analysis(trace);
  std::size_t zero_pairs = 0;
  std::size_t nonzero_pairs = 0;
  for (const PairCorrelation& p : analysis.sorted_pairs()) {
    (p.co_freq == 0 ? zero_pairs : nonzero_pairs)++;
  }
  std::printf("summary: %zu correlated pairs, %zu uncorrelated pairs "
              "(items only co-occur with their fleet partner)\n",
              nonzero_pairs, zero_pairs);
  return 0;
}
