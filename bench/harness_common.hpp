// Shared workload setup for the figure harnesses: the canonical taxi-fleet
// trace of the paper's evaluation (50 zones, 10 items, θ = 0.3, α = 0.8)
// with a spread of pair similarities, regenerated deterministically.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "mobility/simulator.hpp"
#include "obs/metrics.hpp"
#include "util/rng.hpp"

namespace dpg::harness {

/// The evaluation trace: 50 zones, 10 taxis/items, per-pair co-access
/// ramped so pair Jaccards spread over ~[0.1, 0.9] (Fig. 10's spectrum).
inline RequestSequence evaluation_trace(std::uint64_t seed = 42,
                                        double duration = 300.0) {
  MobilityConfig config;
  config.duration = duration;
  // Calibrated so the same-zone revisit gaps put the Fig. 12 cost peak near
  // ρ = 2, where the paper's trace peaks (see EXPERIMENTS.md).
  config.taxi.speed = 1.0;
  config.taxi.request_rate = 2.0;
  Rng rng(seed);
  return simulate_mobility(config, rng);
}

inline void print_header(const char* figure, const char* claim) {
  std::printf("============================================================\n");
  std::printf("%s\n", figure);
  std::printf("paper's qualitative claim: %s\n", claim);
  std::printf("============================================================\n");
}

/// Peak resident set size of this process in bytes (0 where unsupported).
/// Monotone over the process lifetime; harnesses record it per section so a
/// baseline diff localizes memory growth to the section that caused it.
inline std::uint64_t peak_rss_bytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<std::uint64_t>(usage.ru_maxrss);  // bytes on macOS
#else
  return static_cast<std::uint64_t>(usage.ru_maxrss) * 1024;  // KiB on Linux
#endif
#else
  return 0;
#endif
}

/// The current merged counters as one flat JSON object fragment
/// (`{"a": 1, "b": 2}`) for embedding into a benchmark's JSON section.
inline std::string metrics_counters_json() {
  std::string out = "{";
  const obs::MetricsSnapshot snapshot = obs::snapshot_metrics();
  for (std::size_t i = 0; i < snapshot.counters.size(); ++i) {
    if (i != 0) out += ", ";
    out += "\"" + snapshot.counters[i].first +
           "\": " + std::to_string(snapshot.counters[i].second);
  }
  out += "}";
  return out;
}

}  // namespace dpg::harness
