// Shared workload setup for the figure harnesses: the canonical taxi-fleet
// trace of the paper's evaluation (50 zones, 10 items, θ = 0.3, α = 0.8)
// with a spread of pair similarities, regenerated deterministically.
#pragma once

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "mobility/simulator.hpp"
#include "obs/metrics.hpp"
#include "util/rng.hpp"

namespace dpg::harness {

/// The evaluation trace: 50 zones, 10 taxis/items, per-pair co-access
/// ramped so pair Jaccards spread over ~[0.1, 0.9] (Fig. 10's spectrum).
inline RequestSequence evaluation_trace(std::uint64_t seed = 42,
                                        double duration = 300.0) {
  MobilityConfig config;
  config.duration = duration;
  // Calibrated so the same-zone revisit gaps put the Fig. 12 cost peak near
  // ρ = 2, where the paper's trace peaks (see EXPERIMENTS.md).
  config.taxi.speed = 1.0;
  config.taxi.request_rate = 2.0;
  Rng rng(seed);
  return simulate_mobility(config, rng);
}

inline void print_header(const char* figure, const char* claim) {
  std::printf("============================================================\n");
  std::printf("%s\n", figure);
  std::printf("paper's qualitative claim: %s\n", claim);
  std::printf("============================================================\n");
}

/// Peak resident set size of this process in bytes (0 where unsupported).
/// Monotone over the process lifetime; harnesses record it per section so a
/// baseline diff localizes memory growth to the section that caused it.
inline std::uint64_t peak_rss_bytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<std::uint64_t>(usage.ru_maxrss);  // bytes on macOS
#else
  return static_cast<std::uint64_t>(usage.ru_maxrss) * 1024;  // KiB on Linux
#endif
#else
  return 0;
#endif
}

/// Replaces (or inserts) the one-line `"<key>": ...` section right after the
/// opening brace of the bm_phase1-written baseline, preserving every other
/// line.  Each satellite harness owns one or more keys this way, so the
/// committed baseline stays a single file (`section` must be a single line
/// starting with `  "<key>":` and ending with a trailing comma).
inline int splice_section(const std::string& path, const std::string& key,
                          const std::string& section) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s (run bm_phase1 first)\n",
                 path.c_str());
    return 1;
  }
  const std::string prefix = "  \"" + key + "\":";
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) {
    if (line.rfind(prefix, 0) == 0) continue;  // replace old
    lines.push_back(line);
  }
  in.close();
  if (lines.empty() || lines.front() != "{") {
    std::fprintf(stderr, "%s does not look like the bench baseline\n",
                 path.c_str());
    return 1;
  }
  std::ofstream out(path, std::ios::trunc);
  out << lines.front() << "\n" << section << "\n";
  for (std::size_t i = 1; i < lines.size(); ++i) out << lines[i] << "\n";
  return out ? 0 : 1;
}

/// The current merged counters as one flat JSON object fragment
/// (`{"a": 1, "b": 2}`) for embedding into a benchmark's JSON section.
inline std::string metrics_counters_json() {
  std::string out = "{";
  const obs::MetricsSnapshot snapshot = obs::snapshot_metrics();
  for (std::size_t i = 0; i < snapshot.counters.size(); ++i) {
    if (i != 0) out += ", ";
    out += "\"" + snapshot.counters[i].first +
           "\": " + std::to_string(snapshot.counters[i].second);
  }
  out += "}";
  return out;
}

}  // namespace dpg::harness
