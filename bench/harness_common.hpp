// Shared workload setup for the figure harnesses: the canonical taxi-fleet
// trace of the paper's evaluation (50 zones, 10 items, θ = 0.3, α = 0.8)
// with a spread of pair similarities, regenerated deterministically.
#pragma once

#include <cstdio>

#include "mobility/simulator.hpp"
#include "util/rng.hpp"

namespace dpg::harness {

/// The evaluation trace: 50 zones, 10 taxis/items, per-pair co-access
/// ramped so pair Jaccards spread over ~[0.1, 0.9] (Fig. 10's spectrum).
inline RequestSequence evaluation_trace(std::uint64_t seed = 42,
                                        double duration = 300.0) {
  MobilityConfig config;
  config.duration = duration;
  // Calibrated so the same-zone revisit gaps put the Fig. 12 cost peak near
  // ρ = 2, where the paper's trace peaks (see EXPERIMENTS.md).
  config.taxi.speed = 1.0;
  config.taxi.request_rate = 2.0;
  Rng rng(seed);
  return simulate_mobility(config, rng);
}

inline void print_header(const char* figure, const char* claim) {
  std::printf("============================================================\n");
  std::printf("%s\n", figure);
  std::printf("paper's qualitative claim: %s\n", claim);
  std::printf("============================================================\n");
}

}  // namespace dpg::harness
