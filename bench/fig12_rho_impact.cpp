// Fig. 12 — impact of the rate ratio ρ = λ/μ (with λ + μ fixed at 6) on
// the average cost of DP_Greedy and the Optimal baseline, ρ ∈ [0.2, 5.0].
// The paper reports a parabola-like curve: cost rises steeply while ρ
// grows towards ~2 (neither caching nor transferring is clearly cheaper),
// then falls off slowly; DP_Greedy tracks below-or-near Optimal.
#include <cstdio>

#include "harness_common.hpp"
#include "harness_solvers.hpp"
#include "util/strings.hpp"
#include "util/svg_chart.hpp"
#include "util/table.hpp"

using namespace dpg;

int main() {
  harness::print_header(
      "Fig. 12: impact of rho = lambda/mu (lambda + mu = 6) on average cost",
      "parabola-like curve peaking near rho = 2 (mu = 2, lambda = 4)");

  const RequestSequence trace = harness::evaluation_trace();
  const double theta = 0.3;
  const double alpha = 0.8;

  TextTable table({"rho", "mu", "lambda", "DP_Greedy ave", "Optimal ave"});
  std::vector<std::pair<double, double>> dpg_series, opt_series;
  double peak_rho_dpg = 0.0, peak_cost_dpg = -1.0;
  double peak_rho_opt = 0.0, peak_cost_opt = -1.0;
  for (double rho = 0.2; rho <= 5.0 + 1e-9; rho += 0.2) {
    const CostModel model = CostModel::from_rho(rho, 6.0, alpha);
    DpGreedyOptions options;
    options.theta = theta;
    const double dpg = solve_dp_greedy(trace, model, options).ave_cost;
    const double opt = solve_optimal_baseline(trace, model).ave_cost;
    if (dpg > peak_cost_dpg) {
      peak_cost_dpg = dpg;
      peak_rho_dpg = rho;
    }
    if (opt > peak_cost_opt) {
      peak_cost_opt = opt;
      peak_rho_opt = rho;
    }
    table.add_row({format_fixed(rho, 1), format_fixed(model.mu, 3),
                   format_fixed(model.lambda, 3), format_fixed(dpg, 4),
                   format_fixed(opt, 4)});
    dpg_series.emplace_back(rho, dpg);
    opt_series.emplace_back(rho, opt);
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("measured peaks: DP_Greedy at rho ≈ %s (ave %s), "
              "Optimal at rho ≈ %s (ave %s); paper peaks around rho = 2\n",
              format_fixed(peak_rho_dpg, 1).c_str(),
              format_fixed(peak_cost_dpg, 3).c_str(),
              format_fixed(peak_rho_opt, 1).c_str(),
              format_fixed(peak_cost_opt, 3).c_str());

  SvgChart chart("Fig. 12 — ave cost vs ρ = λ/μ (λ+μ = 6, θ=0.3, α=0.8)",
                 "ρ = λ/μ", "average cost");
  chart.add_series("DP_Greedy", dpg_series, "#1f77b4");
  chart.add_series("Optimal", opt_series, "#d62728");
  chart.write_file("fig12.svg");
  std::printf("chart written to fig12.svg\n");
  return 0;
}
