// Solver internals for the figure/table harnesses — NOT part of the public
// API.
//
// Applications include src/dpgreedy.hpp and dispatch through the registry;
// the reproduction harnesses in this directory genuinely sweep algorithm
// internals (explicit pairs, DP options, correlation structures), so they —
// and only they — pull the concrete solver headers, through this one
// bench-local include.
#pragma once

#include "solver/baselines.hpp"        // IWYU pragma: export
#include "solver/bruteforce.hpp"       // IWYU pragma: export
#include "solver/correlation.hpp"      // IWYU pragma: export
#include "solver/cut_operation.hpp"    // IWYU pragma: export
#include "solver/dp_greedy.hpp"        // IWYU pragma: export
#include "solver/greedy.hpp"           // IWYU pragma: export
#include "solver/group_solver.hpp"     // IWYU pragma: export
#include "solver/lower_bound.hpp"      // IWYU pragma: export
#include "solver/online.hpp"           // IWYU pragma: export
#include "solver/online_dp_greedy.hpp" // IWYU pragma: export
#include "solver/optimal_offline.hpp"  // IWYU pragma: export
#include "solver/pairing.hpp"          // IWYU pragma: export
#include "solver/phase2_shard.hpp"     // IWYU pragma: export
#include "solver/subset_exact.hpp"     // IWYU pragma: export
#include "solver/temporal_correlation.hpp"  // IWYU pragma: export
#include "solver/workspace.hpp"        // IWYU pragma: export
