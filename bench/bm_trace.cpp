// Trace-I/O perf harness: streaming CSV parser vs the legacy CsvTable path,
// allocation counts for CSR sequence builds, buffered file write/read
// throughput, a million-request end-to-end dp_greedy run, and the `.dpt`
// binary format (mmap open latency, mmap-vs-read, convert throughput).
// Emits the "trace_io" and "binary_io" sections as a fragment for
// dpgreedy_bench to merge (see bench/harness/fragment.hpp); with
// --hundred-million it additionally runs the 100M-request end-to-end
// pipeline (generate -> CSV write -> convert -> mmap open -> dp_greedy
// solve) and records it as "hundred_million_e2e".
//
// Usage: bm_trace [--fragment FILE] [--hundred-million]
// (default: bm_trace.fragment.json in the CWD.  The 100M run needs ~10 GB
// of RAM, ~8 GB of /tmp and several minutes, so it is opt-in and its
// section is informational — not part of the scenario registry.)
//
// Allocation counts come from a global operator new/delete override local to
// this binary (same scheme as bm_phase1): exact counts, not estimates.
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <new>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "engine/registry.hpp"
#include "harness/fragment.hpp"
#include "harness_common.hpp"
#include "trace/dpt.hpp"
#include "trace/generators.hpp"
#include "trace/io.hpp"
#include "util/stopwatch.hpp"

namespace {

std::atomic<std::uint64_t> g_allocations{0};

void* counted_alloc(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size > 0 ? size : 1);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* counted_aligned_alloc(std::size_t size, std::size_t alignment) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, alignment, size > 0 ? size : alignment) != 0) {
    throw std::bad_alloc();
  }
  return p;
}

}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace dpg {
namespace {

constexpr int kRepetitions = 5;

std::uint64_t allocations_now() {
  return g_allocations.load(std::memory_order_relaxed);
}

/// Best-of-N wall time of `fn`, in milliseconds.
template <typename Fn>
double time_best_ms(Fn&& fn, int repetitions = kRepetitions) {
  double best = 1e300;
  for (int rep = 0; rep < repetitions; ++rep) {
    Stopwatch watch;
    fn();
    best = std::min(best, watch.elapsed_seconds() * 1e3);
  }
  return best;
}

bool same_sequence(const RequestSequence& a, const RequestSequence& b) {
  if (a.server_count() != b.server_count() ||
      a.item_count() != b.item_count() || a.size() != b.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].server != b[i].server || a[i].time != b[i].time ||
        !std::equal(a[i].items.begin(), a[i].items.end(), b[i].items.begin(),
                    b[i].items.end())) {
      return false;
    }
  }
  return true;
}

/// Streaming vs legacy parser on one serialized Zipf trace.
struct ParseReport {
  std::size_t requests = 0;
  std::size_t bytes = 0;
  double legacy_ms = 0.0;
  double streaming_ms = 0.0;
  double legacy_mib_s = 0.0;
  double streaming_mib_s = 0.0;
  std::uint64_t legacy_allocs = 0;
  std::uint64_t streaming_allocs = 0;
  bool sequences_identical = false;
};

ParseReport run_parse(std::size_t requests) {
  ZipfTraceConfig config;
  config.server_count = 50;
  config.item_count = 2000;
  config.request_count = requests;
  config.co_access = 0.5;
  Rng rng(21);
  const std::string csv = trace_to_csv(generate_zipf_trace(config, rng));

  ParseReport report;
  report.requests = requests;
  report.bytes = csv.size();
  report.legacy_ms = time_best_ms([&] {
    if (trace_from_csv_legacy(csv).size() != requests) std::abort();
  });
  report.streaming_ms = time_best_ms([&] {
    if (trace_from_csv(csv).size() != requests) std::abort();
  });
  const double mib = static_cast<double>(csv.size()) / (1024.0 * 1024.0);
  report.legacy_mib_s = mib / (report.legacy_ms / 1e3);
  report.streaming_mib_s = mib / (report.streaming_ms / 1e3);

  std::uint64_t before = allocations_now();
  const RequestSequence legacy = trace_from_csv_legacy(csv);
  report.legacy_allocs = allocations_now() - before;
  before = allocations_now();
  const RequestSequence streamed = trace_from_csv(csv);
  report.streaming_allocs = allocations_now() - before;
  report.sequences_identical = same_sequence(legacy, streamed);
  return report;
}

/// Allocation count of one pre-reserved CSR build at size n — constant in n
/// (the build permutes into place and rebuilds four flat arrays), which the
/// baseline demonstrates by recording the count at n and 2n.
struct BuildReport {
  std::size_t requests = 0;
  std::uint64_t reserve_allocs = 0;  // growing the builder's six flat arrays
  std::uint64_t build_allocs = 0;    // everything after reserve, incl. build()
};

BuildReport run_build(std::size_t requests) {
  const std::size_t servers = 50, items = 2000;
  Rng rng(33);
  BuildReport report;
  report.requests = requests;
  SequenceBuilder builder(servers, items);
  std::uint64_t before = allocations_now();
  builder.reserve(requests, 2 * requests);
  report.reserve_allocs = allocations_now() - before;
  before = allocations_now();
  for (std::size_t i = 0; i < requests; ++i) {
    builder.begin_request(static_cast<ServerId>(rng.next_below(servers)),
                          static_cast<Time>(i + 1));
    builder.push_item(static_cast<ItemId>(rng.next_below(items)));
    builder.push_item(static_cast<ItemId>(rng.next_below(items)));
    builder.end_request();
  }
  const RequestSequence seq = std::move(builder).build();
  report.build_allocs = allocations_now() - before;
  if (seq.size() != requests) std::abort();
  return report;
}

/// Buffered file write + sized-read round trip on a large trace.
struct FileReport {
  std::size_t requests = 0;
  std::size_t bytes = 0;
  double write_ms = 0.0;
  double read_ms = 0.0;
  double write_mib_s = 0.0;
  double read_mib_s = 0.0;
};

FileReport run_file(std::size_t requests) {
  ZipfTraceConfig config;
  config.server_count = 50;
  config.item_count = 2000;
  config.request_count = requests;
  Rng rng(44);
  const RequestSequence seq = generate_zipf_trace(config, rng);
  const std::string path = "/tmp/dpg_bm_trace.csv";

  FileReport report;
  report.requests = requests;
  report.write_ms = time_best_ms([&] { write_trace_file(path, seq); });
  report.read_ms = time_best_ms([&] {
    if (read_trace_file(path).size() != requests) std::abort();
  });
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  report.bytes = in ? static_cast<std::size_t>(in.tellg()) : 0;
  const double mib = static_cast<double>(report.bytes) / (1024.0 * 1024.0);
  report.write_mib_s = mib / (report.write_ms / 1e3);
  report.read_mib_s = mib / (report.read_ms / 1e3);
  std::remove(path.c_str());
  return report;
}

/// Million-request end to end: generate, file round trip, dp_greedy through
/// the registry.  Uniform workload over 200k items keeps every per-item flow
/// short, so the quadratic DP stays linear overall — the regime the CSR
/// data plane is built for.
struct MillionReport {
  std::size_t requests = 0;
  std::size_t items = 0;
  std::size_t file_bytes = 0;
  double generate_s = 0.0;
  double write_s = 0.0;
  double read_s = 0.0;
  double solve_s = 0.0;            // serial (threads=0) dp_greedy solve
  double solve_threads8_s = 0.0;   // the same solve at SolverConfig threads=8
  std::size_t cores = 0;           // hardware_concurrency of the bench host
  Cost total_cost = 0.0;
  bool roundtrip_identical = false;
  bool threads_identical = false;  // 8-thread report bitwise == serial
};

MillionReport run_million() {
  UniformTraceConfig config;
  config.server_count = 50;
  config.item_count = 200000;
  config.request_count = 1000000;
  config.mean_gap = 0.05;

  MillionReport report;
  report.requests = config.request_count;
  report.items = config.item_count;

  Rng rng(55);
  Stopwatch watch;
  const RequestSequence seq = generate_uniform_trace(config, rng);
  report.generate_s = watch.elapsed_seconds();

  const std::string path = "/tmp/dpg_bm_trace_1m.csv";
  watch = Stopwatch();
  write_trace_file(path, seq);
  report.write_s = watch.elapsed_seconds();
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  report.file_bytes = in ? static_cast<std::size_t>(in.tellg()) : 0;

  watch = Stopwatch();
  const RequestSequence restored =
      read_trace_file(path, seq.server_count(), seq.item_count());
  report.read_s = watch.elapsed_seconds();
  std::remove(path.c_str());
  report.roundtrip_identical = same_sequence(seq, restored);

  SolverConfig solver_config;
  solver_config.keep_schedules = false;
  watch = Stopwatch();
  const RunReport run =
      builtin_registry().run("dp_greedy", restored, CostModel{1.0, 2.0, 0.8},
                             solver_config);
  report.solve_s = watch.elapsed_seconds();
  report.total_cost = run.total_cost;

  // The same solve with Phase 2 sharded over 8 workers.  Whatever the host
  // (cores is recorded alongside), the report must stay bitwise identical.
  report.cores = std::thread::hardware_concurrency();
  watch = Stopwatch();
  const RunReport pooled =
      builtin_registry().run("dp_greedy", restored, CostModel{1.0, 2.0, 0.8},
                             SolverConfig{solver_config}.threads(8));
  report.solve_threads8_s = watch.elapsed_seconds();
  report.threads_identical = pooled.total_cost == run.total_cost &&
                             pooled.cache_cost == run.cache_cost &&
                             pooled.transfer_cost == run.transfer_cost &&
                             pooled.transfer_events == run.transfer_events &&
                             pooled.cache_segments == run.cache_segments;
  return report;
}

std::size_t file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  return in ? static_cast<std::size_t>(in.tellg()) : 0;
}

/// `.dpt` binary format on a 1M-request trace: write + open latency in both
/// modes (mmap borrow vs untrusting read-copy), the CSV parse of the same
/// trace for scale, and convert throughput both directions.  The mmap open
/// is the acceptance-gated number: < 10 ms with checksum verification on.
struct BinaryIoReport {
  std::size_t requests = 0;
  std::size_t csv_bytes = 0;
  std::size_t dpt_bytes = 0;
  double csv_write_ms = 0.0;
  double dpt_write_ms = 0.0;
  double open_map_ms = 0.0;          // kMap, checksums verified (default)
  double open_map_nocheck_ms = 0.0;  // kMap, verify_checksums = false
  double open_read_ms = 0.0;         // kRead: buffered read + rebuild
  double csv_parse_ms = 0.0;         // read_trace_file on the same trace
  double convert_csv_to_dpt_ms = 0.0;
  double convert_dpt_to_csv_ms = 0.0;
  bool map_borrows = false;
  bool roundtrip_identical = false;
};

BinaryIoReport run_binary_io() {
  UniformTraceConfig config;
  config.server_count = 50;
  config.item_count = 200000;
  config.request_count = 1000000;
  config.mean_gap = 0.05;
  Rng rng(66);
  const RequestSequence seq = generate_uniform_trace(config, rng);

  const std::string csv_path = "/tmp/dpg_bm_binary_io.csv";
  const std::string dpt_path = "/tmp/dpg_bm_binary_io.dpt";
  const std::string csv_out = "/tmp/dpg_bm_binary_io_out.csv";

  BinaryIoReport report;
  report.requests = config.request_count;
  report.csv_write_ms = time_best_ms([&] { write_trace_file(csv_path, seq); });
  report.dpt_write_ms = time_best_ms([&] { write_trace_dpt(dpt_path, seq); });
  report.csv_bytes = file_bytes(csv_path);
  report.dpt_bytes = file_bytes(dpt_path);

  report.open_map_ms = time_best_ms([&] {
    if (read_trace_dpt(dpt_path).size() != report.requests) std::abort();
  });
  DptReadOptions nocheck;
  nocheck.verify_checksums = false;
  report.open_map_nocheck_ms = time_best_ms([&] {
    if (read_trace_dpt(dpt_path, nocheck).size() != report.requests) {
      std::abort();
    }
  });
  DptReadOptions copy;
  copy.mode = DptOpenMode::kRead;
  report.open_read_ms = time_best_ms([&] {
    if (read_trace_dpt(dpt_path, copy).size() != report.requests) {
      std::abort();
    }
  });
  report.csv_parse_ms = time_best_ms([&] {
    if (read_trace_file(csv_path).size() != report.requests) std::abort();
  });

  // Convert throughput: exactly what `dpgreedy convert` does per direction.
  report.convert_csv_to_dpt_ms = time_best_ms(
      [&] { write_trace_dpt(dpt_path, read_trace_file(csv_path)); }, 3);
  report.convert_dpt_to_csv_ms = time_best_ms(
      [&] { write_trace_file(csv_out, read_trace_dpt(dpt_path)); }, 3);

  const RequestSequence mapped = read_trace_dpt(dpt_path);
  report.map_borrows = mapped.borrows_storage();
  report.roundtrip_identical = same_sequence(seq, mapped);

  std::remove(csv_path.c_str());
  std::remove(csv_out.c_str());
  std::remove(dpt_path.c_str());
  return report;
}

/// 100M-request end to end, staged so only one trace-sized object is alive
/// at a time: generate -> CSV write -> (free) -> CSV parse + `.dpt` write
/// (= convert) -> (free) -> mmap open -> dp_greedy solve on the borrowed
/// sequence.  Same workload shape as the 1M run, scaled 100x.
struct HundredMillionReport {
  std::size_t requests = 0;
  std::size_t items = 0;
  std::size_t csv_bytes = 0;
  std::size_t dpt_bytes = 0;
  double generate_s = 0.0;
  double csv_write_s = 0.0;
  double convert_s = 0.0;
  double open_ms = 0.0;          // checksum-verified mmap open
  double open_nocheck_ms = 0.0;  // mmap open, verify_checksums = false
  double solve_s = 0.0;
  Cost total_cost = 0.0;
  bool map_borrows = false;
};

HundredMillionReport run_hundred_million() {
  UniformTraceConfig config;
  config.server_count = 50;
  config.item_count = 20000000;
  config.request_count = 100000000;
  config.mean_gap = 0.05;

  HundredMillionReport report;
  report.requests = config.request_count;
  report.items = config.item_count;

  const std::string csv_path = "/tmp/dpg_bm_trace_100m.csv";
  const std::string dpt_path = "/tmp/dpg_bm_trace_100m.dpt";

  {
    Rng rng(77);
    Stopwatch watch;
    const RequestSequence seq = generate_uniform_trace(config, rng);
    report.generate_s = watch.elapsed_seconds();
    watch = Stopwatch();
    write_trace_file(csv_path, seq);
    report.csv_write_s = watch.elapsed_seconds();
  }
  report.csv_bytes = file_bytes(csv_path);

  {
    Stopwatch watch;
    const RequestSequence parsed = read_trace_file(csv_path);
    write_trace_dpt(dpt_path, parsed);
    report.convert_s = watch.elapsed_seconds();
  }
  std::remove(csv_path.c_str());
  report.dpt_bytes = file_bytes(dpt_path);

  {
    DptReadOptions nocheck;
    nocheck.verify_checksums = false;
    Stopwatch nocheck_watch;
    const RequestSequence structural = read_trace_dpt(dpt_path, nocheck);
    report.open_nocheck_ms = nocheck_watch.elapsed_seconds() * 1e3;
    if (structural.size() != report.requests) std::abort();
  }
  Stopwatch watch;
  const RequestSequence mapped = read_trace_dpt(dpt_path);
  report.open_ms = watch.elapsed_seconds() * 1e3;
  report.map_borrows = mapped.borrows_storage();

  SolverConfig solver_config;
  solver_config.keep_schedules = false;
  watch = Stopwatch();
  const RunReport run = builtin_registry().run(
      "dp_greedy", mapped, CostModel{1.0, 2.0, 0.8}, solver_config);
  report.solve_s = watch.elapsed_seconds();
  report.total_cost = run.total_cost;
  std::remove(dpt_path.c_str());
  return report;
}

int run(const std::string& fragment_path, bool with_hundred_million) {
  std::printf("csv parse (legacy vs streaming) ...\n");
  const ParseReport parse = run_parse(200000);
  std::printf("csr build allocations ...\n");
  const BuildReport build_n = run_build(100000);
  const BuildReport build_2n = run_build(200000);
  std::printf("file write/read ...\n");
  const FileReport file = run_file(200000);
  std::printf("million-request end to end ...\n");
  const MillionReport million = run_million();
  std::printf("binary .dpt format ...\n");
  const BinaryIoReport binary = run_binary_io();

  std::ostringstream section;
  section.setf(std::ios::fixed);
  section.precision(3);
  section << "{\"repetitions\": "
          << kRepetitions << ", \"csv_parse\": {\"requests\": "
          << parse.requests << ", \"bytes\": " << parse.bytes
          << ", \"legacy_ms\": " << parse.legacy_ms
          << ", \"streaming_ms\": " << parse.streaming_ms
          << ", \"legacy_mib_s\": " << parse.legacy_mib_s
          << ", \"streaming_mib_s\": " << parse.streaming_mib_s
          << ", \"speedup\": " << parse.legacy_ms / parse.streaming_ms
          << ", \"legacy_allocs\": " << parse.legacy_allocs
          << ", \"streaming_allocs\": " << parse.streaming_allocs
          << ", \"sequences_identical\": "
          << (parse.sequences_identical ? "true" : "false")
          << "}, \"csr_build\": [{\"requests\": " << build_n.requests
          << ", \"reserve_allocs\": " << build_n.reserve_allocs
          << ", \"build_allocs\": " << build_n.build_allocs
          << "}, {\"requests\": " << build_2n.requests
          << ", \"reserve_allocs\": " << build_2n.reserve_allocs
          << ", \"build_allocs\": " << build_2n.build_allocs
          << "}], \"file_io\": {\"requests\": " << file.requests
          << ", \"bytes\": " << file.bytes
          << ", \"write_ms\": " << file.write_ms
          << ", \"read_ms\": " << file.read_ms
          << ", \"write_mib_s\": " << file.write_mib_s
          << ", \"read_mib_s\": " << file.read_mib_s
          << "}, \"million_request_e2e\": {\"requests\": " << million.requests
          << ", \"items\": " << million.items
          << ", \"file_bytes\": " << million.file_bytes
          << ", \"generate_s\": " << million.generate_s
          << ", \"write_s\": " << million.write_s
          << ", \"read_s\": " << million.read_s
          << ", \"dp_greedy_solve_s\": " << million.solve_s
          << ", \"dp_greedy_solve_threads8_s\": " << million.solve_threads8_s
          << ", \"cores\": " << million.cores
          << ", \"threads8_identical\": "
          << (million.threads_identical ? "true" : "false")
          << ", \"total_cost\": " << million.total_cost
          << ", \"roundtrip_identical\": "
          << (million.roundtrip_identical ? "true" : "false")
          << "}, \"peak_rss_bytes\": " << harness::peak_rss_bytes() << "}";

  std::ostringstream binary_section;
  binary_section.setf(std::ios::fixed);
  binary_section.precision(3);
  binary_section
      << "{\"repetitions\": "
      << kRepetitions << ", \"requests\": " << binary.requests
      << ", \"csv_bytes\": " << binary.csv_bytes
      << ", \"dpt_bytes\": " << binary.dpt_bytes
      << ", \"csv_write_ms\": " << binary.csv_write_ms
      << ", \"dpt_write_ms\": " << binary.dpt_write_ms
      << ", \"open_map_ms\": " << binary.open_map_ms
      << ", \"open_map_nocheck_ms\": " << binary.open_map_nocheck_ms
      << ", \"open_read_ms\": " << binary.open_read_ms
      << ", \"csv_parse_ms\": " << binary.csv_parse_ms
      << ", \"map_vs_read_speedup\": "
      << binary.open_read_ms / binary.open_map_ms
      << ", \"map_vs_csv_speedup\": "
      << binary.csv_parse_ms / binary.open_map_ms
      << ", \"convert_csv_to_dpt_ms\": " << binary.convert_csv_to_dpt_ms
      << ", \"convert_dpt_to_csv_ms\": " << binary.convert_dpt_to_csv_ms
      << ", \"convert_csv_to_dpt_mib_s\": "
      << static_cast<double>(binary.csv_bytes) / (1024.0 * 1024.0) /
             (binary.convert_csv_to_dpt_ms / 1e3)
      << ", \"convert_dpt_to_csv_mib_s\": "
      << static_cast<double>(binary.dpt_bytes) / (1024.0 * 1024.0) /
             (binary.convert_dpt_to_csv_ms / 1e3)
      << ", \"map_borrows\": " << (binary.map_borrows ? "true" : "false")
      << ", \"roundtrip_identical\": "
      << (binary.roundtrip_identical ? "true" : "false") << "}";

  bench::FragmentSections sections = {{"trace_io", section.str()},
                                      {"binary_io", binary_section.str()}};
  if (with_hundred_million) {
    std::printf("100M-request end to end (this takes minutes) ...\n");
    const HundredMillionReport hundred = run_hundred_million();
    std::ostringstream hundred_section;
    hundred_section.setf(std::ios::fixed);
    hundred_section.precision(3);
    hundred_section
        << "{\"requests\": " << hundred.requests
        << ", \"items\": " << hundred.items
        << ", \"csv_bytes\": " << hundred.csv_bytes
        << ", \"dpt_bytes\": " << hundred.dpt_bytes
        << ", \"generate_s\": " << hundred.generate_s
        << ", \"csv_write_s\": " << hundred.csv_write_s
        << ", \"convert_s\": " << hundred.convert_s
        << ", \"open_map_ms\": " << hundred.open_ms
        << ", \"open_map_nocheck_ms\": " << hundred.open_nocheck_ms
        << ", \"dp_greedy_solve_s\": " << hundred.solve_s
        << ", \"total_cost\": " << hundred.total_cost
        << ", \"map_borrows\": " << (hundred.map_borrows ? "true" : "false")
        << ", \"peak_rss_bytes\": " << harness::peak_rss_bytes() << "}";
    sections.emplace_back("hundred_million_e2e", hundred_section.str());
    std::printf(
        "100M e2e: generate %.1fs  csv write %.1fs (%.1f GiB)  convert %.1fs "
        "(%.1f GiB .dpt)  mmap open %.2f ms (nocheck %.2f ms)  dp_greedy "
        "%.1fs  cost %.2f  %s\n",
        hundred.generate_s, hundred.csv_write_s,
        static_cast<double>(hundred.csv_bytes) / (1024.0 * 1024.0 * 1024.0),
        hundred.convert_s,
        static_cast<double>(hundred.dpt_bytes) / (1024.0 * 1024.0 * 1024.0),
        hundred.open_ms, hundred.open_nocheck_ms, hundred.solve_s,
        hundred.total_cost, hundred.map_borrows ? "borrowed" : "OWNED?");
  }
  const int status = bench::write_fragment(fragment_path, sections);
  if (status == 0) std::printf("wrote %s\n", fragment_path.c_str());

  std::printf(
      "parse %zu rows (%.1f MiB): legacy %.2f ms (%.0f MiB/s, %llu allocs)  "
      "streaming %.2f ms (%.0f MiB/s, %llu allocs)  speedup %.2fx  %s\n",
      parse.requests, static_cast<double>(parse.bytes) / (1024.0 * 1024.0),
      parse.legacy_ms, parse.legacy_mib_s,
      static_cast<unsigned long long>(parse.legacy_allocs), parse.streaming_ms,
      parse.streaming_mib_s,
      static_cast<unsigned long long>(parse.streaming_allocs),
      parse.legacy_ms / parse.streaming_ms,
      parse.sequences_identical ? "identical" : "DIFFERS");
  std::printf(
      "csr build: n=%zu -> %llu allocs after reserve, n=%zu -> %llu "
      "(constant, not per-request)\n",
      build_n.requests, static_cast<unsigned long long>(build_n.build_allocs),
      build_2n.requests,
      static_cast<unsigned long long>(build_2n.build_allocs));
  std::printf(
      "file io %zu rows: write %.2f ms (%.0f MiB/s)  read %.2f ms "
      "(%.0f MiB/s)\n",
      file.requests, file.write_ms, file.write_mib_s, file.read_ms,
      file.read_mib_s);
  std::printf(
      "1M e2e: generate %.2fs  write %.2fs (%.1f MiB)  read %.2fs  "
      "dp_greedy %.2fs  cost %.2f  roundtrip %s\n",
      million.generate_s, million.write_s,
      static_cast<double>(million.file_bytes) / (1024.0 * 1024.0),
      million.read_s, million.solve_s, million.total_cost,
      million.roundtrip_identical ? "identical" : "DIFFERS");
  std::printf(
      "1M e2e threads=8: dp_greedy %.2fs (serial %.2fs, %.2fx, %zu cores)  "
      "report %s\n",
      million.solve_threads8_s, million.solve_s,
      million.solve_threads8_s > 0.0
          ? million.solve_s / million.solve_threads8_s
          : 0.0,
      million.cores, million.threads_identical ? "identical" : "DIFFERS");

  std::printf(
      "binary io 1M rows: dpt write %.2f ms (%.1f MiB vs %.1f MiB csv)  "
      "mmap open %.2f ms (nocheck %.3f ms)  kRead %.2f ms  csv parse "
      "%.2f ms\n",
      binary.dpt_write_ms,
      static_cast<double>(binary.dpt_bytes) / (1024.0 * 1024.0),
      static_cast<double>(binary.csv_bytes) / (1024.0 * 1024.0),
      binary.open_map_ms, binary.open_map_nocheck_ms, binary.open_read_ms,
      binary.csv_parse_ms);
  std::printf(
      "binary io convert: csv->dpt %.2f ms  dpt->csv %.2f ms  %s, %s\n",
      binary.convert_csv_to_dpt_ms, binary.convert_dpt_to_csv_ms,
      binary.map_borrows ? "borrowed" : "OWNED?",
      binary.roundtrip_identical ? "identical" : "DIFFERS");

  // The ≥3x speedup target only means anything with ≥8 hardware threads to
  // shard over; on smaller hosts the gate is bit-identity alone and the
  // recorded cores field says why.
  const bool speedup_ok =
      million.cores < 8 ||
      million.solve_s >= 3.0 * million.solve_threads8_s;
  if (million.cores < 8) {
    std::printf("threads8 speedup gate skipped (%zu cores < 8)\n",
                million.cores);
  }
  const bool pass = parse.sequences_identical && million.roundtrip_identical &&
                    million.threads_identical && speedup_ok &&
                    parse.legacy_ms / parse.streaming_ms >= 5.0 &&
                    build_n.build_allocs == build_2n.build_allocs;
  std::printf("trace_io acceptance: %s\n", pass ? "PASS" : "FAIL");
  // The binary gate: the zero-copy open of a 1M-request trace stays under
  // 10 ms with checksum verification on, borrows the mapping, and is
  // bit-exact against the in-memory source.
  const bool binary_pass = binary.open_map_ms < 10.0 && binary.map_borrows &&
                           binary.roundtrip_identical;
  std::printf("binary_io acceptance (mmap open %.2f ms < 10 ms): %s\n",
              binary.open_map_ms, binary_pass ? "PASS" : "FAIL");
  return status != 0 ? status : (pass && binary_pass ? 0 : 2);
}

}  // namespace
}  // namespace dpg

int main(int argc, char** argv) {
  std::string fragment = "bm_trace.fragment.json";
  bool hundred_million = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--hundred-million") {
      hundred_million = true;
    } else if (arg == "--fragment" && i + 1 < argc) {
      fragment = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: bm_trace [--fragment FILE] [--hundred-million]\n");
      return 2;
    }
  }
  return dpg::run(fragment, hundred_million);
}
