// Microbenchmarks for the workload substrate: generators, trace I/O,
// correlation windows and the replay engine.
#include <benchmark/benchmark.h>

#include "mobility/simulator.hpp"
#include "sim/replay.hpp"
#include "engine/algorithms.hpp"
#include "trace/generators.hpp"
#include "trace/io.hpp"

namespace dpg {
namespace {

void BM_MobilitySimulation(benchmark::State& state) {
  MobilityConfig config;
  config.duration = static_cast<double>(state.range(0));
  for (auto _ : state) {
    Rng rng(7);
    benchmark::DoNotOptimize(simulate_mobility(config, rng).size());
  }
}
BENCHMARK(BM_MobilitySimulation)->Arg(50)->Arg(200)->Arg(800);

void BM_PairedGenerator(benchmark::State& state) {
  PairedTraceConfig config;
  config.requests_per_pair = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    Rng rng(3);
    benchmark::DoNotOptimize(generate_paired_trace(config, rng).size());
  }
}
BENCHMARK(BM_PairedGenerator)->Arg(200)->Arg(2000);

void BM_TraceCsvRoundTrip(benchmark::State& state) {
  ZipfTraceConfig config;
  config.request_count = static_cast<std::size_t>(state.range(0));
  Rng rng(5);
  const RequestSequence trace = generate_zipf_trace(config, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(trace_from_csv(trace_to_csv(trace)).size());
  }
}
BENCHMARK(BM_TraceCsvRoundTrip)->Arg(1000)->Arg(8000);

void BM_WindowedJaccard(benchmark::State& state) {
  ZipfTraceConfig config;
  config.request_count = static_cast<std::size_t>(state.range(0));
  config.co_access = 0.5;
  Rng rng(9);
  const RequestSequence trace = generate_zipf_trace(config, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        windowed_jaccard_series(trace, 0, 1, 100, 10).size());
  }
}
BENCHMARK(BM_WindowedJaccard)->Arg(2000)->Arg(16000);

void BM_ReplayPlans(benchmark::State& state) {
  UniformTraceConfig config;
  config.item_count = 1;
  config.request_count = static_cast<std::size_t>(state.range(0));
  config.server_count = 16;
  Rng rng(11);
  const RequestSequence trace = generate_uniform_trace(config, rng);
  const Flow flow = make_item_flow(trace, 0);
  const CostModel model{1.0, 1.0, 0.8};
  const SolveResult solved = solve_optimal_offline(flow, model, 16);
  const std::vector<FlowPlan> plans{FlowPlan{flow, solved.schedule, "bench"}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(replay_plans(plans, model, 16).total_cost);
  }
}
BENCHMARK(BM_ReplayPlans)->Arg(500)->Arg(4000);

}  // namespace
}  // namespace dpg
