// Extension table — empirical competitive ratio of the break-even online
// policy vs the offline DP across cost regimes (reference [6] presents a
// 3-competitive online algorithm; the rent-or-buy rule lands in the same
// constant-factor family).
#include <algorithm>
#include <cstdio>

#include "harness_common.hpp"
#include "harness_solvers.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace dpg;

int main() {
  std::printf("Online break-even vs offline optimal — competitive ratios\n\n");
  const RequestSequence trace = harness::evaluation_trace();

  TextTable table({"lambda/mu", "mean ratio", "p95", "worst"});
  for (const double lambda : {0.25, 0.5, 1.0, 2.0, 4.0, 8.0}) {
    const CostModel model{1.0, lambda, 0.8};
    std::vector<double> ratios;
    for (ItemId item = 0; item < trace.item_count(); ++item) {
      const Flow flow = make_item_flow(trace, item);
      if (flow.empty()) continue;
      const Cost offline =
          solve_optimal_offline(flow, model, trace.server_count()).raw_cost;
      const Cost online =
          solve_online_break_even(flow, model, trace.server_count()).raw_cost;
      if (offline > 0.0) ratios.push_back(online / offline);
    }
    const Summary s = summarize(ratios);
    table.add_row({format_fixed(lambda, 2), format_fixed(s.mean, 3),
                   format_fixed(percentile(ratios, 95), 3),
                   format_fixed(s.max, 3)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("the policy stays within a small constant of optimal across\n"
              "rate regimes, as the rent-or-buy analysis predicts.\n");
  return 0;
}
