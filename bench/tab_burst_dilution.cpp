// Correlation dilution on bursty workloads (extension).
//
// Algorithm 1's packing decision uses whole-trace Jaccard similarities.
// Commute-style bursts correlate item pairs intensely for minutes and not
// at all across the day, so the global statistic can sit below θ while the
// windowed one repeatedly exceeds it — leaving packing benefit on the
// table.  This harness quantifies that and shows the online variant (whose
// detector IS windowed) recovering it.
#include <cstdio>

#include "harness_solvers.hpp"
#include "trace/generators.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace dpg;

int main() {
  std::printf("burst dilution: global vs windowed correlation\n\n");

  BurstyTraceConfig config;
  config.burst_count = 40;
  config.requests_per_burst = 30;
  config.item_count = 8;
  config.server_count = 20;
  Rng rng(17);
  const RequestSequence trace = generate_bursty_trace(config, rng);

  TextTable table({"pair", "global J", "peak windowed J", "mean windowed",
                   "dilution"});
  double max_dilution = 0.0;
  for (ItemId a = 0; a < trace.item_count(); ++a) {
    for (ItemId b = a + 1; b < trace.item_count(); ++b) {
      if (trace.pair_frequency(a, b) == 0) continue;
      const DilutionReport report = measure_dilution(trace, a, b, 30);
      max_dilution = std::max(max_dilution, report.dilution());
      table.add_row({"(d" + std::to_string(a) + ",d" + std::to_string(b) + ")",
                     format_fixed(report.global_jaccard, 3),
                     format_fixed(report.peak_windowed, 3),
                     format_fixed(report.mean_windowed, 3),
                     format_fixed(report.dilution(), 3)});
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("max dilution %s — windows see correlation the whole-trace\n"
              "Jaccard hides.\n\n",
              format_fixed(max_dilution, 3).c_str());

  CostModel model;
  model.mu = 1.0;
  model.lambda = 4.0;
  model.alpha = 0.6;
  DpGreedyOptions offline_options;
  offline_options.theta = 0.3;
  const DpGreedyResult offline = solve_dp_greedy(trace, model, offline_options);
  OnlineDpGreedyOptions online_options;
  online_options.theta = 0.3;
  online_options.window = 60;
  online_options.repack_interval = 20;
  const OnlineDpGreedyResult online =
      solve_online_dp_greedy(trace, model, online_options);
  std::printf("offline DP_Greedy (global θ=0.3): total %s, %zu packages\n",
              format_fixed(offline.total_cost, 1).c_str(),
              offline.packages.size());
  std::printf("online DP_Greedy (windowed θ=0.3): total %s, %zu packs / %zu "
              "unpacks\n",
              format_fixed(online.total_cost, 1).c_str(), online.pack_events,
              online.unpack_events);
  std::printf(
      "the windowed detector packs per burst even when the global statistic\n"
      "never clears θ (offline found %zu packages here).  Whether adaptive\n"
      "packing nets out ahead depends on the α/λ regime — it wins when the\n"
      "package discount outweighs the online policy's hindsight-free replica\n"
      "management (see examples/edge_cdn for a winning configuration).\n",
      offline.packages.size());
  return 0;
}
