file(REMOVE_RECURSE
  "CMakeFiles/dpgreedy.dir/dpgreedy_cli.cpp.o"
  "CMakeFiles/dpgreedy.dir/dpgreedy_cli.cpp.o.d"
  "dpgreedy"
  "dpgreedy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpgreedy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
