# Empty compiler generated dependencies file for dpgreedy.
# This may be replaced when dependencies are built.
