
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/dpgreedy_cli.cpp" "tools/CMakeFiles/dpgreedy.dir/dpgreedy_cli.cpp.o" "gcc" "tools/CMakeFiles/dpgreedy.dir/dpgreedy_cli.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/dpg_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mobility/CMakeFiles/dpg_mobility.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/dpg_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/dpg_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/dpg_core.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/dpg_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dpg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
