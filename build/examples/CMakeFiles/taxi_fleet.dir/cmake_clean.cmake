file(REMOVE_RECURSE
  "CMakeFiles/taxi_fleet.dir/taxi_fleet.cpp.o"
  "CMakeFiles/taxi_fleet.dir/taxi_fleet.cpp.o.d"
  "taxi_fleet"
  "taxi_fleet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taxi_fleet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
