# Empty compiler generated dependencies file for taxi_fleet.
# This may be replaced when dependencies are built.
