# Empty dependencies file for online_vs_offline.
# This may be replaced when dependencies are built.
