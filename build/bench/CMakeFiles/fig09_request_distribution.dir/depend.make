# Empty dependencies file for fig09_request_distribution.
# This may be replaced when dependencies are built.
