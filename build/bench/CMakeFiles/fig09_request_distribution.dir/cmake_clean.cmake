file(REMOVE_RECURSE
  "CMakeFiles/fig09_request_distribution.dir/fig09_request_distribution.cpp.o"
  "CMakeFiles/fig09_request_distribution.dir/fig09_request_distribution.cpp.o.d"
  "fig09_request_distribution"
  "fig09_request_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_request_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
