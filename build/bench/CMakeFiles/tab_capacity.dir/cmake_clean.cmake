file(REMOVE_RECURSE
  "CMakeFiles/tab_capacity.dir/tab_capacity.cpp.o"
  "CMakeFiles/tab_capacity.dir/tab_capacity.cpp.o.d"
  "tab_capacity"
  "tab_capacity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_capacity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
