# Empty compiler generated dependencies file for tab_heterogeneous.
# This may be replaced when dependencies are built.
