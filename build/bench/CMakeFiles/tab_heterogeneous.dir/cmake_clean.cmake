file(REMOVE_RECURSE
  "CMakeFiles/tab_heterogeneous.dir/tab_heterogeneous.cpp.o"
  "CMakeFiles/tab_heterogeneous.dir/tab_heterogeneous.cpp.o.d"
  "tab_heterogeneous"
  "tab_heterogeneous.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_heterogeneous.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
