# Empty compiler generated dependencies file for bm_trace.
# This may be replaced when dependencies are built.
