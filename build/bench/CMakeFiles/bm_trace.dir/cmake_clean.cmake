file(REMOVE_RECURSE
  "CMakeFiles/bm_trace.dir/bm_trace.cpp.o"
  "CMakeFiles/bm_trace.dir/bm_trace.cpp.o.d"
  "bm_trace"
  "bm_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bm_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
