# Empty dependencies file for bm_solvers.
# This may be replaced when dependencies are built.
