file(REMOVE_RECURSE
  "CMakeFiles/bm_solvers.dir/bm_solvers.cpp.o"
  "CMakeFiles/bm_solvers.dir/bm_solvers.cpp.o.d"
  "bm_solvers"
  "bm_solvers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bm_solvers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
