# Empty compiler generated dependencies file for fig11_jaccard_impact.
# This may be replaced when dependencies are built.
