file(REMOVE_RECURSE
  "CMakeFiles/fig11_jaccard_impact.dir/fig11_jaccard_impact.cpp.o"
  "CMakeFiles/fig11_jaccard_impact.dir/fig11_jaccard_impact.cpp.o.d"
  "fig11_jaccard_impact"
  "fig11_jaccard_impact.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_jaccard_impact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
