file(REMOVE_RECURSE
  "CMakeFiles/tab_online_dpgreedy.dir/tab_online_dpgreedy.cpp.o"
  "CMakeFiles/tab_online_dpgreedy.dir/tab_online_dpgreedy.cpp.o.d"
  "tab_online_dpgreedy"
  "tab_online_dpgreedy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_online_dpgreedy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
