# Empty dependencies file for tab_online_dpgreedy.
# This may be replaced when dependencies are built.
