# Empty dependencies file for fig13_alpha_impact.
# This may be replaced when dependencies are built.
