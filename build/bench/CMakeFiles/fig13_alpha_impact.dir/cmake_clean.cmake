file(REMOVE_RECURSE
  "CMakeFiles/fig13_alpha_impact.dir/fig13_alpha_impact.cpp.o"
  "CMakeFiles/fig13_alpha_impact.dir/fig13_alpha_impact.cpp.o.d"
  "fig13_alpha_impact"
  "fig13_alpha_impact.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_alpha_impact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
