file(REMOVE_RECURSE
  "CMakeFiles/fig10_jaccard_frequencies.dir/fig10_jaccard_frequencies.cpp.o"
  "CMakeFiles/fig10_jaccard_frequencies.dir/fig10_jaccard_frequencies.cpp.o.d"
  "fig10_jaccard_frequencies"
  "fig10_jaccard_frequencies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_jaccard_frequencies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
