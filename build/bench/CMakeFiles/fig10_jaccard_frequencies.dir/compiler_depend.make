# Empty compiler generated dependencies file for fig10_jaccard_frequencies.
# This may be replaced when dependencies are built.
