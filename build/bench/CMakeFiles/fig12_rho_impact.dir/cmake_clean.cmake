file(REMOVE_RECURSE
  "CMakeFiles/fig12_rho_impact.dir/fig12_rho_impact.cpp.o"
  "CMakeFiles/fig12_rho_impact.dir/fig12_rho_impact.cpp.o.d"
  "fig12_rho_impact"
  "fig12_rho_impact.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_rho_impact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
