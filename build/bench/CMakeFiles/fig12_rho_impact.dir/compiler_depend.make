# Empty compiler generated dependencies file for fig12_rho_impact.
# This may be replaced when dependencies are built.
