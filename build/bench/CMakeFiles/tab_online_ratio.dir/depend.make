# Empty dependencies file for tab_online_ratio.
# This may be replaced when dependencies are built.
