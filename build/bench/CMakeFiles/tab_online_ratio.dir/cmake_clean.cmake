file(REMOVE_RECURSE
  "CMakeFiles/tab_online_ratio.dir/tab_online_ratio.cpp.o"
  "CMakeFiles/tab_online_ratio.dir/tab_online_ratio.cpp.o.d"
  "tab_online_ratio"
  "tab_online_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_online_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
