# Empty compiler generated dependencies file for tab_theta_sweep.
# This may be replaced when dependencies are built.
