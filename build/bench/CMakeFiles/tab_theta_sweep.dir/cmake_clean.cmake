file(REMOVE_RECURSE
  "CMakeFiles/tab_theta_sweep.dir/tab_theta_sweep.cpp.o"
  "CMakeFiles/tab_theta_sweep.dir/tab_theta_sweep.cpp.o.d"
  "tab_theta_sweep"
  "tab_theta_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_theta_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
