# Empty compiler generated dependencies file for tab_approx_ratio.
# This may be replaced when dependencies are built.
