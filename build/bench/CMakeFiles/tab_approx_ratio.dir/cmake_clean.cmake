file(REMOVE_RECURSE
  "CMakeFiles/tab_approx_ratio.dir/tab_approx_ratio.cpp.o"
  "CMakeFiles/tab_approx_ratio.dir/tab_approx_ratio.cpp.o.d"
  "tab_approx_ratio"
  "tab_approx_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_approx_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
