# Empty compiler generated dependencies file for tab_burst_dilution.
# This may be replaced when dependencies are built.
