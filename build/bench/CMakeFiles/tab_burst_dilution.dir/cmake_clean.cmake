file(REMOVE_RECURSE
  "CMakeFiles/tab_burst_dilution.dir/tab_burst_dilution.cpp.o"
  "CMakeFiles/tab_burst_dilution.dir/tab_burst_dilution.cpp.o.d"
  "tab_burst_dilution"
  "tab_burst_dilution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_burst_dilution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
