file(REMOVE_RECURSE
  "CMakeFiles/tab_complexity_scaling.dir/tab_complexity_scaling.cpp.o"
  "CMakeFiles/tab_complexity_scaling.dir/tab_complexity_scaling.cpp.o.d"
  "tab_complexity_scaling"
  "tab_complexity_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_complexity_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
