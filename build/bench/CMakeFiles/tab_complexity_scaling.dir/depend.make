# Empty dependencies file for tab_complexity_scaling.
# This may be replaced when dependencies are built.
