
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/parallel_test.cpp" "tests/CMakeFiles/dpg_util_tests.dir/parallel_test.cpp.o" "gcc" "tests/CMakeFiles/dpg_util_tests.dir/parallel_test.cpp.o.d"
  "/root/repo/tests/util_args_test.cpp" "tests/CMakeFiles/dpg_util_tests.dir/util_args_test.cpp.o" "gcc" "tests/CMakeFiles/dpg_util_tests.dir/util_args_test.cpp.o.d"
  "/root/repo/tests/util_csv_test.cpp" "tests/CMakeFiles/dpg_util_tests.dir/util_csv_test.cpp.o" "gcc" "tests/CMakeFiles/dpg_util_tests.dir/util_csv_test.cpp.o.d"
  "/root/repo/tests/util_log_test.cpp" "tests/CMakeFiles/dpg_util_tests.dir/util_log_test.cpp.o" "gcc" "tests/CMakeFiles/dpg_util_tests.dir/util_log_test.cpp.o.d"
  "/root/repo/tests/util_rng_test.cpp" "tests/CMakeFiles/dpg_util_tests.dir/util_rng_test.cpp.o" "gcc" "tests/CMakeFiles/dpg_util_tests.dir/util_rng_test.cpp.o.d"
  "/root/repo/tests/util_stats_test.cpp" "tests/CMakeFiles/dpg_util_tests.dir/util_stats_test.cpp.o" "gcc" "tests/CMakeFiles/dpg_util_tests.dir/util_stats_test.cpp.o.d"
  "/root/repo/tests/util_stopwatch_test.cpp" "tests/CMakeFiles/dpg_util_tests.dir/util_stopwatch_test.cpp.o" "gcc" "tests/CMakeFiles/dpg_util_tests.dir/util_stopwatch_test.cpp.o.d"
  "/root/repo/tests/util_strings_test.cpp" "tests/CMakeFiles/dpg_util_tests.dir/util_strings_test.cpp.o" "gcc" "tests/CMakeFiles/dpg_util_tests.dir/util_strings_test.cpp.o.d"
  "/root/repo/tests/util_svg_chart_test.cpp" "tests/CMakeFiles/dpg_util_tests.dir/util_svg_chart_test.cpp.o" "gcc" "tests/CMakeFiles/dpg_util_tests.dir/util_svg_chart_test.cpp.o.d"
  "/root/repo/tests/util_table_test.cpp" "tests/CMakeFiles/dpg_util_tests.dir/util_table_test.cpp.o" "gcc" "tests/CMakeFiles/dpg_util_tests.dir/util_table_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/parallel/CMakeFiles/dpg_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dpg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
