# Empty compiler generated dependencies file for dpg_util_tests.
# This may be replaced when dependencies are built.
