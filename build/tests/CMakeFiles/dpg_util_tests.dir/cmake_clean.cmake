file(REMOVE_RECURSE
  "CMakeFiles/dpg_util_tests.dir/parallel_test.cpp.o"
  "CMakeFiles/dpg_util_tests.dir/parallel_test.cpp.o.d"
  "CMakeFiles/dpg_util_tests.dir/util_args_test.cpp.o"
  "CMakeFiles/dpg_util_tests.dir/util_args_test.cpp.o.d"
  "CMakeFiles/dpg_util_tests.dir/util_csv_test.cpp.o"
  "CMakeFiles/dpg_util_tests.dir/util_csv_test.cpp.o.d"
  "CMakeFiles/dpg_util_tests.dir/util_log_test.cpp.o"
  "CMakeFiles/dpg_util_tests.dir/util_log_test.cpp.o.d"
  "CMakeFiles/dpg_util_tests.dir/util_rng_test.cpp.o"
  "CMakeFiles/dpg_util_tests.dir/util_rng_test.cpp.o.d"
  "CMakeFiles/dpg_util_tests.dir/util_stats_test.cpp.o"
  "CMakeFiles/dpg_util_tests.dir/util_stats_test.cpp.o.d"
  "CMakeFiles/dpg_util_tests.dir/util_stopwatch_test.cpp.o"
  "CMakeFiles/dpg_util_tests.dir/util_stopwatch_test.cpp.o.d"
  "CMakeFiles/dpg_util_tests.dir/util_strings_test.cpp.o"
  "CMakeFiles/dpg_util_tests.dir/util_strings_test.cpp.o.d"
  "CMakeFiles/dpg_util_tests.dir/util_svg_chart_test.cpp.o"
  "CMakeFiles/dpg_util_tests.dir/util_svg_chart_test.cpp.o.d"
  "CMakeFiles/dpg_util_tests.dir/util_table_test.cpp.o"
  "CMakeFiles/dpg_util_tests.dir/util_table_test.cpp.o.d"
  "dpg_util_tests"
  "dpg_util_tests.pdb"
  "dpg_util_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpg_util_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
