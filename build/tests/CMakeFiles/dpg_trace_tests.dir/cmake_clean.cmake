file(REMOVE_RECURSE
  "CMakeFiles/dpg_trace_tests.dir/mobility_test.cpp.o"
  "CMakeFiles/dpg_trace_tests.dir/mobility_test.cpp.o.d"
  "CMakeFiles/dpg_trace_tests.dir/temporal_correlation_test.cpp.o"
  "CMakeFiles/dpg_trace_tests.dir/temporal_correlation_test.cpp.o.d"
  "CMakeFiles/dpg_trace_tests.dir/trace_generators_test.cpp.o"
  "CMakeFiles/dpg_trace_tests.dir/trace_generators_test.cpp.o.d"
  "CMakeFiles/dpg_trace_tests.dir/trace_io_test.cpp.o"
  "CMakeFiles/dpg_trace_tests.dir/trace_io_test.cpp.o.d"
  "CMakeFiles/dpg_trace_tests.dir/trace_stats_test.cpp.o"
  "CMakeFiles/dpg_trace_tests.dir/trace_stats_test.cpp.o.d"
  "CMakeFiles/dpg_trace_tests.dir/trace_transforms_test.cpp.o"
  "CMakeFiles/dpg_trace_tests.dir/trace_transforms_test.cpp.o.d"
  "dpg_trace_tests"
  "dpg_trace_tests.pdb"
  "dpg_trace_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpg_trace_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
