# Empty compiler generated dependencies file for dpg_trace_tests.
# This may be replaced when dependencies are built.
