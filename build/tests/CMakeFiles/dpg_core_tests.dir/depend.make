# Empty dependencies file for dpg_core_tests.
# This may be replaced when dependencies are built.
