file(REMOVE_RECURSE
  "CMakeFiles/dpg_core_tests.dir/cost_model_test.cpp.o"
  "CMakeFiles/dpg_core_tests.dir/cost_model_test.cpp.o.d"
  "CMakeFiles/dpg_core_tests.dir/flow_test.cpp.o"
  "CMakeFiles/dpg_core_tests.dir/flow_test.cpp.o.d"
  "CMakeFiles/dpg_core_tests.dir/interval_set_test.cpp.o"
  "CMakeFiles/dpg_core_tests.dir/interval_set_test.cpp.o.d"
  "CMakeFiles/dpg_core_tests.dir/request_index_test.cpp.o"
  "CMakeFiles/dpg_core_tests.dir/request_index_test.cpp.o.d"
  "CMakeFiles/dpg_core_tests.dir/request_test.cpp.o"
  "CMakeFiles/dpg_core_tests.dir/request_test.cpp.o.d"
  "CMakeFiles/dpg_core_tests.dir/schedule_export_test.cpp.o"
  "CMakeFiles/dpg_core_tests.dir/schedule_export_test.cpp.o.d"
  "CMakeFiles/dpg_core_tests.dir/schedule_test.cpp.o"
  "CMakeFiles/dpg_core_tests.dir/schedule_test.cpp.o.d"
  "dpg_core_tests"
  "dpg_core_tests.pdb"
  "dpg_core_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpg_core_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
