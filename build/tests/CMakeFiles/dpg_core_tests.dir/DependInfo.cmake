
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/cost_model_test.cpp" "tests/CMakeFiles/dpg_core_tests.dir/cost_model_test.cpp.o" "gcc" "tests/CMakeFiles/dpg_core_tests.dir/cost_model_test.cpp.o.d"
  "/root/repo/tests/flow_test.cpp" "tests/CMakeFiles/dpg_core_tests.dir/flow_test.cpp.o" "gcc" "tests/CMakeFiles/dpg_core_tests.dir/flow_test.cpp.o.d"
  "/root/repo/tests/interval_set_test.cpp" "tests/CMakeFiles/dpg_core_tests.dir/interval_set_test.cpp.o" "gcc" "tests/CMakeFiles/dpg_core_tests.dir/interval_set_test.cpp.o.d"
  "/root/repo/tests/request_index_test.cpp" "tests/CMakeFiles/dpg_core_tests.dir/request_index_test.cpp.o" "gcc" "tests/CMakeFiles/dpg_core_tests.dir/request_index_test.cpp.o.d"
  "/root/repo/tests/request_test.cpp" "tests/CMakeFiles/dpg_core_tests.dir/request_test.cpp.o" "gcc" "tests/CMakeFiles/dpg_core_tests.dir/request_test.cpp.o.d"
  "/root/repo/tests/schedule_export_test.cpp" "tests/CMakeFiles/dpg_core_tests.dir/schedule_export_test.cpp.o" "gcc" "tests/CMakeFiles/dpg_core_tests.dir/schedule_export_test.cpp.o.d"
  "/root/repo/tests/schedule_test.cpp" "tests/CMakeFiles/dpg_core_tests.dir/schedule_test.cpp.o" "gcc" "tests/CMakeFiles/dpg_core_tests.dir/schedule_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dpg_core.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dpg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
