file(REMOVE_RECURSE
  "CMakeFiles/dpg_integration_tests.dir/failure_injection_test.cpp.o"
  "CMakeFiles/dpg_integration_tests.dir/failure_injection_test.cpp.o.d"
  "CMakeFiles/dpg_integration_tests.dir/integration_test.cpp.o"
  "CMakeFiles/dpg_integration_tests.dir/integration_test.cpp.o.d"
  "CMakeFiles/dpg_integration_tests.dir/sim_test.cpp.o"
  "CMakeFiles/dpg_integration_tests.dir/sim_test.cpp.o.d"
  "dpg_integration_tests"
  "dpg_integration_tests.pdb"
  "dpg_integration_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpg_integration_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
