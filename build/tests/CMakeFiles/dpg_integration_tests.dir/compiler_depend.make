# Empty compiler generated dependencies file for dpg_integration_tests.
# This may be replaced when dependencies are built.
