
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/approximation_test.cpp" "tests/CMakeFiles/dpg_solver_tests.dir/approximation_test.cpp.o" "gcc" "tests/CMakeFiles/dpg_solver_tests.dir/approximation_test.cpp.o.d"
  "/root/repo/tests/baselines_test.cpp" "tests/CMakeFiles/dpg_solver_tests.dir/baselines_test.cpp.o" "gcc" "tests/CMakeFiles/dpg_solver_tests.dir/baselines_test.cpp.o.d"
  "/root/repo/tests/bruteforce_test.cpp" "tests/CMakeFiles/dpg_solver_tests.dir/bruteforce_test.cpp.o" "gcc" "tests/CMakeFiles/dpg_solver_tests.dir/bruteforce_test.cpp.o.d"
  "/root/repo/tests/correlation_test.cpp" "tests/CMakeFiles/dpg_solver_tests.dir/correlation_test.cpp.o" "gcc" "tests/CMakeFiles/dpg_solver_tests.dir/correlation_test.cpp.o.d"
  "/root/repo/tests/cut_operation_test.cpp" "tests/CMakeFiles/dpg_solver_tests.dir/cut_operation_test.cpp.o" "gcc" "tests/CMakeFiles/dpg_solver_tests.dir/cut_operation_test.cpp.o.d"
  "/root/repo/tests/dp_greedy_grid_test.cpp" "tests/CMakeFiles/dpg_solver_tests.dir/dp_greedy_grid_test.cpp.o" "gcc" "tests/CMakeFiles/dpg_solver_tests.dir/dp_greedy_grid_test.cpp.o.d"
  "/root/repo/tests/dp_greedy_test.cpp" "tests/CMakeFiles/dpg_solver_tests.dir/dp_greedy_test.cpp.o" "gcc" "tests/CMakeFiles/dpg_solver_tests.dir/dp_greedy_test.cpp.o.d"
  "/root/repo/tests/greedy_test.cpp" "tests/CMakeFiles/dpg_solver_tests.dir/greedy_test.cpp.o" "gcc" "tests/CMakeFiles/dpg_solver_tests.dir/greedy_test.cpp.o.d"
  "/root/repo/tests/group_solver_test.cpp" "tests/CMakeFiles/dpg_solver_tests.dir/group_solver_test.cpp.o" "gcc" "tests/CMakeFiles/dpg_solver_tests.dir/group_solver_test.cpp.o.d"
  "/root/repo/tests/online_dp_greedy_test.cpp" "tests/CMakeFiles/dpg_solver_tests.dir/online_dp_greedy_test.cpp.o" "gcc" "tests/CMakeFiles/dpg_solver_tests.dir/online_dp_greedy_test.cpp.o.d"
  "/root/repo/tests/online_test.cpp" "tests/CMakeFiles/dpg_solver_tests.dir/online_test.cpp.o" "gcc" "tests/CMakeFiles/dpg_solver_tests.dir/online_test.cpp.o.d"
  "/root/repo/tests/optimal_offline_test.cpp" "tests/CMakeFiles/dpg_solver_tests.dir/optimal_offline_test.cpp.o" "gcc" "tests/CMakeFiles/dpg_solver_tests.dir/optimal_offline_test.cpp.o.d"
  "/root/repo/tests/optimality_test.cpp" "tests/CMakeFiles/dpg_solver_tests.dir/optimality_test.cpp.o" "gcc" "tests/CMakeFiles/dpg_solver_tests.dir/optimality_test.cpp.o.d"
  "/root/repo/tests/pairing_test.cpp" "tests/CMakeFiles/dpg_solver_tests.dir/pairing_test.cpp.o" "gcc" "tests/CMakeFiles/dpg_solver_tests.dir/pairing_test.cpp.o.d"
  "/root/repo/tests/running_example_test.cpp" "tests/CMakeFiles/dpg_solver_tests.dir/running_example_test.cpp.o" "gcc" "tests/CMakeFiles/dpg_solver_tests.dir/running_example_test.cpp.o.d"
  "/root/repo/tests/solver_invariants_test.cpp" "tests/CMakeFiles/dpg_solver_tests.dir/solver_invariants_test.cpp.o" "gcc" "tests/CMakeFiles/dpg_solver_tests.dir/solver_invariants_test.cpp.o.d"
  "/root/repo/tests/subset_exact_test.cpp" "tests/CMakeFiles/dpg_solver_tests.dir/subset_exact_test.cpp.o" "gcc" "tests/CMakeFiles/dpg_solver_tests.dir/subset_exact_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/solver/CMakeFiles/dpg_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/dpg_core.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/dpg_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dpg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
