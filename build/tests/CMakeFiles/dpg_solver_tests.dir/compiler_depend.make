# Empty compiler generated dependencies file for dpg_solver_tests.
# This may be replaced when dependencies are built.
