file(REMOVE_RECURSE
  "CMakeFiles/dpg_util.dir/args.cpp.o"
  "CMakeFiles/dpg_util.dir/args.cpp.o.d"
  "CMakeFiles/dpg_util.dir/csv.cpp.o"
  "CMakeFiles/dpg_util.dir/csv.cpp.o.d"
  "CMakeFiles/dpg_util.dir/log.cpp.o"
  "CMakeFiles/dpg_util.dir/log.cpp.o.d"
  "CMakeFiles/dpg_util.dir/rng.cpp.o"
  "CMakeFiles/dpg_util.dir/rng.cpp.o.d"
  "CMakeFiles/dpg_util.dir/stats.cpp.o"
  "CMakeFiles/dpg_util.dir/stats.cpp.o.d"
  "CMakeFiles/dpg_util.dir/strings.cpp.o"
  "CMakeFiles/dpg_util.dir/strings.cpp.o.d"
  "CMakeFiles/dpg_util.dir/svg_chart.cpp.o"
  "CMakeFiles/dpg_util.dir/svg_chart.cpp.o.d"
  "CMakeFiles/dpg_util.dir/table.cpp.o"
  "CMakeFiles/dpg_util.dir/table.cpp.o.d"
  "libdpg_util.a"
  "libdpg_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpg_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
