file(REMOVE_RECURSE
  "CMakeFiles/dpg_mobility.dir/city.cpp.o"
  "CMakeFiles/dpg_mobility.dir/city.cpp.o.d"
  "CMakeFiles/dpg_mobility.dir/simulator.cpp.o"
  "CMakeFiles/dpg_mobility.dir/simulator.cpp.o.d"
  "CMakeFiles/dpg_mobility.dir/taxi.cpp.o"
  "CMakeFiles/dpg_mobility.dir/taxi.cpp.o.d"
  "libdpg_mobility.a"
  "libdpg_mobility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpg_mobility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
