file(REMOVE_RECURSE
  "libdpg_mobility.a"
)
