
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mobility/city.cpp" "src/mobility/CMakeFiles/dpg_mobility.dir/city.cpp.o" "gcc" "src/mobility/CMakeFiles/dpg_mobility.dir/city.cpp.o.d"
  "/root/repo/src/mobility/simulator.cpp" "src/mobility/CMakeFiles/dpg_mobility.dir/simulator.cpp.o" "gcc" "src/mobility/CMakeFiles/dpg_mobility.dir/simulator.cpp.o.d"
  "/root/repo/src/mobility/taxi.cpp" "src/mobility/CMakeFiles/dpg_mobility.dir/taxi.cpp.o" "gcc" "src/mobility/CMakeFiles/dpg_mobility.dir/taxi.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dpg_core.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dpg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
