# Empty dependencies file for dpg_mobility.
# This may be replaced when dependencies are built.
