# Empty compiler generated dependencies file for dpg_parallel.
# This may be replaced when dependencies are built.
