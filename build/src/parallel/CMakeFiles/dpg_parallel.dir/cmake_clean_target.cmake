file(REMOVE_RECURSE
  "libdpg_parallel.a"
)
