file(REMOVE_RECURSE
  "CMakeFiles/dpg_parallel.dir/thread_pool.cpp.o"
  "CMakeFiles/dpg_parallel.dir/thread_pool.cpp.o.d"
  "libdpg_parallel.a"
  "libdpg_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpg_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
