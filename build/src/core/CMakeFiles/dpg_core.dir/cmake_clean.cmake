file(REMOVE_RECURSE
  "CMakeFiles/dpg_core.dir/cost_model.cpp.o"
  "CMakeFiles/dpg_core.dir/cost_model.cpp.o.d"
  "CMakeFiles/dpg_core.dir/flow.cpp.o"
  "CMakeFiles/dpg_core.dir/flow.cpp.o.d"
  "CMakeFiles/dpg_core.dir/interval_set.cpp.o"
  "CMakeFiles/dpg_core.dir/interval_set.cpp.o.d"
  "CMakeFiles/dpg_core.dir/request.cpp.o"
  "CMakeFiles/dpg_core.dir/request.cpp.o.d"
  "CMakeFiles/dpg_core.dir/request_index.cpp.o"
  "CMakeFiles/dpg_core.dir/request_index.cpp.o.d"
  "CMakeFiles/dpg_core.dir/schedule.cpp.o"
  "CMakeFiles/dpg_core.dir/schedule.cpp.o.d"
  "CMakeFiles/dpg_core.dir/schedule_export.cpp.o"
  "CMakeFiles/dpg_core.dir/schedule_export.cpp.o.d"
  "libdpg_core.a"
  "libdpg_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpg_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
