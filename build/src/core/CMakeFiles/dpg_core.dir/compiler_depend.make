# Empty compiler generated dependencies file for dpg_core.
# This may be replaced when dependencies are built.
