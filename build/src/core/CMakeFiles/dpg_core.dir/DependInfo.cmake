
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/cost_model.cpp" "src/core/CMakeFiles/dpg_core.dir/cost_model.cpp.o" "gcc" "src/core/CMakeFiles/dpg_core.dir/cost_model.cpp.o.d"
  "/root/repo/src/core/flow.cpp" "src/core/CMakeFiles/dpg_core.dir/flow.cpp.o" "gcc" "src/core/CMakeFiles/dpg_core.dir/flow.cpp.o.d"
  "/root/repo/src/core/interval_set.cpp" "src/core/CMakeFiles/dpg_core.dir/interval_set.cpp.o" "gcc" "src/core/CMakeFiles/dpg_core.dir/interval_set.cpp.o.d"
  "/root/repo/src/core/request.cpp" "src/core/CMakeFiles/dpg_core.dir/request.cpp.o" "gcc" "src/core/CMakeFiles/dpg_core.dir/request.cpp.o.d"
  "/root/repo/src/core/request_index.cpp" "src/core/CMakeFiles/dpg_core.dir/request_index.cpp.o" "gcc" "src/core/CMakeFiles/dpg_core.dir/request_index.cpp.o.d"
  "/root/repo/src/core/schedule.cpp" "src/core/CMakeFiles/dpg_core.dir/schedule.cpp.o" "gcc" "src/core/CMakeFiles/dpg_core.dir/schedule.cpp.o.d"
  "/root/repo/src/core/schedule_export.cpp" "src/core/CMakeFiles/dpg_core.dir/schedule_export.cpp.o" "gcc" "src/core/CMakeFiles/dpg_core.dir/schedule_export.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/dpg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
