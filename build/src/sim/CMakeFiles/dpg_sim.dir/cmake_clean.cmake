file(REMOVE_RECURSE
  "CMakeFiles/dpg_sim.dir/replay.cpp.o"
  "CMakeFiles/dpg_sim.dir/replay.cpp.o.d"
  "CMakeFiles/dpg_sim.dir/report.cpp.o"
  "CMakeFiles/dpg_sim.dir/report.cpp.o.d"
  "libdpg_sim.a"
  "libdpg_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpg_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
