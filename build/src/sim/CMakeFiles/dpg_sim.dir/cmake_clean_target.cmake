file(REMOVE_RECURSE
  "libdpg_sim.a"
)
