# Empty compiler generated dependencies file for dpg_sim.
# This may be replaced when dependencies are built.
