
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/generators.cpp" "src/trace/CMakeFiles/dpg_trace.dir/generators.cpp.o" "gcc" "src/trace/CMakeFiles/dpg_trace.dir/generators.cpp.o.d"
  "/root/repo/src/trace/io.cpp" "src/trace/CMakeFiles/dpg_trace.dir/io.cpp.o" "gcc" "src/trace/CMakeFiles/dpg_trace.dir/io.cpp.o.d"
  "/root/repo/src/trace/stats.cpp" "src/trace/CMakeFiles/dpg_trace.dir/stats.cpp.o" "gcc" "src/trace/CMakeFiles/dpg_trace.dir/stats.cpp.o.d"
  "/root/repo/src/trace/transforms.cpp" "src/trace/CMakeFiles/dpg_trace.dir/transforms.cpp.o" "gcc" "src/trace/CMakeFiles/dpg_trace.dir/transforms.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dpg_core.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/dpg_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dpg_util.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/dpg_parallel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
