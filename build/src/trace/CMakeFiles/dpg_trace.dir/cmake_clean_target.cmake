file(REMOVE_RECURSE
  "libdpg_trace.a"
)
