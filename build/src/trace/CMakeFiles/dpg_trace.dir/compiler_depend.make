# Empty compiler generated dependencies file for dpg_trace.
# This may be replaced when dependencies are built.
