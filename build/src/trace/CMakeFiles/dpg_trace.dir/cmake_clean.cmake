file(REMOVE_RECURSE
  "CMakeFiles/dpg_trace.dir/generators.cpp.o"
  "CMakeFiles/dpg_trace.dir/generators.cpp.o.d"
  "CMakeFiles/dpg_trace.dir/io.cpp.o"
  "CMakeFiles/dpg_trace.dir/io.cpp.o.d"
  "CMakeFiles/dpg_trace.dir/stats.cpp.o"
  "CMakeFiles/dpg_trace.dir/stats.cpp.o.d"
  "CMakeFiles/dpg_trace.dir/transforms.cpp.o"
  "CMakeFiles/dpg_trace.dir/transforms.cpp.o.d"
  "libdpg_trace.a"
  "libdpg_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpg_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
