
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/solver/baselines.cpp" "src/solver/CMakeFiles/dpg_solver.dir/baselines.cpp.o" "gcc" "src/solver/CMakeFiles/dpg_solver.dir/baselines.cpp.o.d"
  "/root/repo/src/solver/bruteforce.cpp" "src/solver/CMakeFiles/dpg_solver.dir/bruteforce.cpp.o" "gcc" "src/solver/CMakeFiles/dpg_solver.dir/bruteforce.cpp.o.d"
  "/root/repo/src/solver/correlation.cpp" "src/solver/CMakeFiles/dpg_solver.dir/correlation.cpp.o" "gcc" "src/solver/CMakeFiles/dpg_solver.dir/correlation.cpp.o.d"
  "/root/repo/src/solver/cut_operation.cpp" "src/solver/CMakeFiles/dpg_solver.dir/cut_operation.cpp.o" "gcc" "src/solver/CMakeFiles/dpg_solver.dir/cut_operation.cpp.o.d"
  "/root/repo/src/solver/dp_greedy.cpp" "src/solver/CMakeFiles/dpg_solver.dir/dp_greedy.cpp.o" "gcc" "src/solver/CMakeFiles/dpg_solver.dir/dp_greedy.cpp.o.d"
  "/root/repo/src/solver/greedy.cpp" "src/solver/CMakeFiles/dpg_solver.dir/greedy.cpp.o" "gcc" "src/solver/CMakeFiles/dpg_solver.dir/greedy.cpp.o.d"
  "/root/repo/src/solver/group_solver.cpp" "src/solver/CMakeFiles/dpg_solver.dir/group_solver.cpp.o" "gcc" "src/solver/CMakeFiles/dpg_solver.dir/group_solver.cpp.o.d"
  "/root/repo/src/solver/lower_bound.cpp" "src/solver/CMakeFiles/dpg_solver.dir/lower_bound.cpp.o" "gcc" "src/solver/CMakeFiles/dpg_solver.dir/lower_bound.cpp.o.d"
  "/root/repo/src/solver/online.cpp" "src/solver/CMakeFiles/dpg_solver.dir/online.cpp.o" "gcc" "src/solver/CMakeFiles/dpg_solver.dir/online.cpp.o.d"
  "/root/repo/src/solver/online_dp_greedy.cpp" "src/solver/CMakeFiles/dpg_solver.dir/online_dp_greedy.cpp.o" "gcc" "src/solver/CMakeFiles/dpg_solver.dir/online_dp_greedy.cpp.o.d"
  "/root/repo/src/solver/optimal_offline.cpp" "src/solver/CMakeFiles/dpg_solver.dir/optimal_offline.cpp.o" "gcc" "src/solver/CMakeFiles/dpg_solver.dir/optimal_offline.cpp.o.d"
  "/root/repo/src/solver/pairing.cpp" "src/solver/CMakeFiles/dpg_solver.dir/pairing.cpp.o" "gcc" "src/solver/CMakeFiles/dpg_solver.dir/pairing.cpp.o.d"
  "/root/repo/src/solver/subset_exact.cpp" "src/solver/CMakeFiles/dpg_solver.dir/subset_exact.cpp.o" "gcc" "src/solver/CMakeFiles/dpg_solver.dir/subset_exact.cpp.o.d"
  "/root/repo/src/solver/temporal_correlation.cpp" "src/solver/CMakeFiles/dpg_solver.dir/temporal_correlation.cpp.o" "gcc" "src/solver/CMakeFiles/dpg_solver.dir/temporal_correlation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dpg_core.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/dpg_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dpg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
