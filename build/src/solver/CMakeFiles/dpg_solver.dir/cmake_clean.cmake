file(REMOVE_RECURSE
  "CMakeFiles/dpg_solver.dir/baselines.cpp.o"
  "CMakeFiles/dpg_solver.dir/baselines.cpp.o.d"
  "CMakeFiles/dpg_solver.dir/bruteforce.cpp.o"
  "CMakeFiles/dpg_solver.dir/bruteforce.cpp.o.d"
  "CMakeFiles/dpg_solver.dir/correlation.cpp.o"
  "CMakeFiles/dpg_solver.dir/correlation.cpp.o.d"
  "CMakeFiles/dpg_solver.dir/cut_operation.cpp.o"
  "CMakeFiles/dpg_solver.dir/cut_operation.cpp.o.d"
  "CMakeFiles/dpg_solver.dir/dp_greedy.cpp.o"
  "CMakeFiles/dpg_solver.dir/dp_greedy.cpp.o.d"
  "CMakeFiles/dpg_solver.dir/greedy.cpp.o"
  "CMakeFiles/dpg_solver.dir/greedy.cpp.o.d"
  "CMakeFiles/dpg_solver.dir/group_solver.cpp.o"
  "CMakeFiles/dpg_solver.dir/group_solver.cpp.o.d"
  "CMakeFiles/dpg_solver.dir/lower_bound.cpp.o"
  "CMakeFiles/dpg_solver.dir/lower_bound.cpp.o.d"
  "CMakeFiles/dpg_solver.dir/online.cpp.o"
  "CMakeFiles/dpg_solver.dir/online.cpp.o.d"
  "CMakeFiles/dpg_solver.dir/online_dp_greedy.cpp.o"
  "CMakeFiles/dpg_solver.dir/online_dp_greedy.cpp.o.d"
  "CMakeFiles/dpg_solver.dir/optimal_offline.cpp.o"
  "CMakeFiles/dpg_solver.dir/optimal_offline.cpp.o.d"
  "CMakeFiles/dpg_solver.dir/pairing.cpp.o"
  "CMakeFiles/dpg_solver.dir/pairing.cpp.o.d"
  "CMakeFiles/dpg_solver.dir/subset_exact.cpp.o"
  "CMakeFiles/dpg_solver.dir/subset_exact.cpp.o.d"
  "CMakeFiles/dpg_solver.dir/temporal_correlation.cpp.o"
  "CMakeFiles/dpg_solver.dir/temporal_correlation.cpp.o.d"
  "libdpg_solver.a"
  "libdpg_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpg_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
