# Empty dependencies file for dpg_solver.
# This may be replaced when dependencies are built.
