file(REMOVE_RECURSE
  "libdpg_solver.a"
)
