// bench_gate: the CI regression gate.
//
//   bench_gate --baseline BENCH_solvers.json --current /tmp/bench-now.json
//             [--sections a,b,c]
//
// Loads both schema-v2 bench documents, evaluates every threshold the
// *baseline* declares against the current data (the committed baseline is
// the contract — weakening a gate requires a visible baseline diff), prints
// the PASS/FAIL table, and exits nonzero when any gate fails.  Structural
// problems — v1/unknown schema, a section or metric missing from the current
// file — are loud failures, never skips.
//
// --sections restricts the contract to the named baseline sections: the
// per-PR job gates only the quick-tier sections against the committed
// nightly baseline (which also carries nightly-only sections).  Naming a
// section the baseline does not declare is an error, not a skip.
#include <cstdio>
#include <string>
#include <vector>

#include "harness/gate.hpp"
#include "harness/runner.hpp"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: bench_gate --baseline FILE --current FILE"
               " [--sections a,b,c]\n");
  return 2;
}

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= csv.size()) {
    const std::size_t comma = csv.find(',', start);
    const std::size_t end = comma == std::string::npos ? csv.size() : comma;
    if (end > start) out.push_back(csv.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

/// The baseline with its "sections" object filtered to `names`, preserving
/// declaration order.  Throws when a requested name is not declared.
dpg::bench::Json filter_sections(const dpg::bench::Json& baseline,
                                 const std::vector<std::string>& names) {
  const dpg::bench::Json& sections = *baseline.find("sections");
  dpg::bench::Json kept = dpg::bench::Json::object();
  for (const auto& [key, body] : sections.members()) {
    for (const std::string& name : names) {
      if (key == name) kept.set(key, body);
    }
  }
  for (const std::string& name : names) {
    if (kept.find(name) == nullptr) {
      throw dpg::bench::JsonError("--sections names \"" + name +
                                  "\" but the baseline declares no such "
                                  "section");
    }
  }
  dpg::bench::Json filtered = dpg::bench::Json::object();
  for (const auto& [key, value] : baseline.members()) {
    filtered.set(key, key == "sections" ? kept : value);
  }
  return filtered;
}

}  // namespace

int main(int argc, char** argv) {
  std::string baseline_path;
  std::string current_path;
  std::string sections_csv;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--baseline" && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (arg == "--current" && i + 1 < argc) {
      current_path = argv[++i];
    } else if (arg == "--sections" && i + 1 < argc) {
      sections_csv = argv[++i];
    } else {
      return usage();
    }
  }
  if (baseline_path.empty() || current_path.empty()) return usage();

  try {
    dpg::bench::Json baseline =
        dpg::bench::parse_json(dpg::bench::read_text_file(baseline_path));
    const dpg::bench::Json current =
        dpg::bench::parse_json(dpg::bench::read_text_file(current_path));
    dpg::bench::require_bench_schema_v2(baseline, baseline_path);
    dpg::bench::require_bench_schema_v2(current, current_path);
    if (!sections_csv.empty()) {
      baseline = filter_sections(baseline, split_csv(sections_csv));
    }

    const dpg::bench::GateReport report =
        dpg::bench::evaluate_gates(baseline, current);
    std::fputs(dpg::bench::render_gate_report(report).c_str(), stdout);
    return report.ok() ? 0 : 1;
  } catch (const dpg::bench::JsonError& error) {
    std::fprintf(stderr, "bench_gate: FAIL: %s\n", error.what());
    return 1;
  }
}
