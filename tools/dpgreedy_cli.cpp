// dpgreedy — the command-line front end to the solver engine.
//
//   dpgreedy list     [--names]                     (registered solvers)
//   dpgreedy generate --out trace.csv [--kind taxi|paired|zipf|...] [--seed N]
//   dpgreedy stats    --trace trace.csv
//   dpgreedy convert  <in> <out> [--format csv|dpt]
//   dpgreedy solve    --trace trace.csv [--solver NAME] [--theta T]
//                     [--alpha A] [--mu M] [--lambda L] [--threads N]
//                     [--format F] [--export-dir DIR]
//   dpgreedy compare  --trace trace.csv [--solvers a,b,c] [--format F]
//   dpgreedy online   --trace trace.csv ...  (online vs offline DP_Greedy)
//   dpgreedy serve    --trace - [--snapshot-every N] [--probe-chunk N]
//                     [--stats-every N] [--prom-out FILE] [--pipeline]
//                     [--batch N] [--ring N] [--listen HOST:PORT]
//                     [--shards N] [--partitions M] [--route R]
//                     [--topology T] [--archive FILE]
//                     (long-lived streaming engine over a request feed;
//                     --stats-every prints live rate/latency lines,
//                     --prom-out keeps an atomically-replaced Prometheus
//                     text-format snapshot file fresh, --pipeline decodes
//                     on a second thread feeding push_batch over an SPSC
//                     ring, --listen serves GET /metrics + /healthz from
//                     the double-buffered snapshot board, --shards N /
//                     --partitions M run the sharded N×M topology with
//                     flow-hashed routing (--route server|itemset) over
//                     SPSC-crossbar or MPMC rings (--topology), and
//                     --archive keeps a byte-exact `.dpt` copy of the feed.
//                     Every flag parses into the one ServeConfig.)
//
// Every solver runs through the SolverRegistry (engine/registry.hpp), so
// `--solver`/`--solvers` accept exactly the names `dpgreedy list` prints.
// Traces are either the CSV format of trace/io.hpp (interchange) or the
// binary columnar `.dpt` format of trace/dpt.hpp (mmap zero-copy load);
// every subcommand picks the reader/writer from the file extension, and
// `convert` translates between the two losslessly.  A trace path of `-`
// reads CSV from stdin (stats/solve/compare/online materialize it; serve
// streams it line by line in bounded memory).
#include <algorithm>
#include <cctype>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "dpgreedy.hpp"
#include "util/stopwatch.hpp"

using namespace dpg;

namespace {

// ---------------------------------------------------------------------------
// Shared per-subcommand plumbing: every solving subcommand registers the
// same trace/model/config flags once, through one helper.

struct RunFlags {
  const std::string* trace;
  const double* theta;
  const double* mu;
  const double* lambda;
  const double* alpha;
  const std::size_t* window;
  const std::size_t* repack;
  const std::size_t* group_size;
  const double* hold;
  const std::size_t* threads;
  const bool* no_kernels;
  const bool* verbose;
  const std::string* metrics_out;
  const std::string* trace_out;
};

RunFlags add_run_flags(ArgParser& args) {
  RunFlags flags;
  flags.trace = args.add_string(
      "trace", "trace path (.csv or .dpt; '-' = CSV on stdin)", "trace.csv");
  flags.theta = args.add_double("theta", "correlation threshold", 0.3);
  flags.mu = args.add_double("mu", "cache cost rate", 1.0);
  flags.lambda = args.add_double("lambda", "transfer cost", 1.0);
  flags.alpha = args.add_double("alpha", "package discount", 0.8);
  flags.window = args.add_size("window", "online Jaccard window", 200);
  flags.repack = args.add_size("repack", "online re-pairing interval", 50);
  flags.group_size = args.add_size("group-size", "max group size", 3);
  flags.hold = args.add_double("hold", "break-even hold factor", 1.0);
  flags.threads =
      args.add_size("threads", "Phase-2 worker threads (0 = serial)", 0);
  flags.no_kernels = args.add_flag(
      "no-kernels", "run the scalar DP reference loops instead of the "
      "SIMD kernels (results are bit-identical)");
  flags.verbose = args.add_flag("verbose", "log at DEBUG level", 'v');
  flags.metrics_out = args.add_string(
      "metrics-out", "write a metrics snapshot JSON here (enables telemetry)",
      "");
  flags.trace_out = args.add_string(
      "trace-out",
      "write a Perfetto-loadable trace_event JSON here (enables telemetry)",
      "");
  return flags;
}

/// Applies the cross-cutting run flags: log level and telemetry recording.
/// Call after parse(), before solving.
void begin_telemetry(const RunFlags& flags) {
  if (*flags.verbose) set_log_level(LogLevel::kDebug);
  if (!flags.metrics_out->empty() || !flags.trace_out->empty()) {
    obs::set_enabled(true);
    DPG_DEBUG << "telemetry recording enabled";
  }
}

void write_text_file(const std::string& path, const std::string& text) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) throw IoError("cannot write " + path);
  std::fputs(text.c_str(), file);
  std::fclose(file);
}

/// Dumps --metrics-out / --trace-out files after the solves finished.
void finish_telemetry(const RunFlags& flags) {
  if (!flags.metrics_out->empty()) {
    write_text_file(*flags.metrics_out,
                    obs::metrics_json(obs::snapshot_metrics()) + "\n");
    std::printf("wrote metrics to %s\n", flags.metrics_out->c_str());
  }
  if (!flags.trace_out->empty()) {
    write_text_file(*flags.trace_out, obs::trace_json() + "\n");
    const std::uint64_t dropped = obs::trace_dropped_events();
    if (dropped > 0) {
      std::fprintf(stderr, "warning: %llu trace events dropped (ring full)\n",
                   static_cast<unsigned long long>(dropped));
    }
    std::printf("wrote trace to %s\n", flags.trace_out->c_str());
  }
}

RequestSequence load_trace(const RunFlags& flags) {
  RequestSequence trace = read_trace_auto(*flags.trace);
  DPG_INFO << "loaded " << trace.size() << " requests (m="
           << trace.server_count() << ", k=" << trace.item_count()
           << ") from " << *flags.trace;
  return trace;
}

CostModel model_of(const RunFlags& flags) {
  CostModel model;
  model.mu = *flags.mu;
  model.lambda = *flags.lambda;
  model.alpha = *flags.alpha;
  model.validate();
  return model;
}

SolverConfig config_of(const RunFlags& flags) {
  SolverConfig config;
  config.theta = *flags.theta;
  config.max_group_size = *flags.group_size;
  config.window = *flags.window;
  config.repack_interval = *flags.repack;
  config.hold_factor = *flags.hold;
  config.threads(*flags.threads);
  config.kernels(!*flags.no_kernels);
  return config;
}

void print_reports(const std::vector<RunReport>& reports,
                   const std::string& format) {
  if (format == "table") {
    std::printf("%s", render_comparison(reports).c_str());
    return;
  }
  if (format == "csv") {
    std::printf("%s\n", join(report_csv_header(), ",").c_str());
    for (const RunReport& report : reports) {
      std::printf("%s\n", join(report_csv_row(report), ",").c_str());
    }
    return;
  }
  if (format == "json") {
    std::printf("[");
    for (std::size_t i = 0; i < reports.size(); ++i) {
      std::printf("%s%s", i == 0 ? "" : ",\n ",
                  report_json(reports[i]).c_str());
    }
    std::printf("]\n");
    return;
  }
  throw InvalidArgument("unknown --format '" + format +
                        "' (valid: table, csv, json)");
}

// ---------------------------------------------------------------------------
// Subcommands.

int cmd_list(int argc, const char* const* argv) {
  ArgParser args("dpgreedy list", "list the registered solvers");
  const bool* names_only =
      args.add_flag("names", "print bare names only (one per line)");
  args.parse(argc, argv);

  if (*names_only) {
    for (const std::string& name : builtin_registry().names()) {
      std::printf("%s\n", name.c_str());
    }
    return 0;
  }
  TextTable table({"solver", "algorithm", "paper", "setting"});
  for (const SolverInfo& info : builtin_registry().list()) {
    table.add_row({info.name, info.algorithm, info.paper_section,
                   info.online ? "online" : "offline"});
  }
  std::printf("%s", table.render().c_str());
  return 0;
}

int cmd_generate(int argc, const char* const* argv) {
  ArgParser args("dpgreedy generate", "generate a workload trace");
  const std::string* out =
      args.add_string("out", "output trace path (.csv or .dpt)", "trace.csv");
  const std::string* kind =
      args.add_string("kind", "taxi | paired | zipf | uniform | bursty", "taxi");
  const std::size_t* seed = args.add_size("seed", "RNG seed", 42);
  const double* duration = args.add_double("duration", "taxi: simulated time", 300.0);
  const std::size_t* requests = args.add_size("requests", "non-taxi: request count", 2000);
  const std::size_t* servers = args.add_size("servers", "server count", 50);
  const std::size_t* items = args.add_size("items", "item count", 10);
  args.parse(argc, argv);

  Rng rng(*seed);
  RequestSequence trace = [&] {
    if (*kind == "taxi") {
      MobilityConfig config;
      config.duration = *duration;
      config.taxi_count = *items;
      return simulate_mobility(config, rng);
    }
    if (*kind == "paired") {
      PairedTraceConfig config;
      config.server_count = *servers;
      config.requests_per_pair = *requests / std::max<std::size_t>(1, *items / 2);
      config.pair_jaccard.assign(*items / 2, 0.0);
      for (std::size_t p = 0; p < config.pair_jaccard.size(); ++p) {
        config.pair_jaccard[p] =
            0.1 + 0.8 * static_cast<double>(p) /
                      static_cast<double>(std::max<std::size_t>(
                          1, config.pair_jaccard.size() - 1));
      }
      return generate_paired_trace(config, rng);
    }
    if (*kind == "zipf") {
      ZipfTraceConfig config;
      config.server_count = *servers;
      config.item_count = *items;
      config.request_count = *requests;
      return generate_zipf_trace(config, rng);
    }
    if (*kind == "uniform") {
      UniformTraceConfig config;
      config.server_count = *servers;
      config.item_count = *items;
      config.request_count = *requests;
      return generate_uniform_trace(config, rng);
    }
    if (*kind == "bursty") {
      BurstyTraceConfig config;
      config.server_count = *servers;
      config.item_count = *items;
      config.requests_per_burst = 25;
      config.burst_count = std::max<std::size_t>(1, *requests / 25);
      return generate_bursty_trace(config, rng);
    }
    throw InvalidArgument("unknown --kind '" + *kind +
                          "' (valid: taxi, paired, zipf, uniform, bursty)");
  }();

  write_trace_auto(*out, trace);
  std::printf("wrote %zu requests (m=%zu, k=%zu) to %s\n", trace.size(),
              trace.server_count(), trace.item_count(), out->c_str());
  return 0;
}

int cmd_convert(int argc, const char* const* argv) {
  // `convert <in> <out>` takes positionals, which ArgParser doesn't do, so
  // this one subcommand parses by hand.  The output format follows the
  // destination extension unless --format overrides it; the input format is
  // always sniffed from the source extension.
  const auto convert_usage = [] {
    std::fputs(
        "usage: dpgreedy convert <in> <out> [--format csv|dpt]\n"
        "  converts a trace between the CSV and binary .dpt formats\n"
        "  (round-trips are lossless; format defaults to the <out> extension)\n",
        stderr);
  };
  std::string format;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      convert_usage();
      return 0;
    }
    if (arg.rfind("--format=", 0) == 0) {
      format = arg.substr(9);
    } else if (arg == "--format") {
      if (i + 1 >= argc) {
        throw InvalidArgument("dpgreedy convert: --format needs a value");
      }
      format = argv[++i];
    } else if (!arg.empty() && arg.front() == '-') {
      throw InvalidArgument("dpgreedy convert: unknown option '" + arg + "'");
    } else {
      positional.push_back(arg);
    }
  }
  if (positional.size() != 2) {
    convert_usage();
    return 2;
  }
  if (!format.empty() && format != "csv" && format != "dpt") {
    throw InvalidArgument("dpgreedy convert: unknown --format '" + format +
                          "' (valid: csv, dpt)");
  }
  const std::string& in = positional[0];
  const std::string& out = positional[1];

  const RequestSequence trace = read_trace_auto(in);
  const bool to_dpt = format.empty() ? is_dpt_path(out) : format == "dpt";
  if (to_dpt) {
    write_trace_dpt(out, trace);
  } else {
    write_trace_file(out, trace);
  }
  std::printf("converted %s -> %s (%zu requests, m=%zu, k=%zu, %s)\n",
              in.c_str(), out.c_str(), trace.size(), trace.server_count(),
              trace.item_count(), to_dpt ? "dpt" : "csv");
  return 0;
}

int cmd_stats(int argc, const char* const* argv) {
  ArgParser args("dpgreedy stats", "describe a trace");
  const std::string* path = args.add_string(
      "trace", "trace path (.csv or .dpt; '-' = CSV on stdin)", "trace.csv");
  args.parse(argc, argv);
  const RequestSequence trace = read_trace_auto(*path);
  const TraceStats stats = compute_trace_stats(trace);
  std::printf("%s\n", render_spatial_distribution(stats).c_str());
  std::printf("%s\n", render_frequent_pairs(trace, 10).c_str());
  std::printf("requests %zu, servers %zu, items %zu, horizon %s, "
              "mean items/request %s\n",
              stats.request_count, stats.server_count, stats.item_count,
              format_fixed(stats.horizon, 2).c_str(),
              format_fixed(stats.mean_items_per_request, 3).c_str());
  return 0;
}

/// Turns a plan label ("package {1,2}") into a filename stem.
std::string plan_stem(const std::string& label) {
  std::string stem;
  for (const char c : label) {
    if (std::isalnum(static_cast<unsigned char>(c)) != 0) {
      stem += c;
    } else if (!stem.empty() && stem.back() != '_') {
      stem += '_';
    }
  }
  while (!stem.empty() && stem.back() == '_') stem.pop_back();
  return stem.empty() ? "plan" : stem;
}

void export_plans(const std::vector<FlowPlan>& plans,
                  const std::string& export_dir) {
  for (const FlowPlan& plan : plans) {
    if (plan.schedule.segments().empty() && plan.schedule.transfers().empty()) {
      continue;  // nothing scheduled (e.g. an item with no requests)
    }
    const std::string base = export_dir + "/" + plan_stem(plan.label);
    std::FILE* csv = std::fopen((base + ".csv").c_str(), "w");
    std::FILE* dot = std::fopen((base + ".dot").c_str(), "w");
    if (csv == nullptr || dot == nullptr) {
      if (csv != nullptr) std::fclose(csv);
      if (dot != nullptr) std::fclose(dot);
      throw IoError("cannot write exports under " + export_dir);
    }
    std::fputs(schedule_to_csv(plan.schedule).c_str(), csv);
    std::fputs(schedule_to_dot(plan.schedule, plan.flow).c_str(), dot);
    std::fclose(csv);
    std::fclose(dot);
    std::printf("exported %s.{csv,dot}\n", base.c_str());
  }
}

int cmd_solve(int argc, const char* const* argv) {
  ArgParser args("dpgreedy solve", "run one registered solver on a trace");
  const RunFlags flags = add_run_flags(args);
  const std::string* solver =
      args.add_string("solver", "registry name (see `dpgreedy list`)",
                      "dp_greedy");
  const std::string* format =
      args.add_string("format", "table | csv | json", "table");
  const std::string* export_dir =
      args.add_string("export-dir", "write plan schedules (CSV+DOT) here", "");
  args.parse(argc, argv);
  begin_telemetry(flags);

  const RequestSequence trace = load_trace(flags);
  const CostModel model = model_of(flags);
  const RunReport report =
      builtin_registry().run(*solver, trace, model, config_of(flags));

  if (!report.plans.empty()) {
    TextTable table({"plan", "cost", "segments", "transfers"});
    for (const FlowPlan& plan : report.plans) {
      table.add_row({plan.label, format_fixed(plan.schedule.cost(model), 2),
                     std::to_string(plan.schedule.segments().size()),
                     std::to_string(plan.schedule.transfers().size())});
    }
    std::printf("%s\n", table.render().c_str());
  }
  print_reports({report}, *format);
  std::printf("total %s over %zu item accesses — ave_cost %s\n",
              format_fixed(report.total_cost, 2).c_str(),
              report.total_item_accesses,
              format_fixed(report.ave_cost, 4).c_str());
  if (*format == "table" && !report.metrics.counters.empty()) {
    std::printf("\n%s", render_metrics(report).c_str());
  }

  if (!export_dir->empty()) export_plans(report.plans, *export_dir);
  finish_telemetry(flags);
  return 0;
}

int cmd_compare(int argc, const char* const* argv) {
  ArgParser args("dpgreedy compare", "run several solvers on one trace");
  const RunFlags flags = add_run_flags(args);
  const std::string* solvers = args.add_string(
      "solvers", "comma-separated registry names (default: all)", "");
  const std::string* format =
      args.add_string("format", "table | csv | json", "table");
  args.parse(argc, argv);
  begin_telemetry(flags);

  std::vector<std::string> names;
  if (solvers->empty()) {
    names = builtin_registry().names();
  } else {
    for (const std::string& name : split(*solvers, ',')) {
      names.push_back(std::string(trim(name)));
    }
  }
  const RequestSequence trace = load_trace(flags);
  const std::vector<RunReport> reports =
      run_solvers(names, trace, model_of(flags), config_of(flags));
  print_reports(reports, *format);
  finish_telemetry(flags);
  return 0;
}

int cmd_online(int argc, const char* const* argv) {
  ArgParser args("dpgreedy online", "online DP_Greedy vs the offline solve");
  const RunFlags flags = add_run_flags(args);
  args.parse(argc, argv);
  begin_telemetry(flags);

  const RequestSequence trace = load_trace(flags);
  const CostModel model = model_of(flags);
  const SolverConfig config = config_of(flags);
  const RunReport online =
      builtin_registry().run("online_dp_greedy", trace, model, config);
  const RunReport offline =
      builtin_registry().run("dp_greedy", trace, model, config);

  std::printf("online : total %s, ave %s (%zu packs, %zu unpacks, "
              "%zu λ-charges)\n",
              format_fixed(online.total_cost, 2).c_str(),
              format_fixed(online.ave_cost, 4).c_str(), online.package_count,
              online.unpack_events, online.transfer_events);
  std::printf("offline: total %s, ave %s\n",
              format_fixed(offline.total_cost, 2).c_str(),
              format_fixed(offline.ave_cost, 4).c_str());
  if (offline.total_cost > 0.0) {
    std::printf("online/offline ratio: %s\n",
                format_fixed(online.total_cost / offline.total_cost, 3).c_str());
  }
  finish_telemetry(flags);
  return 0;
}

int cmd_serve(int argc, const char* const* argv) {
  ArgParser args("dpgreedy serve",
                 "run the streaming engine over a request feed");
  const RunFlags flags = add_run_flags(args);
  const std::size_t* snapshot_every = args.add_size(
      "snapshot-every", "emit a snapshot line every N requests (0 = final only)",
      1000);
  const std::size_t* probe_chunk = args.add_size(
      "probe-chunk",
      "run the offline cost-ratio probe every N requests (0 = off)", 0);
  const std::size_t* max_requests =
      args.add_size("max-requests", "stop after N requests (0 = all input)", 0);
  const std::size_t* stats_every = args.add_size(
      "stats-every",
      "emit a live stats line (rate, push p50/p99) every N requests "
      "(0 = off; enables telemetry)",
      0);
  const std::string* prom_out = args.add_string(
      "prom-out",
      "write a Prometheus text-format snapshot here on every stats/snapshot "
      "cadence and at exit (atomic rename; enables telemetry)",
      "");
  const bool* pipeline = args.add_flag(
      "pipeline",
      "decode on a second thread feeding push_batch over a bounded SPSC "
      "ring (bit-identical results; see docs/streaming.md)");
  const std::size_t* batch = args.add_size(
      "batch", "pipeline/sharded: requests per block (the push_batch unit)",
      1024);
  const std::size_t* ring = args.add_size(
      "ring", "pipeline/sharded: work-ring capacity in blocks", 8);
  const std::size_t* shards = args.add_size(
      "shards",
      "decode shards N (with --partitions, >1 runs the sharded N x M "
      "topology; see docs/streaming.md)",
      1);
  const std::size_t* partitions = args.add_size(
      "partitions", "engine partitions M (rows are flow-hashed; see --route)",
      1);
  const std::string* route = args.add_string(
      "route", "sharded flow routing: server | itemset", "server");
  const std::string* topology = args.add_string(
      "topology", "sharded ring topology: crossbar | mpmc", "crossbar");
  const std::string* archive = args.add_string(
      "archive",
      "archive the feed to this .dpt file while serving (1x1 only; the "
      "file is byte-identical to an offline convert of the same rows)",
      "");
  const std::string* listen = args.add_string(
      "listen",
      "serve GET /metrics and /healthz on HOST:PORT (IPv4; port 0 = "
      "ephemeral; enables telemetry)",
      "");
  args.parse(argc, argv);

  // Every serve flag lands in the one ServeConfig; validate() rejects bad
  // combinations (range errors, --archive with sharding) here at the parse
  // site, naming the offending field.
  ServeConfig config;
  config.batch(*batch)
      .ring(*ring)
      .shards(*shards)
      .partitions(*partitions)
      .route(parse_serve_route(*route))
      .topology(parse_serve_topology(*topology))
      .snapshot_every(*snapshot_every)
      .stats_every(*stats_every)
      .probe_chunk(*probe_chunk)
      .max_requests(*max_requests)
      .listen(*listen)
      .prom_out(*prom_out)
      .archive(*archive)
      .pipeline(*pipeline);
  config.validate();
  const bool sharded = config.shard_count > 1 || config.partition_count > 1;

  begin_telemetry(flags);
  // Live exposition needs the counters recording even without
  // --metrics-out/--trace-out.
  if (config.stats_interval > 0 || !config.prom_path.empty() ||
      !config.listen_address.empty()) {
    obs::set_enabled(true);
  }

  const CostModel model = model_of(flags);
  StreamingOptions options;
  options.online.theta = *flags.theta;
  options.online.window = *flags.window;
  options.online.repack_interval = *flags.repack;
  options.online.hold_factor = *flags.hold;
  options.probe_chunk = config.probe_chunk_rows;
  StreamingEngine engine(model, options);  // unused when sharded

  // Published snapshots live on a double-buffered board: the serve thread
  // publishes at snapshot cadence, and observers (the /metrics listener)
  // copy the board without ever touching the engine mutex.
  ReportBoard board;
  std::unique_ptr<obs::ScrapeListener> listener;
  if (!config.listen_address.empty()) {
    std::string host;
    std::uint16_t port = 0;
    obs::parse_listen_address(config.listen_address, &host, &port);
    listener = std::make_unique<obs::ScrapeListener>(host, port, [&board] {
      // The standard counter/histogram exposition, plus serve-level gauges
      // derived from the last published snapshot (if any).  The liveness
      // gauge comes first so a scrape is never empty — zero-valued counters
      // are dropped from snapshots, so before the first ingested batch the
      // standard exposition alone would be an empty body.
      std::string body = "# TYPE dpgreedy_serve_up gauge\ndpgreedy_serve_up 1\n";
      body += obs::prometheus_text(obs::snapshot_metrics());
      std::uint64_t version = 0;
      const StreamingSnapshot s = board.read(&version);
      if (version > 0) {
        const auto gauge = [&body](const char* name, const std::string& value) {
          body += "# TYPE ";
          body += name;
          body += " gauge\n";
          body += name;
          body += ' ';
          body += value;
          body += '\n';
        };
        gauge("dpgreedy_serve_requests", std::to_string(s.requests));
        gauge("dpgreedy_serve_epoch", std::to_string(s.epoch));
        gauge("dpgreedy_serve_live_packages", std::to_string(s.live_packages));
        gauge("dpgreedy_serve_total_cost", format_fixed(s.report.total_cost, 6));
        gauge("dpgreedy_serve_cost_ratio", format_fixed(s.cost_ratio, 6));
      }
      return body;
    });
    std::fprintf(stderr, "serve: listening on %s:%u (/metrics, /healthz)\n",
                 host.c_str(), static_cast<unsigned>(listener->port()));
  }

  // Prometheus snapshot files are written atomically (FILE.tmp + rename),
  // so a concurrent scraper never reads a torn exposition.
  const auto write_prom = [&config] {
    if (config.prom_path.empty()) return;
    if (!obs::write_prometheus_file(config.prom_path,
                                    obs::snapshot_metrics())) {
      std::fprintf(stderr, "warning: cannot write %s\n",
                   config.prom_path.c_str());
    }
  };

  // One printer for every topology: the 1×1 paths hand it engine.snapshot(),
  // the sharded path hands it the merged cross-partition snapshot.
  const auto print_snapshot = [&write_prom, &board](StreamingSnapshot s) {
    std::printf(
        "snapshot requests=%zu epoch=%zu packages=%zu items=%zu total=%s "
        "ave=%s delta=%s ratio=%s allocs=%llu\n",
        s.requests, s.epoch, s.live_packages, s.item_count,
        format_fixed(s.report.total_cost, 2).c_str(),
        format_fixed(s.report.ave_cost, 4).c_str(),
        format_fixed(s.delta.total_cost, 2).c_str(),
        format_fixed(s.cost_ratio, 3).c_str(),
        static_cast<unsigned long long>(s.state_alloc_events));
    std::fflush(stdout);
    write_prom();
    board.publish(std::move(s));
  };
  const auto emit_snapshot = [&engine, &print_snapshot] {
    print_snapshot(engine.snapshot());
  };

  // The live stats line: ingest rate since start plus the push-latency
  // distribution from the stream.push_ns histogram.  A distinct `stats `
  // prefix, so consumers of `snapshot `/`final ` lines are unaffected.
  const Stopwatch serve_watch;
  std::size_t pushed = 0;
  // Batched ingest (pipeline or sharded) amortizes clock reads to one pair
  // per block, so the latency histogram is per-block there.
  const bool batched = config.pipelined || sharded;
  const auto emit_stats = [&](std::size_t epoch) {
    const char* hist_name = batched ? "stream.batch_ns" : "stream.push_ns";
    const char* kind = batched ? "batch" : "push";
    const obs::MetricsSnapshot m = obs::snapshot_metrics();
    const obs::HistogramData* latency = nullptr;
    for (const auto& [name, data] : m.histograms) {
      if (name == hist_name) latency = &data;
    }
    const obs::HistogramData empty;
    if (latency == nullptr) latency = &empty;
    const double elapsed = serve_watch.elapsed_seconds();
    std::printf(
        "stats requests=%zu elapsed_s=%s rate_rps=%.0f epoch=%zu "
        "%s_p50_ns=%llu %s_p99_ns=%llu\n",
        pushed, format_fixed(elapsed, 3).c_str(),
        elapsed > 0.0 ? static_cast<double>(pushed) / elapsed : 0.0, epoch,
        kind,
        static_cast<unsigned long long>(
            obs::histogram_quantile_upper(*latency, 0.50)),
        kind,
        static_cast<unsigned long long>(
            obs::histogram_quantile_upper(*latency, 0.99)));
    std::fflush(stdout);
    write_prom();
  };

  // `serve --archive FILE` keeps a byte-exact `.dpt` copy of the feed
  // (config.validate() already pinned this to the 1×1 topologies, where
  // arrival order is the archive order).
  std::unique_ptr<DptStreamWriter> archive_writer;
  if (!config.archive_path.empty()) {
    archive_writer = std::make_unique<DptStreamWriter>(config.archive_path);
  }

  // Pump the feed into the engine; snapshots and stats on their cadences.
  const auto push_one = [&](ServerId server, Time time,
                            std::span<const ItemId> items) {
    engine.push(server, time, items);
    if (archive_writer) archive_writer->append(server, time, items);
    ++pushed;
    if (config.snapshot_interval > 0 && pushed % config.snapshot_interval == 0)
      emit_snapshot();
    if (config.stats_interval > 0 && pushed % config.stats_interval == 0)
      emit_stats(engine.epoch());
    return config.max_request_rows == 0 || pushed < config.max_request_rows;
  };

  // A malformed trace mid-stream must not vaporize what was already
  // ingested: report the error (path + row/byte offset) on one line, then
  // fall through to finish() so the final snapshot covers every request
  // pushed before the bad row, and exit nonzero.
  bool feed_failed = false;
  RunReport report;
  double final_ratio = 0.0;
  std::size_t final_chunks = 0;
  try {
    if (sharded) {
      // N decode shards × M engine partitions.  Merged barrier snapshots
      // arrive through the callback already in stream order; decode errors
      // come back as feed_error with the valid prefix served.
      const ShardedSnapshotCallback on_merged =
          [&](const StreamingSnapshot& s, std::size_t rows) {
            pushed = rows;
            print_snapshot(s);
            if (config.stats_interval > 0) emit_stats(s.epoch);
          };
      ShardedServeResult result;
      if (is_dpt_path(*flags.trace)) {
        // Binary traces mmap in zero-copy; claimed blocks view the columns.
        const RequestSequence trace = read_trace_auto(*flags.trace);
        SequenceClaimSource source(trace, config.batch_rows,
                                   config.max_request_rows);
        result = run_sharded_serve(source, model, config, options, on_merged);
      } else {
        std::ifstream file;
        const bool from_stdin = *flags.trace == "-";
        if (!from_stdin) {
          file.open(*flags.trace, std::ios::binary);
          if (!file) throw IoError("cannot open trace file: " + *flags.trace);
        }
        CsvClaimSource source(from_stdin ? std::cin : file,
                              from_stdin ? "<stdin>" : *flags.trace,
                              config.batch_rows, config.max_request_rows);
        result = run_sharded_serve(source, model, config, options, on_merged);
      }
      if (!result.feed_error.empty()) {
        std::fprintf(stderr, "dpgreedy serve: %s\n",
                     result.feed_error.c_str());
        feed_failed = true;
      }
      pushed = result.stats.requests;
      report = result.report;
      final_ratio = result.cost_ratio;
      final_chunks = result.probe_chunks;
    } else if (config.pipelined) {
      // Two-stage pipeline: a decode thread fills blocks and hands them
      // over an SPSC ring; this thread consumes them via push_batch.
      // Snapshot/stats cadences fire at the first batch boundary at or
      // past each cadence point.
      std::size_t next_snapshot = config.snapshot_interval;
      std::size_t next_stats = config.stats_interval;
      const ServeBatchCallback on_batch =
          [&](const RequestBlock& block, const StreamingDecision&,
              std::size_t total) {
            if (archive_writer) archive_writer->append_block(block);
            pushed = total;
            if (config.snapshot_interval > 0 && total >= next_snapshot) {
              emit_snapshot();
              while (next_snapshot <= total)
                next_snapshot += config.snapshot_interval;
            }
            if (config.stats_interval > 0 && total >= next_stats) {
              emit_stats(engine.epoch());
              while (next_stats <= total) next_stats += config.stats_interval;
            }
          };
      if (is_dpt_path(*flags.trace)) {
        // Binary traces mmap in zero-copy; blocks view the mapped columns.
        const RequestSequence trace = read_trace_auto(*flags.trace);
        SequenceBlockReader source(trace, config.batch_rows,
                                   config.max_request_rows);
        run_serve_pipeline(source, engine, config, on_batch);
      } else {
        std::ifstream file;
        const bool from_stdin = *flags.trace == "-";
        if (!from_stdin) {
          file.open(*flags.trace, std::ios::binary);
          if (!file) throw IoError("cannot open trace file: " + *flags.trace);
        }
        CsvBlockReader source(from_stdin ? std::cin : file,
                              from_stdin ? "<stdin>" : *flags.trace,
                              config.batch_rows, config.max_request_rows);
        run_serve_pipeline(source, engine, config, on_batch);
      }
    } else if (is_dpt_path(*flags.trace)) {
      // Binary traces mmap in zero-copy; iterate the mapped columns.
      const RequestSequence trace = read_trace_auto(*flags.trace);
      for (const Request& r : trace.requests()) {
        if (!push_one(r.server, r.time, r.items)) break;
      }
    } else {
      // CSV file or stdin: line-at-a-time, bounded memory.
      std::ifstream file;
      const bool from_stdin = *flags.trace == "-";
      if (!from_stdin) {
        file.open(*flags.trace, std::ios::binary);
        if (!file) throw IoError("cannot open trace file: " + *flags.trace);
      }
      CsvStreamReader reader(from_stdin ? std::cin : file,
                             from_stdin ? "<stdin>" : *flags.trace);
      CsvStreamRow row;
      while (reader.next(row)) {
        if (!push_one(row.server, row.time, row.items)) break;
      }
    }
  } catch (const Error& error) {
    std::fprintf(stderr, "dpgreedy serve: %s\n", error.what());
    feed_failed = true;
  }

  if (!sharded) {
    report = engine.finish();
    final_ratio = engine.cost_ratio();
    final_chunks = engine.probe_chunks();
  }
  // The archive covers exactly the served rows — on a feed error that is
  // the valid prefix, which is still a well-formed `.dpt`.
  if (archive_writer) {
    try {
      archive_writer->finish();
    } catch (const Error& error) {
      std::fprintf(stderr, "dpgreedy serve: archive: %s\n", error.what());
      feed_failed = true;
    }
  }
  std::printf(
      "final requests=%zu total=%s ave=%s transfers=%zu packs=%zu "
      "unpacks=%zu ratio=%s chunks=%zu\n",
      pushed, format_fixed(report.total_cost, 2).c_str(),
      format_fixed(report.ave_cost, 4).c_str(), report.transfer_events,
      report.package_count, report.unpack_events,
      format_fixed(final_ratio, 3).c_str(), final_chunks);
  write_prom();  // final exposition covers the whole run
  if (listener) listener->stop();
  finish_telemetry(flags);
  return feed_failed ? 1 : 0;
}

void usage() {
  std::fputs(
      "usage: dpgreedy <list|generate|stats|convert|solve|compare|online|"
      "serve> [options]\n"
      "       dpgreedy <command> --help for per-command options\n",
      stderr);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  const std::string command = argv[1];
  // Shift argv so each subcommand parses its own options.
  const int sub_argc = argc - 1;
  const char* const* sub_argv = argv + 1;
  try {
    if (command == "list") return cmd_list(sub_argc, sub_argv);
    if (command == "generate") return cmd_generate(sub_argc, sub_argv);
    if (command == "stats") return cmd_stats(sub_argc, sub_argv);
    if (command == "convert") return cmd_convert(sub_argc, sub_argv);
    if (command == "solve") return cmd_solve(sub_argc, sub_argv);
    if (command == "compare") return cmd_compare(sub_argc, sub_argv);
    if (command == "online") return cmd_online(sub_argc, sub_argv);
    if (command == "serve") return cmd_serve(sub_argc, sub_argv);
    usage();
    return 2;
  } catch (const Error& error) {
    std::fprintf(stderr, "dpgreedy %s: %s\n", command.c_str(), error.what());
    return 1;
  }
}
