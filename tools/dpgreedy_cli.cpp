// dpgreedy — the command-line front end to the library.
//
//   dpgreedy generate --out trace.csv [--kind taxi|paired|zipf] [--seed N]
//   dpgreedy stats    --trace trace.csv
//   dpgreedy solve    --trace trace.csv [--theta T] [--alpha A] [--mu M]
//                     [--lambda L] [--export-dir DIR]
//   dpgreedy compare  --trace trace.csv ...        (three-way comparison)
//   dpgreedy online   --trace trace.csv ...        (online DP_Greedy)
//
// Traces are the CSV format of trace/io.hpp, so generated workloads can be
// archived, inspected and re-solved reproducibly.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>

#include "core/schedule_export.hpp"
#include "mobility/simulator.hpp"
#include "solver/baselines.hpp"
#include "solver/dp_greedy.hpp"
#include "solver/online_dp_greedy.hpp"
#include "trace/generators.hpp"
#include "trace/io.hpp"
#include "trace/stats.hpp"
#include "util/args.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace dpg;

namespace {

int cmd_generate(int argc, const char* const* argv) {
  ArgParser args("dpgreedy generate", "generate a workload trace CSV");
  const std::string* out = args.add_string("out", "output trace path", "trace.csv");
  const std::string* kind =
      args.add_string("kind", "taxi | paired | zipf | uniform | bursty", "taxi");
  const std::size_t* seed = args.add_size("seed", "RNG seed", 42);
  const double* duration = args.add_double("duration", "taxi: simulated time", 300.0);
  const std::size_t* requests = args.add_size("requests", "non-taxi: request count", 2000);
  const std::size_t* servers = args.add_size("servers", "server count", 50);
  const std::size_t* items = args.add_size("items", "item count", 10);
  args.parse(argc, argv);

  Rng rng(*seed);
  RequestSequence trace = [&] {
    if (*kind == "taxi") {
      MobilityConfig config;
      config.duration = *duration;
      config.taxi_count = *items;
      return simulate_mobility(config, rng);
    }
    if (*kind == "paired") {
      PairedTraceConfig config;
      config.server_count = *servers;
      config.requests_per_pair = *requests / std::max<std::size_t>(1, *items / 2);
      config.pair_jaccard.assign(*items / 2, 0.0);
      for (std::size_t p = 0; p < config.pair_jaccard.size(); ++p) {
        config.pair_jaccard[p] =
            0.1 + 0.8 * static_cast<double>(p) /
                      static_cast<double>(std::max<std::size_t>(
                          1, config.pair_jaccard.size() - 1));
      }
      return generate_paired_trace(config, rng);
    }
    if (*kind == "zipf") {
      ZipfTraceConfig config;
      config.server_count = *servers;
      config.item_count = *items;
      config.request_count = *requests;
      return generate_zipf_trace(config, rng);
    }
    if (*kind == "uniform") {
      UniformTraceConfig config;
      config.server_count = *servers;
      config.item_count = *items;
      config.request_count = *requests;
      return generate_uniform_trace(config, rng);
    }
    if (*kind == "bursty") {
      BurstyTraceConfig config;
      config.server_count = *servers;
      config.item_count = *items;
      config.requests_per_burst = 25;
      config.burst_count = std::max<std::size_t>(1, *requests / 25);
      return generate_bursty_trace(config, rng);
    }
    throw InvalidArgument("unknown --kind: " + *kind);
  }();

  write_trace_file(*out, trace);
  std::printf("wrote %zu requests (m=%zu, k=%zu) to %s\n", trace.size(),
              trace.server_count(), trace.item_count(), out->c_str());
  return 0;
}

int cmd_stats(int argc, const char* const* argv) {
  ArgParser args("dpgreedy stats", "describe a trace");
  const std::string* path = args.add_string("trace", "trace CSV path", "trace.csv");
  args.parse(argc, argv);
  const RequestSequence trace = read_trace_file(*path);
  const TraceStats stats = compute_trace_stats(trace);
  std::printf("%s\n", render_spatial_distribution(stats).c_str());
  std::printf("%s\n", render_frequent_pairs(trace, 10).c_str());
  std::printf("requests %zu, servers %zu, items %zu, horizon %s, "
              "mean items/request %s\n",
              stats.request_count, stats.server_count, stats.item_count,
              format_fixed(stats.horizon, 2).c_str(),
              format_fixed(stats.mean_items_per_request, 3).c_str());
  return 0;
}

CostModel model_from(const double* mu, const double* lambda, const double* alpha) {
  CostModel model;
  model.mu = *mu;
  model.lambda = *lambda;
  model.alpha = *alpha;
  model.validate();
  return model;
}

int cmd_solve(int argc, const char* const* argv) {
  ArgParser args("dpgreedy solve", "run DP_Greedy on a trace");
  const std::string* path = args.add_string("trace", "trace CSV path", "trace.csv");
  const double* theta = args.add_double("theta", "correlation threshold", 0.3);
  const double* mu = args.add_double("mu", "cache cost rate", 1.0);
  const double* lambda = args.add_double("lambda", "transfer cost", 1.0);
  const double* alpha = args.add_double("alpha", "package discount", 0.8);
  const std::string* export_dir =
      args.add_string("export-dir", "write package schedules (CSV+DOT) here", "");
  args.parse(argc, argv);

  const RequestSequence trace = read_trace_file(*path);
  const CostModel model = model_from(mu, lambda, alpha);
  DpGreedyOptions options;
  options.theta = *theta;
  const DpGreedyResult result = solve_dp_greedy(trace, model, options);

  TextTable table({"package/item", "J", "cost", "ave"});
  for (const PackageReport& report : result.packages) {
    table.add_row({"{d" + std::to_string(report.pair.a) + ",d" +
                       std::to_string(report.pair.b) + "}",
                   format_fixed(report.pair.jaccard, 3),
                   format_fixed(report.total_cost(), 2),
                   format_fixed(report.ave_cost(), 4)});
  }
  for (const SingleItemReport& report : result.singles) {
    table.add_row({"d" + std::to_string(report.item), "-",
                   format_fixed(report.cost, 2),
                   format_fixed(report.accesses == 0
                                    ? 0.0
                                    : report.cost /
                                          static_cast<double>(report.accesses),
                                4)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("total %s over %zu item accesses — ave_cost %s\n",
              format_fixed(result.total_cost, 2).c_str(),
              result.total_item_accesses,
              format_fixed(result.ave_cost, 4).c_str());

  if (!export_dir->empty()) {
    for (const PackageReport& report : result.packages) {
      const std::string base = *export_dir + "/package_" +
                               std::to_string(report.pair.a) + "_" +
                               std::to_string(report.pair.b);
      const Flow flow = make_package_flow(trace, report.pair.a, report.pair.b);
      std::FILE* csv = std::fopen((base + ".csv").c_str(), "w");
      std::FILE* dot = std::fopen((base + ".dot").c_str(), "w");
      if (csv == nullptr || dot == nullptr) {
        if (csv != nullptr) std::fclose(csv);
        if (dot != nullptr) std::fclose(dot);
        throw IoError("cannot write exports under " + *export_dir);
      }
      std::fputs(schedule_to_csv(report.package_schedule).c_str(), csv);
      std::fputs(schedule_to_dot(report.package_schedule, flow).c_str(), dot);
      std::fclose(csv);
      std::fclose(dot);
      std::printf("exported %s.{csv,dot}\n", base.c_str());
    }
  }
  return 0;
}

int cmd_compare(int argc, const char* const* argv) {
  ArgParser args("dpgreedy compare", "DP_Greedy vs Optimal vs Package_Served");
  const std::string* path = args.add_string("trace", "trace CSV path", "trace.csv");
  const double* theta = args.add_double("theta", "correlation threshold", 0.3);
  const double* mu = args.add_double("mu", "cache cost rate", 1.0);
  const double* lambda = args.add_double("lambda", "transfer cost", 1.0);
  const double* alpha = args.add_double("alpha", "package discount", 0.8);
  args.parse(argc, argv);

  const RequestSequence trace = read_trace_file(*path);
  const CostModel model = model_from(mu, lambda, alpha);
  DpGreedyOptions options;
  options.theta = *theta;
  const DpGreedyResult dpg = solve_dp_greedy(trace, model, options);
  const OptimalBaselineResult optimal = solve_optimal_baseline(trace, model);
  const PackageServedResult packaged = solve_package_served(trace, model, *theta);

  TextTable table({"algorithm", "total", "ave"});
  table.add_row({"Optimal", format_fixed(optimal.total_cost, 2),
                 format_fixed(optimal.ave_cost, 4)});
  table.add_row({"Package_Served", format_fixed(packaged.total_cost, 2),
                 format_fixed(packaged.ave_cost, 4)});
  table.add_row({"DP_Greedy", format_fixed(dpg.total_cost, 2),
                 format_fixed(dpg.ave_cost, 4)});
  std::printf("%s", table.render().c_str());
  return 0;
}

int cmd_online(int argc, const char* const* argv) {
  ArgParser args("dpgreedy online", "online DP_Greedy (no lookahead)");
  const std::string* path = args.add_string("trace", "trace CSV path", "trace.csv");
  const double* theta = args.add_double("theta", "correlation threshold", 0.3);
  const double* mu = args.add_double("mu", "cache cost rate", 1.0);
  const double* lambda = args.add_double("lambda", "transfer cost", 1.0);
  const double* alpha = args.add_double("alpha", "package discount", 0.8);
  const std::size_t* window = args.add_size("window", "Jaccard window", 200);
  args.parse(argc, argv);

  const RequestSequence trace = read_trace_file(*path);
  const CostModel model = model_from(mu, lambda, alpha);
  OnlineDpGreedyOptions options;
  options.theta = *theta;
  options.window = *window;
  const OnlineDpGreedyResult online = solve_online_dp_greedy(trace, model, options);
  DpGreedyOptions offline_options;
  offline_options.theta = *theta;
  const DpGreedyResult offline = solve_dp_greedy(trace, model, offline_options);

  std::printf("online : total %s, ave %s (%zu packs, %zu unpacks, "
              "%zu package fetches, %zu transfers)\n",
              format_fixed(online.total_cost, 2).c_str(),
              format_fixed(online.ave_cost, 4).c_str(), online.pack_events,
              online.unpack_events, online.package_fetches, online.transfers);
  std::printf("offline: total %s, ave %s\n",
              format_fixed(offline.total_cost, 2).c_str(),
              format_fixed(offline.ave_cost, 4).c_str());
  if (offline.total_cost > 0.0) {
    std::printf("online/offline ratio: %s\n",
                format_fixed(online.total_cost / offline.total_cost, 3).c_str());
  }
  return 0;
}

void usage() {
  std::fputs(
      "usage: dpgreedy <generate|stats|solve|compare|online> [options]\n"
      "       dpgreedy <command> --help for per-command options\n",
      stderr);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  const std::string command = argv[1];
  // Shift argv so each subcommand parses its own options.
  const int sub_argc = argc - 1;
  const char* const* sub_argv = argv + 1;
  try {
    if (command == "generate") return cmd_generate(sub_argc, sub_argv);
    if (command == "stats") return cmd_stats(sub_argc, sub_argv);
    if (command == "solve") return cmd_solve(sub_argc, sub_argv);
    if (command == "compare") return cmd_compare(sub_argc, sub_argv);
    if (command == "online") return cmd_online(sub_argc, sub_argv);
    usage();
    return 2;
  } catch (const Error& error) {
    std::fprintf(stderr, "dpgreedy %s: %s\n", command.c_str(), error.what());
    return 1;
  }
}
