// Taxi fleet scenario — the paper's evaluation setting rebuilt end to end:
// a synthetic Shenzhen-like city (50 zones, 10 taxis, one data item each),
// hotspot-driven mobility, then a three-way comparison of DP_Greedy against
// the Optimal (non-packing) and Package_Served baselines, plus an
// operational replay of the winning plan.
//
//   $ taxi_fleet --duration 300 --alpha 0.8 --theta 0.3 --seed 42
#include <cstdio>

#include "dpgreedy.hpp"

using namespace dpg;

int main(int argc, char** argv) {
  ArgParser args("taxi_fleet", "mobile-cloud caching over a simulated taxi fleet");
  const std::size_t* seed = args.add_size("seed", "RNG seed", 42);
  const double* duration = args.add_double("duration", "simulated hours", 300.0);
  const double* alpha = args.add_double("alpha", "package discount factor α", 0.8);
  const double* theta = args.add_double("theta", "correlation threshold θ", 0.3);
  const double* mu = args.add_double("mu", "cache cost μ per item-hour", 1.0);
  const double* lambda = args.add_double("lambda", "transfer cost λ per item", 2.0);
  const std::size_t* taxis = args.add_size("taxis", "fleet size (= item count)", 10);
  const std::size_t* threads = args.add_size(
      "threads", "Phase-2 worker threads (0 = serial)", 0);
  args.parse(argc, argv);

  MobilityConfig mobility;
  mobility.taxi_count = *taxis;
  mobility.duration = *duration;
  Rng rng(*seed);
  const RequestSequence trace = simulate_mobility(mobility, rng);

  std::printf("== simulated city ==\n");
  std::printf("zones (servers): %zu, taxis (items): %zu, requests: %zu\n\n",
              trace.server_count(), trace.item_count(), trace.size());
  const TraceStats stats = compute_trace_stats(trace);
  std::printf("%s\n", render_spatial_distribution(stats, 40).c_str());
  std::printf("most correlated item pairs:\n%s\n",
              render_frequent_pairs(trace, 5).c_str());

  CostModel model;
  model.mu = *mu;
  model.lambda = *lambda;
  model.alpha = *alpha;

  SolverConfig config;
  config.theta = *theta;
  config.threads(*threads);
  const std::vector<RunReport> reports = run_solvers(
      {"optimal_baseline", "package_served", "dp_greedy"}, trace, model,
      config);

  std::printf("== algorithm comparison (θ=%.2f, α=%.2f, μ=%.2f, λ=%.2f) ==\n",
              *theta, *alpha, *mu, *lambda);
  std::printf("%s\n", render_comparison(reports).c_str());

  // Per-plan detail straight from the DP_Greedy report: every package the
  // pairing phase formed (served at the discounted 2α rate) and every
  // singleton, with their schedule-derived numbers.
  std::printf("per-plan breakdown (DP_Greedy):\n");
  TextTable plans({"plan", "requests", "segments", "transfers", "cost"});
  for (const FlowPlan& plan : reports[2].plans) {
    if (plan.flow.empty()) continue;
    plans.add_row({plan.label, std::to_string(plan.flow.size()),
                   std::to_string(plan.schedule.segments().size()),
                   std::to_string(plan.schedule.transfers().size()),
                   format_fixed(plan.schedule.cost(model), 2)});
  }
  std::printf("%s\n", plans.render().c_str());

  // Operational replay of the DP_Greedy plan, straight from the report's
  // schedule handles.
  const ReplayMetrics replay =
      replay_plans(reports[2].plans, model, trace.server_count());
  std::printf("== replay of the DP_Greedy plan ==\n");
  std::printf("feasible: %s, wire transfers: %zu, cache-hours: %s, "
              "peak replicas: %zu, cache-hit ratio: %s\n",
              replay.feasible ? "yes" : "no", replay.transfer_count,
              format_fixed(replay.total_cache_time, 1).c_str(),
              replay.peak_concurrent_copies,
              format_fixed(replay.cache_hit_ratio(), 3).c_str());
  return 0;
}
