// Online vs offline — the paper's reference [6] contrasts the optimal
// offline algorithm with a constant-competitive online policy.  This
// example measures the empirical competitive ratio of the break-even
// (rent-or-buy) online rule against the offline DP across a taxi trace,
// plus an ablation of the holding-horizon factor.
//
//   $ online_vs_offline --duration 300 --lambda 2
#include <cstdio>

#include "engine/algorithms.hpp"
#include "engine/registry.hpp"
#include "engine/render.hpp"
#include "mobility/simulator.hpp"
#include "util/args.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace dpg;

int main(int argc, char** argv) {
  ArgParser args("online_vs_offline",
                 "break-even online caching vs the offline optimum");
  const std::size_t* seed = args.add_size("seed", "RNG seed", 11);
  const double* duration = args.add_double("duration", "simulated hours", 300.0);
  const double* mu = args.add_double("mu", "cache cost μ", 1.0);
  const double* lambda = args.add_double("lambda", "transfer cost λ", 2.0);
  args.parse(argc, argv);

  MobilityConfig mobility;
  mobility.duration = *duration;
  Rng rng(*seed);
  const RequestSequence trace = simulate_mobility(mobility, rng);

  CostModel model;
  model.mu = *mu;
  model.lambda = *lambda;
  model.alpha = 0.8;

  std::printf("== per-item competitive ratio (hold factor 1.0) ==\n");
  TextTable table({"item", "requests", "offline DP", "online", "ratio"});
  std::vector<double> ratios;
  for (ItemId item = 0; item < trace.item_count(); ++item) {
    const Flow flow = make_item_flow(trace, item);
    if (flow.empty()) continue;
    const Cost offline =
        solve_optimal_offline(flow, model, trace.server_count()).raw_cost;
    const Cost online =
        solve_online_break_even(flow, model, trace.server_count()).raw_cost;
    const double ratio = offline > 0.0 ? online / offline : 1.0;
    ratios.push_back(ratio);
    table.add_row({"d" + std::to_string(item), std::to_string(flow.size()),
                   format_fixed(offline, 1), format_fixed(online, 1),
                   format_fixed(ratio, 3)});
  }
  std::printf("%s\n", table.render().c_str());
  const Summary summary = summarize(ratios);
  std::printf("mean ratio %.3f, worst %.3f "
              "(reference [6] reports a 3-competitive online algorithm)\n\n",
              summary.mean, summary.max);

  std::printf("== holding-horizon ablation (mean ratio across items) ==\n");
  TextTable ablation({"hold factor", "mean ratio", "worst ratio"});
  for (const double factor : {0.0, 0.25, 0.5, 1.0, 2.0, 4.0}) {
    OnlineOptions options;
    options.hold_factor = factor;
    std::vector<double> r;
    for (ItemId item = 0; item < trace.item_count(); ++item) {
      const Flow flow = make_item_flow(trace, item);
      if (flow.empty()) continue;
      const Cost offline =
          solve_optimal_offline(flow, model, trace.server_count()).raw_cost;
      const Cost online =
          solve_online_break_even(flow, model, trace.server_count(), options)
              .raw_cost;
      if (offline > 0.0) r.push_back(online / offline);
    }
    const Summary s = summarize(r);
    ablation.add_row({format_fixed(factor, 2), format_fixed(s.mean, 3),
                      format_fixed(s.max, 3)});
  }
  std::printf("%s", ablation.render().c_str());
  std::printf("\nfactor 1.0 is the classical rent-or-buy break-even point "
              "(hold λ/μ after the last use).\n");

  // Whole-trace view through the engine: the same policies as registry
  // solvers, plus the chain floor.
  std::printf("\n== whole-trace comparison (registry) ==\n%s",
              render_comparison(
                  run_solvers({"optimal_baseline", "online_break_even",
                               "chain"},
                              trace, model))
                  .c_str());
  return 0;
}
