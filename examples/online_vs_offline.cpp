// Online vs offline — the paper's reference [6] contrasts the optimal
// offline algorithm with a constant-competitive online policy.  This
// example measures the empirical competitive ratio of the break-even
// (rent-or-buy) online rule against the offline DP across a taxi trace,
// plus an ablation of the holding-horizon factor — all through the
// registry: both policies run as solvers, and the per-item numbers come
// from the reports' plans (one plan per item flow).
//
//   $ online_vs_offline --duration 300 --lambda 2
#include <cstdio>

#include "dpgreedy.hpp"

using namespace dpg;

namespace {

/// Per-item costs of one registry run: plans arrive in ascending item
/// order, one per item, so the slot index is the ItemId.
std::vector<Cost> per_item_costs(const RunReport& report,
                                 const CostModel& model) {
  std::vector<Cost> costs;
  costs.reserve(report.plans.size());
  for (const FlowPlan& plan : report.plans) {
    costs.push_back(plan.schedule.cost(model));
  }
  return costs;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args("online_vs_offline",
                 "break-even online caching vs the offline optimum");
  const std::size_t* seed = args.add_size("seed", "RNG seed", 11);
  const double* duration = args.add_double("duration", "simulated hours", 300.0);
  const double* mu = args.add_double("mu", "cache cost μ", 1.0);
  const double* lambda = args.add_double("lambda", "transfer cost λ", 2.0);
  args.parse(argc, argv);

  MobilityConfig mobility;
  mobility.duration = *duration;
  Rng rng(*seed);
  const RequestSequence trace = simulate_mobility(mobility, rng);

  CostModel model;
  model.mu = *mu;
  model.lambda = *lambda;
  model.alpha = 0.8;

  const SolverRegistry& registry = builtin_registry();
  const RunReport offline_report =
      registry.run("optimal_baseline", trace, model, SolverConfig{});
  const std::vector<Cost> offline = per_item_costs(offline_report, model);

  std::printf("== per-item competitive ratio (hold factor 1.0) ==\n");
  const RunReport online_report =
      registry.run("online_break_even", trace, model, SolverConfig{});
  TextTable table({"item", "requests", "offline DP", "online", "ratio"});
  std::vector<double> ratios;
  for (std::size_t item = 0; item < online_report.plans.size(); ++item) {
    const FlowPlan& plan = online_report.plans[item];
    if (plan.flow.empty()) continue;
    const Cost online = plan.schedule.cost(model);
    const double ratio = offline[item] > 0.0 ? online / offline[item] : 1.0;
    ratios.push_back(ratio);
    table.add_row({"d" + std::to_string(item), std::to_string(plan.flow.size()),
                   format_fixed(offline[item], 1), format_fixed(online, 1),
                   format_fixed(ratio, 3)});
  }
  std::printf("%s\n", table.render().c_str());
  const Summary summary = summarize(ratios);
  std::printf("mean ratio %.3f, worst %.3f "
              "(reference [6] reports a 3-competitive online algorithm)\n\n",
              summary.mean, summary.max);

  std::printf("== holding-horizon ablation (mean ratio across items) ==\n");
  TextTable ablation({"hold factor", "mean ratio", "worst ratio"});
  for (const double factor : {0.0, 0.25, 0.5, 1.0, 2.0, 4.0}) {
    SolverConfig config;
    config.hold_factor = factor;
    const RunReport swept =
        registry.run("online_break_even", trace, model, config);
    std::vector<double> r;
    for (std::size_t item = 0; item < swept.plans.size(); ++item) {
      if (swept.plans[item].flow.empty()) continue;
      if (offline[item] > 0.0) {
        r.push_back(swept.plans[item].schedule.cost(model) / offline[item]);
      }
    }
    const Summary s = summarize(r);
    ablation.add_row({format_fixed(factor, 2), format_fixed(s.mean, 3),
                      format_fixed(s.max, 3)});
  }
  std::printf("%s", ablation.render().c_str());
  std::printf("\nfactor 1.0 is the classical rent-or-buy break-even point "
              "(hold λ/μ after the last use).\n");

  // Whole-trace view through the engine: the same policies as registry
  // solvers, plus the chain floor.
  std::printf("\n== whole-trace comparison (registry) ==\n%s",
              render_comparison(
                  run_solvers({"optimal_baseline", "online_break_even",
                               "chain"},
                              trace, model))
                  .c_str());
  return 0;
}
