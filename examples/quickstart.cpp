// Quickstart: the paper's running example (Section V-C, Fig. 7), end to end.
//
//   $ quickstart
//
// Builds the 7-request trace over 4 servers, runs both DP_Greedy phases,
// prints every intermediate number of the paper's walkthrough, and renders
// the resulting space-time schedule.  Expected total: 14.96.
#include <cstdio>

#include "engine/algorithms.hpp"
#include "engine/registry.hpp"
#include "engine/render.hpp"
#include "util/strings.hpp"

using namespace dpg;

int main() {
  // The running example: items d1=0, d2=1; server 0 is the origin s_1.
  SequenceBuilder builder(4, 2);
  builder.add(2, 0.5, {0});
  builder.add(1, 0.8, {0, 1});
  builder.add(3, 1.1, {1});
  builder.add(0, 1.4, {0, 1});
  builder.add(2, 2.6, {0});
  builder.add(2, 3.2, {1});
  builder.add(1, 4.0, {0, 1});
  const RequestSequence sequence = std::move(builder).build();

  CostModel model;
  model.mu = 1.0;
  model.lambda = 1.0;
  model.alpha = 0.8;

  std::printf("== trace ==\n%s\n", sequence.to_string().c_str());

  // Phase 1: correlation analysis.
  const CorrelationAnalysis analysis(sequence);
  std::printf("== phase 1: Jaccard similarity ==\n");
  std::printf("J(d1, d2) = %zu / (%zu + %zu - %zu) = %s  (paper: 3/7)\n\n",
              analysis.co_frequency(0, 1), analysis.frequency(0),
              analysis.frequency(1), analysis.co_frequency(0, 1),
              format_fixed(analysis.jaccard(0, 1), 4).c_str());

  // Phase 2 with the paper's threshold θ = 0.4.
  DpGreedyOptions options;
  options.theta = 0.4;
  const DpGreedyResult result = solve_dp_greedy(sequence, model, options);

  std::printf("== phase 2: serving ==\n");
  for (const PackageReport& report : result.packages) {
    std::printf("package {d%u, d%u} (J = %s)\n", report.pair.a + 1,
                report.pair.b + 1, format_fixed(report.pair.jaccard, 4).c_str());
    std::printf("  co-requests served by the 2α-discounted DP: %s  (paper: 8.96)\n",
                format_fixed(report.package_cost, 4).c_str());
    for (const SingletonService& s : report.services) {
      const char* how = s.choice == ServeChoice::kCacheSameServer
                            ? "cache on same server"
                        : s.choice == ServeChoice::kTransferFromPrev
                            ? "transfer from previous event"
                            : "package fetch (2αλ)";
      std::printf("  t=%s d%u served by %-28s cost %s\n",
                  format_fixed(sequence[s.request_index].time, 1).c_str(),
                  s.item + 1, how, format_fixed(s.cost, 4).c_str());
    }
    std::printf("  package schedule (lanes are servers, '=' cache, '*' arrival):\n%s",
                report.package_schedule.render(4).c_str());
  }

  std::printf("\n== totals ==\n");
  std::printf("total cost     : %s  (paper: 14.96)\n",
              format_fixed(result.total_cost, 4).c_str());
  std::printf("item accesses  : %zu\n", result.total_item_accesses);
  std::printf("average cost   : %s  (paper: 1.496)\n",
              format_fixed(result.ave_cost, 4).c_str());
  std::printf("2/α guarantee  : DP_Greedy is within %.2fx of optimal\n",
              model.approximation_bound());

  // The same trace through every registered solver (the engine's one
  // dispatch path — `dpgreedy compare` prints this very table).
  SolverConfig config;
  config.theta = 0.4;
  std::printf("\n== every registered solver on this trace ==\n%s",
              render_comparison(run_solvers(builtin_registry().names(),
                                            sequence, model, config))
                  .c_str());
  return 0;
}
