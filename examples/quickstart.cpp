// Quickstart: the paper's running example (Section V-C, Fig. 7), end to end
// through the public API — one include, one registry dispatch.
//
//   $ quickstart
//
// Builds the 7-request trace over 4 servers, solves it with DP_Greedy
// through the SolverRegistry, and walks the canonical RunReport: totals,
// the cache/transfer breakdown, the per-flow plans and the rendered
// space-time schedule.  Expected total: 14.96.
#include <cstdio>

#include "dpgreedy.hpp"

using namespace dpg;

int main() {
  // The running example: items d1=0, d2=1; server 0 is the origin s_1.
  SequenceBuilder builder(4, 2);
  builder.add(2, 0.5, {0});
  builder.add(1, 0.8, {0, 1});
  builder.add(3, 1.1, {1});
  builder.add(0, 1.4, {0, 1});
  builder.add(2, 2.6, {0});
  builder.add(2, 3.2, {1});
  builder.add(1, 4.0, {0, 1});
  const RequestSequence sequence = std::move(builder).build();

  CostModel model;
  model.mu = 1.0;
  model.lambda = 1.0;
  model.alpha = 0.8;

  std::printf("== trace ==\n%s\n", sequence.to_string().c_str());

  // Phase 1's view of the trace: co-occurrence frequencies and Jaccard
  // similarities (J(d1, d2) = 3/7 in the paper's walkthrough).
  std::printf("== phase 1: most correlated pairs ==\n%s\n",
              render_frequent_pairs(sequence, 5).c_str());

  // Both phases through the engine, at the paper's threshold θ = 0.4.  The
  // fluent SolverConfig builder is the canonical way to set knobs.
  const SolverConfig config = SolverConfig{}.with("theta", "0.4");
  const RunReport report =
      builtin_registry().run("dp_greedy", sequence, model, config);

  std::printf("== phase 2: the DP_Greedy plan ==\n");
  for (const FlowPlan& plan : report.plans) {
    std::printf("%s: cost %s, %zu cache segments, %zu transfers\n",
                plan.label.c_str(),
                format_fixed(plan.schedule.cost(model), 4).c_str(),
                plan.schedule.segments().size(),
                plan.schedule.transfers().size());
    if (!plan.schedule.segments().empty()) {
      std::printf("  (lanes are servers, '=' cache, '*' arrival)\n%s",
                  plan.schedule.render(4).c_str());
    }
  }

  std::printf("\n== totals ==\n");
  std::printf("total cost     : %s  (paper: 14.96)\n",
              format_fixed(report.total_cost, 4).c_str());
  std::printf("  cache side   : %s\n",
              format_fixed(report.cache_cost, 4).c_str());
  std::printf("  transfer side: %s (%zu λ-charges)\n",
              format_fixed(report.transfer_cost, 4).c_str(),
              report.transfer_events);
  std::printf("packages formed: %zu\n", report.package_count);
  std::printf("item accesses  : %zu\n", report.total_item_accesses);
  std::printf("average cost   : %s  (paper: 1.496)\n",
              format_fixed(report.ave_cost, 4).c_str());
  std::printf("2/α guarantee  : DP_Greedy is within %.2fx of optimal\n",
              model.approximation_bound());

  // The same trace through every registered solver (the engine's one
  // dispatch path — `dpgreedy compare` prints this very table).
  std::printf("\n== every registered solver on this trace ==\n%s",
              render_comparison(run_solvers(builtin_registry().names(),
                                            sequence, model, config))
                  .c_str());
  return 0;
}
