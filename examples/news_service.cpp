// News service scenario — the paper's motivating example: "accessing the
// news text always implies accessing its associated pictures and video
// clips".  Items model article text (even ids) and their media bundles
// (odd ids) with Zipf article popularity; a triple (text, image, video) at
// the end exercises the multi-item grouping extension.
//
//   $ news_service --articles 4 --requests 2000 --alpha 0.6
#include <cstdio>

#include "dpgreedy.hpp"

using namespace dpg;

int main(int argc, char** argv) {
  ArgParser args("news_service", "correlated news-content caching scenario");
  const std::size_t* seed = args.add_size("seed", "RNG seed", 7);
  const std::size_t* articles = args.add_size("articles", "article count", 4);
  const std::size_t* requests = args.add_size("requests", "request count", 2000);
  const double* alpha = args.add_double("alpha", "package discount factor", 0.6);
  const double* co = args.add_double("co", "text->media co-access probability", 0.7);
  args.parse(argc, argv);

  ZipfTraceConfig config;
  config.item_count = 2 * *articles;  // text (even) + media bundle (odd)
  config.request_count = *requests;
  config.server_count = 20;
  config.co_access = *co;
  config.zipf_exponent = 1.1;
  Rng rng(*seed);
  const RequestSequence trace = generate_zipf_trace(config, rng);

  std::printf("== news workload ==\n");
  std::printf("%zu articles (text+media items), %zu requests, %zu edge servers\n\n",
              *articles, trace.size(), trace.server_count());
  std::printf("%s\n", render_frequent_pairs(trace, *articles).c_str());

  CostModel model;
  model.mu = 1.0;
  model.lambda = 3.0;  // shipping a media bundle is pricey
  model.alpha = *alpha;

  SolverConfig solver_config;
  solver_config.theta = 0.2;
  const std::vector<RunReport> reports = run_solvers(
      {"optimal_baseline", "package_served", "dp_greedy"}, trace, model,
      solver_config);
  const Cost optimal_total = reports[0].total_cost;

  std::printf("== serving cost (α=%.2f) ==\n", *alpha);
  std::printf("%s", render_comparison(reports).c_str());
  for (const RunReport& report : reports) {
    std::printf("%-16s %+.1f%% vs optimal_baseline\n", report.solver.c_str(),
                100.0 * (report.total_cost / optimal_total - 1.0));
  }
  std::printf("\n");

  // Extension: a story page bundling text + image + video as a triple.
  std::printf("== multi-item extension: text+image+video triples ==\n");
  SequenceBuilder story_builder(10, 3);
  Rng story_rng(*seed + 1);
  Time t = 0.0;
  for (int i = 0; i < 600; ++i) {
    t += 0.25;
    const auto server = static_cast<ServerId>(story_rng.next_below(10));
    const double roll = story_rng.next_double();
    if (roll < 0.65) {
      story_builder.add(server, t, {0, 1, 2});  // full page view
    } else if (roll < 0.85) {
      story_builder.add(server, t, {0});        // text-only (feed preview)
    } else {
      story_builder.add(server, t, {1, 2});     // media gallery revisit
    }
  }
  const RequestSequence story = std::move(story_builder).build();

  const SolverRegistry& registry = builtin_registry();
  SolverConfig triples;
  triples.theta = 0.3;
  triples.max_group_size = 3;
  SolverConfig pairs_only = triples;
  pairs_only.max_group_size = 2;
  const double triple_cost =
      registry.run("group_dp_greedy", story, model, triples).total_cost;
  const double pair_cost =
      registry.run("group_dp_greedy", story, model, pairs_only).total_cost;
  const double single_cost =
      registry.run("optimal_baseline", story, model).total_cost;
  std::printf("no packing : %s\n", format_fixed(single_cost, 1).c_str());
  std::printf("pairs only : %s\n", format_fixed(pair_cost, 1).c_str());
  std::printf("triples    : %s   (Table II rate 3αμ / 3αλ)\n",
              format_fixed(triple_cost, 1).c_str());
  return 0;
}
