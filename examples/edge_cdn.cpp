// Edge-CDN scenario: commuter bursts against a regional edge cluster.
//
// A content provider serves bundles (manifest + media segments) from edge
// caches.  Traffic arrives in bursts around commute peaks — exactly the
// non-stationary gap structure where cache-vs-transfer decisions flip
// within a single trace.  This example contrasts offline DP_Greedy,
// multi-item grouping, and the online policies on that workload.
//
//   $ edge_cdn --bursts 40 --alpha 0.6
#include <cstdio>

#include "dpgreedy.hpp"

using namespace dpg;

int main(int argc, char** argv) {
  ArgParser args("edge_cdn", "bursty commuter workload on an edge cluster");
  const std::size_t* seed = args.add_size("seed", "RNG seed", 17);
  const std::size_t* bursts = args.add_size("bursts", "commute bursts", 40);
  const double* alpha = args.add_double("alpha", "bundle discount factor", 0.6);
  const double* lambda = args.add_double("lambda", "transfer cost", 4.0);
  args.parse(argc, argv);

  BurstyTraceConfig config;
  config.burst_count = *bursts;
  config.requests_per_burst = 30;
  config.item_count = 8;
  config.server_count = 20;
  config.working_set = 2;
  Rng rng(*seed);
  const RequestSequence trace = generate_bursty_trace(config, rng);

  std::printf("== workload ==\n");
  const TraceStats stats = compute_trace_stats(trace);
  std::printf("%zu requests in %zu bursts over %zu edge sites; "
              "horizon %s, mean gap %s\n\n",
              stats.request_count, *bursts, stats.server_count,
              format_fixed(stats.horizon, 1).c_str(),
              format_fixed(stats.mean_gap, 3).c_str());
  std::printf("%s\n", render_frequent_pairs(trace, 6).c_str());

  CostModel model;
  model.mu = 1.0;
  model.lambda = *lambda;
  model.alpha = *alpha;

  SolverConfig solver_config;
  solver_config.theta = 0.2;
  solver_config.max_group_size = 3;
  solver_config.window = 150;
  const std::vector<RunReport> reports = run_solvers(
      {"optimal_baseline", "dp_greedy", "group_dp_greedy", "online_dp_greedy"},
      trace, model, solver_config);
  const RunReport& offline = reports[1];
  const RunReport& online = reports[3];

  std::printf("== cost comparison (α=%.2f, λ=%.1f) ==\n", *alpha, *lambda);
  std::printf("%s\n", render_comparison(reports).c_str());
  std::printf("online packing churn: %zu packs / %zu unpacks\n",
              online.package_count, online.unpack_events);

  if (offline.total_cost > 0.0) {
    const double ratio = online.total_cost / offline.total_cost;
    std::printf("online/offline ratio: %s\n", format_fixed(ratio, 2).c_str());
    if (ratio < 1.0) {
      std::printf(
          "note: on bursty traffic the *online* variant can beat offline\n"
          "DP_Greedy — burst working sets correlate strongly for minutes but\n"
          "weakly over the whole trace, so Algorithm 1's global Jaccard\n"
          "never clears θ while the sliding window packs and unpacks per\n"
          "burst.  A limitation of global-threshold packing, not of the\n"
          "offline setting itself.\n");
    } else {
      std::printf("the premium is the price of not knowing the trajectory\n"
                  "in advance on bursty traffic.\n");
    }
  }
  return 0;
}
