// Cross-validation of the DP against the independent subset-exact solver:
// two structurally different exact formulations must agree on every
// instance, at sizes the parent-assignment brute force cannot reach.
#include <gtest/gtest.h>

#include <tuple>

#include "solver/bruteforce.hpp"
#include "solver/optimal_offline.hpp"
#include "solver/subset_exact.hpp"
#include "test_support.hpp"
#include "util/error.hpp"

namespace dpg {
namespace {

TEST(SubsetExact, EmptyFlow) {
  const SubsetExactResult r =
      solve_subset_exact(Flow{}, CostModel{1, 1, 0.8}, 2);
  EXPECT_EQ(r.raw_cost, 0.0);
}

TEST(SubsetExact, RunningExamplePackageFlow) {
  const RequestSequence seq = testing::running_example_sequence();
  const Flow package = make_package_flow(seq, 0, 1);
  const SubsetExactResult r =
      solve_subset_exact(package, testing::running_example_model(), 4);
  EXPECT_NEAR(r.raw_cost, 5.6, 1e-9);  // 8.96 / 1.6, Section V-C
  EXPECT_NEAR(r.cost, 8.96, 1e-9);
}

TEST(SubsetExact, AgreesWithParentAssignmentBruteForce) {
  Rng rng(0xFEED);
  for (int trial = 0; trial < 80; ++trial) {
    const Flow flow = testing::random_flow(rng, 7, 3);
    const CostModel model{1.0, 0.25 + 0.5 * static_cast<double>(trial % 8), 0.8};
    const Cost subset = solve_subset_exact(flow, model, 3).raw_cost;
    const Cost brute = solve_bruteforce(flow, model).raw_cost;
    ASSERT_NEAR(subset, brute, 1e-9) << "trial " << trial;
  }
}

class DpVsSubsetExact
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t, double>> {};

TEST_P(DpVsSubsetExact, AgreeOnMediumInstances) {
  const auto [n, servers, lambda] = GetParam();
  Rng rng(0xABBA + n * 7 + servers);
  const CostModel model{1.0, lambda, 0.8};
  for (int trial = 0; trial < 15; ++trial) {
    const Flow flow = testing::random_flow(rng, n, servers);
    const Cost dp = solve_optimal_offline(flow, model, servers).raw_cost;
    const Cost subset = solve_subset_exact(flow, model, servers).raw_cost;
    ASSERT_NEAR(dp, subset, 1e-9)
        << "n=" << n << " m=" << servers << " lambda=" << lambda << " trial="
        << trial;
  }
}

// n up to 16 with few servers keeps local-candidate counts <= 15.
INSTANTIATE_TEST_SUITE_P(
    MediumInstances, DpVsSubsetExact,
    ::testing::Combine(::testing::Values<std::size_t>(10, 13, 16),
                       ::testing::Values<std::size_t>(2, 3, 5),
                       ::testing::Values(0.25, 1.0, 4.0)));

TEST(SubsetExact, RejectsTooManyCandidates) {
  // 30 same-server points -> 30 local candidates > the default cap of 20.
  Flow flow;
  for (std::size_t i = 0; i < 30; ++i) {
    flow.points.push_back({0, static_cast<Time>(i + 1), i});
  }
  const CostModel model{1, 1, 0.8};
  EXPECT_THROW((void)solve_subset_exact(flow, model, 1), InvalidArgument);
}

TEST(SubsetExact, LocalPointsActuallyHaveLocalPredecessors) {
  Rng rng(12);
  const Flow flow = testing::random_flow(rng, 14, 3);
  const CostModel model{1.0, 0.5, 0.8};
  const SubsetExactResult r = solve_subset_exact(flow, model, 3);
  // Every chosen LOCAL point must have an earlier same-server point (or the
  // origin, for server 0).
  for (const std::size_t point : r.local_points) {
    const ServerId server = flow.points[point].server;
    bool has_predecessor = server == kOriginServer;
    for (std::size_t j = 0; j < point; ++j) {
      if (flow.points[j].server == server) has_predecessor = true;
    }
    ASSERT_TRUE(has_predecessor);
  }
}

}  // namespace
}  // namespace dpg
