// End-to-end kernel and format equivalence: every registry solver must
// produce bit-identical RunReports (a) with the SIMD kernels on vs. off,
// at every thread count, and (b) from a trace loaded via CSV vs. the
// binary .dpt mmap path.  Both switches are pure plumbing — any drift in
// a cost bit or a schedule endpoint is a bug, so everything is EXPECT_EQ
// with no tolerance.  The test named "Big" runs a 200k-request trace and
// is filtered out of the sanitizer CI legs like the other Big tests.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "engine/registry.hpp"
#include "test_support.hpp"
#include "trace/dpt.hpp"
#include "trace/generators.hpp"
#include "trace/io.hpp"
#include "util/rng.hpp"

namespace dpg {
namespace {

const std::vector<std::size_t> kThreadCounts = {0, 4};

RequestSequence zipf_trace_2k() {
  ZipfTraceConfig config;
  config.server_count = 20;
  config.item_count = 12;
  config.request_count = 2000;
  Rng rng(7);
  return generate_zipf_trace(config, rng);
}

RequestSequence big_trace_200k() {
  ZipfTraceConfig config;
  config.server_count = 40;
  config.item_count = 50;
  config.request_count = 200000;
  Rng rng(13);
  return generate_zipf_trace(config, rng);
}

/// Bitwise equality of two reports: every cost EXPECT_EQ (no tolerance),
/// every decision count, and every plan's label, flow and schedule geometry.
void expect_reports_identical(const RunReport& expected,
                              const RunReport& actual,
                              const std::string& context) {
  EXPECT_EQ(expected.total_cost, actual.total_cost) << context;
  EXPECT_EQ(expected.raw_cost, actual.raw_cost) << context;
  EXPECT_EQ(expected.cache_cost, actual.cache_cost) << context;
  EXPECT_EQ(expected.transfer_cost, actual.transfer_cost) << context;
  EXPECT_EQ(expected.ave_cost, actual.ave_cost) << context;
  EXPECT_EQ(expected.package_count, actual.package_count) << context;
  EXPECT_EQ(expected.unpack_events, actual.unpack_events) << context;
  EXPECT_EQ(expected.transfer_events, actual.transfer_events) << context;
  EXPECT_EQ(expected.cache_segments, actual.cache_segments) << context;
  EXPECT_EQ(expected.total_item_accesses, actual.total_item_accesses)
      << context;

  ASSERT_EQ(expected.plans.size(), actual.plans.size()) << context;
  for (std::size_t p = 0; p < expected.plans.size(); ++p) {
    const FlowPlan& want = expected.plans[p];
    const FlowPlan& got = actual.plans[p];
    const std::string plan_context = context + ", plan " + want.label;
    EXPECT_EQ(want.label, got.label) << plan_context;
    EXPECT_EQ(want.flow.size(), got.flow.size()) << plan_context;
    ASSERT_EQ(want.schedule.segments().size(), got.schedule.segments().size())
        << plan_context;
    for (std::size_t s = 0; s < want.schedule.segments().size(); ++s) {
      EXPECT_EQ(want.schedule.segments()[s].server,
                got.schedule.segments()[s].server) << plan_context;
      EXPECT_EQ(want.schedule.segments()[s].begin,
                got.schedule.segments()[s].begin) << plan_context;
      EXPECT_EQ(want.schedule.segments()[s].end,
                got.schedule.segments()[s].end) << plan_context;
    }
    ASSERT_EQ(want.schedule.transfers().size(),
              got.schedule.transfers().size()) << plan_context;
    for (std::size_t t = 0; t < want.schedule.transfers().size(); ++t) {
      EXPECT_EQ(want.schedule.transfers()[t].from,
                got.schedule.transfers()[t].from) << plan_context;
      EXPECT_EQ(want.schedule.transfers()[t].to,
                got.schedule.transfers()[t].to) << plan_context;
      EXPECT_EQ(want.schedule.transfers()[t].time,
                got.schedule.transfers()[t].time) << plan_context;
    }
  }
}

/// Runs every registry solver on `trace` with kernels on and off, at each
/// thread count, and demands bit-identical reports.
void expect_kernels_transparent(const RequestSequence& trace,
                                const std::string& trace_name) {
  const CostModel model = testing::running_example_model();
  for (const std::string& name : builtin_registry().names()) {
    for (const std::size_t threads : kThreadCounts) {
      SolverConfig config;
      config.threads(threads);
      const RunReport scalar = builtin_registry().run(
          name, trace, model, SolverConfig(config).kernels(false));
      const RunReport kernel = builtin_registry().run(
          name, trace, model, SolverConfig(config).kernels(true));
      expect_reports_identical(
          scalar, kernel,
          trace_name + ", solver " + name + ", threads " +
              std::to_string(threads));
    }
  }
}

TEST(KernelEquivalence, RunningExampleAllSolvers) {
  expect_kernels_transparent(testing::running_example_sequence(),
                             "running example");
}

TEST(KernelEquivalence, Zipf2kAllSolvers) {
  expect_kernels_transparent(zipf_trace_2k(), "zipf 2k");
}

TEST(KernelEquivalence, BigZipf200kAllSolvers) {
  expect_kernels_transparent(big_trace_200k(), "zipf 200k");
}

TEST(KernelEquivalence, ConfigStringKeyReachesTheSwitch) {
  SolverConfig config;
  EXPECT_TRUE(config.dp.use_kernels);
  config.with("kernels", "off");
  EXPECT_FALSE(config.dp.use_kernels);
  config.with("kernels", "true");
  EXPECT_TRUE(config.dp.use_kernels);
  EXPECT_THROW(config.with("kernels", "maybe"), InvalidArgument);
}

TEST(FormatEquivalence, DptAndCsvProduceIdenticalReports) {
  // The same trace through the two readers (text parse vs. mmap zero-copy)
  // must hand every solver identical inputs — proven by identical outputs.
  const RequestSequence original = zipf_trace_2k();
  const std::string csv_path = ::testing::TempDir() + "kernel_equiv.csv";
  const std::string dpt_path = ::testing::TempDir() + "kernel_equiv.dpt";
  write_trace_auto(csv_path, original);
  write_trace_auto(dpt_path, original);
  const RequestSequence via_csv = read_trace_auto(csv_path);
  const RequestSequence via_dpt = read_trace_auto(dpt_path);
  ASSERT_TRUE(via_dpt.borrows_storage());

  const CostModel model = testing::running_example_model();
  for (const std::string& name : builtin_registry().names()) {
    const SolverConfig config;
    expect_reports_identical(
        builtin_registry().run(name, via_csv, model, config),
        builtin_registry().run(name, via_dpt, model, config),
        "csv-vs-dpt, solver " + name);
  }
  std::remove(csv_path.c_str());
  std::remove(dpt_path.c_str());
}

}  // namespace
}  // namespace dpg
