#include <gtest/gtest.h>

#include "core/interval_set.hpp"

namespace dpg {
namespace {

TEST(IntervalSet, EmptySet) {
  IntervalSet set;
  EXPECT_TRUE(set.empty());
  EXPECT_EQ(set.union_length(), 0.0);
  EXPECT_FALSE(set.covers(0.0));
  EXPECT_DOUBLE_EQ(set.uncovered_within(0.0, 5.0), 5.0);
}

TEST(IntervalSet, DisjointPieces) {
  IntervalSet set;
  set.add(0.0, 1.0);
  set.add(2.0, 3.5);
  EXPECT_DOUBLE_EQ(set.union_length(), 2.5);
  EXPECT_TRUE(set.covers(0.5));
  EXPECT_TRUE(set.covers(1.0));  // closed boundary
  EXPECT_FALSE(set.covers(1.5));
  EXPECT_DOUBLE_EQ(set.uncovered_within(0.0, 4.0), 1.5);
}

TEST(IntervalSet, OverlapsMerge) {
  IntervalSet set;
  set.add(0.0, 2.0);
  set.add(1.0, 3.0);
  set.add(2.5, 4.0);
  EXPECT_DOUBLE_EQ(set.union_length(), 4.0);
  EXPECT_EQ(set.merged().size(), 1u);
}

TEST(IntervalSet, TouchingIntervalsMerge) {
  IntervalSet set;
  set.add(0.0, 1.0);
  set.add(1.0, 2.0);
  EXPECT_EQ(set.merged().size(), 1u);
  EXPECT_DOUBLE_EQ(set.union_length(), 2.0);
}

TEST(IntervalSet, EmptyAndInvertedIntervalsIgnored) {
  IntervalSet set;
  set.add(1.0, 1.0);
  set.add(3.0, 2.0);
  EXPECT_TRUE(set.empty());
}

TEST(IntervalSet, UncoveredClampsToWindow) {
  IntervalSet set;
  set.add(-5.0, 1.0);
  set.add(3.0, 100.0);
  EXPECT_DOUBLE_EQ(set.uncovered_within(0.0, 4.0), 2.0);  // (1,3) uncovered
  EXPECT_DOUBLE_EQ(set.uncovered_within(4.0, 4.0), 0.0);
  EXPECT_DOUBLE_EQ(set.uncovered_within(5.0, 4.0), 0.0);  // inverted window
}

TEST(IntervalSet, CoversUsesBinarySearchOverManyPieces) {
  IntervalSet set;
  for (int i = 0; i < 100; ++i) {
    set.add(2.0 * i, 2.0 * i + 1.0);
  }
  EXPECT_TRUE(set.covers(50.5));
  EXPECT_FALSE(set.covers(51.5));
  EXPECT_TRUE(set.covers(0.0));
  EXPECT_FALSE(set.covers(-0.1));
  EXPECT_DOUBLE_EQ(set.union_length(), 100.0);
}

TEST(IntervalSet, ClearResets) {
  IntervalSet set;
  set.add(0.0, 1.0);
  set.clear();
  EXPECT_TRUE(set.empty());
  EXPECT_EQ(set.union_length(), 0.0);
}

TEST(IntervalSet, IncrementalAddAfterQueryStaysCorrect) {
  IntervalSet set;
  set.add(0.0, 1.0);
  EXPECT_DOUBLE_EQ(set.union_length(), 1.0);
  set.add(0.5, 2.0);  // added after a normalize()
  EXPECT_DOUBLE_EQ(set.union_length(), 2.0);
  set.add(5.0, 6.0);
  EXPECT_DOUBLE_EQ(set.union_length(), 3.0);
}

}  // namespace
}  // namespace dpg
