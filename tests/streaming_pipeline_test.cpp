// The pipelined ingest path: SpscRing, RequestBlock, the block readers,
// push_batch, and run_serve_pipeline.
//
// The load-bearing guarantee is bit-identity: at every batch size, the
// engine state after push_batch — final report AND every intermediate
// snapshot, down to the steady-state allocation counter — equals the
// per-push engine exactly.  The pipeline buys throughput by amortizing
// overhead, never by changing arithmetic.
//
// The concurrency suites (SpscRing.*, StreamingPipeline.*) run under TSan
// in CI alongside StreamingEngine.*.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "dpgreedy.hpp"
#include "test_support.hpp"

namespace dpg {
namespace {

// Same fixture as streaming_engine_test.cpp: skewed Zipf popularity with
// correlated partner pulls, so epoch re-pairing actually fires.
RequestSequence golden_trace() {
  Rng rng(77);
  ZipfTraceConfig config;
  config.server_count = 12;
  config.item_count = 20;
  config.request_count = 3000;
  return generate_zipf_trace(config, rng);
}

const CostModel kModel{/*mu=*/1.0, /*lambda=*/1.0, /*alpha=*/0.8};

OnlineDpGreedyOptions grid_options(std::size_t window, std::size_t repack) {
  OnlineDpGreedyOptions options;
  options.theta = 0.4;
  options.window = window;
  options.repack_interval = repack;
  return options;
}

// The same full-precision goldens streaming_engine_test.cpp locks the
// per-push path against.
struct GoldenPoint {
  std::size_t window;
  std::size_t repack;
  double total_cost;
};
const GoldenPoint kGoldens[] = {
    {8, 1, 14958.483180793215},   {8, 10, 27063.124579415682},
    {8, 50, 31447.265805422317},  {50, 1, 20069.8921332885},
    {50, 10, 23070.892026151188}, {50, 50, 24267.762421796473},
    {200, 1, 24953.503597318482}, {200, 10, 25077.374114509668},
    {200, 50, 25376.592943394997},
};

const std::size_t kBatchSizes[] = {1, 7, 64, 4096};

void expect_snapshots_equal(const StreamingSnapshot& a,
                            const StreamingSnapshot& b,
                            const std::string& label) {
  EXPECT_EQ(a.report.total_cost, b.report.total_cost) << label;
  EXPECT_EQ(a.report.transfer_cost, b.report.transfer_cost) << label;
  EXPECT_EQ(a.report.ave_cost, b.report.ave_cost) << label;
  EXPECT_EQ(a.report.package_count, b.report.package_count) << label;
  EXPECT_EQ(a.report.unpack_events, b.report.unpack_events) << label;
  EXPECT_EQ(a.report.transfer_events, b.report.transfer_events) << label;
  EXPECT_EQ(a.delta.total_cost, b.delta.total_cost) << label;
  EXPECT_EQ(a.requests, b.requests) << label;
  EXPECT_EQ(a.epoch, b.epoch) << label;
  EXPECT_EQ(a.live_packages, b.live_packages) << label;
  EXPECT_EQ(a.item_count, b.item_count) << label;
  EXPECT_EQ(a.online_probe_cost, b.online_probe_cost) << label;
  EXPECT_EQ(a.offline_probe_cost, b.offline_probe_cost) << label;
  EXPECT_EQ(a.cost_ratio, b.cost_ratio) << label;
  EXPECT_EQ(a.probe_chunks, b.probe_chunks) << label;
  EXPECT_EQ(a.state_alloc_events, b.state_alloc_events) << label;
}

// ---------------------------------------------------------------------------
// RequestBlock

TEST(RequestBlock, OwnedRowsCanonicalizeLikeSequenceBuilder) {
  RequestBlock block;
  block.append_row(3, 1.0, std::vector<ItemId>{5, 1, 5, 3, 1});
  block.append_row(0, 2.0, std::vector<ItemId>{9, 2});
  block.append_row(1, 3.0, std::vector<ItemId>{4, 4});
  block.append_row(2, 4.0, std::vector<ItemId>{});
  ASSERT_EQ(block.size(), 4u);
  EXPECT_EQ(block.total_items(), 6u);
  const std::vector<ItemId> row0(block.items_of(0).begin(),
                                 block.items_of(0).end());
  EXPECT_EQ(row0, (std::vector<ItemId>{1, 3, 5}));
  const std::vector<ItemId> row1(block.items_of(1).begin(),
                                 block.items_of(1).end());
  EXPECT_EQ(row1, (std::vector<ItemId>{2, 9}));
  EXPECT_EQ(block.items_of(2).size(), 1u);  // {4,4} dedups
  EXPECT_TRUE(block.items_of(3).empty());
  EXPECT_EQ(block.server_of(0), 3u);
  EXPECT_EQ(block.time_of(1), 2.0);

  block.clear();
  EXPECT_TRUE(block.empty());
  block.append_row(7, 9.0, std::vector<ItemId>{0});
  EXPECT_EQ(block.size(), 1u);
  EXPECT_EQ(block.server_of(0), 7u);
}

TEST(RequestBlock, AbortRowDiscardsTheHalfOpenRowOnly) {
  RequestBlock block;
  block.append_row(3, 1.0, std::vector<ItemId>{5, 1});
  block.begin_row(7, 2.0);
  block.push_item(9);
  block.abort_row();  // as if the rest of the item list failed to parse
  ASSERT_EQ(block.size(), 1u);
  EXPECT_EQ(block.total_items(), 2u);
  EXPECT_EQ(block.server_of(0), 3u);
  const std::vector<ItemId> row0(block.items_of(0).begin(),
                                 block.items_of(0).end());
  EXPECT_EQ(row0, (std::vector<ItemId>{1, 5}));
  // The block stays appendable after the rollback.
  block.append_row(2, 3.0, std::vector<ItemId>{8});
  ASSERT_EQ(block.size(), 2u);
  EXPECT_EQ(block.items_of(1)[0], 8u);

  // Aborting the very first row of a fresh block is also clean.
  RequestBlock fresh;
  fresh.begin_row(0, 1.0);
  fresh.push_item(4);
  fresh.abort_row();
  EXPECT_TRUE(fresh.empty());
  EXPECT_EQ(fresh.total_items(), 0u);
  fresh.abort_row();  // no row open: no-op
  EXPECT_TRUE(fresh.empty());
}

TEST(RequestBlock, AdoptViewsSequenceColumnsWithAbsoluteOffsets) {
  const RequestSequence trace = golden_trace();
  const SequenceColumns columns = trace.columns();
  const std::size_t pos = 100, n = 50;
  RequestBlock block;
  block.adopt(columns.servers.subspan(pos, n), columns.times.subspan(pos, n),
              columns.item_offsets.subspan(pos, n + 1), columns.items_pool);
  ASSERT_EQ(block.size(), n);
  for (std::size_t i = 0; i < n; ++i) {
    const Request r = trace[pos + i];
    EXPECT_EQ(block.server_of(i), r.server);
    EXPECT_EQ(block.time_of(i), r.time);
    ASSERT_EQ(block.items_of(i).size(), r.items.size());
    for (std::size_t j = 0; j < r.items.size(); ++j) {
      EXPECT_EQ(block.items_of(i)[j], r.items[j]);
    }
  }
}

// ---------------------------------------------------------------------------
// Block readers

void expect_blocks_replay_trace(BlockSource& source,
                                const RequestSequence& trace,
                                std::size_t expected_rows) {
  RequestBlock block;
  std::size_t row = 0;
  while (source.next(block)) {
    for (std::size_t i = 0; i < block.size(); ++i, ++row) {
      ASSERT_LT(row, expected_rows);
      const Request r = trace[row];
      ASSERT_EQ(block.server_of(i), r.server) << "row " << row;
      ASSERT_EQ(block.time_of(i), r.time) << "row " << row;
      ASSERT_TRUE(std::equal(block.items_of(i).begin(),
                             block.items_of(i).end(), r.items.begin(),
                             r.items.end()))
          << "row " << row;
    }
  }
  EXPECT_EQ(row, expected_rows);
  EXPECT_TRUE(block.empty());  // next() leaves the block empty at EOF
}

TEST(BlockReader, SequenceReaderReplaysEveryRowAtEveryBatchSize) {
  const RequestSequence trace = golden_trace();
  for (const std::size_t batch : kBatchSizes) {
    SequenceBlockReader reader(trace, batch);
    expect_blocks_replay_trace(reader, trace, trace.size());
  }
}

TEST(BlockReader, CsvReaderReplaysEveryRowAtEveryBatchSize) {
  const RequestSequence trace = golden_trace();
  const std::string csv = trace_to_csv(trace);
  for (const std::size_t batch : kBatchSizes) {
    std::istringstream in(csv);
    CsvBlockReader reader(in, "golden.csv", batch);
    expect_blocks_replay_trace(reader, trace, trace.size());
    EXPECT_EQ(reader.rows(), trace.size());
  }
}

TEST(BlockReader, LimitTruncatesTheStream) {
  const RequestSequence trace = golden_trace();
  SequenceBlockReader seq_reader(trace, 64, /*limit=*/100);
  expect_blocks_replay_trace(seq_reader, trace, 100);

  const std::string csv = trace_to_csv(trace);
  std::istringstream in(csv);
  CsvBlockReader csv_reader(in, "golden.csv", 64, /*limit=*/100);
  expect_blocks_replay_trace(csv_reader, trace, 100);
}

TEST(BlockReader, MalformedRowDeliversValidPrefixThenThrowsWithProvenance) {
  // 10 good rows, then garbage: the reader must hand over the 10 decoded
  // rows first, then raise IoError with path + row + byte offset.
  std::string csv = "server,time,items\n";
  for (int i = 0; i < 10; ++i) {
    csv += std::to_string(i % 3) + "," + std::to_string(i + 1) + ".0,0;1\n";
  }
  const std::size_t bad_offset = csv.size();
  csv += "this is not a row\n";
  csv += "0,99.0,2\n";

  std::istringstream in(csv);
  CsvBlockReader reader(in, "bad.csv", /*batch_rows=*/64);
  RequestBlock block;
  ASSERT_TRUE(reader.next(block));
  EXPECT_EQ(block.size(), 10u);
  try {
    reader.next(block);
    FAIL() << "expected IoError";
  } catch (const IoError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("bad.csv"), std::string::npos) << what;
    EXPECT_NE(what.find("row 11"), std::string::npos) << what;
    EXPECT_NE(what.find("byte offset " + std::to_string(bad_offset)),
              std::string::npos)
        << what;
  }
}

TEST(BlockReader, MalformedFirstRowThrowsImmediately) {
  std::istringstream in("server,time,items\nnot,a\n");
  CsvBlockReader reader(in, "bad.csv", 64);
  RequestBlock block;
  EXPECT_THROW((void)reader.next(block), IoError);
}

TEST(BlockReader, MalformedItemListRollsBackTheHalfOpenRow) {
  // Row 11's server/time parse fine, so the decoder has already opened the
  // row (begin_row) when the item list fails.  The delivered block must
  // contain only the 10 complete rows — no trailing server/time without a
  // closing item offset — or items_of() on the last row reads out of
  // bounds downstream.
  std::string csv = "server,time,items\n";
  for (int i = 0; i < 10; ++i) {
    csv += std::to_string(i % 3) + "," + std::to_string(i + 1) + ".0,0;1\n";
  }
  csv += "2,11.0,3;zzz\n";  // begin_row succeeds, parse_item_list throws
  csv += "0,99.0,2\n";

  std::istringstream in(csv);
  CsvBlockReader reader(in, "bad.csv", /*batch_rows=*/64);
  RequestBlock block;
  ASSERT_TRUE(reader.next(block));
  ASSERT_EQ(block.size(), 10u);
  EXPECT_EQ(block.total_items(), 20u);  // the bad row's items are gone too
  for (std::size_t i = 0; i < block.size(); ++i) {
    EXPECT_EQ(block.server_of(i), static_cast<ServerId>(i % 3));
    ASSERT_EQ(block.items_of(i).size(), 2u) << "row " << i;
    EXPECT_EQ(block.items_of(i)[0], 0u);
    EXPECT_EQ(block.items_of(i)[1], 1u);
  }
  try {
    reader.next(block);
    FAIL() << "expected IoError";
  } catch (const IoError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("bad.csv"), std::string::npos) << what;
    EXPECT_NE(what.find("row 11"), std::string::npos) << what;
  }
}

TEST(BlockReader, MalformedItemListOnTheFirstRowOfABlockThrowsCleanly) {
  // Same failure shape, but as the block's first row: the reader throws
  // immediately, and the block it hands back is empty, not half-open.
  std::istringstream in("server,time,items\n1,1.0,0;zzz\n");
  CsvBlockReader reader(in, "bad.csv", 64);
  RequestBlock block;
  EXPECT_THROW((void)reader.next(block), IoError);
  EXPECT_TRUE(block.empty());
  EXPECT_EQ(block.total_items(), 0u);
}

// ---------------------------------------------------------------------------
// SpscRing

TEST(SpscRing, RoundsCapacityUpToAPowerOfTwo) {
  EXPECT_EQ(SpscRing<int>(1).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(5).capacity(), 8u);
  EXPECT_EQ(SpscRing<int>(8).capacity(), 8u);
}

TEST(SpscRing, TryVariantsReportFullAndEmpty) {
  SpscRing<int> ring(2);
  int v = 1;
  EXPECT_TRUE(ring.try_push(v));
  v = 2;
  EXPECT_TRUE(ring.try_push(v));
  v = 3;
  EXPECT_FALSE(ring.try_push(v));  // full
  EXPECT_EQ(v, 3);                 // left intact
  int out = 0;
  EXPECT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, 1);
  EXPECT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, 2);
  EXPECT_FALSE(ring.try_pop(out));  // empty
}

TEST(SpscRing, CloseDrainsPendingElementsThenEndsTheStream) {
  SpscRing<int> ring(4);
  for (int i = 0; i < 3; ++i) {
    int v = i;
    ASSERT_TRUE(ring.try_push(v));
  }
  ring.close();
  int v = 99;
  EXPECT_FALSE(ring.try_push(v));  // no pushes after close
  int out = -1;
  EXPECT_TRUE(ring.pop(out));
  EXPECT_EQ(out, 0);
  EXPECT_TRUE(ring.pop(out));
  EXPECT_TRUE(ring.pop(out));
  EXPECT_EQ(out, 2);
  EXPECT_FALSE(ring.pop(out));  // closed and drained
}

TEST(SpscRing, TransfersInOrderAcrossThreadsUnderBackpressure) {
  // Tiny ring + fast producer: both sides hit their blocking paths.  Run
  // under TSan in CI.
  constexpr int kCount = 20000;
  SpscRing<int> ring(4);
  std::thread producer([&] {
    for (int i = 0; i < kCount; ++i) {
      int v = i;
      ASSERT_TRUE(ring.push(v));
    }
    ring.close();
  });
  int expected = 0;
  int out = 0;
  while (ring.pop(out)) {
    ASSERT_EQ(out, expected);
    ++expected;
  }
  producer.join();
  EXPECT_EQ(expected, kCount);
  // With a 4-slot ring and 20k elements, somebody must have waited.
  EXPECT_GT(ring.push_blocked() + ring.pop_blocked(), 0u);
}

// ---------------------------------------------------------------------------
// push_batch bit-identity

TEST(StreamingPipeline, PushBatchBitIdenticalAcrossGridAndBatchSizes) {
  const RequestSequence trace = golden_trace();
  for (const GoldenPoint& point : kGoldens) {
    for (const std::size_t batch : kBatchSizes) {
      StreamingOptions options;
      options.online = grid_options(point.window, point.repack);
      options.item_count_hint = trace.item_count();
      StreamingEngine batched(kModel, options);
      StreamingEngine reference(kModel, options);
      const std::string label = "window=" + std::to_string(point.window) +
                                " repack=" + std::to_string(point.repack) +
                                " batch=" + std::to_string(batch);

      SequenceBlockReader reader(trace, batch);
      RequestBlock block;
      std::size_t row = 0;
      while (reader.next(block)) {
        batched.push_batch(block);
        for (std::size_t i = 0; i < block.size(); ++i, ++row) {
          const Request r = trace[row];
          reference.push(r.server, r.time, r.items);
        }
        // Every intermediate snapshot must agree, not just the final books.
        expect_snapshots_equal(batched.snapshot(), reference.snapshot(),
                               label + " @" + std::to_string(row));
      }
      const RunReport batched_final = batched.finish();
      const RunReport reference_final = reference.finish();
      EXPECT_EQ(batched_final.total_cost, point.total_cost) << label;
      EXPECT_EQ(batched_final.total_cost, reference_final.total_cost) << label;
      EXPECT_EQ(batched_final.transfer_cost, reference_final.transfer_cost)
          << label;
      EXPECT_EQ(batched_final.package_count, reference_final.package_count)
          << label;
      EXPECT_EQ(batched_final.unpack_events, reference_final.unpack_events)
          << label;
      EXPECT_EQ(batched_final.transfer_events, reference_final.transfer_events)
          << label;
    }
  }
}

TEST(StreamingPipeline, PushBatchInterleavesTheRatioProbeIdentically) {
  // With the probe armed, push_batch must buffer per row so offline solves
  // fire at the exact same request boundaries as per-push.
  const RequestSequence trace = golden_trace();
  for (const std::size_t batch : kBatchSizes) {
    StreamingOptions options;
    options.online = grid_options(50, 10);
    options.item_count_hint = trace.item_count();
    options.probe_chunk = 700;  // deliberately not a batch multiple
    StreamingEngine batched(kModel, options);
    StreamingEngine reference(kModel, options);

    SequenceBlockReader reader(trace, batch);
    RequestBlock block;
    while (reader.next(block)) batched.push_batch(block);
    for (const Request& r : trace.requests()) {
      reference.push(r.server, r.time, r.items);
    }
    expect_snapshots_equal(batched.snapshot(), reference.snapshot(),
                           "probe batch=" + std::to_string(batch));
    EXPECT_EQ(batched.finish().total_cost, reference.finish().total_cost);
    EXPECT_EQ(batched.probe_chunks(), reference.probe_chunks());
    EXPECT_EQ(batched.cost_ratio(), reference.cost_ratio());
  }
}

TEST(StreamingPipeline, AdvanceBatchMatchesPerPointAdvance) {
  Rng rng(9);
  std::vector<ServicePoint> points;
  Time t = 0.0;
  for (int i = 0; i < 500; ++i) {
    points.push_back(
        ServicePoint{static_cast<ServerId>(rng.next_int(0, 7)),
                     t += 0.25 * static_cast<double>(rng.next_int(1, 5))});
  }
  OnlineOptions options;
  OnlineBreakEvenState batched(kModel, 8, 1, options);
  OnlineBreakEvenState reference(kModel, 8, 1, options);
  batched.advance_batch(points);
  for (const ServicePoint& p : points) reference.advance(p);
  EXPECT_EQ(batched.points_served(), reference.points_served());
  const OnlineResult a = batched.finish();
  const OnlineResult b = reference.finish();
  EXPECT_EQ(a.cost, b.cost);
  EXPECT_EQ(a.transfer_count, b.transfer_count);
  EXPECT_EQ(a.cache_time, b.cache_time);
}

// ---------------------------------------------------------------------------
// The threaded pipeline

TEST(StreamingPipeline, RunServePipelineMatchesPerPushOverSequence) {
  const RequestSequence trace = golden_trace();
  StreamingOptions options;
  options.online = grid_options(50, 10);
  options.item_count_hint = trace.item_count();

  StreamingEngine piped(kModel, options);
  SequenceBlockReader source(trace, 64);
  ServeConfig popts;
  popts.batch(64).ring(4);
  const ServePipelineStats stats =
      run_serve_pipeline(source, piped, popts);
  EXPECT_EQ(stats.requests, trace.size());
  EXPECT_EQ(stats.batches, (trace.size() + 63) / 64);
  EXPECT_EQ(piped.finish().total_cost, 23070.892026151188);
}

TEST(StreamingPipeline, RunServePipelineMatchesPerPushOverCsv) {
  const RequestSequence trace = golden_trace();
  const std::string csv = trace_to_csv(trace);
  StreamingOptions options;
  options.online = grid_options(50, 10);

  StreamingEngine piped(kModel, options);
  std::istringstream in(csv);
  CsvBlockReader source(in, "golden.csv", 128);
  ServeConfig popts;
  popts.batch(128);
  std::size_t callback_rows = 0;
  const ServePipelineStats stats = run_serve_pipeline(
      source, piped, popts,
      [&](const RequestBlock& block, const StreamingDecision&,
          std::size_t total) {
        callback_rows += block.size();
        EXPECT_EQ(callback_rows, total);
      });
  EXPECT_EQ(stats.requests, trace.size());
  EXPECT_EQ(callback_rows, trace.size());
  EXPECT_EQ(piped.finish().total_cost, 23070.892026151188);
}

TEST(StreamingPipeline, DecodeErrorSurfacesAfterTheValidPrefix) {
  // A malformed row mid-stream: every request before it is ingested, then
  // the IoError reaches the caller, who can still snapshot/finish.
  std::string csv = "server,time,items\n";
  for (int i = 0; i < 100; ++i) {
    csv += std::to_string(i % 3) + "," + std::to_string(i + 1) + ".0,0;1\n";
  }
  csv += "garbage row\n";
  csv += "0,999.0,2\n";

  StreamingOptions options;
  options.online = grid_options(8, 4);
  StreamingEngine engine(kModel, options);
  std::istringstream in(csv);
  CsvBlockReader source(in, "bad.csv", 32);
  ServeConfig popts;
  popts.batch(32);
  try {
    run_serve_pipeline(source, engine, popts);
    FAIL() << "expected IoError";
  } catch (const IoError& e) {
    EXPECT_NE(std::string(e.what()).find("bad.csv: row 101"),
              std::string::npos)
        << e.what();
  }
  EXPECT_EQ(engine.requests_seen(), 100u);
  EXPECT_GT(engine.finish().total_cost, 0.0);
}

TEST(StreamingPipeline, ConcurrentBoardReadersAndScrapesUnderLoad) {
  // The full observer stack under load: the pipeline publishes snapshots to
  // a ReportBoard at batch granularity while (a) a reader thread copies the
  // board and (b) HTTP scrapes hit a live ScrapeListener whose /metrics
  // body reads the same board.  Run under TSan in CI.
  const RequestSequence trace = golden_trace();
  StreamingOptions options;
  options.online = grid_options(50, 10);
  options.item_count_hint = trace.item_count();
  StreamingEngine engine(kModel, options);

  ReportBoard board;
  obs::ScrapeListener listener("127.0.0.1", 0, [&board] {
    std::uint64_t version = 0;
    const StreamingSnapshot s = board.read(&version);
    return "requests " + std::to_string(s.requests) + "\n";
  });

  const auto scrape = [&listener](const std::string& target) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return std::string();
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(listener.port());
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    std::string response;
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      const std::string request =
          "GET " + target + " HTTP/1.1\r\nHost: x\r\n\r\n";
      (void)!::send(fd, request.data(), request.size(), 0);
      char buffer[4096];
      for (;;) {
        const ssize_t got = ::recv(fd, buffer, sizeof(buffer), 0);
        if (got <= 0) break;
        response.append(buffer, static_cast<std::size_t>(got));
      }
    }
    ::close(fd);
    return response;
  };

  std::atomic<bool> done{false};
  std::thread reader([&] {
    while (!done.load(std::memory_order_acquire)) {
      std::uint64_t version = 0;
      const StreamingSnapshot s = board.read(&version);
      if (version > 0) {
        EXPECT_GE(s.report.total_cost, 0.0);
      }
      std::this_thread::yield();
    }
  });
  std::thread scraper([&] {
    while (!done.load(std::memory_order_acquire)) {
      const std::string healthz = scrape("/healthz");
      if (!healthz.empty()) {
        EXPECT_NE(healthz.find("200 OK"), std::string::npos);
      }
      const std::string metrics = scrape("/metrics");
      if (!metrics.empty()) {
        EXPECT_NE(metrics.find("requests "), std::string::npos);
      }
    }
  });

  SequenceBlockReader source(trace, 32);
  ServeConfig popts;
  popts.batch(32).ring(4);
  run_serve_pipeline(source, engine, popts,
                     [&](const RequestBlock&, const StreamingDecision&,
                         std::size_t) { board.publish(engine.snapshot()); });
  done.store(true, std::memory_order_release);
  reader.join();
  scraper.join();
  listener.stop();

  EXPECT_EQ(board.read().requests, trace.size());
  EXPECT_EQ(engine.finish().total_cost, 23070.892026151188);
}

}  // namespace
}  // namespace dpg
