// Unit tests for Request / RequestSequence / SequenceBuilder.
#include <gtest/gtest.h>

#include <vector>

#include "core/request.hpp"
#include "test_support.hpp"
#include "util/error.hpp"

namespace dpg {
namespace {

using testing::items_of;

std::vector<std::size_t> indices_vec(const RequestSequence& seq, ItemId item) {
  const std::span<const std::size_t> view = seq.indices_for_item(item);
  return {view.begin(), view.end()};
}

TEST(Request, ContainsUsesBinarySearch) {
  const std::vector<ItemId> items{1, 3, 5};
  const Request r{0, 1.0, items};
  EXPECT_TRUE(r.contains(1));
  EXPECT_TRUE(r.contains(5));
  EXPECT_FALSE(r.contains(2));
}

TEST(RequestSequence, ValidatesOrderingAndRanges) {
  // Out-of-order times.
  EXPECT_THROW(RequestSequence(2, 2, {{0, 2.0, {0}}, {1, 1.0, {1}}}),
               InvalidArgument);
  // Time zero is reserved for the origin.
  EXPECT_THROW(RequestSequence(2, 2, {{0, 0.0, {0}}}), InvalidArgument);
  // Duplicate times.
  EXPECT_THROW(RequestSequence(2, 2, {{0, 1.0, {0}}, {1, 1.0, {1}}}),
               InvalidArgument);
  // Server out of range.
  EXPECT_THROW(RequestSequence(2, 2, {{7, 1.0, {0}}}), InvalidArgument);
  // Item out of range.
  EXPECT_THROW(RequestSequence(2, 2, {{0, 1.0, {5}}}), InvalidArgument);
  // Empty item set.
  EXPECT_THROW(RequestSequence(2, 2, {{0, 1.0, {}}}), InvalidArgument);
  // Unsorted item set.
  EXPECT_THROW(RequestSequence(2, 3, {{0, 1.0, {2, 0}}}), InvalidArgument);
  // Duplicate items.
  EXPECT_THROW(RequestSequence(2, 3, {{0, 1.0, {1, 1}}}), InvalidArgument);
  // Degenerate dimensions.
  EXPECT_THROW(RequestSequence(0, 1, {}), InvalidArgument);
  EXPECT_THROW(RequestSequence(1, 0, {}), InvalidArgument);
}

TEST(RequestSequence, FrequenciesAndIndices) {
  const RequestSequence seq(
      2, 3, {{0, 1.0, {0, 1}}, {1, 2.0, {1}}, {0, 3.0, {0, 1, 2}}});
  EXPECT_EQ(seq.item_frequency(0), 2u);
  EXPECT_EQ(seq.item_frequency(1), 3u);
  EXPECT_EQ(seq.item_frequency(2), 1u);
  EXPECT_EQ(seq.pair_frequency(0, 1), 2u);
  EXPECT_EQ(seq.pair_frequency(1, 2), 1u);
  EXPECT_EQ(seq.pair_frequency(0, 2), 1u);
  EXPECT_EQ(seq.total_item_accesses(), 6u);
  EXPECT_EQ(indices_vec(seq, 1), (std::vector<std::size_t>{0, 1, 2}));
}

TEST(RequestSequence, PairFrequencyIsSymmetric) {
  const RequestSequence seq(2, 2, {{0, 1.0, {0, 1}}, {1, 2.0, {0}}});
  EXPECT_EQ(seq.pair_frequency(0, 1), seq.pair_frequency(1, 0));
}

TEST(RequestSequence, CsrColumnsExposeFlatLayout) {
  const RequestSequence seq(
      3, 3, {{2, 1.0, {0, 2}}, {1, 2.0, {1}}, {0, 3.0, {0}}});
  ASSERT_EQ(seq.servers().size(), 3u);
  EXPECT_EQ(seq.servers()[0], 2u);
  EXPECT_EQ(seq.times()[2], 3.0);
  EXPECT_EQ(seq.server_of(1), 1u);
  EXPECT_EQ(seq.time_of(1), 2.0);
  EXPECT_EQ(std::vector<ItemId>(seq.items_of(0).begin(), seq.items_of(0).end()),
            (std::vector<ItemId>{0, 2}));
  // Item sets of consecutive requests are adjacent in one pool.
  EXPECT_EQ(seq.items_of(0).data() + seq.items_of(0).size(),
            seq.items_of(1).data());
  // Per-item index spans are slices of one flat pool too.
  EXPECT_EQ(seq.indices_for_item(0).data() + seq.indices_for_item(0).size(),
            seq.indices_for_item(1).data());
}

TEST(SequenceBuilder, SortsByTimeAndNormalizesItems) {
  SequenceBuilder builder(3, 4);
  builder.add(1, 2.0, {3, 1, 1});  // unsorted + duplicate, normalized by add
  builder.add(0, 1.0, {0});
  const RequestSequence seq = std::move(builder).build();
  ASSERT_EQ(seq.size(), 2u);
  EXPECT_EQ(seq[0].time, 1.0);
  EXPECT_EQ(items_of(seq[1]), (std::vector<ItemId>{1, 3}));
}

TEST(SequenceBuilder, DuplicateTimesStillRejected) {
  SequenceBuilder builder(2, 2);
  builder.add(0, 1.0, {0});
  builder.add(1, 1.0, {1});
  EXPECT_THROW(std::move(builder).build(), InvalidArgument);
}

TEST(SequenceBuilder, StreamingApiMatchesAdd) {
  SequenceBuilder streamed(3, 4);
  streamed.begin_request(1, 2.0);
  streamed.push_item(3);
  streamed.push_item(1);
  streamed.push_item(1);
  streamed.end_request();
  streamed.begin_request(0, 1.0).push_item(0).end_request();

  SequenceBuilder added(3, 4);
  added.add(1, 2.0, {3, 1, 1});
  added.add(0, 1.0, {0});

  EXPECT_TRUE(testing::same_sequence(std::move(streamed).build(),
                                     std::move(added).build()));
}

TEST(SequenceBuilder, StreamingRowsAreSortedAndDeduplicated) {
  SequenceBuilder builder(2, 5);
  builder.begin_request(0, 1.0);
  builder.push_item(4).push_item(0).push_item(4).push_item(2);
  builder.end_request();
  const RequestSequence seq = std::move(builder).build();
  EXPECT_EQ(items_of(seq[0]), (std::vector<ItemId>{0, 2, 4}));
}

TEST(SequenceBuilder, MisuseOfStreamingApiThrows) {
  SequenceBuilder builder(2, 2);
  EXPECT_THROW(builder.push_item(0), InvalidArgument);
  EXPECT_THROW(builder.end_request(), InvalidArgument);
  builder.begin_request(0, 1.0);
  EXPECT_THROW(builder.begin_request(1, 2.0), InvalidArgument);
  EXPECT_THROW(std::move(builder).build(), InvalidArgument);
}

TEST(SequenceBuilder, ReserveMakesBuildAllocationFree) {
  SequenceBuilder builder(4, 8);
  builder.reserve(64, 128);
  for (std::size_t i = 0; i < 64; ++i) {
    builder.begin_request(static_cast<ServerId>(i % 4),
                          static_cast<Time>(i + 1));
    builder.push_item(static_cast<ItemId>(i % 8));
    builder.push_item(static_cast<ItemId>((i + 3) % 8));
    builder.end_request();
  }
  // All appends landed in the reserved arrays: no growth events at all.
  EXPECT_EQ(builder.grow_events(), 0u);
  const RequestSequence seq = std::move(builder).build();
  EXPECT_EQ(seq.size(), 64u);
}

TEST(SequenceBuilder, BuildWithCountsOverridesDimensions) {
  SequenceBuilder builder(1, 1);
  builder.add(3, 1.0, {7});
  const RequestSequence seq = std::move(builder).build_with_counts(4, 8);
  EXPECT_EQ(seq.server_count(), 4u);
  EXPECT_EQ(seq.item_count(), 8u);
  EXPECT_EQ(seq[0].server, 3u);
}

TEST(RequestSequence, ToStringMentionsDimensions) {
  const RequestSequence seq(3, 2, {{1, 1.5, {0}}});
  const std::string text = seq.to_string();
  EXPECT_NE(text.find("m=3"), std::string::npos);
  EXPECT_NE(text.find("k=2"), std::string::npos);
  EXPECT_NE(text.find("t=1.500"), std::string::npos);
}

}  // namespace
}  // namespace dpg
