// Unit tests for Request / RequestSequence / SequenceBuilder.
#include <gtest/gtest.h>

#include "core/request.hpp"
#include "util/error.hpp"

namespace dpg {
namespace {

TEST(Request, ContainsUsesBinarySearch) {
  const Request r{0, 1.0, {1, 3, 5}};
  EXPECT_TRUE(r.contains(1));
  EXPECT_TRUE(r.contains(5));
  EXPECT_FALSE(r.contains(2));
}

TEST(RequestSequence, ValidatesOrderingAndRanges) {
  // Out-of-order times.
  EXPECT_THROW(RequestSequence(2, 2,
                               {Request{0, 2.0, {0}}, Request{1, 1.0, {1}}}),
               InvalidArgument);
  // Time zero is reserved for the origin.
  EXPECT_THROW(RequestSequence(2, 2, {Request{0, 0.0, {0}}}), InvalidArgument);
  // Duplicate times.
  EXPECT_THROW(RequestSequence(2, 2,
                               {Request{0, 1.0, {0}}, Request{1, 1.0, {1}}}),
               InvalidArgument);
  // Server out of range.
  EXPECT_THROW(RequestSequence(2, 2, {Request{7, 1.0, {0}}}), InvalidArgument);
  // Item out of range.
  EXPECT_THROW(RequestSequence(2, 2, {Request{0, 1.0, {5}}}), InvalidArgument);
  // Empty item set.
  EXPECT_THROW(RequestSequence(2, 2, {Request{0, 1.0, {}}}), InvalidArgument);
  // Unsorted item set.
  EXPECT_THROW(RequestSequence(2, 3, {Request{0, 1.0, {2, 0}}}),
               InvalidArgument);
  // Duplicate items.
  EXPECT_THROW(RequestSequence(2, 3, {Request{0, 1.0, {1, 1}}}),
               InvalidArgument);
  // Degenerate dimensions.
  EXPECT_THROW(RequestSequence(0, 1, {}), InvalidArgument);
  EXPECT_THROW(RequestSequence(1, 0, {}), InvalidArgument);
}

TEST(RequestSequence, FrequenciesAndIndices) {
  const RequestSequence seq(2, 3,
                            {Request{0, 1.0, {0, 1}}, Request{1, 2.0, {1}},
                             Request{0, 3.0, {0, 1, 2}}});
  EXPECT_EQ(seq.item_frequency(0), 2u);
  EXPECT_EQ(seq.item_frequency(1), 3u);
  EXPECT_EQ(seq.item_frequency(2), 1u);
  EXPECT_EQ(seq.pair_frequency(0, 1), 2u);
  EXPECT_EQ(seq.pair_frequency(1, 2), 1u);
  EXPECT_EQ(seq.pair_frequency(0, 2), 1u);
  EXPECT_EQ(seq.total_item_accesses(), 6u);
  EXPECT_EQ(seq.indices_for_item(1), (std::vector<std::size_t>{0, 1, 2}));
}

TEST(RequestSequence, PairFrequencyIsSymmetric) {
  const RequestSequence seq(2, 2,
                            {Request{0, 1.0, {0, 1}}, Request{1, 2.0, {0}}});
  EXPECT_EQ(seq.pair_frequency(0, 1), seq.pair_frequency(1, 0));
}

TEST(SequenceBuilder, SortsByTimeAndNormalizesItems) {
  SequenceBuilder builder(3, 4);
  builder.add(1, 2.0, {3, 1, 1});  // unsorted + duplicate, normalized by add
  builder.add(0, 1.0, {0});
  const RequestSequence seq = std::move(builder).build();
  ASSERT_EQ(seq.size(), 2u);
  EXPECT_EQ(seq[0].time, 1.0);
  EXPECT_EQ(seq[1].items, (std::vector<ItemId>{1, 3}));
}

TEST(SequenceBuilder, DuplicateTimesStillRejected) {
  SequenceBuilder builder(2, 2);
  builder.add(0, 1.0, {0});
  builder.add(1, 1.0, {1});
  EXPECT_THROW(std::move(builder).build(), InvalidArgument);
}

TEST(RequestSequence, ToStringMentionsDimensions) {
  const RequestSequence seq(3, 2, {Request{1, 1.5, {0}}});
  const std::string text = seq.to_string();
  EXPECT_NE(text.find("m=3"), std::string::npos);
  EXPECT_NE(text.find("k=2"), std::string::npos);
  EXPECT_NE(text.find("t=1.500"), std::string::npos);
}

}  // namespace
}  // namespace dpg
