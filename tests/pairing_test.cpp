// Unit tests for Phase 1 packing and the multi-item grouping extension.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "solver/pairing.hpp"
#include "test_support.hpp"

namespace dpg {
namespace {

/// Builds a sequence whose pair Jaccards we control: items co-occur within
/// fixed "cliques" with the given probability.
RequestSequence clique_sequence(Rng& rng, std::size_t n, double co_prob) {
  SequenceBuilder builder(4, 6);
  Time t = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    t += 0.25;
    const auto clique = static_cast<ItemId>(rng.next_below(3));  // {0,1},{2,3},{4,5}
    std::vector<ItemId> items = {static_cast<ItemId>(2 * clique)};
    if (rng.next_bool(co_prob)) items.push_back(static_cast<ItemId>(2 * clique + 1));
    builder.add(static_cast<ServerId>(rng.next_below(4)), t, std::move(items));
  }
  return std::move(builder).build();
}

TEST(GreedyPairing, PacksDisjointPairsAboveTheta) {
  Rng rng(1);
  const RequestSequence seq = clique_sequence(rng, 400, 0.8);
  const CorrelationAnalysis analysis(seq);
  const Packing packing = greedy_pairing(analysis, 0.3);
  // Expect the three designed cliques to be found.
  ASSERT_EQ(packing.pairs.size(), 3u);
  std::set<ItemId> seen;
  for (const ItemPair& pair : packing.pairs) {
    EXPECT_GT(pair.jaccard, 0.3);
    EXPECT_EQ(pair.b, pair.a + 1);
    EXPECT_EQ(pair.a % 2, 0u);
    seen.insert(pair.a);
    seen.insert(pair.b);
  }
  EXPECT_EQ(seen.size(), 6u);
  EXPECT_TRUE(packing.singles.empty());
}

TEST(GreedyPairing, EachItemInAtMostOnePackage) {
  Rng rng(2);
  for (int trial = 0; trial < 20; ++trial) {
    const RequestSequence seq = testing::random_sequence(rng, 150, 4, 8, 0.6);
    const CorrelationAnalysis analysis(seq);
    const Packing packing = greedy_pairing(analysis, 0.1);
    std::set<ItemId> seen;
    for (const ItemPair& pair : packing.pairs) {
      ASSERT_TRUE(seen.insert(pair.a).second);
      ASSERT_TRUE(seen.insert(pair.b).second);
    }
    for (const ItemId single : packing.singles) {
      ASSERT_TRUE(seen.insert(single).second);
    }
    ASSERT_EQ(seen.size(), 8u);  // partition of the item universe
  }
}

TEST(GreedyPairing, ThetaOneStrictPacksNothing) {
  Rng rng(3);
  const RequestSequence seq = clique_sequence(rng, 200, 1.0);
  const CorrelationAnalysis analysis(seq);
  // Even perfectly correlated pairs (J = 1) fail the strict J > 1 test.
  const Packing strict = greedy_pairing(analysis, 1.0, /*inclusive=*/false);
  EXPECT_TRUE(strict.pairs.empty());
  // The inclusive reading packs them.
  const Packing inclusive = greedy_pairing(analysis, 1.0, /*inclusive=*/true);
  EXPECT_EQ(inclusive.pairs.size(), 3u);
}

TEST(GreedyPairing, HigherSimilarityWinsConflicts) {
  // Item 1 is correlated with both 0 and 2; the stronger pair must win.
  SequenceBuilder builder(2, 3);
  Time t = 0.0;
  for (int i = 0; i < 10; ++i) builder.add(0, t += 1.0, {0, 1});
  for (int i = 0; i < 4; ++i) builder.add(0, t += 1.0, {1, 2});
  for (int i = 0; i < 4; ++i) builder.add(0, t += 1.0, {2});
  const RequestSequence seq = std::move(builder).build();
  const CorrelationAnalysis analysis(seq);
  const Packing packing = greedy_pairing(analysis, 0.05);
  ASSERT_EQ(packing.pairs.size(), 1u);
  EXPECT_EQ(packing.pairs[0].a, 0u);
  EXPECT_EQ(packing.pairs[0].b, 1u);
  ASSERT_EQ(packing.singles.size(), 1u);
  EXPECT_EQ(packing.singles[0], 2u);
}

TEST(GreedyGrouping, BuildsTriplesUnderCompleteLinkage) {
  // Items 0,1,2 pairwise correlated; 3 independent.
  SequenceBuilder builder(2, 4);
  Time t = 0.0;
  for (int i = 0; i < 20; ++i) builder.add(0, t += 1.0, {0, 1, 2});
  for (int i = 0; i < 5; ++i) builder.add(0, t += 1.0, {3});
  const RequestSequence seq = std::move(builder).build();
  const CorrelationAnalysis analysis(seq);
  const GroupPacking packing = greedy_grouping(analysis, 0.3, 3);
  ASSERT_EQ(packing.groups.size(), 1u);
  EXPECT_EQ(packing.groups[0], (std::vector<ItemId>{0, 1, 2}));
  ASSERT_EQ(packing.singles.size(), 1u);
  EXPECT_EQ(packing.singles[0], 3u);
}

TEST(GreedyGrouping, RespectsMaxGroupSize) {
  SequenceBuilder builder(2, 4);
  Time t = 0.0;
  for (int i = 0; i < 20; ++i) builder.add(0, t += 1.0, {0, 1, 2, 3});
  const RequestSequence seq = std::move(builder).build();
  const CorrelationAnalysis analysis(seq);
  const GroupPacking packing = greedy_grouping(analysis, 0.3, 2);
  for (const auto& group : packing.groups) {
    ASSERT_LE(group.size(), 2u);
  }
}

TEST(GreedyGrouping, SizeTwoMatchesGreedyPairingPartition) {
  Rng rng(9);
  for (int trial = 0; trial < 10; ++trial) {
    const RequestSequence seq = testing::random_sequence(rng, 120, 3, 6, 0.5);
    const CorrelationAnalysis analysis(seq);
    const Packing pairs = greedy_pairing(analysis, 0.2);
    const GroupPacking groups = greedy_grouping(analysis, 0.2, 2);
    ASSERT_EQ(groups.groups.size(), pairs.pairs.size());
    for (std::size_t i = 0; i < pairs.pairs.size(); ++i) {
      std::vector<ItemId> expected{pairs.pairs[i].a, pairs.pairs[i].b};
      // Both walk pairs in the same deterministic order.
      ASSERT_TRUE(std::find(groups.groups.begin(), groups.groups.end(),
                            expected) != groups.groups.end());
    }
  }
}

}  // namespace
}  // namespace dpg
