// Schedule costing, feasibility validation, and the golden costs of the
// paper's Fig. 1 and Fig. 2 example schedules.
#include <gtest/gtest.h>

#include "core/schedule.hpp"
#include "util/error.hpp"

namespace dpg {
namespace {

constexpr double kTol = 1e-9;

TEST(Schedule, CacheTimeUnionsOverlapsPerServer) {
  Schedule s;
  s.add_segment(0, 0.0, 2.0);
  s.add_segment(0, 1.0, 3.0);   // overlaps -> union [0,3]
  s.add_segment(1, 1.0, 2.0);   // disjoint server
  EXPECT_NEAR(s.total_cache_time(), 4.0, kTol);
}

TEST(Schedule, ZeroLengthSegmentsAreDropped) {
  Schedule s;
  s.add_segment(0, 1.0, 1.0);
  EXPECT_TRUE(s.segments().empty());
}

TEST(Schedule, RejectsIllFormedPieces) {
  Schedule s;
  EXPECT_THROW(s.add_segment(0, 2.0, 1.0), InvalidArgument);
  EXPECT_THROW(s.add_segment(0, -1.0, 1.0), InvalidArgument);
  EXPECT_THROW(s.add_transfer(1, 1, 1.0), InvalidArgument);
  EXPECT_THROW(s.add_transfer(0, 1, -1.0), InvalidArgument);
}

// Fig. 1: single item, cache intervals of lengths 1.4 + 3.5 + 0.3 and four
// transfers: C = (1.4+3.5+0.3)μ + 4λ.
TEST(ScheduleGolden, Figure1Cost) {
  const CostModel model{1.0, 1.0, 0.8};
  Schedule s(1);
  s.add_segment(0, 0.0, 1.4);
  s.add_segment(1, 1.0, 4.5);
  s.add_segment(2, 4.2, 4.5);
  s.add_transfer(0, 1, 1.0);
  s.add_transfer(0, 3, 1.4);
  s.add_transfer(1, 2, 4.2);
  s.add_transfer(1, 3, 4.5);
  EXPECT_NEAR(s.raw_cost(model), (1.4 + 3.5 + 0.3) + 4.0, kTol);
  EXPECT_NEAR(s.cost(model), s.raw_cost(model), kTol);  // single item
}

// Fig. 2: a package schedule ((0.8+3.2)μ + 2λ)·2α plus individual services
// (0.5+0.3+1.2+1.8)μ + 4λ.
TEST(ScheduleGolden, Figure2Cost) {
  const CostModel model{1.0, 1.0, 0.8};
  Schedule package(2);
  package.add_segment(0, 0.0, 0.8);
  package.add_segment(1, 0.8, 4.0);
  package.add_transfer(0, 1, 0.8);
  package.add_transfer(1, 0, 1.4);
  EXPECT_NEAR(package.cost(model), ((0.8 + 3.2) + 2.0) * 2.0 * 0.8, kTol);

  Schedule singles(1);
  singles.add_segment(0, 0.0, 0.5);
  singles.add_segment(1, 0.8, 1.1);
  singles.add_segment(1, 1.4, 2.6);
  singles.add_segment(1, 1.4, 3.2);
  singles.add_transfer(0, 2, 0.5);
  singles.add_transfer(1, 3, 1.1);
  singles.add_transfer(1, 2, 2.6);
  singles.add_transfer(1, 2, 3.2);
  // (0.5 + 0.3 + 1.8)μ with the [1.4,2.6] line inside [1.4,3.2]... the
  // paper's figure draws separate per-item lines; price them separately:
  Schedule d1_line(1);
  d1_line.add_segment(1, 1.4, 2.6);
  Schedule d2_line(1);
  d2_line.add_segment(1, 1.4, 3.2);
  const double individual_cache = 0.5 + 0.3 + 1.2 + 1.8;
  EXPECT_NEAR(0.5 + 0.3 + d1_line.total_cache_time() + d2_line.total_cache_time(),
              individual_cache, kTol);
  const double total =
      ((0.8 + 3.2) + 2.0) * 2.0 * 0.8 + individual_cache + 4.0;
  EXPECT_NEAR(package.cost(model) + individual_cache + 4.0 * model.lambda,
              total, kTol);
}

TEST(ScheduleValidate, AcceptsGroundedChain) {
  Schedule s;
  s.add_segment(0, 0.0, 1.0);
  s.add_transfer(0, 1, 1.0);
  s.add_segment(1, 1.0, 2.0);
  Flow flow;
  flow.points.push_back({1, 2.0, 0});
  const ValidationResult v = s.validate(flow);
  EXPECT_TRUE(v.ok) << v.message;
}

TEST(ScheduleValidate, RejectsUngroundedSegment) {
  Schedule s;
  s.add_segment(2, 1.0, 2.0);  // no copy ever reached server 2
  Flow flow;
  flow.points.push_back({2, 2.0, 0});
  const ValidationResult v = s.validate(flow);
  EXPECT_FALSE(v.ok);
  EXPECT_NE(v.message.find("ungrounded cache segment"), std::string::npos);
}

TEST(ScheduleValidate, RejectsUngroundedTransfer) {
  Schedule s;
  s.add_transfer(1, 2, 1.0);  // nothing at server 1 at t=1
  const ValidationResult v = s.validate(Flow{});
  EXPECT_FALSE(v.ok);
  EXPECT_NE(v.message.find("ungrounded transfer"), std::string::npos);
}

TEST(ScheduleValidate, RejectsUncoveredServicePoint) {
  Schedule s;
  s.add_segment(0, 0.0, 1.0);
  Flow flow;
  flow.points.push_back({1, 0.5, 0});
  const ValidationResult v = s.validate(flow);
  EXPECT_FALSE(v.ok);
  EXPECT_NE(v.message.find("not covered"), std::string::npos);
}

TEST(ScheduleValidate, ResolvesSameInstantChains) {
  // transfer 0->1 at t=1, then 1->2 at t=1, then a segment at server 2
  // starting t=1: all at the same instant, grounded transitively.
  Schedule s;
  s.add_segment(0, 0.0, 1.0);
  s.add_transfer(0, 1, 1.0);
  s.add_transfer(1, 2, 1.0);
  s.add_segment(2, 1.0, 3.0);
  Flow flow;
  flow.points.push_back({2, 3.0, 0});
  const ValidationResult v = s.validate(flow);
  EXPECT_TRUE(v.ok) << v.message;
}

TEST(ScheduleValidate, OriginPointOnlyCoversTimeZero) {
  Schedule s;  // empty schedule
  Flow flow;
  flow.points.push_back({kOriginServer, 1.0, 0});
  const ValidationResult v = s.validate(flow);
  EXPECT_FALSE(v.ok);  // the copy is not held at the origin past t=0
}

TEST(Schedule, AppendMergesPieces) {
  Schedule a;
  a.add_segment(0, 0.0, 1.0);
  Schedule b;
  b.add_transfer(0, 1, 1.0);
  a.append(b);
  EXPECT_EQ(a.segments().size(), 1u);
  EXPECT_EQ(a.transfers().size(), 1u);
}

TEST(Schedule, RenderShowsLanes) {
  Schedule s;
  s.add_segment(0, 0.0, 1.0);
  s.add_transfer(0, 1, 1.0);
  const std::string art = s.render(2);
  EXPECT_NE(art.find("s0 |"), std::string::npos);
  EXPECT_NE(art.find('='), std::string::npos);
  EXPECT_NE(art.find('*'), std::string::npos);
}

}  // namespace
}  // namespace dpg
