// Shared fixtures for the test suites.
#pragma once

#include <algorithm>
#include <vector>

#include "core/cost_model.hpp"
#include "core/flow.hpp"
#include "core/request.hpp"
#include "util/rng.hpp"

namespace dpg::testing {

/// Materializes a Request view's item span for gtest container matchers.
inline std::vector<ItemId> items_of(const Request& r) {
  return {r.items.begin(), r.items.end()};
}

/// Exact structural equality of two sequences (dims, servers, times, items).
inline bool same_sequence(const RequestSequence& a, const RequestSequence& b) {
  if (a.server_count() != b.server_count() ||
      a.item_count() != b.item_count() || a.size() != b.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].server != b[i].server || a[i].time != b[i].time ||
        !std::equal(a[i].items.begin(), a[i].items.end(), b[i].items.begin(),
                    b[i].items.end())) {
      return false;
    }
  }
  return true;
}

/// The running example of Section V-C (Figs. 2 and 7): two items over four
/// servers; server 0 is the origin s_1.
///
///   t=0.5  d1       @ server 2
///   t=0.8  {d1,d2}  @ server 1
///   t=1.1  d2       @ server 3
///   t=1.4  {d1,d2}  @ server 0
///   t=2.6  d1       @ server 2
///   t=3.2  d2       @ server 2
///   t=4.0  {d1,d2}  @ server 1
///
/// With θ=0.4, μ=λ=1, α=0.8 the paper derives J(d1,d2)=3/7, a package DP
/// cost of 8.96, greedy singleton costs 3.1 (d1) and 2.9 (d2), and a grand
/// total of 14.96.
inline RequestSequence running_example_sequence() {
  SequenceBuilder builder(/*server_count=*/4, /*item_count=*/2);
  builder.add(2, 0.5, {0});
  builder.add(1, 0.8, {0, 1});
  builder.add(3, 1.1, {1});
  builder.add(0, 1.4, {0, 1});
  builder.add(2, 2.6, {0});
  builder.add(2, 3.2, {1});
  builder.add(1, 4.0, {0, 1});
  return std::move(builder).build();
}

/// The cost parameters of the running example.
inline CostModel running_example_model() {
  CostModel model;
  model.mu = 1.0;
  model.lambda = 1.0;
  model.alpha = 0.8;
  return model;
}

/// Uniform random flow for property tests: `n` service points over
/// `server_count` servers, times strictly increasing with unit-mean gaps.
inline Flow random_flow(Rng& rng, std::size_t n, std::size_t server_count,
                        std::size_t group_size = 1) {
  Flow flow;
  flow.group_size = group_size;
  Time t = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    t += 0.125 * static_cast<Time>(rng.next_int(1, 16));
    flow.points.push_back(ServicePoint{
        static_cast<ServerId>(rng.next_below(server_count)), t, i});
  }
  return flow;
}

/// Random multi-item request sequence for end-to-end property tests.
inline RequestSequence random_sequence(Rng& rng, std::size_t n,
                                       std::size_t server_count,
                                       std::size_t item_count,
                                       double co_access_probability = 0.4) {
  SequenceBuilder builder(server_count, item_count);
  Time t = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    t += 0.125 * static_cast<Time>(rng.next_int(1, 16));
    std::vector<ItemId> items;
    items.push_back(static_cast<ItemId>(rng.next_below(item_count)));
    if (item_count > 1 && rng.next_bool(co_access_probability)) {
      ItemId other = static_cast<ItemId>(rng.next_below(item_count));
      if (other != items.front()) items.push_back(other);
    }
    builder.add(static_cast<ServerId>(rng.next_below(server_count)), t,
                std::move(items));
  }
  return std::move(builder).build();
}

}  // namespace dpg::testing
