// Parameterized consistency grid for DP_Greedy across (θ, α, λ) — the
// bookkeeping identities every configuration must satisfy.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <tuple>

#include "solver/dp_greedy.hpp"
#include "test_support.hpp"

namespace dpg {
namespace {

class DpGreedyGrid
    : public ::testing::TestWithParam<std::tuple<double, double, double>> {};

TEST_P(DpGreedyGrid, AccountingIdentitiesHold) {
  const auto [theta, alpha, lambda] = GetParam();
  Rng rng(0x9E3779B9);
  const CostModel model{1.0, lambda, alpha};
  DpGreedyOptions options;
  options.theta = theta;
  for (int trial = 0; trial < 5; ++trial) {
    const RequestSequence seq = testing::random_sequence(rng, 120, 5, 6, 0.5);
    const DpGreedyResult result = solve_dp_greedy(seq, model, options);

    // 1) Total decomposes exactly into package + single parts.
    Cost sum = 0.0;
    for (const PackageReport& p : result.packages) sum += p.total_cost();
    for (const SingleItemReport& s : result.singles) sum += s.cost;
    ASSERT_NEAR(result.total_cost, sum, 1e-9);

    // 2) ave_cost is total over Σ|d_i|.
    ASSERT_EQ(result.total_item_accesses, seq.total_item_accesses());
    ASSERT_NEAR(result.ave_cost * static_cast<double>(result.total_item_accesses),
                result.total_cost, 1e-9);

    // 3) The packing partitions the item universe.
    std::set<ItemId> seen;
    for (const ItemPair& pair : result.packing.pairs) {
      ASSERT_TRUE(seen.insert(pair.a).second);
      ASSERT_TRUE(seen.insert(pair.b).second);
      ASSERT_GT(pair.jaccard, theta);  // Algorithm 1 line 16 (strict)
    }
    for (const ItemId item : result.packing.singles) {
      ASSERT_TRUE(seen.insert(item).second);
    }
    ASSERT_EQ(seen.size(), seq.item_count());

    // 4) Per-package accounting: accesses and service records line up.
    for (const PackageReport& p : result.packages) {
      ASSERT_EQ(p.total_accesses, seq.item_frequency(p.pair.a) +
                                      seq.item_frequency(p.pair.b));
      // Every singleton service belongs to the pair and its request really
      // contains exactly one of the two items.
      for (const SingletonService& s : p.services) {
        ASSERT_TRUE(s.item == p.pair.a || s.item == p.pair.b);
        const Request& r = seq[s.request_index];
        const ItemId other = s.item == p.pair.a ? p.pair.b : p.pair.a;
        ASSERT_TRUE(r.contains(s.item));
        ASSERT_FALSE(r.contains(other));
        ASSERT_GE(s.cost, 0.0);
      }
      // co-requests + singleton services == total accesses.
      ASSERT_EQ(2 * p.co_request_count + p.services.size(), p.total_accesses);
    }

    // 5) Costs are finite and non-negative throughout.
    ASSERT_GE(result.total_cost, 0.0);
    ASSERT_TRUE(std::isfinite(result.total_cost));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, DpGreedyGrid,
    ::testing::Combine(::testing::Values(0.0, 0.3, 0.7, 1.0),
                       ::testing::Values(0.2, 0.5, 0.8, 1.0),
                       ::testing::Values(0.25, 1.0, 4.0)));

}  // namespace
}  // namespace dpg
