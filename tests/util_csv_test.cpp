#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/csv.hpp"
#include "util/error.hpp"

namespace dpg {
namespace {

TEST(Csv, ParsesHeaderAndRows) {
  const CsvTable t = parse_csv("a,b,c\n1,2,3\n4,5,6\n");
  EXPECT_EQ(t.header, (std::vector<std::string>{"a", "b", "c"}));
  ASSERT_EQ(t.rows.size(), 2u);
  EXPECT_EQ(t.rows[1][2], "6");
}

TEST(Csv, HandlesQuotedFieldsAndEscapes) {
  const CsvTable t = parse_csv("name,note\nx,\"a,b\"\ny,\"say \"\"hi\"\"\"\n");
  EXPECT_EQ(t.rows[0][1], "a,b");
  EXPECT_EQ(t.rows[1][1], "say \"hi\"");
}

TEST(Csv, HandlesCrLfAndMissingTrailingNewline) {
  const CsvTable t = parse_csv("a,b\r\n1,2\r\n3,4");
  ASSERT_EQ(t.rows.size(), 2u);
  EXPECT_EQ(t.rows[1][1], "4");
}

TEST(Csv, SkipsBlankLines) {
  const CsvTable t = parse_csv("a,b\n\n1,2\n\n");
  EXPECT_EQ(t.rows.size(), 1u);
}

TEST(Csv, RaggedRowsRejected) {
  EXPECT_THROW((void)parse_csv("a,b\n1\n"), IoError);
}

TEST(Csv, UnterminatedQuoteRejected) {
  EXPECT_THROW((void)parse_csv("a\n\"oops\n"), IoError);
}

TEST(Csv, ColumnIndexLookups) {
  const CsvTable t = parse_csv("x,y\n1,2\n");
  EXPECT_EQ(t.column_index("y"), 1u);
  EXPECT_THROW((void)t.column_index("z"), IoError);
}

TEST(Csv, WriterQuotesOnlyWhenNeeded) {
  std::ostringstream out;
  CsvWriter writer(out);
  writer.write_row({"plain", "with,comma", "with\"quote"});
  EXPECT_EQ(out.str(), "plain,\"with,comma\",\"with\"\"quote\"\n");
}

TEST(Csv, FileRoundTrip) {
  CsvTable t;
  t.header = {"server", "time", "items"};
  t.rows = {{"0", "1.5", "0;1"}, {"3", "2.0", "2"}};
  const std::string path = ::testing::TempDir() + "dpg_csv_roundtrip.csv";
  write_csv_file(path, t);
  const CsvTable back = read_csv_file(path);
  EXPECT_EQ(back.header, t.header);
  EXPECT_EQ(back.rows, t.rows);
  std::remove(path.c_str());
}

TEST(Csv, MissingFileRaises) {
  EXPECT_THROW((void)read_csv_file("/nonexistent/nowhere.csv"), IoError);
}

}  // namespace
}  // namespace dpg
