// Unit tests for flow extraction.
#include <gtest/gtest.h>

#include "core/flow.hpp"
#include "util/error.hpp"

namespace dpg {
namespace {

RequestSequence sample() {
  return RequestSequence(
      3, 3,
      {RequestDraft{0, 1.0, {0, 1}}, RequestDraft{1, 2.0, {1}}, RequestDraft{2, 3.0, {0, 1}},
       RequestDraft{1, 4.0, {2}}, RequestDraft{0, 5.0, {0, 1, 2}}});
}

TEST(Flow, ItemFlowPicksContainingRequests) {
  const Flow flow = make_item_flow(sample(), 0);
  ASSERT_EQ(flow.size(), 3u);
  EXPECT_EQ(flow.points[0].time, 1.0);
  EXPECT_EQ(flow.points[1].time, 3.0);
  EXPECT_EQ(flow.points[2].time, 5.0);
  EXPECT_EQ(flow.points[1].request_index, 2u);
  EXPECT_EQ(flow.group_size, 1u);
}

TEST(Flow, PackageFlowRequiresBothItems) {
  const Flow flow = make_package_flow(sample(), 0, 1);
  ASSERT_EQ(flow.size(), 3u);
  EXPECT_EQ(flow.group_size, 2u);
  EXPECT_EQ(flow.points[0].time, 1.0);
  EXPECT_EQ(flow.points[2].time, 5.0);
}

TEST(Flow, GroupFlowRequiresAllItems) {
  const Flow flow = make_group_flow(sample(), {0, 1, 2});
  ASSERT_EQ(flow.size(), 1u);
  EXPECT_EQ(flow.points[0].time, 5.0);
  EXPECT_EQ(flow.group_size, 3u);
}

TEST(Flow, UnionFlowTakesAnyItem) {
  const Flow flow = make_union_flow(sample(), {0, 2});
  ASSERT_EQ(flow.size(), 4u);  // 1.0, 3.0, 4.0, 5.0
  EXPECT_EQ(flow.points[2].time, 4.0);
  EXPECT_EQ(flow.group_size, 2u);
}

TEST(Flow, SingletonGroupFlowEqualsItemFlow) {
  const Flow a = make_group_flow(sample(), {1});
  const Flow b = make_item_flow(sample(), 1);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.points[i].time, b.points[i].time);
  }
}

TEST(Flow, EmptyGroupRejected) {
  EXPECT_THROW((void)make_group_flow(sample(), {}), InvalidArgument);
  EXPECT_THROW((void)make_union_flow(sample(), {}), InvalidArgument);
}

TEST(Flow, ValidateCatchesNonIncreasingTimes) {
  Flow flow;
  flow.points.push_back({0, 1.0, 0});
  flow.points.push_back({0, 1.0, 1});
  EXPECT_THROW(validate_flow(flow), InvalidArgument);
  Flow zero;
  zero.points.push_back({0, 0.0, 0});
  EXPECT_THROW(validate_flow(zero), InvalidArgument);
  Flow empty;
  EXPECT_NO_THROW(validate_flow(empty));
}

}  // namespace
}  // namespace dpg
