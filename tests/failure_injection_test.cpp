// Failure injection: mutate valid solver schedules and check that the
// validator / replay engine reliably detects every class of damage.  This
// is the safety net that keeps "schedule feasibility" a trustworthy claim
// everywhere else in the suite.
#include <gtest/gtest.h>

#include "sim/replay.hpp"
#include "solver/optimal_offline.hpp"
#include "test_support.hpp"

namespace dpg {
namespace {

struct Instance {
  Flow flow;
  Schedule schedule;
};

Instance solved_instance(Rng& rng, std::size_t n) {
  Instance instance;
  instance.flow = testing::random_flow(rng, n, 4);
  instance.schedule =
      solve_optimal_offline(instance.flow, CostModel{1, 1, 0.8}, 4).schedule;
  return instance;
}

/// Rebuilds a schedule without one segment / transfer (Schedule has no
/// removal API by design; damage is modeled by reconstruction).
Schedule without_segment(const Schedule& original, std::size_t drop) {
  Schedule out(original.group_size());
  for (std::size_t i = 0; i < original.segments().size(); ++i) {
    if (i == drop) continue;
    const CacheSegment& s = original.segments()[i];
    out.add_segment(s.server, s.begin, s.end);
  }
  for (const TransferEdge& t : original.transfers()) {
    out.add_transfer(t.from, t.to, t.time);
  }
  return out;
}

Schedule without_transfer(const Schedule& original, std::size_t drop) {
  Schedule out(original.group_size());
  for (const CacheSegment& s : original.segments()) {
    out.add_segment(s.server, s.begin, s.end);
  }
  for (std::size_t i = 0; i < original.transfers().size(); ++i) {
    if (i == drop) continue;
    const TransferEdge& t = original.transfers()[i];
    out.add_transfer(t.from, t.to, t.time);
  }
  return out;
}

TEST(FailureInjection, DroppingAnySegmentIsDetectedOrRedundant) {
  // Dropping a load-bearing segment must be flagged; the only acceptable
  // silent outcome is dropping a redundant (overlapping) segment, which can
  // only make the schedule cheaper, never costlier.
  Rng rng(1);
  const CostModel model{1, 1, 0.8};
  std::size_t detected = 0, total = 0;
  for (int trial = 0; trial < 20; ++trial) {
    const Instance instance = solved_instance(rng, 15);
    for (std::size_t drop = 0; drop < instance.schedule.segments().size();
         ++drop) {
      const Schedule damaged = without_segment(instance.schedule, drop);
      const ValidationResult v = damaged.validate(instance.flow);
      ++total;
      if (!v.ok) {
        ++detected;
      } else {
        ASSERT_LT(damaged.raw_cost(model), instance.schedule.raw_cost(model))
            << "undetected drop did not even reduce cost";
      }
    }
  }
  // The vast majority of segments in an optimal schedule are load-bearing.
  ASSERT_GT(detected * 10, total * 9) << detected << "/" << total;
}

TEST(FailureInjection, DroppingAnyTransferIsDetected) {
  Rng rng(2);
  for (int trial = 0; trial < 20; ++trial) {
    const Instance instance = solved_instance(rng, 15);
    for (std::size_t drop = 0; drop < instance.schedule.transfers().size();
         ++drop) {
      const Schedule damaged = without_transfer(instance.schedule, drop);
      const ValidationResult v = damaged.validate(instance.flow);
      ASSERT_FALSE(v.ok) << "dropping transfer " << drop << " went unnoticed";
    }
  }
}

TEST(FailureInjection, RetimedTransfersAreDetected) {
  Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    const Instance instance = solved_instance(rng, 12);
    if (instance.schedule.transfers().empty()) continue;
    Schedule damaged(instance.schedule.group_size());
    for (const CacheSegment& s : instance.schedule.segments()) {
      damaged.add_segment(s.server, s.begin, s.end);
    }
    bool first = true;
    for (const TransferEdge& t : instance.schedule.transfers()) {
      // Shift the first transfer to a future time where its service point
      // is no longer covered.
      damaged.add_transfer(t.from, t.to, first ? t.time + 1e6 : t.time);
      first = false;
    }
    const ValidationResult v = damaged.validate(instance.flow);
    ASSERT_FALSE(v.ok);
  }
}

TEST(FailureInjection, MisroutedTransfersAreDetected) {
  Rng rng(4);
  int checked = 0;
  for (int trial = 0; trial < 30 && checked < 15; ++trial) {
    const Instance instance = solved_instance(rng, 12);
    if (instance.schedule.transfers().empty()) continue;
    ++checked;
    Schedule damaged(instance.schedule.group_size());
    for (const CacheSegment& s : instance.schedule.segments()) {
      damaged.add_segment(s.server, s.begin, s.end);
    }
    bool first = true;
    for (const TransferEdge& t : instance.schedule.transfers()) {
      // Redirect the first transfer to an uninvolved server (flows use
      // servers 0..3, so server 4 is never a legitimate destination here).
      damaged.add_transfer(t.from, first ? ServerId{4} : t.to, t.time);
      first = false;
    }
    const ValidationResult v = damaged.validate(instance.flow);
    // Redirecting can only break coverage (the original destination loses
    // its copy) unless another path also covered that service point; the
    // replay engine must at minimum still account costs consistently.
    if (v.ok) {
      const ReplayMetrics m = replay_plans(
          {FlowPlan{instance.flow, damaged, "misrouted"}}, CostModel{1, 1, 0.8},
          5);
      ASSERT_TRUE(m.feasible);
    } else {
      ASSERT_FALSE(v.message.empty());
    }
  }
  ASSERT_GT(checked, 0);
}

TEST(FailureInjection, TruncatedSegmentsAreDetected) {
  Rng rng(5);
  std::size_t detections = 0, attempts = 0;
  for (int trial = 0; trial < 20; ++trial) {
    const Instance instance = solved_instance(rng, 12);
    if (instance.schedule.segments().empty()) continue;
    Schedule damaged(instance.schedule.group_size());
    bool first = true;
    for (const CacheSegment& s : instance.schedule.segments()) {
      // Shorten the first segment from the right by 60%.
      damaged.add_segment(s.server, s.begin,
                          first ? s.begin + 0.4 * (s.end - s.begin) : s.end);
      first = false;
    }
    for (const TransferEdge& t : instance.schedule.transfers()) {
      damaged.add_transfer(t.from, t.to, t.time);
    }
    const ValidationResult v = damaged.validate(instance.flow);
    if (v.ok) {
      // Masked by a redundant overlap: acceptable only if strictly cheaper.
      const CostModel model{1, 1, 0.8};
      ASSERT_LT(damaged.raw_cost(model), instance.schedule.raw_cost(model));
    } else {
      ++detections;
    }
    ++attempts;
  }
  ASSERT_GT(detections * 10, attempts * 8) << detections << "/" << attempts;
}

}  // namespace
}  // namespace dpg
