#include <gtest/gtest.h>

#include "test_support.hpp"

#include <algorithm>
#include <cmath>

#include "mobility/simulator.hpp"
#include "solver/correlation.hpp"
#include "trace/stats.hpp"
#include "util/error.hpp"

namespace dpg {
namespace {

TEST(CityGrid, ZoneMappingAndCenters) {
  Rng rng(1);
  CityGrid city(10, 5, 3, rng);
  EXPECT_EQ(city.zone_count(), 50u);
  EXPECT_EQ(city.zone_of(Position{0.5, 0.5}), 0u);
  EXPECT_EQ(city.zone_of(Position{9.5, 4.5}), 49u);
  EXPECT_EQ(city.zone_of(Position{3.2, 1.7}), 13u);  // row 1, col 3
  // Out-of-range positions clamp instead of faulting.
  EXPECT_EQ(city.zone_of(Position{-4.0, -4.0}), 0u);
  EXPECT_EQ(city.zone_of(Position{100.0, 100.0}), 49u);
  const Position c = city.center_of(13);
  EXPECT_DOUBLE_EQ(c.x, 3.5);
  EXPECT_DOUBLE_EQ(c.y, 1.5);
  EXPECT_EQ(city.zone_of(c), 13u);
}

TEST(CityGrid, HotspotsAreDistinctZones) {
  Rng rng(2);
  CityGrid city(6, 6, 5, rng);
  const auto& hotspots = city.hotspots();
  ASSERT_EQ(hotspots.size(), 5u);
  for (std::size_t i = 0; i < hotspots.size(); ++i) {
    ASSERT_LT(hotspots[i], 36u);
    for (std::size_t j = i + 1; j < hotspots.size(); ++j) {
      ASSERT_NE(hotspots[i], hotspots[j]);
    }
  }
}

TEST(CityGrid, ValidatesConstruction) {
  Rng rng(3);
  EXPECT_THROW(CityGrid(0, 5, 1, rng), InvalidArgument);
  EXPECT_THROW(CityGrid(2, 2, 0, rng), InvalidArgument);
  EXPECT_THROW(CityGrid(2, 2, 9, rng), InvalidArgument);
}

TEST(Taxi, MovesTowardWaypointAtConfiguredSpeed) {
  Rng rng(4);
  CityGrid city(10, 10, 2, rng);
  TaxiConfig config;
  config.speed = 1.0;
  Taxi taxi(0, Position{5.0, 5.0}, config);
  const Position before = taxi.position();
  taxi.advance(0.5, city, rng);
  const Position after = taxi.position();
  const double moved =
      std::hypot(after.x - before.x, after.y - before.y);
  EXPECT_LE(moved, 0.5 + 1e-9);
}

TEST(Mobility, ProducesValidDeterministicTrace) {
  MobilityConfig config;
  config.duration = 50.0;
  Rng a(7), b(7);
  const RequestSequence s1 = simulate_mobility(config, a);
  const RequestSequence s2 = simulate_mobility(config, b);
  ASSERT_GT(s1.size(), 0u);
  ASSERT_EQ(s1.size(), s2.size());
  for (std::size_t i = 0; i < s1.size(); ++i) {
    ASSERT_EQ(s1[i].server, s2[i].server);
    ASSERT_EQ(testing::items_of(s1[i]), testing::items_of(s2[i]));
  }
  EXPECT_EQ(s1.server_count(), 50u);
  EXPECT_EQ(s1.item_count(), 10u);
}

TEST(Mobility, PairCoAccessRampYieldsOrderedJaccards) {
  MobilityConfig config;
  config.duration = 600.0;
  Rng rng(21);
  const RequestSequence seq = simulate_mobility(config, rng);
  const CorrelationAnalysis analysis(seq);
  // The default ramp makes later pairs more correlated: J(8,9) > J(0,1).
  EXPECT_GT(analysis.jaccard(8, 9), analysis.jaccard(0, 1));
  // All cross-pair similarities are zero (items only co-occur with their
  // fleet partner).
  EXPECT_EQ(analysis.jaccard(0, 2), 0.0);
  EXPECT_EQ(analysis.jaccard(3, 7), 0.0);
}

TEST(Mobility, HotspotGravitySkewsSpatialDistribution) {
  MobilityConfig config;
  config.duration = 400.0;
  config.taxi.hotspot_bias = 0.9;
  Rng rng(31);
  const RequestSequence seq = simulate_mobility(config, rng);
  const TraceStats stats = compute_trace_stats(seq);
  // A heavily biased fleet concentrates requests: the busiest zone should
  // see far more than the mean zone load (Fig. 9's skew).
  std::size_t peak = 0;
  for (const std::size_t c : stats.per_server) peak = std::max(peak, c);
  const double mean = static_cast<double>(stats.request_count) /
                      static_cast<double>(stats.server_count);
  EXPECT_GT(static_cast<double>(peak), 2.0 * mean);
}

TEST(Mobility, ExplicitCoAccessVectorIsHonored) {
  MobilityConfig config;
  config.taxi_count = 4;
  config.duration = 400.0;
  config.pair_co_access = {1.0, 0.0};
  Rng rng(41);
  const RequestSequence seq = simulate_mobility(config, rng);
  const CorrelationAnalysis analysis(seq);
  EXPECT_NEAR(analysis.jaccard(0, 1), 1.0, 1e-12);
  EXPECT_EQ(analysis.jaccard(2, 3), 0.0);
}

TEST(Mobility, OddFleetLeavesLastTaxiUnpaired) {
  MobilityConfig config;
  config.taxi_count = 3;
  config.duration = 100.0;
  Rng rng(51);
  const RequestSequence seq = simulate_mobility(config, rng);
  const CorrelationAnalysis analysis(seq);
  EXPECT_EQ(analysis.jaccard(0, 2), 0.0);
  EXPECT_EQ(analysis.jaccard(1, 2), 0.0);
  EXPECT_GT(seq.item_frequency(2), 0u);
}

TEST(Mobility, ValidatesConfig) {
  Rng rng(1);
  MobilityConfig zero_taxis;
  zero_taxis.taxi_count = 0;
  EXPECT_THROW((void)simulate_mobility(zero_taxis, rng), InvalidArgument);
  MobilityConfig short_vector;
  short_vector.taxi_count = 6;
  short_vector.pair_co_access = {0.5};
  EXPECT_THROW((void)simulate_mobility(short_vector, rng), InvalidArgument);
}

}  // namespace
}  // namespace dpg
