// The bench regression gate (bench/harness): schema-v2 validation, gate
// evaluation over golden current/baseline pairs — clean pass, threshold
// trip, relative-to-baseline trip, missing section, missing metric, schema
// mismatch — plus path resolution and the JSON DOM's lexeme preservation.
// The load-bearing property: structural problems are loud FAILs (or
// throws), never silent skips.
#include <gtest/gtest.h>

#include <string>

#include "harness/gate.hpp"
#include "harness/json.hpp"
#include "harness/runner.hpp"
#include "harness/scenario.hpp"

namespace dpg::bench {
namespace {

/// A minimal v2 document with one "kernel" section: a speedup floor, a
/// bit-identity flag, and an alloc ceiling relative to baseline.
Json make_doc(double speedup, bool identical, int allocs) {
  const std::string text = std::string(R"({
    "schema": "dpgreedy-bench-v2",
    "run": {"tier": "quick"},
    "sections": {
      "kernel": {
        "scenario": "dp_kernel",
        "binary": "bm_solvers",
        "thresholds": [
          {"path": "speedup", "op": ">=", "value": 2.0},
          {"path": "bit_identical", "op": "==", "value": true},
          {"path": "allocs", "op": "<=", "baseline": true, "slack_pct": 10}
        ],
        "data": {"speedup": )") +
                           std::to_string(speedup) +
                           ", \"bit_identical\": " +
                           (identical ? "true" : "false") +
                           ", \"allocs\": " + std::to_string(allocs) +
                           "}}}}";
  return parse_json(text);
}

TEST(BenchGate, IdenticalDocumentsPass) {
  const Json doc = make_doc(3.0, true, 100);
  const GateReport report = evaluate_gates(doc, doc);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.failed, 0u);
  EXPECT_EQ(report.passed, 3u);
}

TEST(BenchGate, AbsoluteFloorTrips) {
  const Json baseline = make_doc(3.0, true, 100);
  const Json current = make_doc(1.5, true, 100);  // below the 2.0 floor
  const GateReport report = evaluate_gates(baseline, current);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.failed, 1u);
  EXPECT_EQ(report.passed, 2u);
}

TEST(BenchGate, BooleanFlagTrips) {
  const Json baseline = make_doc(3.0, true, 100);
  const Json current = make_doc(3.0, false, 100);
  const GateReport report = evaluate_gates(baseline, current);
  EXPECT_FALSE(report.ok());
}

TEST(BenchGate, RelativeCeilingHonorsSlack) {
  const Json baseline = make_doc(3.0, true, 100);
  // 109 allocs = +9% over the baseline's 100: inside the 10% slack.
  EXPECT_TRUE(evaluate_gates(baseline, make_doc(3.0, true, 109)).ok());
  // 111 allocs = +11%: outside.
  EXPECT_FALSE(evaluate_gates(baseline, make_doc(3.0, true, 111)).ok());
}

TEST(BenchGate, MissingSectionIsLoudFailure) {
  const Json baseline = make_doc(3.0, true, 100);
  const Json current = parse_json(
      R"({"schema": "dpgreedy-bench-v2", "sections": {}})");
  const GateReport report = evaluate_gates(baseline, current);
  EXPECT_FALSE(report.ok());
  ASSERT_FALSE(report.rows.empty());
  EXPECT_NE(report.rows[0].note.find("missing"), std::string::npos);
}

TEST(BenchGate, MissingMetricIsLoudFailure) {
  const Json baseline = make_doc(3.0, true, 100);
  // Section present but the gated paths are gone entirely.
  const Json current = parse_json(
      R"({"schema": "dpgreedy-bench-v2", "sections": {
           "kernel": {"data": {"unrelated": 1}}}})");
  const GateReport report = evaluate_gates(baseline, current);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.passed, 0u);
  EXPECT_EQ(report.skipped, 0u);
}

TEST(BenchGate, SchemaV1IsRejected) {
  const Json v1 = parse_json(R"({"schema": "dpgreedy-bench-v1"})");
  EXPECT_THROW(require_bench_schema_v2(v1, "baseline"), JsonError);
  const Json no_schema = parse_json(R"({"sections": {}})");
  EXPECT_THROW(require_bench_schema_v2(no_schema, "baseline"), JsonError);
  const Json doc = make_doc(3.0, true, 100);
  EXPECT_NO_THROW(require_bench_schema_v2(doc, "baseline"));
  // evaluate_gates re-checks both sides.
  EXPECT_THROW((void)evaluate_gates(v1, doc), JsonError);
  EXPECT_THROW((void)evaluate_gates(doc, v1), JsonError);
}

TEST(BenchGate, SkipIfRecordsSkipNotPass) {
  const Json baseline = parse_json(R"({
    "schema": "dpgreedy-bench-v2",
    "sections": {"kernel": {
      "thresholds": [
        {"path": "speedup", "op": ">=", "value": 2.0,
         "skip_if": {"path": "isa", "equals": "scalar"}}
      ],
      "data": {"isa": "scalar", "speedup": 1.0}}}})");
  const GateReport report = evaluate_gates(baseline, baseline);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.skipped, 1u);
  EXPECT_EQ(report.passed, 0u);
}

TEST(BenchGate, WildcardFansOutOverRows) {
  const Json baseline = parse_json(R"({
    "schema": "dpgreedy-bench-v2",
    "sections": {"phase1": {
      "thresholds": [{"path": "rows[*].speedup", "op": ">=", "value": 3.0}],
      "data": {"rows": [{"speedup": 10.0}, {"speedup": 2.0},
                        {"speedup": 5.0}]}}}})");
  const GateReport report = evaluate_gates(baseline, baseline);
  EXPECT_EQ(report.rows.size(), 3u);  // one row per array element
  EXPECT_EQ(report.passed, 2u);
  EXPECT_EQ(report.failed, 1u);
}

TEST(BenchGate, RelativeWildcardComparesElementwise) {
  const auto doc = [](double cost0, double cost1) {
    return parse_json(std::string(R"({
      "schema": "dpgreedy-bench-v2",
      "sections": {"solvers": {
        "thresholds": [
          {"path": "rows[*].total_cost", "op": "==", "baseline": true}
        ],
        "data": {"rows": [{"total_cost": )") +
                      std::to_string(cost0) + "}, {\"total_cost\": " +
                      std::to_string(cost1) + "}]}}}}");
  };
  EXPECT_TRUE(evaluate_gates(doc(10.5, 20.25), doc(10.5, 20.25)).ok());
  const GateReport report = evaluate_gates(doc(10.5, 20.25), doc(10.5, 20.5));
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.failed, 1u);
  EXPECT_EQ(report.passed, 1u);
}

TEST(BenchGate, SectionWithoutThresholdsIsInformational) {
  const Json baseline = parse_json(R"({
    "schema": "dpgreedy-bench-v2",
    "sections": {"e2e": {"thresholds": [], "data": {"solve_s": 60.0}}}})");
  const GateReport report = evaluate_gates(baseline, baseline);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.skipped, 1u);
}

TEST(BenchGate, CurrentOnlySectionIsRecordedAsSkip) {
  const Json baseline = parse_json(
      R"({"schema": "dpgreedy-bench-v2", "sections": {}})");
  const Json current = make_doc(3.0, true, 100);
  const GateReport report = evaluate_gates(baseline, current);
  EXPECT_TRUE(report.ok());  // a new section cannot fail an old baseline
  EXPECT_EQ(report.skipped, 1u);
}

TEST(BenchGate, ReportRendersVerdictsAndSummary) {
  const Json baseline = make_doc(3.0, true, 100);
  const std::string ok_table =
      render_gate_report(evaluate_gates(baseline, baseline));
  EXPECT_NE(ok_table.find("PASS"), std::string::npos);
  EXPECT_EQ(ok_table.find("FAIL"), std::string::npos);
  const std::string bad_table =
      render_gate_report(evaluate_gates(baseline, make_doc(1.0, true, 100)));
  EXPECT_NE(bad_table.find("FAIL"), std::string::npos);
}

TEST(BenchGateJson, NumberLexemesSurviveRoundTrip) {
  const Json doc =
      parse_json(R"({"x": 0.607, "y": 142.38, "n": 12345678901})");
  const std::string out = serialize_json(doc);
  EXPECT_NE(out.find("0.607"), std::string::npos);
  EXPECT_NE(out.find("142.38"), std::string::npos);
  EXPECT_NE(out.find("12345678901"), std::string::npos);
}

TEST(BenchGateJson, ParseErrorsCarryPosition) {
  try {
    (void)parse_json("{\"a\": 1,\n  \"b\": }");
    FAIL() << "expected JsonError";
  } catch (const JsonError& error) {
    EXPECT_NE(std::string(error.what()).find("2:"), std::string::npos)
        << error.what();
  }
}

TEST(BenchGateJson, PrettyDepthKeepsSectionsOnOneLine) {
  const Json doc = make_doc(3.0, true, 100);
  const std::string text = serialize_json(doc, 2);
  // Depth 2 pretty-printing: the "kernel" section key starts a line and its
  // whole body (data, thresholds) stays on that line.
  const std::size_t at = text.find("\"kernel\":");
  ASSERT_NE(at, std::string::npos);
  const std::size_t eol = text.find('\n', at);
  EXPECT_NE(text.substr(at, eol - at).find("\"speedup\""), std::string::npos);
  // And it parses back to an equal document.
  EXPECT_TRUE(parse_json(text).equals(doc));
}

TEST(BenchGateResolve, PathsResolveDotsAndIndices) {
  const Json data = parse_json(
      R"({"a": {"b": 7}, "rows": [{"v": 1}, {"v": 2}]})");
  const auto one = resolve_path(data, "a.b");
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0].value->as_double(), 7.0);
  const auto indexed = resolve_path(data, "rows[1].v");
  ASSERT_EQ(indexed.size(), 1u);
  EXPECT_EQ(indexed[0].value->as_double(), 2.0);
  const auto fan = resolve_path(data, "rows[*].v");
  ASSERT_EQ(fan.size(), 2u);
  EXPECT_EQ(fan[0].path, "rows[0].v");
  EXPECT_TRUE(resolve_path(data, "a.missing").empty());
}

TEST(BenchGateRegistry, DeclaredScenariosAreWellFormed) {
  const auto& registry = scenario_registry();
  ASSERT_FALSE(registry.empty());
  bool any_quick = false;
  for (const ScenarioSpec& scenario : registry) {
    EXPECT_FALSE(scenario.name.empty());
    EXPECT_FALSE(scenario.binary.empty());
    EXPECT_FALSE(scenario.sections.empty()) << scenario.name;
    any_quick = any_quick || scenario.quick;
    for (const SectionSpec& section : scenario.sections) {
      EXPECT_FALSE(section.key.empty()) << scenario.name;
      // Every declared gate must be a parseable gate object — evaluate a
      // tiny document against itself so parse_gate sees each one.
      Json sections = Json::object();
      Json sec = Json::object();
      Json thresholds = Json::array();
      for (const Json& gate : section.thresholds) thresholds.push_back(gate);
      sec.set("thresholds", std::move(thresholds));
      sec.set("data", Json::object());
      sections.set(section.key, std::move(sec));
      Json doc = Json::object();
      doc.set("schema", Json::string(kBenchSchemaV2));
      doc.set("sections", std::move(sections));
      // Empty data: gates must FAIL (missing metric), never throw or skip.
      const GateReport report = evaluate_gates(doc, doc);
      if (!section.thresholds.empty()) {
        EXPECT_GT(report.failed, 0u) << scenario.name << "/" << section.key;
      }
    }
  }
  EXPECT_TRUE(any_quick);
}

TEST(BenchGateDocument, BuildAttachesThresholdsAndRendersTrajectory) {
  // Assemble a document the way the runner does, from a parsed fragment.
  const ScenarioSpec& scenario = scenario_registry().front();
  Json fragment = Json::object();
  for (const SectionSpec& section : scenario.sections) {
    fragment.set(section.key, Json::object());
  }
  const Json doc = build_bench_document({{&scenario, fragment}}, "quick");
  require_bench_schema_v2(doc, "built");
  const Json* sections = doc.find("sections");
  ASSERT_NE(sections, nullptr);
  EXPECT_EQ(sections->members().size(), scenario.sections.size());
  const std::string markdown = render_trajectory_markdown(doc);
  EXPECT_NE(markdown.find("Headline metrics"), std::string::npos);

  // A fragment missing a declared section key must throw, not silently
  // produce a baseline without the gated section.
  EXPECT_THROW(
      (void)build_bench_document({{&scenario, Json::object()}}, "quick"),
      JsonError);
}

}  // namespace
}  // namespace dpg::bench
