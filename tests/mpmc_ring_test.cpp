#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "parallel/mpmc_ring.hpp"
#include "util/error.hpp"

namespace dpg {
namespace {

TEST(MpmcRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(MpmcRing<int>(1).capacity(), 2u);
  EXPECT_EQ(MpmcRing<int>(2).capacity(), 2u);
  EXPECT_EQ(MpmcRing<int>(3).capacity(), 4u);
  EXPECT_EQ(MpmcRing<int>(8).capacity(), 8u);
  EXPECT_EQ(MpmcRing<int>(9).capacity(), 16u);
  EXPECT_THROW(MpmcRing<int>(0), InvalidArgument);
}

TEST(MpmcRing, TryPushPopSingleThread) {
  MpmcRing<int> ring(4);
  EXPECT_EQ(ring.size(), 0u);
  for (int i = 0; i < 4; ++i) {
    int v = i;
    EXPECT_TRUE(ring.try_push(v));
  }
  int v = 99;
  EXPECT_FALSE(ring.try_push(v));  // full
  EXPECT_EQ(v, 99);                // value left intact
  EXPECT_EQ(ring.size(), 4u);

  for (int i = 0; i < 4; ++i) {
    int out = -1;
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, i);  // FIFO under a single thread
  }
  int out = -1;
  EXPECT_FALSE(ring.try_pop(out));  // empty
}

TEST(MpmcRing, WrapsAroundManyGenerations) {
  MpmcRing<std::uint64_t> ring(2);
  for (std::uint64_t i = 0; i < 1000; ++i) {
    std::uint64_t v = i;
    ASSERT_TRUE(ring.try_push(v));
    std::uint64_t out = 0;
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, i);
  }
}

TEST(MpmcRing, CloseDrainsPendingThenEndsStream) {
  MpmcRing<int> ring(8);
  for (int i = 0; i < 5; ++i) {
    int v = i;
    ASSERT_TRUE(ring.try_push(v));
  }
  ring.close();
  EXPECT_TRUE(ring.closed());

  int v = 42;
  EXPECT_FALSE(ring.try_push(v));  // closed rejects new pushes

  // Pending elements stay poppable after close.
  for (int i = 0; i < 5; ++i) {
    int out = -1;
    ASSERT_TRUE(ring.pop(out));
    EXPECT_EQ(out, i);
  }
  int out = -1;
  EXPECT_FALSE(ring.pop(out));  // closed + drained: end of stream
}

TEST(MpmcRing, CloseUnblocksWaitingConsumer) {
  MpmcRing<int> ring(2);
  std::atomic<bool> returned{false};
  std::thread consumer([&] {
    int out = 0;
    EXPECT_FALSE(ring.pop(out));
    returned.store(true);
  });
  ring.close();
  consumer.join();
  EXPECT_TRUE(returned.load());
}

TEST(MpmcRing, CloseUnblocksWaitingProducer) {
  MpmcRing<int> ring(2);
  for (int i = 0; i < 2; ++i) {
    int v = i;
    ASSERT_TRUE(ring.try_push(v));
  }
  std::thread producer([&] {
    int v = 99;
    EXPECT_FALSE(ring.push(v));  // full, then closed while waiting
  });
  // Give the producer time to enter its blocking wait, then close.
  while (ring.push_blocked() == 0) std::this_thread::yield();
  ring.close();
  producer.join();
  EXPECT_GE(ring.push_blocked(), 1u);
}

// Many producers, many consumers, tiny ring so every thread hits
// backpressure: every pushed value must be popped exactly once.
TEST(MpmcRing, MpmcDeliversEveryValueExactlyOnceUnderBackpressure) {
  constexpr std::size_t kProducers = 4;
  constexpr std::size_t kConsumers = 4;
  constexpr std::uint64_t kPerProducer = 20000;
  MpmcRing<std::uint64_t> ring(4);  // tiny: forces blocking on both sides

  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&ring, p] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        std::uint64_t v = p * kPerProducer + i;
        ASSERT_TRUE(ring.push(v));
      }
    });
  }

  std::vector<std::vector<std::uint64_t>> got(kConsumers);
  std::vector<std::thread> consumers;
  for (std::size_t c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&ring, &got, c] {
      std::uint64_t out = 0;
      while (ring.pop(out)) got[c].push_back(out);
    });
  }

  for (auto& t : producers) t.join();
  ring.close();
  for (auto& t : consumers) t.join();

  std::vector<std::uint64_t> all;
  for (const auto& g : got) all.insert(all.end(), g.begin(), g.end());
  ASSERT_EQ(all.size(), kProducers * kPerProducer);
  std::sort(all.begin(), all.end());
  for (std::uint64_t i = 0; i < all.size(); ++i) EXPECT_EQ(all[i], i);
}

// A single consumer must see each producer's values in that producer's
// push order (per-producer FIFO through the claimed slots).
TEST(MpmcRing, SingleConsumerSeesPerProducerOrder) {
  constexpr std::size_t kProducers = 3;
  constexpr std::uint64_t kPerProducer = 10000;
  MpmcRing<std::uint64_t> ring(8);

  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&ring, p] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        // Tag the producer in the high bits, the sequence in the low.
        std::uint64_t v = (static_cast<std::uint64_t>(p) << 32) | i;
        ASSERT_TRUE(ring.push(v));
      }
    });
  }

  std::vector<std::uint64_t> next(kProducers, 0);
  std::thread consumer([&] {
    std::uint64_t out = 0;
    while (ring.pop(out)) {
      const std::size_t p = static_cast<std::size_t>(out >> 32);
      const std::uint64_t seq = out & 0xffffffffu;
      ASSERT_LT(p, kProducers);
      EXPECT_EQ(seq, next[p]);
      ++next[p];
    }
  });

  for (auto& t : producers) t.join();
  ring.close();
  consumer.join();
  for (std::size_t p = 0; p < kProducers; ++p) {
    EXPECT_EQ(next[p], kPerProducer);
  }
}

TEST(MpmcRing, MoveOnlyPayloadsMoveThrough) {
  MpmcRing<std::unique_ptr<int>> ring(4);
  auto v = std::make_unique<int>(7);
  ASSERT_TRUE(ring.try_push(v));
  EXPECT_EQ(v, nullptr);  // moved out
  std::unique_ptr<int> out;
  ASSERT_TRUE(ring.try_pop(out));
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(*out, 7);
}

}  // namespace
}  // namespace dpg
