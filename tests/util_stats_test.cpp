#include <gtest/gtest.h>

#include <array>
#include <cmath>

#include "util/error.hpp"
#include "util/stats.hpp"

namespace dpg {
namespace {

TEST(Stats, SummaryMoments) {
  const std::array<double, 4> v{1.0, 2.0, 3.0, 4.0};
  const Summary s = summarize(v);
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_NEAR(s.stddev, std::sqrt(5.0 / 3.0), 1e-12);
}

TEST(Stats, SummaryOfEmptyAndSingleton) {
  EXPECT_EQ(summarize({}).count, 0u);
  const std::array<double, 1> one{7.0};
  const Summary s = summarize(one);
  EXPECT_DOUBLE_EQ(s.mean, 7.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

TEST(Stats, PercentileInterpolates) {
  const std::array<double, 5> v{10.0, 20.0, 30.0, 40.0, 50.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 30.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 50.0);
  EXPECT_DOUBLE_EQ(percentile(v, 25), 20.0);
  EXPECT_DOUBLE_EQ(percentile(v, 12.5), 15.0);
  EXPECT_DOUBLE_EQ(percentile({}, 50), 0.0);
}

TEST(Stats, Confidence95ShrinksWithSampleSize) {
  std::vector<double> small(10, 0.0), large(1000, 0.0);
  for (std::size_t i = 0; i < small.size(); ++i) {
    small[i] = static_cast<double>(i % 2);
  }
  for (std::size_t i = 0; i < large.size(); ++i) {
    large[i] = static_cast<double>(i % 2);
  }
  EXPECT_GT(confidence95(small), confidence95(large));
  EXPECT_EQ(confidence95(std::vector<double>{1.0}), 0.0);
}

TEST(Stats, HistogramBinsAndClamping) {
  Histogram h(0.0, 1.0, 4);
  h.add(0.1);
  h.add(0.3);
  h.add(0.99);
  h.add(-5.0);  // clamps into the first bin
  h.add(5.0);   // clamps into the last bin
  EXPECT_EQ(h.bins[0], 2u);
  EXPECT_EQ(h.bins[1], 1u);
  EXPECT_EQ(h.bins[3], 2u);
  EXPECT_EQ(h.total(), 5u);
  const std::string art = h.render();
  EXPECT_NE(art.find('#'), std::string::npos);
}

TEST(Stats, HistogramRejectsBadConstruction) {
  EXPECT_THROW(Histogram(0.0, 1.0, 0), InvalidArgument);
  EXPECT_THROW(Histogram(1.0, 0.0, 4), InvalidArgument);
}

TEST(Stats, PowerFitRecoversExactLaw) {
  std::vector<double> x, y;
  for (double v = 1.0; v <= 64.0; v *= 2.0) {
    x.push_back(v);
    y.push_back(3.0 * v * v);  // y = 3 x^2
  }
  const PowerFit fit = fit_power_law(x, y);
  EXPECT_NEAR(fit.exponent, 2.0, 1e-9);
  EXPECT_NEAR(fit.coefficient, 3.0, 1e-9);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-9);
}

TEST(Stats, PowerFitValidatesInputs) {
  EXPECT_THROW((void)fit_power_law(std::vector<double>{1.0},
                             std::vector<double>{1.0}),
               InvalidArgument);
  EXPECT_THROW((void)fit_power_law(std::vector<double>{1.0, -2.0},
                             std::vector<double>{1.0, 2.0}),
               InvalidArgument);
  EXPECT_THROW((void)fit_power_law(std::vector<double>{1.0, 2.0},
                             std::vector<double>{1.0}),
               InvalidArgument);
}

}  // namespace
}  // namespace dpg
