// Golden reproduction of the paper's running example (Section V-C, Fig. 7).
// Every number asserted here is taken verbatim from the paper.
#include <gtest/gtest.h>

#include "solver/correlation.hpp"
#include "solver/dp_greedy.hpp"
#include "solver/optimal_offline.hpp"
#include "test_support.hpp"

namespace dpg {
namespace {

using testing::running_example_model;
using testing::running_example_sequence;

constexpr double kTol = 1e-9;

TEST(RunningExample, JaccardIsThreeSevenths) {
  const RequestSequence seq = running_example_sequence();
  const CorrelationAnalysis analysis(seq);
  EXPECT_EQ(seq.item_frequency(0), 5u);
  EXPECT_EQ(seq.item_frequency(1), 5u);
  EXPECT_EQ(seq.pair_frequency(0, 1), 3u);
  EXPECT_NEAR(analysis.jaccard(0, 1), 3.0 / 7.0, kTol);
}

TEST(RunningExample, PairIsPackedAtThetaPointFour) {
  const RequestSequence seq = running_example_sequence();
  const CorrelationAnalysis analysis(seq);
  const Packing packing = greedy_pairing(analysis, /*theta=*/0.4);
  ASSERT_EQ(packing.pairs.size(), 1u);
  EXPECT_EQ(packing.pairs[0].a, 0u);
  EXPECT_EQ(packing.pairs[0].b, 1u);
  EXPECT_TRUE(packing.singles.empty());
}

// Step 4 of Section V-C: the package requests (0.8, 1.4, 4.0) served by the
// optimal off-line algorithm at the 2α rate.
TEST(RunningExample, PackageDpCostIs896) {
  const RequestSequence seq = running_example_sequence();
  const CostModel model = running_example_model();
  const Flow package = make_package_flow(seq, 0, 1);
  ASSERT_EQ(package.size(), 3u);
  const SolveResult solved =
      solve_optimal_offline(package, model, seq.server_count());
  EXPECT_NEAR(solved.raw_cost, 5.6, kTol);  // 8.96 / (2·0.8)
  EXPECT_NEAR(solved.cost, 8.96, kTol);

  const ValidationResult validation = solved.schedule.validate(package);
  EXPECT_TRUE(validation.ok) << validation.message;
  EXPECT_NEAR(solved.schedule.raw_cost(model), 5.6, kTol);
}

// Steps 5–6: the intermediate per-request costs of the DP for the package.
// The paper's C(0.8)=2.88, C(1.4)=3.84, C(4.0)=8.96 are prefix costs; we
// check them by solving the prefix flows.
TEST(RunningExample, PackageDpPrefixCosts) {
  const RequestSequence seq = running_example_sequence();
  const CostModel model = running_example_model();
  Flow package = make_package_flow(seq, 0, 1);

  Flow prefix1{{package.points[0]}, 2};
  EXPECT_NEAR(solve_optimal_offline(prefix1, model, 4).cost, 2.88, kTol);

  Flow prefix2{{package.points[0], package.points[1]}, 2};
  EXPECT_NEAR(solve_optimal_offline(prefix2, model, 4).cost, 3.84, kTol);
}

// Steps 5–6: greedy service of the single-item requests of the package.
TEST(RunningExample, SingletonGreedyCosts) {
  const RequestSequence seq = running_example_sequence();
  const CostModel model = running_example_model();
  const PackageReport report =
      solve_pair_package(seq, model, ItemPair{0, 1, 3.0 / 7.0});

  // d1: 0.5 served by transfer (1.5), 2.6 by package fetch (2αλ = 1.6).
  // d2: 1.1 served by transfer (1.3), 3.2 by package fetch (1.6).
  ASSERT_EQ(report.services.size(), 4u);
  const auto find_service = [&](ItemId item, Time time) {
    for (const SingletonService& s : report.services) {
      if (s.item == item && seq[s.request_index].time == time) return s;
    }
    ADD_FAILURE() << "service not found";
    return SingletonService{};
  };
  const SingletonService d1_first = find_service(0, 0.5);
  EXPECT_EQ(d1_first.choice, ServeChoice::kTransferFromPrev);
  EXPECT_NEAR(d1_first.cost, 1.5, kTol);

  const SingletonService d1_second = find_service(0, 2.6);
  EXPECT_EQ(d1_second.choice, ServeChoice::kPackageFetch);
  EXPECT_NEAR(d1_second.cost, 1.6, kTol);

  const SingletonService d2_first = find_service(1, 1.1);
  EXPECT_EQ(d2_first.choice, ServeChoice::kTransferFromPrev);
  EXPECT_NEAR(d2_first.cost, 1.3, kTol);

  const SingletonService d2_second = find_service(1, 3.2);
  EXPECT_EQ(d2_second.choice, ServeChoice::kPackageFetch);
  EXPECT_NEAR(d2_second.cost, 1.6, kTol);

  EXPECT_NEAR(report.singleton_cost, 3.1 + 2.9, kTol);
  EXPECT_NEAR(report.package_cost, 8.96, kTol);
  EXPECT_NEAR(report.total_cost(), 14.96, kTol);
}

// Step 7: the grand total 14.96 and the ave_cost of Algorithm 1.
TEST(RunningExample, EndToEndTotalIs1496) {
  const RequestSequence seq = running_example_sequence();
  const CostModel model = running_example_model();
  DpGreedyOptions options;
  options.theta = 0.4;
  const DpGreedyResult result = solve_dp_greedy(seq, model, options);

  ASSERT_EQ(result.packages.size(), 1u);
  EXPECT_TRUE(result.singles.empty());
  EXPECT_NEAR(result.total_cost, 14.96, kTol);
  EXPECT_EQ(result.total_item_accesses, 10u);
  EXPECT_NEAR(result.ave_cost, 1.496, kTol);
}

}  // namespace
}  // namespace dpg
