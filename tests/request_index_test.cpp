// The Section-V pre-scan structures (Fig. 8): Q_j lists, pLast snapshots.
#include <gtest/gtest.h>

#include "core/request_index.hpp"
#include "util/error.hpp"

namespace dpg {
namespace {

Flow fig8_like_flow() {
  // Servers: 0 (origin), 1, 2, 3; nodes at 0.5@2, 0.8@1, 1.4@0, 2.6@2, 4.0@1.
  Flow flow;
  flow.points.push_back({2, 0.5, 0});
  flow.points.push_back({1, 0.8, 1});
  flow.points.push_back({0, 1.4, 2});
  flow.points.push_back({2, 2.6, 3});
  flow.points.push_back({1, 4.0, 4});
  return flow;
}

TEST(RequestIndex, OriginIsNodeZero) {
  const RequestIndex index(fig8_like_flow(), 4);
  EXPECT_EQ(index.node_count(), 6u);
  EXPECT_EQ(index.server_of(0), kOriginServer);
  EXPECT_EQ(index.time_of(0), 0.0);
}

TEST(RequestIndex, SnapshotsHoldMostRecentStrictlyBefore) {
  const RequestIndex index(fig8_like_flow(), 4);
  // Node 1 (0.5@2): only the origin exists before it.
  EXPECT_EQ(index.recent_on_server(1, 0), 0);
  EXPECT_EQ(index.recent_on_server(1, 1), RequestIndex::kNone);
  EXPECT_EQ(index.recent_on_server(1, 2), RequestIndex::kNone);
  // Node 4 (2.6@2): server 2 last visited by node 1 (0.5).
  EXPECT_EQ(index.prev_same_server(4), 1);
  EXPECT_EQ(index.recent_on_server(4, 0), 3);  // 1.4@0
  EXPECT_EQ(index.recent_on_server(4, 1), 2);  // 0.8@1
  EXPECT_EQ(index.recent_on_server(4, 3), RequestIndex::kNone);
  // Node 5 (4.0@1): p(i) is node 2 (0.8@1).
  EXPECT_EQ(index.prev_same_server(5), 2);
}

TEST(RequestIndex, SelfIsExcludedFromItsOwnSnapshot) {
  const RequestIndex index(fig8_like_flow(), 4);
  // Node 3 sits on server 0; its snapshot for server 0 must be the origin,
  // not itself.
  EXPECT_EQ(index.recent_on_server(3, 0), 0);
}

TEST(RequestIndex, QueueLinksWalkPerServerHistory) {
  const RequestIndex index(fig8_like_flow(), 4);
  // Server 2's queue: node 1 (0.5) then node 4 (2.6).
  EXPECT_EQ(index.q_tail(2), 4);
  EXPECT_EQ(index.q_prev(4), 1);
  EXPECT_EQ(index.q_prev(1), RequestIndex::kNone);
  EXPECT_EQ(index.q_next(1), 4);
  EXPECT_EQ(index.q_next(4), RequestIndex::kNone);
  // Server 0's queue: origin (node 0) then node 3 (1.4).
  EXPECT_EQ(index.q_tail(0), 3);
  EXPECT_EQ(index.q_prev(3), 0);
  // Server 3 never visited.
  EXPECT_EQ(index.q_tail(3), RequestIndex::kNone);
}

TEST(RequestIndex, SnapshotSpanHasOneEntryPerServer) {
  const RequestIndex index(fig8_like_flow(), 4);
  EXPECT_EQ(index.snapshot(5).size(), 4u);
}

TEST(RequestIndex, RejectsBadInputs) {
  EXPECT_THROW(RequestIndex(fig8_like_flow(), 0), InvalidArgument);
  EXPECT_THROW(RequestIndex(fig8_like_flow(), 2),  // server 3 out of range
               InvalidArgument);
  Flow bad;
  bad.points.push_back({0, 2.0, 0});
  bad.points.push_back({0, 1.0, 1});
  EXPECT_THROW(RequestIndex(bad, 1), InvalidArgument);
}

TEST(RequestIndex, EmptyFlowHasJustTheOrigin) {
  const RequestIndex index(Flow{}, 3);
  EXPECT_EQ(index.node_count(), 1u);
  EXPECT_EQ(index.q_tail(0), 0);
  EXPECT_EQ(index.prev_same_server(0), RequestIndex::kNone);
}

}  // namespace
}  // namespace dpg
