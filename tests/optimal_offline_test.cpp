// Unit tests for the optimal offline DP (solver/optimal_offline).
#include <gtest/gtest.h>

#include "util/error.hpp"
#include "solver/optimal_offline.hpp"
#include "solver/workspace.hpp"
#include "test_support.hpp"

namespace dpg {
namespace {

constexpr double kTol = 1e-9;

CostModel unit_model() { return CostModel{1.0, 1.0, 0.8}; }

TEST(OptimalOffline, EmptyFlowCostsNothing) {
  const Flow flow{{}, 1};
  const SolveResult r = solve_optimal_offline(flow, unit_model(), 3);
  EXPECT_EQ(r.raw_cost, 0.0);
  EXPECT_EQ(r.cost, 0.0);
  EXPECT_TRUE(r.schedule.segments().empty());
}

TEST(OptimalOffline, SingleRequestAtOriginIsPureCache) {
  Flow flow;
  flow.points.push_back({kOriginServer, 2.5, 0});
  const SolveResult r = solve_optimal_offline(flow, unit_model(), 3);
  EXPECT_NEAR(r.raw_cost, 2.5, kTol);  // hold at the origin, no transfer
  EXPECT_TRUE(r.schedule.transfers().empty());
}

TEST(OptimalOffline, SingleRemoteRequestIsCachePlusTransfer) {
  Flow flow;
  flow.points.push_back({2, 2.5, 0});
  const SolveResult r = solve_optimal_offline(flow, unit_model(), 3);
  EXPECT_NEAR(r.raw_cost, 3.5, kTol);  // 2.5μ hold + λ
  EXPECT_EQ(r.schedule.transfers().size(), 1u);
}

TEST(OptimalOffline, RepeatedSameServerRequestsChainCacheLines) {
  Flow flow;
  flow.points.push_back({1, 1.0, 0});
  flow.points.push_back({1, 2.0, 1});
  flow.points.push_back({1, 3.0, 2});
  const SolveResult r = solve_optimal_offline(flow, unit_model(), 2);
  // 1μ hold at origin + λ + 2μ hold at server 1.
  EXPECT_NEAR(r.raw_cost, 4.0, kTol);
  EXPECT_EQ(r.schedule.transfers().size(), 1u);
}

TEST(OptimalOffline, SideTransferOffALineBeatsChaining) {
  // Two interleaved servers: the DP should hold one line on server 1 and
  // side-transfer to server 2 rather than bounce the copy back and forth.
  Flow flow;
  flow.points.push_back({1, 1.0, 0});
  flow.points.push_back({2, 1.1, 1});
  flow.points.push_back({1, 1.2, 2});
  CostModel model{1.0, 0.05, 0.8};  // cheap transfers
  const SolveResult r = solve_optimal_offline(flow, model, 3);
  // Hold origin [0,1] (1μ), transfer to s1; hold s1 [1.0,1.2] (0.2μ);
  // side transfer to s2 at 1.1.  Total = 1.2μ + 3λ... the first transfer
  // plus side transfer plus nothing else: 1.2 + 0.05*2 = 1.3.
  EXPECT_NEAR(r.raw_cost, 1.2 * model.mu + 2 * model.lambda, kTol);
  const ValidationResult v = r.schedule.validate(flow);
  EXPECT_TRUE(v.ok) << v.message;
}

TEST(OptimalOffline, FastAndNaiveRangeMinAgree) {
  Rng rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    const Flow flow = testing::random_flow(rng, 40, 5);
    CostModel model{1.0, 0.25 + 0.25 * static_cast<double>(trial % 16), 0.8};
    OptimalOfflineOptions fast;
    fast.fast_range_min = true;
    OptimalOfflineOptions naive;
    naive.fast_range_min = false;
    const SolveResult a = solve_optimal_offline(flow, model, 5, fast);
    const SolveResult b = solve_optimal_offline(flow, model, 5, naive);
    ASSERT_NEAR(a.raw_cost, b.raw_cost, 1e-9);
  }
}

TEST(OptimalOffline, ScheduleIsAlwaysFeasibleAndMatchesReportedCost) {
  Rng rng(13);
  for (int trial = 0; trial < 100; ++trial) {
    const Flow flow = testing::random_flow(rng, 30, 4);
    CostModel model{1.0, 0.5 + static_cast<double>(trial % 8), 0.8};
    const SolveResult r = solve_optimal_offline(flow, model, 4);
    const ValidationResult v = r.schedule.validate(flow);
    ASSERT_TRUE(v.ok) << v.message;
    ASSERT_NEAR(r.schedule.raw_cost(model), r.raw_cost, 1e-9)
        << "reconstructed schedule should realize the DP objective";
  }
}

TEST(OptimalOffline, PackageMultiplierScalesCost) {
  Rng rng(21);
  const Flow base = testing::random_flow(rng, 12, 3);
  Flow packaged = base;
  packaged.group_size = 2;
  const CostModel model = unit_model();
  const SolveResult single = solve_optimal_offline(base, model, 3);
  const SolveResult pack = solve_optimal_offline(packaged, model, 3);
  EXPECT_NEAR(pack.raw_cost, single.raw_cost, kTol);
  EXPECT_NEAR(pack.cost, 2.0 * model.alpha * single.raw_cost, kTol);
}

TEST(OptimalOffline, ZeroLambdaPrefersTransfersEverywhere) {
  Flow flow;
  flow.points.push_back({1, 1.0, 0});
  flow.points.push_back({2, 5.0, 1});
  CostModel model{1.0, 0.0, 0.8};
  const SolveResult r = solve_optimal_offline(flow, model, 3);
  // Free transfers: chain the copy, pay only the unavoidable cache time.
  EXPECT_NEAR(r.raw_cost, 5.0, kTol);
}

TEST(OptimalOffline, ZeroMuPrefersOneLongLine) {
  Flow flow;
  flow.points.push_back({1, 1.0, 0});
  flow.points.push_back({2, 2.0, 1});
  flow.points.push_back({1, 3.0, 2});
  flow.points.push_back({2, 4.0, 3});
  CostModel model{0.0, 1.0, 0.8};
  const SolveResult r = solve_optimal_offline(flow, model, 3);
  // Free caching: every server needs the copy delivered once: two transfers.
  EXPECT_NEAR(r.raw_cost, 2.0, kTol);
}

TEST(OptimalOffline, RejectsUnsortedFlow) {
  Flow flow;
  flow.points.push_back({1, 2.0, 0});
  flow.points.push_back({1, 1.0, 1});
  EXPECT_THROW((void)solve_optimal_offline(flow, unit_model(), 2), InvalidArgument);
}

TEST(OptimalOffline, SharedWorkspaceMatchesFreshSolves) {
  // One workspace reused across many flows of varying size (growing and
  // shrinking) must reproduce every workspace-free result bit for bit,
  // schedules included.
  Rng rng(321);
  const CostModel model = unit_model();
  SolverWorkspace workspace;
  for (const std::size_t n : {40u, 5u, 120u, 1u, 60u}) {
    const Flow flow = testing::random_flow(rng, n, 5);
    const SolveResult fresh = solve_optimal_offline(flow, model, 5);
    const SolveResult reused =
        solve_optimal_offline(flow, model, 5, {}, &workspace);
    ASSERT_EQ(fresh.raw_cost, reused.raw_cost);
    ASSERT_EQ(fresh.cost, reused.cost);
    ASSERT_EQ(fresh.schedule.segments().size(),
              reused.schedule.segments().size());
    ASSERT_EQ(fresh.schedule.transfers().size(),
              reused.schedule.transfers().size());
    for (std::size_t i = 0; i < fresh.schedule.segments().size(); ++i) {
      ASSERT_EQ(fresh.schedule.segments()[i].server,
                reused.schedule.segments()[i].server);
      ASSERT_EQ(fresh.schedule.segments()[i].begin,
                reused.schedule.segments()[i].begin);
      ASSERT_EQ(fresh.schedule.segments()[i].end,
                reused.schedule.segments()[i].end);
    }
  }
}

TEST(OptimalOffline, WorkspaceReuseCoversBothRangeMinStrategies) {
  Rng rng(654);
  const CostModel model = unit_model();
  OptimalOfflineOptions naive;
  naive.fast_range_min = false;
  SolverWorkspace workspace;
  for (int round = 0; round < 5; ++round) {
    const Flow flow = testing::random_flow(rng, 80, 4);
    const Cost fast =
        solve_optimal_offline(flow, model, 4, {}, &workspace).raw_cost;
    const Cost slow =
        solve_optimal_offline(flow, model, 4, naive, &workspace).raw_cost;
    ASSERT_NEAR(fast, slow, kTol);
  }
}

}  // namespace
}  // namespace dpg
