// Cross-cutting solver invariants: scaling laws, monotonicity, and
// dominance relations that every algorithm in the suite must satisfy.
#include <gtest/gtest.h>

#include <tuple>

#include "solver/baselines.hpp"
#include "solver/dp_greedy.hpp"
#include "solver/greedy.hpp"
#include "solver/lower_bound.hpp"
#include "solver/online.hpp"
#include "solver/optimal_offline.hpp"
#include "test_support.hpp"

namespace dpg {
namespace {

constexpr double kTol = 1e-9;

// Scaling both μ and λ by c scales every cost by c.
TEST(SolverInvariants, CostsAreHomogeneousOfDegreeOneInRates) {
  Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    const Flow flow = testing::random_flow(rng, 25, 4);
    const CostModel base{1.3, 2.7, 0.8};
    const CostModel scaled{1.3 * 3.5, 2.7 * 3.5, 0.8};
    ASSERT_NEAR(solve_optimal_offline(flow, scaled, 4).raw_cost,
                3.5 * solve_optimal_offline(flow, base, 4).raw_cost, 1e-7);
    ASSERT_NEAR(solve_greedy(flow, scaled, 4).raw_cost,
                3.5 * solve_greedy(flow, base, 4).raw_cost, 1e-7);
    ASSERT_NEAR(solve_online_break_even(flow, scaled, 4).raw_cost,
                3.5 * solve_online_break_even(flow, base, 4).raw_cost, 1e-7);
  }
}

// Scaling time by c while dividing μ by c leaves costs unchanged.
TEST(SolverInvariants, TimeDilationInvariance) {
  Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    const Flow flow = testing::random_flow(rng, 20, 3);
    Flow dilated = flow;
    for (ServicePoint& p : dilated.points) p.time *= 4.0;
    const CostModel base{2.0, 3.0, 0.8};
    const CostModel adjusted{0.5, 3.0, 0.8};
    ASSERT_NEAR(solve_optimal_offline(flow, base, 3).raw_cost,
                solve_optimal_offline(dilated, adjusted, 3).raw_cost, 1e-7);
  }
}

// The optimum is monotone in both rates.
TEST(SolverInvariants, OptimalCostMonotoneInRates) {
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    const Flow flow = testing::random_flow(rng, 25, 4);
    const Cost base = solve_optimal_offline(flow, CostModel{1, 1, 0.8}, 4).raw_cost;
    const Cost more_lambda =
        solve_optimal_offline(flow, CostModel{1, 2, 0.8}, 4).raw_cost;
    const Cost more_mu =
        solve_optimal_offline(flow, CostModel{2, 1, 0.8}, 4).raw_cost;
    ASSERT_GE(more_lambda, base - kTol);
    ASSERT_GE(more_mu, base - kTol);
  }
}

// Serving a prefix can never cost more than serving the whole flow.
TEST(SolverInvariants, PrefixMonotonicity) {
  Rng rng(9);
  const CostModel model{1.0, 1.5, 0.8};
  for (int trial = 0; trial < 15; ++trial) {
    const Flow flow = testing::random_flow(rng, 20, 4);
    Cost previous = 0.0;
    for (std::size_t n = 1; n <= flow.size(); ++n) {
      Flow prefix;
      prefix.group_size = flow.group_size;
      prefix.points.assign(flow.points.begin(),
                           flow.points.begin() + static_cast<std::ptrdiff_t>(n));
      const Cost cost = solve_optimal_offline(prefix, model, 4).raw_cost;
      ASSERT_GE(cost, previous - kTol);
      previous = cost;
    }
  }
}

// Removing a request never increases the optimum (subsequence dominance).
TEST(SolverInvariants, SubsequenceDominance) {
  Rng rng(11);
  const CostModel model{1.0, 1.0, 0.8};
  for (int trial = 0; trial < 15; ++trial) {
    const Flow flow = testing::random_flow(rng, 12, 3);
    const Cost full = solve_optimal_offline(flow, model, 3).raw_cost;
    for (std::size_t drop = 0; drop < flow.size(); ++drop) {
      Flow reduced;
      reduced.group_size = flow.group_size;
      for (std::size_t i = 0; i < flow.size(); ++i) {
        if (i != drop) reduced.points.push_back(flow.points[i]);
      }
      ASSERT_LE(solve_optimal_offline(reduced, model, 3).raw_cost, full + kTol);
    }
  }
}

// DP_Greedy never loses to BOTH baselines simultaneously by more than the
// theorem allows, and the Lemma-1 certificate holds end to end.
class CertificateSweep : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(CertificateSweep, Lemma1CertifiesEveryAlgorithm) {
  const auto [alpha, co] = GetParam();
  Rng rng(0x5EED);
  const CostModel model{1.0, 1.5, alpha};
  for (int trial = 0; trial < 10; ++trial) {
    const RequestSequence seq = testing::random_sequence(rng, 80, 4, 4, co);
    const PackedLowerBound bound = packed_lower_bound(seq, model);
    DpGreedyOptions options;
    options.theta = 0.0;
    const DpGreedyResult dpg = solve_dp_greedy(seq, model, options);
    ASSERT_LE(bound.certify_ratio(dpg.total_cost),
              model.approximation_bound() + kTol);
    // The Optimal baseline trivially certifies at 1/α.
    const OptimalBaselineResult optimal = solve_optimal_baseline(seq, model);
    ASSERT_NEAR(bound.certify_ratio(optimal.total_cost), 1.0 / alpha, 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CertificateSweep,
    ::testing::Combine(::testing::Values(0.3, 0.6, 0.9),
                       ::testing::Values(0.2, 0.7)));

// The window-min structure and naive scan agree on the adversarial
// quadratic-window workload too (not just random traces).
TEST(SolverInvariants, AdversarialWindowAgreement) {
  // Local copy of the generator's pattern to avoid a dpg_trace dependency
  // in this binary: round-robin visits over m servers, r rounds.
  const std::size_t m = 64;
  SequenceBuilder builder(m, 1);
  Time t = 0.0;
  for (int round = 0; round < 3; ++round) {
    for (std::size_t s = 0; s < m; ++s) {
      builder.add(static_cast<ServerId>(s), t += 0.5, {0});
    }
  }
  const RequestSequence seq = std::move(builder).build();
  const Flow flow = make_item_flow(seq, 0);
  for (const double lambda : {0.1, 1.0, 10.0, 100.0}) {
    const CostModel model{1.0, lambda, 0.8};
    OptimalOfflineOptions fast, naive;
    fast.fast_range_min = true;
    naive.fast_range_min = false;
    ASSERT_NEAR(solve_optimal_offline(flow, model, m, fast).raw_cost,
                solve_optimal_offline(flow, model, m, naive).raw_cost, 1e-9);
  }
}

}  // namespace
}  // namespace dpg
