#include <gtest/gtest.h>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace dpg {
namespace {

TEST(Strings, SplitKeepsEmptyFields) {
  EXPECT_EQ(split("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(split("x", ','), (std::vector<std::string>{"x"}));
  EXPECT_EQ(split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(Strings, TrimStripsAsciiWhitespace) {
  EXPECT_EQ(trim("  a b \t\r\n"), "a b");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim(" \t "), "");
}

TEST(Strings, JoinInterleavesSeparator) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"only"}, ","), "only");
}

TEST(Strings, StartsWith) {
  EXPECT_TRUE(starts_with("--flag", "--"));
  EXPECT_FALSE(starts_with("-", "--"));
}

TEST(Strings, ParseDoubleAcceptsTrimmedNumbers) {
  EXPECT_DOUBLE_EQ(parse_double(" 1.5 "), 1.5);
  EXPECT_DOUBLE_EQ(parse_double("-2"), -2.0);
  EXPECT_THROW((void)parse_double("abc"), IoError);
  EXPECT_THROW((void)parse_double("1.5x"), IoError);
  EXPECT_THROW((void)parse_double(""), IoError);
}

TEST(Strings, ParseSize) {
  EXPECT_EQ(parse_size("42"), 42u);
  EXPECT_THROW((void)parse_size("-1"), IoError);
  EXPECT_THROW((void)parse_size("1.5"), IoError);
}

TEST(Strings, FormatFixed) {
  EXPECT_EQ(format_fixed(1.23456, 2), "1.23");
  EXPECT_EQ(format_fixed(2.0, 0), "2");
  EXPECT_EQ(format_fixed(-0.5, 3), "-0.500");
}

}  // namespace
}  // namespace dpg
