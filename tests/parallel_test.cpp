#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>

#include "parallel/thread_pool.hpp"

namespace dpg {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.worker_count(), 3u);
  auto f = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, PropagatesExceptionsThroughFutures) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, DrainsQueueOnDestruction) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      (void)pool.submit([&done] { ++done; });
    }
  }
  EXPECT_EQ(done.load(), 64);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(pool, hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) ASSERT_EQ(h.load(), 1);
}

TEST(ParallelFor, ZeroCountIsNoop) {
  ThreadPool pool(2);
  parallel_for(pool, 0, [](std::size_t) { FAIL(); });
}

TEST(ParallelFor, RethrowsFirstBodyException) {
  ThreadPool pool(2);
  EXPECT_THROW(parallel_for(pool, 100,
                            [](std::size_t i) {
                              if (i == 37) throw std::runtime_error("x");
                            }),
               std::runtime_error);
}

TEST(ParallelMap, PreservesOrder) {
  ThreadPool pool(4);
  const std::vector<int> out = parallel_map<int>(
      pool, 100, [](std::size_t i) { return static_cast<int>(i * i); });
  for (std::size_t i = 0; i < out.size(); ++i) {
    ASSERT_EQ(out[i], static_cast<int>(i * i));
  }
}

TEST(ThreadPool, DefaultSizeIsAtLeastOne) {
  ThreadPool pool;
  EXPECT_GE(pool.worker_count(), 1u);
  auto f = pool.submit([] { return 1; });
  EXPECT_EQ(f.get(), 1);
}

}  // namespace
}  // namespace dpg
