#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>

#include "parallel/thread_pool.hpp"

namespace dpg {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.worker_count(), 3u);
  auto f = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, PropagatesExceptionsThroughFutures) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, DrainsQueueOnDestruction) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      (void)pool.submit([&done] { ++done; });
    }
  }
  EXPECT_EQ(done.load(), 64);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(pool, hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) ASSERT_EQ(h.load(), 1);
}

TEST(ParallelFor, ZeroCountIsNoop) {
  ThreadPool pool(2);
  parallel_for(pool, 0, [](std::size_t) { FAIL(); });
}

TEST(ParallelFor, RethrowsFirstBodyException) {
  ThreadPool pool(2);
  EXPECT_THROW(parallel_for(pool, 100,
                            [](std::size_t i) {
                              if (i == 37) throw std::runtime_error("x");
                            }),
               std::runtime_error);
}

TEST(ParallelMap, PreservesOrder) {
  ThreadPool pool(4);
  const std::vector<int> out = parallel_map<int>(
      pool, 100, [](std::size_t i) { return static_cast<int>(i * i); });
  for (std::size_t i = 0; i < out.size(); ++i) {
    ASSERT_EQ(out[i], static_cast<int>(i * i));
  }
}

TEST(ParallelForChunks, ChunksPartitionTheRange) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(777);
  std::atomic<std::size_t> seen_chunks{0};
  std::size_t announced_chunks = 0;
  parallel_for_chunks(
      pool, hits.size(),
      [&](std::size_t, std::size_t begin, std::size_t end) {
        ++seen_chunks;
        ASSERT_LE(begin, end);
        for (std::size_t i = begin; i < end; ++i) ++hits[i];
      },
      [&announced_chunks](std::size_t chunk_count) {
        announced_chunks = chunk_count;
      });
  EXPECT_EQ(seen_chunks.load(), announced_chunks);
  for (const auto& h : hits) ASSERT_EQ(h.load(), 1);
}

TEST(ParallelForChunks, SetupRunsBeforeAnyChunkAndSizesSharedState) {
  ThreadPool pool(3);
  std::vector<std::vector<std::size_t>> per_chunk;
  parallel_for_chunks(
      pool, 500,
      [&](std::size_t chunk, std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          per_chunk[chunk].push_back(i);  // exclusive slot: no locking needed
        }
      },
      [&per_chunk](std::size_t chunk_count) { per_chunk.resize(chunk_count); });
  std::size_t total = 0;
  for (const auto& chunk : per_chunk) total += chunk.size();
  EXPECT_EQ(total, 500u);
}

TEST(ParallelForChunks, ZeroCountSkipsSetupAndBody) {
  ThreadPool pool(2);
  parallel_for_chunks(
      pool, 0, [](std::size_t, std::size_t, std::size_t) { FAIL(); },
      [](std::size_t) { FAIL(); });
}

TEST(ThreadPool, DefaultSizeIsAtLeastOne) {
  ThreadPool pool;
  EXPECT_GE(pool.worker_count(), 1u);
  auto f = pool.submit([] { return 1; });
  EXPECT_EQ(f.get(), 1);
}

}  // namespace
}  // namespace dpg
