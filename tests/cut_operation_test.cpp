// Tests for the Section IV-B cut operation — the machinery behind Eq. (7).
#include <gtest/gtest.h>

#include "solver/cut_operation.hpp"
#include "solver/greedy.hpp"
#include "solver/optimal_offline.hpp"
#include "test_support.hpp"

namespace dpg {
namespace {

constexpr double kTol = 1e-9;

TEST(CutOperation, EmptyFlow) {
  const CutAnalysis analysis = cut_operation(Flow{}, CostModel{1, 1, 0.8}, 2);
  EXPECT_TRUE(analysis.entries.empty());
  EXPECT_EQ(analysis.surviving_count, 0u);
}

TEST(CutOperation, ShortLocalGapsAreRemoved) {
  // Two same-server requests λ/2 apart: case 1.
  Flow flow;
  flow.points.push_back({0, 1.0, 0});
  flow.points.push_back({0, 1.4, 1});
  const CutAnalysis analysis = cut_operation(flow, CostModel{1, 1, 0.8}, 2);
  ASSERT_EQ(analysis.entries.size(), 2u);
  EXPECT_EQ(analysis.entries[0].cut, CutClass::kRemoved);  // gap 1.0 == λ
  EXPECT_EQ(analysis.entries[1].cut, CutClass::kRemoved);  // gap 0.4 < λ
  EXPECT_EQ(analysis.surviving_count, 0u);
  EXPECT_EQ(analysis.trimmed_greedy_cost, 0.0);
}

TEST(CutOperation, LongPredecessorGapsAreTrimmed) {
  Flow flow;
  flow.points.push_back({1, 5.0, 0});  // 5μ from the origin event, > λ
  const CutAnalysis analysis = cut_operation(flow, CostModel{1, 1, 0.8}, 2);
  ASSERT_EQ(analysis.entries.size(), 1u);
  EXPECT_EQ(analysis.entries[0].cut, CutClass::kTrimmed);
  // Trimmed: cache part reduced to λ, plus the transfer λ.
  EXPECT_NEAR(analysis.entries[0].trimmed_greedy_step, 2.0, kTol);
}

TEST(CutOperation, SurvivingGreedyStepsRespectTheTwoLambdaCeiling) {
  Rng rng(3);
  for (int trial = 0; trial < 40; ++trial) {
    const Flow flow = testing::random_flow(rng, 30, 4);
    const CostModel model{1.0, 0.5 + static_cast<double>(trial % 6), 0.8};
    const CutAnalysis analysis = cut_operation(flow, model, 4);
    for (const CutEntry& entry : analysis.entries) {
      if (entry.cut != CutClass::kRemoved) {
        ASSERT_LE(entry.trimmed_greedy_step,
                  analysis.per_request_greedy_ceiling + kTol);
      }
      ASSERT_LE(entry.trimmed_greedy_step, entry.greedy_step + kTol)
          << "cutting may only reduce a step's cost";
    }
    ASSERT_NEAR(analysis.per_request_optimal_floor, model.lambda, kTol);
  }
}

TEST(CutOperation, TrimmedTotalsBoundTheRatioByTwo) {
  // The Eq. (7) chain on random flows: C'_G <= 2 n' λ, and combining with
  // the untrimmed identity greedy <= C'_G + (removed identical costs)
  // yields greedy <= 2 * optimal; we assert the aggregate inequality that
  // the cut analysis is used to prove.
  Rng rng(11);
  for (int trial = 0; trial < 40; ++trial) {
    const Flow flow = testing::random_flow(rng, 25, 3);
    const CostModel model{1.0, 1.0 + static_cast<double>(trial % 4), 0.8};
    const CutAnalysis analysis = cut_operation(flow, model, 3);
    ASSERT_LE(analysis.trimmed_greedy_cost,
              2.0 * model.lambda * static_cast<double>(analysis.surviving_count) +
                  kTol);
    const Cost greedy = solve_greedy(flow, model, 3).raw_cost;
    const Cost optimal = solve_optimal_offline(flow, model, 3).raw_cost;
    ASSERT_LE(greedy, 2.0 * optimal + kTol);
  }
}

TEST(CutOperation, EntryCountMatchesFlowSize) {
  Rng rng(17);
  const Flow flow = testing::random_flow(rng, 12, 3);
  const CutAnalysis analysis = cut_operation(flow, CostModel{1, 2, 0.8}, 3);
  EXPECT_EQ(analysis.entries.size(), flow.size());
}

}  // namespace
}  // namespace dpg
