// Unit tests for Jaccard correlation analysis (Phase 1 ingredients).
#include <gtest/gtest.h>

#include "solver/correlation.hpp"
#include "test_support.hpp"

namespace dpg {
namespace {

constexpr double kTol = 1e-12;

TEST(Jaccard, CountFormulaMatchesEq5) {
  EXPECT_NEAR(jaccard_similarity(5, 5, 3), 3.0 / 7.0, kTol);
  EXPECT_NEAR(jaccard_similarity(4, 4, 4), 1.0, kTol);
  EXPECT_NEAR(jaccard_similarity(3, 5, 0), 0.0, kTol);
  EXPECT_NEAR(jaccard_similarity(0, 0, 0), 0.0, kTol);  // guarded division
}

TEST(Correlation, SelfSimilarityIsOne) {
  const RequestSequence seq = testing::running_example_sequence();
  const CorrelationAnalysis analysis(seq);
  EXPECT_NEAR(analysis.jaccard(0, 0), 1.0, kTol);
  EXPECT_NEAR(analysis.jaccard(1, 1), 1.0, kTol);
}

TEST(Correlation, MatrixIsSymmetric) {
  Rng rng(5);
  const RequestSequence seq = testing::random_sequence(rng, 120, 5, 6);
  const CorrelationAnalysis analysis(seq);
  for (ItemId a = 0; a < 6; ++a) {
    for (ItemId b = 0; b < 6; ++b) {
      ASSERT_NEAR(analysis.jaccard(a, b), analysis.jaccard(b, a), kTol);
    }
  }
}

TEST(Correlation, FrequenciesMatchSequenceCounts) {
  Rng rng(17);
  const RequestSequence seq = testing::random_sequence(rng, 200, 4, 5);
  const CorrelationAnalysis analysis(seq);
  for (ItemId item = 0; item < 5; ++item) {
    ASSERT_EQ(analysis.frequency(item), seq.item_frequency(item));
  }
  for (ItemId a = 0; a < 5; ++a) {
    for (ItemId b = a + 1; b < 5; ++b) {
      ASSERT_EQ(analysis.co_frequency(a, b), seq.pair_frequency(a, b));
    }
  }
}

TEST(Correlation, SortedPairsAreDescendingWithDeterministicTies) {
  Rng rng(23);
  const RequestSequence seq = testing::random_sequence(rng, 150, 4, 7);
  const CorrelationAnalysis analysis(seq);
  const auto& pairs = analysis.sorted_pairs();
  ASSERT_EQ(pairs.size(), 7u * 6u / 2u);
  for (std::size_t i = 1; i < pairs.size(); ++i) {
    const auto& prev = pairs[i - 1];
    const auto& cur = pairs[i];
    ASSERT_TRUE(prev.jaccard > cur.jaccard ||
                (prev.jaccard == cur.jaccard &&
                 std::make_pair(prev.a, prev.b) < std::make_pair(cur.a, cur.b)));
  }
}

TEST(Correlation, JaccardInUnitInterval) {
  Rng rng(31);
  const RequestSequence seq = testing::random_sequence(rng, 300, 6, 8, 0.7);
  const CorrelationAnalysis analysis(seq);
  for (const PairCorrelation& p : analysis.sorted_pairs()) {
    ASSERT_GE(p.jaccard, 0.0);
    ASSERT_LE(p.jaccard, 1.0);
    ASSERT_LE(p.co_freq, std::min(p.freq_a, p.freq_b));
  }
}

TEST(Correlation, FrequentPairsFiltersByThresholdAndCoOccurrence) {
  const RequestSequence seq = testing::running_example_sequence();
  const CorrelationAnalysis analysis(seq);
  const auto frequent = analysis.frequent_pairs(0.3);
  ASSERT_EQ(frequent.size(), 1u);
  EXPECT_EQ(frequent[0].a, 0u);
  EXPECT_EQ(frequent[0].b, 1u);
  EXPECT_TRUE(analysis.frequent_pairs(0.9).empty());
}

TEST(Correlation, SingleItemSequenceHasNoPairs) {
  SequenceBuilder builder(2, 1);
  builder.add(0, 1.0, {0});
  const RequestSequence seq = std::move(builder).build();
  const CorrelationAnalysis analysis(seq);
  EXPECT_TRUE(analysis.sorted_pairs().empty());
}

}  // namespace
}  // namespace dpg
