// End-to-end integration: mobility trace -> correlation -> DP_Greedy /
// baselines -> replay, checking the cross-module contracts the figure
// harnesses rely on.
#include <gtest/gtest.h>

#include "engine/registry.hpp"
#include "mobility/simulator.hpp"
#include "sim/replay.hpp"
#include "solver/baselines.hpp"
#include "solver/dp_greedy.hpp"
#include "solver/group_solver.hpp"
#include "solver/online.hpp"
#include "trace/generators.hpp"
#include "trace/io.hpp"

namespace dpg {
namespace {

constexpr double kTol = 1e-9;

TEST(Integration, MobilityTraceThroughDpGreedyAndReplay) {
  MobilityConfig mobility;
  mobility.duration = 150.0;
  Rng rng(99);
  const RequestSequence seq = simulate_mobility(mobility, rng);
  const CostModel model{1.0, 2.0, 0.8};

  // The engine keeps the package + singleton schedules as replayable plans;
  // the replay must accept every one of them.
  const RunReport report = builtin_registry().run("dp_greedy", seq, model);
  ASSERT_FALSE(report.plans.empty());
  const ReplayMetrics metrics =
      replay_plans(report.plans, model, seq.server_count());
  ASSERT_TRUE(metrics.feasible) << metrics.issue;
  EXPECT_GT(metrics.service_count, 0u);

  // And the report's bits must match the wrapped solver's.
  DpGreedyOptions options;
  options.theta = 0.3;
  EXPECT_EQ(report.total_cost, solve_dp_greedy(seq, model, options).total_cost);
}

TEST(Integration, AlgorithmOrderingOnCorrelatedTraces) {
  // On a strongly correlated trace with a deep discount, the paper's
  // qualitative ordering must hold: Package_Served <= DP_Greedy-ish and
  // both beat the non-packing Optimal; with alpha near 1 the ordering of
  // Package_Served and Optimal flips (Fig. 13's story).
  PairedTraceConfig trace;
  trace.pair_jaccard = {0.8};
  trace.requests_per_pair = 400;
  trace.server_count = 10;
  Rng rng(5);
  const RequestSequence seq = generate_paired_trace(trace, rng);

  const CostModel deep{1.0, 1.0, 0.3};
  DpGreedyOptions options;
  options.theta = 0.3;
  const double dpg_deep = solve_dp_greedy(seq, deep, options).ave_cost;
  const double opt_deep = solve_optimal_baseline(seq, deep).ave_cost;
  const double pack_deep = solve_package_served(seq, deep, 0.3).ave_cost;
  EXPECT_LT(pack_deep, opt_deep);
  EXPECT_LT(dpg_deep, opt_deep);

  const CostModel shallow{1.0, 1.0, 1.0};
  const double opt_shallow = solve_optimal_baseline(seq, shallow).ave_cost;
  const double pack_shallow = solve_package_served(seq, shallow, 0.3).ave_cost;
  EXPECT_GE(pack_shallow + kTol, opt_shallow);
}

TEST(Integration, TraceRoundTripPreservesSolverResults) {
  ZipfTraceConfig config;
  config.request_count = 300;
  Rng rng(17);
  const RequestSequence original = generate_zipf_trace(config, rng);
  const RequestSequence restored = trace_from_csv(
      trace_to_csv(original), original.server_count(), original.item_count());
  const CostModel model{1.0, 1.5, 0.7};
  DpGreedyOptions options;
  options.theta = 0.2;
  const double a = solve_dp_greedy(original, model, options).total_cost;
  const double b = solve_dp_greedy(restored, model, options).total_cost;
  EXPECT_NEAR(a, b, kTol);
}

TEST(Integration, OnlineNeverBeatsOfflinePerItem) {
  MobilityConfig mobility;
  mobility.duration = 120.0;
  Rng rng(23);
  const RequestSequence seq = simulate_mobility(mobility, rng);
  const CostModel model{1.0, 2.0, 0.8};
  for (ItemId item = 0; item < seq.item_count(); ++item) {
    const Flow flow = make_item_flow(seq, item);
    if (flow.empty()) continue;
    const Cost online =
        solve_online_break_even(flow, model, seq.server_count()).raw_cost;
    const Cost offline =
        solve_optimal_offline(flow, model, seq.server_count()).raw_cost;
    ASSERT_GE(online, offline - kTol);
  }
}

TEST(Integration, GroupExtensionNeverWorseThanIgnoringTriples) {
  // A trace where items 0,1,2 co-occur heavily: allowing groups of 3 should
  // not lose to pair-only packing by more than numerical noise... in fact
  // it should usually win under a deep discount.
  SequenceBuilder builder(6, 3);
  Rng rng(31);
  Time t = 0.0;
  for (int i = 0; i < 300; ++i) {
    t += 0.4;
    const auto server = static_cast<ServerId>(rng.next_below(6));
    const double roll = rng.next_double();
    if (roll < 0.7) {
      builder.add(server, t, {0, 1, 2});
    } else if (roll < 0.8) {
      builder.add(server, t, {0});
    } else if (roll < 0.9) {
      builder.add(server, t, {1});
    } else {
      builder.add(server, t, {2});
    }
  }
  const RequestSequence seq = std::move(builder).build();
  const CostModel model{1.0, 1.0, 0.4};
  GroupDpGreedyOptions triple_options;
  triple_options.theta = 0.3;
  triple_options.max_group_size = 3;
  GroupDpGreedyOptions pair_options;
  pair_options.theta = 0.3;
  pair_options.max_group_size = 2;
  const double with_triples =
      solve_group_dp_greedy(seq, model, triple_options).total_cost;
  const double pairs_only =
      solve_group_dp_greedy(seq, model, pair_options).total_cost;
  EXPECT_LT(with_triples, pairs_only * 1.05);
}

}  // namespace
}  // namespace dpg
