// The binary columnar trace format (trace/dpt.hpp): exact round-trips for
// every generator family in both open modes (mmap zero-copy and untrusting
// read), CSV ↔ .dpt interchange byte-identity, the XXH64 checksum against
// its published vectors, and one test per corruption class — each must fail
// with a clean FormatError naming the file, never a crash or a garbage
// sequence.
#include <gtest/gtest.h>

#include "test_support.hpp"

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "mobility/simulator.hpp"
#include "trace/dpt.hpp"
#include "trace/generators.hpp"
#include "trace/io.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace dpg {
namespace {

using testing::same_sequence;

std::string temp_path(const std::string& name) {
  // gtest_discover_tests registers every TEST as its own ctest entry, so
  // under `ctest -j` several processes share TempDir() concurrently; a fixed
  // filename collides across them (and the DptCorruption fixture reuses its
  // path in every test).  Qualify with the running test's name and the pid
  // so each test in each process owns a distinct file.
  const ::testing::TestInfo* info =
      ::testing::UnitTest::GetInstance()->current_test_info();
  std::string unique;
  if (info != nullptr) {
    unique = std::string(info->test_suite_name()) + "_" + info->name() + "_";
    for (char& c : unique) {
      if (c == '/') c = '_';
    }
  }
  unique += std::to_string(::getpid()) + "_";
  return ::testing::TempDir() + unique + name;
}

std::string read_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void write_bytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

/// One parsed 40-byte column-table row (layout per docs/FORMAT.md).
struct DescriptorView {
  std::size_t row = 0;  // byte offset of the descriptor within the file
  std::uint32_t element_size = 0;
  std::uint64_t element_count = 0;
  std::uint64_t byte_offset = 0;
  std::uint64_t byte_length = 0;
};

DescriptorView find_descriptor(const std::string& bytes, std::uint32_t want) {
  std::uint32_t count = 0;
  std::memcpy(&count, bytes.data() + 56, sizeof count);
  for (std::uint32_t d = 0; d < count; ++d) {
    const std::size_t row = 64 + d * 40u;
    std::uint32_t id = 0;
    std::memcpy(&id, bytes.data() + row, sizeof id);
    if (id != want) continue;
    DescriptorView view;
    view.row = row;
    std::memcpy(&view.element_size, bytes.data() + row + 4, 4);
    std::memcpy(&view.element_count, bytes.data() + row + 8, 8);
    std::memcpy(&view.byte_offset, bytes.data() + row + 16, 8);
    std::memcpy(&view.byte_length, bytes.data() + row + 24, 8);
    return view;
  }
  ADD_FAILURE() << "descriptor with id " << want << " not found";
  return {};
}

/// Recomputes a column's stored checksum after its payload was edited —
/// what a hostile writer would do, so checksums alone must not be trusted.
void reseal_column(std::string& bytes, const DescriptorView& desc) {
  const std::uint64_t sum =
      dpt_checksum(bytes.data() + desc.byte_offset,
                   static_cast<std::size_t>(desc.byte_length));
  std::memcpy(bytes.data() + desc.row + 32, &sum, sizeof sum);
}

/// Round-trips `original` through a .dpt file in both open modes and checks
/// exact structural equality plus CSV byte-identity of the re-serialization.
void expect_dpt_roundtrip(const RequestSequence& original,
                          const std::string& stem) {
  const std::string path = temp_path(stem + ".dpt");
  write_trace_dpt(path, original);

  DptReadOptions mapped;
  mapped.mode = DptOpenMode::kMap;
  const RequestSequence via_map = read_trace_dpt(path, mapped);
  EXPECT_TRUE(via_map.borrows_storage());
  EXPECT_TRUE(same_sequence(original, via_map));
  EXPECT_EQ(trace_to_csv(original), trace_to_csv(via_map));

  DptReadOptions copied;
  copied.mode = DptOpenMode::kRead;
  const RequestSequence via_read = read_trace_dpt(path, copied);
  EXPECT_FALSE(via_read.borrows_storage());
  EXPECT_TRUE(same_sequence(original, via_read));
  EXPECT_EQ(trace_to_csv(original), trace_to_csv(via_read));

  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Checksum.

TEST(DptChecksum, MatchesPublishedXxh64Vectors) {
  // XXH64 one-shot vectors (xxHash reference implementation, seed 0).
  EXPECT_EQ(dpt_checksum("", 0), 0xEF46DB3751D8E999ULL);
  EXPECT_EQ(dpt_checksum("a", 1), 0xD24EC4F1A98C6E5BULL);
}

TEST(DptChecksum, SeparatesNearbyInputs) {
  const std::string base(1000, 'x');
  std::string flipped = base;
  flipped[500] ^= 1;
  EXPECT_NE(dpt_checksum(base.data(), base.size()),
            dpt_checksum(flipped.data(), flipped.size()));
  EXPECT_NE(dpt_checksum(base.data(), base.size()),
            dpt_checksum(base.data(), base.size() - 1));
  EXPECT_NE(dpt_checksum(base.data(), base.size(), /*seed=*/0),
            dpt_checksum(base.data(), base.size(), /*seed=*/1));
  EXPECT_EQ(dpt_checksum(base.data(), base.size()),
            dpt_checksum(base.data(), base.size()));
}

// ---------------------------------------------------------------------------
// Round-trips, one per generator family.

TEST(DptRoundTrip, RunningExampleIsExact) {
  expect_dpt_roundtrip(testing::running_example_sequence(), "dpt_running");
}

TEST(DptRoundTrip, ZipfTraceIsExact) {
  ZipfTraceConfig config;
  config.request_count = 400;
  Rng rng(11);
  expect_dpt_roundtrip(generate_zipf_trace(config, rng), "dpt_zipf");
}

TEST(DptRoundTrip, PairedTraceIsExact) {
  PairedTraceConfig config;
  config.requests_per_pair = 80;
  Rng rng(12);
  expect_dpt_roundtrip(generate_paired_trace(config, rng), "dpt_paired");
}

TEST(DptRoundTrip, UniformTraceIsExact) {
  UniformTraceConfig config;
  config.request_count = 300;
  Rng rng(15);
  expect_dpt_roundtrip(generate_uniform_trace(config, rng), "dpt_uniform");
}

TEST(DptRoundTrip, BurstyTraceIsExact) {
  BurstyTraceConfig config;
  Rng rng(13);
  expect_dpt_roundtrip(generate_bursty_trace(config, rng), "dpt_bursty");
}

TEST(DptRoundTrip, MobilityTraceIsExact) {
  MobilityConfig config;
  config.duration = 50.0;
  Rng rng(14);
  expect_dpt_roundtrip(simulate_mobility(config, rng), "dpt_mobility");
}

TEST(DptRoundTrip, EmptySequenceIsExact) {
  SequenceBuilder builder(/*server_count=*/3, /*item_count=*/2);
  expect_dpt_roundtrip(std::move(builder).build(), "dpt_empty");
}

TEST(DptRoundTrip, CsvToDptToCsvIsByteIdentical) {
  ZipfTraceConfig config;
  config.request_count = 500;
  Rng rng(16);
  const RequestSequence original = generate_zipf_trace(config, rng);

  const std::string csv_path = temp_path("dpt_interchange.csv");
  const std::string dpt_path = temp_path("dpt_interchange.dpt");
  write_trace_file(csv_path, original);

  // CSV → .dpt → CSV must reproduce the CSV bytes exactly (doubles are
  // stored verbatim in the binary, so nothing can drift).
  write_trace_dpt(dpt_path, read_trace_file(csv_path));
  const std::string csv_before = read_bytes(csv_path);
  write_trace_file(csv_path, read_trace_dpt(dpt_path));
  EXPECT_EQ(csv_before, read_bytes(csv_path));

  std::remove(csv_path.c_str());
  std::remove(dpt_path.c_str());
}

TEST(DptRoundTrip, WriteIsDeterministic) {
  const RequestSequence seq = testing::running_example_sequence();
  const std::string a = temp_path("dpt_det_a.dpt");
  const std::string b = temp_path("dpt_det_b.dpt");
  write_trace_dpt(a, seq);
  write_trace_dpt(b, seq);
  EXPECT_EQ(read_bytes(a), read_bytes(b));
  std::remove(a.c_str());
  std::remove(b.c_str());
}

// ---------------------------------------------------------------------------
// The auto-dispatching entry points and dimension widening.

TEST(DptAuto, ExtensionPicksTheFormat) {
  EXPECT_TRUE(is_dpt_path("trace.dpt"));
  EXPECT_TRUE(is_dpt_path("TRACE.DPT"));
  EXPECT_FALSE(is_dpt_path("trace.csv"));
  EXPECT_FALSE(is_dpt_path("dpt"));

  const RequestSequence seq = testing::running_example_sequence();
  const std::string csv_path = temp_path("dpt_auto.csv");
  const std::string dpt_path = temp_path("dpt_auto.dpt");
  write_trace_auto(csv_path, seq);
  write_trace_auto(dpt_path, seq);
  EXPECT_TRUE(same_sequence(seq, read_trace_auto(csv_path)));
  EXPECT_TRUE(same_sequence(seq, read_trace_auto(dpt_path)));
  // The .csv really is text and the .dpt really is binary.
  EXPECT_EQ(read_bytes(csv_path).substr(0, 6), "server");
  EXPECT_EQ(read_bytes(dpt_path).substr(0, 8), "DPTRACE1");
  std::remove(csv_path.c_str());
  std::remove(dpt_path.c_str());
}

TEST(DptAuto, MinimumCountsWidenTheDimensions) {
  const RequestSequence seq = testing::running_example_sequence();
  const std::string path = temp_path("dpt_widen.dpt");
  write_trace_dpt(path, seq);
  const RequestSequence widened =
      read_trace_auto(path, /*min_server_count=*/10, /*min_item_count=*/5);
  EXPECT_EQ(widened.server_count(), 10u);
  EXPECT_EQ(widened.item_count(), 5u);
  ASSERT_EQ(widened.size(), seq.size());
  for (std::size_t i = 0; i < seq.size(); ++i) {
    EXPECT_EQ(widened[i].server, seq[i].server);
    EXPECT_EQ(widened[i].time, seq[i].time);
  }
  std::remove(path.c_str());
}

TEST(DptAuto, ProbeReportsTheHeaderCounts) {
  const RequestSequence seq = testing::running_example_sequence();
  const std::string path = temp_path("dpt_probe.dpt");
  write_trace_dpt(path, seq);
  const DptInfo info = probe_trace_dpt(path);
  EXPECT_EQ(info.version, kDptVersion);
  EXPECT_EQ(info.request_count, seq.size());
  EXPECT_EQ(info.server_count, seq.server_count());
  EXPECT_EQ(info.item_count, seq.item_count());
  EXPECT_EQ(info.item_access_count, seq.total_item_accesses());
  EXPECT_EQ(info.file_bytes, read_bytes(path).size());
  std::remove(path.c_str());
}

TEST(DptAuto, ProbeAndReadHandleLargeColumnTables) {
  // Forward compat allows arbitrarily many appended (unknown) columns, so
  // the probe must size its header read from the header_bytes field — a
  // fixed prefix cap would reject a valid file whose table exceeds it.
  const RequestSequence seq = testing::running_example_sequence();
  const std::string path = temp_path("dpt_bigtable.dpt");
  write_trace_dpt(path, seq);
  const std::string bytes = read_bytes(path);

  constexpr std::size_t kKnown = 6;
  constexpr std::size_t kExtra = 1700;  // table of ~68 KiB, past 64 KiB
  std::uint64_t old_header_bytes = 0;
  std::memcpy(&old_header_bytes, bytes.data() + 16, 8);
  const auto align64 = [](std::uint64_t v) { return (v + 63) / 64 * 64; };
  const std::size_t old_payload = align64(old_header_bytes);
  const std::uint64_t new_header_bytes = 64 + (kKnown + kExtra) * 40;
  const std::size_t new_payload = align64(new_header_bytes);
  const std::uint64_t delta = new_payload - old_payload;

  std::string out = bytes.substr(0, 64 + kKnown * 40);
  std::memcpy(out.data() + 16, &new_header_bytes, 8);
  const std::uint32_t column_count = kKnown + kExtra;
  std::memcpy(out.data() + 56, &column_count, 4);
  for (std::size_t d = 0; d < kKnown; ++d) {  // shift the payload offsets
    std::uint64_t off = 0;
    std::memcpy(&off, out.data() + 64 + d * 40 + 16, 8);
    off += delta;
    std::memcpy(out.data() + 64 + d * 40 + 16, &off, 8);
  }
  for (std::size_t e = 0; e < kExtra; ++e) {  // unknown, empty columns
    char desc[40] = {};
    const std::uint32_t id = 1000 + static_cast<std::uint32_t>(e);
    const std::uint32_t element_size = 8;
    const std::uint64_t payload_start = new_payload;
    const std::uint64_t empty_sum = dpt_checksum("", 0);
    std::memcpy(desc + 0, &id, 4);
    std::memcpy(desc + 4, &element_size, 4);
    std::memcpy(desc + 16, &payload_start, 8);
    std::memcpy(desc + 32, &empty_sum, 8);
    out.append(desc, sizeof desc);
  }
  out.resize(new_payload, '\0');
  out += bytes.substr(old_payload);
  write_bytes(path, out);

  const DptInfo info = probe_trace_dpt(path);
  EXPECT_EQ(info.request_count, seq.size());
  EXPECT_EQ(info.column_count, kKnown + kExtra);
  EXPECT_TRUE(same_sequence(seq, read_trace_dpt(path)));
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// A mapped sequence behaves like a value type.

TEST(DptBorrowed, CopyAndMoveStayUsable) {
  const RequestSequence seq = testing::running_example_sequence();
  const std::string path = temp_path("dpt_borrow.dpt");
  write_trace_dpt(path, seq);

  RequestSequence mapped = read_trace_dpt(path);
  ASSERT_TRUE(mapped.borrows_storage());

  const RequestSequence copy = mapped;           // shares the mapping keeper
  RequestSequence moved = std::move(mapped);     // steals it
  EXPECT_TRUE(same_sequence(seq, copy));
  EXPECT_TRUE(same_sequence(seq, moved));

  // The mapping outlives the file: the keeper pins the pages.
  std::remove(path.c_str());
  EXPECT_TRUE(same_sequence(seq, moved));
  EXPECT_EQ(moved.item_frequency(0), seq.item_frequency(0));
}

// ---------------------------------------------------------------------------
// Corruption: every damaged file fails with a FormatError naming the path.

class DptCorruption : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = temp_path("dpt_corrupt.dpt");
    write_trace_dpt(path_, testing::running_example_sequence());
    bytes_ = read_bytes(path_);
    ASSERT_GT(bytes_.size(), 64u);
  }
  void TearDown() override { std::remove(path_.c_str()); }

  /// Writes `bytes` to the file and expects both open modes to throw a
  /// FormatError whose message names the file.
  void expect_rejected(const std::string& bytes) {
    write_bytes(path_, bytes);
    for (const DptOpenMode mode : {DptOpenMode::kMap, DptOpenMode::kRead}) {
      DptReadOptions options;
      options.mode = mode;
      try {
        (void)read_trace_dpt(path_, options);
        FAIL() << "expected FormatError";
      } catch (const FormatError& error) {
        EXPECT_NE(std::string(error.what()).find(path_), std::string::npos)
            << error.what();
      }
    }
  }

  std::string path_;
  std::string bytes_;
};

TEST_F(DptCorruption, EmptyFile) { expect_rejected(""); }

TEST_F(DptCorruption, TruncatedHeader) {
  expect_rejected(bytes_.substr(0, 32));
}

TEST_F(DptCorruption, TruncatedColumns) {
  expect_rejected(bytes_.substr(0, bytes_.size() / 2));
  expect_rejected(bytes_.substr(0, bytes_.size() - 1));
}

TEST_F(DptCorruption, WrongMagic) {
  std::string bytes = bytes_;
  bytes[0] = 'X';
  expect_rejected(bytes);
}

TEST_F(DptCorruption, FutureVersion) {
  std::string bytes = bytes_;
  bytes[12] = static_cast<char>(0x7F);  // u32 version field little-endian
  expect_rejected(bytes);
}

TEST_F(DptCorruption, FlippedColumnByte) {
  // Damage a payload byte near the end (inside the last column) — only the
  // checksum can catch this, which is the point of having one.
  std::string bytes = bytes_;
  bytes[bytes.size() - 5] = static_cast<char>(bytes[bytes.size() - 5] ^ 0x40);
  expect_rejected(bytes);
}

TEST_F(DptCorruption, FlippedChecksumByte) {
  // Damage a stored checksum in the column table instead of the payload.
  std::string bytes = bytes_;
  bytes[64 + 32] = static_cast<char>(bytes[64 + 32] ^ 0x01);
  expect_rejected(bytes);
}

TEST_F(DptCorruption, DescriptorOffsetOverflowIsRejected) {
  // byte_offset + byte_length wrapping past 2^64 must not pass the bounds
  // check and hand verify_checksums a wild pointer.
  std::string bytes = bytes_;
  const DescriptorView servers = find_descriptor(bytes, /*id=*/1);
  const std::uint64_t wild = 0xFFFFFFFFFFFFFFC0ULL;  // 64-byte aligned
  std::memcpy(bytes.data() + servers.row + 16, &wild, sizeof wild);
  expect_rejected(bytes);
}

TEST_F(DptCorruption, DescriptorLengthWrapIsRejected) {
  // element_count × element_size wraps to 0 (mod 2^64), "matching" a zero
  // byte_length; the divide-based shape check must reject it.
  std::string bytes = bytes_;
  const DescriptorView servers = find_descriptor(bytes, /*id=*/1);
  const std::uint64_t huge = 0x4000000000000000ULL;  // 2^62 × 4 ≡ 0
  const std::uint64_t zero = 0;
  std::memcpy(bytes.data() + servers.row + 8, &huge, sizeof huge);
  std::memcpy(bytes.data() + servers.row + 24, &zero, sizeof zero);
  expect_rejected(bytes);
}

TEST_F(DptCorruption, ResealedOffsetsPastThePoolAreRejected) {
  // A hostile writer can recompute checksums, so checksum validity must
  // not imply content validity: an item_offsets entry pointing past the
  // items pool must be caught structurally in both open modes.
  std::string bytes = bytes_;
  const DescriptorView offsets = find_descriptor(bytes, /*id=*/3);
  ASSERT_GT(offsets.element_count, 0u);
  const std::uint64_t past = std::uint64_t{1} << 60;
  std::memcpy(bytes.data() + offsets.byte_offset +
                  (offsets.element_count - 1) * 8,
              &past, sizeof past);
  reseal_column(bytes, offsets);
  expect_rejected(bytes);
}

TEST_F(DptCorruption, ResealedServerIdOutOfRangeIsRejected) {
  // Server ids index per-server solver state downstream, so even the
  // trusting adopt_columns path must range-check them.
  std::string bytes = bytes_;
  const DescriptorView servers = find_descriptor(bytes, /*id=*/1);
  ASSERT_GT(servers.element_count, 0u);
  const std::uint32_t bogus = 0xFFFFu;
  std::memcpy(bytes.data() + servers.byte_offset, &bogus, sizeof bogus);
  reseal_column(bytes, servers);
  expect_rejected(bytes);
}

TEST_F(DptCorruption, ChecksumVerificationCanBeDisabledForValidStructure) {
  // With verify_checksums off a payload flip in the times column goes
  // through (the structural checks still hold); this documents that the
  // flag only skips integrity, never structure.  The times column offset
  // comes from the descriptor table: 40-byte rows from byte 64, layout
  // {u32 id, u32 element_size, u64 count, u64 offset, u64 length, u64 sum}.
  std::uint64_t times_offset = 0;
  for (std::size_t d = 0; d < 6; ++d) {
    const std::size_t row = 64 + d * 40;
    std::uint32_t id = 0;
    std::memcpy(&id, bytes_.data() + row, sizeof(id));
    if (id == 2) {
      std::memcpy(&times_offset, bytes_.data() + row + 16,
                  sizeof(times_offset));
    }
  }
  ASSERT_GT(times_offset, 0u);
  std::string bytes = bytes_;
  // Flip a low mantissa bit of times[0]: logically wrong, structurally fine.
  bytes[times_offset] = static_cast<char>(bytes[times_offset] ^ 0x01);
  write_bytes(path_, bytes);
  DptReadOptions options;
  options.verify_checksums = false;
  const RequestSequence seq = read_trace_dpt(path_, options);
  EXPECT_EQ(seq.size(), testing::running_example_sequence().size());
}

}  // namespace
}  // namespace dpg
