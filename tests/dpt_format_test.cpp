// The binary columnar trace format (trace/dpt.hpp): exact round-trips for
// every generator family in both open modes (mmap zero-copy and untrusting
// read), CSV ↔ .dpt interchange byte-identity, the XXH64 checksum against
// its published vectors, and one test per corruption class — each must fail
// with a clean FormatError naming the file, never a crash or a garbage
// sequence.
#include <gtest/gtest.h>

#include "test_support.hpp"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "mobility/simulator.hpp"
#include "trace/dpt.hpp"
#include "trace/generators.hpp"
#include "trace/io.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace dpg {
namespace {

using testing::same_sequence;

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

std::string read_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void write_bytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

/// Round-trips `original` through a .dpt file in both open modes and checks
/// exact structural equality plus CSV byte-identity of the re-serialization.
void expect_dpt_roundtrip(const RequestSequence& original,
                          const std::string& stem) {
  const std::string path = temp_path(stem + ".dpt");
  write_trace_dpt(path, original);

  DptReadOptions mapped;
  mapped.mode = DptOpenMode::kMap;
  const RequestSequence via_map = read_trace_dpt(path, mapped);
  EXPECT_TRUE(via_map.borrows_storage());
  EXPECT_TRUE(same_sequence(original, via_map));
  EXPECT_EQ(trace_to_csv(original), trace_to_csv(via_map));

  DptReadOptions copied;
  copied.mode = DptOpenMode::kRead;
  const RequestSequence via_read = read_trace_dpt(path, copied);
  EXPECT_FALSE(via_read.borrows_storage());
  EXPECT_TRUE(same_sequence(original, via_read));
  EXPECT_EQ(trace_to_csv(original), trace_to_csv(via_read));

  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Checksum.

TEST(DptChecksum, MatchesPublishedXxh64Vectors) {
  // XXH64 one-shot vectors (xxHash reference implementation, seed 0).
  EXPECT_EQ(dpt_checksum("", 0), 0xEF46DB3751D8E999ULL);
  EXPECT_EQ(dpt_checksum("a", 1), 0xD24EC4F1A98C6E5BULL);
}

TEST(DptChecksum, SeparatesNearbyInputs) {
  const std::string base(1000, 'x');
  std::string flipped = base;
  flipped[500] ^= 1;
  EXPECT_NE(dpt_checksum(base.data(), base.size()),
            dpt_checksum(flipped.data(), flipped.size()));
  EXPECT_NE(dpt_checksum(base.data(), base.size()),
            dpt_checksum(base.data(), base.size() - 1));
  EXPECT_NE(dpt_checksum(base.data(), base.size(), /*seed=*/0),
            dpt_checksum(base.data(), base.size(), /*seed=*/1));
  EXPECT_EQ(dpt_checksum(base.data(), base.size()),
            dpt_checksum(base.data(), base.size()));
}

// ---------------------------------------------------------------------------
// Round-trips, one per generator family.

TEST(DptRoundTrip, RunningExampleIsExact) {
  expect_dpt_roundtrip(testing::running_example_sequence(), "dpt_running");
}

TEST(DptRoundTrip, ZipfTraceIsExact) {
  ZipfTraceConfig config;
  config.request_count = 400;
  Rng rng(11);
  expect_dpt_roundtrip(generate_zipf_trace(config, rng), "dpt_zipf");
}

TEST(DptRoundTrip, PairedTraceIsExact) {
  PairedTraceConfig config;
  config.requests_per_pair = 80;
  Rng rng(12);
  expect_dpt_roundtrip(generate_paired_trace(config, rng), "dpt_paired");
}

TEST(DptRoundTrip, UniformTraceIsExact) {
  UniformTraceConfig config;
  config.request_count = 300;
  Rng rng(15);
  expect_dpt_roundtrip(generate_uniform_trace(config, rng), "dpt_uniform");
}

TEST(DptRoundTrip, BurstyTraceIsExact) {
  BurstyTraceConfig config;
  Rng rng(13);
  expect_dpt_roundtrip(generate_bursty_trace(config, rng), "dpt_bursty");
}

TEST(DptRoundTrip, MobilityTraceIsExact) {
  MobilityConfig config;
  config.duration = 50.0;
  Rng rng(14);
  expect_dpt_roundtrip(simulate_mobility(config, rng), "dpt_mobility");
}

TEST(DptRoundTrip, EmptySequenceIsExact) {
  SequenceBuilder builder(/*server_count=*/3, /*item_count=*/2);
  expect_dpt_roundtrip(std::move(builder).build(), "dpt_empty");
}

TEST(DptRoundTrip, CsvToDptToCsvIsByteIdentical) {
  ZipfTraceConfig config;
  config.request_count = 500;
  Rng rng(16);
  const RequestSequence original = generate_zipf_trace(config, rng);

  const std::string csv_path = temp_path("dpt_interchange.csv");
  const std::string dpt_path = temp_path("dpt_interchange.dpt");
  write_trace_file(csv_path, original);

  // CSV → .dpt → CSV must reproduce the CSV bytes exactly (doubles are
  // stored verbatim in the binary, so nothing can drift).
  write_trace_dpt(dpt_path, read_trace_file(csv_path));
  const std::string csv_before = read_bytes(csv_path);
  write_trace_file(csv_path, read_trace_dpt(dpt_path));
  EXPECT_EQ(csv_before, read_bytes(csv_path));

  std::remove(csv_path.c_str());
  std::remove(dpt_path.c_str());
}

TEST(DptRoundTrip, WriteIsDeterministic) {
  const RequestSequence seq = testing::running_example_sequence();
  const std::string a = temp_path("dpt_det_a.dpt");
  const std::string b = temp_path("dpt_det_b.dpt");
  write_trace_dpt(a, seq);
  write_trace_dpt(b, seq);
  EXPECT_EQ(read_bytes(a), read_bytes(b));
  std::remove(a.c_str());
  std::remove(b.c_str());
}

// ---------------------------------------------------------------------------
// The auto-dispatching entry points and dimension widening.

TEST(DptAuto, ExtensionPicksTheFormat) {
  EXPECT_TRUE(is_dpt_path("trace.dpt"));
  EXPECT_TRUE(is_dpt_path("TRACE.DPT"));
  EXPECT_FALSE(is_dpt_path("trace.csv"));
  EXPECT_FALSE(is_dpt_path("dpt"));

  const RequestSequence seq = testing::running_example_sequence();
  const std::string csv_path = temp_path("dpt_auto.csv");
  const std::string dpt_path = temp_path("dpt_auto.dpt");
  write_trace_auto(csv_path, seq);
  write_trace_auto(dpt_path, seq);
  EXPECT_TRUE(same_sequence(seq, read_trace_auto(csv_path)));
  EXPECT_TRUE(same_sequence(seq, read_trace_auto(dpt_path)));
  // The .csv really is text and the .dpt really is binary.
  EXPECT_EQ(read_bytes(csv_path).substr(0, 6), "server");
  EXPECT_EQ(read_bytes(dpt_path).substr(0, 8), "DPTRACE1");
  std::remove(csv_path.c_str());
  std::remove(dpt_path.c_str());
}

TEST(DptAuto, MinimumCountsWidenTheDimensions) {
  const RequestSequence seq = testing::running_example_sequence();
  const std::string path = temp_path("dpt_widen.dpt");
  write_trace_dpt(path, seq);
  const RequestSequence widened =
      read_trace_auto(path, /*min_server_count=*/10, /*min_item_count=*/5);
  EXPECT_EQ(widened.server_count(), 10u);
  EXPECT_EQ(widened.item_count(), 5u);
  ASSERT_EQ(widened.size(), seq.size());
  for (std::size_t i = 0; i < seq.size(); ++i) {
    EXPECT_EQ(widened[i].server, seq[i].server);
    EXPECT_EQ(widened[i].time, seq[i].time);
  }
  std::remove(path.c_str());
}

TEST(DptAuto, ProbeReportsTheHeaderCounts) {
  const RequestSequence seq = testing::running_example_sequence();
  const std::string path = temp_path("dpt_probe.dpt");
  write_trace_dpt(path, seq);
  const DptInfo info = probe_trace_dpt(path);
  EXPECT_EQ(info.version, kDptVersion);
  EXPECT_EQ(info.request_count, seq.size());
  EXPECT_EQ(info.server_count, seq.server_count());
  EXPECT_EQ(info.item_count, seq.item_count());
  EXPECT_EQ(info.item_access_count, seq.total_item_accesses());
  EXPECT_EQ(info.file_bytes, read_bytes(path).size());
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// A mapped sequence behaves like a value type.

TEST(DptBorrowed, CopyAndMoveStayUsable) {
  const RequestSequence seq = testing::running_example_sequence();
  const std::string path = temp_path("dpt_borrow.dpt");
  write_trace_dpt(path, seq);

  RequestSequence mapped = read_trace_dpt(path);
  ASSERT_TRUE(mapped.borrows_storage());

  const RequestSequence copy = mapped;           // shares the mapping keeper
  RequestSequence moved = std::move(mapped);     // steals it
  EXPECT_TRUE(same_sequence(seq, copy));
  EXPECT_TRUE(same_sequence(seq, moved));

  // The mapping outlives the file: the keeper pins the pages.
  std::remove(path.c_str());
  EXPECT_TRUE(same_sequence(seq, moved));
  EXPECT_EQ(moved.item_frequency(0), seq.item_frequency(0));
}

// ---------------------------------------------------------------------------
// Corruption: every damaged file fails with a FormatError naming the path.

class DptCorruption : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = temp_path("dpt_corrupt.dpt");
    write_trace_dpt(path_, testing::running_example_sequence());
    bytes_ = read_bytes(path_);
    ASSERT_GT(bytes_.size(), 64u);
  }
  void TearDown() override { std::remove(path_.c_str()); }

  /// Writes `bytes` to the file and expects both open modes to throw a
  /// FormatError whose message names the file.
  void expect_rejected(const std::string& bytes) {
    write_bytes(path_, bytes);
    for (const DptOpenMode mode : {DptOpenMode::kMap, DptOpenMode::kRead}) {
      DptReadOptions options;
      options.mode = mode;
      try {
        (void)read_trace_dpt(path_, options);
        FAIL() << "expected FormatError";
      } catch (const FormatError& error) {
        EXPECT_NE(std::string(error.what()).find(path_), std::string::npos)
            << error.what();
      }
    }
  }

  std::string path_;
  std::string bytes_;
};

TEST_F(DptCorruption, EmptyFile) { expect_rejected(""); }

TEST_F(DptCorruption, TruncatedHeader) {
  expect_rejected(bytes_.substr(0, 32));
}

TEST_F(DptCorruption, TruncatedColumns) {
  expect_rejected(bytes_.substr(0, bytes_.size() / 2));
  expect_rejected(bytes_.substr(0, bytes_.size() - 1));
}

TEST_F(DptCorruption, WrongMagic) {
  std::string bytes = bytes_;
  bytes[0] = 'X';
  expect_rejected(bytes);
}

TEST_F(DptCorruption, FutureVersion) {
  std::string bytes = bytes_;
  bytes[12] = static_cast<char>(0x7F);  // u32 version field little-endian
  expect_rejected(bytes);
}

TEST_F(DptCorruption, FlippedColumnByte) {
  // Damage a payload byte near the end (inside the last column) — only the
  // checksum can catch this, which is the point of having one.
  std::string bytes = bytes_;
  bytes[bytes.size() - 5] = static_cast<char>(bytes[bytes.size() - 5] ^ 0x40);
  expect_rejected(bytes);
}

TEST_F(DptCorruption, FlippedChecksumByte) {
  // Damage a stored checksum in the column table instead of the payload.
  std::string bytes = bytes_;
  bytes[64 + 32] = static_cast<char>(bytes[64 + 32] ^ 0x01);
  expect_rejected(bytes);
}

TEST_F(DptCorruption, ChecksumVerificationCanBeDisabledForValidStructure) {
  // With verify_checksums off a payload flip in the times column goes
  // through (the structural checks still hold); this documents that the
  // flag only skips integrity, never structure.  The times column offset
  // comes from the descriptor table: 40-byte rows from byte 64, layout
  // {u32 id, u32 element_size, u64 count, u64 offset, u64 length, u64 sum}.
  std::uint64_t times_offset = 0;
  for (std::size_t d = 0; d < 6; ++d) {
    const std::size_t row = 64 + d * 40;
    std::uint32_t id = 0;
    std::memcpy(&id, bytes_.data() + row, sizeof(id));
    if (id == 2) {
      std::memcpy(&times_offset, bytes_.data() + row + 16,
                  sizeof(times_offset));
    }
  }
  ASSERT_GT(times_offset, 0u);
  std::string bytes = bytes_;
  // Flip a low mantissa bit of times[0]: logically wrong, structurally fine.
  bytes[times_offset] = static_cast<char>(bytes[times_offset] ^ 0x01);
  write_bytes(path_, bytes);
  DptReadOptions options;
  options.verify_checksums = false;
  const RequestSequence seq = read_trace_dpt(path_, options);
  EXPECT_EQ(seq.size(), testing::running_example_sequence().size());
}

}  // namespace
}  // namespace dpg
