// Unit and property tests for the full DP_Greedy pipeline (Algorithm 1).
#include <gtest/gtest.h>

#include "util/error.hpp"
#include "parallel/thread_pool.hpp"
#include "solver/baselines.hpp"
#include "solver/dp_greedy.hpp"
#include "test_support.hpp"

namespace dpg {
namespace {

constexpr double kTol = 1e-9;

TEST(DpGreedy, NoPairsMeansPureOptimalBaseline) {
  // With θ = 1 (strict) nothing is packed, so DP_Greedy degenerates to the
  // per-item optimal DP and must match the Optimal baseline exactly.
  Rng rng(4);
  const RequestSequence seq = testing::random_sequence(rng, 100, 5, 6, 0.5);
  const CostModel model{1.0, 2.0, 0.8};
  DpGreedyOptions options;
  options.theta = 1.0;
  const DpGreedyResult dpg = solve_dp_greedy(seq, model, options);
  const OptimalBaselineResult opt = solve_optimal_baseline(seq, model);
  EXPECT_TRUE(dpg.packages.empty());
  EXPECT_NEAR(dpg.total_cost, opt.total_cost, kTol);
  EXPECT_NEAR(dpg.ave_cost, opt.ave_cost, kTol);
}

TEST(DpGreedy, ParallelAndSerialResultsAreIdentical) {
  Rng rng(8);
  const RequestSequence seq = testing::random_sequence(rng, 200, 6, 8, 0.5);
  const CostModel model{1.0, 2.0, 0.6};
  DpGreedyOptions serial;
  serial.theta = 0.1;
  DpGreedyOptions parallel_opts = serial;
  ThreadPool pool(4);
  parallel_opts.pool = &pool;
  const DpGreedyResult a = solve_dp_greedy(seq, model, serial);
  const DpGreedyResult b = solve_dp_greedy(seq, model, parallel_opts);
  ASSERT_EQ(a.packages.size(), b.packages.size());
  EXPECT_NEAR(a.total_cost, b.total_cost, kTol);
  for (std::size_t i = 0; i < a.packages.size(); ++i) {
    EXPECT_NEAR(a.packages[i].total_cost(), b.packages[i].total_cost(), kTol);
  }
}

TEST(DpGreedy, PackageSchedulesAreFeasible) {
  Rng rng(12);
  for (int trial = 0; trial < 10; ++trial) {
    const RequestSequence seq = testing::random_sequence(rng, 80, 4, 6, 0.6);
    const CostModel model{1.0, 1.5, 0.8};
    DpGreedyOptions options;
    options.theta = 0.05;
    const DpGreedyResult result = solve_dp_greedy(seq, model, options);
    for (const PackageReport& report : result.packages) {
      const Flow flow = make_package_flow(seq, report.pair.a, report.pair.b);
      const ValidationResult v = report.package_schedule.validate(flow);
      ASSERT_TRUE(v.ok) << v.message;
    }
    for (const SingleItemReport& report : result.singles) {
      const Flow flow = make_item_flow(seq, report.item);
      const ValidationResult v = report.schedule.validate(flow);
      ASSERT_TRUE(v.ok) << v.message;
    }
  }
}

TEST(DpGreedy, AveCostUsesTotalItemAccesses) {
  const RequestSequence seq = testing::running_example_sequence();
  const CostModel model = testing::running_example_model();
  DpGreedyOptions options;
  options.theta = 0.4;
  const DpGreedyResult result = solve_dp_greedy(seq, model, options);
  EXPECT_NEAR(result.ave_cost * static_cast<double>(result.total_item_accesses),
              result.total_cost, kTol);
}

TEST(DpGreedy, SingletonCostsNeverExceedPackageFetch) {
  // Every greedy decision is bounded by the 2αλ package-fetch constant
  // (Observation 2): that option is always available.
  Rng rng(19);
  for (int trial = 0; trial < 10; ++trial) {
    const RequestSequence seq = testing::random_sequence(rng, 100, 5, 4, 0.5);
    const CostModel model{1.0, 3.0, 0.5};
    DpGreedyOptions options;
    options.theta = 0.01;
    const DpGreedyResult result = solve_dp_greedy(seq, model, options);
    for (const PackageReport& report : result.packages) {
      for (const SingletonService& s : report.services) {
        ASSERT_LE(s.cost, model.package_fetch_cost() + kTol);
      }
    }
  }
}

TEST(DpGreedy, HighThetaYieldsFewerPackagesThanLowTheta) {
  Rng rng(30);
  const RequestSequence seq = testing::random_sequence(rng, 300, 4, 8, 0.5);
  const CostModel model{1.0, 1.0, 0.8};
  DpGreedyOptions low;
  low.theta = 0.01;
  DpGreedyOptions high;
  high.theta = 0.6;
  const auto low_result = solve_dp_greedy(seq, model, low);
  const auto high_result = solve_dp_greedy(seq, model, high);
  EXPECT_GE(low_result.packages.size(), high_result.packages.size());
}

TEST(DpGreedy, RejectsBadTheta) {
  const RequestSequence seq = testing::running_example_sequence();
  DpGreedyOptions options;
  options.theta = 1.5;
  EXPECT_THROW(
      (void)solve_dp_greedy(seq, testing::running_example_model(), options),
      InvalidArgument);
}

// Small-α regimes should favour packing; DP_Greedy with packing enabled must
// then beat the non-packing Optimal baseline on strongly correlated traces.
TEST(DpGreedy, BeatsOptimalBaselineWhenAlphaIsSmallAndCorrelationHigh) {
  Rng rng(77);
  SequenceBuilder builder(5, 2);
  Time t = 0.0;
  for (int i = 0; i < 120; ++i) {
    t += 0.5;
    const auto server = static_cast<ServerId>(rng.next_below(5));
    if (rng.next_bool(0.85)) {
      builder.add(server, t, {0, 1});
    } else {
      builder.add(server, t, {rng.next_bool(0.5) ? ItemId{0} : ItemId{1}});
    }
  }
  const RequestSequence seq = std::move(builder).build();
  const CostModel model{1.0, 2.0, 0.3};  // strong discount
  DpGreedyOptions options;
  options.theta = 0.3;
  const DpGreedyResult dpg = solve_dp_greedy(seq, model, options);
  const OptimalBaselineResult opt = solve_optimal_baseline(seq, model);
  ASSERT_EQ(dpg.packages.size(), 1u);
  EXPECT_LT(dpg.total_cost, opt.total_cost);
}

}  // namespace
}  // namespace dpg
