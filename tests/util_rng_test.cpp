// Determinism and distribution sanity for dpg::Rng.
#include <gtest/gtest.h>

#include <array>
#include <set>

#include "util/rng.hpp"

namespace dpg {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) ASSERT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += a.next_u64() == b.next_u64();
  EXPECT_LT(equal, 3);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) ASSERT_LT(rng.next_below(17), 17u);
  EXPECT_EQ(rng.next_below(1), 0u);
  EXPECT_EQ(rng.next_below(0), 0u);
}

TEST(Rng, NextIntCoversClosedRange) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.next_int(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, DoublesInUnitInterval) {
  Rng rng(13);
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const double v = rng.next_double();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 20000.0, 0.5, 0.02);
}

TEST(Rng, GaussianMoments) {
  Rng rng(17);
  double sum = 0.0, ss = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.next_gaussian();
    sum += v;
    ss += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(ss / n, 1.0, 0.05);
}

TEST(Rng, ExponentialMean) {
  Rng rng(19);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.next_exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, WeightedFavorsHeavyBuckets) {
  Rng rng(23);
  const std::array<double, 3> weights{1.0, 0.0, 3.0};
  std::array<int, 3> hits{};
  for (int i = 0; i < 20000; ++i) {
    ++hits[rng.next_weighted(weights)];
  }
  EXPECT_EQ(hits[1], 0);
  EXPECT_NEAR(static_cast<double>(hits[2]) / static_cast<double>(hits[0]), 3.0,
              0.3);
}

TEST(Rng, ZipfSkewsTowardsLowRanks) {
  Rng rng(29);
  std::array<int, 5> hits{};
  for (int i = 0; i < 20000; ++i) ++hits[rng.next_zipf(5, 1.2)];
  EXPECT_GT(hits[0], hits[1]);
  EXPECT_GT(hits[1], hits[4]);
  // s = 0 degenerates to uniform.
  std::array<int, 4> uniform_hits{};
  for (int i = 0; i < 20000; ++i) ++uniform_hits[rng.next_zipf(4, 0.0)];
  for (const int h : uniform_hits) EXPECT_NEAR(h, 5000, 500);
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng rng(31);
  std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7};
  rng.shuffle(std::span<int>(v));
  std::set<int> seen(v.begin(), v.end());
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, SplitStreamsAreIndependentButDeterministic) {
  Rng parent1(5);
  Rng parent2(5);
  Rng child1 = parent1.split();
  Rng child2 = parent2.split();
  for (int i = 0; i < 100; ++i) ASSERT_EQ(child1.next_u64(), child2.next_u64());
  // Child differs from a fresh parent stream.
  Rng parent3(5);
  int equal = 0;
  Rng child3 = Rng(5).split();
  for (int i = 0; i < 100; ++i) equal += child3.next_u64() == parent3.next_u64();
  EXPECT_LT(equal, 3);
}

TEST(Rng, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Rng>);
  SUCCEED();
}

}  // namespace
}  // namespace dpg
