// Tests for the multi-item packing extension.
#include <gtest/gtest.h>

#include "util/error.hpp"
#include "solver/baselines.hpp"
#include "solver/dp_greedy.hpp"
#include "solver/group_solver.hpp"
#include "test_support.hpp"

namespace dpg {
namespace {

constexpr double kTol = 1e-9;

TEST(GroupSolver, PairGroupMatchesDpGreedyPairSolver) {
  Rng rng(2);
  for (int trial = 0; trial < 15; ++trial) {
    const RequestSequence seq = testing::random_sequence(rng, 60, 4, 2, 0.6);
    const CostModel model{1.0, 1.0, 0.8};
    const GroupReport group = solve_group_package(seq, model, {0, 1});
    const PackageReport pair =
        solve_pair_package(seq, model, ItemPair{0, 1, 0.5});
    ASSERT_NEAR(group.total_cost(), pair.total_cost(), kTol)
        << "trial " << trial;
    ASSERT_EQ(group.full_request_count, pair.co_request_count);
  }
}

TEST(GroupSolver, TripleGroupOnFullyCorrelatedTraceUsesPackageRate) {
  SequenceBuilder builder(3, 3);
  Rng rng(5);
  Time t = 0.0;
  for (int i = 0; i < 30; ++i) {
    builder.add(static_cast<ServerId>(rng.next_below(3)), t += 1.0, {0, 1, 2});
  }
  const RequestSequence seq = std::move(builder).build();
  const CostModel model{1.0, 1.0, 0.5};
  const GroupReport report = solve_group_package(seq, model, {0, 1, 2});
  EXPECT_EQ(report.full_request_count, 30u);
  EXPECT_EQ(report.partial_cost, 0.0);
  // The package flow equals any single item's flow; the rate is 3α.
  const Cost raw =
      solve_optimal_offline(make_item_flow(seq, 0), model, 3).raw_cost;
  EXPECT_NEAR(report.package_cost, 3.0 * model.alpha * raw, kTol);
}

TEST(GroupSolver, PartialRequestsChooseCheaperOfIndividualAndFetch) {
  // One full-group request, then a distant partial request: fetching the
  // package (gαλ) must beat individually transferring when gaps are huge.
  SequenceBuilder builder(2, 3);
  builder.add(1, 1.0, {0, 1, 2});
  builder.add(0, 100.0, {0, 1});  // partial: items {0,1} of the triple
  const RequestSequence seq = std::move(builder).build();
  const CostModel model{1.0, 1.0, 0.5};
  const GroupReport report = solve_group_package(seq, model, {0, 1, 2});
  // Individual: each of 2 items — cache@origin option μ·100 vs transfer
  // μ(100−1)+λ = 100 → 100 each, 200 total. Fetch: 3·0.5·1 = 1.5.
  EXPECT_NEAR(report.partial_cost, 1.5, kTol);
}

TEST(GroupSolver, EndToEndDecomposition) {
  Rng rng(9);
  const RequestSequence seq = testing::random_sequence(rng, 150, 4, 6, 0.5);
  const CostModel model{1.0, 1.0, 0.6};
  GroupDpGreedyOptions options;
  options.theta = 0.05;
  options.max_group_size = 3;
  const GroupDpGreedyResult result = solve_group_dp_greedy(seq, model, options);
  Cost manual = 0.0;
  for (const GroupReport& g : result.groups) manual += g.total_cost();
  for (const SingleItemReport& s : result.singles) manual += s.cost;
  EXPECT_NEAR(result.total_cost, manual, kTol);
  std::size_t covered = result.packing.singles.size();
  for (const auto& g : result.packing.groups) covered += g.size();
  EXPECT_EQ(covered, 6u);
}

TEST(GroupSolver, MaxGroupSizeTwoMatchesDpGreedyTotals) {
  Rng rng(21);
  for (int trial = 0; trial < 8; ++trial) {
    const RequestSequence seq = testing::random_sequence(rng, 100, 4, 6, 0.5);
    const CostModel model{1.0, 1.0, 0.8};
    GroupDpGreedyOptions group_options;
    group_options.theta = 0.2;
    group_options.max_group_size = 2;
    DpGreedyOptions pair_options;
    pair_options.theta = 0.2;
    const GroupDpGreedyResult grouped =
        solve_group_dp_greedy(seq, model, group_options);
    const DpGreedyResult paired = solve_dp_greedy(seq, model, pair_options);
    ASSERT_NEAR(grouped.total_cost, paired.total_cost, kTol);
  }
}

TEST(GroupSolver, RejectsSingletonGroup) {
  const RequestSequence seq = testing::running_example_sequence();
  EXPECT_THROW(
      (void)solve_group_package(seq, CostModel{1, 1, 0.8}, {0}),
      InvalidArgument);
}

}  // namespace
}  // namespace dpg
