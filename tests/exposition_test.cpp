// Prometheus text-format exposition (obs/exposition.hpp): exact rendered
// text for counters and histograms, cumulative-bucket monotonicity, the
// +Inf/_count invariant, name sanitization, quantile estimation, and the
// atomic snapshot file.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/exposition.hpp"
#include "obs/metrics.hpp"

namespace dpg::obs {
namespace {

std::string test_temp_path(const std::string& name) {
  return ::testing::TempDir() + std::to_string(::getpid()) + "_" + name;
}

HistogramData histogram_of(std::initializer_list<std::uint64_t> values) {
  HistogramData data;
  for (const std::uint64_t v : values) {
    data.count += 1;
    data.sum += v;
    std::size_t b = 0;
    for (std::uint64_t x = v; x != 0; x >>= 1) ++b;  // bit_width
    if (b > kHistogramBuckets - 1) b = kHistogramBuckets - 1;
    data.buckets[b] += 1;
  }
  return data;
}

TEST(Exposition, CounterRendersExactText) {
  MetricsSnapshot snapshot;
  snapshot.counters.emplace_back("stream.pushes", 600);
  EXPECT_EQ(prometheus_text(snapshot),
            "# TYPE dpgreedy_stream_pushes_total counter\n"
            "dpgreedy_stream_pushes_total 600\n");
}

TEST(Exposition, NameSanitizationMapsInvalidCharsToUnderscore) {
  EXPECT_EQ(prometheus_metric_name("stream.push_ns"),
            "dpgreedy_stream_push_ns");
  EXPECT_EQ(prometheus_metric_name("phase2.solves", "_total"),
            "dpgreedy_phase2_solves_total");
  EXPECT_EQ(prometheus_metric_name("weird-name with spaces"),
            "dpgreedy_weird_name_with_spaces");
}

TEST(Exposition, HistogramRendersExactText) {
  MetricsSnapshot snapshot;
  // Values 0, 1, 3, 6: bucket 0 -> {0}, bucket 1 (le="1") -> {1},
  // bucket 2 (le="3") -> {3}, bucket 3 (le="7") -> {6}.
  snapshot.histograms.emplace_back("stream.push_ns",
                                   histogram_of({0, 1, 3, 6}));
  EXPECT_EQ(prometheus_text(snapshot),
            "# TYPE dpgreedy_stream_push_ns histogram\n"
            "dpgreedy_stream_push_ns_bucket{le=\"0\"} 1\n"
            "dpgreedy_stream_push_ns_bucket{le=\"1\"} 2\n"
            "dpgreedy_stream_push_ns_bucket{le=\"3\"} 3\n"
            "dpgreedy_stream_push_ns_bucket{le=\"7\"} 4\n"
            "dpgreedy_stream_push_ns_bucket{le=\"+Inf\"} 4\n"
            "dpgreedy_stream_push_ns_sum 10\n"
            "dpgreedy_stream_push_ns_count 4\n");
}

TEST(Exposition, BucketsAreCumulativeAndMonotone) {
  MetricsSnapshot snapshot;
  snapshot.histograms.emplace_back(
      "lat", histogram_of({1, 1, 5, 9, 100, 1000, 100000}));
  const std::string text = prometheus_text(snapshot);

  std::istringstream lines(text);
  std::uint64_t previous = 0;
  std::uint64_t inf_value = 0;
  std::size_t bucket_lines = 0;
  for (std::string line; std::getline(lines, line);) {
    const std::size_t brace = line.find("_bucket{le=\"");
    if (brace == std::string::npos) continue;
    ++bucket_lines;
    const std::uint64_t value =
        std::stoull(line.substr(line.rfind(' ') + 1));
    EXPECT_GE(value, previous) << line;
    previous = value;
    if (line.find("+Inf") != std::string::npos) inf_value = value;
  }
  EXPECT_GE(bucket_lines, 3u);
  EXPECT_EQ(inf_value, 7u);  // +Inf == _count
  EXPECT_NE(text.find("dpgreedy_lat_count 7\n"), std::string::npos);
}

TEST(Exposition, LastRingBucketOnlyAppearsAsInf) {
  // A value with bit_width > 39 lands in the open-ended final bucket; no
  // finite le line may claim it.
  MetricsSnapshot snapshot;
  snapshot.histograms.emplace_back(
      "big", histogram_of({3, 0xFFFFFFFFFFFFFFFFull}));
  const std::string text = prometheus_text(snapshot);
  // Finite-bound lines stop at the last nonzero finite bucket (le="3"),
  // whose cumulative count excludes the huge value.
  EXPECT_NE(text.find("dpgreedy_big_bucket{le=\"3\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("dpgreedy_big_bucket{le=\"+Inf\"} 2\n"),
            std::string::npos);
  EXPECT_EQ(text.find("le=\"549755813887\"} 2"), std::string::npos);
}

TEST(Exposition, EmptySnapshotRendersEmpty) {
  EXPECT_EQ(prometheus_text(MetricsSnapshot{}), "");
}

TEST(Exposition, QuantileUpperBoundsFromBuckets) {
  const HistogramData data = histogram_of({0, 0, 0, 0, 1, 1, 5, 5, 9, 1000});
  // p50 target = 5 of 10; buckets: le0=4, le1=6 -> p50 upper bound 1.
  EXPECT_EQ(histogram_quantile_upper(data, 0.50), 1u);
  // p90 target = 9 of 10 -> bucket holding 9 (le="15").
  EXPECT_EQ(histogram_quantile_upper(data, 0.90), 15u);
  // p100 -> bucket of 1000 (le = 2^10 - 1).
  EXPECT_EQ(histogram_quantile_upper(data, 1.0), 1023u);
  EXPECT_EQ(histogram_quantile_upper(HistogramData{}, 0.5), 0u);
}

TEST(Exposition, WriteFileIsAtomicAndWellFormed) {
  MetricsSnapshot snapshot;
  snapshot.counters.emplace_back("stream.pushes", 42);
  snapshot.histograms.emplace_back("stream.push_ns", histogram_of({1, 2}));

  const std::string path = test_temp_path("exposition.prom");
  ASSERT_TRUE(write_prometheus_file(path, snapshot));
  // The temp file must be gone (renamed over), the target complete.
  std::ifstream tmp(path + ".tmp");
  EXPECT_FALSE(tmp.good());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::ostringstream content;
  content << in.rdbuf();
  EXPECT_EQ(content.str(), prometheus_text(snapshot));

  // Overwrite with a later snapshot: the reader sees either the old or the
  // new complete file, never a torn one; after the call, the new one.
  snapshot.counters[0].second = 43;
  ASSERT_TRUE(write_prometheus_file(path, snapshot));
  std::ifstream again(path);
  std::ostringstream content2;
  content2 << again.rdbuf();
  EXPECT_NE(content2.str().find("dpgreedy_stream_pushes_total 43"),
            std::string::npos);
  std::remove(path.c_str());
}

TEST(Exposition, LiveRegistryRoundTrip) {
  // End to end through the real registry: record, snapshot, render.
  set_enabled(true);
  reset_metrics();
  static const Counter c = counter("exposition_test.hits");
  static const Histogram h = histogram("exposition_test.lat_ns");
  c.add(5);
  h.record(0);
  h.record(900);
  const MetricsSnapshot snapshot = snapshot_metrics();
  set_enabled(false);

  const std::string text = prometheus_text(snapshot);
  EXPECT_NE(text.find("dpgreedy_exposition_test_hits_total 5"),
            std::string::npos);
  EXPECT_NE(text.find("dpgreedy_exposition_test_lat_ns_count 2"),
            std::string::npos);
  EXPECT_NE(text.find("dpgreedy_exposition_test_lat_ns_sum 900"),
            std::string::npos);
  EXPECT_NE(text.find("dpgreedy_exposition_test_lat_ns_bucket{le=\"0\"} 1"),
            std::string::npos);
}

}  // namespace
}  // namespace dpg::obs
