#include <gtest/gtest.h>

#include "test_support.hpp"

#include <cstdio>

#include "trace/generators.hpp"
#include "trace/io.hpp"
#include "util/error.hpp"

namespace dpg {
namespace {

TEST(TraceIo, CsvRoundTripPreservesEverything) {
  PairedTraceConfig config;
  config.pair_jaccard = {0.4, 0.7};
  config.requests_per_pair = 60;
  Rng rng(9);
  const RequestSequence original = generate_paired_trace(config, rng);
  const RequestSequence restored = trace_from_csv(trace_to_csv(original));
  ASSERT_EQ(restored.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    ASSERT_EQ(restored[i].server, original[i].server);
    ASSERT_DOUBLE_EQ(restored[i].time, original[i].time);
    ASSERT_EQ(testing::items_of(restored[i]), testing::items_of(original[i]));
  }
}

TEST(TraceIo, InfersDimensionsFromContent) {
  const RequestSequence seq =
      trace_from_csv("server,time,items\n3,1.5,0;2\n1,2.0,4\n");
  EXPECT_EQ(seq.server_count(), 4u);
  EXPECT_EQ(seq.item_count(), 5u);
}

TEST(TraceIo, HonorsMinimumDimensions) {
  const RequestSequence seq =
      trace_from_csv("server,time,items\n0,1.0,0\n", 50, 10);
  EXPECT_EQ(seq.server_count(), 50u);
  EXPECT_EQ(seq.item_count(), 10u);
}

TEST(TraceIo, RejectsMissingColumns) {
  EXPECT_THROW((void)trace_from_csv("server,time\n0,1.0\n"), IoError);
}

TEST(TraceIo, RejectsMalformedFields) {
  EXPECT_THROW((void)trace_from_csv("server,time,items\nx,1.0,0\n"), IoError);
  EXPECT_THROW((void)trace_from_csv("server,time,items\n0,zzz,0\n"), IoError);
}

TEST(TraceIo, InvalidSequencesStillValidated) {
  // Duplicate timestamps are a sequence-level invariant violation; the
  // parser rethrows it as an IoError tagged with the input's label so a
  // caller sees which file (or "CSV" for in-memory text) was bad.
  try {
    (void)trace_from_csv("server,time,items\n0,1.0,0\n1,1.0,1\n");
    FAIL() << "expected IoError";
  } catch (const IoError& error) {
    const std::string what = error.what();
    EXPECT_EQ(what.rfind("CSV: ", 0), 0u) << what;
    EXPECT_NE(what.find("strictly increasing"), std::string::npos) << what;
  }
}

TEST(TraceIo, FileRoundTrip) {
  UniformTraceConfig config;
  config.request_count = 40;
  Rng rng(2);
  const RequestSequence original = generate_uniform_trace(config, rng);
  const std::string path = ::testing::TempDir() + "dpg_trace_roundtrip.csv";
  write_trace_file(path, original);
  const RequestSequence restored =
      read_trace_file(path, original.server_count(), original.item_count());
  EXPECT_EQ(restored.size(), original.size());
  EXPECT_EQ(restored.server_count(), original.server_count());
  std::remove(path.c_str());
}

TEST(TraceIo, MissingFileRaises) {
  EXPECT_THROW((void)read_trace_file("/nope/missing.csv"), IoError);
}

TEST(TraceIo, FileParseErrorsNameThePathRowAndByteOffset) {
  const std::string path = ::testing::TempDir() + "dpg_trace_bad.csv";
  {
    std::FILE* file = std::fopen(path.c_str(), "w");
    ASSERT_NE(file, nullptr);
    std::fputs("server,time,items\n0,1.0,0\n1,oops,1\n", file);
    std::fclose(file);
  }
  try {
    (void)read_trace_file(path);
    FAIL() << "expected IoError";
  } catch (const IoError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find(path), std::string::npos) << what;
    EXPECT_NE(what.find("row 2"), std::string::npos) << what;
    EXPECT_NE(what.find("byte offset 26"), std::string::npos) << what;
  }
  std::remove(path.c_str());
}

TEST(TraceIo, InMemoryParseErrorsUseTheCsvLabel) {
  try {
    (void)trace_from_csv("server,time,items\n0,1.0\n");
    FAIL() << "expected IoError";
  } catch (const IoError& error) {
    const std::string what = error.what();
    EXPECT_EQ(what.rfind("CSV: row 1", 0), 0u) << what;
  }
}

TEST(TraceIo, ParseHintsDoNotChangeTheResult) {
  UniformTraceConfig config;
  config.request_count = 60;
  Rng rng(3);
  const RequestSequence original = generate_uniform_trace(config, rng);
  const std::string csv = trace_to_csv(original);

  // Exact hints (what the .dpt header supplies) and wild over-estimates
  // must both parse to the same sequence as no hints at all.
  TraceParseHints exact;
  exact.request_count = original.size();
  exact.item_access_count = original.total_item_accesses();
  TraceParseHints oversized;
  oversized.request_count = 10 * original.size();
  oversized.item_access_count = 10 * original.total_item_accesses();
  for (const TraceParseHints& hints : {exact, oversized}) {
    const RequestSequence parsed = trace_from_csv(csv, 0, 0, hints);
    EXPECT_EQ(parsed.size(), original.size());
    EXPECT_EQ(trace_to_csv(parsed), csv);
  }
}

}  // namespace
}  // namespace dpg
