// Tests for the synthetic trace generators.
#include <gtest/gtest.h>

#include "test_support.hpp"

#include "solver/correlation.hpp"
#include "trace/generators.hpp"
#include "util/error.hpp"

namespace dpg {
namespace {

TEST(PairedTrace, IsDeterministicPerSeed) {
  PairedTraceConfig config;
  config.requests_per_pair = 50;
  Rng a(1), b(1);
  const RequestSequence s1 = generate_paired_trace(config, a);
  const RequestSequence s2 = generate_paired_trace(config, b);
  ASSERT_EQ(s1.size(), s2.size());
  for (std::size_t i = 0; i < s1.size(); ++i) {
    ASSERT_EQ(s1[i].server, s2[i].server);
    ASSERT_EQ(s1[i].time, s2[i].time);
    ASSERT_EQ(testing::items_of(s1[i]), testing::items_of(s2[i]));
  }
}

TEST(PairedTrace, HitsTargetJaccardWithinTolerance) {
  PairedTraceConfig config;
  config.pair_jaccard = {0.2, 0.5, 0.8};
  config.requests_per_pair = 3000;
  Rng rng(42);
  const RequestSequence seq = generate_paired_trace(config, rng);
  const CorrelationAnalysis analysis(seq);
  for (std::size_t p = 0; p < config.pair_jaccard.size(); ++p) {
    const double measured = analysis.jaccard(static_cast<ItemId>(2 * p),
                                             static_cast<ItemId>(2 * p + 1));
    EXPECT_NEAR(measured, config.pair_jaccard[p], 0.05)
        << "pair " << p << " missed its target Jaccard";
  }
}

TEST(PairedTrace, CrossPairJaccardIsZero) {
  PairedTraceConfig config;
  config.pair_jaccard = {0.5, 0.5};
  config.requests_per_pair = 200;
  Rng rng(7);
  const RequestSequence seq = generate_paired_trace(config, rng);
  const CorrelationAnalysis analysis(seq);
  EXPECT_EQ(analysis.jaccard(0, 2), 0.0);
  EXPECT_EQ(analysis.jaccard(1, 3), 0.0);
}

TEST(PairedTrace, RequestCountsAndRanges) {
  PairedTraceConfig config;
  config.pair_jaccard = {0.3, 0.6};
  config.requests_per_pair = 100;
  config.server_count = 7;
  Rng rng(3);
  const RequestSequence seq = generate_paired_trace(config, rng);
  EXPECT_EQ(seq.size(), 200u);
  EXPECT_EQ(seq.item_count(), 4u);
  EXPECT_EQ(seq.server_count(), 7u);
  Time prev = 0.0;
  for (const Request& r : seq.requests()) {
    ASSERT_LT(r.server, 7u);
    ASSERT_GT(r.time, prev);
    prev = r.time;
  }
}

TEST(PairedTrace, ValidatesConfig) {
  Rng rng(1);
  PairedTraceConfig bad;
  bad.pair_jaccard = {1.5};
  EXPECT_THROW((void)generate_paired_trace(bad, rng), InvalidArgument);
  PairedTraceConfig empty;
  empty.pair_jaccard.clear();
  EXPECT_THROW((void)generate_paired_trace(empty, rng), InvalidArgument);
}

TEST(ZipfTrace, PopularItemsDominate) {
  ZipfTraceConfig config;
  config.item_count = 8;
  config.request_count = 4000;
  config.zipf_exponent = 1.2;
  config.co_access = 0.0;
  Rng rng(11);
  const RequestSequence seq = generate_zipf_trace(config, rng);
  EXPECT_GT(seq.item_frequency(0), seq.item_frequency(4));
  EXPECT_GT(seq.item_frequency(0), seq.item_frequency(7));
}

TEST(ZipfTrace, CoAccessCouplesEvenOddPartners) {
  ZipfTraceConfig config;
  config.item_count = 6;
  config.request_count = 2000;
  config.co_access = 1.0;
  Rng rng(13);
  const RequestSequence seq = generate_zipf_trace(config, rng);
  // Every request must contain a full partner pair.
  for (const Request& r : seq.requests()) {
    ASSERT_EQ(r.items.size(), 2u);
    ASSERT_EQ(r.items[0] ^ 1u, r.items[1]);
  }
}

TEST(UniformTrace, ShapeAndDeterminism) {
  UniformTraceConfig config;
  config.request_count = 300;
  Rng a(5), b(5);
  const RequestSequence s1 = generate_uniform_trace(config, a);
  const RequestSequence s2 = generate_uniform_trace(config, b);
  EXPECT_EQ(s1.size(), 300u);
  ASSERT_EQ(s1.size(), s2.size());
  for (std::size_t i = 0; i < s1.size(); ++i) {
    ASSERT_EQ(s1[i].time, s2[i].time);
  }
}


TEST(BurstyTrace, BurstsAreTemporallyClustered) {
  BurstyTraceConfig config;
  config.burst_count = 10;
  config.requests_per_burst = 20;
  Rng rng(4);
  const RequestSequence seq = generate_bursty_trace(config, rng);
  EXPECT_EQ(seq.size(), 200u);
  // Gap distribution must be bimodal: many tiny intra-burst gaps, a few
  // large inter-burst gaps.
  std::size_t tiny = 0, large = 0;
  Time prev = 0.0;
  for (const Request& r : seq.requests()) {
    const Time gap = r.time - prev;
    prev = r.time;
    if (gap < 1.0) ++tiny;
    if (gap > 5.0) ++large;
  }
  EXPECT_GT(tiny, 150u);
  EXPECT_GE(large, 5u);
}

TEST(BurstyTrace, WorkingSetBoundsItemsPerBurst) {
  BurstyTraceConfig config;
  config.working_set = 1;
  config.burst_count = 5;
  Rng rng(6);
  const RequestSequence seq = generate_bursty_trace(config, rng);
  for (const Request& r : seq.requests()) {
    ASSERT_EQ(r.items.size(), 1u);  // singleton working set -> single item
  }
}

TEST(BurstyTrace, ValidatesConfig) {
  Rng rng(1);
  BurstyTraceConfig bad;
  bad.working_set = 99;
  EXPECT_THROW((void)generate_bursty_trace(bad, rng), InvalidArgument);
}

TEST(AdversarialTrace, RoundRobinPattern) {
  AdversarialWindowConfig config;
  config.server_count = 8;
  config.rounds = 3;
  const RequestSequence seq = generate_adversarial_window_trace(config);
  ASSERT_EQ(seq.size(), 24u);
  for (std::size_t i = 0; i < seq.size(); ++i) {
    ASSERT_EQ(seq[i].server, static_cast<ServerId>(i % 8));
  }
}

}  // namespace
}  // namespace dpg
