// Determinism of the parallel Phase-2 fan-out: solve_dp_greedy over a
// ThreadPool must be bit-identical to the serial path — same total cost,
// same packing, same per-package/per-single schedules — because packages
// are independent and each worker chunk only touches its own slots.
#include <gtest/gtest.h>

#include "parallel/thread_pool.hpp"
#include "solver/dp_greedy.hpp"
#include "test_support.hpp"

namespace dpg {
namespace {

void expect_same_schedule(const Schedule& a, const Schedule& b) {
  ASSERT_EQ(a.group_size(), b.group_size());
  ASSERT_EQ(a.segments().size(), b.segments().size());
  for (std::size_t i = 0; i < a.segments().size(); ++i) {
    ASSERT_EQ(a.segments()[i].server, b.segments()[i].server);
    ASSERT_EQ(a.segments()[i].begin, b.segments()[i].begin);
    ASSERT_EQ(a.segments()[i].end, b.segments()[i].end);
  }
  ASSERT_EQ(a.transfers().size(), b.transfers().size());
  for (std::size_t i = 0; i < a.transfers().size(); ++i) {
    ASSERT_EQ(a.transfers()[i].from, b.transfers()[i].from);
    ASSERT_EQ(a.transfers()[i].to, b.transfers()[i].to);
    ASSERT_EQ(a.transfers()[i].time, b.transfers()[i].time);
  }
}

void expect_same_result(const DpGreedyResult& serial,
                        const DpGreedyResult& pooled) {
  // Bit-identical totals: the same doubles summed in the same order.
  ASSERT_EQ(serial.total_cost, pooled.total_cost);
  ASSERT_EQ(serial.ave_cost, pooled.ave_cost);

  ASSERT_EQ(serial.packing.pairs.size(), pooled.packing.pairs.size());
  for (std::size_t i = 0; i < serial.packing.pairs.size(); ++i) {
    ASSERT_EQ(serial.packing.pairs[i].a, pooled.packing.pairs[i].a);
    ASSERT_EQ(serial.packing.pairs[i].b, pooled.packing.pairs[i].b);
    ASSERT_EQ(serial.packing.pairs[i].jaccard, pooled.packing.pairs[i].jaccard);
  }
  ASSERT_EQ(serial.packing.singles, pooled.packing.singles);

  ASSERT_EQ(serial.packages.size(), pooled.packages.size());
  for (std::size_t i = 0; i < serial.packages.size(); ++i) {
    const PackageReport& s = serial.packages[i];
    const PackageReport& p = pooled.packages[i];
    ASSERT_EQ(s.package_cost, p.package_cost);
    ASSERT_EQ(s.singleton_cost, p.singleton_cost);
    ASSERT_EQ(s.co_request_count, p.co_request_count);
    ASSERT_EQ(s.services.size(), p.services.size());
    for (std::size_t j = 0; j < s.services.size(); ++j) {
      ASSERT_EQ(s.services[j].request_index, p.services[j].request_index);
      ASSERT_EQ(s.services[j].choice, p.services[j].choice);
      ASSERT_EQ(s.services[j].cost, p.services[j].cost);
    }
    expect_same_schedule(s.package_schedule, p.package_schedule);
  }

  ASSERT_EQ(serial.singles.size(), pooled.singles.size());
  for (std::size_t i = 0; i < serial.singles.size(); ++i) {
    ASSERT_EQ(serial.singles[i].item, pooled.singles[i].item);
    ASSERT_EQ(serial.singles[i].cost, pooled.singles[i].cost);
    expect_same_schedule(serial.singles[i].schedule,
                         pooled.singles[i].schedule);
  }
}

TEST(Determinism, PooledDpGreedyMatchesSerialBitForBit) {
  ThreadPool pool(4);
  const CostModel model{1.0, 1.5, 0.8};
  for (const std::uint64_t seed : {11ull, 22ull, 33ull, 44ull}) {
    Rng rng(seed);
    const RequestSequence seq =
        testing::random_sequence(rng, 600, 8, 20, 0.5);

    DpGreedyOptions serial_options;
    serial_options.theta = 0.2;
    DpGreedyOptions pooled_options = serial_options;
    pooled_options.pool = &pool;

    const DpGreedyResult serial = solve_dp_greedy(seq, model, serial_options);
    const DpGreedyResult pooled = solve_dp_greedy(seq, model, pooled_options);
    expect_same_result(serial, pooled);
  }
}

TEST(Determinism, SparseModeWithPoolMatchesSerialDense) {
  // The strongest cross-cut: sparse sharded Phase 1 + pooled Phase 2 against
  // dense serial everything.
  ThreadPool pool(3);
  const CostModel model{1.0, 1.0, 0.8};
  for (const std::uint64_t seed : {5ull, 6ull, 7ull}) {
    Rng rng(seed);
    const RequestSequence seq =
        testing::random_sequence(rng, 500, 6, 16, 0.6);

    DpGreedyOptions dense_serial;
    dense_serial.theta = 0.25;
    dense_serial.correlation.mode = CorrelationOptions::Mode::kDense;

    DpGreedyOptions sparse_pooled;
    sparse_pooled.theta = 0.25;
    sparse_pooled.correlation.mode = CorrelationOptions::Mode::kSparse;
    sparse_pooled.pool = &pool;

    const DpGreedyResult a = solve_dp_greedy(seq, model, dense_serial);
    const DpGreedyResult b = solve_dp_greedy(seq, model, sparse_pooled);
    expect_same_result(a, b);
  }
}

TEST(Determinism, RepeatedPooledRunsAreIdentical) {
  ThreadPool pool(4);
  const CostModel model{1.0, 2.0, 0.7};
  Rng rng(99);
  const RequestSequence seq = testing::random_sequence(rng, 400, 5, 12, 0.5);
  DpGreedyOptions options;
  options.theta = 0.3;
  options.pool = &pool;
  const DpGreedyResult first = solve_dp_greedy(seq, model, options);
  for (int run = 0; run < 3; ++run) {
    expect_same_result(first, solve_dp_greedy(seq, model, options));
  }
}

}  // namespace
}  // namespace dpg
