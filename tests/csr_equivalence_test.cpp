// CSR data-plane equivalence: the flat structure-of-arrays RequestSequence
// must be observationally identical to the naive row-of-vectors layout it
// replaced.  Indexing/frequency queries are checked against fresh naive
// recomputation, and every registry solver must produce bit-identical
// RunReports whether the sequence arrived through the draft constructor,
// the streaming builder, the streaming CSV parser or the legacy one.
#include <gtest/gtest.h>

#include "test_support.hpp"

#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "engine/registry.hpp"
#include "trace/generators.hpp"
#include "trace/io.hpp"
#include "util/rng.hpp"

namespace dpg {
namespace {

using testing::items_of;
using testing::same_sequence;

RequestSequence medium_trace() {
  ZipfTraceConfig config;
  config.server_count = 25;
  config.item_count = 12;
  config.request_count = 2000;
  config.co_access = 0.6;
  Rng rng(77);
  return generate_zipf_trace(config, rng);
}

TEST(CsrEquivalence, IndicesForItemMatchesNaiveScan) {
  const RequestSequence seq = medium_trace();
  for (ItemId item = 0; item < seq.item_count(); ++item) {
    std::vector<std::size_t> naive;
    for (std::size_t i = 0; i < seq.size(); ++i) {
      if (seq[i].contains(item)) naive.push_back(i);
    }
    const std::span<const std::size_t> csr = seq.indices_for_item(item);
    ASSERT_EQ(std::vector<std::size_t>(csr.begin(), csr.end()), naive)
        << "item " << item;
  }
}

TEST(CsrEquivalence, FrequenciesMatchNaiveCounts) {
  const RequestSequence seq = medium_trace();
  std::vector<std::size_t> freq(seq.item_count(), 0);
  std::map<std::pair<ItemId, ItemId>, std::size_t> pairs;
  std::size_t accesses = 0;
  for (std::size_t i = 0; i < seq.size(); ++i) {
    const std::vector<ItemId> items = items_of(seq[i]);
    accesses += items.size();
    for (std::size_t x = 0; x < items.size(); ++x) {
      ++freq[items[x]];
      for (std::size_t y = x + 1; y < items.size(); ++y) {
        ++pairs[{items[x], items[y]}];
      }
    }
  }
  EXPECT_EQ(seq.total_item_accesses(), accesses);
  for (ItemId item = 0; item < seq.item_count(); ++item) {
    EXPECT_EQ(seq.item_frequency(item), freq[item]) << "item " << item;
  }
  for (ItemId a = 0; a < seq.item_count(); ++a) {
    for (ItemId b = a + 1; b < seq.item_count(); ++b) {
      const auto it = pairs.find({a, b});
      const std::size_t expected = it == pairs.end() ? 0 : it->second;
      EXPECT_EQ(seq.pair_frequency(a, b), expected) << a << "," << b;
    }
  }
}

TEST(CsrEquivalence, DraftConstructorMatchesStreamingBuilder) {
  const RequestSequence reference = medium_trace();
  std::vector<RequestDraft> drafts;
  SequenceBuilder builder(reference.server_count(), reference.item_count());
  for (std::size_t i = 0; i < reference.size(); ++i) {
    const Request r = reference[i];
    drafts.push_back(RequestDraft{r.server, r.time, items_of(r)});
    builder.begin_request(r.server, r.time);
    for (const ItemId item : r.items) builder.push_item(item);
    builder.end_request();
  }
  const RequestSequence from_drafts(reference.server_count(),
                                    reference.item_count(), std::move(drafts));
  const RequestSequence from_builder = std::move(builder).build();
  EXPECT_TRUE(same_sequence(reference, from_drafts));
  EXPECT_TRUE(same_sequence(reference, from_builder));
}

/// Exact (bit-level) equality of two RunReports' numeric results.
void expect_bit_identical(const RunReport& a, const RunReport& b) {
  const auto same_bits = [](double x, double y) {
    return std::memcmp(&x, &y, sizeof x) == 0;
  };
  EXPECT_TRUE(same_bits(a.total_cost, b.total_cost)) << a.solver;
  EXPECT_TRUE(same_bits(a.raw_cost, b.raw_cost)) << a.solver;
  EXPECT_TRUE(same_bits(a.ave_cost, b.ave_cost)) << a.solver;
  EXPECT_TRUE(same_bits(a.cache_cost, b.cache_cost)) << a.solver;
  EXPECT_TRUE(same_bits(a.transfer_cost, b.transfer_cost)) << a.solver;
  EXPECT_EQ(a.total_item_accesses, b.total_item_accesses) << a.solver;
  EXPECT_EQ(a.package_count, b.package_count) << a.solver;
  EXPECT_EQ(a.unpack_events, b.unpack_events) << a.solver;
  EXPECT_EQ(a.transfer_events, b.transfer_events) << a.solver;
  EXPECT_EQ(a.cache_segments, b.cache_segments) << a.solver;
}

TEST(CsrEquivalence, AllSolversBitIdenticalAcrossParsePaths) {
  const RequestSequence direct = medium_trace();
  const std::string csv = trace_to_csv(direct);
  const RequestSequence streamed =
      trace_from_csv(csv, direct.server_count(), direct.item_count());
  const RequestSequence legacy =
      trace_from_csv_legacy(csv, direct.server_count(), direct.item_count());
  ASSERT_TRUE(same_sequence(direct, streamed));
  ASSERT_TRUE(same_sequence(direct, legacy));

  const CostModel model = testing::running_example_model();
  const SolverRegistry& registry = builtin_registry();
  ASSERT_EQ(registry.names().size(), 8u);
  for (const std::string& name : registry.names()) {
    const RunReport a = registry.run(name, direct, model);
    const RunReport b = registry.run(name, streamed, model);
    const RunReport c = registry.run(name, legacy, model);
    expect_bit_identical(a, b);
    expect_bit_identical(a, c);
  }
}

TEST(CsrEquivalence, RunningExampleGoldensHoldThroughCsvPath) {
  const RequestSequence direct = testing::running_example_sequence();
  const RequestSequence parsed = trace_from_csv(
      trace_to_csv(direct), direct.server_count(), direct.item_count());
  SolverConfig config;
  config.theta = 0.4;
  const RunReport report =
      builtin_registry().run("dp_greedy", parsed, testing::running_example_model(),
                             config);
  EXPECT_NEAR(report.total_cost, 14.96, 1e-9);
  EXPECT_NEAR(report.ave_cost, 1.496, 1e-9);
}

}  // namespace
}  // namespace dpg
