#include <gtest/gtest.h>

#include <thread>

#include "util/stopwatch.hpp"

namespace dpg {
namespace {

TEST(Stopwatch, ElapsedIsMonotonicNonNegative) {
  Stopwatch watch;
  const double first = watch.elapsed_seconds();
  EXPECT_GE(first, 0.0);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  const double second = watch.elapsed_seconds();
  EXPECT_GE(second, first);
  EXPECT_GE(second, 0.002 * 0.5);  // slept ~2ms, allow scheduler slop
}

TEST(Stopwatch, ResetRestartsTheClock) {
  Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  watch.reset();
  EXPECT_LT(watch.elapsed_seconds(), 0.002);
}

}  // namespace
}  // namespace dpg
