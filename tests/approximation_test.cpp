// Empirical validation of the approximation analysis of Section IV-B:
//   (i)  greedy ≤ 2 × optimal per flow (Eq. 7–8, the cut-operation lemma),
//   (ii) Lemma 1's lower bound C* ≥ α(C1opt + C2opt),
//   (iii) Theorem 1: C_DPG ≤ (2/α) · C*.
// Since C* (the optimum of the packed model) is not directly computable, we
// check the stronger inequality C_DPG ≤ 2 · (C1opt + C2opt) implied by the
// paper's own proof chain, with the per-item optima taken from exhaustive
// search on small instances and from the DP on larger ones.
#include <gtest/gtest.h>

#include <tuple>

#include "solver/bruteforce.hpp"
#include "solver/dp_greedy.hpp"
#include "solver/greedy.hpp"
#include "solver/optimal_offline.hpp"
#include "test_support.hpp"

namespace dpg {
namespace {

class GreedyWithinTwiceOptimal
    : public ::testing::TestWithParam<std::tuple<std::size_t, double>> {};

TEST_P(GreedyWithinTwiceOptimal, HoldsOnRandomFlows) {
  const auto [n, lambda] = GetParam();
  Rng rng(0xACE0 + n * 7);
  const CostModel model{1.0, lambda, 0.8};
  for (int trial = 0; trial < 50; ++trial) {
    const Flow flow = testing::random_flow(rng, n, 4);
    const Cost greedy = solve_greedy(flow, model, 4).raw_cost;
    const Cost optimal = solve_optimal_offline(flow, model, 4).raw_cost;
    if (optimal == 0.0) {
      ASSERT_EQ(greedy, 0.0);
      continue;
    }
    ASSERT_LE(greedy, 2.0 * optimal + 1e-9)
        << "greedy/optimal = " << greedy / optimal;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GreedyWithinTwiceOptimal,
    ::testing::Combine(::testing::Values<std::size_t>(3, 10, 40, 120),
                       ::testing::Values(0.2, 1.0, 3.0, 8.0)));

// Lemma 1 chain on two-item traces: the DP_Greedy cost is bounded by twice
// the sum of the per-item optima (hence by (2/α)·C*).
class DpGreedyBound
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(DpGreedyBound, WithinTwiceSumOfItemOptima) {
  const auto [alpha, co_prob] = GetParam();
  Rng rng(0xF00 + static_cast<std::uint64_t>(alpha * 100));
  const CostModel model{1.0, 1.0, alpha};
  for (int trial = 0; trial < 30; ++trial) {
    const RequestSequence seq = testing::random_sequence(rng, 40, 3, 2, co_prob);
    DpGreedyOptions options;
    options.theta = 0.0;  // force packing whenever the items ever co-occur
    const DpGreedyResult dpg = solve_dp_greedy(seq, model, options);
    const Cost c1 =
        solve_optimal_offline(make_item_flow(seq, 0), model, 3).raw_cost;
    const Cost c2 =
        solve_optimal_offline(make_item_flow(seq, 1), model, 3).raw_cost;
    ASSERT_LE(dpg.total_cost, 2.0 * (c1 + c2) + 1e-9)
        << "alpha=" << alpha << " co=" << co_prob << " trial=" << trial;
    // And therefore within (2/α) of the true packed optimum C*, which
    // Lemma 1 lower-bounds by α(c1 + c2).
    const Cost lemma1_lower_bound = alpha * (c1 + c2);
    if (lemma1_lower_bound > 0.0) {
      ASSERT_LE(dpg.total_cost / lemma1_lower_bound,
                model.approximation_bound() + 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DpGreedyBound,
    ::testing::Combine(::testing::Values(0.2, 0.4, 0.6, 0.8, 1.0),
                       ::testing::Values(0.1, 0.5, 0.9)));

// On tiny instances, verify the per-item optima against exhaustive search so
// the bound above is anchored to the true optimum, not to the DP itself.
TEST(DpGreedyBound, AnchoredToBruteForceOnTinyInstances) {
  Rng rng(0xCAFE);
  const CostModel model{1.0, 1.0, 0.6};
  for (int trial = 0; trial < 25; ++trial) {
    const RequestSequence seq = testing::random_sequence(rng, 10, 3, 2, 0.5);
    DpGreedyOptions options;
    options.theta = 0.0;
    const DpGreedyResult dpg = solve_dp_greedy(seq, model, options);
    const Cost c1 =
        solve_bruteforce(make_item_flow(seq, 0), model).raw_cost;
    const Cost c2 =
        solve_bruteforce(make_item_flow(seq, 1), model).raw_cost;
    ASSERT_LE(dpg.total_cost, 2.0 * (c1 + c2) + 1e-9);
  }
}

// The cut-operation critical state (Section IV-B item 3): after trimming,
// every request costs at least λ in the optimal schedule and at most 2λ in
// the greedy one.  We verify the per-request greedy decision bound directly:
// each greedy step pays at most μ(t_i − t_{i-1}) + λ, and when
// μ(t_i − t_{i-1}) > λ would make that exceed 2λ, the cache option from
// p(i) is... not necessarily cheaper; instead the *pair* of schedules obeys
// the aggregate 2× bound, which GreedyWithinTwiceOptimal covers.  Here we
// lock the per-step upper bound used in Eq. 7: greedy step ≤ previous-gap
// cache + λ.
TEST(CutOperation, GreedyStepNeverExceedsTransferOption) {
  Rng rng(0xBADA);
  const CostModel model{1.0, 2.0, 0.8};
  for (int trial = 0; trial < 20; ++trial) {
    const Flow flow = testing::random_flow(rng, 30, 4);
    Cost expected_upper = 0.0;
    Time prev = 0.0;
    for (const ServicePoint& p : flow.points) {
      expected_upper += model.mu * (p.time - prev) + model.lambda;
      prev = p.time;
    }
    const Cost greedy = solve_greedy(flow, model, 4).raw_cost;
    ASSERT_LE(greedy, expected_upper + 1e-9);
  }
}

}  // namespace
}  // namespace dpg
