// StreamingEngine: the push-based serving front of the online path.
//
// The two load-bearing guarantees live here:
//   * bit-identity — pushing a trace request-by-request reproduces the batch
//     online solver exactly, at every window/repack/hysteresis setting,
//     locked against full-precision goldens so a refactor of either path
//     cannot silently drift;
//   * liveness of the long-lived contract — snapshots value the stream
//     non-destructively (the final snapshot equals finalize bit-for-bit),
//     push/snapshot are safe from concurrent threads (run under TSan in CI),
//     and steady-state allocation stays flat once the window is warm.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "dpgreedy.hpp"
#include "solver/online_dp_greedy.hpp"
#include "test_support.hpp"

namespace dpg {
namespace {

// The shared fixture trace: skewed Zipf popularity with correlated partner
// pulls — the regime where epoch re-pairing actually fires.
RequestSequence golden_trace() {
  Rng rng(77);
  ZipfTraceConfig config;
  config.server_count = 12;
  config.item_count = 20;
  config.request_count = 3000;
  return generate_zipf_trace(config, rng);
}

const CostModel kModel{/*mu=*/1.0, /*lambda=*/1.0, /*alpha=*/0.8};

OnlineDpGreedyOptions grid_options(std::size_t window, std::size_t repack) {
  OnlineDpGreedyOptions options;
  options.theta = 0.4;
  options.window = window;
  options.repack_interval = repack;
  return options;
}

struct GoldenPoint {
  std::size_t window;
  std::size_t repack;
  double total_cost;  // full precision, locked before the state refactor
};

// Captured from the pre-refactor batch solver at %.17g — every digit counts.
const GoldenPoint kGoldens[] = {
    {8, 1, 14958.483180793215},   {8, 10, 27063.124579415682},
    {8, 50, 31447.265805422317},  {50, 1, 20069.8921332885},
    {50, 10, 23070.892026151188}, {50, 50, 24267.762421796473},
    {200, 1, 24953.503597318482}, {200, 10, 25077.374114509668},
    {200, 50, 25376.592943394997},
};

TEST(StreamingEngine, BatchSolverMatchesPreRefactorGoldens) {
  const RequestSequence trace = golden_trace();
  for (const GoldenPoint& point : kGoldens) {
    const OnlineDpGreedyResult result = solve_online_dp_greedy(
        trace, kModel, grid_options(point.window, point.repack));
    // Bit-identical, not NEAR: the refactor must preserve FP accumulation
    // order exactly.
    EXPECT_EQ(result.total_cost, point.total_cost)
        << "window=" << point.window << " repack=" << point.repack;
  }
}

TEST(StreamingEngine, PushByPushMatchesBatchBitIdentically) {
  const RequestSequence trace = golden_trace();
  for (const GoldenPoint& point : kGoldens) {
    StreamingOptions options;
    options.online = grid_options(point.window, point.repack);
    options.item_count_hint = trace.item_count();
    StreamingEngine engine(kModel, options);
    Cost decision_sum = 0.0;
    for (const Request& r : trace.requests()) {
      decision_sum += engine.push(r.server, r.time, r.items).cost_delta;
    }
    const RunReport report = engine.finish();
    EXPECT_EQ(report.total_cost, point.total_cost)
        << "window=" << point.window << " repack=" << point.repack;
    // Per-push cost deltas partition the total up to close-of-books
    // accruals, so their sum must not exceed it.
    EXPECT_LE(decision_sum, point.total_cost + 1e-9);
  }
}

TEST(StreamingEngine, FinalSnapshotEqualsFinishBitIdentically) {
  const RequestSequence trace = golden_trace();
  StreamingOptions options;
  options.online = grid_options(50, 10);
  StreamingEngine engine(kModel, options);
  for (const Request& r : trace.requests()) {
    engine.push(r.server, r.time, r.items);
  }
  const StreamingSnapshot snapshot = engine.snapshot();
  const RunReport final_report = engine.finish();
  // snapshot() values live replicas non-destructively in the same order
  // finalize() retires them, so the two reports agree to the bit.
  EXPECT_EQ(snapshot.report.total_cost, final_report.total_cost);
  EXPECT_EQ(snapshot.report.transfer_cost, final_report.transfer_cost);
  EXPECT_EQ(snapshot.report.package_count, final_report.package_count);
  EXPECT_EQ(snapshot.report.unpack_events, final_report.unpack_events);
  EXPECT_EQ(snapshot.report.transfer_events, final_report.transfer_events);
  EXPECT_EQ(snapshot.requests, trace.size());
}

TEST(StreamingEngine, SnapshotDeltasPartitionTheCumulativeReport) {
  const RequestSequence trace = golden_trace();
  StreamingOptions options;
  options.online = grid_options(50, 10);
  StreamingEngine engine(kModel, options);
  Cost delta_sum = 0.0;
  std::size_t pushed = 0;
  for (const Request& r : trace.requests()) {
    engine.push(r.server, r.time, r.items);
    if (++pushed % 500 == 0) delta_sum += engine.snapshot().delta.total_cost;
  }
  const StreamingSnapshot last = engine.snapshot();
  delta_sum += last.delta.total_cost;
  EXPECT_NEAR(delta_sum, last.report.total_cost, 1e-9);
}

TEST(StreamingEngine, SnapshotBetweenPushesDoesNotPerturbTheStream) {
  // Valuing mid-stream must be side-effect free: interleaving snapshots
  // cannot change any subsequent decision or the final books.
  const RequestSequence trace = golden_trace();
  StreamingOptions options;
  options.online = grid_options(50, 10);
  StreamingEngine engine(kModel, options);
  std::size_t pushed = 0;
  for (const Request& r : trace.requests()) {
    engine.push(r.server, r.time, r.items);
    if (++pushed % 100 == 0) (void)engine.snapshot();
  }
  EXPECT_EQ(engine.finish().total_cost, 23070.892026151188);
}

TEST(StreamingEngine, CanonicalizesUnsortedAndDuplicatedRows) {
  StreamingOptions options;
  options.online = grid_options(8, 4);
  StreamingEngine messy(kModel, options);
  StreamingEngine clean(kModel, options);
  const std::vector<ItemId> unsorted = {3, 0, 3, 1};
  const std::vector<ItemId> sorted = {0, 1, 3};
  Time t = 0.0;
  for (int i = 0; i < 40; ++i) {
    const ServerId server = static_cast<ServerId>(i % 3);
    messy.push(server, t += 0.5, unsorted);
    clean.push(server, t, sorted);
  }
  EXPECT_EQ(messy.finish().total_cost, clean.finish().total_cost);
}

TEST(StreamingEngine, GrowsTheItemUniverseOnDemand) {
  StreamingOptions options;
  options.online = grid_options(8, 4);
  StreamingEngine engine(kModel, options);  // no item hint at all
  Time t = 0.0;
  for (ItemId item = 0; item < 10; ++item) {
    engine.push(/*server=*/0, t += 1.0, std::vector<ItemId>{item});
  }
  const StreamingSnapshot snapshot = engine.snapshot();
  EXPECT_EQ(snapshot.item_count, 10u);
  EXPECT_EQ(snapshot.requests, 10u);
  EXPECT_GT(engine.finish().total_cost, 0.0);
}

TEST(StreamingEngine, RatioProbeCoversTheWholeStreamAfterFinish) {
  const RequestSequence trace = golden_trace();
  StreamingOptions options;
  options.online = grid_options(50, 10);
  options.probe_chunk = 700;  // 3000 requests -> 4 full chunks + a tail
  StreamingEngine engine(kModel, options);
  for (const Request& r : trace.requests()) {
    engine.push(r.server, r.time, r.items);
  }
  EXPECT_EQ(engine.probe_chunks(), 4u);
  (void)engine.finish();
  // finish() flushes the 200-request tail so the final ratio is over the
  // full stream.
  EXPECT_EQ(engine.probe_chunks(), 5u);
  EXPECT_GT(engine.cost_ratio(), 0.0);
  EXPECT_LT(engine.cost_ratio(), 2.0);
}

TEST(StreamingEngine, SteadyStateAllocationsStayFlatOnceWarm) {
  Rng rng(5);
  const RequestSequence trace = testing::random_sequence(rng, 4000, 8, 16, 0.4);
  StreamingOptions options;
  options.online = grid_options(64, 16);
  options.item_count_hint = trace.item_count();
  StreamingEngine engine(kModel, options);
  std::size_t pushed = 0;
  std::uint64_t allocs_at_quarter = 0;
  for (const Request& r : trace.requests()) {
    engine.push(r.server, r.time, r.items);
    if (++pushed == trace.size() / 4) {
      allocs_at_quarter = engine.snapshot().state_alloc_events;
    }
  }
  // O(window) memory, not O(n): after the warm-up quarter the ring and
  // scratch stop growing entirely.
  EXPECT_EQ(engine.snapshot().state_alloc_events, allocs_at_quarter);
}

TEST(StreamingEngine, PushAndSnapshotAreSafeFromConcurrentThreads) {
  // CI runs this under TSan; the engine serializes push/snapshot/finish on
  // an internal mutex.
  const RequestSequence trace = golden_trace();
  StreamingOptions options;
  options.online = grid_options(50, 10);
  StreamingEngine engine(kModel, options);
  std::atomic<bool> done{false};
  std::thread monitor([&] {
    while (!done.load(std::memory_order_acquire)) {
      if (engine.requests_seen() > 0) {
        const StreamingSnapshot s = engine.snapshot();
        EXPECT_GE(s.report.total_cost, 0.0);
      }
      std::this_thread::yield();
    }
    // One last snapshot after the writer stopped: the full stream is visible.
    EXPECT_EQ(engine.snapshot().requests, trace.size());
  });
  for (const Request& r : trace.requests()) {
    engine.push(r.server, r.time, r.items);
  }
  done.store(true, std::memory_order_release);
  monitor.join();
  EXPECT_EQ(engine.finish().total_cost, 23070.892026151188);
}

TEST(StreamingEngine, SpentAfterFinish) {
  StreamingOptions options;
  options.online = grid_options(8, 4);
  StreamingEngine engine(kModel, options);
  engine.push(0, 1.0, std::vector<ItemId>{0});
  (void)engine.finish();
  EXPECT_THROW(engine.push(0, 2.0, std::vector<ItemId>{0}), InvalidArgument);
  EXPECT_THROW((void)engine.snapshot(), InvalidArgument);
  EXPECT_THROW((void)engine.finish(), InvalidArgument);
}

TEST(StreamingEngine, RejectsNonMonotoneTime) {
  StreamingOptions options;
  options.online = grid_options(8, 4);
  StreamingEngine engine(kModel, options);
  engine.push(0, 5.0, std::vector<ItemId>{0});
  EXPECT_THROW(engine.push(0, 5.0, std::vector<ItemId>{0}), InvalidArgument);
  EXPECT_THROW(engine.push(0, 4.0, std::vector<ItemId>{0}), InvalidArgument);
}

TEST(StreamingEngine, OptionsValidateEagerlyAndNameTheField) {
  const auto message_of = [](const StreamingOptions& options) -> std::string {
    try {
      StreamingEngine engine(kModel, options);
    } catch (const InvalidArgument& e) {
      return e.what();
    }
    return {};
  };
  StreamingOptions options;
  options.online = grid_options(0, 10);
  EXPECT_NE(message_of(options).find("window"), std::string::npos);
  options.online = grid_options(50, 0);
  EXPECT_NE(message_of(options).find("repack_interval"), std::string::npos);
  options.online = grid_options(50, 10);
  options.online.hold_factor = 0.0;
  EXPECT_NE(message_of(options).find("hold_factor"), std::string::npos);
  options.online.hold_factor = -1.0;
  EXPECT_NE(message_of(options).find("hold_factor"), std::string::npos);
  options.online.hold_factor = 1.0;
  options.online.theta = 1.5;
  EXPECT_NE(message_of(options).find("theta"), std::string::npos);
}

TEST(StreamingEngine, TelemetryExpositionDoesNotPerturbResults) {
  // The per-push latency histogram and counters must be pure observers:
  // the same stream with telemetry on and off yields bit-identical reports.
  const RequestSequence trace = golden_trace();
  StreamingOptions options;
  options.online = grid_options(50, 10);
  options.probe_chunk = 500;

  const auto run_once = [&]() {
    StreamingEngine engine(kModel, options);
    for (const Request& r : trace.requests()) {
      engine.push(r.server, r.time, r.items);
    }
    return engine.finish();
  };

  obs::set_enabled(false);
  const RunReport off = run_once();

  obs::set_enabled(true);
  obs::reset_metrics();
  const RunReport on = run_once();
  const obs::MetricsSnapshot metrics = obs::snapshot_metrics();
  obs::set_enabled(false);

  EXPECT_EQ(on.total_cost, off.total_cost);
  EXPECT_EQ(on.transfer_cost, off.transfer_cost);
  EXPECT_EQ(on.package_count, off.package_count);
  EXPECT_EQ(on.unpack_events, off.unpack_events);
  EXPECT_EQ(on.transfer_events, off.transfer_events);

  // And the histogram actually observed every push.
  bool found = false;
  for (const auto& [name, data] : metrics.histograms) {
    if (name == "stream.push_ns") {
      found = true;
      EXPECT_EQ(data.count, trace.size());
    }
  }
  EXPECT_TRUE(found);
}

TEST(StreamingEngine, DecisionEpochTracksRepackRounds) {
  StreamingOptions options;
  options.online = grid_options(8, 5);
  StreamingEngine engine(kModel, options);
  Time t = 0.0;
  std::size_t repacks_seen = 0;
  for (int i = 0; i < 50; ++i) {
    const StreamingDecision d =
        engine.push(static_cast<ServerId>(i % 2), t += 0.5,
                    std::vector<ItemId>{0, 1});
    if (d.repacked) ++repacks_seen;
    EXPECT_EQ(d.epoch, repacks_seen);
  }
  EXPECT_EQ(repacks_seen, 10u);  // every 5th of 50 pushes
}

}  // namespace
}  // namespace dpg
