// Cross-checks of the sparse Phase-1 path against the dense triangle: the
// two representations must agree on every count, every Jaccard value, the
// observed-pair dictionary, the frequent-pairs view and — the part Phase 2
// consumes — the exact packing produced by greedy_pairing.
#include <gtest/gtest.h>

#include <algorithm>

#include "parallel/thread_pool.hpp"
#include "solver/pairing.hpp"
#include "test_support.hpp"

namespace dpg {
namespace {

CorrelationOptions dense_options() {
  CorrelationOptions options;
  options.mode = CorrelationOptions::Mode::kDense;
  return options;
}

CorrelationOptions sparse_options(ThreadPool* pool = nullptr) {
  CorrelationOptions options;
  options.mode = CorrelationOptions::Mode::kSparse;
  options.pool = pool;
  return options;
}

TEST(PairCountMap, PacksPairsCanonically) {
  const std::uint64_t key = PairCountMap::pack(7, 3);
  EXPECT_EQ(key, PairCountMap::pack(3, 7));
  EXPECT_EQ(PairCountMap::unpack_a(key), 3u);
  EXPECT_EQ(PairCountMap::unpack_b(key), 7u);
}

TEST(PairCountMap, CountsAndGrowsPastInitialCapacity) {
  PairCountMap map;
  for (ItemId a = 0; a < 64; ++a) {
    for (ItemId b = a + 1; b < 64; b += 7) {
      map.add(PairCountMap::pack(a, b), a + 1);
    }
  }
  std::size_t distinct = 0;
  for (ItemId a = 0; a < 64; ++a) {
    for (ItemId b = a + 1; b < 64; b += 7) {
      ++distinct;
      ASSERT_EQ(map.count(PairCountMap::pack(a, b)), a + 1);
    }
  }
  EXPECT_EQ(map.size(), distinct);
  EXPECT_EQ(map.count(PairCountMap::pack(0, 2)), 0u);  // never inserted
}

TEST(PairCountMap, MergeAddsCounts) {
  PairCountMap a;
  PairCountMap b;
  a.add(PairCountMap::pack(0, 1), 2);
  a.add(PairCountMap::pack(1, 2), 1);
  b.add(PairCountMap::pack(0, 1), 3);
  b.add(PairCountMap::pack(4, 5), 7);
  a.merge(b);
  EXPECT_EQ(a.count(PairCountMap::pack(0, 1)), 5u);
  EXPECT_EQ(a.count(PairCountMap::pack(1, 2)), 1u);
  EXPECT_EQ(a.count(PairCountMap::pack(4, 5)), 7u);
  EXPECT_EQ(a.size(), 3u);
}

TEST(SparseCorrelation, AgreesWithDenseOnEveryPairStatistic) {
  Rng rng(101);
  const RequestSequence seq = testing::random_sequence(rng, 400, 6, 24, 0.5);
  const CorrelationAnalysis dense(seq, dense_options());
  const CorrelationAnalysis sparse(seq, sparse_options());
  ASSERT_TRUE(sparse.is_sparse());
  ASSERT_FALSE(dense.is_sparse());
  EXPECT_EQ(dense.observed_pair_count(), sparse.observed_pair_count());
  for (ItemId a = 0; a < 24; ++a) {
    ASSERT_EQ(dense.frequency(a), sparse.frequency(a));
    for (ItemId b = 0; b < 24; ++b) {
      ASSERT_EQ(dense.co_frequency(a, b), sparse.co_frequency(a, b));
      ASSERT_DOUBLE_EQ(dense.jaccard(a, b), sparse.jaccard(a, b));
    }
  }
}

TEST(SparseCorrelation, SortedPairsAreTheObservedPrefixOfDense) {
  Rng rng(7);
  const RequestSequence seq = testing::random_sequence(rng, 300, 5, 16, 0.6);
  const CorrelationAnalysis dense(seq, dense_options());
  const CorrelationAnalysis sparse(seq, sparse_options());

  std::vector<PairCorrelation> observed;
  for (const PairCorrelation& p : dense.sorted_pairs()) {
    if (p.co_freq > 0) observed.push_back(p);
  }
  const auto& got = sparse.sorted_pairs();
  ASSERT_EQ(got.size(), observed.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i].a, observed[i].a);
    ASSERT_EQ(got[i].b, observed[i].b);
    ASSERT_EQ(got[i].co_freq, observed[i].co_freq);
    ASSERT_DOUBLE_EQ(got[i].jaccard, observed[i].jaccard);
  }
}

TEST(SparseCorrelation, FrequentPairsIdenticalAcrossRepresentations) {
  Rng rng(41);
  const RequestSequence seq = testing::random_sequence(rng, 500, 8, 20, 0.4);
  const CorrelationAnalysis dense(seq, dense_options());
  const CorrelationAnalysis sparse(seq, sparse_options());
  for (const double threshold : {0.0, 0.1, 0.25, 0.5, 0.9}) {
    const auto a = dense.frequent_pairs(threshold);
    const auto b = sparse.frequent_pairs(threshold);
    ASSERT_EQ(a.size(), b.size()) << "threshold " << threshold;
    for (std::size_t i = 0; i < a.size(); ++i) {
      ASSERT_EQ(a[i].a, b[i].a);
      ASSERT_EQ(a[i].b, b[i].b);
      ASSERT_EQ(a[i].co_freq, b[i].co_freq);
    }
  }
}

TEST(SparseCorrelation, GreedyPairingPacksIdenticallyToDense) {
  for (const std::uint64_t seed : {1ull, 2ull, 3ull, 4ull, 5ull}) {
    Rng rng(seed);
    const RequestSequence seq =
        testing::random_sequence(rng, 350, 6, 18, 0.55);
    const CorrelationAnalysis dense(seq, dense_options());
    const CorrelationAnalysis sparse(seq, sparse_options());
    for (const double theta : {0.1, 0.3, 0.5}) {
      for (const bool inclusive : {false, true}) {
        const Packing pd = greedy_pairing(dense, theta, inclusive);
        const Packing ps = greedy_pairing(sparse, theta, inclusive);
        ASSERT_EQ(pd.pairs.size(), ps.pairs.size());
        for (std::size_t i = 0; i < pd.pairs.size(); ++i) {
          ASSERT_EQ(pd.pairs[i].a, ps.pairs[i].a);
          ASSERT_EQ(pd.pairs[i].b, ps.pairs[i].b);
          ASSERT_DOUBLE_EQ(pd.pairs[i].jaccard, ps.pairs[i].jaccard);
        }
        ASSERT_EQ(pd.singles, ps.singles);
      }
    }
  }
}

TEST(SparseCorrelation, ShardedCountingMatchesSerial) {
  ThreadPool pool(4);
  Rng rng(77);
  const RequestSequence seq = testing::random_sequence(rng, 800, 8, 32, 0.5);
  const CorrelationAnalysis serial(seq, sparse_options());
  const CorrelationAnalysis sharded(seq, sparse_options(&pool));
  ASSERT_EQ(serial.observed_pair_count(), sharded.observed_pair_count());
  const auto& a = serial.sorted_pairs();
  const auto& b = sharded.sorted_pairs();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].a, b[i].a);
    ASSERT_EQ(a[i].b, b[i].b);
    ASSERT_EQ(a[i].co_freq, b[i].co_freq);
  }
}

TEST(SparseCorrelation, AutoModeSwitchesOnItemCount) {
  Rng rng(3);
  const RequestSequence seq = testing::random_sequence(rng, 100, 4, 10, 0.5);
  CorrelationOptions options;  // kAuto
  options.dense_max_items = 8;
  EXPECT_TRUE(CorrelationAnalysis(seq, options).is_sparse());
  options.dense_max_items = 10;
  EXPECT_FALSE(CorrelationAnalysis(seq, options).is_sparse());
}

TEST(SparseCorrelation, GroupingAgreesThroughHashAccessors) {
  // greedy_grouping probes jaccard(x, y) for cross pairs, exercising the
  // sparse hash lookup path rather than the sorted dictionary.
  Rng rng(19);
  const RequestSequence seq = testing::random_sequence(rng, 400, 5, 14, 0.6);
  const CorrelationAnalysis dense(seq, dense_options());
  const CorrelationAnalysis sparse(seq, sparse_options());
  const GroupPacking gd = greedy_grouping(dense, 0.2, 3);
  const GroupPacking gs = greedy_grouping(sparse, 0.2, 3);
  ASSERT_EQ(gd.groups, gs.groups);
  ASSERT_EQ(gd.singles, gs.singles);
}

}  // namespace
}  // namespace dpg
