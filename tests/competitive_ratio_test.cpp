// Empirical competitive-ratio regression for the online path.
//
// The paper's offline setting knows the whole trajectory; the online
// extension must stay within a small constant of it.  These tests lock the
// measured online-vs-offline cost ratio on two seeded workloads — skewed
// Zipf popularity and a bursty diurnal pattern — against upper bounds with
// headroom over today's measurements (zipf: dp_greedy 0.69, break-even
// 1.11; bursty: 1.01 / 1.03).  A policy regression that degrades serving
// quality trips the bound long before it would show up in a golden diff.
//
// The offline divisor is solve_optimal_baseline: the per-item offline DP
// optimum, no packaging.  The online DP_Greedy ratio can therefore dip
// below 1 — its α-discounted package transfers use a lever the divisor does
// not have — which is itself worth asserting: packaging must *help* on a
// correlated workload, not hurt.
#include <gtest/gtest.h>

#include <cstddef>

#include "core/flow.hpp"
#include "solver/baselines.hpp"
#include "solver/online.hpp"
#include "solver/online_dp_greedy.hpp"
#include "test_support.hpp"
#include "trace/generators.hpp"

namespace dpg {
namespace {

const CostModel kModel{/*mu=*/1.0, /*lambda=*/1.0, /*alpha=*/0.8};

double online_dp_greedy_ratio(const RequestSequence& trace) {
  OnlineDpGreedyOptions options;
  options.theta = 0.4;
  options.window = 50;
  options.repack_interval = 10;
  const Cost online = solve_online_dp_greedy(trace, kModel, options).total_cost;
  const Cost offline = solve_optimal_baseline(trace, kModel).total_cost;
  EXPECT_GT(offline, 0.0);
  return online / offline;
}

double break_even_ratio(const RequestSequence& trace) {
  Cost online = 0.0;
  for (ItemId item = 0; item < trace.item_count(); ++item) {
    online += solve_online_break_even(make_item_flow(trace, item), kModel,
                                      trace.server_count())
                  .raw_cost;
  }
  const Cost offline = solve_optimal_baseline(trace, kModel).total_cost;
  EXPECT_GT(offline, 0.0);
  return online / offline;
}

RequestSequence zipf_trace() {
  Rng rng(77);
  ZipfTraceConfig config;
  config.server_count = 12;
  config.item_count = 20;
  config.request_count = 3000;
  return generate_zipf_trace(config, rng);
}

RequestSequence diurnal_trace() {
  Rng rng(123);
  BurstyTraceConfig config;
  config.server_count = 10;
  config.item_count = 12;
  config.burst_count = 40;
  config.requests_per_burst = 30;
  return generate_bursty_trace(config, rng);
}

TEST(CompetitiveRatio, OnlineDpGreedyOnZipf) {
  const double ratio = online_dp_greedy_ratio(zipf_trace());
  RecordProperty("ratio", std::to_string(ratio));
  // Measured 0.689: the package discount beats the per-item offline optimum
  // on this heavily correlated workload.  Both sides of the bracket are
  // regressions — losing the discount (ratio -> 1.1+) or a costing bug that
  // undercounts (ratio -> 0.3).
  EXPECT_GT(ratio, 0.5);
  EXPECT_LT(ratio, 0.85);
}

TEST(CompetitiveRatio, OnlineDpGreedyOnDiurnalBursts) {
  const double ratio = online_dp_greedy_ratio(diurnal_trace());
  RecordProperty("ratio", std::to_string(ratio));
  // Measured 1.0025 — non-stationary gaps give packaging little to exploit,
  // so online should track the offline optimum closely.
  EXPECT_GT(ratio, 0.9);
  EXPECT_LT(ratio, 1.15);
}

TEST(CompetitiveRatio, BreakEvenOnZipf) {
  const double ratio = break_even_ratio(zipf_trace());
  RecordProperty("ratio", std::to_string(ratio));
  // Measured 1.108: classic rent-or-buy overhead, far under the theoretical
  // small-constant bound.
  EXPECT_GE(ratio, 1.0);  // no packaging lever: offline optimum is a floor
  EXPECT_LT(ratio, 1.30);
}

TEST(CompetitiveRatio, BreakEvenOnDiurnalBursts) {
  const double ratio = break_even_ratio(diurnal_trace());
  RecordProperty("ratio", std::to_string(ratio));
  // Measured 1.025.
  EXPECT_GE(ratio, 1.0);
  EXPECT_LT(ratio, 1.20);
}

TEST(CompetitiveRatio, PackagingNeverLosesToPerItemOnlineOnZipf) {
  // The two-phase online policy (pairing + break-even) must not cost more
  // than running plain per-item break-even on the same stream: Phase 1 only
  // packs pairs whose windowed correlation clears θ.
  const RequestSequence trace = zipf_trace();
  OnlineDpGreedyOptions options;
  options.theta = 0.4;
  options.window = 50;
  options.repack_interval = 10;
  const Cost paired = solve_online_dp_greedy(trace, kModel, options).total_cost;
  Cost per_item = 0.0;
  for (ItemId item = 0; item < trace.item_count(); ++item) {
    per_item += solve_online_break_even(make_item_flow(trace, item), kModel,
                                        trace.server_count())
                    .raw_cost;
  }
  EXPECT_LT(paired, per_item);
}

}  // namespace
}  // namespace dpg
