// The branch-light DP kernels (solver/kernels.hpp) against their scalar
// references: every kernel must return the same BITS, not just values
// within a tolerance — the kernels replace the reference loops inside
// solve_optimal_offline, and Phase-2 totals are sums of thousands of these
// primitives, so any ulp of drift compounds.  Ties are exercised on
// purpose (quantized random values), and the window-min is additionally
// checked against the SuffixMin stack it backstops.
#include <gtest/gtest.h>

#include "test_support.hpp"

#include <cmath>
#include <utility>
#include <vector>

#include "solver/kernels.hpp"
#include "solver/optimal_offline.hpp"
#include "solver/workspace.hpp"
#include "util/rng.hpp"

namespace dpg {
namespace {

/// Random value columns with deliberate equal runs: quantizing to eighths
/// makes ties common, which is where argmin rules diverge if wrong.
std::vector<double> quantized_column(Rng& rng, std::size_t n) {
  std::vector<double> v(n);
  for (double& x : v) {
    x = 0.125 * static_cast<double>(rng.next_int(-16, 16));
  }
  return v;
}

TEST(Kernels, ActiveIsaIsReported) {
  const std::string isa = kernels::active_isa();
  EXPECT_TRUE(isa == "sse2" || isa == "scalar") << isa;
}

TEST(Kernels, WindowMinMatchesScalarOnTieHeavyColumns) {
  Rng rng(101);
  for (int round = 0; round < 500; ++round) {
    const std::size_t n = static_cast<std::size_t>(rng.next_int(1, 130));
    const std::vector<double> v = quantized_column(rng, n);
    const std::size_t lo = rng.next_below(n);
    const std::size_t hi = lo + 1 + rng.next_below(n - lo);
    const auto fast = kernels::window_min(v.data(), lo, hi);
    const auto slow = kernels::window_min_scalar(v.data(), lo, hi);
    ASSERT_EQ(fast.first, slow.first) << "round " << round;
    ASSERT_EQ(fast.second, slow.second) << "round " << round;
  }
}

TEST(Kernels, WindowMinMatchesSuffixMinStack) {
  // The kernel's wide-window backstop is SuffixMin; on any window ending at
  // the push frontier the two must agree on both value and tie index.
  Rng rng(102);
  for (int round = 0; round < 200; ++round) {
    const std::size_t n = static_cast<std::size_t>(rng.next_int(2, 200));
    const std::vector<double> v = quantized_column(rng, n);
    SuffixMin suffix;
    for (std::size_t i = 0; i < n; ++i) {
      suffix.push(static_cast<std::int32_t>(i), v[i]);
    }
    const std::size_t lo = rng.next_below(n);
    const auto stack = suffix.query(static_cast<std::int32_t>(lo));
    const auto scan = kernels::window_min(v.data(), lo, n);
    ASSERT_EQ(scan.first, stack.first) << "round " << round;
    ASSERT_EQ(scan.second, stack.second) << "round " << round;
  }
}

TEST(Kernels, WindowMinSingleElement) {
  const double v[] = {4.0};
  const auto result = kernels::window_min(v, 0, 1);
  EXPECT_EQ(result.first, 0);
  EXPECT_EQ(result.second, 4.0);
}

TEST(Kernels, WindowMinTiePicksLatestIndex) {
  const double v[] = {2.0, 1.0, 3.0, 1.0, 5.0};
  EXPECT_EQ(kernels::window_min(v, 0, 5).first, 3);
  EXPECT_EQ(kernels::window_min_scalar(v, 0, 5).first, 3);
  EXPECT_EQ(kernels::window_min(v, 0, 3).first, 1);
}

TEST(Kernels, LinkCostsHandlesMissingPrevAndZeroMu) {
  const Time times[] = {0.0, 1.0, 2.5, 4.0};
  const std::int32_t prev[] = {-1, -1, 0, 1};
  Cost link[4];
  // μ = 0 with a missing p(j) must yield ∞, not 0·∞ = NaN.
  kernels::link_costs(times, prev, 0.0, 4, link);
  EXPECT_EQ(link[1], kInfiniteCost);
  EXPECT_EQ(link[2], 0.0);
  EXPECT_FALSE(std::isnan(link[1]));
  kernels::link_costs(times, prev, 2.0, 4, link);
  EXPECT_EQ(link[2], 2.0 * 2.5);
  EXPECT_EQ(link[3], 2.0 * 3.0);
}

TEST(Kernels, WAndPrefixMatchesScalarWithInfinities) {
  Rng rng(103);
  for (int round = 0; round < 200; ++round) {
    const std::size_t n = static_cast<std::size_t>(rng.next_int(1, 70));
    std::vector<Cost> link(n);
    for (Cost& x : link) {
      x = rng.next_bool(0.2) ? kInfiniteCost
                             : 0.125 * static_cast<double>(rng.next_int(0, 40));
    }
    const double lambda = 0.25 * static_cast<double>(rng.next_int(0, 12));
    std::vector<Cost> w_fast(n), p_fast(n), w_slow(n), p_slow(n);
    kernels::w_and_prefix(link.data(), lambda, n, w_fast.data(), p_fast.data());
    kernels::w_and_prefix_scalar(link.data(), lambda, n, w_slow.data(),
                                 p_slow.data());
    for (std::size_t j = 0; j < n; ++j) {
      ASSERT_EQ(w_fast[j], w_slow[j]) << "round " << round << " j " << j;
      ASSERT_EQ(p_fast[j], p_slow[j]) << "round " << round << " j " << j;
    }
  }
}

TEST(Kernels, ServeChoice3MatchesReferenceChain) {
  const auto reference = [](Cost cache, Cost transfer, Cost package,
                            Cost* cost) {
    // The original if/else chain from dp_greedy's singleton pass.
    if (cache <= transfer && cache <= package) {
      *cost = cache;
      return kernels::kChoiceCache;
    }
    if (transfer <= package) {
      *cost = transfer;
      return kernels::kChoiceTransfer;
    }
    *cost = package;
    return kernels::kChoicePackage;
  };
  Rng rng(104);
  for (int round = 0; round < 2000; ++round) {
    const auto pick = [&rng] {
      return rng.next_bool(0.1)
                 ? kInfiniteCost
                 : 0.5 * static_cast<double>(rng.next_int(0, 8));
    };
    const Cost cache = pick(), transfer = pick(), package = pick();
    Cost want_cost = 0.0, got_cost = 0.0;
    const auto want = reference(cache, transfer, package, &want_cost);
    const auto got = kernels::serve_choice3(cache, transfer, package,
                                            &got_cost);
    ASSERT_EQ(got, want) << cache << " " << transfer << " " << package;
    ASSERT_EQ(got_cost, want_cost);
  }
}

TEST(Kernels, MinCacheTransferChargesLambdaOnlyOnStrictWin) {
  bool took_transfer = true;
  EXPECT_EQ(kernels::min_cache_transfer(2.0, 2.0, &took_transfer), 2.0);
  EXPECT_FALSE(took_transfer);  // a tie counts as cache
  EXPECT_EQ(kernels::min_cache_transfer(3.0, 2.0, &took_transfer), 2.0);
  EXPECT_TRUE(took_transfer);
  EXPECT_EQ(kernels::min_cache_transfer(kInfiniteCost, 2.0, &took_transfer),
            2.0);
  EXPECT_TRUE(took_transfer);
}

TEST(Kernels, JaccardRowMatchesPairwiseFormula) {
  const std::size_t freq[] = {4, 0, 3, 5};
  const std::size_t co_row[] = {4, 0, 2, 0};
  double out[4] = {-1.0, -1.0, -1.0, -1.0};
  kernels::jaccard_row(freq, co_row, /*freq_a=*/4, /*b_begin=*/1, 4, out);
  EXPECT_EQ(out[0], -1.0);  // below b_begin: untouched
  EXPECT_EQ(out[1], 0.0);   // empty union
  EXPECT_EQ(out[2], 2.0 / 5.0);
  EXPECT_EQ(out[3], 0.0);
}

// ---------------------------------------------------------------------------
// The kernels inside the DP: solve_optimal_offline with use_kernels on and
// off must agree on every bit of cost and schedule.

void expect_same_solve(const Flow& flow, const CostModel& model,
                       std::size_t server_count, const std::string& context) {
  OptimalOfflineOptions with_kernels;
  with_kernels.use_kernels = true;
  OptimalOfflineOptions without;
  without.use_kernels = false;
  const SolveResult a =
      solve_optimal_offline(flow, model, server_count, with_kernels);
  const SolveResult b =
      solve_optimal_offline(flow, model, server_count, without);
  ASSERT_EQ(a.cost, b.cost) << context;
  ASSERT_EQ(a.raw_cost, b.raw_cost) << context;
  ASSERT_EQ(a.schedule.segments().size(), b.schedule.segments().size())
      << context;
  for (std::size_t s = 0; s < a.schedule.segments().size(); ++s) {
    ASSERT_EQ(a.schedule.segments()[s].server, b.schedule.segments()[s].server)
        << context;
    ASSERT_EQ(a.schedule.segments()[s].begin, b.schedule.segments()[s].begin)
        << context;
    ASSERT_EQ(a.schedule.segments()[s].end, b.schedule.segments()[s].end)
        << context;
  }
  ASSERT_EQ(a.schedule.transfers().size(), b.schedule.transfers().size())
      << context;
  for (std::size_t t = 0; t < a.schedule.transfers().size(); ++t) {
    ASSERT_EQ(a.schedule.transfers()[t].from, b.schedule.transfers()[t].from)
        << context;
    ASSERT_EQ(a.schedule.transfers()[t].to, b.schedule.transfers()[t].to)
        << context;
    ASSERT_EQ(a.schedule.transfers()[t].time, b.schedule.transfers()[t].time)
        << context;
  }
}

TEST(KernelDp, FuzzedFlowsAreBitIdentical) {
  Rng rng(105);
  CostModel model = testing::running_example_model();
  for (int round = 0; round < 150; ++round) {
    const std::size_t n = static_cast<std::size_t>(rng.next_int(1, 220));
    const std::size_t servers = static_cast<std::size_t>(rng.next_int(1, 12));
    const Flow flow = testing::random_flow(rng, n, servers);
    expect_same_solve(flow, model, servers,
                      "round " + std::to_string(round));
  }
}

TEST(KernelDp, WideWindowsCrossTheSuffixMinBackstop) {
  // Few servers and many points per server stretch the D(i) windows past
  // kWindowScanThreshold, forcing the SuffixMin fallback inside the kernel
  // path; both sides of the threshold must agree with the scalar DP.
  Rng rng(106);
  CostModel model = testing::running_example_model();
  const Flow flow =
      testing::random_flow(rng, 3 * kernels::kWindowScanThreshold, 2);
  expect_same_solve(flow, model, 2, "wide windows");
}

TEST(KernelDp, ExtremeCostRatiosAreBitIdentical) {
  Rng rng(107);
  for (const double mu : {0.0, 0.01, 1.0, 100.0}) {
    for (const double lambda : {0.0, 1.0, 50.0}) {
      CostModel model;
      model.mu = mu;
      model.lambda = lambda;
      const Flow flow = testing::random_flow(rng, 120, 4);
      expect_same_solve(flow, model, 4,
                        "mu=" + std::to_string(mu) +
                            " lambda=" + std::to_string(lambda));
    }
  }
}

}  // namespace
}  // namespace dpg
