// Round-trip and parser-equivalence properties of the streaming trace I/O.
//
// The streaming parser (trace_from_csv) replaced the CsvTable-based one;
// trace_from_csv_legacy is kept as the oracle.  Every generator family must
// survive trace_from_csv(trace_to_csv(seq)) exactly — same dimensions,
// servers, times (bit-identical doubles via %.17g) and item sets — and the
// two parsers must agree on every accepted input.
#include <gtest/gtest.h>

#include "test_support.hpp"

#include <cstdio>
#include <string>

#include "mobility/simulator.hpp"
#include "obs/metrics.hpp"
#include "trace/generators.hpp"
#include "trace/io.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace dpg {
namespace {

using testing::items_of;
using testing::same_sequence;

void expect_exact_roundtrip(const RequestSequence& original) {
  const std::string csv = trace_to_csv(original);
  const RequestSequence restored =
      trace_from_csv(csv, original.server_count(), original.item_count());
  EXPECT_TRUE(same_sequence(original, restored));
  // And the serialized forms agree byte-for-byte (doubles round-trip).
  EXPECT_EQ(csv, trace_to_csv(restored));
}

TEST(TraceRoundTrip, ZipfTraceIsExact) {
  ZipfTraceConfig config;
  config.request_count = 400;
  Rng rng(11);
  expect_exact_roundtrip(generate_zipf_trace(config, rng));
}

TEST(TraceRoundTrip, PairedTraceIsExact) {
  PairedTraceConfig config;
  config.requests_per_pair = 80;
  Rng rng(12);
  expect_exact_roundtrip(generate_paired_trace(config, rng));
}

TEST(TraceRoundTrip, BurstyTraceIsExact) {
  BurstyTraceConfig config;
  Rng rng(13);
  expect_exact_roundtrip(generate_bursty_trace(config, rng));
}

TEST(TraceRoundTrip, MobilityTraceIsExact) {
  MobilityConfig config;
  config.duration = 50.0;
  Rng rng(14);
  expect_exact_roundtrip(simulate_mobility(config, rng));
}

TEST(TraceRoundTrip, StreamingParserMatchesLegacyParser) {
  PairedTraceConfig config;
  config.pair_jaccard = {0.2, 0.5, 0.8};
  config.requests_per_pair = 100;
  Rng rng(15);
  const std::string csv = trace_to_csv(generate_paired_trace(config, rng));
  EXPECT_TRUE(same_sequence(trace_from_csv(csv), trace_from_csv_legacy(csv)));
}

TEST(TraceRoundTrip, DuplicateItemsInRowAreDeduplicated) {
  // Regression: the CsvTable-based loader used to reject "3;3;7" because it
  // sorted without deduplicating.  Both parsers must accept it now.
  const std::string csv = "server,time,items\n0,1.0,3;3;7\n1,2.0,7;3;3;7\n";
  const RequestSequence streamed = trace_from_csv(csv);
  const RequestSequence legacy = trace_from_csv_legacy(csv);
  EXPECT_TRUE(same_sequence(streamed, legacy));
  EXPECT_EQ(items_of(streamed[0]), (std::vector<ItemId>{3, 7}));
  EXPECT_EQ(items_of(streamed[1]), (std::vector<ItemId>{3, 7}));
}

TEST(TraceRoundTrip, ToleratesCrlfAndBlankLines) {
  const RequestSequence seq = trace_from_csv(
      "server,time,items\r\n\r\n0,1.0,0;1\r\n\n1,2.0,1\r\n");
  ASSERT_EQ(seq.size(), 2u);
  EXPECT_EQ(items_of(seq[0]), (std::vector<ItemId>{0, 1}));
  EXPECT_EQ(seq[1].server, 1u);
}

TEST(TraceRoundTrip, AcceptsAnyColumnOrderAndExtras) {
  const RequestSequence seq = trace_from_csv(
      "items,extra,time,server\n0;2,ignored,1.5,3\n4,x,2.0,1\n");
  ASSERT_EQ(seq.size(), 2u);
  EXPECT_EQ(seq[0].server, 3u);
  EXPECT_EQ(seq[0].time, 1.5);
  EXPECT_EQ(items_of(seq[0]), (std::vector<ItemId>{0, 2}));
  EXPECT_EQ(seq.item_count(), 5u);
}

TEST(TraceRoundTrip, AcceptsPlainQuotedFields) {
  const RequestSequence seq =
      trace_from_csv("\"server\",\"time\",\"items\"\n\"2\",\"1.25\",\"0;1\"\n");
  ASSERT_EQ(seq.size(), 1u);
  EXPECT_EQ(seq[0].server, 2u);
  EXPECT_EQ(seq[0].time, 1.25);
  EXPECT_EQ(items_of(seq[0]), (std::vector<ItemId>{0, 1}));
}

TEST(TraceRoundTrip, RejectsRaggedRows) {
  EXPECT_THROW((void)trace_from_csv("server,time,items\n0,1.0\n"), IoError);
  EXPECT_THROW((void)trace_from_csv("server,time,items\n0,1.0,0,9\n"),
               IoError);
}

TEST(TraceRoundTrip, FileRoundTripIsExact) {
  ZipfTraceConfig config;
  config.request_count = 300;
  Rng rng(16);
  const RequestSequence original = generate_zipf_trace(config, rng);
  const std::string path = ::testing::TempDir() + "dpg_roundtrip_exact.csv";
  write_trace_file(path, original);
  const RequestSequence restored =
      read_trace_file(path, original.server_count(), original.item_count());
  std::remove(path.c_str());
  EXPECT_TRUE(same_sequence(original, restored));
}

TEST(TraceRoundTrip, ParseCountersRecordRowsAndBytes) {
  obs::set_enabled(true);
  obs::reset_metrics();
  const std::string csv = "server,time,items\n0,1.0,0\n1,2.0,1;2\n";
  const RequestSequence seq = trace_from_csv(csv);
  (void)seq;
  const obs::MetricsSnapshot snapshot = obs::snapshot_metrics();
  obs::set_enabled(false);
  obs::reset_metrics();
  EXPECT_EQ(obs::counter_value(snapshot, "trace.rows_parsed"), 2u);
  EXPECT_EQ(obs::counter_value(snapshot, "trace.bytes_parsed"), csv.size());
}

}  // namespace
}  // namespace dpg
