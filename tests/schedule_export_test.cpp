// Tests for schedule CSV/DOT export.
#include <gtest/gtest.h>

#include "core/schedule_export.hpp"
#include "util/error.hpp"

namespace dpg {
namespace {

Schedule sample_schedule() {
  Schedule s(2);
  s.add_segment(0, 0.0, 1.4);
  s.add_segment(1, 0.8, 4.0);
  s.add_transfer(0, 1, 0.8);
  return s;
}

TEST(ScheduleExport, CsvRoundTripPreservesStructure) {
  const Schedule original = sample_schedule();
  const Schedule restored = schedule_from_csv(schedule_to_csv(original), 2);
  ASSERT_EQ(restored.segments().size(), original.segments().size());
  ASSERT_EQ(restored.transfers().size(), original.transfers().size());
  for (std::size_t i = 0; i < original.segments().size(); ++i) {
    EXPECT_EQ(restored.segments()[i].server, original.segments()[i].server);
    EXPECT_DOUBLE_EQ(restored.segments()[i].begin, original.segments()[i].begin);
    EXPECT_DOUBLE_EQ(restored.segments()[i].end, original.segments()[i].end);
  }
  EXPECT_EQ(restored.transfers()[0].from, 0u);
  EXPECT_EQ(restored.transfers()[0].to, 1u);
  EXPECT_EQ(restored.group_size(), 2u);
  const CostModel model{1, 1, 0.8};
  EXPECT_DOUBLE_EQ(restored.cost(model), original.cost(model));
}

TEST(ScheduleExport, CsvRejectsUnknownKind) {
  EXPECT_THROW(
      (void)schedule_from_csv("kind,server,from,begin,end\nwarp,0,,1,2\n"),
      IoError);
}

TEST(ScheduleExport, DotContainsEveryPiece) {
  Flow flow;
  flow.points.push_back({1, 0.8, 0});
  const std::string dot = schedule_to_dot(sample_schedule(), flow, "demo");
  EXPECT_NE(dot.find("digraph \"demo\""), std::string::npos);
  EXPECT_NE(dot.find("cache 1.400"), std::string::npos);
  EXPECT_NE(dot.find("cache 3.200"), std::string::npos);
  EXPECT_NE(dot.find("transfer"), std::string::npos);
  EXPECT_NE(dot.find("color=red"), std::string::npos);  // service point
  EXPECT_EQ(dot.back(), '\n');
}

TEST(ScheduleExport, EmptyScheduleRoundTrips) {
  const Schedule empty;
  const Schedule restored = schedule_from_csv(schedule_to_csv(empty));
  EXPECT_TRUE(restored.segments().empty());
  EXPECT_TRUE(restored.transfers().empty());
}

}  // namespace
}  // namespace dpg
