// Tests for the replay engine.
#include <gtest/gtest.h>

#include "sim/replay.hpp"
#include "sim/report.hpp"
#include "solver/optimal_offline.hpp"
#include "test_support.hpp"

namespace dpg {
namespace {

constexpr double kTol = 1e-9;

TEST(Replay, EmptyPlansAreFeasibleAndFree) {
  const ReplayMetrics m = replay_plans({}, CostModel{1, 1, 0.8}, 3);
  EXPECT_TRUE(m.feasible);
  EXPECT_EQ(m.total_cost, 0.0);
  EXPECT_EQ(m.service_count, 0u);
}

TEST(Replay, ClassifiesCacheHitsVersusTransferArrivals) {
  Flow flow;
  flow.points.push_back({0, 1.0, 0});  // served by the origin cache line
  flow.points.push_back({1, 2.0, 1});  // served by a transfer at 2.0
  Schedule schedule;
  schedule.add_segment(0, 0.0, 2.0);
  schedule.add_transfer(0, 1, 2.0);
  const ReplayMetrics m =
      replay_plans({FlowPlan{flow, schedule, "demo"}}, CostModel{1, 1, 0.8}, 2);
  ASSERT_TRUE(m.feasible) << m.issue;
  EXPECT_EQ(m.cache_hits, 1u);
  EXPECT_EQ(m.transfer_arrivals, 1u);
  EXPECT_NEAR(m.cache_hit_ratio(), 0.5, kTol);
  EXPECT_EQ(m.transfer_count, 1u);
  EXPECT_NEAR(m.total_cache_time, 2.0, kTol);
}

TEST(Replay, ReportsInfeasiblePlanWithLabel) {
  Flow flow;
  flow.points.push_back({2, 1.0, 0});
  Schedule schedule;  // nothing scheduled at all
  const ReplayMetrics m = replay_plans(
      {FlowPlan{flow, schedule, "broken item"}}, CostModel{1, 1, 0.8}, 3);
  EXPECT_FALSE(m.feasible);
  EXPECT_NE(m.issue.find("broken item"), std::string::npos);
}

TEST(Replay, AggregatesAcrossPlansAndTracksPeakCopies) {
  // Two flows each holding a copy over [0, 2] on different servers.
  Flow f1;
  f1.points.push_back({0, 2.0, 0});
  Schedule s1;
  s1.add_segment(0, 0.0, 2.0);
  Flow f2;
  f2.points.push_back({1, 2.0, 0});
  Schedule s2;
  s2.add_segment(0, 0.0, 1.0);
  s2.add_transfer(0, 1, 1.0);
  s2.add_segment(1, 1.0, 2.0);
  const CostModel model{1, 1, 0.8};
  const ReplayMetrics m = replay_plans(
      {FlowPlan{f1, s1, "a"}, FlowPlan{f2, s2, "b"}}, model, 2);
  ASSERT_TRUE(m.feasible) << m.issue;
  EXPECT_NEAR(m.total_cache_time, 4.0, kTol);
  EXPECT_NEAR(m.per_server_cache_time[0], 3.0, kTol);
  EXPECT_NEAR(m.per_server_cache_time[1], 1.0, kTol);
  EXPECT_EQ(m.peak_concurrent_copies, 2u);
  EXPECT_NEAR(m.total_cost, s1.cost(model) + s2.cost(model), kTol);
}

TEST(Replay, MatchesSolverCostOnRealPlans) {
  Rng rng(5);
  const CostModel model{1.0, 1.5, 0.8};
  for (int trial = 0; trial < 20; ++trial) {
    const Flow flow = testing::random_flow(rng, 25, 4);
    const SolveResult solved = solve_optimal_offline(flow, model, 4);
    const ReplayMetrics m =
        replay_plans({FlowPlan{flow, solved.schedule, "dp"}}, model, 4);
    ASSERT_TRUE(m.feasible) << m.issue;
    ASSERT_NEAR(m.total_cost, solved.cost, 1e-9);
    ASSERT_EQ(m.service_count, flow.size());
    ASSERT_EQ(m.cache_hits + m.transfer_arrivals, flow.size());
  }
}


TEST(ReplayReport, RendersFeasibleSummary) {
  Flow flow;
  flow.points.push_back({0, 1.0, 0});
  flow.points.push_back({1, 2.0, 1});
  Schedule schedule;
  schedule.add_segment(0, 0.0, 2.0);
  schedule.add_transfer(0, 1, 2.0);
  const ReplayMetrics m =
      replay_plans({FlowPlan{flow, schedule, "demo"}}, CostModel{1, 1, 0.8}, 2);
  const std::string report = render_replay_report(m);
  EXPECT_NE(report.find("feasible"), std::string::npos);
  EXPECT_NE(report.find("wire transfers    : 1"), std::string::npos);
  EXPECT_NE(report.find("busiest servers"), std::string::npos);
  EXPECT_NE(report.find("s0"), std::string::npos);
}

TEST(ReplayReport, SurfacesInfeasibility) {
  Flow flow;
  flow.points.push_back({2, 1.0, 0});
  const ReplayMetrics m = replay_plans(
      {FlowPlan{flow, Schedule{}, "broken"}}, CostModel{1, 1, 0.8}, 3);
  const std::string report = render_replay_report(m);
  EXPECT_NE(report.find("INFEASIBLE"), std::string::npos);
  EXPECT_NE(report.find("broken"), std::string::npos);
}

TEST(Replay, PerServerPeakCopiesAreTracked) {
  // Two plans overlapping on server 0 over [0, 1].
  Flow f1;
  f1.points.push_back({0, 1.0, 0});
  Schedule s1;
  s1.add_segment(0, 0.0, 1.0);
  Flow f2;
  f2.points.push_back({0, 0.5, 0});
  Schedule s2;
  s2.add_segment(0, 0.0, 0.5);
  const ReplayMetrics m = replay_plans(
      {FlowPlan{f1, s1, "a"}, FlowPlan{f2, s2, "b"}}, CostModel{1, 1, 0.8}, 2);
  ASSERT_TRUE(m.feasible) << m.issue;
  ASSERT_EQ(m.per_server_peak_copies.size(), 2u);
  EXPECT_EQ(m.per_server_peak_copies[0], 2u);
  EXPECT_EQ(m.per_server_peak_copies[1], 0u);
}

}  // namespace
}  // namespace dpg
