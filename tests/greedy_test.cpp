// Unit tests for the simple greedy baseline and the chain strategy.
#include <gtest/gtest.h>

#include "solver/greedy.hpp"
#include "solver/optimal_offline.hpp"
#include "test_support.hpp"

namespace dpg {
namespace {

constexpr double kTol = 1e-9;

TEST(Greedy, EmptyFlow) {
  const SolveResult r = solve_greedy(Flow{{}, 1}, CostModel{1, 1, 0.8}, 2);
  EXPECT_EQ(r.raw_cost, 0.0);
}

TEST(Greedy, PrefersCacheWhenGapIsShort) {
  Flow flow;
  flow.points.push_back({0, 1.0, 0});
  flow.points.push_back({0, 1.5, 1});
  const SolveResult r = solve_greedy(flow, CostModel{1, 10, 0.8}, 2);
  EXPECT_NEAR(r.raw_cost, 1.5, kTol);  // two local cache extensions
  EXPECT_TRUE(r.schedule.transfers().empty());
}

TEST(Greedy, PrefersTransferWhenGapIsLong) {
  Flow flow;
  flow.points.push_back({1, 1.0, 0});
  flow.points.push_back({0, 8.0, 1});
  flow.points.push_back({1, 8.5, 2});
  const CostModel model{1.0, 1.0, 0.8};
  const SolveResult r = solve_greedy(flow, model, 2);
  // r1: transfer from origin (1μ + λ = 2); r2: cache at origin from t=0 is
  // 8μ vs transfer 7μ+λ=8 → tie, cache picked (<=); r3: cache from r1 at
  // t=1 (7.5μ) vs transfer from r2 (0.5μ+λ=1.5) → transfer.
  EXPECT_NEAR(r.raw_cost, 2.0 + 8.0 + 1.5, kTol);
}

TEST(Greedy, MatchesFigure4StyleAccounting) {
  // Greedy decision costs are request-local: the reported total equals the
  // sum of per-request minima, while the realized schedule can only be
  // cheaper (shared cache lines collapse in the union).
  Rng rng(99);
  const CostModel model{1.0, 2.0, 0.8};
  for (int trial = 0; trial < 50; ++trial) {
    const Flow flow = testing::random_flow(rng, 25, 4);
    const SolveResult r = solve_greedy(flow, model, 4);
    const ValidationResult v = r.schedule.validate(flow);
    ASSERT_TRUE(v.ok) << v.message;
    ASSERT_LE(r.schedule.raw_cost(model), r.raw_cost + 1e-9);
  }
}

TEST(Chain, FollowsTheTrajectory) {
  Flow flow;
  flow.points.push_back({1, 1.0, 0});
  flow.points.push_back({2, 2.0, 1});
  flow.points.push_back({2, 3.0, 2});
  const SolveResult r = solve_chain(flow, CostModel{1, 1, 0.8});
  // Hold 3 time units along the chain + two hops.
  EXPECT_NEAR(r.raw_cost, 3.0 + 2.0, kTol);
  const ValidationResult v = r.schedule.validate(flow);
  EXPECT_TRUE(v.ok) << v.message;
}

TEST(Chain, NeverBeatsGreedy) {
  Rng rng(7);
  const CostModel model{1.0, 1.0, 0.8};
  for (int trial = 0; trial < 50; ++trial) {
    const Flow flow = testing::random_flow(rng, 30, 5);
    ASSERT_LE(solve_greedy(flow, model, 5).raw_cost,
              solve_chain(flow, model).raw_cost + 1e-9);
  }
}

TEST(GreedyHeterogeneous, ReducesToHomogeneousWhenUniform) {
  Rng rng(42);
  const CostModel homo{2.0, 3.0, 0.8};
  HeterogeneousCostModel hetero(4, 2.0, 3.0);
  for (int trial = 0; trial < 30; ++trial) {
    const Flow flow = testing::random_flow(rng, 20, 4);
    const SolveResult a = solve_greedy(flow, homo, 4);
    const SolveResult b = solve_greedy_heterogeneous(flow, hetero);
    ASSERT_NEAR(a.raw_cost, b.raw_cost, 1e-9);
  }
}

TEST(GreedyHeterogeneous, AvoidsExpensiveServers) {
  HeterogeneousCostModel model(3, 1.0, 1.0);
  model.set_mu(1, 100.0);  // server 1 cache is prohibitively expensive
  Flow flow;
  flow.points.push_back({1, 1.0, 0});
  flow.points.push_back({1, 2.0, 1});
  const SolveResult r = solve_greedy_heterogeneous(flow, model);
  // Serving the second request by caching at server 1 would cost 100;
  // greedy transfers from the previous request's server instead... the
  // previous request is ALSO at server 1 (same server, zero-λ self edge),
  // so the "transfer" option degenerates to holding at server 1 too.
  // The decision still picks the cheaper of 100·1 (cache) vs
  // 100·1 + 0 (transfer with source hold at server 1): both 100.
  EXPECT_NEAR(r.raw_cost, (1.0 + 100.0 * 1.0) + 1.0, 1e-9);
}

}  // namespace
}  // namespace dpg
