// Table II of the paper, cell by cell, plus cost-model invariants.
#include <gtest/gtest.h>

#include "core/cost_model.hpp"
#include "util/error.hpp"

namespace dpg {
namespace {

constexpr double kTol = 1e-12;

// Table II: individual k=1 — cache μ, transfer λ.
TEST(CostModelTableII, IndividualItemRates) {
  const CostModel model{2.0, 3.0, 0.8};
  EXPECT_NEAR(model.flow_multiplier(1), 1.0, kTol);
  EXPECT_NEAR(model.cache_cost(1.0), 2.0, kTol);          // μ per time unit
  EXPECT_NEAR(model.transfer_cost(), 3.0, kTol);          // λ per hop
}

// Table II: individual k>1 — cache kμ, transfer kλ (k independent flows).
TEST(CostModelTableII, KIndividualItemsScaleLinearly) {
  const CostModel model{2.0, 3.0, 0.8};
  const double k = 4.0;
  EXPECT_NEAR(k * model.flow_multiplier(1) * model.cache_cost(1.0), k * 2.0,
              kTol);
  EXPECT_NEAR(k * model.flow_multiplier(1) * model.transfer_cost(), k * 3.0,
              kTol);
}

// Table II: package k>1 — cache αkμ, transfer αkλ.
TEST(CostModelTableII, PackageRatesAreDiscounted) {
  const CostModel model{2.0, 3.0, 0.8};
  EXPECT_NEAR(model.flow_multiplier(2), 1.6, kTol);              // 2α
  EXPECT_NEAR(model.flow_multiplier(2) * model.cache_cost(1.0),
              0.8 * 2.0 * 2.0, kTol);                            // α·k·μ
  EXPECT_NEAR(model.flow_multiplier(2) * model.transfer_cost(),
              0.8 * 2.0 * 3.0, kTol);                            // α·k·λ
  EXPECT_NEAR(model.flow_multiplier(5), 5.0 * 0.8, kTol);
}

// Table II: package k=1 degenerates to the individual rates.
TEST(CostModelTableII, SingleItemPackageIsNotDiscounted) {
  const CostModel model{2.0, 3.0, 0.5};
  EXPECT_NEAR(model.flow_multiplier(1), 1.0, kTol);
  EXPECT_NEAR(model.flow_multiplier(0), 1.0, kTol);
}

TEST(CostModel, PackageFetchConstantIsTwoAlphaLambda) {
  const CostModel model{1.0, 2.5, 0.8};
  EXPECT_NEAR(model.package_fetch_cost(), 2.0 * 0.8 * 2.5, kTol);
}

TEST(CostModel, ApproximationBoundIsTwoOverAlpha) {
  EXPECT_NEAR((CostModel{1, 1, 0.8}).approximation_bound(), 2.5, kTol);
  EXPECT_NEAR((CostModel{1, 1, 0.5}).approximation_bound(), 4.0, kTol);
  EXPECT_NEAR((CostModel{1, 1, 1.0}).approximation_bound(), 2.0, kTol);
}

TEST(CostModel, FromRhoPreservesBudgetAndRatio) {
  for (const double rho : {0.2, 0.5, 1.0, 2.0, 5.0}) {
    const CostModel model = CostModel::from_rho(rho, 6.0, 0.8);
    EXPECT_NEAR(model.lambda + model.mu, 6.0, kTol);
    EXPECT_NEAR(model.rho(), rho, kTol);
  }
  // The paper's ρ = 2 peak case: μ = 2, λ = 4.
  const CostModel peak = CostModel::from_rho(2.0, 6.0, 0.8);
  EXPECT_NEAR(peak.mu, 2.0, kTol);
  EXPECT_NEAR(peak.lambda, 4.0, kTol);
}

TEST(CostModel, ValidateRejectsBadParameters) {
  EXPECT_THROW((CostModel{-1.0, 1.0, 0.8}).validate(), InvalidArgument);
  EXPECT_THROW((CostModel{1.0, -1.0, 0.8}).validate(), InvalidArgument);
  EXPECT_THROW((CostModel{1.0, 1.0, 0.0}).validate(), InvalidArgument);
  EXPECT_THROW((CostModel{1.0, 1.0, 1.5}).validate(), InvalidArgument);
  EXPECT_NO_THROW((CostModel{0.0, 0.0, 1.0}).validate());
}

TEST(CostModel, FromRhoRejectsBadInputs) {
  EXPECT_THROW((void)CostModel::from_rho(0.0, 6.0, 0.8), InvalidArgument);
  EXPECT_THROW((void)CostModel::from_rho(1.0, 0.0, 0.8), InvalidArgument);
}

TEST(HeterogeneousCostModel, UniformInitAndSymmetry) {
  HeterogeneousCostModel model(3, 1.5, 2.5);
  EXPECT_NEAR(model.mu(0), 1.5, kTol);
  EXPECT_NEAR(model.lambda(0, 1), 2.5, kTol);
  EXPECT_NEAR(model.lambda(1, 1), 0.0, kTol);  // self transfers are free
  model.set_lambda(0, 2, 9.0);
  EXPECT_NEAR(model.lambda(2, 0), 9.0, kTol);  // symmetric update
  model.set_mu(1, 0.25);
  EXPECT_NEAR(model.mu(1), 0.25, kTol);
}

TEST(HeterogeneousCostModel, BoundsChecked) {
  HeterogeneousCostModel model(2, 1.0, 1.0);
  EXPECT_THROW((void)model.mu(5), InvalidArgument);
  EXPECT_THROW(model.set_lambda(0, 5, 1.0), InvalidArgument);
  EXPECT_THROW(model.set_mu(0, -1.0), InvalidArgument);
}

}  // namespace
}  // namespace dpg
