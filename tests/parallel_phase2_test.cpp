// Parallel Phase-2 sharding: solving the (package, singleton) flows over a
// thread pool must be purely a wall-clock optimization.  Every registry
// solver must return the exact bits of its serial run — totals, breakdowns,
// decision counts and per-flow schedules — at every thread count, whether
// the pool is leased per run (SolverConfig::threads) or shared across
// concurrent runs (SolverConfig::pool).  Tests whose names contain "Big"
// run a 200k-request trace; the TSan CI leg filters them out and keeps the
// contention stress tests.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "engine/registry.hpp"
#include "parallel/thread_pool.hpp"
#include "solver/phase2_shard.hpp"
#include "test_support.hpp"
#include "trace/generators.hpp"
#include "util/rng.hpp"

namespace dpg {
namespace {

const std::vector<std::size_t> kThreadCounts = {1, 4, 7};

RequestSequence zipf_trace_2k() {
  ZipfTraceConfig config;
  config.server_count = 20;
  config.item_count = 12;
  config.request_count = 2000;
  Rng rng(7);
  return generate_zipf_trace(config, rng);
}

RequestSequence big_trace_200k() {
  ZipfTraceConfig config;
  config.server_count = 40;
  config.item_count = 50;
  config.request_count = 200000;
  Rng rng(13);
  return generate_zipf_trace(config, rng);
}

/// Bitwise equality of two reports: every cost EXPECT_EQ (no tolerance),
/// every decision count, and — when schedules were kept — every plan's
/// label, flow and schedule geometry.
void expect_reports_identical(const RunReport& expected,
                              const RunReport& actual,
                              const std::string& context) {
  EXPECT_EQ(expected.total_cost, actual.total_cost) << context;
  EXPECT_EQ(expected.raw_cost, actual.raw_cost) << context;
  EXPECT_EQ(expected.cache_cost, actual.cache_cost) << context;
  EXPECT_EQ(expected.transfer_cost, actual.transfer_cost) << context;
  EXPECT_EQ(expected.ave_cost, actual.ave_cost) << context;
  EXPECT_EQ(expected.package_count, actual.package_count) << context;
  EXPECT_EQ(expected.transfer_events, actual.transfer_events) << context;
  EXPECT_EQ(expected.cache_segments, actual.cache_segments) << context;
  EXPECT_EQ(expected.total_item_accesses, actual.total_item_accesses)
      << context;

  ASSERT_EQ(expected.plans.size(), actual.plans.size()) << context;
  for (std::size_t p = 0; p < expected.plans.size(); ++p) {
    const FlowPlan& want = expected.plans[p];
    const FlowPlan& got = actual.plans[p];
    const std::string plan_context = context + ", plan " + want.label;
    EXPECT_EQ(want.label, got.label) << plan_context;
    EXPECT_EQ(want.flow.size(), got.flow.size()) << plan_context;
    EXPECT_EQ(want.flow.group_size, got.flow.group_size) << plan_context;
    ASSERT_EQ(want.schedule.segments().size(), got.schedule.segments().size())
        << plan_context;
    for (std::size_t s = 0; s < want.schedule.segments().size(); ++s) {
      EXPECT_EQ(want.schedule.segments()[s].server,
                got.schedule.segments()[s].server) << plan_context;
      EXPECT_EQ(want.schedule.segments()[s].begin,
                got.schedule.segments()[s].begin) << plan_context;
      EXPECT_EQ(want.schedule.segments()[s].end,
                got.schedule.segments()[s].end) << plan_context;
    }
    ASSERT_EQ(want.schedule.transfers().size(),
              got.schedule.transfers().size()) << plan_context;
    for (std::size_t t = 0; t < want.schedule.transfers().size(); ++t) {
      EXPECT_EQ(want.schedule.transfers()[t].from,
                got.schedule.transfers()[t].from) << plan_context;
      EXPECT_EQ(want.schedule.transfers()[t].to,
                got.schedule.transfers()[t].to) << plan_context;
      EXPECT_EQ(want.schedule.transfers()[t].time,
                got.schedule.transfers()[t].time) << plan_context;
    }
  }
}

/// The core property: for every registry solver, threads ∈ {1, 4, 7} all
/// reproduce the threads=0 (serial) report bit for bit.
void expect_thread_invariant(const RequestSequence& seq,
                             const CostModel& model, SolverConfig config) {
  const SolverRegistry& registry = builtin_registry();
  for (const std::string& name : registry.names()) {
    config.threads(0);
    const RunReport serial = registry.run(name, seq, model, config);
    for (const std::size_t threads : kThreadCounts) {
      config.threads(threads);
      const RunReport pooled = registry.run(name, seq, model, config);
      expect_reports_identical(
          serial, pooled, name + " @ threads=" + std::to_string(threads));
    }
  }
}

TEST(ParallelPhase2, BitIdenticalOnRunningExample) {
  SolverConfig config;
  config.theta = 0.4;
  expect_thread_invariant(testing::running_example_sequence(),
                          testing::running_example_model(), config);
}

TEST(ParallelPhase2, BitIdenticalOnZipfTrace) {
  const CostModel model{1.0, 2.0, 0.8};
  expect_thread_invariant(zipf_trace_2k(), model, SolverConfig{});
}

TEST(ParallelPhase2, BigTraceBitIdenticalAcrossThreadCounts) {
  const CostModel model{1.0, 2.0, 0.8};
  const RequestSequence seq = big_trace_200k();
  const SolverRegistry& registry = builtin_registry();
  // Plans for 200k requests are heavy; the costs/counters are the
  // interesting part at this scale (schedule geometry is covered above).
  SolverConfig config;
  config.keep_schedules = false;
  for (const std::string& name : {std::string("dp_greedy"),
                                  std::string("optimal_baseline"),
                                  std::string("greedy")}) {
    config.threads(0);
    const RunReport serial = registry.run(name, seq, model, config);
    for (const std::size_t threads : kThreadCounts) {
      config.threads(threads);
      expect_reports_identical(
          serial, registry.run(name, seq, model, config),
          name + " @ threads=" + std::to_string(threads));
    }
  }
}

/// A pool shared by several concurrent registry runs (SolverConfig::pool)
/// must neither race nor perturb results: every concurrent report matches
/// the serial reference bitwise.  This is the TSan contention workload.
TEST(ParallelPhase2, SharedPoolUnderConcurrentRunsStaysBitIdentical) {
  const RequestSequence seq = zipf_trace_2k();
  const CostModel model{1.0, 2.0, 0.8};
  const std::vector<std::string> names = {"dp_greedy", "optimal_baseline",
                                          "package_served", "greedy"};

  std::vector<RunReport> serial;
  for (const std::string& name : names) {
    serial.push_back(builtin_registry().run(name, seq, model, SolverConfig{}));
  }

  ThreadPool shared(4);
  std::vector<RunReport> concurrent(names.size());
  std::vector<std::thread> runners;
  runners.reserve(names.size());
  for (std::size_t i = 0; i < names.size(); ++i) {
    runners.emplace_back([&, i] {
      SolverConfig config;
      config.pool = &shared;
      concurrent[i] = builtin_registry().run(names[i], seq, model, config);
    });
  }
  for (std::thread& runner : runners) runner.join();

  for (std::size_t i = 0; i < names.size(); ++i) {
    expect_reports_identical(serial[i], concurrent[i],
                             names[i] + " on shared pool");
  }
}

/// Concurrent runs that each lease their own pool (threads(N)) are the
/// other contention shape: pool construction/teardown overlapping solves.
TEST(ParallelPhase2, OwnedPoolsUnderConcurrentRunsStayBitIdentical) {
  const RequestSequence seq = zipf_trace_2k();
  const CostModel model{1.0, 2.0, 0.8};
  const RunReport serial =
      builtin_registry().run("dp_greedy", seq, model, SolverConfig{});

  constexpr std::size_t kRunners = 4;
  std::vector<RunReport> concurrent(kRunners);
  std::vector<std::thread> runners;
  runners.reserve(kRunners);
  for (std::size_t i = 0; i < kRunners; ++i) {
    runners.emplace_back([&, i] {
      concurrent[i] = builtin_registry().run(
          "dp_greedy", seq, model, SolverConfig{}.threads(2 + i % 3));
    });
  }
  for (std::thread& runner : runners) runner.join();

  for (std::size_t i = 0; i < kRunners; ++i) {
    expect_reports_identical(serial, concurrent[i],
                             "owned pool runner " + std::to_string(i));
  }
}

/// The shard layout is a pure function of (flow_count, worker_count): the
/// chunking arithmetic mirrors parallel_for_chunks, so a pool of width W
/// always produces the same deterministic assignment.
TEST(ParallelPhase2, ShardCountIsDeterministic) {
  EXPECT_EQ(phase2_shard_count(0, 8), 0u);
  EXPECT_EQ(phase2_shard_count(1, 8), 1u);
  EXPECT_EQ(phase2_shard_count(5, 0), 1u);   // no pool → one serial shard
  EXPECT_EQ(phase2_shard_count(5, 8), 5u);   // never more shards than flows
  EXPECT_EQ(phase2_shard_count(100, 8), 32u);  // W*4 chunks
  EXPECT_EQ(phase2_shard_count(100, 8), phase2_shard_count(100, 8));
}

}  // namespace
}  // namespace dpg
