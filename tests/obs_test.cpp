// The telemetry substrate: per-thread counter/histogram shards merged by
// snapshots, RAII trace spans with ring-buffer recording, and the Chrome
// trace_event JSON export.  Everything runs with recording explicitly
// enabled and restores the disabled default on teardown, so these tests
// cannot perturb the rest of the suite (telemetry is off elsewhere).
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <future>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "parallel/thread_pool.hpp"

namespace dpg {
namespace {

/// Enables recording over clean state; disables and clears on exit.
class TelemetryGuard {
 public:
  TelemetryGuard() {
    obs::set_enabled(true);
    obs::reset_metrics();
    obs::reset_trace();
  }
  ~TelemetryGuard() {
    obs::set_enabled(false);
    obs::reset_metrics();
    obs::reset_trace();
  }
};

std::uint64_t counter_of(const obs::MetricsSnapshot& snapshot,
                         const std::string& name) {
  return obs::counter_value(snapshot, name);
}

const obs::HistogramData* histogram_of(const obs::MetricsSnapshot& snapshot,
                                       const std::string& name) {
  for (const auto& [histogram_name, data] : snapshot.histograms) {
    if (histogram_name == name) return &data;
  }
  return nullptr;
}

TEST(Metrics, DisabledUpdatesAreDropped) {
  obs::set_enabled(false);
  obs::reset_metrics();
  const obs::Counter c = obs::counter("test.disabled_counter");
  const obs::Histogram h = obs::histogram("test.disabled_histogram");
  c.add(5);
  h.record(7);
  const obs::MetricsSnapshot snapshot = obs::snapshot_metrics();
  EXPECT_EQ(counter_of(snapshot, "test.disabled_counter"), 0u);
  EXPECT_EQ(histogram_of(snapshot, "test.disabled_histogram"), nullptr);
}

TEST(Metrics, CounterAccumulatesAndResets) {
  const TelemetryGuard guard;
  const obs::Counter c = obs::counter("test.basic_counter");
  c.add();
  c.add(41);
  EXPECT_EQ(counter_of(obs::snapshot_metrics(), "test.basic_counter"), 42u);
  obs::reset_metrics();
  EXPECT_EQ(counter_of(obs::snapshot_metrics(), "test.basic_counter"), 0u);
}

TEST(Metrics, RegistrationIsIdempotent) {
  const TelemetryGuard guard;
  const obs::Counter first = obs::counter("test.same_counter");
  const obs::Counter second = obs::counter("test.same_counter");
  first.add(1);
  second.add(2);
  EXPECT_EQ(counter_of(obs::snapshot_metrics(), "test.same_counter"), 3u);
}

TEST(Metrics, HistogramBucketizesByPowersOfTwo) {
  const TelemetryGuard guard;
  const obs::Histogram h = obs::histogram("test.bucket_histogram");
  h.record(0);   // bucket 0
  h.record(1);   // bucket 1: [1, 2)
  h.record(2);   // bucket 2: [2, 4)
  h.record(3);   // bucket 2
  h.record(4);   // bucket 3: [4, 8)
  h.record(1024);  // bucket 11: [1024, 2048)

  const obs::MetricsSnapshot snapshot = obs::snapshot_metrics();
  const obs::HistogramData* data =
      histogram_of(snapshot, "test.bucket_histogram");
  ASSERT_NE(data, nullptr);
  EXPECT_EQ(data->count, 6u);
  EXPECT_EQ(data->sum, 0u + 1 + 2 + 3 + 4 + 1024);
  EXPECT_EQ(data->buckets[0], 1u);
  EXPECT_EQ(data->buckets[1], 1u);
  EXPECT_EQ(data->buckets[2], 2u);
  EXPECT_EQ(data->buckets[3], 1u);
  EXPECT_EQ(data->buckets[11], 1u);
}

TEST(Metrics, ShardsMergeExactlyUnderThreadPoolContention) {
  const TelemetryGuard guard;
  const obs::Counter c = obs::counter("test.contended_counter");
  const obs::Histogram h = obs::histogram("test.contended_histogram");

  constexpr std::size_t kTasks = 64;
  constexpr std::size_t kAddsPerTask = 1000;
  {
    ThreadPool pool(4);
    std::vector<std::future<void>> futures;
    futures.reserve(kTasks);
    for (std::size_t t = 0; t < kTasks; ++t) {
      futures.push_back(pool.submit([&c, &h] {
        for (std::size_t i = 0; i < kAddsPerTask; ++i) {
          c.add();
          h.record(i);
        }
      }));
    }
    for (auto& future : futures) future.get();
  }

  const obs::MetricsSnapshot snapshot = obs::snapshot_metrics();
  EXPECT_EQ(counter_of(snapshot, "test.contended_counter"),
            kTasks * kAddsPerTask);
  const obs::HistogramData* data =
      histogram_of(snapshot, "test.contended_histogram");
  ASSERT_NE(data, nullptr);
  EXPECT_EQ(data->count, kTasks * kAddsPerTask);
  // Σ 0..999 per task.
  EXPECT_EQ(data->sum, kTasks * (kAddsPerTask * (kAddsPerTask - 1) / 2));
  std::uint64_t bucket_total = 0;
  for (const std::uint64_t bucket : data->buckets) bucket_total += bucket;
  EXPECT_EQ(bucket_total, data->count);
}

TEST(Metrics, DeltaSubtractsCountersAndHistograms) {
  const TelemetryGuard guard;
  const obs::Counter c = obs::counter("test.delta_counter");
  const obs::Histogram h = obs::histogram("test.delta_histogram");
  c.add(10);
  h.record(4);
  const obs::MetricsSnapshot before = obs::snapshot_metrics();
  c.add(32);
  h.record(4);
  h.record(5);
  const obs::MetricsSnapshot after = obs::snapshot_metrics();

  const obs::MetricsSnapshot delta = obs::metrics_delta(before, after);
  EXPECT_EQ(counter_of(delta, "test.delta_counter"), 32u);
  const obs::HistogramData* data = histogram_of(delta, "test.delta_histogram");
  ASSERT_NE(data, nullptr);
  EXPECT_EQ(data->count, 2u);
  EXPECT_EQ(data->sum, 9u);
  EXPECT_EQ(data->buckets[3], 2u);  // 4 and 5 both land in [4, 8)

  // No activity between two snapshots -> empty delta.
  const obs::MetricsSnapshot quiet = obs::metrics_delta(after, after);
  EXPECT_TRUE(quiet.counters.empty());
  EXPECT_TRUE(quiet.histograms.empty());
}

TEST(Metrics, JsonIsWellFormedAndCarriesSchema) {
  const TelemetryGuard guard;
  obs::counter("test.json_counter").add(3);
  obs::histogram("test.json_histogram").record(16);
  const std::string json = obs::metrics_json(obs::snapshot_metrics());
  EXPECT_NE(json.find("\"schema\": \"dpgreedy-metrics-v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"test.json_counter\": 3"), std::string::npos);
  EXPECT_NE(json.find("test.json_histogram"), std::string::npos);
  std::ptrdiff_t depth = 0;
  for (const char ch : json) {
    if (ch == '{' || ch == '[') ++depth;
    if (ch == '}' || ch == ']') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(Trace, SpansNestOnOneThread) {
  const TelemetryGuard guard;
  {
    const obs::TraceSpan outer("test/outer");
    { const obs::TraceSpan inner("test/inner"); }
  }
  const std::vector<obs::TraceEventView> events = obs::snapshot_trace();
  ASSERT_EQ(events.size(), 2u);
  // Sorted by begin time: the outer span begins first but ends last, so the
  // Chrome containment invariant holds on the same tid.
  EXPECT_EQ(events[0].name, "test/outer");
  EXPECT_EQ(events[1].name, "test/inner");
  EXPECT_EQ(events[0].tid, events[1].tid);
  EXPECT_LE(events[0].ts_ns, events[1].ts_ns);
  EXPECT_GE(events[0].ts_ns + events[0].dur_ns,
            events[1].ts_ns + events[1].dur_ns);
}

TEST(Trace, PrefixSuffixNamesConcatenateAndTruncate) {
  const TelemetryGuard guard;
  { const obs::TraceSpan span("run/", std::string_view("dp_greedy")); }
  {
    const std::string long_suffix(2 * obs::kTraceNameCapacity, 'x');
    const obs::TraceSpan span("run/", long_suffix);
  }
  const std::vector<obs::TraceEventView> events = obs::snapshot_trace();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].name, "run/dp_greedy");
  EXPECT_LT(events[1].name.size(), obs::kTraceNameCapacity);
  EXPECT_EQ(events[1].name.rfind("run/", 0), 0u);
}

TEST(Trace, TimestampsAreMonotoneInSnapshotOrder) {
  const TelemetryGuard guard;
  for (int i = 0; i < 100; ++i) {
    const obs::TraceSpan span("test/tick");
  }
  const std::vector<obs::TraceEventView> events = obs::snapshot_trace();
  ASSERT_EQ(events.size(), 100u);
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].ts_ns, events[i].ts_ns);
  }
}

TEST(Trace, OverflowDropsAndCountsInsteadOfOverwriting) {
  const TelemetryGuard guard;
  const std::size_t attempts = obs::kTraceRingCapacity + 100;
  for (std::size_t i = 0; i < attempts; ++i) {
    const obs::TraceSpan span("test/flood");
  }
  EXPECT_EQ(obs::snapshot_trace().size(), obs::kTraceRingCapacity);
  EXPECT_GE(obs::trace_dropped_events(), 100u);
  obs::reset_trace();
  EXPECT_TRUE(obs::snapshot_trace().empty());
  EXPECT_EQ(obs::trace_dropped_events(), 0u);
}

TEST(Trace, DisabledSpansRecordNothing) {
  obs::set_enabled(false);
  obs::reset_trace();
  { const obs::TraceSpan span("test/ghost"); }
  EXPECT_TRUE(obs::snapshot_trace().empty());
}

TEST(Trace, PoolWorkersRecordOffTheMainThread) {
  const TelemetryGuard guard;
  std::uint32_t main_tid = 0;
  {
    const obs::TraceSpan span("test/main");
  }
  {
    ThreadPool pool(3);
    std::vector<std::future<void>> futures;
    for (int t = 0; t < 12; ++t) {
      futures.push_back(
          pool.submit([] { const obs::TraceSpan span("test/worker"); }));
    }
    for (auto& future : futures) future.get();
  }
  std::size_t worker_spans = 0;
  for (const obs::TraceEventView& event : obs::snapshot_trace()) {
    if (event.name == "test/main") main_tid = event.tid;
  }
  for (const obs::TraceEventView& event : obs::snapshot_trace()) {
    if (event.name != "test/worker") continue;  // pool/idle etc. ride along
    ++worker_spans;
    EXPECT_NE(event.tid, main_tid);
  }
  EXPECT_EQ(worker_spans, 12u);
}

TEST(Trace, JsonIsChromeLoadable) {
  const TelemetryGuard guard;
  {
    const obs::TraceSpan outer("test/json \"quoted\"");
    const obs::TraceSpan inner("test/json-inner");
  }
  const std::string json = obs::trace_json();
  EXPECT_EQ(json.rfind("{", 0), 0u);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\\\"quoted\\\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\": \"ms\""), std::string::npos);
  std::ptrdiff_t depth = 0;
  bool in_string = false;
  bool escaped = false;
  for (const char ch : json) {
    if (escaped) {
      escaped = false;
      continue;
    }
    if (ch == '\\') {
      escaped = true;
      continue;
    }
    if (ch == '"') {
      in_string = !in_string;
      continue;
    }
    if (in_string) continue;
    if (ch == '{' || ch == '[') ++depth;
    if (ch == '}' || ch == ']') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_FALSE(in_string);
  EXPECT_EQ(depth, 0);
}

}  // namespace
}  // namespace dpg
