#include <gtest/gtest.h>

#include <sstream>

#include "util/error.hpp"
#include "util/table.hpp"

namespace dpg {
namespace {

TEST(Table, RendersAlignedColumns) {
  TextTable table({"name", "value"});
  table.add_row({"x", "1"});
  table.add_row({"longer", "2.5"});
  const std::string out = table.render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer  2.5"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(Table, NumericRowsAreFormatted) {
  TextTable table({"a", "b"});
  table.add_numeric_row({1.23456, 2.0}, 2);
  EXPECT_NE(table.render().find("1.23"), std::string::npos);
  EXPECT_EQ(table.row_count(), 1u);
}

TEST(Table, WidthMismatchRejected) {
  TextTable table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), InvalidArgument);
  EXPECT_THROW(TextTable({}), InvalidArgument);
}

TEST(Table, StreamsViaOperator) {
  TextTable table({"h"});
  table.add_row({"v"});
  std::ostringstream out;
  out << table;
  EXPECT_NE(out.str().find('v'), std::string::npos);
}

}  // namespace
}  // namespace dpg
