#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "util/error.hpp"
#include "util/svg_chart.hpp"

namespace dpg {
namespace {

SvgChart sample_chart() {
  SvgChart chart("ave cost vs J", "Jaccard", "ave cost");
  chart.add_series("DP_Greedy", {{0.1, 3.0}, {0.5, 2.0}, {0.9, 1.5}}, "#1f77b4");
  chart.add_series("Optimal", {{0.1, 2.5}, {0.5, 2.4}, {0.9, 2.3}}, "#d62728");
  return chart;
}

TEST(SvgChart, RendersWellFormedDocument) {
  const std::string svg = sample_chart().render();
  EXPECT_EQ(svg.rfind("<svg", 0), 0u);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  EXPECT_NE(svg.find("polyline"), std::string::npos);
  EXPECT_NE(svg.find("DP_Greedy"), std::string::npos);
  EXPECT_NE(svg.find("Optimal"), std::string::npos);
  EXPECT_NE(svg.find("Jaccard"), std::string::npos);
  // Two series -> two polylines.
  std::size_t polylines = 0;
  for (std::size_t pos = svg.find("<polyline"); pos != std::string::npos;
       pos = svg.find("<polyline", pos + 1)) {
    ++polylines;
  }
  EXPECT_EQ(polylines, 2u);
}

TEST(SvgChart, EscapesXmlInLabels) {
  SvgChart chart("a < b & c", "x", "y");
  chart.add_series("s<1>", {{0, 0}, {1, 1}}, "black");
  const std::string svg = chart.render();
  EXPECT_EQ(svg.find("a < b &"), std::string::npos);
  EXPECT_NE(svg.find("a &lt; b &amp; c"), std::string::npos);
  EXPECT_NE(svg.find("s&lt;1&gt;"), std::string::npos);
}

TEST(SvgChart, HandlesDegenerateRanges) {
  SvgChart chart("flat", "x", "y");
  chart.add_series("constant", {{1.0, 5.0}, {2.0, 5.0}}, "green");
  EXPECT_NO_THROW((void)chart.render());
  SvgChart empty("empty", "x", "y");
  EXPECT_NO_THROW((void)empty.render());
}

TEST(SvgChart, WritesFile) {
  const std::string path = ::testing::TempDir() + "dpg_chart.svg";
  sample_chart().write_file(path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::getline(in, line);
  EXPECT_NE(line.find("<svg"), std::string::npos);
  std::remove(path.c_str());
}

TEST(SvgChart, RejectsTinyCanvas) {
  EXPECT_THROW(SvgChart("t", "x", "y", 10, 10), InvalidArgument);
}

}  // namespace
}  // namespace dpg
