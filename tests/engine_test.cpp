// The engine layer: registry dispatch, canonical RunReports, bit-identical
// wrapping of every solve_* entry point, and the exact cache+transfer
// breakdown invariant.  The direct solve_* calls below are the oracle the
// adapters are checked against — this test deliberately reaches past the
// facade.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "engine/registry.hpp"
#include "engine/render.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/replay.hpp"
#include "solver/baselines.hpp"
#include "solver/dp_greedy.hpp"
#include "solver/greedy.hpp"
#include "solver/group_solver.hpp"
#include "solver/online.hpp"
#include "solver/online_dp_greedy.hpp"
#include "test_support.hpp"
#include "util/error.hpp"

namespace dpg {
namespace {

const std::vector<std::string> kBuiltinNames = {
    "chain",          "dp_greedy",         "greedy",
    "group_dp_greedy", "online_break_even", "online_dp_greedy",
    "optimal_baseline", "package_served"};

RequestSequence generated_trace() {
  Rng rng(2024);
  return testing::random_sequence(rng, 2000, /*server_count=*/8,
                                  /*item_count=*/6);
}

TEST(SolverRegistry, ListsEveryBuiltinSorted) {
  const SolverRegistry& registry = builtin_registry();
  EXPECT_EQ(registry.names(), kBuiltinNames);
  for (const std::string& name : kBuiltinNames) {
    EXPECT_TRUE(registry.contains(name));
    EXPECT_EQ(registry.info(name).name, name);
    EXPECT_NE(registry.create(name), nullptr);
  }
  EXPECT_EQ(registry.list().size(), kBuiltinNames.size());
}

TEST(SolverRegistry, UnknownNameThrowsListingValidNames) {
  try {
    (void)builtin_registry().create("no_such_solver");
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& error) {
    const std::string message = error.what();
    EXPECT_NE(message.find("no_such_solver"), std::string::npos) << message;
    for (const std::string& name : kBuiltinNames) {
      EXPECT_NE(message.find(name), std::string::npos) << message;
    }
  }
}

TEST(SolverRegistry, DuplicateRegistrationThrows) {
  SolverRegistry registry;
  registry.add({"x", "", "", false},
               [] { return builtin_registry().create("chain"); });
  EXPECT_THROW(registry.add({"x", "", "", false},
                            [] { return builtin_registry().create("chain"); }),
               InvalidArgument);
}

TEST(Engine, RunningExampleMatchesThePaper) {
  const RequestSequence seq = testing::running_example_sequence();
  const CostModel model = testing::running_example_model();
  SolverConfig config;
  config.theta = 0.4;  // the walkthrough threshold of Section V-C

  const RunReport report =
      builtin_registry().run("dp_greedy", seq, model, config);
  EXPECT_NEAR(report.total_cost, 14.96, 1e-9);
  EXPECT_EQ(report.total_item_accesses, 10u);
  EXPECT_NEAR(report.ave_cost, 1.496, 1e-9);
  EXPECT_EQ(report.package_count, 1u);
  EXPECT_FALSE(report.plans.empty());

  // group_dp_greedy degenerates to DP_Greedy on a two-item universe.
  const RunReport grouped =
      builtin_registry().run("group_dp_greedy", seq, model, config);
  EXPECT_EQ(grouped.total_cost, report.total_cost);

  const RunReport optimal =
      builtin_registry().run("optimal_baseline", seq, model, config);
  EXPECT_NEAR(optimal.total_cost, 15.20, 1e-9);
}

/// Every adapter must return the exact bits of the solve_* call it wraps.
void expect_bit_identical(const RequestSequence& seq, const CostModel& model) {
  const SolverRegistry& registry = builtin_registry();
  const SolverConfig config;  // defaults mirror the per-solver option structs

  EXPECT_EQ(registry.run("dp_greedy", seq, model, config).total_cost,
            solve_dp_greedy(seq, model).total_cost);
  EXPECT_EQ(registry.run("optimal_baseline", seq, model, config).total_cost,
            solve_optimal_baseline(seq, model).total_cost);
  EXPECT_EQ(registry.run("package_served", seq, model, config).total_cost,
            solve_package_served(seq, model, config.theta).total_cost);
  EXPECT_EQ(registry.run("group_dp_greedy", seq, model, config).total_cost,
            solve_group_dp_greedy(seq, model).total_cost);
  EXPECT_EQ(registry.run("online_dp_greedy", seq, model, config).total_cost,
            solve_online_dp_greedy(seq, model).total_cost);

  // The per-flow policies have no whole-sequence entry point; the canonical
  // composition is one solve per item flow, in ascending item order.
  Cost greedy_total = 0.0;
  Cost chain_total = 0.0;
  Cost online_total = 0.0;
  for (ItemId item = 0; item < seq.item_count(); ++item) {
    const Flow flow = make_item_flow(seq, item);
    greedy_total += solve_greedy(flow, model, seq.server_count()).cost;
    chain_total += solve_chain(flow, model).cost;
    online_total +=
        solve_online_break_even(flow, model, seq.server_count()).cost;
  }
  EXPECT_EQ(registry.run("greedy", seq, model, config).total_cost,
            greedy_total);
  EXPECT_EQ(registry.run("chain", seq, model, config).total_cost, chain_total);
  EXPECT_EQ(registry.run("online_break_even", seq, model, config).total_cost,
            online_total);
}

TEST(Engine, BitIdenticalOnRunningExample) {
  expect_bit_identical(testing::running_example_sequence(),
                       testing::running_example_model());
}

/// Telemetry is purely observational: with recording on, every registry
/// solver must return bit-identical totals to the telemetry-off run on the
/// paper's running example, and each enabled RunReport must carry a
/// non-empty metrics delta plus a root span in the trace.
TEST(Engine, TelemetryOnIsBitIdenticalToTelemetryOff) {
  const RequestSequence seq = testing::running_example_sequence();
  const CostModel model = testing::running_example_model();
  SolverConfig config;
  config.theta = 0.4;
  const SolverRegistry& registry = builtin_registry();

  for (const std::string& name : registry.names()) {
    obs::set_enabled(false);
    const RunReport off = registry.run(name, seq, model, config);

    obs::set_enabled(true);
    obs::reset_metrics();
    obs::reset_trace();
    const RunReport on = registry.run(name, seq, model, config);
    const std::vector<obs::TraceEventView> spans = obs::snapshot_trace();
    obs::set_enabled(false);
    obs::reset_metrics();
    obs::reset_trace();

    EXPECT_EQ(on.total_cost, off.total_cost) << name;
    EXPECT_EQ(on.raw_cost, off.raw_cost) << name;
    EXPECT_EQ(on.cache_cost, off.cache_cost) << name;
    EXPECT_EQ(on.transfer_cost, off.transfer_cost) << name;
    EXPECT_EQ(on.ave_cost, off.ave_cost) << name;
    EXPECT_EQ(on.package_count, off.package_count) << name;
    EXPECT_EQ(on.transfer_events, off.transfer_events) << name;
    EXPECT_EQ(on.cache_segments, off.cache_segments) << name;

    EXPECT_TRUE(off.metrics.counters.empty()) << name;
    EXPECT_FALSE(on.metrics.counters.empty()) << name;
    bool has_root_span = false;
    for (const obs::TraceEventView& span : spans) {
      if (span.name == "run/" + name) has_root_span = true;
    }
    EXPECT_TRUE(has_root_span) << name;
  }
}

TEST(Engine, BitIdenticalOnGeneratedTrace) {
  const CostModel model{1.0, 2.0, 0.8};
  expect_bit_identical(generated_trace(), model);
}

TEST(Engine, BreakdownSumsExactlyToTotalOnEverySolver) {
  const RequestSequence seq = generated_trace();
  const CostModel model{1.0, 2.0, 0.8};
  for (const std::string& name : builtin_registry().names()) {
    const RunReport report = builtin_registry().run(name, seq, model);
    // Bit-exact, not NEAR: the breakdown is renormalized by ulps so the
    // identity holds in doubles (finalize_report).
    EXPECT_EQ(report.cache_cost + report.transfer_cost, report.total_cost)
        << name;
    EXPECT_GE(report.transfer_cost, 0.0) << name;
    EXPECT_GE(report.cache_cost, 0.0) << name;
    EXPECT_GT(report.transfer_events, 0u) << name;
    EXPECT_EQ(report.solver, name);
    EXPECT_EQ(report.total_item_accesses, seq.total_item_accesses()) << name;
  }
}

TEST(Engine, PlansReplayFeasiblyAndKeepSchedulesIsCostNeutral) {
  const RequestSequence seq = generated_trace();
  const CostModel model{1.0, 2.0, 0.8};
  for (const std::string& name : builtin_registry().names()) {
    const RunReport with_plans = builtin_registry().run(name, seq, model);
    if (!with_plans.plans.empty()) {
      const ReplayMetrics metrics =
          replay_plans(with_plans.plans, model, seq.server_count());
      EXPECT_TRUE(metrics.feasible) << name << ": " << metrics.issue;
    }
    SolverConfig lean;
    lean.keep_schedules = false;
    const RunReport without = builtin_registry().run(name, seq, model, lean);
    EXPECT_TRUE(without.plans.empty()) << name;
    EXPECT_EQ(without.total_cost, with_plans.total_cost) << name;
  }
}

TEST(Engine, SolverInstanceIsReusableAcrossRuns) {
  const RequestSequence seq = generated_trace();
  const CostModel model{1.0, 2.0, 0.8};
  const SolverConfig config;
  for (const std::string& name : builtin_registry().names()) {
    const std::unique_ptr<Solver> solver = builtin_registry().create(name);
    const RunReport first = solver->run(seq, model, config);
    const RunReport second = solver->run(seq, model, config);
    EXPECT_EQ(first.total_cost, second.total_cost) << name;
    EXPECT_EQ(first.transfer_cost, second.transfer_cost) << name;
  }
}

TEST(SolverConfigBuilder, FluentChainSetsFields) {
  const SolverConfig config =
      SolverConfig{}.threads(8).telemetry(true).seed(42);
  EXPECT_EQ(config.thread_count, 8u);
  EXPECT_TRUE(config.telemetry_enabled);
  EXPECT_EQ(config.rng_seed, 42u);
  // Aggregate initialization keeps working alongside the builder.
  SolverConfig aggregate;
  aggregate.theta = 0.5;
  EXPECT_EQ(aggregate.thread_count, 0u);
  EXPECT_FALSE(aggregate.telemetry_enabled);
}

TEST(SolverConfigBuilder, WithSetsEveryNamedField) {
  SolverConfig config;
  config.with("theta", "0.4")
      .with("max_group_size", "4")
      .with("window", "100")
      .with("repack_interval", "25")
      .with("hold_factor", "2.0")
      .with("keep_schedules", "false")
      .with("threads", "8")
      .with("telemetry", "on")
      .with("seed", "7");
  EXPECT_EQ(config.theta, 0.4);
  EXPECT_EQ(config.max_group_size, 4u);
  EXPECT_EQ(config.window, 100u);
  EXPECT_EQ(config.repack_interval, 25u);
  EXPECT_EQ(config.hold_factor, 2.0);
  EXPECT_FALSE(config.keep_schedules);
  EXPECT_EQ(config.thread_count, 8u);
  EXPECT_TRUE(config.telemetry_enabled);
  EXPECT_EQ(config.rng_seed, 7u);
}

TEST(SolverConfigBuilder, UnknownFieldThrowsListingValidFields) {
  try {
    SolverConfig{}.with("thredas", "8");
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& error) {
    const std::string message = error.what();
    EXPECT_NE(message.find("thredas"), std::string::npos) << message;
    for (const char* field : {"theta", "max_group_size", "window",
                              "repack_interval", "hold_factor",
                              "keep_schedules", "threads", "telemetry",
                              "seed"}) {
      EXPECT_NE(message.find(field), std::string::npos) << message;
    }
  }
}

TEST(SolverConfigBuilder, ValidatesEagerly) {
  EXPECT_THROW(SolverConfig{}.with("theta", "1.5"), InvalidArgument);
  EXPECT_THROW(SolverConfig{}.with("theta", "-0.1"), InvalidArgument);
  EXPECT_THROW(SolverConfig{}.with("theta", "nan"), InvalidArgument);
  EXPECT_THROW(SolverConfig{}.with("hold_factor", "-1"), InvalidArgument);
  EXPECT_THROW(SolverConfig{}.with("window", "0"), InvalidArgument);
  EXPECT_THROW(SolverConfig{}.with("repack_interval", "0"), InvalidArgument);
  EXPECT_THROW(SolverConfig{}.with("max_group_size", "1"), InvalidArgument);
  EXPECT_THROW(SolverConfig{}.with("telemetry", "maybe"), InvalidArgument);
}

TEST(SolverConfigBuilder, RegistryRejectsInvalidConfigBeforeDispatch) {
  SolverConfig bad;
  bad.theta = 1.5;  // bypasses the eager setter on purpose
  EXPECT_THROW(builtin_registry().run("dp_greedy",
                                      testing::running_example_sequence(),
                                      testing::running_example_model(), bad),
               InvalidArgument);
}

/// config.telemetry(true) records per-run metrics without flipping the
/// process-wide switch for later runs.
TEST(SolverConfigBuilder, PerRunTelemetryAttachesMetricsAndRestoresSwitch) {
  const RequestSequence seq = testing::running_example_sequence();
  const CostModel model = testing::running_example_model();
  ASSERT_FALSE(obs::enabled());

  const RunReport plain = builtin_registry().run("dp_greedy", seq, model);
  EXPECT_TRUE(plain.metrics.counters.empty());

  const RunReport recorded = builtin_registry().run(
      "dp_greedy", seq, model, SolverConfig{}.telemetry(true));
  EXPECT_FALSE(recorded.metrics.counters.empty());
  EXPECT_FALSE(obs::enabled());  // restored after the run
  EXPECT_EQ(recorded.total_cost, plain.total_cost);  // observational only

  obs::reset_metrics();
  obs::reset_trace();
}

TEST(Engine, RenderingCoversEveryReportField) {
  const RequestSequence seq = testing::running_example_sequence();
  const CostModel model = testing::running_example_model();
  const std::vector<RunReport> reports =
      run_solvers(builtin_registry().names(), seq, model);

  EXPECT_EQ(comparison_row(reports.front()).size(), comparison_header().size());
  EXPECT_EQ(report_csv_row(reports.front()).size(), report_csv_header().size());
  const std::string table = render_comparison(reports);
  const std::string json = report_json(reports.front());
  for (const RunReport& report : reports) {
    EXPECT_NE(table.find(report.solver), std::string::npos);
  }
  EXPECT_NE(json.find("\"total_cost\""), std::string::npos);
  EXPECT_NE(json.find("\"transfer_cost\""), std::string::npos);
}

}  // namespace
}  // namespace dpg
