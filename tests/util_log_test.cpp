#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "util/log.hpp"

namespace dpg {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(log_level()) {}
  ~LogLevelGuard() { set_log_level(saved_); }

 private:
  LogLevel saved_;
};

TEST(Log, LevelRoundTrips) {
  const LogLevelGuard guard;
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
}

TEST(Log, MacroShortCircuitsBelowThreshold) {
  const LogLevelGuard guard;
  set_log_level(LogLevel::kOff);
  int evaluations = 0;
  const auto expensive = [&evaluations] {
    ++evaluations;
    return "payload";
  };
  DPG_ERROR << expensive();
  EXPECT_EQ(evaluations, 0) << "suppressed log still evaluated its arguments";
  set_log_level(LogLevel::kDebug);
  // Redirecting stderr is not worth the complexity here; we only check the
  // argument IS evaluated when the level passes.
  DPG_DEBUG << expensive();
  EXPECT_EQ(evaluations, 1);
}

TEST(Log, DirectCallRespectsThreshold) {
  const LogLevelGuard guard;
  set_log_level(LogLevel::kOff);
  // Must be a no-op (nothing observable to assert beyond "does not crash",
  // but it exercises the early-return path).
  log_message(LogLevel::kError, "should be dropped");
  SUCCEED();
}

/// Restores the stderr sink on scope exit.
class LogSinkGuard {
 public:
  LogSinkGuard() = default;
  ~LogSinkGuard() { set_log_sink({}); }
};

TEST(Log, SinkCapturesFormattedLines) {
  const LogLevelGuard level_guard;
  const LogSinkGuard sink_guard;
  set_log_level(LogLevel::kInfo);
  std::vector<std::pair<LogLevel, std::string>> captured;
  set_log_sink([&captured](LogLevel level, const std::string& line) {
    captured.emplace_back(level, line);
  });

  DPG_INFO << "hello " << 42;
  log_message(LogLevel::kWarn, "direct");
  log_message(LogLevel::kDebug, "below threshold");

  ASSERT_EQ(captured.size(), 2u);
  EXPECT_EQ(captured[0].first, LogLevel::kInfo);
  EXPECT_NE(captured[0].second.find("[INFO] hello 42"), std::string::npos);
  EXPECT_EQ(captured[1].first, LogLevel::kWarn);
  EXPECT_NE(captured[1].second.find("[WARN] direct"), std::string::npos);
}

TEST(Log, LinesCarryElapsedAndThreadPrefixes) {
  const LogLevelGuard level_guard;
  const LogSinkGuard sink_guard;
  set_log_level(LogLevel::kInfo);
  std::string line;
  set_log_sink(
      [&line](LogLevel, const std::string& text) { line = text; });
  log_message(LogLevel::kInfo, "probe");

  // `[  elapsed] [tNN] [LEVEL] message` — elapsed is a fixed-width seconds
  // field, the thread id is small and dense.
  ASSERT_FALSE(line.empty());
  EXPECT_EQ(line.front(), '[');
  EXPECT_NE(line.find("] [t"), std::string::npos);
  EXPECT_NE(line.find("[INFO] probe"), std::string::npos);
  const std::size_t dot = line.find('.');
  ASSERT_NE(dot, std::string::npos);
  EXPECT_LT(dot, line.find(']'));  // elapsed-seconds field has a decimal point
}

TEST(Log, EmptySinkRestoresStderr) {
  const LogLevelGuard level_guard;
  set_log_level(LogLevel::kOff);
  bool called = false;
  set_log_sink([&called](LogLevel, const std::string&) { called = true; });
  set_log_sink({});
  log_message(LogLevel::kError, "dropped by level anyway");
  EXPECT_FALSE(called);
}

}  // namespace
}  // namespace dpg
