#include <gtest/gtest.h>

#include "util/log.hpp"

namespace dpg {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(log_level()) {}
  ~LogLevelGuard() { set_log_level(saved_); }

 private:
  LogLevel saved_;
};

TEST(Log, LevelRoundTrips) {
  const LogLevelGuard guard;
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
}

TEST(Log, MacroShortCircuitsBelowThreshold) {
  const LogLevelGuard guard;
  set_log_level(LogLevel::kOff);
  int evaluations = 0;
  const auto expensive = [&evaluations] {
    ++evaluations;
    return "payload";
  };
  DPG_ERROR << expensive();
  EXPECT_EQ(evaluations, 0) << "suppressed log still evaluated its arguments";
  set_log_level(LogLevel::kDebug);
  // Redirecting stderr is not worth the complexity here; we only check the
  // argument IS evaluated when the level passes.
  DPG_DEBUG << expensive();
  EXPECT_EQ(evaluations, 1);
}

TEST(Log, DirectCallRespectsThreshold) {
  const LogLevelGuard guard;
  set_log_level(LogLevel::kOff);
  // Must be a no-op (nothing observable to assert beyond "does not crash",
  // but it exercises the early-return path).
  log_message(LogLevel::kError, "should be dropped");
  SUCCEED();
}

}  // namespace
}  // namespace dpg
