// Unit tests for the Optimal (non-packing) and Package_Served baselines.
#include <gtest/gtest.h>

#include "parallel/thread_pool.hpp"
#include "solver/baselines.hpp"
#include "solver/optimal_offline.hpp"
#include "test_support.hpp"

namespace dpg {
namespace {

constexpr double kTol = 1e-9;

TEST(OptimalBaseline, SumsPerItemDpCosts) {
  Rng rng(3);
  const RequestSequence seq = testing::random_sequence(rng, 80, 4, 5, 0.4);
  const CostModel model{1.0, 1.0, 0.8};
  const OptimalBaselineResult result = solve_optimal_baseline(seq, model);
  Cost expected = 0.0;
  for (ItemId item = 0; item < 5; ++item) {
    expected +=
        solve_optimal_offline(make_item_flow(seq, item), model, 4).cost;
  }
  EXPECT_NEAR(result.total_cost, expected, kTol);
  EXPECT_EQ(result.items.size(), 5u);
}

TEST(OptimalBaseline, PairAveCostMatchesManualAggregate) {
  const RequestSequence seq = testing::running_example_sequence();
  const CostModel model = testing::running_example_model();
  const OptimalBaselineResult result = solve_optimal_baseline(seq, model);
  const double manual =
      (result.items[0].cost + result.items[1].cost) /
      static_cast<double>(seq.item_frequency(0) + seq.item_frequency(1));
  EXPECT_NEAR(result.pair_ave_cost(0, 1), manual, kTol);
}

TEST(OptimalBaseline, ParallelMatchesSerial) {
  Rng rng(6);
  const RequestSequence seq = testing::random_sequence(rng, 150, 5, 8, 0.3);
  const CostModel model{2.0, 3.0, 0.7};
  ThreadPool pool(3);
  const auto serial = solve_optimal_baseline(seq, model);
  const auto parallel = solve_optimal_baseline(seq, model, {}, &pool);
  EXPECT_NEAR(serial.total_cost, parallel.total_cost, kTol);
}

TEST(PackageServed, UnionFlowCoversEveryTouchingRequest) {
  const RequestSequence seq = testing::running_example_sequence();
  const Flow flow = make_union_flow(seq, {0, 1});
  EXPECT_EQ(flow.size(), seq.size());  // every request touches d1 or d2
  EXPECT_EQ(flow.group_size, 2u);
}

TEST(PackageServed, CostIsDiscountedDpOverUnionFlow) {
  const RequestSequence seq = testing::running_example_sequence();
  const CostModel model = testing::running_example_model();
  const PackageServedPair pair =
      solve_pair_package_served(seq, model, ItemPair{0, 1, 3.0 / 7.0});
  const Flow flow = make_union_flow(seq, {0, 1});
  const SolveResult direct = solve_optimal_offline(flow, model, 4);
  EXPECT_NEAR(pair.cost, direct.cost, kTol);
  EXPECT_NEAR(pair.cost, 2.0 * model.alpha * direct.raw_cost, kTol);
  EXPECT_EQ(pair.total_accesses, 10u);
}

TEST(PackageServed, InclusiveThresholdPacksBoundaryPairs) {
  // A pair with J exactly equal to θ: Package_Served (inclusive) packs it.
  SequenceBuilder builder(2, 2);
  Time t = 0.0;
  builder.add(0, t += 1.0, {0, 1});
  builder.add(0, t += 1.0, {0});
  builder.add(0, t += 1.0, {1});  // J = 1/3
  const RequestSequence seq = std::move(builder).build();
  const CostModel model{1.0, 1.0, 0.8};
  const PackageServedResult result =
      solve_package_served(seq, model, 1.0 / 3.0);
  EXPECT_EQ(result.pairs.size(), 1u);
}

TEST(PackageServed, WholeTraceDecomposition) {
  Rng rng(15);
  const RequestSequence seq = testing::random_sequence(rng, 120, 4, 6, 0.6);
  const CostModel model{1.0, 1.0, 0.4};
  const PackageServedResult result = solve_package_served(seq, model, 0.1);
  Cost manual = 0.0;
  for (const PackageServedPair& p : result.pairs) manual += p.cost;
  for (const OptimalItemReport& s : result.singles) manual += s.cost;
  EXPECT_NEAR(result.total_cost, manual, kTol);
  // The packing partitions the items.
  EXPECT_EQ(result.pairs.size() * 2 + result.singles.size(), 6u);
}

TEST(PackageServed, SmallAlphaBeatsOptimalOnFullyCorrelatedTrace) {
  // When every request asks for both items and α is small, always-packing
  // is strictly better than the non-packing Optimal.
  SequenceBuilder builder(3, 2);
  Rng rng(44);
  Time t = 0.0;
  for (int i = 0; i < 60; ++i) {
    builder.add(static_cast<ServerId>(rng.next_below(3)), t += 0.5, {0, 1});
  }
  const RequestSequence seq = std::move(builder).build();
  const CostModel model{1.0, 1.0, 0.2};
  const PackageServedResult packed = solve_package_served(seq, model, 0.5);
  const OptimalBaselineResult optimal = solve_optimal_baseline(seq, model);
  ASSERT_EQ(packed.pairs.size(), 1u);
  EXPECT_LT(packed.total_cost, optimal.total_cost);
  // And the relation flips for α close to 1 only in the presence of
  // single-item requests; fully co-accessed traces keep packing ahead:
  const CostModel big_alpha{1.0, 1.0, 1.0};
  const PackageServedResult packed_big =
      solve_package_served(seq, big_alpha, 0.5);
  const OptimalBaselineResult optimal_big =
      solve_optimal_baseline(seq, big_alpha);
  EXPECT_LE(packed_big.total_cost, optimal_big.total_cost + kTol);
}

}  // namespace
}  // namespace dpg
