// Tests for the break-even online policy (extension module).
#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "solver/online.hpp"
#include "solver/optimal_offline.hpp"
#include "test_support.hpp"

namespace dpg {
namespace {

constexpr double kTol = 1e-9;

TEST(OnlineBreakEven, EmptyFlowCostsNothing) {
  const OnlineResult r =
      solve_online_break_even(Flow{{}, 1}, CostModel{1, 1, 0.8}, 2);
  EXPECT_EQ(r.raw_cost, 0.0);
  EXPECT_EQ(r.transfer_count, 0u);
}

TEST(OnlineBreakEven, LocalHitAtOriginIsPureCache) {
  Flow flow;
  flow.points.push_back({kOriginServer, 3.0, 0});
  const OnlineResult r =
      solve_online_break_even(flow, CostModel{1, 1, 0.8}, 2);
  EXPECT_EQ(r.transfer_count, 0u);
  EXPECT_NEAR(r.raw_cost, 3.0, kTol);
}

TEST(OnlineBreakEven, MissTransfersFromLiveCopy) {
  Flow flow;
  flow.points.push_back({1, 0.5, 0});
  const OnlineResult r =
      solve_online_break_even(flow, CostModel{1, 1, 0.8}, 2);
  EXPECT_EQ(r.transfer_count, 1u);
  // Origin copy held to 0.5 (its use as a source), remote copy zero-length.
  EXPECT_NEAR(r.raw_cost, 0.5 + 1.0, kTol);
}

TEST(OnlineBreakEven, DropsIdleCopiesAfterBreakEvenHorizon) {
  // Copy fetched to server 1 at t=1, never used again; next event far away.
  // It should be charged exactly λ/μ of idle holding, not the whole gap.
  Flow flow;
  flow.points.push_back({1, 1.0, 0});
  flow.points.push_back({0, 50.0, 1});
  const CostModel model{1.0, 2.0, 0.8};
  const OnlineResult r = solve_online_break_even(flow, model, 2);
  // Costs: origin hold [0, 1.0] (source use) = 1; transfer λ=2;
  // server-1 copy: used at 1.0, newest copy... server-1 copy IS the newest
  // (last_use 1.0 vs origin 1.0 — tie keeps both), so neither drops until
  // the origin serves t=50 locally.  The origin copy's last_use was 1.0
  // (source use), server-1's 1.0; the origin serves at 50 as a local hit.
  // Exact accounting asserted below just as feasibility + bounded waste:
  EXPECT_EQ(r.transfer_count, 1u);
  const ValidationResult v = r.schedule.validate(flow);
  EXPECT_TRUE(v.ok) << v.message;
  // The idle server-1 copy must not be charged for the full 49-unit gap.
  EXPECT_LT(r.cache_time, 60.0);
}

TEST(OnlineBreakEven, ScheduleAlwaysFeasibleOnRandomFlows) {
  Rng rng(33);
  for (int trial = 0; trial < 60; ++trial) {
    const Flow flow = testing::random_flow(rng, 40, 5);
    const CostModel model{1.0, 0.5 + static_cast<double>(trial % 7), 0.8};
    const OnlineResult r = solve_online_break_even(flow, model, 5);
    const ValidationResult v = r.schedule.validate(flow);
    ASSERT_TRUE(v.ok) << v.message;
    ASSERT_NEAR(r.schedule.raw_cost(model), r.raw_cost, 1e-6);
  }
}

TEST(OnlineBreakEven, NeverBelowOfflineOptimal) {
  Rng rng(41);
  for (int trial = 0; trial < 60; ++trial) {
    const Flow flow = testing::random_flow(rng, 30, 4);
    const CostModel model{1.0, 1.0 + static_cast<double>(trial % 5), 0.8};
    const Cost online = solve_online_break_even(flow, model, 4).raw_cost;
    const Cost offline = solve_optimal_offline(flow, model, 4).raw_cost;
    ASSERT_GE(online, offline - 1e-9);
  }
}

// The rent-or-buy rule should stay within a small constant of the offline
// optimum; the classical analysis of this policy family gives ratios in the
// 2–4 range (reference [6] reports 3-competitive).  We assert a conservative
// ceiling to catch regressions without over-fitting to one trace mix.
class OnlineCompetitiveness : public ::testing::TestWithParam<double> {};

TEST_P(OnlineCompetitiveness, EmpiricalRatioIsSmall) {
  const double lambda = GetParam();
  Rng rng(0x0917);
  const CostModel model{1.0, lambda, 0.8};
  double worst = 1.0;
  for (int trial = 0; trial < 40; ++trial) {
    const Flow flow = testing::random_flow(rng, 50, 4);
    const Cost online = solve_online_break_even(flow, model, 4).raw_cost;
    const Cost offline = solve_optimal_offline(flow, model, 4).raw_cost;
    if (offline > 0.0) worst = std::max(worst, online / offline);
  }
  EXPECT_LE(worst, 4.0) << "empirical competitive ratio " << worst;
}

INSTANTIATE_TEST_SUITE_P(Lambdas, OnlineCompetitiveness,
                         ::testing::Values(0.25, 1.0, 4.0, 16.0));

TEST(OnlineBreakEven, ZeroMuNeverDropsAndNeverRetransfersToSameServer) {
  Flow flow;
  flow.points.push_back({1, 1.0, 0});
  flow.points.push_back({2, 2.0, 1});
  flow.points.push_back({1, 30.0, 2});
  const CostModel model{0.0, 1.0, 0.8};
  const OnlineResult r = solve_online_break_even(flow, model, 3);
  EXPECT_EQ(r.transfer_count, 2u);  // server 1 copy survives forever
  EXPECT_NEAR(r.raw_cost, 2.0, kTol);
}

TEST(OnlineBreakEven, SmallHoldFactorDegeneratesTowardChaining) {
  Rng rng(55);
  const CostModel model{1.0, 1.0, 0.8};
  OnlineOptions eager_drop;
  eager_drop.hold_factor = 1e-9;  // horizon ≈ 0: drop the instant a copy
                                  // stops being newest (the chain strategy)
  for (int trial = 0; trial < 20; ++trial) {
    const Flow flow = testing::random_flow(rng, 20, 3);
    const OnlineResult r = solve_online_break_even(flow, model, 3, eager_drop);
    const ValidationResult v = r.schedule.validate(flow);
    ASSERT_TRUE(v.ok) << v.message;
  }
}

TEST(OnlineBreakEven, RejectsNonPositiveHoldFactorEagerly) {
  Rng rng(7);
  const Flow flow = testing::random_flow(rng, 5, 3);
  const CostModel model{1.0, 1.0, 0.8};
  OnlineOptions bad;
  bad.hold_factor = 0.0;
  EXPECT_THROW((void)solve_online_break_even(flow, model, 3, bad),
               InvalidArgument);
  bad.hold_factor = -1.0;
  EXPECT_THROW((void)solve_online_break_even(flow, model, 3, bad),
               InvalidArgument);
  try {
    (void)solve_online_break_even(flow, model, 3, bad);
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("hold_factor"), std::string::npos)
        << e.what();
  }
}

}  // namespace
}  // namespace dpg
