// The sharded serve surface: ServeConfig (the unified builder every serve
// entry point parses into), serve_partition_of routing, the deterministic
// merge, and run_sharded_serve itself.
//
// The load-bearing guarantee mirrors the pipeline suite one level up: for a
// fixed partition count M, the merged report and every barrier snapshot are
// bit-identical across every shard count, batch size, ring topology and
// thread schedule — and at M = 1 they are bit-identical to the per-push
// engine (checked against the same full-precision goldens as
// streaming_pipeline_test.cpp).  The reference implementation here routes
// rows serially through M engines with the same hash, so any divergence in
// the concurrent runtime (ordering, holdback, barriers, merge) is a test
// failure, not an FP tolerance.
//
// ShardedServe.* runs under TSan in CI alongside the ring suites.
#include <gtest/gtest.h>

#include <cstddef>
#include <memory>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "dpgreedy.hpp"
#include "test_support.hpp"

namespace dpg {
namespace {

// Same fixture family as streaming_pipeline_test.cpp.
RequestSequence golden_trace() {
  Rng rng(77);
  ZipfTraceConfig config;
  config.server_count = 12;
  config.item_count = 20;
  config.request_count = 3000;
  return generate_zipf_trace(config, rng);
}

const CostModel kModel{/*mu=*/1.0, /*lambda=*/1.0, /*alpha=*/0.8};

OnlineDpGreedyOptions grid_options(std::size_t window, std::size_t repack) {
  OnlineDpGreedyOptions options;
  options.theta = 0.4;
  options.window = window;
  options.repack_interval = repack;
  return options;
}

// The per-push goldens of streaming_engine_test.cpp: at M = 1 the sharded
// merge must reproduce these exactly, whatever N does.
struct GoldenPoint {
  std::size_t window;
  std::size_t repack;
  double total_cost;
};
const GoldenPoint kGoldens[] = {
    {8, 1, 14958.483180793215},   {8, 10, 27063.124579415682},
    {8, 50, 31447.265805422317},  {50, 1, 20069.8921332885},
    {50, 10, 23070.892026151188}, {50, 50, 24267.762421796473},
    {200, 1, 24953.503597318482}, {200, 10, 25077.374114509668},
    {200, 50, 25376.592943394997},
};

void expect_reports_equal(const RunReport& a, const RunReport& b,
                          const std::string& label) {
  EXPECT_EQ(a.total_cost, b.total_cost) << label;
  EXPECT_EQ(a.raw_cost, b.raw_cost) << label;
  EXPECT_EQ(a.ave_cost, b.ave_cost) << label;
  EXPECT_EQ(a.cache_cost, b.cache_cost) << label;
  EXPECT_EQ(a.transfer_cost, b.transfer_cost) << label;
  EXPECT_EQ(a.total_item_accesses, b.total_item_accesses) << label;
  EXPECT_EQ(a.package_count, b.package_count) << label;
  EXPECT_EQ(a.unpack_events, b.unpack_events) << label;
  EXPECT_EQ(a.transfer_events, b.transfer_events) << label;
}

void expect_snapshots_equal(const StreamingSnapshot& a,
                            const StreamingSnapshot& b,
                            const std::string& label) {
  expect_reports_equal(a.report, b.report, label + " report");
  expect_reports_equal(a.delta, b.delta, label + " delta");
  EXPECT_EQ(a.requests, b.requests) << label;
  EXPECT_EQ(a.epoch, b.epoch) << label;
  EXPECT_EQ(a.live_packages, b.live_packages) << label;
  EXPECT_EQ(a.item_count, b.item_count) << label;
  EXPECT_EQ(a.online_probe_cost, b.online_probe_cost) << label;
  EXPECT_EQ(a.offline_probe_cost, b.offline_probe_cost) << label;
  EXPECT_EQ(a.cost_ratio, b.cost_ratio) << label;
  EXPECT_EQ(a.probe_chunks, b.probe_chunks) << label;
  EXPECT_EQ(a.state_alloc_events, b.state_alloc_events) << label;
}

/// The serial reference for the N×M runtime: route every row with the same
/// hash into M per-push engines in global trace order, snapshot all of them
/// (partition-index order) at exactly the barrier blocks the sharded
/// sources emit, then finish + merge.  Matches ShardedServeResult
/// field-for-field so tests can diff the two directly.
struct ReferenceRun {
  ShardedServeResult result;
  std::vector<StreamingSnapshot> snapshots;
  std::vector<std::size_t> snapshot_rows;
};

ReferenceRun reference_partitioned_run(const RequestSequence& trace,
                                       const ServeConfig& config,
                                       const StreamingOptions& options) {
  const std::size_t partitions = config.partition_count;
  std::vector<std::unique_ptr<StreamingEngine>> engines;
  for (std::size_t j = 0; j < partitions; ++j) {
    engines.push_back(std::make_unique<StreamingEngine>(kModel, options));
  }

  ReferenceRun run;
  const std::size_t n = trace.size();
  for (std::size_t start = 0; start < n; start += config.batch_rows) {
    const std::size_t size = std::min(config.batch_rows, n - start);
    for (std::size_t r = start; r < start + size; ++r) {
      const std::size_t j =
          serve_partition_of(trace.server_of(r), trace.items_of(r),
                             config.flow_route, partitions);
      engines[j]->push(trace.server_of(r), trace.time_of(r),
                       trace.items_of(r));
    }
    const std::size_t through = start + size;
    const std::size_t interval = config.snapshot_interval;
    if (interval > 0 &&
        (through / interval) > ((through - size) / interval)) {
      std::vector<StreamingSnapshot> parts;
      for (std::size_t j = 0; j < partitions; ++j) {
        parts.push_back(engines[j]->snapshot());
      }
      run.snapshots.push_back(merge_partition_snapshots(parts));
      run.snapshot_rows.push_back(through);
    }
  }

  for (std::size_t j = 0; j < partitions; ++j) {
    run.result.partition_reports.push_back(engines[j]->finish());
    run.result.epoch = std::max(run.result.epoch, engines[j]->epoch());
    run.result.probe_chunks += engines[j]->probe_chunks();
  }
  run.result.report = merge_partition_reports(run.result.partition_reports);
  Cost online = 0.0;
  Cost offline = 0.0;
  for (std::size_t j = 0; j < partitions; ++j) {
    online += engines[j]->online_probe_cost();
    offline += engines[j]->offline_probe_cost();
  }
  run.result.cost_ratio = offline > 0.0 ? online / offline : 0.0;
  return run;
}

// ---------------------------------------------------------------------------
// ServeConfig

TEST(ServeConfig, DefaultsValidateAndFluentSettersChain) {
  ServeConfig config;
  EXPECT_NO_THROW(config.validate());
  config.batch(512)
      .ring(4)
      .shards(3)
      .partitions(2)
      .route(ServeRoute::kByItemSet)
      .topology(ServeTopology::kMpmc)
      .snapshot_every(5000)
      .stats_every(100)
      .probe_chunk(256)
      .max_requests(9999)
      .listen("127.0.0.1:9100")
      .prom_out("metrics.prom")
      .pipeline(true);
  EXPECT_EQ(config.batch_rows, 512u);
  EXPECT_EQ(config.ring_capacity, 4u);
  EXPECT_EQ(config.shard_count, 3u);
  EXPECT_EQ(config.partition_count, 2u);
  EXPECT_EQ(config.flow_route, ServeRoute::kByItemSet);
  EXPECT_EQ(config.ring_topology, ServeTopology::kMpmc);
  EXPECT_EQ(config.snapshot_interval, 5000u);
  EXPECT_EQ(config.stats_interval, 100u);
  EXPECT_EQ(config.probe_chunk_rows, 256u);
  EXPECT_EQ(config.max_request_rows, 9999u);
  EXPECT_EQ(config.listen_address, "127.0.0.1:9100");
  EXPECT_EQ(config.prom_path, "metrics.prom");
  EXPECT_TRUE(config.pipelined);
  EXPECT_NO_THROW(config.validate());
}

TEST(ServeConfig, WithParsesEveryField) {
  ServeConfig config;
  config.with("batch", "2048")
      .with("ring", "16")
      .with("shards", "4")
      .with("partitions", "8")
      .with("route", "itemset")
      .with("topology", "mpmc")
      .with("snapshot_every", "12345")
      .with("stats_every", "77")
      .with("probe_chunk", "500")
      .with("max_requests", "1000000")
      .with("listen", "0.0.0.0:9100")
      .with("prom_out", "/tmp/serve.prom")
      .with("pipeline", "on");
  EXPECT_EQ(config.batch_rows, 2048u);
  EXPECT_EQ(config.ring_capacity, 16u);
  EXPECT_EQ(config.shard_count, 4u);
  EXPECT_EQ(config.partition_count, 8u);
  EXPECT_EQ(config.flow_route, ServeRoute::kByItemSet);
  EXPECT_EQ(config.ring_topology, ServeTopology::kMpmc);
  EXPECT_EQ(config.snapshot_interval, 12345u);
  EXPECT_EQ(config.stats_interval, 77u);
  EXPECT_EQ(config.probe_chunk_rows, 500u);
  EXPECT_EQ(config.max_request_rows, 1000000u);
  EXPECT_EQ(config.listen_address, "0.0.0.0:9100");
  EXPECT_EQ(config.prom_path, "/tmp/serve.prom");
  EXPECT_TRUE(config.pipelined);

  // The archive field composes with the 1×1 restriction.
  ServeConfig archive;
  archive.with("archive", "feed.dpt");
  EXPECT_EQ(archive.archive_path, "feed.dpt");
}

TEST(ServeConfig, WithThrowsNamingTheOffense) {
  ServeConfig config;
  try {
    config.with("shardz", "2");
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("shardz"), std::string::npos) << what;
    EXPECT_NE(what.find("partitions"), std::string::npos)
        << "should list valid fields: " << what;
  }
  EXPECT_THROW(config.with("route", "round_robin"), InvalidArgument);
  EXPECT_THROW(config.with("topology", "spsc"), InvalidArgument);
  EXPECT_THROW(config.with("batch", "not_a_number"), InvalidArgument);
  EXPECT_THROW(config.with("pipeline", "maybe"), InvalidArgument);
  // Eager range validation at the .with call site.
  EXPECT_THROW(config.with("shards", "0"), InvalidArgument);
  EXPECT_THROW(config.with("partitions", "65"), InvalidArgument);
  // The failed calls left the config valid.
  EXPECT_NO_THROW(config.validate());
}

TEST(ServeConfig, ValidateNamesTheOffendingField) {
  const auto message_of = [](const ServeConfig& config) {
    try {
      config.validate();
    } catch (const InvalidArgument& e) {
      return std::string(e.what());
    }
    return std::string();
  };
  ServeConfig config;
  config.batch_rows = 0;
  EXPECT_NE(message_of(config).find("batch"), std::string::npos);
  config = ServeConfig{};
  config.ring_capacity = 0;
  EXPECT_NE(message_of(config).find("ring"), std::string::npos);
  config = ServeConfig{};
  config.shard_count = 65;
  EXPECT_NE(message_of(config).find("shards"), std::string::npos);
  config = ServeConfig{};
  config.partition_count = 0;
  EXPECT_NE(message_of(config).find("partitions"), std::string::npos);
  config = ServeConfig{};
  config.archive_path = "feed.dpt";
  EXPECT_NO_THROW(config.validate());  // archive at 1×1 is fine
  config.shard_count = 2;
  EXPECT_NE(message_of(config).find("archive"), std::string::npos);
}

TEST(ServeConfig, RouteAndTopologyNamesRoundTrip) {
  EXPECT_EQ(parse_serve_route(serve_route_name(ServeRoute::kByServer)),
            ServeRoute::kByServer);
  EXPECT_EQ(parse_serve_route(serve_route_name(ServeRoute::kByItemSet)),
            ServeRoute::kByItemSet);
  EXPECT_EQ(
      parse_serve_topology(serve_topology_name(ServeTopology::kCrossbar)),
      ServeTopology::kCrossbar);
  EXPECT_EQ(parse_serve_topology(serve_topology_name(ServeTopology::kMpmc)),
            ServeTopology::kMpmc);
}

// ---------------------------------------------------------------------------
// Routing

TEST(ServePartitionOf, IsStableInRangeAndRespectsTheRoute) {
  const std::vector<ItemId> items = {3, 9, 14};
  for (std::size_t m : {1u, 2u, 5u, 64u}) {
    for (ServerId server = 0; server < 50; ++server) {
      const std::size_t by_server = serve_partition_of(
          server, items, ServeRoute::kByServer, m);
      EXPECT_LT(by_server, m);
      // Stable: same inputs, same partition.
      EXPECT_EQ(by_server, serve_partition_of(server, items,
                                              ServeRoute::kByServer, m));
      // kByServer ignores the items entirely.
      EXPECT_EQ(by_server, serve_partition_of(server, std::span<const ItemId>(),
                                              ServeRoute::kByServer, m));
      EXPECT_EQ(by_server,
                serve_partition_of(server, std::vector<ItemId>{7},
                                   ServeRoute::kByServer, m));
    }
    // kByItemSet keys on the lowest item id: same front item, same
    // partition, whatever the server or the rest of the set.
    const std::size_t by_items =
        serve_partition_of(0, items, ServeRoute::kByItemSet, m);
    EXPECT_LT(by_items, m);
    EXPECT_EQ(by_items, serve_partition_of(41, std::vector<ItemId>{3, 200},
                                           ServeRoute::kByItemSet, m));
  }
  // M = 1 degenerates to partition 0 for every row and route.
  EXPECT_EQ(serve_partition_of(9, items, ServeRoute::kByItemSet, 1), 0u);
}

TEST(ServePartitionOf, ItemlessRowsFallBackToATaggedServerKey) {
  // Itemless rows under kByItemSet hash the server in a tagged universe:
  // in range and stable.  (The tag keeps server k and item k from always
  // colliding; the exact assignment is the hash's business.)
  for (ServerId server = 0; server < 20; ++server) {
    const std::size_t p = serve_partition_of(
        server, std::span<const ItemId>(), ServeRoute::kByItemSet, 8);
    EXPECT_LT(p, 8u);
    EXPECT_EQ(p, serve_partition_of(server, std::span<const ItemId>(),
                                    ServeRoute::kByItemSet, 8));
  }
}

// ---------------------------------------------------------------------------
// Merge

TEST(ShardedMerge, MergingOnePartitionIsTheBitwiseIdentity) {
  const RequestSequence trace = golden_trace();
  StreamingOptions options;
  options.online = grid_options(50, 10);
  StreamingEngine engine(kModel, options);
  for (std::size_t i = 0; i < 500; ++i) {
    engine.push(trace.server_of(i), trace.time_of(i), trace.items_of(i));
  }
  StreamingSnapshot snapshot = engine.snapshot();
  const StreamingSnapshot merged_snapshot =
      merge_partition_snapshots(std::span<const StreamingSnapshot>(
          &snapshot, 1));
  expect_snapshots_equal(merged_snapshot, snapshot, "single-snapshot merge");

  const RunReport report = engine.finish();
  const RunReport merged =
      merge_partition_reports(std::span<const RunReport>(&report, 1));
  expect_reports_equal(merged, report, "single-report merge");
}

TEST(ShardedMerge, SumsInPartitionIndexOrderAndRestoresIdentities) {
  RunReport a;
  a.solver = "online_dp_greedy";
  a.total_cost = 10.0;
  a.raw_cost = 10.0;
  a.transfer_cost = 4.0;
  a.total_item_accesses = 10;
  a.package_count = 2;
  a.unpack_events = 1;
  a.transfer_events = 3;
  a.phase1_seconds = 0.5;
  finalize_report(a);
  RunReport b = a;
  b.total_cost = 5.0;
  b.raw_cost = 5.0;
  b.transfer_cost = 1.0;
  b.total_item_accesses = 5;
  b.phase1_seconds = 0.25;
  finalize_report(b);

  const std::vector<RunReport> parts = {a, b};
  const RunReport merged = merge_partition_reports(parts);
  EXPECT_EQ(merged.total_cost, 15.0);
  EXPECT_EQ(merged.transfer_cost, 5.0);
  EXPECT_EQ(merged.total_item_accesses, 15u);
  EXPECT_EQ(merged.package_count, 4u);
  EXPECT_EQ(merged.transfer_events, 6u);
  EXPECT_EQ(merged.phase1_seconds, 0.5);  // max, not sum
  EXPECT_EQ(merged.ave_cost, merged.total_cost / 15.0);
  // The cache + transfer = total identity holds bit-exactly post-merge.
  EXPECT_EQ(merged.cache_cost + merged.transfer_cost, merged.total_cost);
}

// ---------------------------------------------------------------------------
// The N×M runtime: bit-identity grid

TEST(ShardedServe, GridMatchesSerialReferenceSnapshotBySnapshot) {
  const RequestSequence trace = golden_trace();
  StreamingOptions options;
  options.online = grid_options(50, 10);

  for (const std::size_t batch : {64u, 511u}) {
    for (const std::size_t partitions : {1u, 2u, 4u}) {
      ServeConfig base;
      base.batch(batch).partitions(partitions).snapshot_every(700).ring(4);
      const ReferenceRun ref =
          reference_partitioned_run(trace, base, options);
      for (const std::size_t shards : {1u, 2u, 4u}) {
        for (const ServeTopology topology :
             {ServeTopology::kCrossbar, ServeTopology::kMpmc}) {
          const std::string label =
              "N=" + std::to_string(shards) + " M=" +
              std::to_string(partitions) + " batch=" + std::to_string(batch) +
              " topo=" + serve_topology_name(topology);
          ServeConfig config = base;
          config.shards(shards).topology(topology);
          SequenceClaimSource source(trace, config.batch_rows);
          std::vector<StreamingSnapshot> snapshots;
          std::vector<std::size_t> snapshot_rows;
          const ShardedServeResult result = run_sharded_serve(
              source, kModel, config, options,
              [&](const StreamingSnapshot& snap, std::size_t rows) {
                snapshots.push_back(snap);
                snapshot_rows.push_back(rows);
              });

          EXPECT_TRUE(result.feed_error.empty()) << label;
          EXPECT_EQ(result.stats.requests, trace.size()) << label;
          expect_reports_equal(result.report, ref.result.report, label);
          EXPECT_EQ(result.epoch, ref.result.epoch) << label;
          ASSERT_EQ(result.partition_reports.size(), partitions) << label;
          for (std::size_t j = 0; j < partitions; ++j) {
            expect_reports_equal(result.partition_reports[j],
                                 ref.result.partition_reports[j],
                                 label + " partition " + std::to_string(j));
          }
          ASSERT_EQ(snapshots.size(), ref.snapshots.size()) << label;
          EXPECT_EQ(snapshot_rows, ref.snapshot_rows) << label;
          for (std::size_t s = 0; s < snapshots.size(); ++s) {
            expect_snapshots_equal(snapshots[s], ref.snapshots[s],
                                   label + " snapshot " + std::to_string(s));
          }
        }
      }
    }
  }
}

TEST(ShardedServe, SinglePartitionReproducesThePerPushGoldens) {
  // M = 1: whatever N and the transport do, the one engine ingests the
  // exact global stream — the merged report must hit the per-push goldens
  // to the last bit.
  const RequestSequence trace = golden_trace();
  for (const GoldenPoint& golden : kGoldens) {
    StreamingOptions options;
    options.online = grid_options(golden.window, golden.repack);
    ServeConfig config;
    config.batch(64).shards(4).partitions(1);
    SequenceClaimSource source(trace, config.batch_rows);
    const ShardedServeResult result =
        run_sharded_serve(source, kModel, config, options);
    EXPECT_EQ(result.report.total_cost, golden.total_cost)
        << "w=" << golden.window << " r=" << golden.repack;
    EXPECT_EQ(result.stats.requests, trace.size());
  }
}

TEST(ShardedServe, GoldenGridMatchesReferenceAtMixedShapes) {
  // Every golden (window, repack) point at the two asymmetric shapes the
  // issue calls out, both routes.
  const RequestSequence trace = golden_trace();
  struct Shape {
    std::size_t shards;
    std::size_t partitions;
    ServeRoute route;
  };
  const Shape shapes[] = {
      {4, 2, ServeRoute::kByServer},
      {2, 4, ServeRoute::kByItemSet},
  };
  for (const Shape& shape : shapes) {
    for (const GoldenPoint& golden : kGoldens) {
      StreamingOptions options;
      options.online = grid_options(golden.window, golden.repack);
      ServeConfig config;
      config.batch(128)
          .shards(shape.shards)
          .partitions(shape.partitions)
          .route(shape.route)
          .snapshot_every(0);
      const std::string label =
          "N=" + std::to_string(shape.shards) + " M=" +
          std::to_string(shape.partitions) + " route=" +
          serve_route_name(shape.route) + " w=" +
          std::to_string(golden.window) + " r=" + std::to_string(golden.repack);
      const ReferenceRun ref =
          reference_partitioned_run(trace, config, options);
      SequenceClaimSource source(trace, config.batch_rows);
      const ShardedServeResult result =
          run_sharded_serve(source, kModel, config, options);
      expect_reports_equal(result.report, ref.result.report, label);
      EXPECT_EQ(result.epoch, ref.result.epoch) << label;
    }
  }
}

TEST(ShardedServe, ProbeAggregatesAcrossPartitions) {
  const RequestSequence trace = golden_trace();
  StreamingOptions options;
  options.online = grid_options(50, 10);
  options.probe_chunk = 256;
  ServeConfig config;
  config.batch(64).shards(2).partitions(2).snapshot_every(1024);
  const ReferenceRun ref = reference_partitioned_run(trace, config, options);
  SequenceClaimSource source(trace, config.batch_rows);
  std::vector<StreamingSnapshot> snapshots;
  const ShardedServeResult result = run_sharded_serve(
      source, kModel, config, options,
      [&](const StreamingSnapshot& snap, std::size_t) {
        snapshots.push_back(snap);
      });
  // The probe degrades gracefully under partitioning: each partition probes
  // its own sub-stream and the aggregate is Σ online / Σ offline — equal to
  // the serial partitioned reference bit-for-bit.
  EXPECT_GT(result.probe_chunks, 0u);
  EXPECT_GT(result.cost_ratio, 0.0);
  EXPECT_EQ(result.probe_chunks, ref.result.probe_chunks);
  EXPECT_EQ(result.cost_ratio, ref.result.cost_ratio);
  ASSERT_EQ(snapshots.size(), ref.snapshots.size());
  for (std::size_t s = 0; s < snapshots.size(); ++s) {
    expect_snapshots_equal(snapshots[s], ref.snapshots[s],
                           "probe snapshot " + std::to_string(s));
  }
}

// ---------------------------------------------------------------------------
// CSV claims and the decode-error contract

TEST(ShardedServe, CsvSourceMatchesSequenceSourceBitForBit) {
  const RequestSequence trace = golden_trace();
  StreamingOptions options;
  options.online = grid_options(50, 10);
  ServeConfig config;
  config.batch(127).shards(4).partitions(2).snapshot_every(0);

  SequenceClaimSource seq_source(trace, config.batch_rows);
  const ShardedServeResult from_seq =
      run_sharded_serve(seq_source, kModel, config, options);

  const std::string csv = trace_to_csv(trace);
  std::istringstream in(csv);
  CsvClaimSource csv_source(in, "golden.csv", config.batch_rows);
  const ShardedServeResult from_csv =
      run_sharded_serve(csv_source, kModel, config, options);

  expect_reports_equal(from_csv.report, from_seq.report, "csv vs sequence");
  EXPECT_EQ(from_csv.stats.requests, trace.size());
  EXPECT_EQ(csv_source.rows(), trace.size());
}

TEST(ShardedServe, MalformedCsvRowServesTheValidPrefixAndReportsProvenance) {
  // 1000 good rows, then garbage mid-stream: every (N, M) must serve
  // exactly the 1000-row prefix (bit-identical to a clean run over the
  // prefix) and surface the provenance in feed_error, not an exception.
  std::string csv = "server,time,items\n";
  for (int i = 0; i < 1000; ++i) {
    csv += std::to_string(i % 5) + "," + std::to_string(i + 1) + ".0," +
           std::to_string(i % 7) + ";" + std::to_string(7 + i % 3) + "\n";
  }
  const std::size_t bad_offset = csv.size();
  csv += "this is not a row\n";
  for (int i = 0; i < 500; ++i) {
    csv += "0," + std::to_string(2000 + i) + ".0,1\n";
  }

  StreamingOptions options;
  options.online = grid_options(50, 10);

  // Clean-prefix reference per partition count: the canonical answer at a
  // given M is the M-partition run (M > 1 partitions the flows, which is a
  // different — but per-M deterministic — report than 1×1).
  const auto prefix_report_at = [&](std::size_t partitions) {
    std::istringstream in(std::string(csv, 0, bad_offset));
    CsvClaimSource source(in, "bad.csv", 64);
    ServeConfig config;
    config.batch(64).partitions(partitions);
    return run_sharded_serve(source, kModel, config, options).report;
  };

  for (const std::size_t partitions : {1u, 2u}) {
    const RunReport prefix_report = prefix_report_at(partitions);
    for (const std::size_t shards : {1u, 4u}) {
      ServeConfig config;
      config.batch(64).shards(shards).partitions(partitions);
      std::istringstream in(csv);
      CsvClaimSource source(in, "bad.csv", config.batch_rows);
      const ShardedServeResult result =
          run_sharded_serve(source, kModel, config, options);
      const std::string label = "N=" + std::to_string(shards) + " M=" +
                                std::to_string(partitions);
      EXPECT_EQ(result.stats.requests, 1000u) << label;
      expect_reports_equal(result.report, prefix_report, label);
      EXPECT_NE(result.feed_error.find("bad.csv"), std::string::npos)
          << label << ": " << result.feed_error;
      EXPECT_NE(result.feed_error.find("row 1001"), std::string::npos)
          << label << ": " << result.feed_error;
      EXPECT_NE(result.feed_error.find(
                    "byte offset " + std::to_string(bad_offset)),
                std::string::npos)
          << label << ": " << result.feed_error;
    }
  }
}

// ---------------------------------------------------------------------------
// push_batch empty-block contract (the no-op the sharded topology relies on)

TEST(ShardedServe, EmptyPushBatchIsAStrictNoOp) {
  const RequestSequence trace = golden_trace();
  StreamingOptions options;
  options.online = grid_options(50, 10);
  StreamingEngine engine(kModel, options);
  for (std::size_t i = 0; i < 200; ++i) {
    engine.push(trace.server_of(i), trace.time_of(i), trace.items_of(i));
  }
  const StreamingSnapshot before = engine.snapshot();

  const RequestBlock empty;
  const StreamingDecision decision = engine.push_batch(empty);
  EXPECT_EQ(decision.cost_delta, 0.0);
  EXPECT_EQ(decision.transfers, 0u);
  EXPECT_EQ(decision.package_fetches, 0u);
  EXPECT_EQ(decision.pack_events, 0u);
  EXPECT_EQ(decision.unpack_events, 0u);
  EXPECT_FALSE(decision.repacked);
  EXPECT_EQ(decision.epoch, 0u);  // value-initialized, documented

  StreamingSnapshot after = engine.snapshot();
  EXPECT_EQ(after.requests, before.requests);
  EXPECT_EQ(after.report.total_cost, before.report.total_cost);
  EXPECT_EQ(after.epoch, before.epoch);
  EXPECT_EQ(after.state_alloc_events, before.state_alloc_events);
  EXPECT_EQ(after.delta.total_cost, 0.0);  // the interval contributed nothing

  // And the engine still works afterwards.
  engine.push(trace.server_of(200), trace.time_of(200), trace.items_of(200));
  EXPECT_EQ(engine.requests_seen(), 201u);
}

}  // namespace
}  // namespace dpg
