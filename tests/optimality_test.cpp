// The central correctness property of the substrate: the reconstructed
// Wang-et-al. DP equals exhaustive search over standard-form schedules on
// every small random instance we can afford to enumerate.  This validates
// the recurrences of solver/optimal_offline.hpp as *optimal*, not merely
// feasible, which the DP_Greedy analysis (Lemma 1, Theorem 1) relies on.
#include <gtest/gtest.h>

#include <tuple>

#include "solver/bruteforce.hpp"
#include "solver/greedy.hpp"
#include "solver/optimal_offline.hpp"
#include "test_support.hpp"

namespace dpg {
namespace {

class OptimalityProperty
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t, double>> {};

TEST_P(OptimalityProperty, DpMatchesBruteForce) {
  const auto [n, servers, lambda] = GetParam();
  Rng rng(0xD00D + n * 131 + servers * 17);
  const CostModel model{1.0, lambda, 0.8};
  for (int trial = 0; trial < 40; ++trial) {
    const Flow flow = testing::random_flow(rng, n, servers);
    const SolveResult dp = solve_optimal_offline(flow, model, servers);
    const BruteForceResult exhaustive = solve_bruteforce(flow, model);
    ASSERT_NEAR(dp.raw_cost, exhaustive.raw_cost, 1e-9)
        << "DP is not optimal on:\n n=" << n << " servers=" << servers
        << " lambda=" << lambda << " trial=" << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(
    SmallInstances, OptimalityProperty,
    ::testing::Combine(::testing::Values<std::size_t>(1, 2, 3, 4, 5, 6, 7),
                       ::testing::Values<std::size_t>(2, 3, 4),
                       ::testing::Values(0.25, 1.0, 4.0)));

// Greedy is never better than the DP (sanity of both directions).
class GreedyDominanceProperty
    : public ::testing::TestWithParam<std::tuple<std::size_t, double>> {};

TEST_P(GreedyDominanceProperty, DpLowerBoundsGreedy) {
  const auto [n, lambda] = GetParam();
  Rng rng(0xBEEF + n);
  const CostModel model{1.0, lambda, 0.8};
  for (int trial = 0; trial < 60; ++trial) {
    const Flow flow = testing::random_flow(rng, n, 4);
    const SolveResult dp = solve_optimal_offline(flow, model, 4);
    const SolveResult greedy = solve_greedy(flow, model, 4);
    ASSERT_LE(dp.raw_cost, greedy.raw_cost + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GreedyDominanceProperty,
    ::testing::Combine(::testing::Values<std::size_t>(5, 20, 60),
                       ::testing::Values(0.25, 1.0, 4.0)));

}  // namespace
}  // namespace dpg
