#include <gtest/gtest.h>

#include "trace/generators.hpp"
#include "trace/stats.hpp"

namespace dpg {
namespace {

TEST(TraceStats, CountsMatchSequence) {
  RequestSequence seq(3, 2,
                      {RequestDraft{0, 1.0, {0}}, RequestDraft{2, 2.0, {0, 1}},
                       RequestDraft{2, 4.0, {1}}});
  const TraceStats stats = compute_trace_stats(seq);
  EXPECT_EQ(stats.request_count, 3u);
  EXPECT_EQ(stats.per_server, (std::vector<std::size_t>{1, 0, 2}));
  EXPECT_EQ(stats.per_item, (std::vector<std::size_t>{2, 2}));
  EXPECT_DOUBLE_EQ(stats.horizon, 4.0);
  EXPECT_NEAR(stats.mean_items_per_request, 4.0 / 3.0, 1e-12);
  EXPECT_NEAR(stats.mean_gap, 4.0 / 3.0, 1e-12);
}

TEST(TraceStats, EmptySequenceIsAllZero) {
  RequestSequence seq(2, 2, {});
  const TraceStats stats = compute_trace_stats(seq);
  EXPECT_EQ(stats.request_count, 0u);
  EXPECT_EQ(stats.horizon, 0.0);
  EXPECT_EQ(stats.mean_gap, 0.0);
}

TEST(TraceStats, SpatialRenderingShowsEveryServer) {
  PairedTraceConfig config;
  config.server_count = 5;
  config.requests_per_pair = 100;
  config.pair_jaccard = {0.5};
  Rng rng(6);
  const RequestSequence seq = generate_paired_trace(config, rng);
  const std::string art =
      render_spatial_distribution(compute_trace_stats(seq));
  for (std::size_t s = 0; s < 5; ++s) {
    EXPECT_NE(art.find("s" + std::to_string(s)), std::string::npos);
  }
}

TEST(TraceStats, FrequentPairsTableOrdersBySimilarity) {
  PairedTraceConfig config;
  config.pair_jaccard = {0.2, 0.9};
  config.requests_per_pair = 500;
  Rng rng(8);
  const RequestSequence seq = generate_paired_trace(config, rng);
  const std::string table = render_frequent_pairs(seq, 5);
  // The strongly correlated pair (d2,d3) must be listed before (d0,d1).
  const auto strong = table.find("(d2,d3)");
  const auto weak = table.find("(d0,d1)");
  ASSERT_NE(strong, std::string::npos);
  ASSERT_NE(weak, std::string::npos);
  EXPECT_LT(strong, weak);
}

}  // namespace
}  // namespace dpg
