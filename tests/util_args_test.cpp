#include <gtest/gtest.h>

#include "util/args.hpp"
#include "util/error.hpp"

namespace dpg {
namespace {

TEST(Args, DefaultsSurviveEmptyParse) {
  ArgParser args("prog", "test");
  const double* alpha = args.add_double("alpha", "discount", 0.8);
  const std::size_t* n = args.add_size("n", "requests", 100);
  const std::string* name = args.add_string("name", "label", "x");
  const bool* flag = args.add_flag("verbose", "noise");
  const char* argv[] = {"prog"};
  args.parse(1, argv);
  EXPECT_DOUBLE_EQ(*alpha, 0.8);
  EXPECT_EQ(*n, 100u);
  EXPECT_EQ(*name, "x");
  EXPECT_FALSE(*flag);
}

TEST(Args, ParsesSpaceAndEqualsForms) {
  ArgParser args("prog", "test");
  const double* alpha = args.add_double("alpha", "discount", 0.8);
  const std::size_t* n = args.add_size("n", "requests", 100);
  const char* argv[] = {"prog", "--alpha", "0.5", "--n=250"};
  args.parse(4, argv);
  EXPECT_DOUBLE_EQ(*alpha, 0.5);
  EXPECT_EQ(*n, 250u);
}

TEST(Args, FlagsNeedNoValue) {
  ArgParser args("prog", "test");
  const bool* flag = args.add_flag("verbose", "noise");
  const char* argv[] = {"prog", "--verbose"};
  args.parse(2, argv);
  EXPECT_TRUE(*flag);
}

TEST(Args, UnknownOptionRejected) {
  ArgParser args("prog", "test");
  const char* argv[] = {"prog", "--mystery"};
  EXPECT_THROW(args.parse(2, argv), InvalidArgument);
}

TEST(Args, MissingValueRejected) {
  ArgParser args("prog", "test");
  args.add_double("alpha", "discount", 0.8);
  const char* argv[] = {"prog", "--alpha"};
  EXPECT_THROW(args.parse(2, argv), InvalidArgument);
}

TEST(Args, MalformedValueRejected) {
  ArgParser args("prog", "test");
  args.add_double("alpha", "discount", 0.8);
  const char* argv[] = {"prog", "--alpha", "huge"};
  EXPECT_THROW(args.parse(3, argv), IoError);
}

TEST(Args, PositionalArgumentsRejected) {
  ArgParser args("prog", "test");
  const char* argv[] = {"prog", "stray"};
  EXPECT_THROW(args.parse(2, argv), InvalidArgument);
}

TEST(Args, ShortAliasSetsTheFlag) {
  ArgParser args("prog", "test");
  const bool* verbose = args.add_flag("verbose", "more logs", 'v');
  const char* argv[] = {"prog", "-v"};
  args.parse(2, argv);
  EXPECT_TRUE(*verbose);
}

TEST(Args, LongFormOfAliasedFlagStillWorks) {
  ArgParser args("prog", "test");
  const bool* verbose = args.add_flag("verbose", "more logs", 'v');
  const char* argv[] = {"prog", "--verbose"};
  args.parse(2, argv);
  EXPECT_TRUE(*verbose);
}

TEST(Args, UnknownShortTokenStillRejected) {
  ArgParser args("prog", "test");
  args.add_flag("verbose", "more logs", 'v');
  const char* argv[] = {"prog", "-x"};
  EXPECT_THROW(args.parse(2, argv), InvalidArgument);
}

TEST(Args, AliasAppearsInUsage) {
  ArgParser args("prog", "test");
  args.add_flag("verbose", "more logs", 'v');
  EXPECT_NE(args.usage().find("--verbose, -v"), std::string::npos);
}

TEST(Args, UsageListsOptionsWithDefaults) {
  ArgParser args("prog", "does things");
  args.add_double("alpha", "discount factor", 0.8);
  args.add_flag("verbose", "more logs");
  const std::string usage = args.usage();
  EXPECT_NE(usage.find("--alpha"), std::string::npos);
  EXPECT_NE(usage.find("0.8000"), std::string::npos);
  EXPECT_NE(usage.find("does things"), std::string::npos);
}

}  // namespace
}  // namespace dpg
