// Tests for the online DP_Greedy extension.
#include <gtest/gtest.h>

#include "solver/dp_greedy.hpp"
#include "solver/online.hpp"
#include "solver/online_dp_greedy.hpp"
#include "test_support.hpp"
#include "util/error.hpp"

namespace dpg {
namespace {

constexpr double kTol = 1e-9;

TEST(OnlineDpGreedy, DeterministicPerInput) {
  Rng rng(5);
  const RequestSequence seq = testing::random_sequence(rng, 300, 5, 6, 0.5);
  const CostModel model{1.0, 2.0, 0.8};
  const OnlineDpGreedyResult a = solve_online_dp_greedy(seq, model);
  const OnlineDpGreedyResult b = solve_online_dp_greedy(seq, model);
  EXPECT_EQ(a.total_cost, b.total_cost);
  EXPECT_EQ(a.pack_events, b.pack_events);
}

TEST(OnlineDpGreedy, ThetaOneNeverPacksAndMatchesPerItemBreakEven) {
  Rng rng(9);
  const RequestSequence seq = testing::random_sequence(rng, 250, 4, 5, 0.5);
  const CostModel model{1.0, 1.5, 0.8};
  OnlineDpGreedyOptions options;
  options.theta = 1.0;  // windowed J can never strictly exceed 1
  const OnlineDpGreedyResult online = solve_online_dp_greedy(seq, model, options);
  EXPECT_EQ(online.pack_events, 0u);

  Cost expected = 0.0;
  for (ItemId item = 0; item < seq.item_count(); ++item) {
    expected += solve_online_break_even(make_item_flow(seq, item), model,
                                        seq.server_count())
                    .raw_cost;
  }
  EXPECT_NEAR(online.total_cost, expected, kTol);
}

TEST(OnlineDpGreedy, PacksStronglyCorrelatedPairs) {
  // Two items always requested together: the windowed J hits 1 quickly.
  SequenceBuilder builder(4, 2);
  Rng rng(3);
  Time t = 0.0;
  for (int i = 0; i < 300; ++i) {
    builder.add(static_cast<ServerId>(rng.next_below(4)), t += 0.5, {0, 1});
  }
  const RequestSequence seq = std::move(builder).build();
  const CostModel model{1.0, 2.0, 0.4};
  OnlineDpGreedyOptions options;
  options.theta = 0.5;
  const OnlineDpGreedyResult online = solve_online_dp_greedy(seq, model, options);
  EXPECT_GE(online.pack_events, 1u);
  EXPECT_EQ(online.unpack_events, 0u);

  // With a deep discount, packing online must beat never-packing online.
  OnlineDpGreedyOptions never;
  never.theta = 1.0;
  const OnlineDpGreedyResult unpacked = solve_online_dp_greedy(seq, model, never);
  EXPECT_LT(online.total_cost, unpacked.total_cost);
}

TEST(OnlineDpGreedy, NeverBelowThePackedModelLowerBound) {
  // Any feasible service (online included) costs at least α·Σ C_iopt
  // (Lemma 1's bound applies to every schedule of the packed model).
  Rng rng(21);
  for (int trial = 0; trial < 10; ++trial) {
    const RequestSequence seq = testing::random_sequence(rng, 150, 4, 4, 0.6);
    const CostModel model{1.0, 2.0, 0.7};
    const OnlineDpGreedyResult online = solve_online_dp_greedy(seq, model);
    Cost bound = 0.0;
    for (ItemId item = 0; item < seq.item_count(); ++item) {
      bound += solve_optimal_offline(make_item_flow(seq, item), model,
                                     seq.server_count())
                   .raw_cost;
    }
    ASSERT_GE(online.total_cost, model.alpha * bound - kTol);
  }
}

TEST(OnlineDpGreedy, UnpacksWhenCorrelationDecays) {
  // First half: items 0,1 co-requested; second half: strictly separate and
  // spatially divergent.
  SequenceBuilder builder(6, 2);
  Rng rng(7);
  Time t = 0.0;
  for (int i = 0; i < 200; ++i) {
    builder.add(static_cast<ServerId>(rng.next_below(6)), t += 0.5, {0, 1});
  }
  for (int i = 0; i < 200; ++i) {
    const bool first = rng.next_bool(0.5);
    builder.add(first ? 0 : 5, t += 0.5,
                {first ? ItemId{0} : ItemId{1}});
  }
  const RequestSequence seq = std::move(builder).build();
  const CostModel model{1.0, 2.0, 0.6};
  OnlineDpGreedyOptions options;
  options.theta = 0.5;
  options.window = 100;
  const OnlineDpGreedyResult online = solve_online_dp_greedy(seq, model, options);
  EXPECT_GE(online.pack_events, 1u);
  EXPECT_GE(online.unpack_events, 1u);
}

TEST(OnlineDpGreedy, ValidatesOptions) {
  const RequestSequence seq = testing::running_example_sequence();
  const CostModel model = testing::running_example_model();
  OnlineDpGreedyOptions bad_theta;
  bad_theta.theta = 2.0;
  EXPECT_THROW((void)solve_online_dp_greedy(seq, model, bad_theta),
               InvalidArgument);
  OnlineDpGreedyOptions bad_window;
  bad_window.window = 0;
  EXPECT_THROW((void)solve_online_dp_greedy(seq, model, bad_window),
               InvalidArgument);
}

TEST(OnlineDpGreedy, ReportsAccessAccounting) {
  const RequestSequence seq = testing::running_example_sequence();
  const CostModel model = testing::running_example_model();
  const OnlineDpGreedyResult online = solve_online_dp_greedy(seq, model);
  EXPECT_EQ(online.total_item_accesses, 10u);
  EXPECT_NEAR(online.ave_cost * 10.0, online.total_cost, kTol);
}

}  // namespace
}  // namespace dpg
