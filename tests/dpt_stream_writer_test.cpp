// DptStreamWriter (trace/dpt_stream_writer.hpp) and DptChecksumStream
// (trace/dpt.hpp): the archive-while-serving path must produce files
// byte-for-byte identical to write_trace_dpt on the same logical sequence,
// and the incremental checksum must equal the one-shot function at every
// chunking — those two identities are what let `serve --archive` emit
// `.dpt` files indistinguishable from offline conversion.
#include <gtest/gtest.h>

#include "test_support.hpp"

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/request_block.hpp"
#include "trace/dpt.hpp"
#include "trace/dpt_stream_writer.hpp"
#include "trace/generators.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace dpg {
namespace {

using testing::same_sequence;

std::string temp_path(const std::string& name) {
  // Distinct per test and per process: `ctest -j` runs every TEST in its
  // own process but all of them share TempDir().
  const ::testing::TestInfo* info =
      ::testing::UnitTest::GetInstance()->current_test_info();
  std::string unique;
  if (info != nullptr) {
    unique = std::string(info->test_suite_name()) + "_" + info->name() + "_";
    for (char& c : unique) {
      if (c == '/') c = '_';
    }
  }
  unique += std::to_string(::getpid()) + "_";
  return ::testing::TempDir() + unique + name;
}

std::string read_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

RequestSequence fixture_trace() {
  Rng rng(404);
  ZipfTraceConfig config;
  config.server_count = 9;
  config.item_count = 17;
  config.request_count = 500;
  return generate_zipf_trace(config, rng);
}

// ---------------------------------------------------------------------------
// DptChecksumStream

TEST(DptChecksumStream, MatchesOneShotAtEveryChunking) {
  // Sizes straddling every finalization regime: empty, sub-stripe tails of
  // 1/4/8-byte granularity, exactly one stripe, stripe ± 1, multiples.
  const std::size_t sizes[] = {0, 1, 3, 4, 7, 8, 12, 31, 32,
                               33, 40, 63, 64, 65, 96, 1000};
  const std::size_t chunks[] = {1, 3, 7, 13, 32, 64, 1u << 20};
  std::vector<unsigned char> data(1000);
  std::uint64_t x = 0x9E3779B97F4A7C15ULL;
  for (std::size_t i = 0; i < data.size(); ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    data[i] = static_cast<unsigned char>(x);
  }
  for (const std::size_t size : sizes) {
    const std::uint64_t want = dpt_checksum(data.data(), size);
    for (const std::size_t chunk : chunks) {
      DptChecksumStream stream;
      for (std::size_t at = 0; at < size; at += chunk) {
        stream.update(data.data() + at, std::min(chunk, size - at));
      }
      EXPECT_EQ(stream.digest(), want)
          << "size " << size << " chunk " << chunk;
      EXPECT_EQ(stream.total_bytes(), size);
    }
  }
}

TEST(DptChecksumStream, DigestIsNonDestructiveMidStream) {
  const std::string text = "the quick brown fox jumps over the lazy dog, "
                           "twice around the block and back again";
  DptChecksumStream stream(/*seed=*/7);
  stream.update(text.data(), 10);
  const std::uint64_t at10 = stream.digest();
  EXPECT_EQ(at10, dpt_checksum(text.data(), 10, 7));
  EXPECT_EQ(stream.digest(), at10);  // reading twice changes nothing
  stream.update(text.data() + 10, text.size() - 10);
  EXPECT_EQ(stream.digest(), dpt_checksum(text.data(), text.size(), 7));
}

// ---------------------------------------------------------------------------
// DptStreamWriter byte identity

TEST(DptStreamWriter, PerRowAppendMatchesWriteTraceDptByteForByte) {
  const RequestSequence sequence = fixture_trace();
  const std::string batch_path = temp_path("batch.dpt");
  const std::string stream_path = temp_path("stream.dpt");
  write_trace_dpt(batch_path, sequence);

  DptStreamWriter writer(stream_path, sequence.server_count(),
                         sequence.item_count());
  for (std::size_t i = 0; i < sequence.size(); ++i) {
    writer.append(sequence.server_of(i), sequence.time_of(i),
                  sequence.items_of(i));
  }
  EXPECT_EQ(writer.rows(), sequence.size());
  writer.finish();

  EXPECT_EQ(read_bytes(stream_path), read_bytes(batch_path));
  std::remove(batch_path.c_str());
  std::remove(stream_path.c_str());
}

TEST(DptStreamWriter, BlockAppendMatchesWriteTraceDptByteForByte) {
  const RequestSequence sequence = fixture_trace();
  const std::string batch_path = temp_path("batch.dpt");
  const std::string stream_path = temp_path("stream.dpt");
  write_trace_dpt(batch_path, sequence);

  // Feed through RequestBlocks of a ragged size, the archive-a-serve-feed
  // shape (the last block is partial).
  DptStreamWriter writer(stream_path, sequence.server_count(),
                         sequence.item_count());
  RequestBlock block;
  for (std::size_t at = 0; at < sequence.size();) {
    block.clear();
    const std::size_t n = std::min<std::size_t>(37, sequence.size() - at);
    for (std::size_t i = 0; i < n; ++i, ++at) {
      block.append_row(sequence.server_of(at), sequence.time_of(at),
                       sequence.items_of(at));
    }
    writer.append_block(block);
  }
  writer.finish();

  EXPECT_EQ(read_bytes(stream_path), read_bytes(batch_path));
  std::remove(batch_path.c_str());
  std::remove(stream_path.c_str());
}

TEST(DptStreamWriter, RoundTripsThroughBothOpenModes) {
  const RequestSequence sequence = fixture_trace();
  const std::string path = temp_path("roundtrip.dpt");
  DptStreamWriter writer(path);  // counts derived from the feed itself
  for (std::size_t i = 0; i < sequence.size(); ++i) {
    writer.append(sequence.server_of(i), sequence.time_of(i),
                  sequence.items_of(i));
  }
  writer.finish();

  DptReadOptions map_options;
  map_options.mode = DptOpenMode::kMap;
  map_options.verify_checksums = true;
  map_options.verify_columns = true;
  EXPECT_TRUE(same_sequence(read_trace_dpt(path, map_options), sequence));
  DptReadOptions read_options;
  read_options.mode = DptOpenMode::kRead;
  EXPECT_TRUE(same_sequence(read_trace_dpt(path, read_options), sequence));
  std::remove(path.c_str());
}

TEST(DptStreamWriter, AppendCanonicalizesUnsortedDuplicateItems) {
  const std::string stream_path = temp_path("canon_stream.dpt");
  const std::string batch_path = temp_path("canon_batch.dpt");

  DptStreamWriter writer(stream_path);
  writer.append(2, 1.0, std::vector<ItemId>{5, 1, 5, 3, 1});
  writer.append(0, 1.5, std::vector<ItemId>{4, 4});
  writer.finish();

  SequenceBuilder builder(/*server_count=*/3, /*item_count=*/6);
  builder.add(2, 1.0, std::vector<ItemId>{1, 3, 5});
  builder.add(0, 1.5, std::vector<ItemId>{4});
  write_trace_dpt(batch_path, std::move(builder).build());

  EXPECT_EQ(read_bytes(stream_path), read_bytes(batch_path));
  std::remove(stream_path.c_str());
  std::remove(batch_path.c_str());
}

TEST(DptStreamWriter, MinCountsPinALargerUniverse) {
  const std::string path = temp_path("mins.dpt");
  DptStreamWriter writer(path, /*min_server_count=*/40,
                         /*min_item_count=*/99);
  writer.append(1, 1.0, std::vector<ItemId>{0, 2});
  writer.finish();
  const DptInfo info = probe_trace_dpt(path);
  EXPECT_EQ(info.request_count, 1u);
  EXPECT_EQ(info.server_count, 40u);
  EXPECT_EQ(info.item_count, 99u);
  EXPECT_EQ(info.item_access_count, 2u);
  std::remove(path.c_str());
}

TEST(DptStreamWriter, RejectsInvalidRowsAndMisuse) {
  const std::string path = temp_path("invalid.dpt");
  DptStreamWriter writer(path);
  writer.append(0, 1.0, std::vector<ItemId>{3});
  // Times must be strictly increasing and positive.
  EXPECT_THROW(writer.append(0, 1.0, std::vector<ItemId>{3}),
               InvalidArgument);
  EXPECT_THROW(writer.append(0, 0.5, std::vector<ItemId>{3}),
               InvalidArgument);
  // Item sets must be non-empty.
  EXPECT_THROW(writer.append(0, 2.0, std::vector<ItemId>{}), InvalidArgument);
  writer.finish();
  EXPECT_THROW(writer.append(0, 3.0, std::vector<ItemId>{1}),
               InvalidArgument);
  EXPECT_THROW(writer.finish(), InvalidArgument);
  std::remove(path.c_str());

  // An empty feed has no derivable universe; the mins make it legal.
  DptStreamWriter empty(temp_path("empty.dpt"));
  EXPECT_THROW(empty.finish(), InvalidArgument);
  const std::string pinned_path = temp_path("empty_pinned.dpt");
  DptStreamWriter pinned(pinned_path, /*min_server_count=*/2,
                         /*min_item_count=*/3);
  pinned.finish();
  const DptInfo info = probe_trace_dpt(pinned_path);
  EXPECT_EQ(info.request_count, 0u);
  EXPECT_EQ(info.server_count, 2u);
  EXPECT_EQ(info.item_count, 3u);
  std::remove(pinned_path.c_str());
}

}  // namespace
}  // namespace dpg
