// Unit tests for the exhaustive optimal solver.
#include <gtest/gtest.h>

#include "util/error.hpp"
#include "solver/bruteforce.hpp"
#include "test_support.hpp"

namespace dpg {
namespace {

constexpr double kTol = 1e-9;

TEST(BruteForce, EmptyFlow) {
  const Flow flow{{}, 1};
  const BruteForceResult r = solve_bruteforce(flow, CostModel{1, 1, 0.8});
  EXPECT_EQ(r.raw_cost, 0.0);
}

TEST(BruteForce, SingleRequestMatchesHandComputation) {
  Flow flow;
  flow.points.push_back({2, 1.5, 0});
  const BruteForceResult r = solve_bruteforce(flow, CostModel{1, 1, 0.8});
  EXPECT_NEAR(r.raw_cost, 2.5, kTol);  // hold 1.5 at origin + transfer
}

TEST(BruteForce, SharedLineIsCountedOnce) {
  // Two children hanging off the same origin hold must not double-charge
  // the overlapping interval.
  Flow flow;
  flow.points.push_back({1, 1.0, 0});
  flow.points.push_back({2, 2.0, 1});
  const CostModel model{1.0, 0.1, 0.8};
  // Parent both at origin: hold [0,2] once (2μ) + 2 transfers.
  const Cost explicit_cost =
      price_parent_assignment(flow, model, {0, 0});
  EXPECT_NEAR(explicit_cost, 2.0 + 0.2, kTol);
  const BruteForceResult best = solve_bruteforce(flow, model);
  EXPECT_LE(best.raw_cost, explicit_cost + kTol);
}

TEST(BruteForce, PriceRejectsWrongArity) {
  Flow flow;
  flow.points.push_back({1, 1.0, 0});
  const CostModel model{1, 1, 0.8};
  const std::vector<std::uint8_t> too_many_parents{0, 0};
  EXPECT_THROW((void)price_parent_assignment(flow, model, too_many_parents),
               InvalidArgument);
}

TEST(BruteForce, RejectsOversizedFlows) {
  Rng rng(3);
  const Flow flow = testing::random_flow(rng, 12, 3);
  const CostModel model{1, 1, 0.8};
  EXPECT_THROW((void)solve_bruteforce(flow, model, 10), InvalidArgument);
}

TEST(BruteForce, WinningScheduleIsFeasibleAndPricedConsistently) {
  Rng rng(11);
  for (int trial = 0; trial < 25; ++trial) {
    const Flow flow = testing::random_flow(rng, 6, 3);
    const CostModel model{1.0, 0.5 + static_cast<double>(trial % 5), 0.8};
    const BruteForceResult r = solve_bruteforce(flow, model);
    const ValidationResult v = r.schedule.validate(flow);
    ASSERT_TRUE(v.ok) << v.message;
    ASSERT_NEAR(r.schedule.raw_cost(model), r.raw_cost, 1e-9);
  }
}

}  // namespace
}  // namespace dpg
