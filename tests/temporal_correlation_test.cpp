#include <gtest/gtest.h>

#include "solver/temporal_correlation.hpp"
#include "test_support.hpp"
#include "trace/generators.hpp"
#include "util/error.hpp"

namespace dpg {
namespace {

/// First half: items 0,1 always together; second half: strictly apart.
RequestSequence two_phase_sequence() {
  SequenceBuilder builder(2, 2);
  Time t = 0.0;
  for (int i = 0; i < 50; ++i) builder.add(0, t += 1.0, {0, 1});
  for (int i = 0; i < 25; ++i) {
    builder.add(0, t += 1.0, {0});
    builder.add(1, t += 1.0, {1});
  }
  return std::move(builder).build();
}

TEST(WindowedJaccard, TracksPhaseChange) {
  const RequestSequence seq = two_phase_sequence();
  const auto series = windowed_jaccard_series(seq, 0, 1, 20, 5);
  ASSERT_FALSE(series.empty());
  EXPECT_NEAR(series.front().jaccard, 1.0, 1e-12);  // co-access phase
  EXPECT_NEAR(series.back().jaccard, 0.0, 1e-12);   // divergent phase
  // Times are non-decreasing.
  for (std::size_t i = 1; i < series.size(); ++i) {
    ASSERT_GE(series[i].time, series[i - 1].time);
  }
}

TEST(WindowedJaccard, WindowLargerThanTraceYieldsEmptySeries) {
  const RequestSequence seq = testing::running_example_sequence();
  EXPECT_TRUE(windowed_jaccard_series(seq, 0, 1, 100, 1).empty());
}

TEST(WindowedJaccard, FullWindowEqualsGlobalJaccard) {
  const RequestSequence seq = testing::running_example_sequence();
  const auto series = windowed_jaccard_series(seq, 0, 1, seq.size(), 1);
  ASSERT_EQ(series.size(), 1u);
  EXPECT_NEAR(series[0].jaccard, 3.0 / 7.0, 1e-12);
}

TEST(WindowedJaccard, Validates) {
  const RequestSequence seq = testing::running_example_sequence();
  EXPECT_THROW((void)windowed_jaccard_series(seq, 0, 0, 4, 1), InvalidArgument);
  EXPECT_THROW((void)windowed_jaccard_series(seq, 0, 1, 0, 1), InvalidArgument);
  EXPECT_THROW((void)windowed_jaccard_series(seq, 0, 1, 4, 0), InvalidArgument);
}

TEST(Dilution, LargeOnPhaseChangingTraces) {
  const RequestSequence seq = two_phase_sequence();
  const DilutionReport report = measure_dilution(seq, 0, 1, 20);
  EXPECT_NEAR(report.peak_windowed, 1.0, 1e-12);
  EXPECT_LT(report.global_jaccard, 0.6);  // 50 co / (75+75-50)
  EXPECT_GT(report.dilution(), 0.4);
}

TEST(Dilution, NearZeroOnStationaryTraces) {
  Rng rng(4);
  PairedTraceConfig config;
  config.pair_jaccard = {0.5};
  config.requests_per_pair = 600;
  const RequestSequence seq = generate_paired_trace(config, rng);
  const DilutionReport report = measure_dilution(seq, 0, 1, 150);
  EXPECT_LT(report.dilution(), 0.25);  // sampling noise only
  EXPECT_NEAR(report.mean_windowed, report.global_jaccard, 0.1);
}

TEST(Dilution, DegeneratesToGlobalWhenWindowTooLarge) {
  const RequestSequence seq = testing::running_example_sequence();
  const DilutionReport report = measure_dilution(seq, 0, 1, 100);
  EXPECT_NEAR(report.dilution(), 0.0, 1e-12);
}

}  // namespace
}  // namespace dpg
