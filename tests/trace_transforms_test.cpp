#include <gtest/gtest.h>

#include "test_support.hpp"

#include "trace/generators.hpp"
#include "trace/transforms.hpp"
#include "util/error.hpp"

namespace dpg {
namespace {

RequestSequence sample() {
  return RequestSequence(
      3, 3,
      {RequestDraft{0, 1.0, {0}}, RequestDraft{1, 2.0, {0, 1}}, RequestDraft{2, 3.0, {2}},
       RequestDraft{1, 4.0, {1, 2}}, RequestDraft{0, 5.0, {0}}});
}

TEST(SliceTimeWindow, KeepsHalfOpenWindowAndShiftsTimes) {
  const RequestSequence sliced = slice_time_window(sample(), 1.0, 4.0);
  ASSERT_EQ(sliced.size(), 3u);  // times 2, 3, 4 -> shifted 1, 2, 3
  EXPECT_DOUBLE_EQ(sliced[0].time, 1.0);
  EXPECT_DOUBLE_EQ(sliced[2].time, 3.0);
  EXPECT_EQ(testing::items_of(sliced[0]), (std::vector<ItemId>{0, 1}));
}

TEST(SliceTimeWindow, EmptyWindowYieldsEmptySequence) {
  const RequestSequence sliced = slice_time_window(sample(), 10.0, 20.0);
  EXPECT_TRUE(sliced.empty());
  EXPECT_THROW((void)slice_time_window(sample(), 3.0, 3.0), InvalidArgument);
}

TEST(FilterItems, DropsOtherItemsAndRemapsDensely) {
  const RequestSequence filtered = filter_items(sample(), {2, 0});
  // Requests containing neither 0 nor 2 disappear; 2 -> 0, 0 -> 1.
  ASSERT_EQ(filtered.item_count(), 2u);
  ASSERT_EQ(filtered.size(), 5u);  // every request touches 0 or 2 here
  EXPECT_EQ(testing::items_of(filtered[0]), (std::vector<ItemId>{1}));   // was {0}
  EXPECT_EQ(testing::items_of(filtered[2]), (std::vector<ItemId>{0}));   // was {2}
  EXPECT_EQ(testing::items_of(filtered[3]), (std::vector<ItemId>{0}));   // was {1,2}
}

TEST(FilterItems, RemovesEmptiedRequests) {
  const RequestSequence filtered = filter_items(sample(), {1});
  ASSERT_EQ(filtered.size(), 2u);  // only requests that contained item 1
  EXPECT_EQ(filtered.item_count(), 1u);
}

TEST(FilterItems, Validates) {
  EXPECT_THROW((void)filter_items(sample(), {}), InvalidArgument);
  EXPECT_THROW((void)filter_items(sample(), {9}), InvalidArgument);
  EXPECT_THROW((void)filter_items(sample(), {0, 0}), InvalidArgument);
}

TEST(MergeSequences, InterleavesAndRenumbersItems) {
  const RequestSequence a(2, 1, {RequestDraft{0, 1.0, {0}}, RequestDraft{1, 3.0, {0}}});
  const RequestSequence b(3, 2, {RequestDraft{2, 2.0, {0, 1}}});
  const RequestSequence merged = merge_sequences(a, b);
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged.server_count(), 3u);
  EXPECT_EQ(merged.item_count(), 3u);
  EXPECT_EQ(testing::items_of(merged[1]), (std::vector<ItemId>{1, 2}));  // b's items + 1
}

TEST(MergeSequences, NudgesDuplicateTimestamps) {
  const RequestSequence a(2, 1, {RequestDraft{0, 1.0, {0}}});
  const RequestSequence b(2, 1, {RequestDraft{1, 1.0, {0}}});
  const RequestSequence merged = merge_sequences(a, b);
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_GT(merged[1].time, merged[0].time);
}

TEST(MergeSequences, PreservesSolvability) {
  Rng rng(8);
  UniformTraceConfig config;
  config.request_count = 50;
  const RequestSequence a = generate_uniform_trace(config, rng);
  const RequestSequence b = generate_uniform_trace(config, rng);
  const RequestSequence merged = merge_sequences(a, b);
  EXPECT_EQ(merged.size(), 100u);
  EXPECT_EQ(merged.item_count(), a.item_count() + b.item_count());
}

TEST(RemapServers, AppliesMappingAndResizesUniverse) {
  const RequestSequence remapped = remap_servers(sample(), {5, 1, 0});
  EXPECT_EQ(remapped.server_count(), 6u);
  EXPECT_EQ(remapped[0].server, 5u);
  EXPECT_EQ(remapped[1].server, 1u);
  EXPECT_EQ(remapped[2].server, 0u);
}

TEST(RemapServers, RejectsShortMapping) {
  EXPECT_THROW((void)remap_servers(sample(), {0, 1}), InvalidArgument);
}

}  // namespace
}  // namespace dpg
