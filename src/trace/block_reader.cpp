#include "trace/block_reader.hpp"

#include <algorithm>
#include <utility>

#include "obs/metrics.hpp"
#include "util/error.hpp"

namespace dpg {

namespace {

// The same parse counters the other CSV readers bump, so `trace.*` metrics
// cover every ingest path uniformly.
const obs::Counter g_rows_parsed = obs::counter("trace.rows_parsed");
const obs::Counter g_bytes_parsed = obs::counter("trace.bytes_parsed");

// One IO chunk: big enough to amortize istream::read, small enough that a
// pipelined serve keeps cache-resident buffers.
constexpr std::size_t kReadChunkBytes = 1u << 20;

}  // namespace

// ---------------------------------------------------------------------------
// SequenceBlockReader

SequenceBlockReader::SequenceBlockReader(const RequestSequence& sequence,
                                         std::size_t batch_rows,
                                         std::size_t limit)
    : sequence_(sequence),
      batch_rows_(batch_rows),
      end_(limit == 0 ? sequence.size() : std::min(limit, sequence.size())) {
  require(batch_rows_ > 0, "SequenceBlockReader: batch_rows must be >= 1");
}

bool SequenceBlockReader::next(RequestBlock& block) {
  if (pos_ >= end_) {
    block.clear();
    return false;
  }
  const std::size_t n = std::min(batch_rows_, end_ - pos_);
  const SequenceColumns columns = sequence_.columns();
  // Offsets stay absolute into the full items pool; the block indexes the
  // pool base directly, so the slice is pure pointer arithmetic.
  block.adopt(columns.servers.subspan(pos_, n), columns.times.subspan(pos_, n),
              columns.item_offsets.subspan(pos_, n + 1), columns.items_pool);
  pos_ += n;
  return true;
}

// ---------------------------------------------------------------------------
// CsvBlockReader

CsvBlockReader::CsvBlockReader(std::istream& in, std::string source,
                               std::size_t batch_rows, std::size_t limit)
    : in_(in), source_(std::move(source)), batch_rows_(batch_rows),
      limit_(limit) {
  require(batch_rows_ > 0, "CsvBlockReader: batch_rows must be >= 1");
  buffer_.reserve(kReadChunkBytes + 4096);
}

bool CsvBlockReader::next_line(std::string_view& line, std::size_t* offset) {
  for (;;) {
    const std::size_t newline = buffer_.find('\n', pos_);
    if (newline != std::string::npos) {
      *offset = base_offset_ + pos_;
      line = std::string_view(buffer_).substr(pos_, newline - pos_);
      pos_ = newline + 1;
      if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
      return true;
    }
    if (eof_) {
      if (pos_ >= buffer_.size()) return false;
      // Final line without a trailing newline.
      *offset = base_offset_ + pos_;
      line = std::string_view(buffer_).substr(pos_);
      pos_ = buffer_.size();
      if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
      return true;
    }
    // Compact the consumed prefix, then pull the next chunk.
    if (pos_ > 0) {
      buffer_.erase(0, pos_);
      base_offset_ += pos_;
      pos_ = 0;
    }
    const std::size_t old_size = buffer_.size();
    buffer_.resize(old_size + kReadChunkBytes);
    in_.read(buffer_.data() + old_size,
             static_cast<std::streamsize>(kReadChunkBytes));
    const std::size_t got = static_cast<std::size_t>(in_.gcount());
    buffer_.resize(old_size + got);
    if (got == 0) {
      if (in_.bad()) {
        throw IoError(source_ + ": read error at byte offset " +
                      std::to_string(base_offset_ + buffer_.size()));
      }
      eof_ = true;
    }
  }
}

void CsvBlockReader::parse_header_line() {
  header_parsed_ = true;
  std::string_view header;
  std::size_t offset = 0;
  if (!next_line(header, &offset)) {
    throw IoError(source_ + ": empty input (no CSV header)");
  }
  layout_ = csvdec::parse_header(header);
  canonical_ = layout_.canonical();
}

bool CsvBlockReader::next(RequestBlock& block) {
  block.clear();
  if (!pending_error_.empty()) {
    // A malformed row was found while filling the previous (delivered)
    // block; now that its valid prefix has been consumed, surface it.
    throw IoError(std::exchange(pending_error_, {}));
  }
  if (!header_parsed_) parse_header_line();

  std::size_t bytes = 0;
  while (block.size() < batch_rows_ &&
         (limit_ == 0 || rows_ + block.size() < limit_)) {
    std::string_view line;
    std::size_t offset = 0;
    if (!next_line(line, &offset)) break;
    if (line.empty()) continue;
    const std::size_t rows_before = block.size();
    try {
      const csvdec::RowFields fields =
          csvdec::split_row(line, layout_, canonical_);
      block.begin_row(
          static_cast<ServerId>(
              csvdec::fast_parse_size(csvdec::strip_quotes(fields.server))),
          csvdec::fast_parse_double(csvdec::strip_quotes(fields.time)));
      csvdec::parse_item_list(fields.items,
                              [&](ItemId item) { block.push_item(item); });
      block.end_row();  // sorts + deduplicates — push_batch relies on it
    } catch (const Error& e) {
      // An item-list error lands after begin_row: drop the half-open row so
      // the delivered block holds only complete rows.
      block.abort_row();
      // Keep every valid row decoded so far: deliver the partial block now
      // and re-throw on the next call, so the engine ingests exactly the
      // requests before the malformed row — same as the per-push path.
      pending_error_ = source_ + ": row " +
                       std::to_string(rows_ + rows_before + 1) +
                       " (byte offset " + std::to_string(offset) +
                       "): " + e.what();
      if (rows_before == 0) {
        throw IoError(std::exchange(pending_error_, {}));
      }
      break;
    }
    bytes += line.size() + 1;
  }

  rows_ += block.size();
  g_rows_parsed.add(block.size());
  g_bytes_parsed.add(bytes);
  return !block.empty();
}

}  // namespace dpg
