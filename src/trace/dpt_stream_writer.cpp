#include "trace/dpt_stream_writer.hpp"

#include <algorithm>
#include <bit>
#include <cstdint>
#include <fstream>
#include <numeric>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"

namespace dpg {

namespace {

// Same counters as trace/dpt.cpp's writer (obs::counter registration is
// idempotent by name, so both translation units share the slots).
const obs::Counter g_dpt_rows_written = obs::counter("trace.dpt_rows_written");
const obs::Counter g_dpt_bytes_written =
    obs::counter("trace.dpt_bytes_written");

// On-disk layout constants — must match trace/dpt.cpp (docs/FORMAT.md).
// The format is frozen at version 1; the byte-identity test against
// write_trace_dpt pins any drift.
constexpr std::uint32_t kEndianMarker = 0x0A0B0C0Du;
constexpr std::size_t kFixedHeaderBytes = 64;
constexpr std::size_t kDescriptorBytes = 40;
constexpr std::size_t kColumnAlignment = 64;
constexpr std::uint32_t kColumnCount = 6;

// Column identifiers (docs/FORMAT.md §column table).
enum ColumnId : std::uint32_t {
  kColServers = 1,         // u32 × n
  kColTimes = 2,           // f64 × n
  kColItemOffsets = 3,     // u64 × (n + 1)
  kColItemsPool = 4,       // u32 × A
  kColPerItemOffsets = 5,  // u64 × (k + 1)
  kColPerItemPool = 6,     // u64 × A
};

inline void put_u32(std::vector<unsigned char>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back((v >> (8 * i)) & 0xFF);
}
inline void put_u64(std::vector<unsigned char>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back((v >> (8 * i)) & 0xFF);
}
inline std::size_t align_up(std::size_t v, std::size_t a) noexcept {
  return (v + a - 1) / a * a;
}

}  // namespace

DptStreamWriter::DptStreamWriter(std::string path,
                                 std::size_t min_server_count,
                                 std::size_t min_item_count)
    : path_(std::move(path)),
      min_server_count_(min_server_count),
      min_item_count_(min_item_count) {
  // The on-disk item_offsets column leads with 0; seed the column and its
  // checksum now so appends only ever feed the new back offset.
  item_offsets_.push_back(0);
  item_offsets_sum_.update(item_offsets_.data(), sizeof(std::size_t));
}

void DptStreamWriter::append_canonical(ServerId server, Time time,
                                       std::span<const ItemId> items) {
  require(!finished_, "DptStreamWriter: append after finish");
  require(time > last_time_ && time > 0.0,
          "DptStreamWriter: times must be strictly increasing and > 0");
  require(!items.empty(), "DptStreamWriter: empty item set");
  last_time_ = time;
  max_server_ = std::max(max_server_, server);
  max_item_ = std::max(max_item_, items.back());  // sorted: back is max

  servers_.push_back(server);
  servers_sum_.update(&servers_.back(), sizeof(ServerId));
  times_.push_back(time);
  times_sum_.update(&times_.back(), sizeof(Time));
  items_pool_.insert(items_pool_.end(), items.begin(), items.end());
  items_pool_sum_.update(items.data(), items.size() * sizeof(ItemId));
  item_offsets_.push_back(items_pool_.size());
  item_offsets_sum_.update(&item_offsets_.back(), sizeof(std::size_t));
}

void DptStreamWriter::append(ServerId server, Time time,
                             std::span<const ItemId> items) {
  row_.assign(items.begin(), items.end());
  std::sort(row_.begin(), row_.end());
  row_.erase(std::unique(row_.begin(), row_.end()), row_.end());
  append_canonical(server, time, std::span<const ItemId>(row_));
}

void DptStreamWriter::append_block(const RequestBlock& block) {
  const std::size_t n = block.size();
  for (std::size_t i = 0; i < n; ++i) {
    append_canonical(block.server_of(i), block.time_of(i), block.items_of(i));
  }
}

void DptStreamWriter::finish() {
  // Columns are memcpy'd verbatim (as in write_trace_dpt) — refuse to build
  // byte-swapped files on a big-endian host.
  static_assert(std::endian::native == std::endian::little,
                "DptStreamWriter stores columns verbatim little-endian");
  static_assert(sizeof(std::size_t) == 8,
                "item_offsets columns are stored as u64");
  require(!finished_, "DptStreamWriter: finish called twice");
  finished_ = true;
  const obs::TraceSpan span("trace/dpt_stream_finish");

  const std::size_t request_count = servers_.size();
  const std::size_t server_count =
      std::max(min_server_count_,
               request_count > 0 ? static_cast<std::size_t>(max_server_) + 1
                                 : std::size_t{0});
  const std::size_t item_count =
      std::max(min_item_count_,
               request_count > 0 ? static_cast<std::size_t>(max_item_) + 1
                                 : std::size_t{0});
  require(server_count > 0,
          "DptStreamWriter: need >= 1 server (empty feed: set "
          "min_server_count)");
  require(item_count > 0,
          "DptStreamWriter: need >= 1 item (empty feed: set min_item_count)");

  // Derived per-item inverted index — the exact counting sort of
  // RequestSequence::build_item_index (count, prefix sum, scatter in row
  // order, shift), so the stored column matches what the sequence builder
  // would have produced for the same rows.
  std::vector<std::size_t> per_item_offsets(item_count + 1, 0);
  for (const ItemId item : items_pool_) ++per_item_offsets[item + 1];
  std::partial_sum(per_item_offsets.begin(), per_item_offsets.end(),
                   per_item_offsets.begin());
  std::vector<std::size_t> per_item_pool(items_pool_.size());
  for (std::size_t i = 0; i < request_count; ++i) {
    for (std::size_t j = item_offsets_[i]; j < item_offsets_[i + 1]; ++j) {
      per_item_pool[per_item_offsets[items_pool_[j]]++] = i;
    }
  }
  for (std::size_t item = item_count; item > 0; --item) {
    per_item_offsets[item] = per_item_offsets[item - 1];
  }
  per_item_offsets[0] = 0;

  // Column table in the canonical order, checksums from the running
  // streams for the append-side columns and one-shot for the two derived
  // ones (which were just built, so they are a single cold scan anyway).
  struct Plan {
    std::uint32_t id;
    const void* data;
    std::uint32_t element_size;
    std::uint64_t element_count;
    std::uint64_t checksum;
  };
  const Plan plans[kColumnCount] = {
      {kColServers, servers_.data(), 4, servers_.size(),
       servers_sum_.digest()},
      {kColTimes, times_.data(), 8, times_.size(), times_sum_.digest()},
      {kColItemOffsets, item_offsets_.data(), 8, item_offsets_.size(),
       item_offsets_sum_.digest()},
      {kColItemsPool, items_pool_.data(), 4, items_pool_.size(),
       items_pool_sum_.digest()},
      {kColPerItemOffsets, per_item_offsets.data(), 8,
       per_item_offsets.size(),
       dpt_checksum(per_item_offsets.data(),
                    per_item_offsets.size() * sizeof(std::size_t))},
      {kColPerItemPool, per_item_pool.data(), 8, per_item_pool.size(),
       // An empty feed has an empty pool whose data() may be null; the
       // empty stream digest equals dpt_checksum of zero bytes.
       per_item_pool.empty()
           ? DptChecksumStream().digest()
           : dpt_checksum(per_item_pool.data(),
                          per_item_pool.size() * sizeof(std::size_t))},
  };

  const std::size_t header_bytes =
      kFixedHeaderBytes + kColumnCount * kDescriptorBytes;
  struct Desc {
    std::uint64_t byte_offset;
    std::uint64_t byte_length;
  };
  Desc descs[kColumnCount];
  std::size_t cursor = align_up(header_bytes, kColumnAlignment);
  for (std::size_t i = 0; i < kColumnCount; ++i) {
    descs[i].byte_offset = cursor;
    descs[i].byte_length = plans[i].element_count * plans[i].element_size;
    cursor = align_up(cursor + descs[i].byte_length, kColumnAlignment);
  }

  std::vector<unsigned char> header;
  header.reserve(align_up(header_bytes, kColumnAlignment));
  header.insert(header.end(), kDptMagic, kDptMagic + sizeof kDptMagic);
  put_u32(header, kEndianMarker);
  put_u32(header, kDptVersion);
  put_u64(header, header_bytes);
  put_u64(header, request_count);
  put_u64(header, server_count);
  put_u64(header, item_count);
  put_u64(header, items_pool_.size());  // item_access_count
  put_u32(header, kColumnCount);
  put_u32(header, 0);  // reserved
  for (std::size_t i = 0; i < kColumnCount; ++i) {
    put_u32(header, plans[i].id);
    put_u32(header, plans[i].element_size);
    put_u64(header, plans[i].element_count);
    put_u64(header, descs[i].byte_offset);
    put_u64(header, descs[i].byte_length);
    put_u64(header, plans[i].checksum);
  }
  header.resize(align_up(header.size(), kColumnAlignment), 0);

  std::ofstream out(path_, std::ios::binary);
  if (!out) throw IoError("cannot write trace file: " + path_);
  out.write(reinterpret_cast<const char*>(header.data()),
            static_cast<std::streamsize>(header.size()));
  std::size_t written = header.size();
  const char zeros[kColumnAlignment] = {};
  for (std::size_t i = 0; i < kColumnCount; ++i) {
    if (written < descs[i].byte_offset) {
      out.write(zeros,
                static_cast<std::streamsize>(descs[i].byte_offset - written));
      written = descs[i].byte_offset;
    }
    if (descs[i].byte_length > 0) {
      out.write(static_cast<const char*>(plans[i].data),
                static_cast<std::streamsize>(descs[i].byte_length));
      written += descs[i].byte_length;
    }
  }
  if (!out) throw IoError("error while writing trace file: " + path_);
  g_dpt_rows_written.add(request_count);
  g_dpt_bytes_written.add(written);
}

}  // namespace dpg
