// Trace transformations: slicing, filtering and remapping request
// sequences.  These are the everyday tools for working with archived
// traces — cutting a time window out of a day-long trace, restricting to
// an item subset, merging fleets, anonymizing server ids.
#pragma once

#include <vector>

#include "core/request.hpp"

namespace dpg {

/// Requests with time in (begin, end], times shifted so the window starts
/// at 0 (shift = begin; resulting times are > 0 as the model requires).
[[nodiscard]] RequestSequence slice_time_window(const RequestSequence& sequence,
                                                Time begin, Time end);

/// Requests restricted to the given items (other items are dropped from
/// request item-sets; requests left empty are removed).  Item ids are
/// remapped densely in the order given, so `items = {7, 2}` produces a
/// 2-item sequence where old item 7 is new item 0.
[[nodiscard]] RequestSequence filter_items(const RequestSequence& sequence,
                                           const std::vector<ItemId>& items);

/// Interleaves two sequences over the same server universe; the second
/// sequence's items are renumbered after the first's.  Identical timestamps
/// are disambiguated by nudging the later one forward by `epsilon`.
[[nodiscard]] RequestSequence merge_sequences(const RequestSequence& a,
                                              const RequestSequence& b,
                                              double epsilon = 1e-7);

/// Applies a server permutation/mapping (`mapping[s]` = new id).  The new
/// server count is max(mapping)+1; mapping must cover every used server.
[[nodiscard]] RequestSequence remap_servers(const RequestSequence& sequence,
                                            const std::vector<ServerId>& mapping);

}  // namespace dpg
