#include "trace/dpt.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "trace/io.hpp"
#include "util/error.hpp"

namespace dpg {

namespace {

const obs::Counter g_dpt_rows_written = obs::counter("trace.dpt_rows_written");
const obs::Counter g_dpt_bytes_written =
    obs::counter("trace.dpt_bytes_written");
const obs::Counter g_dpt_opens = obs::counter("trace.dpt_opens");
const obs::Counter g_dpt_bytes_mapped = obs::counter("trace.dpt_bytes_mapped");

// ---------------------------------------------------------------------------
// XXH64 (Yann Collet's xxHash, 64-bit variant) implemented from the public
// spec — the repo takes no third-party dependencies.  Verified against the
// published test vectors in tests/dpt_format_test.cpp.

constexpr std::uint64_t kPrime1 = 0x9E3779B185EBCA87ULL;
constexpr std::uint64_t kPrime2 = 0xC2B2AE3D27D4EB4FULL;
constexpr std::uint64_t kPrime3 = 0x165667B19E3779F9ULL;
constexpr std::uint64_t kPrime4 = 0x85EBCA77C2B2AE63ULL;
constexpr std::uint64_t kPrime5 = 0x27D4EB2F165667C5ULL;

inline std::uint64_t rotl64(std::uint64_t x, int r) noexcept {
  return (x << r) | (x >> (64 - r));
}

inline std::uint64_t read_u64(const unsigned char* p) noexcept {
  std::uint64_t v;
  std::memcpy(&v, p, sizeof v);
  return v;  // little-endian host (enforced by the endian marker on read)
}

inline std::uint64_t read_u32_wide(const unsigned char* p) noexcept {
  std::uint32_t v;
  std::memcpy(&v, p, sizeof v);
  return v;
}

inline std::uint64_t xxh64_round(std::uint64_t acc,
                                 std::uint64_t lane) noexcept {
  return rotl64(acc + lane * kPrime2, 31) * kPrime1;
}

inline std::uint64_t xxh64_merge(std::uint64_t hash,
                                 std::uint64_t acc) noexcept {
  return (hash ^ xxh64_round(0, acc)) * kPrime1 + kPrime4;
}

}  // namespace

std::uint64_t dpt_checksum(const void* data, std::size_t size,
                           std::uint64_t seed) {
  const auto* p = static_cast<const unsigned char*>(data);
  const unsigned char* const end = p + size;
  std::uint64_t hash;
  if (size >= 32) {
    std::uint64_t acc1 = seed + kPrime1 + kPrime2;
    std::uint64_t acc2 = seed + kPrime2;
    std::uint64_t acc3 = seed;
    std::uint64_t acc4 = seed - kPrime1;
    const unsigned char* const limit = end - 32;
    do {
      acc1 = xxh64_round(acc1, read_u64(p));
      acc2 = xxh64_round(acc2, read_u64(p + 8));
      acc3 = xxh64_round(acc3, read_u64(p + 16));
      acc4 = xxh64_round(acc4, read_u64(p + 24));
      p += 32;
    } while (p <= limit);
    hash = rotl64(acc1, 1) + rotl64(acc2, 7) + rotl64(acc3, 12) +
           rotl64(acc4, 18);
    hash = xxh64_merge(hash, acc1);
    hash = xxh64_merge(hash, acc2);
    hash = xxh64_merge(hash, acc3);
    hash = xxh64_merge(hash, acc4);
  } else {
    hash = seed + kPrime5;
  }
  hash += static_cast<std::uint64_t>(size);
  while (p + 8 <= end) {
    hash = rotl64(hash ^ xxh64_round(0, read_u64(p)), 27) * kPrime1 + kPrime4;
    p += 8;
  }
  if (p + 4 <= end) {
    hash = rotl64(hash ^ (read_u32_wide(p) * kPrime1), 23) * kPrime2 + kPrime3;
    p += 4;
  }
  while (p < end) {
    hash = rotl64(hash ^ (*p * kPrime5), 11) * kPrime1;
    ++p;
  }
  hash ^= hash >> 33;
  hash *= kPrime2;
  hash ^= hash >> 29;
  hash *= kPrime3;
  hash ^= hash >> 32;
  return hash;
}

DptChecksumStream::DptChecksumStream(std::uint64_t seed) noexcept
    : seed_(seed) {
  acc_[0] = seed + kPrime1 + kPrime2;
  acc_[1] = seed + kPrime2;
  acc_[2] = seed;
  acc_[3] = seed - kPrime1;
}

void DptChecksumStream::update(const void* data, std::size_t size) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  total_ += size;
  // Top up a carried partial stripe first.  Consuming eagerly at exactly 32
  // buffered bytes matches the one-shot loop, which also folds a stripe
  // when exactly 32 bytes remain (its tail is total % 32 bytes).
  if (buffered_ > 0) {
    const std::size_t take = std::min(size, sizeof buffer_ - buffered_);
    std::memcpy(buffer_ + buffered_, p, take);
    buffered_ += take;
    p += take;
    size -= take;
    if (buffered_ < sizeof buffer_) return;
    acc_[0] = xxh64_round(acc_[0], read_u64(buffer_));
    acc_[1] = xxh64_round(acc_[1], read_u64(buffer_ + 8));
    acc_[2] = xxh64_round(acc_[2], read_u64(buffer_ + 16));
    acc_[3] = xxh64_round(acc_[3], read_u64(buffer_ + 24));
    buffered_ = 0;
  }
  // Whole stripes straight from the caller's buffer, no copy.
  while (size >= 32) {
    acc_[0] = xxh64_round(acc_[0], read_u64(p));
    acc_[1] = xxh64_round(acc_[1], read_u64(p + 8));
    acc_[2] = xxh64_round(acc_[2], read_u64(p + 16));
    acc_[3] = xxh64_round(acc_[3], read_u64(p + 24));
    p += 32;
    size -= 32;
  }
  if (size > 0) {
    std::memcpy(buffer_, p, size);
    buffered_ = size;
  }
}

std::uint64_t DptChecksumStream::digest() const noexcept {
  // Finalize from a copy: the accumulators already hold every full stripe
  // (floor(total / 32) of them), the carry buffer holds the total % 32
  // tail — exactly the split the one-shot function reaches before its own
  // finalization.
  std::uint64_t hash;
  if (total_ >= 32) {
    hash = rotl64(acc_[0], 1) + rotl64(acc_[1], 7) + rotl64(acc_[2], 12) +
           rotl64(acc_[3], 18);
    hash = xxh64_merge(hash, acc_[0]);
    hash = xxh64_merge(hash, acc_[1]);
    hash = xxh64_merge(hash, acc_[2]);
    hash = xxh64_merge(hash, acc_[3]);
  } else {
    hash = seed_ + kPrime5;
  }
  hash += total_;
  const unsigned char* p = buffer_;
  const unsigned char* const end = buffer_ + buffered_;
  while (p + 8 <= end) {
    hash = rotl64(hash ^ xxh64_round(0, read_u64(p)), 27) * kPrime1 + kPrime4;
    p += 8;
  }
  if (p + 4 <= end) {
    hash = rotl64(hash ^ (read_u32_wide(p) * kPrime1), 23) * kPrime2 + kPrime3;
    p += 4;
  }
  while (p < end) {
    hash = rotl64(hash ^ (*p * kPrime5), 11) * kPrime1;
    ++p;
  }
  hash ^= hash >> 33;
  hash *= kPrime2;
  hash ^= hash >> 29;
  hash *= kPrime3;
  hash ^= hash >> 32;
  return hash;
}

namespace {

// ---------------------------------------------------------------------------
// On-disk layout (docs/FORMAT.md).  Serialization is field-by-field through
// little-endian put/get helpers, never a struct memcpy, so the format does
// not depend on host padding rules.

constexpr std::uint32_t kEndianMarker = 0x0A0B0C0Du;
constexpr std::size_t kFixedHeaderBytes = 64;
constexpr std::size_t kDescriptorBytes = 40;
constexpr std::size_t kColumnAlignment = 64;
constexpr std::uint32_t kColumnCount = 6;

// Column identifiers.  Readers skip descriptors with ids they do not know —
// the forward-compat rule that lets future versions append columns.
enum ColumnId : std::uint32_t {
  kColServers = 1,        // u32 × n
  kColTimes = 2,          // f64 × n
  kColItemOffsets = 3,    // u64 × (n + 1)
  kColItemsPool = 4,      // u32 × A
  kColPerItemOffsets = 5, // u64 × (k + 1)
  kColPerItemPool = 6,    // u64 × A
};

const char* column_name(std::uint32_t id) {
  switch (id) {
    case kColServers: return "servers";
    case kColTimes: return "times";
    case kColItemOffsets: return "item_offsets";
    case kColItemsPool: return "items_pool";
    case kColPerItemOffsets: return "per_item_offsets";
    case kColPerItemPool: return "per_item_pool";
    default: return "unknown";
  }
}

struct ColumnDesc {
  std::uint32_t id = 0;
  std::uint32_t element_size = 0;
  std::uint64_t element_count = 0;
  std::uint64_t byte_offset = 0;
  std::uint64_t byte_length = 0;
  std::uint64_t checksum = 0;
};

struct Header {
  std::uint32_t version = kDptVersion;
  std::uint64_t header_bytes = 0;
  std::uint64_t request_count = 0;
  std::uint64_t server_count = 0;
  std::uint64_t item_count = 0;
  std::uint64_t item_access_count = 0;
  std::vector<ColumnDesc> columns;
};

inline void put_u32(std::vector<unsigned char>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back((v >> (8 * i)) & 0xFF);
}
inline void put_u64(std::vector<unsigned char>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back((v >> (8 * i)) & 0xFF);
}
inline std::uint32_t get_u32(const unsigned char* p) noexcept {
  return static_cast<std::uint32_t>(p[0]) |
         static_cast<std::uint32_t>(p[1]) << 8 |
         static_cast<std::uint32_t>(p[2]) << 16 |
         static_cast<std::uint32_t>(p[3]) << 24;
}
inline std::uint64_t get_u64(const unsigned char* p) noexcept {
  return static_cast<std::uint64_t>(get_u32(p)) |
         static_cast<std::uint64_t>(get_u32(p + 4)) << 32;
}

inline std::size_t align_up(std::size_t v, std::size_t a) noexcept {
  return (v + a - 1) / a * a;
}

[[noreturn]] void corrupt(const std::string& path, const std::string& what) {
  throw FormatError(path + ": " + what);
}

/// Owns one mmap'ed read-only file; the keeper of borrowed sequences.
/// The mapping is sized from an fstat of the opened descriptor (no
/// stat-then-open race), but a file truncated *while mapped* still raises
/// SIGBUS on access — an mmap fact of life, documented in docs/FORMAT.md.
class MappedFile {
 public:
  explicit MappedFile(const std::string& path) {
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) throw IoError("cannot open trace file: " + path);
    struct stat st{};
    if (::fstat(fd, &st) != 0) {
      ::close(fd);
      throw IoError("cannot stat trace file: " + path);
    }
    size_ = static_cast<std::size_t>(st.st_size);
    if (size_ > 0) {
      data_ = ::mmap(nullptr, size_, PROT_READ, MAP_PRIVATE, fd, 0);
      if (data_ == MAP_FAILED) {
        ::close(fd);
        throw IoError("mmap failed for trace file: " + path + " (" +
                      std::strerror(errno) + ")");
      }
    }
    ::close(fd);  // the mapping outlives the descriptor
  }
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  ~MappedFile() {
    if (data_ != nullptr && data_ != MAP_FAILED) ::munmap(data_, size_);
  }

  [[nodiscard]] const unsigned char* data() const noexcept {
    return static_cast<const unsigned char*>(data_);
  }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }

 private:
  void* data_ = nullptr;
  std::size_t size_ = 0;
};

std::size_t file_size_of(const std::string& path) {
  struct stat st{};
  if (::stat(path.c_str(), &st) != 0) {
    throw IoError("cannot stat trace file: " + path);
  }
  return static_cast<std::size_t>(st.st_size);
}

/// Parses and sanity-checks the header + column table against `file_bytes`.
Header parse_header(const std::string& path, const unsigned char* bytes,
                    std::size_t file_bytes) {
  if (file_bytes < kFixedHeaderBytes) {
    corrupt(path, "truncated header (" + std::to_string(file_bytes) +
                      " bytes, need " + std::to_string(kFixedHeaderBytes) +
                      ")");
  }
  if (std::memcmp(bytes, kDptMagic, sizeof kDptMagic) != 0) {
    corrupt(path, "not a .dpt trace (bad magic)");
  }
  if (get_u32(bytes + 8) != kEndianMarker) {
    corrupt(path, "byte order mismatch (file is not little-endian)");
  }
  Header h;
  h.version = get_u32(bytes + 12);
  if (h.version == 0 || h.version > kDptVersion) {
    corrupt(path, "unsupported version " + std::to_string(h.version) +
                      " (this build reads up to " +
                      std::to_string(kDptVersion) + ")");
  }
  h.header_bytes = get_u64(bytes + 16);
  h.request_count = get_u64(bytes + 24);
  h.server_count = get_u64(bytes + 32);
  h.item_count = get_u64(bytes + 40);
  h.item_access_count = get_u64(bytes + 48);
  const std::uint32_t column_count = get_u32(bytes + 56);
  const std::uint64_t table_bytes =
      kFixedHeaderBytes +
      static_cast<std::uint64_t>(column_count) * kDescriptorBytes;
  if (h.header_bytes < table_bytes || h.header_bytes > file_bytes) {
    corrupt(path, "truncated column table");
  }
  h.columns.reserve(column_count);
  for (std::uint32_t c = 0; c < column_count; ++c) {
    const unsigned char* d = bytes + kFixedHeaderBytes + c * kDescriptorBytes;
    ColumnDesc desc;
    desc.id = get_u32(d);
    desc.element_size = get_u32(d + 4);
    desc.element_count = get_u64(d + 8);
    desc.byte_offset = get_u64(d + 16);
    desc.byte_length = get_u64(d + 24);
    desc.checksum = get_u64(d + 32);
    // Overflow-safe shape check: a multiply here could wrap so that a huge
    // element_count "matches" a tiny byte_length; divide instead.
    if (desc.element_size == 0 ||
        desc.byte_length % desc.element_size != 0 ||
        desc.element_count != desc.byte_length / desc.element_size) {
      corrupt(path, std::string("column '") + column_name(desc.id) +
                        "': descriptor length mismatch");
    }
    // Overflow-safe bounds check: byte_offset + byte_length could wrap past
    // 2^64 and land back inside [0, file_bytes); subtract instead.
    if (desc.byte_offset < h.header_bytes ||
        desc.byte_length > file_bytes ||
        desc.byte_offset > file_bytes - desc.byte_length ||
        desc.byte_offset % alignof(std::max_align_t) != 0) {
      corrupt(path, std::string("column '") + column_name(desc.id) +
                        "': data out of file bounds (truncated file?)");
    }
    h.columns.push_back(desc);
  }
  return h;
}

/// The six known columns out of the table, by id; unknown ids are ignored
/// (forward compatibility), missing or duplicated known ids are corruption.
struct ColumnSet {
  const ColumnDesc* by_id[kColumnCount + 1] = {};
};

ColumnSet resolve_columns(const std::string& path, const Header& h) {
  ColumnSet set;
  for (const ColumnDesc& desc : h.columns) {
    if (desc.id < 1 || desc.id > kColumnCount) continue;
    if (set.by_id[desc.id] != nullptr) {
      corrupt(path, std::string("duplicate column '") +
                        column_name(desc.id) + "'");
    }
    set.by_id[desc.id] = &desc;
  }
  const std::uint32_t expected_size[kColumnCount + 1] = {0, 4, 8, 8, 4, 8, 8};
  const std::uint64_t expected_count[kColumnCount + 1] = {
      0,
      h.request_count,
      h.request_count,
      h.request_count + 1,
      h.item_access_count,
      h.item_count + 1,
      h.item_access_count};
  for (std::uint32_t id = 1; id <= kColumnCount; ++id) {
    const ColumnDesc* desc = set.by_id[id];
    if (desc == nullptr) {
      corrupt(path, std::string("missing column '") + column_name(id) + "'");
    }
    if (desc->element_size != expected_size[id] ||
        desc->element_count != expected_count[id]) {
      corrupt(path, std::string("column '") + column_name(id) +
                        "': shape disagrees with header counts");
    }
  }
  return set;
}

void verify_checksums(const std::string& path, const unsigned char* bytes,
                      const ColumnSet& set) {
  const obs::TraceSpan span("trace/dpt_checksum");
  for (std::uint32_t id = 1; id <= kColumnCount; ++id) {
    const ColumnDesc* desc = set.by_id[id];
    if (dpt_checksum(bytes + desc->byte_offset, desc->byte_length) !=
        desc->checksum) {
      corrupt(path, std::string("checksum mismatch in column '") +
                        column_name(id) + "'");
    }
  }
}

template <typename T>
std::span<const T> column_span(const unsigned char* bytes,
                               const ColumnDesc& desc) {
  // Columns are kColumnAlignment-aligned in the file and the base is page-
  // (mmap) or allocator- (read) aligned, so the cast target is aligned.
  return {reinterpret_cast<const T*>(bytes + desc.byte_offset),
          static_cast<std::size_t>(desc.element_count)};
}

RequestSequence build_copy(const std::string& path, const Header& h,
                           const ColumnSet& set, const unsigned char* bytes,
                           std::size_t min_server_count,
                           std::size_t min_item_count) {
  // The untrusting path: stream every row through SequenceBuilder, which
  // re-validates and rebuilds the inverted index.  The header counts give
  // the builder an exact reserve hint, so the rebuild is allocation-flat.
  const auto servers = column_span<ServerId>(bytes, *set.by_id[kColServers]);
  const auto times = column_span<Time>(bytes, *set.by_id[kColTimes]);
  const auto offsets =
      column_span<std::uint64_t>(bytes, *set.by_id[kColItemOffsets]);
  const auto pool = column_span<ItemId>(bytes, *set.by_id[kColItemsPool]);
  // resolve_columns fixed the column *shapes*, not their contents: the
  // offsets drive pool indexing below, so a corrupt-but-rechecksummed file
  // must not walk past the pool (mirrors adopt_columns' structural checks).
  if (offsets.front() != 0 || offsets.back() != pool.size() ||
      !std::is_sorted(offsets.begin(), offsets.end())) {
    corrupt(path, "column 'item_offsets': not a valid CSR offsets column");
  }
  SequenceBuilder builder(1, 1);
  builder.reserve(h.request_count, h.item_access_count);
  try {
    for (std::size_t i = 0; i < h.request_count; ++i) {
      builder.begin_request(servers[i], times[i]);
      for (std::uint64_t j = offsets[i]; j < offsets[i + 1]; ++j) {
        builder.push_item(pool[j]);
      }
      builder.end_request();
    }
    return std::move(builder).build_with_counts(
        std::max<std::size_t>(h.server_count, min_server_count),
        std::max<std::size_t>(h.item_count, min_item_count));
  } catch (const InvalidArgument& e) {
    // Rows that fail sequence validation in a well-checksummed file are
    // file corruption from the caller's point of view (mirrors the kMap
    // adopt_columns wrapping).
    corrupt(path, e.what());
  }
}

RequestSequence read_dpt_impl(const std::string& path,
                              const DptReadOptions& options,
                              std::size_t min_server_count,
                              std::size_t min_item_count) {
  const obs::TraceSpan span("trace/dpt_open");
  g_dpt_opens.add();

  // Borrowing views into the file verbatim requires the in-memory element
  // shapes to match the on-disk ones.
  static_assert(sizeof(std::size_t) == sizeof(std::uint64_t),
                "the .dpt zero-copy path assumes 64-bit size_t");
  static_assert(sizeof(Time) == 8 && sizeof(ServerId) == 4 &&
                    sizeof(ItemId) == 4,
                "the .dpt column shapes mirror core/types.hpp");

  if (options.mode == DptOpenMode::kMap) {
    auto mapped = std::make_shared<MappedFile>(path);
    const std::size_t file_bytes = mapped->size();
    g_dpt_bytes_mapped.add(file_bytes);
    const unsigned char* bytes = mapped->data();
    const Header h = parse_header(path, bytes, file_bytes);
    const ColumnSet set = resolve_columns(path, h);
    if (options.verify_checksums) verify_checksums(path, bytes, set);
    if (min_server_count > h.server_count ||
        min_item_count > h.item_count) {
      // The borrowed per-item index is shaped by the stored item count;
      // larger universes need the owning rebuild.
      return build_copy(path, h, set, bytes, min_server_count,
                        min_item_count);
    }
    SequenceColumns columns;
    columns.servers = column_span<ServerId>(bytes, *set.by_id[kColServers]);
    columns.times = column_span<Time>(bytes, *set.by_id[kColTimes]);
    columns.items_pool =
        column_span<ItemId>(bytes, *set.by_id[kColItemsPool]);
    columns.item_offsets =
        column_span<std::size_t>(bytes, *set.by_id[kColItemOffsets]);
    columns.per_item_pool =
        column_span<std::size_t>(bytes, *set.by_id[kColPerItemPool]);
    columns.per_item_offsets =
        column_span<std::size_t>(bytes, *set.by_id[kColPerItemOffsets]);
    try {
      return RequestSequence::adopt_columns(h.server_count, h.item_count,
                                            columns, std::move(mapped),
                                            options.verify_columns);
    } catch (const InvalidArgument& e) {
      // Structural inconsistency in a well-checksummed file is still file
      // corruption from the caller's point of view.
      corrupt(path, e.what());
    }
  }

  // kRead: one buffered read, then the builder path.  A file that shrinks
  // between the stat and the read leaves the stream short, which throws
  // IoError below — no unmapped-page hazard on this path.
  const std::size_t file_bytes = file_size_of(path);
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("cannot open trace file: " + path);
  std::vector<unsigned char> buffer(file_bytes);
  in.read(reinterpret_cast<char*>(buffer.data()),
          static_cast<std::streamsize>(buffer.size()));
  if (!in && !buffer.empty()) {
    throw IoError("error while reading trace file: " + path);
  }
  const Header h = parse_header(path, buffer.data(), file_bytes);
  const ColumnSet set = resolve_columns(path, h);
  if (options.verify_checksums) verify_checksums(path, buffer.data(), set);
  return build_copy(path, h, set, buffer.data(), min_server_count,
                    min_item_count);
}

}  // namespace

void write_trace_dpt(const std::string& path,
                     const RequestSequence& sequence) {
  // Columns are memcpy'd verbatim, so a big-endian host would stamp the
  // little-endian marker onto byte-swapped data.  Readers would reject
  // their own marker anyway; fail the build instead of writing bad files.
  static_assert(std::endian::native == std::endian::little,
                "write_trace_dpt stores columns verbatim little-endian");
  const obs::TraceSpan span("trace/dpt_write");
  const SequenceColumns cols = sequence.columns();

  Header h;
  h.request_count = sequence.size();
  h.server_count = sequence.server_count();
  h.item_count = sequence.item_count();
  h.item_access_count = sequence.total_item_accesses();
  h.header_bytes = kFixedHeaderBytes + kColumnCount * kDescriptorBytes;

  struct Plan {
    std::uint32_t id;
    const void* data;
    std::uint32_t element_size;
    std::uint64_t element_count;
  };
  const Plan plans[kColumnCount] = {
      {kColServers, cols.servers.data(), 4, cols.servers.size()},
      {kColTimes, cols.times.data(), 8, cols.times.size()},
      {kColItemOffsets, cols.item_offsets.data(), 8, cols.item_offsets.size()},
      {kColItemsPool, cols.items_pool.data(), 4, cols.items_pool.size()},
      {kColPerItemOffsets, cols.per_item_offsets.data(), 8,
       cols.per_item_offsets.size()},
      {kColPerItemPool, cols.per_item_pool.data(), 8,
       cols.per_item_pool.size()},
  };

  std::size_t cursor = align_up(h.header_bytes, kColumnAlignment);
  for (const Plan& plan : plans) {
    ColumnDesc desc;
    desc.id = plan.id;
    desc.element_size = plan.element_size;
    desc.element_count = plan.element_count;
    desc.byte_offset = cursor;
    desc.byte_length = plan.element_count * plan.element_size;
    desc.checksum = dpt_checksum(plan.data, desc.byte_length);
    h.columns.push_back(desc);
    cursor = align_up(cursor + desc.byte_length, kColumnAlignment);
  }

  std::vector<unsigned char> header;
  header.reserve(align_up(h.header_bytes, kColumnAlignment));
  header.insert(header.end(), kDptMagic, kDptMagic + sizeof kDptMagic);
  put_u32(header, kEndianMarker);
  put_u32(header, h.version);
  put_u64(header, h.header_bytes);
  put_u64(header, h.request_count);
  put_u64(header, h.server_count);
  put_u64(header, h.item_count);
  put_u64(header, h.item_access_count);
  put_u32(header, kColumnCount);
  put_u32(header, 0);  // reserved
  for (const ColumnDesc& desc : h.columns) {
    put_u32(header, desc.id);
    put_u32(header, desc.element_size);
    put_u64(header, desc.element_count);
    put_u64(header, desc.byte_offset);
    put_u64(header, desc.byte_length);
    put_u64(header, desc.checksum);
  }
  header.resize(align_up(header.size(), kColumnAlignment), 0);

  std::ofstream out(path, std::ios::binary);
  if (!out) throw IoError("cannot write trace file: " + path);
  out.write(reinterpret_cast<const char*>(header.data()),
            static_cast<std::streamsize>(header.size()));
  std::size_t written = header.size();
  const char zeros[kColumnAlignment] = {};
  for (std::size_t i = 0; i < kColumnCount; ++i) {
    const ColumnDesc& desc = h.columns[i];
    if (written < desc.byte_offset) {
      out.write(zeros,
                static_cast<std::streamsize>(desc.byte_offset - written));
      written = desc.byte_offset;
    }
    out.write(static_cast<const char*>(plans[i].data),
              static_cast<std::streamsize>(desc.byte_length));
    written += desc.byte_length;
  }
  if (!out) throw IoError("error while writing trace file: " + path);
  g_dpt_rows_written.add(sequence.size());
  g_dpt_bytes_written.add(written);
}

RequestSequence read_trace_dpt(const std::string& path,
                               const DptReadOptions& options) {
  return read_dpt_impl(path, options, 0, 0);
}

DptInfo probe_trace_dpt(const std::string& path) {
  const std::size_t file_bytes = file_size_of(path);
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("cannot open trace file: " + path);
  // Read the fixed header first, then size the buffer from its header_bytes
  // field — the column table has no fixed cap (future versions may append
  // columns), so a fixed prefix could truncate a valid table.
  std::vector<unsigned char> head(
      std::min<std::size_t>(file_bytes, kFixedHeaderBytes));
  in.read(reinterpret_cast<char*>(head.data()),
          static_cast<std::streamsize>(head.size()));
  if (!in && !head.empty()) {
    throw IoError("error while reading trace file: " + path);
  }
  if (head.size() < kFixedHeaderBytes) {
    corrupt(path, "truncated header (" + std::to_string(head.size()) +
                      " bytes, need " + std::to_string(kFixedHeaderBytes) +
                      ")");
  }
  const std::uint64_t header_bytes = get_u64(head.data() + 16);
  if (header_bytes > file_bytes) {
    corrupt(path, "truncated column table");
  }
  if (header_bytes > head.size()) {
    head.resize(static_cast<std::size_t>(header_bytes));
    in.read(reinterpret_cast<char*>(head.data() + kFixedHeaderBytes),
            static_cast<std::streamsize>(head.size() - kFixedHeaderBytes));
    if (!in) throw IoError("error while reading trace file: " + path);
  }
  const Header h = parse_header(path, head.data(), file_bytes);
  resolve_columns(path, h);
  DptInfo info;
  info.version = h.version;
  info.request_count = h.request_count;
  info.server_count = h.server_count;
  info.item_count = h.item_count;
  info.item_access_count = h.item_access_count;
  info.column_count = h.columns.size();
  info.file_bytes = file_bytes;
  return info;
}

bool is_dpt_path(std::string_view path) noexcept {
  if (path.size() < 4) return false;
  const std::string_view ext = path.substr(path.size() - 4);
  return ext[0] == '.' && (ext[1] == 'd' || ext[1] == 'D') &&
         (ext[2] == 'p' || ext[2] == 'P') && (ext[3] == 't' || ext[3] == 'T');
}

RequestSequence read_trace_auto(const std::string& path,
                                std::size_t min_server_count,
                                std::size_t min_item_count) {
  if (path == "-") {
    // stdin is always CSV: the .dpt reader needs a seekable/mappable file.
    return read_trace_stream(std::cin, min_server_count, min_item_count);
  }
  if (is_dpt_path(path)) {
    return read_dpt_impl(path, DptReadOptions{}, min_server_count,
                         min_item_count);
  }
  return read_trace_file(path, min_server_count, min_item_count);
}

void write_trace_auto(const std::string& path,
                      const RequestSequence& sequence) {
  if (is_dpt_path(path)) {
    write_trace_dpt(path, sequence);
    return;
  }
  write_trace_file(path, sequence);
}

}  // namespace dpg
