#include "trace/generators.hpp"

#include <algorithm>
#include <cmath>

#include "core/flow.hpp"
#include "util/error.hpp"

namespace dpg {

namespace {

/// Draws strictly increasing, globally unique request times by merging
/// per-stream exponential arrivals; ties are impossible because each event
/// advances a running clock by a strictly positive amount.
class UniqueClock {
 public:
  /// Returns a time strictly greater than every time returned so far and at
  /// least `at`.
  Time claim(Time at) {
    // Nudge forward until strictly past the last issued instant.
    const Time t = std::max(at, last_ + kMinSeparation);
    last_ = t;
    return t;
  }

 private:
  static constexpr Time kMinSeparation = 1e-7;
  Time last_ = 0.0;
};

ServerId sticky_walk(ServerId current, double locality, std::size_t m,
                     Rng& rng) {
  if (rng.next_bool(locality)) return current;
  return static_cast<ServerId>(rng.next_below(m));
}

}  // namespace

RequestSequence generate_paired_trace(const PairedTraceConfig& config,
                                      Rng& rng) {
  require(config.server_count > 0, "paired trace: need >= 1 server");
  require(!config.pair_jaccard.empty(), "paired trace: need >= 1 pair");
  require(config.mean_gap > 0.0, "paired trace: mean_gap must be positive");
  for (const double j : config.pair_jaccard) {
    require(j >= 0.0 && j <= 1.0, "paired trace: jaccard must be in [0, 1]");
  }

  const std::size_t pair_count = config.pair_jaccard.size();
  const std::size_t item_count = 2 * pair_count;

  // Per-pair event streams: (time, pair, kind). Generate arrival times per
  // pair so each pair sees `requests_per_pair` requests.
  struct Event {
    Time time;
    std::size_t pair;
  };
  std::vector<Event> events;
  events.reserve(pair_count * config.requests_per_pair);
  for (std::size_t p = 0; p < pair_count; ++p) {
    Time t = 0.0;
    for (std::size_t i = 0; i < config.requests_per_pair; ++i) {
      t += rng.next_exponential(1.0 / config.mean_gap);
      events.push_back(Event{t, p});
    }
  }
  std::sort(events.begin(), events.end(),
            [](const Event& a, const Event& b) { return a.time < b.time; });

  // Each item follows its own sticky walk; the walks merge whenever the two
  // items are co-requested (the carriers met) and diverge again afterwards.
  // Low-J pairs therefore have spatially divergent singleton trajectories,
  // which is what makes always-packing genuinely costly at large α.
  std::vector<ServerId> item_server(item_count, kOriginServer);
  for (auto& server : item_server) {
    server = static_cast<ServerId>(rng.next_below(config.server_count));
  }

  UniqueClock clock;
  SequenceBuilder builder(config.server_count, item_count);
  for (const Event& event : events) {
    const std::size_t p = event.pair;
    const auto a = static_cast<ItemId>(2 * p);
    const auto b = static_cast<ItemId>(2 * p + 1);
    std::vector<ItemId> items;
    ServerId where;
    if (rng.next_bool(config.pair_jaccard[p])) {
      item_server[a] =
          sticky_walk(item_server[a], config.locality, config.server_count, rng);
      item_server[b] = item_server[a];  // the carriers are together
      where = item_server[a];
      items = {a, b};
    } else {
      const ItemId item = rng.next_bool(0.5) ? a : b;
      item_server[item] = sticky_walk(item_server[item], config.locality,
                                      config.server_count, rng);
      where = item_server[item];
      items = {item};
    }
    builder.add(where, clock.claim(event.time), std::move(items));
  }
  return std::move(builder).build();
}

RequestSequence generate_zipf_trace(const ZipfTraceConfig& config, Rng& rng) {
  require(config.server_count > 0, "zipf trace: need >= 1 server");
  require(config.item_count > 0, "zipf trace: need >= 1 item");
  require(config.mean_gap > 0.0, "zipf trace: mean_gap must be positive");
  require(config.co_access >= 0.0 && config.co_access <= 1.0,
          "zipf trace: co_access must be in [0, 1]");

  // Precompute Zipf weights once (Rng::next_zipf is O(k) per draw).
  std::vector<double> weights(config.item_count);
  for (std::size_t i = 0; i < config.item_count; ++i) {
    weights[i] = std::pow(static_cast<double>(i + 1), -config.zipf_exponent);
  }

  UniqueClock clock;
  SequenceBuilder builder(config.server_count, config.item_count);
  Time t = 0.0;
  ServerId server = kOriginServer;
  for (std::size_t i = 0; i < config.request_count; ++i) {
    t += rng.next_exponential(1.0 / config.mean_gap);
    server = sticky_walk(server, config.locality, config.server_count, rng);
    const auto item = static_cast<ItemId>(rng.next_weighted(weights));
    std::vector<ItemId> items{item};
    const ItemId partner = item ^ 1u;
    if (partner < config.item_count && rng.next_bool(config.co_access)) {
      items.push_back(partner);
    }
    builder.add(server, clock.claim(t), std::move(items));
  }
  return std::move(builder).build();
}

RequestSequence generate_bursty_trace(const BurstyTraceConfig& config,
                                      Rng& rng) {
  require(config.server_count > 0, "bursty trace: need >= 1 server");
  require(config.item_count > 0, "bursty trace: need >= 1 item");
  require(config.working_set >= 1 && config.working_set <= config.item_count,
          "bursty trace: working_set must be in [1, item_count]");
  require(config.intra_burst_gap > 0.0 && config.inter_burst_gap > 0.0,
          "bursty trace: gaps must be positive");

  UniqueClock clock;
  SequenceBuilder builder(config.server_count, config.item_count);
  Time t = 0.0;
  for (std::size_t burst = 0; burst < config.burst_count; ++burst) {
    t += rng.next_exponential(1.0 / config.inter_burst_gap);
    // Each burst happens around one venue with a small working set.
    const auto venue =
        static_cast<ServerId>(rng.next_below(config.server_count));
    std::vector<ItemId> working_set;
    while (working_set.size() < config.working_set) {
      const auto item = static_cast<ItemId>(rng.next_below(config.item_count));
      if (std::find(working_set.begin(), working_set.end(), item) ==
          working_set.end()) {
        working_set.push_back(item);
      }
    }
    for (std::size_t i = 0; i < config.requests_per_burst; ++i) {
      t += rng.next_exponential(1.0 / config.intra_burst_gap);
      // Mostly the venue, occasionally a neighbour; items: one or both of
      // the working set.
      const ServerId where =
          rng.next_bool(0.8)
              ? venue
              : static_cast<ServerId>(rng.next_below(config.server_count));
      std::vector<ItemId> items{working_set[rng.next_below(working_set.size())]};
      if (working_set.size() > 1 && rng.next_bool(0.5)) {
        const ItemId other = working_set[rng.next_below(working_set.size())];
        if (other != items.front()) items.push_back(other);
      }
      builder.add(where, clock.claim(t), std::move(items));
    }
  }
  return std::move(builder).build();
}

RequestSequence generate_adversarial_window_trace(
    const AdversarialWindowConfig& config) {
  require(config.server_count > 0, "adversarial trace: need >= 1 server");
  require(config.rounds > 0, "adversarial trace: need >= 1 round");
  require(config.gap > 0.0, "adversarial trace: gap must be positive");
  SequenceBuilder builder(config.server_count, 1);
  Time t = 0.0;
  for (std::size_t round = 0; round < config.rounds; ++round) {
    for (std::size_t s = 0; s < config.server_count; ++s) {
      t += config.gap;
      builder.add(static_cast<ServerId>(s), t, {0});
    }
  }
  return std::move(builder).build();
}

RequestSequence generate_uniform_trace(const UniformTraceConfig& config,
                                       Rng& rng) {
  require(config.server_count > 0, "uniform trace: need >= 1 server");
  require(config.item_count > 0, "uniform trace: need >= 1 item");
  require(config.mean_gap > 0.0, "uniform trace: mean_gap must be positive");
  UniqueClock clock;
  SequenceBuilder builder(config.server_count, config.item_count);
  Time t = 0.0;
  for (std::size_t i = 0; i < config.request_count; ++i) {
    t += rng.next_exponential(1.0 / config.mean_gap);
    builder.add(static_cast<ServerId>(rng.next_below(config.server_count)),
                clock.claim(t),
                {static_cast<ItemId>(rng.next_below(config.item_count))});
  }
  return std::move(builder).build();
}

}  // namespace dpg
