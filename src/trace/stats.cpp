#include "trace/stats.hpp"

#include <algorithm>

#include "solver/correlation.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace dpg {

TraceStats compute_trace_stats(const RequestSequence& sequence) {
  TraceStats stats;
  stats.request_count = sequence.size();
  stats.server_count = sequence.server_count();
  stats.item_count = sequence.item_count();
  stats.per_server.assign(sequence.server_count(), 0);
  stats.per_item.assign(sequence.item_count(), 0);

  std::size_t item_accesses = 0;
  Time previous = 0.0;
  double gap_sum = 0.0;
  for (const Request& r : sequence.requests()) {
    ++stats.per_server[r.server];
    for (const ItemId item : r.items) ++stats.per_item[item];
    item_accesses += r.items.size();
    gap_sum += r.time - previous;
    previous = r.time;
    stats.horizon = r.time;
  }
  if (stats.request_count > 0) {
    stats.mean_items_per_request =
        static_cast<double>(item_accesses) /
        static_cast<double>(stats.request_count);
    stats.mean_gap = gap_sum / static_cast<double>(stats.request_count);
  }
  return stats;
}

std::string render_spatial_distribution(const TraceStats& stats,
                                        std::size_t max_width) {
  std::size_t peak = 1;
  for (const std::size_t count : stats.per_server) peak = std::max(peak, count);
  std::string out = "requests per server (n=" +
                    std::to_string(stats.request_count) + ", m=" +
                    std::to_string(stats.server_count) + ")\n";
  for (std::size_t s = 0; s < stats.per_server.size(); ++s) {
    out += "s";
    out += std::to_string(s);
    out.append(s < 10 ? 2 : 1, ' ');
    const std::size_t bar = stats.per_server[s] * max_width / peak;
    out.append(bar, '#');
    out += " " + std::to_string(stats.per_server[s]) + "\n";
  }
  return out;
}

std::string render_frequent_pairs(const RequestSequence& sequence,
                                  std::size_t top) {
  const CorrelationAnalysis analysis(sequence);
  TextTable table({"pair", "|d_a|", "|d_b|", "co-freq", "Jaccard"});
  std::size_t emitted = 0;
  for (const PairCorrelation& p : analysis.sorted_pairs()) {
    if (p.co_freq == 0 || emitted >= top) break;
    table.add_row({"(d" + std::to_string(p.a) + ",d" + std::to_string(p.b) + ")",
                   std::to_string(p.freq_a), std::to_string(p.freq_b),
                   std::to_string(p.co_freq), format_fixed(p.jaccard, 4)});
    ++emitted;
  }
  return table.render();
}

}  // namespace dpg
