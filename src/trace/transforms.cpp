#include "trace/transforms.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace dpg {

RequestSequence slice_time_window(const RequestSequence& sequence, Time begin,
                                  Time end) {
  require(end > begin, "slice_time_window: end must exceed begin");
  std::vector<Request> requests;
  for (const Request& r : sequence.requests()) {
    if (r.time > begin && r.time <= end) {
      Request shifted = r;
      shifted.time = r.time - begin;
      requests.push_back(std::move(shifted));
    }
  }
  return RequestSequence(sequence.server_count(), sequence.item_count(),
                         std::move(requests));
}

RequestSequence filter_items(const RequestSequence& sequence,
                             const std::vector<ItemId>& items) {
  require(!items.empty(), "filter_items: need at least one item");
  std::vector<ItemId> remap(sequence.item_count(), kNoItem);
  for (std::size_t i = 0; i < items.size(); ++i) {
    require(items[i] < sequence.item_count(), "filter_items: item out of range");
    require(remap[items[i]] == kNoItem, "filter_items: duplicate item");
    remap[items[i]] = static_cast<ItemId>(i);
  }
  std::vector<Request> requests;
  for (const Request& r : sequence.requests()) {
    Request kept;
    kept.server = r.server;
    kept.time = r.time;
    for (const ItemId item : r.items) {
      if (remap[item] != kNoItem) kept.items.push_back(remap[item]);
    }
    if (!kept.items.empty()) {
      std::sort(kept.items.begin(), kept.items.end());
      requests.push_back(std::move(kept));
    }
  }
  return RequestSequence(sequence.server_count(), items.size(),
                         std::move(requests));
}

RequestSequence merge_sequences(const RequestSequence& a,
                                const RequestSequence& b, double epsilon) {
  require(epsilon > 0.0, "merge_sequences: epsilon must be positive");
  const std::size_t server_count =
      std::max(a.server_count(), b.server_count());
  const auto item_offset = static_cast<ItemId>(a.item_count());

  std::vector<Request> merged;
  merged.reserve(a.size() + b.size());
  std::size_t ia = 0, ib = 0;
  Time last = 0.0;
  const auto emit = [&merged, &last, epsilon](Request r) {
    if (r.time <= last) r.time = last + epsilon;
    last = r.time;
    merged.push_back(std::move(r));
  };
  while (ia < a.size() || ib < b.size()) {
    const bool take_a =
        ib >= b.size() || (ia < a.size() && a[ia].time <= b[ib].time);
    if (take_a) {
      emit(a[ia++]);
    } else {
      Request r = b[ib++];
      for (ItemId& item : r.items) {
        item = static_cast<ItemId>(item + item_offset);
      }
      emit(std::move(r));
    }
  }
  return RequestSequence(server_count, a.item_count() + b.item_count(),
                         std::move(merged));
}

RequestSequence remap_servers(const RequestSequence& sequence,
                              const std::vector<ServerId>& mapping) {
  require(mapping.size() >= sequence.server_count(),
          "remap_servers: mapping must cover every server");
  ServerId max_server = 0;
  for (const ServerId s : mapping) max_server = std::max(max_server, s);
  std::vector<Request> requests;
  requests.reserve(sequence.size());
  for (const Request& r : sequence.requests()) {
    Request moved = r;
    moved.server = mapping[r.server];
    requests.push_back(std::move(moved));
  }
  return RequestSequence(static_cast<std::size_t>(max_server) + 1,
                         sequence.item_count(), std::move(requests));
}

}  // namespace dpg
