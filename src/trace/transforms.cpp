#include "trace/transforms.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace dpg {

RequestSequence slice_time_window(const RequestSequence& sequence, Time begin,
                                  Time end) {
  require(end > begin, "slice_time_window: end must exceed begin");
  SequenceBuilder builder(sequence.server_count(), sequence.item_count());
  for (const Request& r : sequence.requests()) {
    if (r.time > begin && r.time <= end) {
      builder.begin_request(r.server, r.time - begin);
      for (const ItemId item : r.items) builder.push_item(item);
      builder.end_request();
    }
  }
  return std::move(builder).build();
}

RequestSequence filter_items(const RequestSequence& sequence,
                             const std::vector<ItemId>& items) {
  require(!items.empty(), "filter_items: need at least one item");
  std::vector<ItemId> remap(sequence.item_count(), kNoItem);
  for (std::size_t i = 0; i < items.size(); ++i) {
    require(items[i] < sequence.item_count(), "filter_items: item out of range");
    require(remap[items[i]] == kNoItem, "filter_items: duplicate item");
    remap[items[i]] = static_cast<ItemId>(i);
  }
  SequenceBuilder builder(sequence.server_count(), items.size());
  for (const Request& r : sequence.requests()) {
    bool any = false;
    for (const ItemId item : r.items) {
      if (remap[item] == kNoItem) continue;
      if (!any) builder.begin_request(r.server, r.time);
      any = true;
      builder.push_item(remap[item]);
    }
    if (any) builder.end_request();
  }
  return std::move(builder).build();
}

RequestSequence merge_sequences(const RequestSequence& a,
                                const RequestSequence& b, double epsilon) {
  require(epsilon > 0.0, "merge_sequences: epsilon must be positive");
  const std::size_t server_count =
      std::max(a.server_count(), b.server_count());
  const auto item_offset = static_cast<ItemId>(a.item_count());

  SequenceBuilder builder(server_count, a.item_count() + b.item_count());
  builder.reserve(a.size() + b.size(),
                  a.total_item_accesses() + b.total_item_accesses());
  std::size_t ia = 0, ib = 0;
  Time last = 0.0;
  const auto emit = [&builder, &last, epsilon](const Request& r,
                                               ItemId offset) {
    const Time time = r.time <= last ? last + epsilon : r.time;
    last = time;
    builder.begin_request(r.server, time);
    for (const ItemId item : r.items) {
      builder.push_item(static_cast<ItemId>(item + offset));
    }
    builder.end_request();
  };
  while (ia < a.size() || ib < b.size()) {
    const bool take_a =
        ib >= b.size() || (ia < a.size() && a[ia].time <= b[ib].time);
    if (take_a) {
      emit(a[ia++], 0);
    } else {
      emit(b[ib++], item_offset);
    }
  }
  return std::move(builder).build();
}

RequestSequence remap_servers(const RequestSequence& sequence,
                              const std::vector<ServerId>& mapping) {
  require(mapping.size() >= sequence.server_count(),
          "remap_servers: mapping must cover every server");
  ServerId max_server = 0;
  for (const ServerId s : mapping) max_server = std::max(max_server, s);
  SequenceBuilder builder(static_cast<std::size_t>(max_server) + 1,
                          sequence.item_count());
  builder.reserve(sequence.size(), sequence.total_item_accesses());
  for (const Request& r : sequence.requests()) {
    builder.begin_request(mapping[r.server], r.time);
    for (const ItemId item : r.items) builder.push_item(item);
    builder.end_request();
  }
  return std::move(builder).build();
}

}  // namespace dpg
