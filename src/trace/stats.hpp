// Descriptive trace statistics backing Figs. 9 and 10: the spatial request
// distribution over servers/zones and the frequency + Jaccard table of the
// most correlated item pairs.
#pragma once

#include <string>
#include <vector>

#include "core/request.hpp"

namespace dpg {

struct TraceStats {
  std::size_t request_count = 0;
  std::size_t server_count = 0;
  std::size_t item_count = 0;
  Time horizon = 0.0;                       // time of the last request
  std::vector<std::size_t> per_server;      // requests per server (Fig. 9)
  std::vector<std::size_t> per_item;        // |d_i|
  double mean_items_per_request = 0.0;
  double mean_gap = 0.0;                    // mean inter-request time
};

[[nodiscard]] TraceStats compute_trace_stats(const RequestSequence& sequence);

/// Renders the per-server request histogram (the textual Fig. 9).
[[nodiscard]] std::string render_spatial_distribution(const TraceStats& stats,
                                                      std::size_t max_width = 50);

/// The Fig. 10 table: the `top` most similar co-occurring pairs with their
/// frequencies and Jaccard similarities, rendered as text.
[[nodiscard]] std::string render_frequent_pairs(const RequestSequence& sequence,
                                                std::size_t top = 10);

}  // namespace dpg
