// Synthetic request-trace generators.
//
// The paper evaluates on a proprietary Shenzhen taxi GPS trace; these
// generators (together with mobility/) are the documented substitute: they
// expose exactly the knobs the evaluation sweeps — the pairwise Jaccard
// similarity J, the number of servers m, items k and requests n — while
// keeping every run a pure function of one seed.
#pragma once

#include <vector>

#include "core/request.hpp"
#include "util/rng.hpp"

namespace dpg {

/// Generator that produces item pairs with *controlled* Jaccard similarity:
/// items 2p and 2p+1 form pair p; a request for pair p contains both items
/// with probability `jaccard[p]` and a uniformly chosen single item
/// otherwise, which makes E[J(2p, 2p+1)] = jaccard[p] by construction
/// (J = co / (co + singles)).  Servers follow a sticky random walk to mimic
/// trajectory locality.
struct PairedTraceConfig {
  std::size_t server_count = 50;
  std::size_t requests_per_pair = 200;
  /// Target Jaccard similarity per pair; its size fixes the item count (2×).
  std::vector<double> pair_jaccard = {0.1, 0.3, 0.5, 0.7, 0.9};
  /// Probability that a pair's next request stays on its current server.
  double locality = 0.6;
  /// Mean time gap between consecutive requests of one pair.
  double mean_gap = 1.0;
};

[[nodiscard]] RequestSequence generate_paired_trace(const PairedTraceConfig& config,
                                                    Rng& rng);

/// Zipf-popularity generator: items drawn from a Zipf(s) distribution, with
/// optional correlated co-access to a fixed partner item.  Models skewed
/// content popularity (news pages and their media assets).
struct ZipfTraceConfig {
  std::size_t server_count = 20;
  std::size_t item_count = 10;
  std::size_t request_count = 1000;
  double zipf_exponent = 1.0;
  /// Probability that a request also pulls the item's fixed partner
  /// (item i's partner is i^1, i.e. consecutive even/odd pairs).
  double co_access = 0.5;
  double locality = 0.5;
  double mean_gap = 0.5;
};

[[nodiscard]] RequestSequence generate_zipf_trace(const ZipfTraceConfig& config,
                                                  Rng& rng);

/// Uniform noise generator (uncorrelated requests): the degenerate baseline
/// workload for robustness tests.
struct UniformTraceConfig {
  std::size_t server_count = 10;
  std::size_t item_count = 5;
  std::size_t request_count = 500;
  double mean_gap = 1.0;
};

[[nodiscard]] RequestSequence generate_uniform_trace(
    const UniformTraceConfig& config, Rng& rng);

/// Diurnal / bursty workload: requests arrive in Poisson bursts around
/// peak hours (a crude commute pattern), items chosen per burst from a
/// small working set so temporal correlation is high within a burst and
/// low across bursts.  Exercises the algorithms on non-stationary gaps —
/// the regime where cache-vs-transfer decisions flip within one trace.
struct BurstyTraceConfig {
  std::size_t server_count = 20;
  std::size_t item_count = 8;
  std::size_t burst_count = 30;
  std::size_t requests_per_burst = 25;
  /// Mean inter-request gap inside a burst (tight) and between bursts.
  double intra_burst_gap = 0.1;
  double inter_burst_gap = 20.0;
  /// Items per burst working set.
  std::size_t working_set = 2;
};

[[nodiscard]] RequestSequence generate_bursty_trace(
    const BurstyTraceConfig& config, Rng& rng);

/// Adversarial workload for the Section-V complexity bounds: one item whose
/// requests visit `server_count` servers round-robin, `rounds` times.  The
/// gap between same-server visits is then `server_count` requests, so the
/// naive D(i) scan does Θ(m) work per request — Θ(m·n) = Θ(n²/rounds)
/// overall, the paper's O(mn²) worst case (exercised in
/// bench/tab_complexity_scaling and bm_solvers).
struct AdversarialWindowConfig {
  std::size_t server_count = 256;
  std::size_t rounds = 4;
  double gap = 0.5;
};

[[nodiscard]] RequestSequence generate_adversarial_window_trace(
    const AdversarialWindowConfig& config);

}  // namespace dpg
