// Claim-based trace sources for the sharded serve path: N decode shards
// pull blocks concurrently from one stream, each claim returning the block
// plus its global sequence number, so the partition side can restore
// canonical trace order no matter which shard decoded what.
//
//   * SequenceClaimSource — contiguous-range claims over a materialized
//     RequestSequence (the `.dpt` mmap path): shard claims are one atomic
//     fetch-add, block `i` is rows [i·batch, (i+1)·batch), and every block
//     adopts zero-copy column views exactly like SequenceBlockReader.
//   * CsvClaimSource — round-robin raw-chunk claims on a CSV stream
//     (including stdin): a shard takes the source mutex just long enough to
//     slice off the next `batch_rows` raw lines (byte copying only — no
//     parsing under the lock), then decodes them outside the lock with the
//     same csvdec fast path as CsvBlockReader.  Decode runs N-wide; the
//     stream read stays serial because the bytes are.
//
// Sequence numbers are consecutive from 0 in claim order, which for both
// sources equals trace order: block seq s covers exactly the rows
// [rows_through(s) − |block|, rows_through(s)) of the stream.
//
// Error contract (CSV): a malformed row poisons its block's *suffix* only.
// The claiming shard keeps the valid prefix (delivered as a normal block so
// the sequence numbering has no gap), records the smallest failing seq and
// its full-provenance message (source, row, byte offset) via an atomic-min,
// and every later claim returns end-of-stream.  The sharded runtime
// (engine/sharded_serve.hpp) then suppresses blocks *after* the failing seq
// on the partition side — in-flight claims from other shards may have
// already decoded them — so the engines ingest exactly the requests before
// the malformed row, same as the 1×1 paths.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <istream>
#include <limits>
#include <mutex>
#include <string>
#include <string_view>

#include "core/request.hpp"
#include "core/request_block.hpp"
#include "trace/csv_decode.hpp"

namespace dpg {

/// Thread-safe block claiming: any number of shard threads call claim()
/// concurrently; each successful claim owns one block of the stream.
class ShardClaimSource {
 public:
  /// error_seq() value when no decode error has been recorded.
  static constexpr std::uint64_t kNoError =
      std::numeric_limits<std::uint64_t>::max();

  virtual ~ShardClaimSource() = default;

  /// Claims the next block of the stream.  On success fills `block`, sets
  /// `seq` (consecutive from 0, claim order == trace order) and
  /// `rows_through` (cumulative data rows over blocks 0..seq) and returns
  /// true.  Returns false at end of stream, after the row limit, or once a
  /// decode error has been recorded.  A block delivered with a recorded
  /// error at its own seq holds the valid prefix before the bad row (and
  /// may be empty).
  virtual bool claim(RequestBlock& block, std::uint64_t& seq,
                     std::size_t& rows_through) = 0;

  /// Smallest seq whose decode failed (kNoError if none).  Monotone: once
  /// set it only decreases, and claims stop issuing new blocks.
  [[nodiscard]] std::uint64_t error_seq() const noexcept {
    return error_seq_.load(std::memory_order_acquire);
  }

  /// Full-provenance message for the error_seq() failure ("" if none).
  [[nodiscard]] std::string error_message() const {
    const std::lock_guard<std::mutex> lock(error_mutex_);
    return error_message_;
  }

 protected:
  /// Records a decode failure at `seq`; the smallest seq wins (and keeps
  /// its message) under concurrent reports.
  void report_error(std::uint64_t seq, std::string message);

 private:
  std::atomic<std::uint64_t> error_seq_{kNoError};
  mutable std::mutex error_mutex_;
  std::string error_message_;
};

/// Contiguous-range claims over a materialized sequence.  The sequence must
/// outlive every block handed out (blocks only view its columns).
class SequenceClaimSource final : public ShardClaimSource {
 public:
  SequenceClaimSource(const RequestSequence& sequence, std::size_t batch_rows,
                      std::size_t limit = 0);

  bool claim(RequestBlock& block, std::uint64_t& seq,
             std::size_t& rows_through) override;

 private:
  const RequestSequence& sequence_;
  std::size_t batch_rows_;
  std::size_t end_;
  std::atomic<std::uint64_t> next_block_{0};
};

/// Round-robin raw-chunk claims on a CSV stream; decode outside the lock.
class CsvClaimSource final : public ShardClaimSource {
 public:
  /// `source` labels errors (file path or "<stdin>").
  CsvClaimSource(std::istream& in, std::string source, std::size_t batch_rows,
                 std::size_t limit = 0);

  bool claim(RequestBlock& block, std::uint64_t& seq,
             std::size_t& rows_through) override;

  /// Data rows grabbed so far (parsed or poisoned; exact once claims stop).
  [[nodiscard]] std::size_t rows() const noexcept {
    return rows_grabbed_.load(std::memory_order_relaxed);
  }

 private:
  /// One raw data line staged by a claim: [begin, begin+length) into the
  /// claim scratch text, plus its byte offset in the whole stream.
  struct LineRef {
    std::size_t begin = 0;
    std::size_t length = 0;
    std::size_t offset = 0;
  };

  /// Extracts the next line (without '\n'/"\r\n") from the buffered stream,
  /// refilling as needed.  Caller must hold mutex_.  False at end of input.
  bool next_line(std::string_view& line, std::size_t* offset);
  void parse_header_line();

  std::istream& in_;
  std::string source_;
  std::size_t batch_rows_;
  std::size_t limit_;

  std::mutex mutex_;  // guards everything below (the raw byte stream)
  std::string buffer_;
  std::size_t pos_ = 0;          // consumed prefix of buffer_
  std::size_t base_offset_ = 0;  // stream offset of buffer_[0]
  bool eof_ = false;
  bool header_parsed_ = false;
  csvdec::ColumnLayout layout_;
  bool canonical_ = false;
  std::uint64_t next_seq_ = 0;
  std::atomic<std::size_t> rows_grabbed_{0};
};

}  // namespace dpg
