#include "trace/shard_source.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "util/error.hpp"

namespace dpg {

namespace {

// Same parse counters as the other CSV readers, so `trace.*` metrics cover
// the sharded ingest path too.
const obs::Counter g_rows_parsed = obs::counter("trace.rows_parsed");
const obs::Counter g_bytes_parsed = obs::counter("trace.bytes_parsed");

// One IO chunk (same sizing rationale as block_reader.cpp).
constexpr std::size_t kReadChunkBytes = 1u << 20;

}  // namespace

// ---------------------------------------------------------------------------
// ShardClaimSource

void ShardClaimSource::report_error(std::uint64_t seq, std::string message) {
  // Atomic-min on the failing seq; the winning (smallest) seq keeps its
  // message, because only requests before *it* were served.
  std::uint64_t current = error_seq_.load(std::memory_order_relaxed);
  while (seq < current && !error_seq_.compare_exchange_weak(
                              current, seq, std::memory_order_acq_rel)) {
  }
  if (seq <= error_seq_.load(std::memory_order_acquire)) {
    const std::lock_guard<std::mutex> lock(error_mutex_);
    // Re-check under the lock: a smaller seq may have won the race between
    // our CAS and here.
    if (seq <= error_seq_.load(std::memory_order_acquire)) {
      error_message_ = std::move(message);
    }
  }
}

// ---------------------------------------------------------------------------
// SequenceClaimSource

SequenceClaimSource::SequenceClaimSource(const RequestSequence& sequence,
                                         std::size_t batch_rows,
                                         std::size_t limit)
    : sequence_(sequence),
      batch_rows_(batch_rows),
      end_(limit == 0 ? sequence.size() : std::min(limit, sequence.size())) {
  require(batch_rows_ > 0, "SequenceClaimSource: batch_rows must be >= 1");
}

bool SequenceClaimSource::claim(RequestBlock& block, std::uint64_t& seq,
                                std::size_t& rows_through) {
  const std::uint64_t i =
      next_block_.fetch_add(1, std::memory_order_relaxed);
  const std::size_t start = static_cast<std::size_t>(i) * batch_rows_;
  if (start >= end_) {
    block.clear();
    return false;
  }
  const std::size_t n = std::min(batch_rows_, end_ - start);
  const SequenceColumns columns = sequence_.columns();
  block.adopt(columns.servers.subspan(start, n),
              columns.times.subspan(start, n),
              columns.item_offsets.subspan(start, n + 1), columns.items_pool);
  seq = i;
  rows_through = start + n;
  return true;
}

// ---------------------------------------------------------------------------
// CsvClaimSource

CsvClaimSource::CsvClaimSource(std::istream& in, std::string source,
                               std::size_t batch_rows, std::size_t limit)
    : in_(in), source_(std::move(source)), batch_rows_(batch_rows),
      limit_(limit) {
  require(batch_rows_ > 0, "CsvClaimSource: batch_rows must be >= 1");
  buffer_.reserve(kReadChunkBytes + 4096);
}

bool CsvClaimSource::next_line(std::string_view& line, std::size_t* offset) {
  for (;;) {
    const std::size_t newline = buffer_.find('\n', pos_);
    if (newline != std::string::npos) {
      *offset = base_offset_ + pos_;
      line = std::string_view(buffer_).substr(pos_, newline - pos_);
      pos_ = newline + 1;
      if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
      return true;
    }
    if (eof_) {
      if (pos_ >= buffer_.size()) return false;
      // Final line without a trailing newline.
      *offset = base_offset_ + pos_;
      line = std::string_view(buffer_).substr(pos_);
      pos_ = buffer_.size();
      if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
      return true;
    }
    // Compact the consumed prefix, then pull the next chunk.
    if (pos_ > 0) {
      buffer_.erase(0, pos_);
      base_offset_ += pos_;
      pos_ = 0;
    }
    const std::size_t old_size = buffer_.size();
    buffer_.resize(old_size + kReadChunkBytes);
    in_.read(buffer_.data() + old_size,
             static_cast<std::streamsize>(kReadChunkBytes));
    const std::size_t got = static_cast<std::size_t>(in_.gcount());
    buffer_.resize(old_size + got);
    if (got == 0) {
      if (in_.bad()) {
        throw IoError(source_ + ": read error at byte offset " +
                      std::to_string(base_offset_ + buffer_.size()));
      }
      eof_ = true;
    }
  }
}

void CsvClaimSource::parse_header_line() {
  header_parsed_ = true;
  std::string_view header;
  std::size_t offset = 0;
  if (!next_line(header, &offset)) {
    throw IoError(source_ + ": empty input (no CSV header)");
  }
  layout_ = csvdec::parse_header(header);
  canonical_ = layout_.canonical();
}

bool CsvClaimSource::claim(RequestBlock& block, std::uint64_t& seq,
                           std::size_t& rows_through) {
  block.clear();

  // Per-thread claim scratch: the raw bytes of this claim's lines plus
  // their locations.  thread_local (not per-call) so a shard's repeated
  // claims reuse warm capacity; cleared on entry, never used re-entrantly.
  thread_local std::string text;
  thread_local std::vector<LineRef> lines;
  text.clear();
  lines.clear();

  std::size_t start_row = 0;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (error_seq() != kNoError) return false;
    if (!header_parsed_) parse_header_line();

    start_row = rows_grabbed_.load(std::memory_order_relaxed);
    while (lines.size() < batch_rows_ &&
           (limit_ == 0 || start_row + lines.size() < limit_)) {
      std::string_view line;
      std::size_t offset = 0;
      if (!next_line(line, &offset)) break;
      if (line.empty()) continue;
      lines.push_back(LineRef{text.size(), line.size(), offset});
      text.append(line);
    }
    if (lines.empty()) return false;  // end of stream / limit reached
    seq = next_seq_++;
    rows_grabbed_.store(start_row + lines.size(), std::memory_order_relaxed);
  }
  rows_through = start_row + lines.size();

  // Decode outside the lock — this is the part that runs N shards wide.
  std::size_t bytes = 0;
  for (std::size_t r = 0; r < lines.size(); ++r) {
    const LineRef& ref = lines[r];
    const std::string_view line =
        std::string_view(text).substr(ref.begin, ref.length);
    try {
      const csvdec::RowFields fields =
          csvdec::split_row(line, layout_, canonical_);
      block.begin_row(
          static_cast<ServerId>(
              csvdec::fast_parse_size(csvdec::strip_quotes(fields.server))),
          csvdec::fast_parse_double(csvdec::strip_quotes(fields.time)));
      csvdec::parse_item_list(fields.items,
                              [&](ItemId item) { block.push_item(item); });
      block.end_row();  // sorts + deduplicates — push_batch relies on it
    } catch (const Error& e) {
      // Keep the valid prefix; the block still ships (possibly empty) so
      // the seq numbering has no gap.  The runtime suppresses seqs after
      // this one on the partition side.
      block.abort_row();
      report_error(seq, source_ + ": row " + std::to_string(start_row + r + 1) +
                            " (byte offset " + std::to_string(ref.offset) +
                            "): " + e.what());
      break;
    }
    bytes += ref.length + 1;
  }

  g_rows_parsed.add(block.size());
  g_bytes_parsed.add(bytes);
  return true;
}

}  // namespace dpg
