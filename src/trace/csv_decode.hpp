// Shared low-level CSV decoding for the trace readers (internal header).
//
// One definition of the trace CSV dialect — header-discovered column order,
// optional plain quotes, ';'-separated item lists, CRLF tolerance — used by
// all three consumers: the one-shot parser (trace_from_csv), the
// line-at-a-time CsvStreamReader, and the chunked CsvBlockReader feeding the
// serve pipeline.  Everything here is allocation-free over string_views;
// errors carry only the row-local message (callers wrap them with
// file/row/byte-offset provenance).
#pragma once

#include <charconv>
#include <cstddef>
#include <string>
#include <string_view>
#include <system_error>

#include "core/types.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace dpg::csvdec {

/// Splits the next line off `rest` (without the trailing '\n' / "\r\n").
inline std::string_view next_line(std::string_view& rest) {
  const std::size_t newline = rest.find('\n');
  std::string_view line;
  if (newline == std::string_view::npos) {
    line = rest;
    rest = {};
  } else {
    line = rest.substr(0, newline);
    rest.remove_prefix(newline + 1);
  }
  if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
  return line;
}

/// Strips one layer of plain surrounding double quotes.
inline std::string_view strip_quotes(std::string_view field) noexcept {
  if (field.size() >= 2 && field.front() == '"' && field.back() == '"') {
    return field.substr(1, field.size() - 2);
  }
  return field;
}

/// Positions of the server/time/items columns in the header row.
struct ColumnLayout {
  std::size_t server = 0;
  std::size_t time = 0;
  std::size_t items = 0;
  std::size_t column_count = 0;

  /// The layout trace_to_csv writes — the two-find row fast path applies.
  [[nodiscard]] bool canonical() const noexcept {
    return server == 0 && time == 1 && items == 2 && column_count == 3;
  }
};

/// Hot-path numeric parsing: straight from_chars, falling back to the
/// shared parse_size/parse_double (which trim, then throw IoError with the
/// offending text) only when the fast path does not consume the field.
inline std::size_t fast_parse_size(std::string_view field) {
  std::size_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(field.data(), field.data() + field.size(), value);
  if (ec == std::errc{} && ptr == field.data() + field.size()) return value;
  return parse_size(field);
}

inline double fast_parse_double(std::string_view field) {
  double value = 0.0;
  const auto [ptr, ec] =
      std::from_chars(field.data(), field.data() + field.size(), value);
  if (ec == std::errc{} && ptr == field.data() + field.size()) return value;
  return parse_double(field);
}

inline ColumnLayout parse_header(std::string_view header_line) {
  ColumnLayout layout;
  bool have_server = false, have_time = false, have_items = false;
  std::size_t column = 0;
  std::string_view rest = header_line;
  while (true) {
    const std::size_t comma = rest.find(',');
    const std::string_view name = strip_quotes(
        comma == std::string_view::npos ? rest : rest.substr(0, comma));
    if (name == "server") {
      layout.server = column;
      have_server = true;
    } else if (name == "time") {
      layout.time = column;
      have_time = true;
    } else if (name == "items") {
      layout.items = column;
      have_items = true;
    }
    ++column;
    if (comma == std::string_view::npos) break;
    rest.remove_prefix(comma + 1);
  }
  layout.column_count = column;
  if (!have_server) throw IoError("CSV: no column named 'server'");
  if (!have_time) throw IoError("CSV: no column named 'time'");
  if (!have_items) throw IoError("CSV: no column named 'items'");
  return layout;
}

/// The three interesting field slices of one data row.
struct RowFields {
  std::string_view server;
  std::string_view time;
  std::string_view items;
};

/// Slices a data row per the header layout.  The canonical layout gets a
/// two-find fast path; any other column order takes a generic field walk.
/// Throws IoError (row-local message) on a field-count mismatch.
inline RowFields split_row(std::string_view line, const ColumnLayout& layout,
                           bool canonical) {
  RowFields fields;
  if (canonical) {
    const std::size_t c1 = line.find(',');
    const std::size_t c2 =
        c1 == std::string_view::npos ? c1 : line.find(',', c1 + 1);
    if (c2 == std::string_view::npos ||
        line.find(',', c2 + 1) != std::string_view::npos) {
      throw IoError("row does not have 3 fields");
    }
    fields.server = line.substr(0, c1);
    fields.time = line.substr(c1 + 1, c2 - c1 - 1);
    fields.items = line.substr(c2 + 1);
    return fields;
  }
  std::size_t column = 0;
  std::string_view rest = line;
  while (true) {
    const std::size_t comma = rest.find(',');
    const std::string_view field =
        comma == std::string_view::npos ? rest : rest.substr(0, comma);
    if (column == layout.server) {
      fields.server = field;
    } else if (column == layout.time) {
      fields.time = field;
    } else if (column == layout.items) {
      fields.items = field;
    }
    ++column;
    if (comma == std::string_view::npos) break;
    rest.remove_prefix(comma + 1);
  }
  if (column != layout.column_count) {
    throw IoError("row has " + std::to_string(column) + " fields, header has " +
                  std::to_string(layout.column_count));
  }
  return fields;
}

/// Walks a ';'-separated item list, invoking `push(ItemId)` per id.
template <typename PushItem>
inline void parse_item_list(std::string_view items_field, PushItem&& push) {
  std::string_view rest = strip_quotes(items_field);
  while (!rest.empty()) {
    const std::size_t semicolon = rest.find(';');
    const std::string_view field = semicolon == std::string_view::npos
                                       ? rest
                                       : rest.substr(0, semicolon);
    push(static_cast<ItemId>(fast_parse_size(field)));
    if (semicolon == std::string_view::npos) break;
    rest.remove_prefix(semicolon + 1);
  }
}

}  // namespace dpg::csvdec
