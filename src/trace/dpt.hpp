// Binary columnar trace persistence: the `.dpt` format.
//
// A `.dpt` file is the CSR column arrays of a RequestSequence written
// verbatim in little-endian order behind a fixed header and a column table
// (see docs/FORMAT.md for the byte-level layout).  All six columns are
// stored — the four primary CSR arrays *and* the derived per-item inverted
// index — so opening a file performs no per-request work at all: the mmap
// path (`DptOpenMode::kMap`) validates the header, optionally verifies the
// per-column XXH64 checksums, and hands the mapped columns to
// RequestSequence::adopt_columns as non-owning views.  A 1M-request trace
// opens in single-digit milliseconds; at 100M requests the open is
// checksum-bound (seconds, vs the minute-scale CSV parse + convert).
//
// The read-copy path (`DptOpenMode::kRead`) is the untrusting mirror: it
// streams rows through SequenceBuilder (pre-sized from the header counts),
// re-validating every row and rebuilding the inverted index from scratch.
// CSV stays the interchange format; convert with the helpers below or
// `dpgreedy_cli convert`.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "core/request.hpp"

namespace dpg {

/// Format generation tag at byte 0 of every `.dpt` file.
inline constexpr char kDptMagic[8] = {'D', 'P', 'T', 'R', 'A', 'C', 'E', '1'};
/// Highest header version this build reads.
inline constexpr std::uint32_t kDptVersion = 1;

/// XXH64 of `size` bytes (the per-column checksum function of the format).
[[nodiscard]] std::uint64_t dpt_checksum(const void* data, std::size_t size,
                                         std::uint64_t seed = 0);

/// Incremental XXH64 with one-shot semantics: however the bytes are chunked
/// across update() calls, digest() equals dpt_checksum(all_bytes, total,
/// seed) exactly.  digest() finalizes from a copy of the running state, so
/// it can be read mid-stream (a checkpoint) and updating may continue.
/// This is what lets DptStreamWriter checksum columns as rows arrive
/// instead of re-scanning megabytes of buffered column data at finish().
class DptChecksumStream {
 public:
  explicit DptChecksumStream(std::uint64_t seed = 0) noexcept;

  /// Feeds `size` more bytes.
  void update(const void* data, std::size_t size) noexcept;

  /// The checksum of everything fed so far (non-destructive).
  [[nodiscard]] std::uint64_t digest() const noexcept;

  /// Bytes fed so far.
  [[nodiscard]] std::uint64_t total_bytes() const noexcept { return total_; }

 private:
  std::uint64_t acc_[4];          // the 4-lane stripe accumulators
  unsigned char buffer_[32] = {}; // carry for a partial 32-byte stripe
  std::size_t buffered_ = 0;
  std::uint64_t total_ = 0;
  std::uint64_t seed_ = 0;
};

enum class DptOpenMode {
  kMap,   // mmap the file, borrow the columns zero-copy (default)
  kRead,  // read + rebuild through SequenceBuilder (untrusting, owning)
};

struct DptReadOptions {
  DptOpenMode mode = DptOpenMode::kMap;
  /// Verify every column's stored XXH64 before use.  The writer only emits
  /// validated sequences, so a checksum pass certifies the logical
  /// invariants too; turning this off makes open O(header) but detects only
  /// structural corruption.
  bool verify_checksums = true;
  /// Additionally re-run full logical validation and cross-check the stored
  /// inverted index against a rebuild (kMap only; kRead always validates by
  /// construction).  For distrusted files when checksums are off.
  bool verify_columns = false;
};

/// Header summary without loading any column data.
struct DptInfo {
  std::uint32_t version = 0;
  std::size_t request_count = 0;
  std::size_t server_count = 0;
  std::size_t item_count = 0;
  std::size_t item_access_count = 0;
  std::size_t column_count = 0;
  std::uint64_t file_bytes = 0;
};

/// Writes `sequence` as a `.dpt` file.  Throws IoError on filesystem
/// problems.
void write_trace_dpt(const std::string& path, const RequestSequence& sequence);

/// Opens a `.dpt` file.  Throws FormatError on any malformed input
/// (truncation, bad magic, future version, checksum mismatch, inconsistent
/// column table) and IoError on filesystem problems.
[[nodiscard]] RequestSequence read_trace_dpt(const std::string& path,
                                             const DptReadOptions& options = {});

/// Reads and validates just the header + column table.
[[nodiscard]] DptInfo probe_trace_dpt(const std::string& path);

/// True when `path` ends in ".dpt" (ASCII case-insensitive).
[[nodiscard]] bool is_dpt_path(std::string_view path) noexcept;

/// Format-dispatching file I/O: `.dpt` paths take the binary path above,
/// everything else the CSV path in trace/io.hpp.  When explicit minimum
/// counts exceed what a `.dpt` header stores, the read falls back to the
/// owning rebuild path (the borrowed inverted index is shaped by the stored
/// item count).
[[nodiscard]] RequestSequence read_trace_auto(const std::string& path,
                                              std::size_t min_server_count = 0,
                                              std::size_t min_item_count = 0);
void write_trace_auto(const std::string& path, const RequestSequence& sequence);

}  // namespace dpg
