// DptStreamWriter — archive a live request feed as a valid `.dpt` file.
//
// write_trace_dpt (trace/dpt.hpp) needs a finished RequestSequence; a serve
// process has no such thing — rows arrive one block at a time and the
// stream's length, server count and item universe are only known when the
// feed ends.  DptStreamWriter accepts rows as they are served:
//
//   DptStreamWriter archive("feed.dpt");
//   for each block: archive.append_block(block);   // or append() per row
//   archive.finish();                              // writes the file
//
// The resulting file is byte-for-byte what write_trace_dpt would have
// produced for the same logical sequence (same header, same column order
// and alignment, same checksums, same derived per-item inverted index) —
// pinned by tests/dpt_stream_writer_test.cpp.  Column data accumulates in
// memory (the `.dpt` header leads with counts and per-column checksums, so
// the file cannot be written front-to-back while rows are still arriving),
// but checksums for the four append-side columns run incrementally via
// DptChecksumStream — finish() only scans the per-item index it builds.
//
// Rows are validated on entry exactly like SequenceBuilder: times strictly
// increasing and > 0, item sets canonicalized (append() sorts/dedups a
// scratch copy; append_block trusts the RequestBlock sorted-unique
// invariant) and non-empty.  Counts are derived as
// max(min_*_count, max id seen + 1) at finish(), so a `.dpt` archived from
// a feed replays with the same universe the engine discovered — pass the
// mins to pin a larger universe up front.
//
// Nothing touches the filesystem until finish(); a writer destroyed without
// finishing leaves no partial file behind.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "core/request_block.hpp"
#include "core/types.hpp"
#include "trace/dpt.hpp"

namespace dpg {

class DptStreamWriter {
 public:
  explicit DptStreamWriter(std::string path, std::size_t min_server_count = 0,
                           std::size_t min_item_count = 0);

  /// Appends one request.  `items` need not be sorted (a scratch copy is
  /// canonicalized like SequenceBuilder::end_request); `time` must be
  /// strictly greater than every previous row's and > 0.
  void append(ServerId server, Time time, std::span<const ItemId> items);

  /// Appends every row of a block in order.  Block rows are already sorted
  /// and duplicate-free (the RequestBlock invariant), so this skips the
  /// canonicalization copy — the bulk path for archiving a serve feed.
  void append_block(const RequestBlock& block);

  /// Rows appended so far.
  [[nodiscard]] std::size_t rows() const noexcept { return servers_.size(); }

  /// Builds the per-item inverted index, writes the file and spends the
  /// writer (further appends throw).  Throws InvalidArgument when the
  /// derived server or item count is zero (empty feed with no mins) and
  /// IoError on filesystem problems.
  void finish();

 private:
  void append_canonical(ServerId server, Time time,
                        std::span<const ItemId> items);

  std::string path_;
  std::size_t min_server_count_ = 0;
  std::size_t min_item_count_ = 0;
  bool finished_ = false;
  Time last_time_ = 0.0;
  ServerId max_server_ = 0;
  ItemId max_item_ = 0;

  // CSR columns, accumulated in append order (item_offsets_ leads with 0,
  // matching the on-disk u64 × (n + 1) column).
  std::vector<ServerId> servers_;
  std::vector<Time> times_;
  std::vector<std::size_t> item_offsets_;
  std::vector<ItemId> items_pool_;

  std::vector<ItemId> row_;  // canonicalization scratch for append()

  // Running per-column checksums for the append-side columns.
  DptChecksumStream servers_sum_;
  DptChecksumStream times_sum_;
  DptChecksumStream item_offsets_sum_;
  DptChecksumStream items_pool_sum_;
};

}  // namespace dpg
