#include "trace/io.hpp"

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <fstream>
#include <istream>
#include <iterator>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "trace/csv_decode.hpp"
#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace dpg {

namespace {

const obs::Counter g_rows_parsed = obs::counter("trace.rows_parsed");
const obs::Counter g_bytes_parsed = obs::counter("trace.bytes_parsed");
const obs::Counter g_rows_written = obs::counter("trace.rows_written");
const obs::Counter g_bytes_written = obs::counter("trace.bytes_written");

constexpr std::string_view kHeader = "server,time,items\n";
constexpr std::size_t kWriteBufferBytes = 1u << 20;

/// Appends one request as a `server,time,items` row.  Everything goes
/// through to_chars; for the time, to_chars' shortest form round-trips
/// every IEEE-754 double exactly in about half the bytes of "%.17g".
void append_request_row(std::string& out, const Request& r) {
  char buffer[32];
  auto* end = std::to_chars(buffer, buffer + sizeof buffer, r.server).ptr;
  out.append(buffer, end);
  out.push_back(',');
  end = std::to_chars(buffer, buffer + sizeof buffer, r.time).ptr;
  out.append(buffer, end);
  out.push_back(',');
  for (std::size_t j = 0; j < r.items.size(); ++j) {
    if (j > 0) out.push_back(';');
    end = std::to_chars(buffer, buffer + sizeof buffer, r.items[j]).ptr;
    out.append(buffer, end);
  }
  out.push_back('\n');
}

}  // namespace

std::string trace_to_csv(const RequestSequence& sequence) {
  const obs::TraceSpan span("trace/to_csv");
  std::string out;
  // ~26 bytes of server+time framing per row, ~8 per item id: one upfront
  // reservation makes serialization allocation-free in the common case.
  out.reserve(kHeader.size() + sequence.size() * 26 +
              sequence.total_item_accesses() * 8);
  out += kHeader;
  for (const Request& r : sequence.requests()) append_request_row(out, r);
  g_rows_written.add(sequence.size());
  g_bytes_written.add(out.size());
  return out;
}

RequestSequence trace_from_csv(std::string_view text,
                               std::size_t min_server_count,
                               std::size_t min_item_count,
                               const TraceParseHints& hints,
                               std::string_view source) {
  const obs::TraceSpan span("trace/from_csv");
  const auto label = [&source]() {
    return source.empty() ? std::string("CSV") : std::string(source);
  };
  std::string_view rest = text;
  const csvdec::ColumnLayout layout =
      csvdec::parse_header(csvdec::next_line(rest));

  // Size the flat arrays from the caller's hints when given, else from two
  // vectorized pre-count sweeps: rows from newlines, item ids from ';'
  // separators (each row holds separators + 1).
  std::size_t row_estimate = hints.request_count;
  if (row_estimate == 0) {
    const std::size_t newline_count =
        static_cast<std::size_t>(std::count(rest.begin(), rest.end(), '\n'));
    row_estimate =
        newline_count + (rest.empty() || rest.back() == '\n' ? 0 : 1);
  }
  std::size_t item_estimate = hints.item_access_count;
  if (item_estimate == 0) {
    item_estimate =
        static_cast<std::size_t>(std::count(rest.begin(), rest.end(), ';')) +
        row_estimate;
  }

  SequenceBuilder builder(1, 1);
  builder.reserve(row_estimate, item_estimate);
  std::size_t server_count = std::max<std::size_t>(min_server_count, 1);
  std::size_t item_count = std::max<std::size_t>(min_item_count, 1);
  std::size_t rows = 0;

  // The canonical layout (what trace_to_csv writes) gets a two-find fast
  // path inside split_row; any other column order takes its generic walk.
  const bool canonical = layout.canonical();

  while (!rest.empty()) {
    const std::string_view line = csvdec::next_line(rest);
    if (line.empty()) continue;
    try {
      const csvdec::RowFields fields =
          csvdec::split_row(line, layout, canonical);
      const auto server = static_cast<ServerId>(
          csvdec::fast_parse_size(csvdec::strip_quotes(fields.server)));
      const Time time =
          csvdec::fast_parse_double(csvdec::strip_quotes(fields.time));
      server_count = std::max<std::size_t>(server_count, server + 1);
      builder.begin_request(server, time);
      csvdec::parse_item_list(fields.items, [&](ItemId item) {
        item_count = std::max<std::size_t>(item_count, item + 1);
        builder.push_item(item);
      });
      builder.end_request();  // sorts + deduplicates the row's item ids
    } catch (const Error& e) {
      // Re-throw with full provenance: which file, which data row, and the
      // byte offset of that row in the input.
      throw IoError(label() + ": row " + std::to_string(rows + 1) +
                    " (byte offset " +
                    std::to_string(static_cast<std::size_t>(
                        line.data() - text.data())) +
                    "): " + e.what());
    }
    ++rows;
  }

  g_rows_parsed.add(rows);
  g_bytes_parsed.add(text.size());
  try {
    return std::move(builder).build_with_counts(server_count, item_count);
  } catch (const InvalidArgument& e) {
    // Sequence-level validation failures (e.g. duplicate times) name the
    // source too; the request index inside the message locates the row.
    throw IoError(label() + ": " + e.what());
  }
}

RequestSequence trace_from_csv_legacy(const std::string& text,
                                      std::size_t min_server_count,
                                      std::size_t min_item_count) {
  const CsvTable table = parse_csv(text);
  const std::size_t server_col = table.column_index("server");
  const std::size_t time_col = table.column_index("time");
  const std::size_t items_col = table.column_index("items");

  std::vector<RequestDraft> requests;
  requests.reserve(table.rows.size());
  std::size_t server_count = std::max<std::size_t>(min_server_count, 1);
  std::size_t item_count = std::max<std::size_t>(min_item_count, 1);
  for (const auto& row : table.rows) {
    RequestDraft r;
    r.server = static_cast<ServerId>(parse_size(row[server_col]));
    r.time = parse_double(row[time_col]);
    for (const std::string& field : split(row[items_col], ';')) {
      r.items.push_back(static_cast<ItemId>(parse_size(field)));
    }
    std::sort(r.items.begin(), r.items.end());
    r.items.erase(std::unique(r.items.begin(), r.items.end()), r.items.end());
    server_count = std::max<std::size_t>(server_count, r.server + 1);
    if (!r.items.empty()) {
      item_count = std::max<std::size_t>(item_count, r.items.back() + 1);
    }
    requests.push_back(std::move(r));
  }
  return RequestSequence(server_count, item_count, std::move(requests));
}

void write_trace_file(const std::string& path, const RequestSequence& sequence) {
  const obs::TraceSpan span("trace/write_file");
  std::ofstream out(path, std::ios::binary);
  if (!out) throw IoError("cannot write trace file: " + path);
  std::string buffer;
  buffer.reserve(kWriteBufferBytes);
  buffer += kHeader;
  std::size_t bytes = 0;
  for (const Request& r : sequence.requests()) {
    append_request_row(buffer, r);
    if (buffer.size() >= kWriteBufferBytes - 512) {
      out.write(buffer.data(), static_cast<std::streamsize>(buffer.size()));
      bytes += buffer.size();
      buffer.clear();
    }
  }
  out.write(buffer.data(), static_cast<std::streamsize>(buffer.size()));
  bytes += buffer.size();
  if (!out) throw IoError("error while writing trace file: " + path);
  g_rows_written.add(sequence.size());
  g_bytes_written.add(bytes);
}

RequestSequence read_trace_file(const std::string& path,
                                std::size_t min_server_count,
                                std::size_t min_item_count,
                                const TraceParseHints& hints) {
  const obs::TraceSpan span("trace/read_file");
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("cannot open trace file: " + path);
  // One sized read into the parse buffer — no stream-buffer double copy.
  in.seekg(0, std::ios::end);
  const std::streampos size = in.tellg();
  if (size < 0) throw IoError("cannot size trace file: " + path);
  in.seekg(0, std::ios::beg);
  std::string text;
  text.resize(static_cast<std::size_t>(size));
  in.read(text.data(), static_cast<std::streamsize>(text.size()));
  if (!in && !text.empty()) {
    throw IoError("error while reading trace file: " + path);
  }
  // The path travels into the parser so its errors carry file provenance.
  return trace_from_csv(text, min_server_count, min_item_count, hints, path);
}

RequestSequence read_trace_stream(std::istream& in,
                                  std::size_t min_server_count,
                                  std::size_t min_item_count,
                                  std::string_view source) {
  const obs::TraceSpan span("trace/read_stream");
  const std::string text(std::istreambuf_iterator<char>(in),
                         std::istreambuf_iterator<char>{});
  return trace_from_csv(text, min_server_count, min_item_count, {}, source);
}

CsvStreamReader::CsvStreamReader(std::istream& in, std::string source)
    : in_(in), source_(std::move(source)) {}

void CsvStreamReader::parse_header_line() {
  header_parsed_ = true;
  if (!std::getline(in_, line_)) {
    throw IoError(source_ + ": empty input (no CSV header)");
  }
  std::string_view header = line_;
  if (!header.empty() && header.back() == '\r') header.remove_suffix(1);
  const csvdec::ColumnLayout layout = csvdec::parse_header(header);
  server_col_ = layout.server;
  time_col_ = layout.time;
  items_col_ = layout.items;
  column_count_ = layout.column_count;
  canonical_ = layout.canonical();
}

bool CsvStreamReader::next(CsvStreamRow& row) {
  if (!header_parsed_) parse_header_line();
  while (std::getline(in_, line_)) {
    std::string_view line = line_;
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (line.empty()) continue;
    try {
      csvdec::ColumnLayout layout;
      layout.server = server_col_;
      layout.time = time_col_;
      layout.items = items_col_;
      layout.column_count = column_count_;
      const csvdec::RowFields fields =
          csvdec::split_row(line, layout, canonical_);
      row.server = static_cast<ServerId>(
          csvdec::fast_parse_size(csvdec::strip_quotes(fields.server)));
      row.time = csvdec::fast_parse_double(csvdec::strip_quotes(fields.time));
      row.items.clear();
      csvdec::parse_item_list(
          fields.items, [&](ItemId item) { row.items.push_back(item); });
      std::sort(row.items.begin(), row.items.end());
      row.items.erase(std::unique(row.items.begin(), row.items.end()),
                      row.items.end());
    } catch (const Error& e) {
      throw IoError(source_ + ": row " + std::to_string(rows_ + 1) + ": " +
                    e.what());
    }
    ++rows_;
    g_rows_parsed.add();
    g_bytes_parsed.add(line_.size() + 1);
    return true;
  }
  return false;
}

}  // namespace dpg
