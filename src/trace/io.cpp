#include "trace/io.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace dpg {

std::string trace_to_csv(const RequestSequence& sequence) {
  std::ostringstream out;
  CsvWriter writer(out);
  writer.write_row({"server", "time", "items"});
  for (const Request& r : sequence.requests()) {
    std::vector<std::string> item_text;
    item_text.reserve(r.items.size());
    for (const ItemId item : r.items) item_text.push_back(std::to_string(item));
    char time_buffer[32];
    // %.17g round-trips every IEEE-754 double exactly.
    std::snprintf(time_buffer, sizeof time_buffer, "%.17g", r.time);
    writer.write_row(
        {std::to_string(r.server), time_buffer, join(item_text, ";")});
  }
  return out.str();
}

RequestSequence trace_from_csv(const std::string& text,
                               std::size_t min_server_count,
                               std::size_t min_item_count) {
  const CsvTable table = parse_csv(text);
  const std::size_t server_col = table.column_index("server");
  const std::size_t time_col = table.column_index("time");
  const std::size_t items_col = table.column_index("items");

  std::vector<Request> requests;
  std::size_t server_count = std::max<std::size_t>(min_server_count, 1);
  std::size_t item_count = std::max<std::size_t>(min_item_count, 1);
  for (const auto& row : table.rows) {
    Request r;
    r.server = static_cast<ServerId>(parse_size(row[server_col]));
    r.time = parse_double(row[time_col]);
    for (const std::string& field : split(row[items_col], ';')) {
      r.items.push_back(static_cast<ItemId>(parse_size(field)));
    }
    std::sort(r.items.begin(), r.items.end());
    server_count = std::max<std::size_t>(server_count, r.server + 1);
    if (!r.items.empty()) {
      item_count = std::max<std::size_t>(item_count, r.items.back() + 1);
    }
    requests.push_back(std::move(r));
  }
  return RequestSequence(server_count, item_count, std::move(requests));
}

void write_trace_file(const std::string& path, const RequestSequence& sequence) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw IoError("cannot write trace file: " + path);
  out << trace_to_csv(sequence);
  if (!out) throw IoError("error while writing trace file: " + path);
}

RequestSequence read_trace_file(const std::string& path,
                                std::size_t min_server_count,
                                std::size_t min_item_count) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("cannot open trace file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return trace_from_csv(buffer.str(), min_server_count, min_item_count);
}

}  // namespace dpg
