// Trace persistence: request sequences as CSV files with columns
// `server,time,items`, where items are ';'-separated item ids.  The format
// is stable so experiment inputs can be archived and replayed.
//
// Parsing is a single zero-copy pass: fields are std::string_view slices of
// the input decoded with std::from_chars and streamed straight into a
// SequenceBuilder, so a trace of n requests costs O(1) allocations, not
// O(n·fields).  Writing streams through a fixed-size buffer.  The dialect
// matches what trace_to_csv emits plus minimal robustness: any column
// order, CRLF line endings, blank lines, and fields wrapped in plain
// double quotes (no embedded separators or escaped quotes).
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

#include "core/request.hpp"

namespace dpg {

/// Serializes a sequence to CSV text.
[[nodiscard]] std::string trace_to_csv(const RequestSequence& sequence);

/// Caller-known sizes that let the parser skip its pre-count sweeps and let
/// SequenceBuilder reserve exactly once (e.g. from a `.dpt` header when
/// re-importing, or from a previous parse of the same file).  Zero fields
/// fall back to counting.  Hints are reserve sizing only — a mismatch costs
/// reallocations, never correctness.
struct TraceParseHints {
  std::size_t request_count = 0;
  std::size_t item_access_count = 0;
};

/// Parses CSV text back to a sequence.  `server_count`/`item_count` are
/// inferred as max id + 1 unless explicit larger bounds are given.
/// `source` labels parse/validation errors (typically the file path); row
/// errors report the 1-based data row and the byte offset into `text`.
[[nodiscard]] RequestSequence trace_from_csv(std::string_view text,
                                             std::size_t min_server_count = 0,
                                             std::size_t min_item_count = 0,
                                             const TraceParseHints& hints = {},
                                             std::string_view source = {});

/// The pre-streaming CsvTable-based parser, kept as the independent
/// cross-check oracle for tests and the bm_trace throughput baseline.
[[nodiscard]] RequestSequence trace_from_csv_legacy(
    const std::string& text, std::size_t min_server_count = 0,
    std::size_t min_item_count = 0);

/// File variants. Throw IoError on filesystem problems.  Writing streams
/// row-by-row through a buffer; reading loads the file in one sized read
/// and labels any parse/validation error with the path and byte offset.
void write_trace_file(const std::string& path, const RequestSequence& sequence);
[[nodiscard]] RequestSequence read_trace_file(
    const std::string& path, std::size_t min_server_count = 0,
    std::size_t min_item_count = 0, const TraceParseHints& hints = {});

/// Reads a whole CSV trace from an input stream (used for `-` trace paths:
/// the CLI's stats/solve on a pipe).  Same dialect and validation as
/// read_trace_file; `source` labels errors.
[[nodiscard]] RequestSequence read_trace_stream(
    std::istream& in, std::size_t min_server_count = 0,
    std::size_t min_item_count = 0, std::string_view source = "<stdin>");

/// One parsed `server,time,items` row of a streamed trace.
struct CsvStreamRow {
  ServerId server = 0;
  Time time = 0.0;
  std::vector<ItemId> items;  // sorted, duplicate-free
};

/// Bounded-memory, line-at-a-time CSV trace reader for unbounded inputs —
/// what `dpgreedy serve` uses to feed the StreamingEngine from a pipe.
/// Same dialect as trace_from_csv (any column order, CRLF, blank lines,
/// plain quotes); holds only the current line and row, so memory is O(max
/// row length) regardless of stream length.  Sequence-level invariants
/// (strictly increasing times, non-empty item sets) are the *consumer's*
/// contract: the reader reports rows as written and the engine's push
/// validates ordering.
class CsvStreamReader {
 public:
  /// The header row is consumed lazily on the first next() call.
  explicit CsvStreamReader(std::istream& in,
                           std::string source = "CSV stream");

  /// Parses the next data row into `row`, reusing its buffers.  Returns
  /// false at end of input.  Throws IoError (with `source` and the 1-based
  /// data row number) on malformed input.
  bool next(CsvStreamRow& row);

  /// Data rows successfully parsed so far.
  [[nodiscard]] std::size_t rows_read() const noexcept { return rows_; }

 private:
  void parse_header_line();

  std::istream& in_;
  std::string source_;
  std::string line_;
  bool header_parsed_ = false;
  std::size_t server_col_ = 0;
  std::size_t time_col_ = 1;
  std::size_t items_col_ = 2;
  std::size_t column_count_ = 3;
  bool canonical_ = true;
  std::size_t rows_ = 0;
};

}  // namespace dpg
