// Trace persistence: request sequences as CSV files with columns
// `server,time,items`, where items are ';'-separated item ids.  The format
// is stable so experiment inputs can be archived and replayed.
#pragma once

#include <string>

#include "core/request.hpp"

namespace dpg {

/// Serializes a sequence to CSV text.
[[nodiscard]] std::string trace_to_csv(const RequestSequence& sequence);

/// Parses CSV text back to a sequence.  `server_count`/`item_count` are
/// inferred as max id + 1 unless explicit larger bounds are given.
[[nodiscard]] RequestSequence trace_from_csv(const std::string& text,
                                             std::size_t min_server_count = 0,
                                             std::size_t min_item_count = 0);

/// File variants. Throw IoError on filesystem problems.
void write_trace_file(const std::string& path, const RequestSequence& sequence);
[[nodiscard]] RequestSequence read_trace_file(const std::string& path,
                                              std::size_t min_server_count = 0,
                                              std::size_t min_item_count = 0);

}  // namespace dpg
