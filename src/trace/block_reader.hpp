// Chunked trace readers producing RequestBlocks — the decode stage of the
// serve pipeline (engine/serve_pipeline.hpp).
//
//   * SequenceBlockReader — replays a materialized RequestSequence in
//     zero-copy slices: each block adopts spans of the sequence's CSR
//     columns (for a `.dpt` mmap open, that is the mapped file itself — no
//     column byte is copied anywhere on the way to push_batch).
//   * CsvBlockReader — chunked CSV decode in bounded memory: bulk reads
//     from an istream, single-pass from_chars row parsing (the same
//     dialect/fast path as trace_from_csv, via trace/csv_decode.hpp)
//     straight into a reusable owned block.  Throws IoError with full
//     provenance (source, row, byte offset) on malformed rows.
//
// Both readers cap the stream with `limit` (0 = everything), which is how
// serve --max-requests truncates without the pipeline second-guessing block
// boundaries.
#pragma once

#include <cstddef>
#include <istream>
#include <string>
#include <string_view>

#include "core/request.hpp"
#include "core/request_block.hpp"
#include "trace/csv_decode.hpp"

namespace dpg {

/// Zero-copy block replay over a RequestSequence (the `.dpt` serve path).
/// The sequence must outlive every block handed out (blocks only view it).
class SequenceBlockReader final : public BlockSource {
 public:
  SequenceBlockReader(const RequestSequence& sequence, std::size_t batch_rows,
                      std::size_t limit = 0);

  bool next(RequestBlock& block) override;

  [[nodiscard]] std::size_t rows() const noexcept { return pos_; }

 private:
  const RequestSequence& sequence_;
  std::size_t batch_rows_;
  std::size_t end_;
  std::size_t pos_ = 0;
};

/// Chunked CSV decode into owned blocks, bounded memory (one IO buffer plus
/// the block being filled, regardless of stream length).
class CsvBlockReader final : public BlockSource {
 public:
  /// `source` labels errors (file path or "<stdin>").
  CsvBlockReader(std::istream& in, std::string source, std::size_t batch_rows,
                 std::size_t limit = 0);

  bool next(RequestBlock& block) override;

  /// Data rows decoded so far.
  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }

 private:
  /// Extracts the next line (without '\n'/"\r\n") from the buffered stream,
  /// refilling as needed.  False at end of input.  `offset` receives the
  /// byte offset of the line start in the whole stream.
  bool next_line(std::string_view& line, std::size_t* offset);
  void parse_header_line();

  std::istream& in_;
  std::string source_;
  std::size_t batch_rows_;
  std::size_t limit_;

  std::string buffer_;
  std::size_t pos_ = 0;          // consumed prefix of buffer_
  std::size_t base_offset_ = 0;  // stream offset of buffer_[0]
  bool eof_ = false;

  bool header_parsed_ = false;
  csvdec::ColumnLayout layout_;
  bool canonical_ = false;
  std::size_t rows_ = 0;
  // Deferred malformed-row error: the valid prefix of the block is delivered
  // first, then the next call throws this.
  std::string pending_error_;
};

}  // namespace dpg
