#include "engine/run_report.hpp"

#include <cmath>
#include <limits>

namespace dpg {

void finalize_report(RunReport& report) {
  report.ave_cost =
      report.total_item_accesses == 0
          ? 0.0
          : report.total_cost /
                static_cast<double>(report.total_item_accesses);

  // cache_cost is the μ-side remainder total − transfer.  The naive
  // subtraction rounds, and `(total − transfer) + transfer` need not round
  // back to `total`; nudge by single ulps until the identity is bit-exact
  // (|cache| ≤ total, so each step moves the rounded sum by at most one
  // representable value and cannot skip over `total`).
  const Cost inf = std::numeric_limits<Cost>::infinity();
  Cost cache = report.total_cost - report.transfer_cost;
  while (cache + report.transfer_cost > report.total_cost) {
    cache = std::nextafter(cache, -inf);
  }
  while (cache + report.transfer_cost < report.total_cost) {
    cache = std::nextafter(cache, inf);
  }
  report.cache_cost = cache;
}

}  // namespace dpg
