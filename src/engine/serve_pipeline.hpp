// The pipelined serve path: decode thread → SPSC ring → engine thread.
//
// run_serve_pipeline splits ingest into the two stages that dominate a
// serve run and overlaps them:
//
//   [producer thread]  BlockSource::next() decodes the trace into reusable
//                      CSR RequestBlocks (CsvBlockReader) or zero-copy
//                      column slices (SequenceBlockReader over a `.dpt`
//                      mmap), and hands each block to
//   [caller's thread]  StreamingEngine::push_batch over a bounded SpscRing
//                      (parallel/spsc_ring.hpp) — one mutex acquisition,
//                      one telemetry clock pair, one counter update per
//                      block instead of per request.
//
// Blocks recycle through a second ring travelling the other way, so steady
// state allocates nothing: capacity ring_capacity + 2 covers every block in
// flight (ring + one in each stage's hands).
//
// Backpressure is explicit and observable: a full work ring blocks the
// decoder, an empty one blocks the engine, and both waits land in the
// `ring.enqueue_blocked` / `ring.dequeue_blocked` counters (plus a
// per-batch `ring.depth` occupancy sample) so the metrics say which stage
// is the bottleneck.
//
// Error contract: if the source throws mid-stream (malformed CSV row, IO
// error), every complete block decoded before the bad row is still pushed
// — the engine ends up having ingested exactly the requests before the
// failure, same as the per-push path — and the error is rethrown on the
// caller's thread after the producer joins.  The caller can then snapshot
// or finish() the engine to flush what was ingested.
//
// The reverse direction — an exception thrown by push_batch or on_batch on
// the engine thread — closes both rings (unblocking any ring wait) and
// joins the decoder before rethrowing.  Closing a ring cannot interrupt a
// source parked inside next() on stream IO, which is why BlockSource::next
// (core/request_block.hpp) must not block indefinitely.
//
// Snapshots stay off this hot path via ReportBoard: the consumer publishes
// a StreamingSnapshot at batch granularity (double-buffered swap under a
// briefly-held mutex), and observers — the stats printer, --prom-out, the
// /metrics listener — copy the published buffer without ever touching the
// engine mutex.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <utility>

#include "core/request_block.hpp"
#include "engine/serve_config.hpp"
#include "engine/streaming_engine.hpp"

namespace dpg {

/// What the pipeline did, plus its backpressure counters (also mirrored
/// into the ring.* metrics).
struct ServePipelineStats {
  std::size_t requests = 0;         // rows pushed into the engine
  std::size_t batches = 0;          // blocks pushed
  std::uint64_t enqueue_blocked = 0;  // decoder waits on a full ring
  std::uint64_t dequeue_blocked = 0;  // engine waits on an empty ring
};

/// Double-buffered snapshot publication: the pipeline thread writes the
/// back buffer privately and swaps it in under a briefly-held mutex;
/// readers (stats printer, prom writer, HTTP scrapes) copy the front
/// buffer under the same brief mutex.  Neither side ever holds the engine
/// mutex, so observers never block pushes.
class ReportBoard {
 public:
  /// Publishes a snapshot (writer side; one writer at a time).
  void publish(StreamingSnapshot snapshot) {
    back_ = std::move(snapshot);
    const std::lock_guard<std::mutex> lock(mutex_);
    std::swap(front_, back_);
    ++version_;
  }

  /// Copies the latest published snapshot.  `version` (optional) receives
  /// the publication count — 0 means nothing has been published yet.
  [[nodiscard]] StreamingSnapshot read(std::uint64_t* version = nullptr) const {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (version != nullptr) *version = version_;
    return front_;
  }

  [[nodiscard]] std::uint64_t version() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return version_;
  }

 private:
  mutable std::mutex mutex_;
  StreamingSnapshot front_;
  StreamingSnapshot back_;  // writer-private between publishes
  std::uint64_t version_ = 0;
};

/// Called on the engine thread after each block is pushed: (block, aggregate
/// decision, rows pushed so far).  This is where the caller drives snapshot
/// cadence, ReportBoard publication, and stats lines.
using ServeBatchCallback = std::function<void(
    const RequestBlock&, const StreamingDecision&, std::size_t)>;

/// Drains `source` through the two-stage pipeline into `engine`.  The
/// calling thread becomes the engine stage; one internal thread runs the
/// decode stage.  Of the config only `ring_capacity` matters here — the
/// source already decodes at the caller's chosen `batch_rows`.  Does NOT
/// finish() the engine — the
/// caller decides when to close the books.  Rethrows a mid-stream source
/// error after every complete block before it has been pushed (see the
/// error contract above).
ServePipelineStats run_serve_pipeline(BlockSource& source,
                                      StreamingEngine& engine,
                                      const ServeConfig& config,
                                      const ServeBatchCallback& on_batch = {});

}  // namespace dpg
