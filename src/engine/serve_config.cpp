// ServeConfig's fluent builder plumbing: the string-keyed setter and the
// eager range validation, mirroring SolverConfig (solver_config.cpp).
#include "engine/serve_config.hpp"

#include <string>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace dpg {

namespace {

constexpr const char* kValidFields =
    "batch, ring, shards, partitions, route, topology, snapshot_every, "
    "stats_every, probe_chunk, max_requests, listen, prom_out, archive, "
    "pipeline";

constexpr std::size_t kMaxShards = 64;
constexpr std::size_t kMaxPartitions = 64;

bool parse_flag(std::string_view field, std::string_view value) {
  if (value == "true" || value == "1" || value == "on") return true;
  if (value == "false" || value == "0" || value == "off") return false;
  throw InvalidArgument("ServeConfig: field '" + std::string(field) +
                        "' expects a boolean (true/false/1/0/on/off), got '" +
                        std::string(value) + "'");
}

}  // namespace

ServeRoute parse_serve_route(std::string_view value) {
  if (value == "server") return ServeRoute::kByServer;
  if (value == "itemset") return ServeRoute::kByItemSet;
  throw InvalidArgument("ServeConfig: route must be 'server' or 'itemset', "
                        "got '" +
                        std::string(value) + "'");
}

ServeTopology parse_serve_topology(std::string_view value) {
  if (value == "crossbar") return ServeTopology::kCrossbar;
  if (value == "mpmc") return ServeTopology::kMpmc;
  throw InvalidArgument("ServeConfig: topology must be 'crossbar' or 'mpmc', "
                        "got '" +
                        std::string(value) + "'");
}

const char* serve_route_name(ServeRoute route) noexcept {
  return route == ServeRoute::kByServer ? "server" : "itemset";
}

const char* serve_topology_name(ServeTopology topology) noexcept {
  return topology == ServeTopology::kCrossbar ? "crossbar" : "mpmc";
}

ServeConfig& ServeConfig::with(std::string_view field, std::string_view value) {
  // Stage the change on a copy so a throw (bad value, failed range check)
  // leaves *this exactly as it was — a half-applied builder call would
  // otherwise poison every later .with on the same object.
  ServeConfig next = *this;
  const auto size_of = [&] {
    try {
      return parse_size(value);
    } catch (const Error&) {
      throw InvalidArgument("ServeConfig: field '" + std::string(field) +
                            "' expects a non-negative integer, got '" +
                            std::string(value) + "'");
    }
  };
  if (field == "batch") {
    next.batch_rows = size_of();
  } else if (field == "ring") {
    next.ring_capacity = size_of();
  } else if (field == "shards") {
    next.shard_count = size_of();
  } else if (field == "partitions") {
    next.partition_count = size_of();
  } else if (field == "route") {
    next.flow_route = parse_serve_route(value);
  } else if (field == "topology") {
    next.ring_topology = parse_serve_topology(value);
  } else if (field == "snapshot_every") {
    next.snapshot_interval = size_of();
  } else if (field == "stats_every") {
    next.stats_interval = size_of();
  } else if (field == "probe_chunk") {
    next.probe_chunk_rows = size_of();
  } else if (field == "max_requests") {
    next.max_request_rows = size_of();
  } else if (field == "listen") {
    next.listen_address = value;
  } else if (field == "prom_out") {
    next.prom_path = value;
  } else if (field == "archive") {
    next.archive_path = value;
  } else if (field == "pipeline") {
    next.pipelined = parse_flag(field, value);
  } else {
    throw InvalidArgument("ServeConfig: unknown field '" + std::string(field) +
                          "' (valid: " + kValidFields + ")");
  }
  next.validate();  // eager: a bad value throws here, not mid-stream
  *this = std::move(next);
  return *this;
}

void ServeConfig::validate() const {
  if (batch_rows == 0) {
    throw InvalidArgument("ServeConfig: batch must be >= 1");
  }
  if (ring_capacity == 0) {
    throw InvalidArgument("ServeConfig: ring must be >= 1");
  }
  if (shard_count == 0 || shard_count > kMaxShards) {
    throw InvalidArgument("ServeConfig: shards must be in [1, " +
                          std::to_string(kMaxShards) + "], got " +
                          std::to_string(shard_count));
  }
  if (partition_count == 0 || partition_count > kMaxPartitions) {
    throw InvalidArgument("ServeConfig: partitions must be in [1, " +
                          std::to_string(kMaxPartitions) + "], got " +
                          std::to_string(partition_count));
  }
  if (!archive_path.empty() && (shard_count > 1 || partition_count > 1)) {
    throw InvalidArgument(
        "ServeConfig: archive requires shards == 1 and partitions == 1 "
        "(the archive preserves arrival order, which a sharded run does "
        "not reassemble)");
  }
}

}  // namespace dpg
