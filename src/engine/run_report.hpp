// The canonical result record of the solver engine.
//
// Every solver reachable through the SolverRegistry — DP_Greedy, the
// paper's baselines, the online policies, the group extension — reports its
// run as one RunReport, so every front end (CLI, examples, sim replay,
// benchmarks) compares algorithms through the same fields instead of
// reaching into per-solver result structs.  The totals are copied bitwise
// from the wrapped solve_* result; the breakdown, event counts and plan
// handles are derived without re-pricing anything.
#pragma once

#include <string>
#include <vector>

#include "core/types.hpp"
#include "obs/metrics.hpp"
#include "sim/replay.hpp"

namespace dpg {

struct RunReport {
  /// Registry name of the solver that produced this report.
  std::string solver;

  /// Discounted total cost — bit-identical to the wrapped solver's total.
  Cost total_cost = 0.0;
  /// Undiscounted total where the solver defines one (the per-flow policies
  /// report their μ/λ face-value sum); equals total_cost otherwise.
  Cost raw_cost = 0.0;
  /// Σ|d_i| over the sequence — the ave_cost denominator of Algorithm 1.
  std::size_t total_item_accesses = 0;
  /// total_cost / total_item_accesses, Algorithm 1's headline output.
  double ave_cost = 0.0;

  // Cost breakdown.  transfer_cost is the measured sum of every λ-charge
  // (wire transfers, package fetches); cache_cost is the μ-side remainder,
  // renormalized so `cache_cost + transfer_cost == total_cost` holds
  // bit-exactly (see finalize_breakdown).
  Cost cache_cost = 0.0;
  Cost transfer_cost = 0.0;

  // Event counts.
  std::size_t package_count = 0;    // packages/groups formed (pack events online)
  std::size_t unpack_events = 0;    // online dissolutions; 0 offline
  std::size_t transfer_events = 0;  // λ-charges: wire transfers + package fetches
  std::size_t cache_segments = 0;   // cache intervals across all schedules

  // Wall-clock timing.  phase1_seconds measures the packing analysis
  // (correlation + pairing) standalone on the same inputs for solvers that
  // have one; solve_seconds is the end-to-end solve_* call (which includes
  // its own Phase-1 pass — the two are independent measurements, not a sum).
  double phase1_seconds = 0.0;
  double solve_seconds = 0.0;

  /// The schedule handle: one FlowPlan per constituent flow (packages,
  /// groups, single items), replayable via sim/replay.hpp.  Empty when the
  /// solver does not emit schedules (online_dp_greedy) or when
  /// SolverConfig::keep_schedules is off.
  std::vector<FlowPlan> plans;

  /// Telemetry delta for this run (counters/histograms bumped between the
  /// solver's start and finish).  Empty unless obs::set_enabled(true) was in
  /// effect when SolverRegistry::run dispatched the solver.  Purely
  /// observational: totals above are bit-identical with telemetry on or off.
  obs::MetricsSnapshot metrics;
};

/// Sets ave_cost from total_cost / total_item_accesses and renormalizes
/// cache_cost (by at most a few ulps) so that
/// `cache_cost + transfer_cost == total_cost` is bit-exact.
void finalize_report(RunReport& report);

}  // namespace dpg
