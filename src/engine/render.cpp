#include "engine/render.hpp"

#include <cstdio>

#include "util/strings.hpp"
#include "util/table.hpp"

namespace dpg {

namespace {

/// Round-trip formatting for costs (CSV/JSON must reproduce the doubles the
/// engine_test asserts bit-exactly).
std::string format_exact(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

std::string format_count(std::size_t value) {
  return std::to_string(value);
}

}  // namespace

std::vector<std::string> comparison_header() {
  return {"solver",  "total",     "ave",       "cache",
          "transfer", "packages", "transfers", "solve_s"};
}

std::vector<std::string> comparison_row(const RunReport& report) {
  return {report.solver,
          format_fixed(report.total_cost, 2),
          format_fixed(report.ave_cost, 4),
          format_fixed(report.cache_cost, 2),
          format_fixed(report.transfer_cost, 2),
          format_count(report.package_count),
          format_count(report.transfer_events),
          format_fixed(report.solve_seconds, 4)};
}

std::string render_comparison(const std::vector<RunReport>& reports) {
  TextTable table(comparison_header());
  for (const RunReport& report : reports) {
    table.add_row(comparison_row(report));
  }
  return table.render();
}

std::vector<std::string> report_csv_header() {
  return {"solver",          "total_cost",     "raw_cost",
          "ave_cost",        "cache_cost",     "transfer_cost",
          "item_accesses",   "package_count",  "unpack_events",
          "transfer_events", "cache_segments", "phase1_seconds",
          "solve_seconds"};
}

std::vector<std::string> report_csv_row(const RunReport& report) {
  return {report.solver,
          format_exact(report.total_cost),
          format_exact(report.raw_cost),
          format_exact(report.ave_cost),
          format_exact(report.cache_cost),
          format_exact(report.transfer_cost),
          format_count(report.total_item_accesses),
          format_count(report.package_count),
          format_count(report.unpack_events),
          format_count(report.transfer_events),
          format_count(report.cache_segments),
          format_exact(report.phase1_seconds),
          format_exact(report.solve_seconds)};
}

std::string report_json(const RunReport& report) {
  std::string out = "{";
  out += "\"solver\": \"" + report.solver + "\"";
  const auto number = [&out](const char* key, const std::string& value) {
    out += ", \"";
    out += key;
    out += "\": " + value;
  };
  number("total_cost", format_exact(report.total_cost));
  number("raw_cost", format_exact(report.raw_cost));
  number("ave_cost", format_exact(report.ave_cost));
  number("cache_cost", format_exact(report.cache_cost));
  number("transfer_cost", format_exact(report.transfer_cost));
  number("item_accesses", format_count(report.total_item_accesses));
  number("package_count", format_count(report.package_count));
  number("unpack_events", format_count(report.unpack_events));
  number("transfer_events", format_count(report.transfer_events));
  number("cache_segments", format_count(report.cache_segments));
  number("phase1_seconds", format_exact(report.phase1_seconds));
  number("solve_seconds", format_exact(report.solve_seconds));
  if (!report.metrics.counters.empty() || !report.metrics.histograms.empty()) {
    out += ", \"metrics\": {\"counters\": {";
    for (std::size_t i = 0; i < report.metrics.counters.size(); ++i) {
      const auto& [name, value] = report.metrics.counters[i];
      if (i != 0) out += ", ";
      out += "\"" + name + "\": " + format_count(value);
    }
    out += "}, \"histograms\": {";
    for (std::size_t i = 0; i < report.metrics.histograms.size(); ++i) {
      const auto& [name, data] = report.metrics.histograms[i];
      if (i != 0) out += ", ";
      out += "\"" + name + "\": {\"count\": " + format_count(data.count) +
             ", \"sum\": " + format_count(data.sum) + "}";
    }
    out += "}}";
  }
  out += "}";
  return out;
}

std::string render_metrics(const RunReport& report) {
  TextTable table({"metric", "kind", "value"});
  for (const auto& [name, value] : report.metrics.counters) {
    table.add_row({name, "counter", format_count(value)});
  }
  for (const auto& [name, data] : report.metrics.histograms) {
    table.add_row({name, "histogram",
                   "count=" + format_count(data.count) +
                       " sum=" + format_count(data.sum) +
                       " mean=" + format_fixed(data.count == 0
                                                   ? 0.0
                                                   : static_cast<double>(data.sum) /
                                                         static_cast<double>(data.count),
                                               1)});
  }
  return table.render();
}

std::vector<std::string> metrics_csv_rows(const RunReport& report) {
  std::vector<std::string> rows;
  for (const auto& [name, value] : report.metrics.counters) {
    rows.push_back(report.solver + ",counter," + name + "," +
                   format_count(value));
  }
  for (const auto& [name, data] : report.metrics.histograms) {
    rows.push_back(report.solver + ",histogram," + name + "," +
                   format_count(data.count) + "," + format_count(data.sum));
  }
  return rows;
}

}  // namespace dpg
