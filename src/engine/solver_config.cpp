// SolverConfig's fluent builder plumbing: the string-keyed setter and the
// eager range validation.  Both throw InvalidArgument with actionable
// messages (unknown fields list the valid ones), so a bad config fails at
// the call site instead of deep inside a solve.
#include <string>

#include "engine/solver.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace dpg {

namespace {

constexpr const char* kValidFields =
    "theta, max_group_size, window, repack_interval, hold_factor, "
    "keep_schedules, threads, telemetry, seed, kernels";

bool parse_flag(std::string_view field, std::string_view value) {
  if (value == "true" || value == "1" || value == "on") return true;
  if (value == "false" || value == "0" || value == "off") return false;
  throw InvalidArgument("SolverConfig: field '" + std::string(field) +
                        "' expects a boolean (true/false/1/0/on/off), got '" +
                        std::string(value) + "'");
}

}  // namespace

SolverConfig& SolverConfig::with(std::string_view field,
                                 std::string_view value) {
  if (field == "theta") {
    theta = parse_double(value);
  } else if (field == "max_group_size") {
    max_group_size = parse_size(value);
  } else if (field == "window") {
    window = parse_size(value);
  } else if (field == "repack_interval") {
    repack_interval = parse_size(value);
  } else if (field == "hold_factor") {
    hold_factor = parse_double(value);
  } else if (field == "keep_schedules") {
    keep_schedules = parse_flag(field, value);
  } else if (field == "threads") {
    thread_count = parse_size(value);
  } else if (field == "telemetry") {
    telemetry_enabled = parse_flag(field, value);
  } else if (field == "seed") {
    rng_seed = parse_size(value);
  } else if (field == "kernels") {
    dp.use_kernels = parse_flag(field, value);
  } else {
    throw InvalidArgument("SolverConfig: unknown field '" +
                          std::string(field) + "' (valid: " + kValidFields +
                          ")");
  }
  validate();  // eager: a bad value throws here, not inside a later solve
  return *this;
}

void SolverConfig::validate() const {
  if (!(theta >= 0.0 && theta <= 1.0)) {
    throw InvalidArgument("SolverConfig: theta must be in [0, 1], got " +
                          std::to_string(theta));
  }
  if (!(hold_factor > 0.0)) {
    throw InvalidArgument("SolverConfig: hold_factor must be > 0, got " +
                          std::to_string(hold_factor));
  }
  if (window == 0) {
    throw InvalidArgument("SolverConfig: window must be >= 1");
  }
  if (repack_interval == 0) {
    throw InvalidArgument("SolverConfig: repack_interval must be >= 1");
  }
  if (max_group_size < 2) {
    throw InvalidArgument("SolverConfig: max_group_size must be >= 2");
  }
}

}  // namespace dpg
