// SolverRegistry: stable string names → solver factories.
//
// The registry is the one dispatch path of the repo: the CLI's --solver
// flag, the examples' comparison tables, the sim-replay integration tests
// and the registry benchmarks all iterate it instead of hardcoding call
// sites.  Built-in names (see engine/adapters.cpp):
//
//   dp_greedy, optimal_baseline, package_served, group_dp_greedy,
//   online_break_even, online_dp_greedy, greedy, chain
//
// Future policies (sharded backends, heterogeneous costs, new papers) plug
// in by registering a factory — no front end changes.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "engine/solver.hpp"

namespace dpg {

class SolverRegistry {
 public:
  using Factory = std::function<std::unique_ptr<Solver>()>;

  /// Registers a solver under info.name; throws InvalidArgument on a
  /// duplicate name.
  void add(SolverInfo info, Factory factory);

  [[nodiscard]] bool contains(const std::string& name) const;

  /// All registered names, sorted (the stable iteration order every
  /// front end uses).
  [[nodiscard]] std::vector<std::string> names() const;

  /// Metadata for every registered solver, sorted by name.
  [[nodiscard]] std::vector<SolverInfo> list() const;

  /// Metadata for one solver; throws InvalidArgument (listing the valid
  /// names) when unknown.
  [[nodiscard]] const SolverInfo& info(const std::string& name) const;

  /// Instantiates a solver; throws InvalidArgument (listing the valid
  /// names) when unknown.
  [[nodiscard]] std::unique_ptr<Solver> create(const std::string& name) const;

  /// One-shot convenience: create + run.  Reuses nothing across calls; for
  /// repeated runs create() once and keep the Solver (it reuses its
  /// workspace).
  [[nodiscard]] RunReport run(const std::string& name,
                              const RequestSequence& sequence,
                              const CostModel& model,
                              const SolverConfig& config = {}) const;

 private:
  struct Entry {
    SolverInfo info;
    Factory factory;
  };
  [[nodiscard]] const Entry& entry(const std::string& name) const;

  std::vector<Entry> entries_;  // kept sorted by info.name
};

/// The process-wide registry with every built-in solver registered
/// (constructed on first use; safe to call from static initializers).
[[nodiscard]] SolverRegistry& builtin_registry();

/// Runs each named solver in order on the same inputs (the comparison loop
/// every front end shares).
[[nodiscard]] std::vector<RunReport> run_solvers(
    const std::vector<std::string>& names, const RequestSequence& sequence,
    const CostModel& model, const SolverConfig& config = {});

}  // namespace dpg
