#include "engine/streaming_engine.hpp"

#include <algorithm>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "solver/baselines.hpp"
#include "util/error.hpp"

namespace dpg {

namespace {

const obs::Counter g_stream_pushes = obs::counter("stream.pushes");
const obs::Counter g_stream_items = obs::counter("stream.items");
const obs::Counter g_stream_batches = obs::counter("stream.batches");
const obs::Counter g_stream_snapshots = obs::counter("stream.snapshots");
const obs::Counter g_stream_probe_chunks = obs::counter("stream.probe_chunks");
const obs::Histogram g_stream_push_ns = obs::histogram("stream.push_ns");
const obs::Histogram g_stream_batch_ns = obs::histogram("stream.batch_ns");

}  // namespace

void StreamingOptions::validate() const {
  online.validate();
  // probe_chunk == 0 simply disables the probe; any positive chunk is legal.
}

StreamingEngine::StreamingEngine(const CostModel& model,
                                 const StreamingOptions& options)
    : model_(model),
      options_(options),
      state_(model, options.online, options.item_count_hint) {
  options.validate();
  if (options_.probe_chunk > 0) probe_buffer_.reserve(options_.probe_chunk);
  if (options_.server_count_hint > 0) {
    probe_max_server_ = static_cast<ServerId>(options_.server_count_hint - 1);
  }
}

StreamingDecision StreamingEngine::push(ServerId server, Time time,
                                        std::span<const ItemId> items) {
  const std::lock_guard<std::mutex> lock(mutex_);
  require(!finished_, "StreamingEngine::push: engine already finished");

  // Per-push latency histogram; the clock reads only happen with telemetry
  // on, so the disabled hot path stays one relaxed load per counter.
  const std::uint64_t push_start_ns =
      obs::enabled() ? obs::trace_now_ns() : 0;

  // Canonicalize the row (RequestSequence rows arrive sorted and unique, so
  // this is a no-op pass on the batch path).
  row_.assign(items.begin(), items.end());
  std::sort(row_.begin(), row_.end());
  row_.erase(std::unique(row_.begin(), row_.end()), row_.end());

  const OnlineDpGreedyState::Decision d =
      state_.push(server, time, std::span<const ItemId>(row_));
  g_stream_pushes.add();
  g_stream_items.add(row_.size());

  if (options_.probe_chunk > 0) {
    probe_max_server_ = std::max(probe_max_server_, server);
    probe_buffer_.push_back(RequestDraft{server, time, row_});
    maybe_run_probe();
  }

  // Probe solves included: the histogram's tail is exactly the pushes a
  // caller would see stall.
  if (obs::enabled()) {
    g_stream_push_ns.record(obs::trace_now_ns() - push_start_ns);
  }

  StreamingDecision decision;
  decision.cost_delta = d.cost_delta;
  decision.transfers = d.transfers;
  decision.package_fetches = d.package_fetches;
  decision.pack_events = d.pack_events;
  decision.unpack_events = d.unpack_events;
  decision.repacked = d.repacked;
  decision.epoch = state_.repack_rounds();
  return decision;
}

StreamingDecision StreamingEngine::push_batch(const RequestBlock& block) {
  // Empty blocks are a documented no-op: sharded sources legitimately hand
  // out zero-row tails (a shard whose claimed range ends on a block
  // boundary, a partition that owns no flow in a block), and charging them
  // a mutex acquisition, a telemetry clock pair and a `stream.batches` bump
  // would both serialize idle shards and drag `stream.batch_ns` toward
  // zero.  The returned value-initialized decision (zero deltas, epoch 0)
  // is exactly what a zero-row loop would have produced.
  if (block.empty()) return StreamingDecision{};

  const std::lock_guard<std::mutex> lock(mutex_);
  require(!finished_, "StreamingEngine::push_batch: engine already finished");

  // One clock pair per block, not per request.
  const std::uint64_t batch_start_ns =
      obs::enabled() ? obs::trace_now_ns() : 0;

  OnlineDpGreedyState::Decision total;
  if (options_.probe_chunk == 0) {
    // Fast path: the whole block goes straight through the solver.  Rows
    // are already sorted/unique (the RequestBlock invariant), so the
    // per-push canonicalization copy is skipped.
    total = state_.push_batch(block);
  } else {
    // Probe path: buffering must interleave per row so the offline solve
    // fires at the exact same request boundary as per-row pushes.
    const std::size_t rows = block.size();
    for (std::size_t i = 0; i < rows; ++i) {
      const ServerId server = block.server_of(i);
      const Time time = block.time_of(i);
      const std::span<const ItemId> items = block.items_of(i);
      const OnlineDpGreedyState::Decision d = state_.push(server, time, items);
      total.cost_delta += d.cost_delta;
      total.transfers += d.transfers;
      total.package_fetches += d.package_fetches;
      total.pack_events += d.pack_events;
      total.unpack_events += d.unpack_events;
      total.repacked = total.repacked || d.repacked;
      probe_max_server_ = std::max(probe_max_server_, server);
      probe_buffer_.push_back(
          RequestDraft{server, time,
                       std::vector<ItemId>(items.begin(), items.end())});
      maybe_run_probe();
    }
  }

  g_stream_pushes.add(block.size());
  g_stream_items.add(block.total_items());
  g_stream_batches.add();
  if (obs::enabled()) {
    g_stream_batch_ns.record(obs::trace_now_ns() - batch_start_ns);
  }

  StreamingDecision decision;
  decision.cost_delta = total.cost_delta;
  decision.transfers = total.transfers;
  decision.package_fetches = total.package_fetches;
  decision.pack_events = total.pack_events;
  decision.unpack_events = total.unpack_events;
  decision.repacked = total.repacked;
  decision.epoch = state_.repack_rounds();
  return decision;
}

void StreamingEngine::maybe_run_probe() {
  if (probe_buffer_.size() < options_.probe_chunk) return;
  const obs::TraceSpan span("stream/probe");
  // Rebase times to the chunk start so the offline DP prices the chunk as a
  // standalone stream (absolute stream time must not inflate the μ-side).
  const Time base = probe_buffer_.front().time;
  for (RequestDraft& draft : probe_buffer_) {
    draft.time = draft.time - base + 1.0;
  }
  const std::size_t server_count =
      static_cast<std::size_t>(probe_max_server_) + 1;
  const RequestSequence chunk(server_count, state_.item_count(),
                              std::move(probe_buffer_));
  probe_buffer_.clear();  // moved-from; reset to a known state
  probe_buffer_.reserve(options_.probe_chunk);
  offline_probe_cost_ += solve_optimal_baseline(chunk, model_).total_cost;
  online_probe_cost_ = state_.value_now().total_cost;
  ++probe_chunks_;
  g_stream_probe_chunks.add();
}

RunReport StreamingEngine::make_report(
    const OnlineDpGreedyResult& result) const {
  // The same field mapping as the registry's online_dp_greedy adapter.
  RunReport report;
  report.solver = "online_dp_greedy";
  report.total_cost = result.total_cost;
  report.raw_cost = result.total_cost;
  report.total_item_accesses = result.total_item_accesses;
  report.transfer_cost = result.transfer_cost;
  report.package_count = result.pack_events;
  report.unpack_events = result.unpack_events;
  report.transfer_events = result.transfers + result.package_fetches;
  finalize_report(report);
  return report;
}

StreamingSnapshot StreamingEngine::snapshot() {
  const std::lock_guard<std::mutex> lock(mutex_);
  require(!finished_, "StreamingEngine::snapshot: engine already finished");
  const obs::TraceSpan span("stream/snapshot");
  g_stream_snapshots.add();

  StreamingSnapshot snapshot;
  snapshot.report = make_report(state_.value_now());
  snapshot.requests = state_.requests_seen();
  snapshot.epoch = state_.repack_rounds();
  snapshot.live_packages = state_.live_packages();
  snapshot.item_count = state_.item_count();
  snapshot.online_probe_cost = online_probe_cost_;
  snapshot.offline_probe_cost = offline_probe_cost_;
  snapshot.cost_ratio = offline_probe_cost_ > 0.0
                            ? online_probe_cost_ / offline_probe_cost_
                            : 0.0;
  snapshot.probe_chunks = probe_chunks_;
  snapshot.state_alloc_events = state_.alloc_events();

  RunReport& delta = snapshot.delta;
  delta.solver = snapshot.report.solver;
  delta.total_cost = snapshot.report.total_cost - last_snapshot_.total_cost;
  delta.raw_cost = snapshot.report.raw_cost - last_snapshot_.raw_cost;
  delta.cache_cost = snapshot.report.cache_cost - last_snapshot_.cache_cost;
  delta.transfer_cost =
      snapshot.report.transfer_cost - last_snapshot_.transfer_cost;
  delta.total_item_accesses =
      snapshot.report.total_item_accesses - last_snapshot_.total_item_accesses;
  delta.package_count =
      snapshot.report.package_count - last_snapshot_.package_count;
  delta.unpack_events =
      snapshot.report.unpack_events - last_snapshot_.unpack_events;
  delta.transfer_events =
      snapshot.report.transfer_events - last_snapshot_.transfer_events;
  delta.ave_cost =
      delta.total_item_accesses == 0
          ? 0.0
          : delta.total_cost /
                static_cast<double>(delta.total_item_accesses);
  last_snapshot_ = snapshot.report;
  return snapshot;
}

RunReport StreamingEngine::finish() {
  const std::lock_guard<std::mutex> lock(mutex_);
  require(!finished_, "StreamingEngine::finish: engine already finished");
  finished_ = true;
  // Flush a partial probe chunk so the ratio covers the whole stream.
  if (options_.probe_chunk > 0 && !probe_buffer_.empty()) {
    const std::size_t full = options_.probe_chunk;
    options_.probe_chunk = probe_buffer_.size();
    maybe_run_probe();
    options_.probe_chunk = full;
  }
  return make_report(state_.finalize());
}

std::size_t StreamingEngine::requests_seen() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return state_.requests_seen();
}

std::size_t StreamingEngine::epoch() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return state_.repack_rounds();
}

double StreamingEngine::cost_ratio() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return offline_probe_cost_ > 0.0 ? online_probe_cost_ / offline_probe_cost_
                                   : 0.0;
}

std::size_t StreamingEngine::probe_chunks() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return probe_chunks_;
}

Cost StreamingEngine::online_probe_cost() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return online_probe_cost_;
}

Cost StreamingEngine::offline_probe_cost() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return offline_probe_cost_;
}

}  // namespace dpg
