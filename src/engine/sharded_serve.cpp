#include "engine/sharded_serve.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <exception>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "parallel/mpmc_ring.hpp"
#include "parallel/spsc_ring.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace dpg {

namespace {

// Aggregate backpressure counters (same names as the 1×1 pipeline, so the
// metrics mean the same thing at every topology); per-shard/partition
// suffixed labels are registered at run time below.
const obs::Counter g_ring_enqueue_blocked =
    obs::counter("ring.enqueue_blocked");
const obs::Counter g_ring_dequeue_blocked =
    obs::counter("ring.dequeue_blocked");

/// Suffixed labels stop at 8 shards/partitions — beyond that the aggregate
/// counters still cover everything and the name registry stays bounded.
constexpr std::size_t kMaxLabelIndex = 8;

/// One block in flight from a shard to a partition.  `shard` names the free
/// ring the envelope recycles into; `seq` is the claimed block's global
/// sequence number (every partition receives every seq exactly once, so
/// the consumer-side reorder is a dense counter plus a holdback map).
struct Envelope {
  std::uint64_t seq = 0;
  std::uint32_t shard = 0;
  bool barrier = false;
  std::size_t rows_through = 0;
  RequestBlock block;
};

/// Same spin → yield → sleep ladder as the rings' internal waits.
struct Backoff {
  unsigned round = 0;
  void wait() {
    if (round < 64) {
      // Busy spin: a peer is typically one block away.
    } else if (round < 256) {
      std::this_thread::yield();
    } else {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
    ++round;
  }
};

/// The shard → partition transport, behind one interface so the shard and
/// partition loops are topology-agnostic.  Virtual dispatch is per block,
/// not per row — noise next to a push_batch.
class Transport {
 public:
  virtual ~Transport() = default;

  /// Shard i: takes a recycled envelope destined for partition j.
  /// Blocking; false only when the run is being aborted.
  virtual bool acquire(std::size_t i, std::size_t j, Envelope& env) = 0;
  /// Shard i: ships a filled envelope to partition j.  Blocking (this is
  /// where work-ring backpressure lands); false only on abort.
  virtual bool send(std::size_t i, std::size_t j, Envelope& env) = 0;
  /// Partition j: receives any inbound envelope.  Blocking; false when
  /// every producer is done and the inbound rings are drained.
  virtual bool receive(std::size_t j, Envelope& env) = 0;
  /// Partition j: returns a drained envelope to its shard's free ring.
  virtual void recycle(std::size_t j, Envelope& env) = 0;
  /// Shard i is done claiming; the last shard closes the work rings.
  virtual void shard_done(std::size_t i) = 0;
  /// Any thread: tear everything down (error path).  All blocking calls
  /// return false promptly afterwards.
  virtual void abort() = 0;

  /// Backpressure, summed per partition (defined for both topologies).
  [[nodiscard]] virtual std::uint64_t enqueue_blocked(std::size_t j) const = 0;
  [[nodiscard]] virtual std::uint64_t dequeue_blocked(std::size_t j) const = 0;
};

/// One SPSC ring per (shard, partition) pair, in both directions: N×M work
/// rings and N×M free rings.  Zero CAS anywhere; each consumer sweeps its
/// N inbound rings with try_pop.
class CrossbarTransport final : public Transport {
 public:
  CrossbarTransport(std::size_t shards, std::size_t partitions,
                    std::size_t ring_capacity)
      : shards_(shards), partitions_(partitions), done_(partitions) {
    // free ring capacity ring_capacity + 2 covers every envelope of the
    // (i, j) pair — in the work ring + one in each side's hands — so
    // recycle()'s try_push can never fail.
    for (std::size_t i = 0; i < shards_ * partitions_; ++i) {
      work_.push_back(std::make_unique<SpscRing<Envelope>>(ring_capacity));
      free_.push_back(
          std::make_unique<SpscRing<Envelope>>(ring_capacity + 2));
      Envelope env;
      for (std::size_t k = 0; k < ring_capacity + 2; ++k) {
        const bool ok = free_.back()->try_push(env);
        require(ok, "sharded_serve: free ring under-sized");
        env = Envelope{};
      }
    }
    for (auto& d : done_) d.assign(shards_, 0);
  }

  bool acquire(std::size_t i, std::size_t j, Envelope& env) override {
    return free_[i * partitions_ + j]->pop(env);
  }

  bool send(std::size_t i, std::size_t j, Envelope& env) override {
    return work_[i * partitions_ + j]->push(env);
  }

  bool receive(std::size_t j, Envelope& env) override {
    std::vector<char>& done = done_[j];
    Backoff backoff;
    for (;;) {
      std::size_t open = 0;
      for (std::size_t i = 0; i < shards_; ++i) {
        if (done[i] != 0) continue;
        SpscRing<Envelope>& ring = *work_[i * partitions_ + j];
        if (ring.try_pop(env)) return true;
        if (ring.closed()) {
          // Re-check after observing the close, or an envelope pushed just
          // before close() could be dropped.
          if (ring.try_pop(env)) return true;
          done[i] = 1;
          continue;
        }
        ++open;
      }
      if (open == 0) return false;
      idle_waits_[j].count.fetch_add(1, std::memory_order_relaxed);
      backoff.wait();
      // A fresh wait ladder per empty sweep would never reach the sleep
      // rung; keep the round count across sweeps until something arrives.
    }
  }

  void recycle(std::size_t j, Envelope& env) override {
    // Capacity covers every envelope of the pair, so this fails only when
    // the ring was closed by abort() — then the envelope is simply dropped.
    if (!free_[env.shard * partitions_ + j]->try_push(env)) env = Envelope{};
  }

  void shard_done(std::size_t i) override {
    for (std::size_t j = 0; j < partitions_; ++j) {
      work_[i * partitions_ + j]->close();
    }
  }

  void abort() override {
    for (auto& ring : work_) ring->close();
    for (auto& ring : free_) ring->close();
  }

  std::uint64_t enqueue_blocked(std::size_t j) const override {
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < shards_; ++i) {
      total += work_[i * partitions_ + j]->push_blocked();
    }
    return total;
  }

  std::uint64_t dequeue_blocked(std::size_t j) const override {
    return idle_waits_[j].count.load(std::memory_order_relaxed);
  }

 private:
  struct alignas(kCacheLineBytes) PaddedCount {
    std::atomic<std::uint64_t> count{0};
  };

  std::size_t shards_;
  std::size_t partitions_;
  std::vector<std::unique_ptr<SpscRing<Envelope>>> work_;  // [i*M + j]
  std::vector<std::unique_ptr<SpscRing<Envelope>>> free_;  // [i*M + j]
  std::vector<std::vector<char>> done_;  // per-consumer private state
  std::array<PaddedCount, 64> idle_waits_;  // ServeConfig caps partitions at 64
};

/// One MPMC work ring per partition (N producers each) and one MPMC free
/// ring per shard (M producers each): N + M rings total, CAS-claimed slots.
class MpmcTransport final : public Transport {
 public:
  MpmcTransport(std::size_t shards, std::size_t partitions,
                std::size_t ring_capacity)
      : active_shards_(shards) {
    for (std::size_t j = 0; j < partitions; ++j) {
      work_.push_back(std::make_unique<MpmcRing<Envelope>>(ring_capacity));
    }
    // Each shard's envelope pool must cover all its partitions' rings plus
    // the in-hand slots, same sizing argument as the crossbar per pair.
    const std::size_t pool = partitions * (ring_capacity + 2);
    for (std::size_t i = 0; i < shards; ++i) {
      free_.push_back(std::make_unique<MpmcRing<Envelope>>(pool));
      Envelope env;
      for (std::size_t k = 0; k < pool; ++k) {
        const bool ok = free_.back()->try_push(env);
        require(ok, "sharded_serve: free ring under-sized");
        env = Envelope{};
      }
    }
  }

  bool acquire(std::size_t i, std::size_t /*j*/, Envelope& env) override {
    return free_[i]->pop(env);
  }

  bool send(std::size_t /*i*/, std::size_t j, Envelope& env) override {
    return work_[j]->push(env);
  }

  bool receive(std::size_t j, Envelope& env) override {
    return work_[j]->pop(env);
  }

  void recycle(std::size_t /*j*/, Envelope& env) override {
    if (!free_[env.shard]->try_push(env)) env = Envelope{};
  }

  void shard_done(std::size_t /*i*/) override {
    if (active_shards_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      for (auto& ring : work_) ring->close();
    }
  }

  void abort() override {
    for (auto& ring : work_) ring->close();
    for (auto& ring : free_) ring->close();
  }

  std::uint64_t enqueue_blocked(std::size_t j) const override {
    return work_[j]->push_blocked();
  }

  std::uint64_t dequeue_blocked(std::size_t j) const override {
    return work_[j]->pop_blocked();
  }

 private:
  std::vector<std::unique_ptr<MpmcRing<Envelope>>> work_;  // per partition
  std::vector<std::unique_ptr<MpmcRing<Envelope>>> free_;  // per shard
  std::atomic<std::size_t> active_shards_;
};

/// Pending barrier: per-partition snapshots collected until all M arrive.
struct BarrierSlot {
  std::vector<std::optional<StreamingSnapshot>> parts;
  std::size_t filled = 0;
  std::size_t rows_through = 0;
};

}  // namespace

std::size_t serve_partition_of(ServerId server, std::span<const ItemId> items,
                               ServeRoute route, std::size_t partition_count) {
  if (partition_count <= 1) return 0;
  std::uint64_t key;
  if (route == ServeRoute::kByServer || items.empty()) {
    key = static_cast<std::uint64_t>(server);
    // Itemless rows under kByItemSet hash the server id, tagged into a
    // separate key universe so server 5 and item 5 don't collide.
    if (route == ServeRoute::kByItemSet) key |= std::uint64_t{1} << 63;
  } else {
    key = static_cast<std::uint64_t>(items.front());  // rows sorted: lowest
  }
  std::uint64_t state = key;
  return static_cast<std::size_t>(splitmix64(state) %
                                  static_cast<std::uint64_t>(partition_count));
}

RunReport merge_partition_reports(std::span<const RunReport> parts) {
  require(!parts.empty(), "merge_partition_reports: no partition reports");
  RunReport merged = parts[0];
  if (parts.size() == 1) return merged;  // identity, bit-for-bit
  for (std::size_t p = 1; p < parts.size(); ++p) {
    const RunReport& r = parts[p];
    // Fixed partition-index reduction order: this is what makes the merge
    // (and therefore the whole sharded run at a given M) deterministic.
    merged.total_cost += r.total_cost;
    merged.raw_cost += r.raw_cost;
    merged.transfer_cost += r.transfer_cost;
    merged.total_item_accesses += r.total_item_accesses;
    merged.package_count += r.package_count;
    merged.unpack_events += r.unpack_events;
    merged.transfer_events += r.transfer_events;
    merged.cache_segments += r.cache_segments;
    merged.phase1_seconds = std::max(merged.phase1_seconds, r.phase1_seconds);
    merged.solve_seconds = std::max(merged.solve_seconds, r.solve_seconds);
    merged.plans.insert(merged.plans.end(), r.plans.begin(), r.plans.end());
  }
  finalize_report(merged);  // ave_cost + bit-exact cache/transfer identity
  return merged;
}

StreamingSnapshot merge_partition_snapshots(
    std::span<const StreamingSnapshot> parts) {
  require(!parts.empty(), "merge_partition_snapshots: no partition snapshots");
  StreamingSnapshot merged = parts[0];
  if (parts.size() == 1) return merged;  // identity, bit-for-bit

  std::vector<RunReport> reports;
  std::vector<RunReport> deltas;
  reports.reserve(parts.size());
  deltas.reserve(parts.size());
  for (const StreamingSnapshot& s : parts) {
    reports.push_back(s.report);
    deltas.push_back(s.delta);
  }
  merged.report = merge_partition_reports(reports);
  merged.delta = merge_partition_reports(deltas);

  merged.requests = 0;
  merged.epoch = 0;
  merged.live_packages = 0;
  merged.item_count = 0;
  merged.online_probe_cost = 0.0;
  merged.offline_probe_cost = 0.0;
  merged.probe_chunks = 0;
  merged.state_alloc_events = 0;
  for (const StreamingSnapshot& s : parts) {
    merged.requests += s.requests;
    merged.epoch = std::max(merged.epoch, s.epoch);
    merged.live_packages += s.live_packages;
    // Upper bound: kByServer routing can discover one item on several
    // partitions, so the summed universe may over-count shared items.
    merged.item_count += s.item_count;
    merged.online_probe_cost += s.online_probe_cost;
    merged.offline_probe_cost += s.offline_probe_cost;
    merged.probe_chunks += s.probe_chunks;
    merged.state_alloc_events += s.state_alloc_events;
  }
  merged.cost_ratio = merged.offline_probe_cost > 0.0
                          ? merged.online_probe_cost /
                                merged.offline_probe_cost
                          : 0.0;
  return merged;
}

ShardedServeResult run_sharded_serve(
    ShardClaimSource& source, const CostModel& model,
    const ServeConfig& config, const StreamingOptions& engine_options,
    const ShardedSnapshotCallback& on_snapshot) {
  config.validate();
  const std::size_t shards = config.shard_count;
  const std::size_t partitions = config.partition_count;

  std::vector<std::unique_ptr<StreamingEngine>> engines;
  engines.reserve(partitions);
  for (std::size_t j = 0; j < partitions; ++j) {
    engines.push_back(std::make_unique<StreamingEngine>(model, engine_options));
  }

  std::unique_ptr<Transport> transport;
  if (config.ring_topology == ServeTopology::kCrossbar) {
    transport = std::make_unique<CrossbarTransport>(shards, partitions,
                                                    config.ring_capacity);
  } else {
    transport = std::make_unique<MpmcTransport>(shards, partitions,
                                                config.ring_capacity);
  }

  // Error plumbing: the first engine/system exception wins and tears the
  // topology down; decode errors travel through the source's error_seq
  // instead (see the header's error contract).
  std::mutex error_mutex;
  std::exception_ptr first_exception;
  std::atomic<bool> aborted{false};
  const auto record_exception = [&](std::exception_ptr e) {
    {
      const std::lock_guard<std::mutex> lock(error_mutex);
      if (!first_exception) first_exception = e;
    }
    aborted.store(true, std::memory_order_release);
    transport->abort();
  };

  // Barrier snapshots: collected per seq; the last contributor merges in
  // partition-index order and fires the callback while still holding the
  // mutex, so callbacks are serialized and arrive in barrier order.
  std::mutex barrier_mutex;
  std::map<std::uint64_t, BarrierSlot> barriers;

  // Indexed per thread — each slot written by exactly one thread.
  std::vector<std::size_t> shard_rows(shards, 0);
  std::vector<std::uint64_t> shard_batches(shards, 0);
  std::vector<std::size_t> partition_rows(partitions, 0);

  const auto shard_main = [&](std::size_t i) {
    try {
      RequestBlock claimed;
      std::vector<Envelope> envs(partitions);
      std::uint64_t seq = 0;
      std::size_t rows_through = 0;
      while (!aborted.load(std::memory_order_acquire) &&
             source.claim(claimed, seq, rows_through)) {
        ++shard_batches[i];
        shard_rows[i] += claimed.size();
        const std::size_t interval = config.snapshot_interval;
        const bool barrier =
            interval > 0 && (rows_through / interval) >
                                ((rows_through - claimed.size()) / interval);

        bool ok = true;
        for (std::size_t j = 0; j < partitions; ++j) {
          if (!transport->acquire(i, j, envs[j])) {
            ok = false;
            break;
          }
          envs[j].seq = seq;
          envs[j].shard = static_cast<std::uint32_t>(i);
          envs[j].barrier = barrier;
          envs[j].rows_through = rows_through;
          envs[j].block.clear();
        }
        if (!ok) break;

        if (partitions == 1) {
          // Single partition: the whole claimed block ships as-is (swap, so
          // zero-copy `.dpt` views ride through untouched and the envelope's
          // owned block becomes next claim's scratch).
          std::swap(envs[0].block, claimed);
        } else {
          const std::size_t rows = claimed.size();
          for (std::size_t r = 0; r < rows; ++r) {
            const ServerId server = claimed.server_of(r);
            const std::span<const ItemId> items = claimed.items_of(r);
            const std::size_t j = serve_partition_of(
                server, items, config.flow_route, partitions);
            envs[j].block.begin_row(server, claimed.time_of(r));
            for (const ItemId item : items) envs[j].block.push_item(item);
            envs[j].block.end_row();
          }
        }

        for (std::size_t j = 0; j < partitions; ++j) {
          if (!transport->send(i, j, envs[j])) {
            ok = false;
            break;
          }
        }
        if (!ok) break;
      }
    } catch (...) {
      record_exception(std::current_exception());
    }
    transport->shard_done(i);
  };

  const auto partition_main = [&](std::size_t j) {
    try {
      std::map<std::uint64_t, Envelope> holdback;
      std::uint64_t expected = 0;
      for (;;) {
        Envelope env;
        const auto held = holdback.find(expected);
        if (held != holdback.end()) {
          env = std::move(held->second);
          holdback.erase(held);
        } else {
          if (!transport->receive(j, env)) break;  // producers done+drained
          if (env.seq != expected) {
            holdback.emplace(env.seq, std::move(env));
            continue;
          }
        }
        ++expected;
        // Suppress blocks after a recorded decode failure: the failing seq
        // itself carries the valid prefix and is still served.  The
        // error_seq store happens-before the failing block's ring push, so
        // by the time any partition reaches a later seq the suppression is
        // visible (partitions consume in seq order).
        if (env.seq <= source.error_seq()) {
          partition_rows[j] += env.block.size();
          engines[j]->push_batch(env.block);
          if (env.barrier) {
            StreamingSnapshot snap = engines[j]->snapshot();
            const std::lock_guard<std::mutex> lock(barrier_mutex);
            BarrierSlot& slot = barriers[env.seq];
            if (slot.parts.empty()) slot.parts.resize(partitions);
            slot.parts[j] = std::move(snap);
            slot.rows_through = env.rows_through;
            if (++slot.filled == partitions) {
              std::vector<StreamingSnapshot> parts;
              parts.reserve(partitions);
              for (auto& part : slot.parts) parts.push_back(std::move(*part));
              const std::size_t rows = slot.rows_through;
              barriers.erase(env.seq);
              if (on_snapshot) {
                on_snapshot(merge_partition_snapshots(parts), rows);
              }
            }
          }
        }
        transport->recycle(j, env);
      }
      // Normal termination leaves the holdback empty (every claimed seq
      // ships to every partition); entries can only remain after an abort
      // tore the rings down mid-stream, and are dropped with it.
    } catch (...) {
      record_exception(std::current_exception());
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(shards + partitions);
  for (std::size_t j = 0; j < partitions; ++j) {
    threads.emplace_back(partition_main, j);
  }
  for (std::size_t i = 0; i < shards; ++i) threads.emplace_back(shard_main, i);
  for (std::thread& t : threads) t.join();

  if (first_exception) std::rethrow_exception(first_exception);

  ShardedServeResult result;
  if (source.error_seq() != ShardClaimSource::kNoError) {
    result.feed_error = source.error_message();
  }

  result.partition_reports.reserve(partitions);
  for (std::size_t j = 0; j < partitions; ++j) {
    result.partition_reports.push_back(engines[j]->finish());
    result.epoch = std::max(result.epoch, engines[j]->epoch());
    result.probe_chunks += engines[j]->probe_chunks();
  }
  result.report = merge_partition_reports(result.partition_reports);

  Cost online_probe = 0.0;
  Cost offline_probe = 0.0;
  for (std::size_t j = 0; j < partitions; ++j) {
    online_probe += engines[j]->online_probe_cost();
    offline_probe += engines[j]->offline_probe_cost();
  }
  result.cost_ratio = offline_probe > 0.0 ? online_probe / offline_probe : 0.0;

  for (std::size_t i = 0; i < shards; ++i) {
    result.stats.batches += shard_batches[i];
  }
  for (std::size_t j = 0; j < partitions; ++j) {
    result.stats.requests += partition_rows[j];
    result.stats.enqueue_blocked += transport->enqueue_blocked(j);
    result.stats.dequeue_blocked += transport->dequeue_blocked(j);
  }

  // Mirror the backpressure into the ring.* metrics (aggregate first, then
  // the per-shard/partition labels documented in docs/observability.md —
  // registration is idempotent and the adds are no-ops with obs off).
  g_ring_enqueue_blocked.add(result.stats.enqueue_blocked);
  g_ring_dequeue_blocked.add(result.stats.dequeue_blocked);
  for (std::size_t i = 0; i < std::min(shards, kMaxLabelIndex); ++i) {
    obs::counter("stream.shard_rows.s" + std::to_string(i))
        .add(shard_rows[i]);
    obs::counter("stream.shard_batches.s" + std::to_string(i))
        .add(shard_batches[i]);
  }
  for (std::size_t j = 0; j < std::min(partitions, kMaxLabelIndex); ++j) {
    obs::counter("ring.enqueue_blocked.p" + std::to_string(j))
        .add(transport->enqueue_blocked(j));
    obs::counter("ring.dequeue_blocked.p" + std::to_string(j))
        .add(transport->dequeue_blocked(j));
    obs::counter("stream.partition_rows.p" + std::to_string(j))
        .add(partition_rows[j]);
  }

  return result;
}

}  // namespace dpg
