// The Solver interface of the engine layer: one signature for every
// algorithm in the repo (RequestSequence + CostModel + SolverConfig →
// RunReport), so front ends dispatch by registry name instead of calling
// per-algorithm solve_* entry points with incompatible result structs.
#pragma once

#include <cstddef>
#include <string>

#include "core/cost_model.hpp"
#include "core/request.hpp"
#include "engine/run_report.hpp"
#include "solver/optimal_offline.hpp"

namespace dpg {

class ThreadPool;

/// The union of every wrapped solver's knobs.  Each adapter reads only the
/// fields its algorithm defines; the defaults match the per-solver option
/// structs, so a default SolverConfig reproduces a default solve_* call.
struct SolverConfig {
  /// Correlation threshold θ (packing solvers).
  double theta = 0.3;
  /// Multi-item grouping bound (group_dp_greedy).
  std::size_t max_group_size = 3;
  /// Sliding-window length for online Jaccard estimates (online_dp_greedy).
  std::size_t window = 200;
  /// Online re-pairing interval in requests (online_dp_greedy).
  std::size_t repack_interval = 50;
  /// Multiplier on the λ/μ break-even holding horizon (online policies).
  double hold_factor = 1.0;
  /// Options forwarded to the inner optimal-offline DP where one runs.
  OptimalOfflineOptions dp;
  /// Optional pool for the solvers with a parallel fan-out path.
  ThreadPool* pool = nullptr;
  /// Keep the per-flow schedules as RunReport::plans (replayable).  Turning
  /// this off skips the plan copies (costs are identical either way).
  bool keep_schedules = true;
};

/// A runnable solver.  Instances are stateful: adapters hold a
/// SolverWorkspace (and any other scratch) that is reused across run()
/// calls, so repeated runs through one Solver stay allocation-lean.  A
/// Solver must not be shared between concurrent runs.
class Solver {
 public:
  virtual ~Solver() = default;

  [[nodiscard]] virtual RunReport run(const RequestSequence& sequence,
                                      const CostModel& model,
                                      const SolverConfig& config) = 0;
};

/// Registry metadata for one solver (also the `dpgreedy list` row).
struct SolverInfo {
  std::string name;           // stable registry key, e.g. "dp_greedy"
  std::string algorithm;      // one-line description
  std::string paper_section;  // anchor into the paper, e.g. "Alg. 1"
  bool online = false;        // processes the sequence without lookahead
};

}  // namespace dpg
