// The Solver interface of the engine layer: one signature for every
// algorithm in the repo (RequestSequence + CostModel + SolverConfig →
// RunReport), so front ends dispatch by registry name instead of calling
// per-algorithm solve_* entry points with incompatible result structs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "core/cost_model.hpp"
#include "core/request.hpp"
#include "engine/run_report.hpp"
#include "solver/optimal_offline.hpp"

namespace dpg {

class ThreadPool;

/// The union of every wrapped solver's knobs.  Each adapter reads only the
/// fields its algorithm defines; the defaults match the per-solver option
/// structs, so a default SolverConfig reproduces a default solve_* call.
///
/// SolverConfig stays an aggregate (designated/member initialization keeps
/// working) but also offers a fluent builder surface:
///
///   auto config = SolverConfig{}.threads(8).telemetry(true).seed(42);
///
/// plus a string-keyed setter for front ends
/// (`config.with("theta", "0.4")`).  Both validate eagerly: a bad value or
/// an unknown field name throws InvalidArgument naming the valid fields, at
/// the call site rather than deep inside a solve.
struct SolverConfig {
  /// Correlation threshold θ (packing solvers).
  double theta = 0.3;
  /// Multi-item grouping bound (group_dp_greedy).
  std::size_t max_group_size = 3;
  /// Sliding-window length for online Jaccard estimates (online_dp_greedy).
  std::size_t window = 200;
  /// Online re-pairing interval in requests (online_dp_greedy).
  std::size_t repack_interval = 50;
  /// Multiplier on the λ/μ break-even holding horizon (online policies).
  double hold_factor = 1.0;
  /// Options forwarded to the inner optimal-offline DP where one runs.
  OptimalOfflineOptions dp;
  /// Optional externally owned pool for the solvers with a parallel fan-out
  /// path.  When set it wins over `thread_count` (the pool's width also
  /// fixes the deterministic Phase-2 shard layout).
  ThreadPool* pool = nullptr;
  /// Keep the per-flow schedules as RunReport::plans (replayable).  Turning
  /// this off skips the plan copies (costs are identical either way).
  bool keep_schedules = true;
  /// Phase-2 fan-out width: 0 = serial, N = shard the per-flow solves over
  /// an N-worker pool owned for the duration of the run.  Results are
  /// bit-identical at every value (see solver/phase2_shard.hpp).
  std::size_t thread_count = 0;
  /// Record telemetry (metrics delta + trace spans) for this run even when
  /// the process-wide obs switch is off.  Purely observational.
  bool telemetry_enabled = false;
  /// Seed for solvers with randomized tie-breaks.  Every built-in solver is
  /// deterministic, so today this only pins future stochastic policies.
  std::uint64_t rng_seed = 0;

  // Fluent builder surface (aggregates may have member functions).
  SolverConfig& threads(std::size_t n) noexcept {
    thread_count = n;
    return *this;
  }
  SolverConfig& telemetry(bool on) noexcept {
    telemetry_enabled = on;
    return *this;
  }
  SolverConfig& seed(std::uint64_t value) noexcept {
    rng_seed = value;
    return *this;
  }
  /// Toggle the branch-light SIMD DP kernels (solver/kernels.hpp).  On by
  /// default; off runs the scalar reference loops.  Results are
  /// bit-identical either way — the switch exists for cross-checking and
  /// micro-benchmark baselines.
  SolverConfig& kernels(bool on) noexcept {
    dp.use_kernels = on;
    return *this;
  }

  /// Sets one field by name from a string value ("theta", "max_group_size",
  /// "window", "repack_interval", "hold_factor", "keep_schedules",
  /// "threads", "telemetry", "seed", "kernels").  Throws InvalidArgument
  /// immediately on an unknown field (the message lists the valid ones), an
  /// unparsable value, or a value outside the field's range.
  SolverConfig& with(std::string_view field, std::string_view value);

  /// Range-checks every field (θ ∈ [0, 1], hold_factor > 0, window ≥ 1,
  /// repack_interval ≥ 1, max_group_size ≥ 2); throws InvalidArgument naming
  /// the offending field.  SolverRegistry::run calls this before dispatch.
  void validate() const;
};

/// A runnable solver.  Instances are stateful: adapters hold a
/// SolverWorkspace (and any other scratch) that is reused across run()
/// calls, so repeated runs through one Solver stay allocation-lean.  A
/// Solver must not be shared between concurrent runs.
class Solver {
 public:
  virtual ~Solver() = default;

  [[nodiscard]] virtual RunReport run(const RequestSequence& sequence,
                                      const CostModel& model,
                                      const SolverConfig& config) = 0;
};

/// Registry metadata for one solver (also the `dpgreedy list` row).
struct SolverInfo {
  std::string name;           // stable registry key, e.g. "dp_greedy"
  std::string algorithm;      // one-line description
  std::string paper_section;  // anchor into the paper, e.g. "Alg. 1"
  bool online = false;        // processes the sequence without lookahead
};

}  // namespace dpg
