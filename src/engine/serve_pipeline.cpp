#include "engine/serve_pipeline.hpp"

#include <exception>
#include <thread>

#include "obs/metrics.hpp"
#include "parallel/spsc_ring.hpp"
#include "util/error.hpp"

namespace dpg {

namespace {

const obs::Counter g_ring_enqueue_blocked =
    obs::counter("ring.enqueue_blocked");
const obs::Counter g_ring_dequeue_blocked =
    obs::counter("ring.dequeue_blocked");
const obs::Histogram g_ring_depth = obs::histogram("ring.depth");

}  // namespace

ServePipelineStats run_serve_pipeline(BlockSource& source,
                                      StreamingEngine& engine,
                                      const ServeConfig& config,
                                      const ServeBatchCallback& on_batch) {
  config.validate();

  // Filled blocks travel decode → engine on the work ring; drained blocks
  // travel back on the free ring.  ring_capacity + 2 blocks cover every
  // possible position (in-ring + one in each stage's hands), so neither
  // stage ever waits for an empty block unless the other stage holds it.
  SpscRing<RequestBlock> work(config.ring_capacity);
  SpscRing<RequestBlock> free_blocks(config.ring_capacity + 2);
  for (std::size_t i = 0; i < config.ring_capacity + 2; ++i) {
    RequestBlock block;
    const bool ok = free_blocks.try_push(block);
    require(ok, "serve_pipeline: free ring under-sized");
  }

  std::exception_ptr decode_error;
  std::thread decoder([&] {
    try {
      RequestBlock block;
      for (;;) {
        if (!free_blocks.pop(block)) break;  // engine stage shut down
        if (!source.next(block)) break;      // end of stream
        if (!work.push(block)) break;        // engine stage shut down
      }
    } catch (...) {
      // Every complete block decoded before the error is already in the
      // ring; the engine stage drains them before observing the close.
      decode_error = std::current_exception();
    }
    work.close();
  });

  ServePipelineStats stats;
  try {
    RequestBlock block;
    while (work.pop(block)) {
      if (obs::enabled()) g_ring_depth.record(work.size());
      const StreamingDecision decision = engine.push_batch(block);
      stats.requests += block.size();
      ++stats.batches;
      if (on_batch) on_batch(block, decision, stats.requests);
      if (!free_blocks.try_push(block)) block.clear();  // ring full: drop it
    }
  } catch (...) {
    // Unblock a decoder stuck pushing into a full work ring or popping an
    // empty free ring, then re-raise on the caller's thread.  (A decoder
    // parked inside source.next() on stream IO is not interruptible — see
    // the BlockSource::next contract in core/request_block.hpp.)
    work.close();
    free_blocks.close();
    decoder.join();
    throw;
  }
  free_blocks.close();
  decoder.join();

  g_ring_enqueue_blocked.add(work.push_blocked());
  g_ring_dequeue_blocked.add(work.pop_blocked());
  stats.enqueue_blocked = work.push_blocked();
  stats.dequeue_blocked = work.pop_blocked();

  if (decode_error) std::rethrow_exception(decode_error);
  return stats;
}

}  // namespace dpg
