// The engine's algorithm facade.
//
// Front ends dispatch solvers through the registry (engine/registry.hpp);
// the harnesses that genuinely need solver *internals* — figure sweeps over
// explicit pairs, the quickstart walkthrough, exact baselines — include
// this one header instead of reaching into solver/ directly.  It is the
// engine's only doorway to the concrete algorithm entry points, so the
// dependency "front ends → engine → solver" stays one-directional.
#pragma once

#include "solver/baselines.hpp"        // IWYU pragma: export
#include "solver/bruteforce.hpp"       // IWYU pragma: export
#include "solver/correlation.hpp"      // IWYU pragma: export
#include "solver/cut_operation.hpp"    // IWYU pragma: export
#include "solver/dp_greedy.hpp"        // IWYU pragma: export
#include "solver/greedy.hpp"           // IWYU pragma: export
#include "solver/group_solver.hpp"     // IWYU pragma: export
#include "solver/lower_bound.hpp"      // IWYU pragma: export
#include "solver/online.hpp"           // IWYU pragma: export
#include "solver/online_dp_greedy.hpp" // IWYU pragma: export
#include "solver/optimal_offline.hpp"  // IWYU pragma: export
#include "solver/pairing.hpp"          // IWYU pragma: export
#include "solver/subset_exact.hpp"     // IWYU pragma: export
#include "solver/temporal_correlation.hpp"  // IWYU pragma: export
#include "solver/workspace.hpp"        // IWYU pragma: export
