// The sharded serve topology: N decode shards × M engine partitions.
//
//   shard 0 ─┐                 ┌─ partition 0 (StreamingEngine)
//   shard 1 ─┼─► rings ────────┼─ partition 1 (StreamingEngine)
//     ...    │  (crossbar or   │    ...
//   shard N ─┘   MPMC per      └─ partition M
//                partition)         │
//                                   ▼
//                     deterministic merge → one RunReport
//
// Shards claim blocks from a ShardClaimSource (trace/shard_source.hpp) —
// each claim returns the block plus its global sequence number — decode
// them (CSV) or slice them (sequence/`.dpt`), and route every row to the
// partition that owns its flow:
//
//   routing key   kByServer:  the row's server id (a server's whole stream
//                             lands on one partition — per-server flows are
//                             never split)
//                 kByItemSet: the row's lowest item id (rows are sorted, so
//                             this is items[0]); itemless rows fall back to
//                             the server key
//   partition     splitmix64(key [^ tag]) mod M  — a fixed avalanche hash,
//                             so the assignment is stable across runs,
//                             platforms and (N, M) block layouts
//
// Transport is chosen by ServeConfig::ring_topology: a ring-per-(shard,
// partition) SPSC crossbar (N×M rings, zero CAS on the hot path) or one
// MPMC ring per partition (parallel/mpmc_ring.hpp; M rings, N producers).
// Envelopes recycle on matching free rings, so steady state allocates
// nothing per block.  Every claimed block ships exactly one envelope to
// every partition — empty sub-blocks included (push_batch on an empty
// block is a documented no-op) — so each partition receives the dense
// sequence 0, 1, 2, … and restores canonical trace order with a simple
// expected-seq counter plus a holdback map, regardless of which shard
// decoded what or how the rings interleaved.
//
// Determinism contract (see docs/streaming.md for the full argument):
//   * For a fixed partition count M, the merged report and every barrier
//     snapshot are bit-identical across every shard count N, batch size,
//     ring topology, ring capacity and thread schedule — each partition
//     consumes its routed sub-stream in canonical order, and the merge
//     reduces per-partition results in fixed partition-index order.
//   * At M = 1 the single partition ingests the exact global stream, so
//     the merged report is bit-identical to the 1×1 pipeline on every
//     trace.  For M > 1 it is bit-identical to the 1×1 report exactly on
//     flow-partitionable traces (streams whose cost decomposes over the
//     routed flow universes); on general traces the interleaving of
//     floating-point accumulation across partitions differs from the
//     global order, and the merged result is the canonical *partitioned*
//     answer, reproducible bit-for-bit at that M.
//
// Snapshots: barrier envelopes (claimed blocks whose cumulative row count
// crosses a multiple of ServeConfig::snapshot_interval) make every
// partition snapshot at the same global stream position; the last
// partition to reach a barrier merges the M snapshots in partition-index
// order and fires the callback (serialized, in barrier order).  The
// cost-ratio probe runs per partition over its own sub-stream; the merged
// ratio is Σ online / Σ offline over the per-partition probes.
//
// Error contract: a malformed row at global seq S (recorded by the source
// via atomic-min) suppresses every block after S — partitions process
// seq ≤ S in canonical order, then skip — so the engines ingest exactly
// the requests before the failure, same as the 1×1 paths; the provenance
// message lands in ShardedServeResult::feed_error rather than an
// exception, because the partition engines (and their final reports) live
// inside this call.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "core/cost_model.hpp"
#include "engine/run_report.hpp"
#include "engine/serve_config.hpp"
#include "engine/streaming_engine.hpp"
#include "trace/shard_source.hpp"

namespace dpg {

/// Stable row → partition assignment (exposed for tests and docs).
[[nodiscard]] std::size_t serve_partition_of(ServerId server,
                                             std::span<const ItemId> items,
                                             ServeRoute route,
                                             std::size_t partition_count);

/// Serial-order reduction of per-partition reports into one canonical
/// report: totals and event counts summed in partition-index order (the
/// fixed FP reduction order that makes the merge deterministic), timing
/// fields take the max (partitions ran concurrently), then finalize_report
/// restores the ave/cache identities.  Merging one report is the identity.
[[nodiscard]] RunReport merge_partition_reports(
    std::span<const RunReport> parts);

/// Same reduction for snapshots: report and delta merged as above; request
/// / package / allocation counts summed; epoch takes the max (partitions
/// repack independently); item_count is summed — an upper bound, since
/// kByServer routing can discover one item on several partitions; the
/// aggregate ratio is Σ online / Σ offline.  Merging one is the identity.
[[nodiscard]] StreamingSnapshot merge_partition_snapshots(
    std::span<const StreamingSnapshot> parts);

struct ShardedServeStats {
  std::size_t requests = 0;  // rows ingested across all partitions
  std::size_t batches = 0;   // blocks claimed from the source
  std::uint64_t enqueue_blocked = 0;  // shard waits on full work rings
  std::uint64_t dequeue_blocked = 0;  // partition idle-waits for work
};

struct ShardedServeResult {
  /// The canonical merged report (merge_partition_reports of the below).
  RunReport report;
  /// Per-partition final reports, index == partition.
  std::vector<RunReport> partition_reports;
  ShardedServeStats stats;
  /// Aggregate probe ratio Σ online / Σ offline after finish() flushed
  /// every partition's partial tail chunk (0 when the probe is off).
  double cost_ratio = 0.0;
  std::size_t probe_chunks = 0;  // offline solves across all partitions
  std::size_t epoch = 0;         // max partition epoch
  /// Decode-failure provenance ("" = the stream ended cleanly).  When set,
  /// the reports cover exactly the requests before the failure.
  std::string feed_error;
};

/// Merged barrier snapshot + the global row count it corresponds to.
using ShardedSnapshotCallback =
    std::function<void(const StreamingSnapshot&, std::size_t)>;

/// Runs the N×M topology to end of stream: spawns config.shard_count
/// decode threads and config.partition_count engine threads, joins them,
/// finishes every partition engine and returns the deterministic merge.
/// `engine_options` configures each partition engine (probe included).
/// Throws only on engine/system faults; decode errors surface through
/// ShardedServeResult::feed_error (see the error contract above).
ShardedServeResult run_sharded_serve(
    ShardClaimSource& source, const CostModel& model,
    const ServeConfig& config, const StreamingOptions& engine_options,
    const ShardedSnapshotCallback& on_snapshot = {});

}  // namespace dpg
