#include "engine/registry.hpp"

#include <algorithm>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"

namespace dpg {

namespace {

std::string joined_names(const std::vector<std::string>& names) {
  std::string out;
  for (const std::string& name : names) {
    if (!out.empty()) out += ", ";
    out += name;
  }
  return out;
}

/// Turns the obs layer on for one run when SolverConfig::telemetry asked for
/// it and the process-wide switch is off; restores the switch on scope exit
/// (exceptions included) so per-run telemetry never leaks into later runs.
class ScopedTelemetry {
 public:
  explicit ScopedTelemetry(bool wanted) : owns_(wanted && !obs::enabled()) {
    if (owns_) obs::set_enabled(true);
  }
  ~ScopedTelemetry() {
    if (owns_) obs::set_enabled(false);
  }
  ScopedTelemetry(const ScopedTelemetry&) = delete;
  ScopedTelemetry& operator=(const ScopedTelemetry&) = delete;

 private:
  bool owns_;
};

}  // namespace

void SolverRegistry::add(SolverInfo info, Factory factory) {
  require(!info.name.empty(), "SolverRegistry: empty solver name");
  require(factory != nullptr, "SolverRegistry: null factory");
  if (contains(info.name)) {
    throw InvalidArgument("SolverRegistry: duplicate solver name '" +
                          info.name + "'");
  }
  Entry entry{std::move(info), std::move(factory)};
  const auto at = std::lower_bound(
      entries_.begin(), entries_.end(), entry.info.name,
      [](const Entry& e, const std::string& name) { return e.info.name < name; });
  entries_.insert(at, std::move(entry));
}

bool SolverRegistry::contains(const std::string& name) const {
  return std::any_of(entries_.begin(), entries_.end(),
                     [&](const Entry& e) { return e.info.name == name; });
}

std::vector<std::string> SolverRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const Entry& e : entries_) out.push_back(e.info.name);
  return out;
}

std::vector<SolverInfo> SolverRegistry::list() const {
  std::vector<SolverInfo> out;
  out.reserve(entries_.size());
  for (const Entry& e : entries_) out.push_back(e.info);
  return out;
}

const SolverRegistry::Entry& SolverRegistry::entry(
    const std::string& name) const {
  for (const Entry& e : entries_) {
    if (e.info.name == name) return e;
  }
  throw InvalidArgument("unknown solver '" + name +
                        "' (valid: " + joined_names(names()) + ")");
}

const SolverInfo& SolverRegistry::info(const std::string& name) const {
  return entry(name).info;
}

std::unique_ptr<Solver> SolverRegistry::create(const std::string& name) const {
  return entry(name).factory();
}

RunReport SolverRegistry::run(const std::string& name,
                              const RequestSequence& sequence,
                              const CostModel& model,
                              const SolverConfig& config) const {
  config.validate();  // eager: reject a bad config before any work
  DPG_DEBUG << "dispatch " << name << " on " << sequence.size()
            << " requests (theta=" << config.theta
            << ", threads=" << config.thread_count << ")";
  const ScopedTelemetry telemetry(config.telemetry_enabled);
  if (!obs::enabled()) return create(name)->run(sequence, model, config);
  const obs::TraceSpan root("run/", name);
  const obs::MetricsSnapshot before = obs::snapshot_metrics();
  RunReport report = create(name)->run(sequence, model, config);
  report.metrics = obs::metrics_delta(before, obs::snapshot_metrics());
  DPG_DEBUG << name << " done: total " << report.total_cost << ", "
            << report.metrics.counters.size() << " counters bumped";
  return report;
}

std::vector<RunReport> run_solvers(const std::vector<std::string>& names,
                                   const RequestSequence& sequence,
                                   const CostModel& model,
                                   const SolverConfig& config) {
  const SolverRegistry& registry = builtin_registry();
  std::vector<RunReport> reports;
  reports.reserve(names.size());
  for (const std::string& name : names) {
    reports.push_back(registry.run(name, sequence, model, config));
  }
  return reports;
}

}  // namespace dpg
