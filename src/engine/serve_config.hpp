// ServeConfig: the one config object for the serve surface — per-push,
// pipelined (1×1) and sharded (N×M) ingest all parse into it, the CLI's
// `serve` flags map onto it one-for-one, and it carries the observational
// sinks (stats cadence, Prometheus file, /metrics listener, `.dpt` archive)
// that used to live in ad-hoc locals inside cmd_serve.
//
// Same contract as SolverConfig (engine/solver.hpp): a plain aggregate with
// defaulted members, fluent setters for the fields whose member names differ
// from the builder verb, a string-keyed `.with(field, value)` for flag
// parsing, and an eager `validate()` that throws InvalidArgument naming the
// offending field — so a bad flag fails at the parse site, not mid-stream.
//
//   ServeConfig{}.batch(1024).ring(8).shards(4).partitions(2)
//               .listen("0.0.0.0:9100").stats_every(100000)
//
// ServePipelineOptions (PR 9) folded into this type: batch_rows and
// ring_capacity kept their names, run_serve_pipeline now takes a
// ServeConfig directly (it reads only those two fields).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace dpg {

/// How a request row is assigned to an engine partition (sharded serve).
enum class ServeRoute {
  /// Hash the server id.  Each server's whole request stream lands on one
  /// partition, so per-server flows are never split.
  kByServer,
  /// Hash the lowest item id of the row (rows with no items fall back to
  /// the server hash).  Keeps each item's accesses on one partition.
  kByItemSet,
};

/// How decoded blocks travel from the N shards to the M partitions.
enum class ServeTopology {
  /// One SPSC ring per (shard, partition) pair — N×M rings, zero CAS on
  /// the hot path; each consumer sweeps its N inbound rings.
  kCrossbar,
  /// One MPMC ring per partition (parallel/mpmc_ring.hpp) — M rings, N
  /// producers each; fewer rings, CAS-claimed slots.
  kMpmc,
};

struct ServeConfig {
  /// Rows per block (the decode chunk and the push_batch amortization unit).
  std::size_t batch_rows = 1024;
  /// Per-ring capacity in blocks (rounded up to a power of two).
  std::size_t ring_capacity = 8;
  /// Decode shards N (1 = single decoder).
  std::size_t shard_count = 1;
  /// Engine partitions M (1 = single engine).
  std::size_t partition_count = 1;
  /// Flow-routing rule for partition_count > 1.
  ServeRoute flow_route = ServeRoute::kByServer;
  /// Shard → partition transport for the sharded runtime.
  ServeTopology ring_topology = ServeTopology::kCrossbar;
  /// Snapshot cadence in rows (0 = no periodic snapshots).
  std::size_t snapshot_interval = 1000;
  /// Stats-line cadence in rows (0 = off).
  std::size_t stats_interval = 0;
  /// Cost-ratio probe chunk in rows (0 = probe off).  Under partitioning
  /// each partition probes its own sub-stream (see docs/streaming.md).
  std::size_t probe_chunk_rows = 0;
  /// Stop after this many rows (0 = serve the whole stream).
  std::size_t max_request_rows = 0;
  /// host:port for the /metrics scrape listener ("" = no listener).
  std::string listen_address;
  /// Prometheus exposition file rewritten at snapshot cadence ("" = off).
  std::string prom_path;
  /// Archive the serve feed to this `.dpt` file while serving ("" = off).
  /// Requires shards == partitions == 1 (the archive preserves arrival
  /// order, which a sharded run does not reassemble).
  std::string archive_path;
  /// Use the two-stage decode→engine pipeline for the 1×1 topology.
  bool pipelined = false;

  // Fluent builder surface (member names differ where the verb reads
  // better at the call site, matching SolverConfig's convention).
  ServeConfig& batch(std::size_t rows) noexcept {
    batch_rows = rows;
    return *this;
  }
  ServeConfig& ring(std::size_t blocks) noexcept {
    ring_capacity = blocks;
    return *this;
  }
  ServeConfig& shards(std::size_t n) noexcept {
    shard_count = n;
    return *this;
  }
  ServeConfig& partitions(std::size_t n) noexcept {
    partition_count = n;
    return *this;
  }
  ServeConfig& route(ServeRoute r) noexcept {
    flow_route = r;
    return *this;
  }
  ServeConfig& topology(ServeTopology t) noexcept {
    ring_topology = t;
    return *this;
  }
  ServeConfig& snapshot_every(std::size_t rows) noexcept {
    snapshot_interval = rows;
    return *this;
  }
  ServeConfig& stats_every(std::size_t rows) noexcept {
    stats_interval = rows;
    return *this;
  }
  ServeConfig& probe_chunk(std::size_t rows) noexcept {
    probe_chunk_rows = rows;
    return *this;
  }
  ServeConfig& max_requests(std::size_t rows) noexcept {
    max_request_rows = rows;
    return *this;
  }
  ServeConfig& listen(std::string_view address) {
    listen_address = address;
    return *this;
  }
  ServeConfig& prom_out(std::string_view path) {
    prom_path = path;
    return *this;
  }
  ServeConfig& archive(std::string_view path) {
    archive_path = path;
    return *this;
  }
  ServeConfig& pipeline(bool on) noexcept {
    pipelined = on;
    return *this;
  }

  /// Sets one field by name from a string value ("batch", "ring", "shards",
  /// "partitions", "route", "topology", "snapshot_every", "stats_every",
  /// "probe_chunk", "max_requests", "listen", "prom_out", "archive",
  /// "pipeline").  Routes are "server"/"itemset"; topologies are
  /// "crossbar"/"mpmc".  Throws InvalidArgument immediately on an unknown
  /// field (the message lists the valid ones), an unparsable value, or a
  /// value outside the field's range.
  ServeConfig& with(std::string_view field, std::string_view value);

  /// Range-checks every field (batch ≥ 1, ring ≥ 1, shards ∈ [1, 64],
  /// partitions ∈ [1, 64], archive only at 1×1); throws InvalidArgument
  /// naming the offending field.  Every serve entry point calls this first.
  void validate() const;
};

/// Parse helpers shared by `.with` and the CLI (throw InvalidArgument on
/// anything but the documented spellings).
ServeRoute parse_serve_route(std::string_view value);
ServeTopology parse_serve_topology(std::string_view value);
const char* serve_route_name(ServeRoute route) noexcept;
const char* serve_topology_name(ServeTopology topology) noexcept;

}  // namespace dpg
