// The built-in solver adapters: each wraps one solve_* entry point behind
// the engine's Solver interface without re-pricing anything.  total_cost is
// copied bitwise from the wrapped result; the transfer-side breakdown is
// reconstructed from the solver's own schedules/decision records (each
// λ-charge counted once at its flow's rate), and cache_cost is the
// renormalized remainder (see engine/run_report.cpp).
#include <cstddef>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/flow.hpp"
#include "engine/registry.hpp"
#include "engine/streaming_engine.hpp"
#include "parallel/thread_pool.hpp"
#include "solver/baselines.hpp"
#include "solver/dp_greedy.hpp"
#include "solver/greedy.hpp"
#include "solver/group_solver.hpp"
#include "solver/online.hpp"
#include "solver/online_dp_greedy.hpp"
#include "solver/phase2_shard.hpp"
#include "solver/workspace.hpp"
#include "util/stopwatch.hpp"

namespace dpg {

namespace {

/// Resolves SolverConfig's two parallelism knobs into one pool pointer: an
/// externally owned `config.pool` wins (its width fixes the shard layout);
/// otherwise `threads(N)` leases an N-worker pool for this run.  Null means
/// the serial path.
class PoolLease {
 public:
  explicit PoolLease(const SolverConfig& config) {
    if (config.pool != nullptr) {
      pool_ = config.pool;
    } else if (config.thread_count > 0) {
      owned_ = std::make_unique<ThreadPool>(config.thread_count);
      pool_ = owned_.get();
    }
  }

  [[nodiscard]] ThreadPool* pool() const noexcept { return pool_; }

 private:
  ThreadPool* pool_ = nullptr;
  std::unique_ptr<ThreadPool> owned_;
};

std::string item_label(ItemId item) {
  return "item " + std::to_string(item);
}

std::string group_label(const std::vector<ItemId>& items) {
  std::string out = "{";
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(items[i]);
  }
  return out + "}";
}

/// Accounts one schedule into the report: every transfer edge is one
/// λ-charge at the flow's rate, every segment one cache interval.
void tally_schedule(const Schedule& schedule, const CostModel& model,
                    double rate, RunReport& report) {
  report.transfer_cost +=
      rate * model.lambda * static_cast<double>(schedule.transfers().size());
  report.transfer_events += schedule.transfers().size();
  report.cache_segments += schedule.segments().size();
}

void keep_plan(RunReport& report, const SolverConfig& config, Flow flow,
               Schedule schedule, std::string label) {
  if (!config.keep_schedules) return;
  report.plans.push_back(
      FlowPlan{std::move(flow), std::move(schedule), std::move(label)});
}

/// Standalone wall-clock of the Phase-1 packing analysis (correlation +
/// pairing/grouping) on the same inputs.  The wrapped solvers run their own
/// Phase 1 inside solve_seconds; this is an independent re-measurement, not
/// a component of it.
template <typename PackFn>
double measure_phase1(const RequestSequence& sequence, ThreadPool* pool,
                      PackFn&& pack) {
  CorrelationOptions correlation;
  correlation.pool = pool;
  Stopwatch stopwatch;
  const CorrelationAnalysis analysis(sequence, correlation);
  pack(analysis);
  return stopwatch.elapsed_seconds();
}

// ---------------------------------------------------------------------------
// DP_Greedy (Algorithm 1).

class DpGreedySolver final : public Solver {
 public:
  RunReport run(const RequestSequence& sequence, const CostModel& model,
                const SolverConfig& config) override {
    const PoolLease lease(config);
    DpGreedyOptions options;
    options.theta = config.theta;
    options.dp = config.dp;
    options.pool = lease.pool();

    RunReport report;
    report.solver = "dp_greedy";
    Stopwatch stopwatch;
    const DpGreedyResult result = solve_dp_greedy(sequence, model, options);
    report.solve_seconds = stopwatch.elapsed_seconds();
    report.phase1_seconds = measure_phase1(
        sequence, lease.pool(), [&](const CorrelationAnalysis& a) {
          return greedy_pairing(a, config.theta);
        });

    report.total_cost = result.total_cost;
    report.raw_cost = result.total_cost;
    report.total_item_accesses = result.total_item_accesses;
    report.package_count = result.packing.pairs.size();

    const double pack_rate = model.flow_multiplier(2);
    for (const PackageReport& pkg : result.packages) {
      tally_schedule(pkg.package_schedule, model, pack_rate, report);
      for (const SingletonService& service : pkg.services) {
        switch (service.choice) {
          case ServeChoice::kCacheSameServer:
            break;
          case ServeChoice::kTransferFromPrev:
            report.transfer_cost += model.lambda;
            ++report.transfer_events;
            break;
          case ServeChoice::kPackageFetch:
            report.transfer_cost += model.package_fetch_cost();
            ++report.transfer_events;
            break;
        }
      }
      keep_plan(report, config,
                make_package_flow(sequence, pkg.pair.a, pkg.pair.b),
                pkg.package_schedule,
                "package " + group_label({pkg.pair.a, pkg.pair.b}));
    }
    for (const SingleItemReport& single : result.singles) {
      tally_schedule(single.schedule, model, 1.0, report);
      keep_plan(report, config, make_item_flow(sequence, single.item),
                single.schedule, item_label(single.item));
    }
    finalize_report(report);
    return report;
  }
};

// ---------------------------------------------------------------------------
// Optimal baseline (per-item offline DP, Section VI).

class OptimalBaselineSolver final : public Solver {
 public:
  RunReport run(const RequestSequence& sequence, const CostModel& model,
                const SolverConfig& config) override {
    const PoolLease lease(config);
    RunReport report;
    report.solver = "optimal_baseline";
    Stopwatch stopwatch;
    const OptimalBaselineResult result =
        solve_optimal_baseline(sequence, model, config.dp, lease.pool());
    report.solve_seconds = stopwatch.elapsed_seconds();

    report.total_cost = result.total_cost;
    report.raw_cost = result.total_cost;
    report.total_item_accesses = result.total_item_accesses;
    for (const OptimalItemReport& item : result.items) {
      tally_schedule(item.schedule, model, 1.0, report);
      keep_plan(report, config, make_item_flow(sequence, item.item),
                item.schedule, item_label(item.item));
    }
    finalize_report(report);
    return report;
  }
};

// ---------------------------------------------------------------------------
// Package_Served (always-pack baseline, Section VI).

class PackageServedSolver final : public Solver {
 public:
  RunReport run(const RequestSequence& sequence, const CostModel& model,
                const SolverConfig& config) override {
    const PoolLease lease(config);
    RunReport report;
    report.solver = "package_served";
    Stopwatch stopwatch;
    const PackageServedResult result = solve_package_served(
        sequence, model, config.theta, config.dp, lease.pool());
    report.solve_seconds = stopwatch.elapsed_seconds();
    report.phase1_seconds = measure_phase1(
        sequence, lease.pool(), [&](const CorrelationAnalysis& a) {
          return greedy_pairing(a, config.theta, /*inclusive=*/true);
        });

    report.total_cost = result.total_cost;
    report.raw_cost = result.total_cost;
    report.total_item_accesses = result.total_item_accesses;
    report.package_count = result.packing.pairs.size();

    const double pack_rate = model.flow_multiplier(2);
    for (const PackageServedPair& pkg : result.pairs) {
      tally_schedule(pkg.schedule, model, pack_rate, report);
      keep_plan(report, config,
                make_union_flow(sequence, {pkg.pair.a, pkg.pair.b}),
                pkg.schedule,
                "package " + group_label({pkg.pair.a, pkg.pair.b}));
    }
    for (const OptimalItemReport& single : result.singles) {
      tally_schedule(single.schedule, model, 1.0, report);
      keep_plan(report, config, make_item_flow(sequence, single.item),
                single.schedule, item_label(single.item));
    }
    finalize_report(report);
    return report;
  }
};

// ---------------------------------------------------------------------------
// Group DP_Greedy (multi-item extension, Remarks).

class GroupDpGreedySolver final : public Solver {
 public:
  RunReport run(const RequestSequence& sequence, const CostModel& model,
                const SolverConfig& config) override {
    const PoolLease lease(config);
    GroupDpGreedyOptions options;
    options.theta = config.theta;
    options.max_group_size = config.max_group_size;
    options.dp = config.dp;
    options.pool = lease.pool();

    RunReport report;
    report.solver = "group_dp_greedy";
    Stopwatch stopwatch;
    const GroupDpGreedyResult result =
        solve_group_dp_greedy(sequence, model, options);
    report.solve_seconds = stopwatch.elapsed_seconds();
    report.phase1_seconds = measure_phase1(
        sequence, lease.pool(), [&](const CorrelationAnalysis& a) {
          return greedy_grouping(a, config.theta, config.max_group_size);
        });

    report.total_cost = result.total_cost;
    report.raw_cost = result.total_cost;
    report.total_item_accesses = result.total_item_accesses;
    report.package_count = result.groups.size();

    for (const GroupReport& group : result.groups) {
      const double rate =
          model.flow_multiplier(group.items.size());
      tally_schedule(group.package_schedule, model, rate, report);
      report.transfer_cost += group.partial_transfer_cost;
      report.transfer_events += group.partial_transfer_events;
      keep_plan(report, config, make_group_flow(sequence, group.items),
                group.package_schedule, "group " + group_label(group.items));
    }
    for (const SingleItemReport& single : result.singles) {
      tally_schedule(single.schedule, model, 1.0, report);
      keep_plan(report, config, make_item_flow(sequence, single.item),
                single.schedule, item_label(single.item));
    }
    finalize_report(report);
    return report;
  }
};

// ---------------------------------------------------------------------------
// Per-item-flow policies: greedy, chain, online break-even.  No
// whole-sequence solve_* exists for these; the canonical composition is one
// solve per item flow in ascending ItemId order (the loop every harness
// wrote by hand before the engine), so that is the contract here too.  The
// solves shard over the leased pool into per-item slots; the merge below
// runs in item order, so the FP accumulation matches the serial path bit
// for bit at any thread count.

/// One item's solve outcome, merged serially into the RunReport.
struct ItemOutcome {
  Cost cost = 0.0;
  Cost raw_cost = 0.0;
  Cost transfer_cost = 0.0;         // λ-side of this item's choices
  std::size_t transfer_events = 0;  // λ-charges behind that cost
  Schedule schedule;
};

template <typename SolveFn>
RunReport run_per_item(const std::string& name,
                       const RequestSequence& sequence,
                       const SolverConfig& config, SolverWorkspace& workspace,
                       SolveFn&& solve) {
  const PoolLease lease(config);
  RunReport report;
  report.solver = name;
  report.total_item_accesses = sequence.total_item_accesses();
  Stopwatch stopwatch;

  const std::size_t item_count = sequence.item_count();
  std::vector<ItemOutcome> outcomes(item_count);
  for_each_flow_sharded(
      lease.pool(), item_count,
      [&](std::size_t i, SolverWorkspace& ws) {
        make_item_flow(sequence, static_cast<ItemId>(i), ws.flow);
        outcomes[i] = solve(ws.flow, ws);
      },
      &workspace);

  for (ItemId item = 0; item < item_count; ++item) {
    ItemOutcome& outcome = outcomes[item];
    report.total_cost += outcome.cost;
    report.raw_cost += outcome.raw_cost;
    report.transfer_cost += outcome.transfer_cost;
    report.transfer_events += outcome.transfer_events;
    report.cache_segments += outcome.schedule.segments().size();
    keep_plan(report, config, make_item_flow(sequence, item),
              std::move(outcome.schedule), item_label(item));
  }
  report.solve_seconds = stopwatch.elapsed_seconds();
  finalize_report(report);
  return report;
}

class GreedySolver final : public Solver {
 public:
  RunReport run(const RequestSequence& sequence, const CostModel& model,
                const SolverConfig& config) override {
    return run_per_item(
        "greedy", sequence, config, workspace_,
        [&](const Flow& flow, SolverWorkspace&) {
          SolveResult solved =
              solve_greedy(flow, model, sequence.server_count());
          ItemOutcome outcome;
          outcome.cost = solved.cost;
          outcome.raw_cost = solved.raw_cost;
          outcome.transfer_cost =
              model.lambda *
              static_cast<double>(solved.schedule.transfers().size());
          outcome.transfer_events = solved.schedule.transfers().size();
          outcome.schedule = std::move(solved.schedule);
          return outcome;
        });
  }

 private:
  SolverWorkspace workspace_;
};

class ChainSolver final : public Solver {
 public:
  RunReport run(const RequestSequence& sequence, const CostModel& model,
                const SolverConfig& config) override {
    return run_per_item(
        "chain", sequence, config, workspace_,
        [&](const Flow& flow, SolverWorkspace&) {
          SolveResult solved = solve_chain(flow, model);
          ItemOutcome outcome;
          outcome.cost = solved.cost;
          outcome.raw_cost = solved.raw_cost;
          outcome.transfer_cost =
              model.lambda *
              static_cast<double>(solved.schedule.transfers().size());
          outcome.transfer_events = solved.schedule.transfers().size();
          outcome.schedule = std::move(solved.schedule);
          return outcome;
        });
  }

 private:
  SolverWorkspace workspace_;
};

class OnlineBreakEvenSolver final : public Solver {
 public:
  RunReport run(const RequestSequence& sequence, const CostModel& model,
                const SolverConfig& config) override {
    OnlineOptions options;
    options.hold_factor = config.hold_factor;
    return run_per_item(
        "online_break_even", sequence, config, workspace_,
        [&](const Flow& flow, SolverWorkspace&) {
          OnlineResult solved = solve_online_break_even(
              flow, model, sequence.server_count(), options);
          ItemOutcome outcome;
          outcome.cost = solved.cost;
          outcome.raw_cost = solved.raw_cost;
          outcome.transfer_cost =
              model.lambda * static_cast<double>(solved.transfer_count);
          outcome.transfer_events = solved.transfer_count;
          outcome.schedule = std::move(solved.schedule);
          return outcome;
        });
  }

 private:
  SolverWorkspace workspace_;
};

// ---------------------------------------------------------------------------
// Online DP_Greedy (windowed packing, no lookahead).

class OnlineDpGreedySolver final : public Solver {
 public:
  RunReport run(const RequestSequence& sequence, const CostModel& model,
                const SolverConfig& config) override {
    StreamingOptions options;
    options.online.theta = config.theta;
    options.online.window = config.window;
    options.online.repack_interval = config.repack_interval;
    options.online.hold_factor = config.hold_factor;
    options.item_count_hint = sequence.item_count();
    options.server_count_hint = sequence.server_count();

    // Drive the streaming engine one request at a time — the registry's
    // online solve IS the push-based path, so the batch goldens pin the
    // incremental engine bit for bit.  No reconstructed schedules: the
    // policy's replica set is not a Schedule, so plans stay empty and
    // cache_segments stays 0.
    Stopwatch stopwatch;
    StreamingEngine engine(model, options);
    for (const Request& r : sequence.requests()) {
      engine.push(r.server, r.time, r.items);
    }
    RunReport report = engine.finish();
    report.solve_seconds = stopwatch.elapsed_seconds();
    return report;
  }
};

template <typename S>
SolverRegistry::Factory factory_of() {
  return [] { return std::make_unique<S>(); };
}

SolverRegistry make_builtin_registry() {
  SolverRegistry registry;
  registry.add({"dp_greedy",
                "two-phase DP_Greedy: Jaccard pairing, package DP at 2α + "
                "greedy singletons",
                "Alg. 1", /*online=*/false},
               factory_of<DpGreedySolver>());
  registry.add({"optimal_baseline",
                "per-item optimal offline DP (non-packing extreme)",
                "Sec. VI", /*online=*/false},
               factory_of<OptimalBaselineSolver>());
  registry.add({"package_served",
                "always-pack extreme: union flows served at the 2α rate",
                "Sec. VI", /*online=*/false},
               factory_of<PackageServedSolver>());
  registry.add({"group_dp_greedy",
                "multi-item grouping extension of DP_Greedy",
                "Remarks", /*online=*/false},
               factory_of<GroupDpGreedySolver>());
  registry.add({"greedy",
                "per-item greedy cache-or-transfer (2-approximation)",
                "Sec. IV-B", /*online=*/false},
               factory_of<GreedySolver>());
  registry.add({"chain",
                "copy follows the request trajectory (transfer every hop)",
                "Sec. IV-B", /*online=*/false},
               factory_of<ChainSolver>());
  registry.add({"online_break_even",
                "per-item rent-or-buy with the λ/μ break-even horizon",
                "Ref. [6]", /*online=*/true},
               factory_of<OnlineBreakEvenSolver>());
  registry.add({"online_dp_greedy",
                "windowed Jaccard packing + break-even serving, no lookahead",
                "extension", /*online=*/true},
               factory_of<OnlineDpGreedySolver>());
  return registry;
}

}  // namespace

SolverRegistry& builtin_registry() {
  static SolverRegistry registry = make_builtin_registry();
  return registry;
}

}  // namespace dpg
