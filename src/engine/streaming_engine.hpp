// StreamingEngine — the long-lived, push-based serving front of the online
// path.
//
// The batch entry point (solve_online_dp_greedy) answers "what would the
// online policy have cost over this materialized trace".  Production serving
// is the opposite shape: requests arrive one at a time, forever, and the
// policy must decide *now*.  StreamingEngine owns an OnlineDpGreedyState
// (solver/online_state.hpp) and exposes exactly that contract:
//
//   StreamingEngine engine(model, options);
//   for (;;) {
//     auto d = engine.push(server, time, items);   // serve one request
//     ...
//     if (tick) auto s = engine.snapshot();        // canonical RunReport,
//   }                                              // delta + ratio probe
//   RunReport final = engine.finish();
//
// Pushing a trace request-by-request is bit-identical to the batch solver at
// every window/repack/hysteresis setting — the registry's online_dp_greedy
// solver is itself this engine driven over the sequence (engine/adapters.cpp),
// so the equivalence is exercised by every golden test.
//
// Epochs.  Phase-1 re-correlation happens inside the state every
// `repack_interval` pushes: pairs whose windowed Jaccard decayed below θ/2
// dissolve, then unpartnered pairs above θ re-pack greedily (the θ / θ-over-2
// hysteresis of the online extension).  Each such round is one *epoch*;
// Decision::epoch and StreamingSnapshot::epoch expose the running count, and
// the round is visible as an "epoch/repack" span in the obs trace.
//
// Cost-ratio probe.  With probe_chunk > 0, the engine buffers every pushed
// request; each time the buffer fills it runs the offline per-item optimum
// (solve_optimal_baseline) over that chunk — times rebased to the chunk
// start, so the DP's μ-horizon is not inflated by absolute stream time — and
// accumulates its cost.  snapshot().cost_ratio is then the running
// online-vs-offline ratio: an *estimate* of the empirical competitive ratio
// (the chunked offline optimum ignores cross-chunk carry-over, making it a
// slightly pessimistic divisor), bounded-memory by construction.
//
// Memory.  Steady state allocates nothing per push: the window ring reuses
// slot capacity, scratch vectors stay warm, and the package-slot table
// recycles dissolved slots.  snapshot().state_alloc_events is the
// trace.build_allocs-style counter proving it — constant once warm (asserted
// by bench/bm_stream on a 10M-request run).
//
// Thread safety.  push / snapshot / finish are mutually serialized by an
// internal mutex, so a monitoring thread may snapshot() while another
// push()es (exercised under TSan in tests/streaming_engine_test.cpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <span>
#include <vector>

#include "core/cost_model.hpp"
#include "core/request.hpp"
#include "core/request_block.hpp"
#include "core/types.hpp"
#include "engine/run_report.hpp"
#include "solver/online_state.hpp"

namespace dpg {

struct StreamingOptions {
  /// The online policy knobs (θ, window, repack_interval, hold_factor).
  OnlineDpGreedyOptions online;

  /// Run the offline optimal-baseline probe over every `probe_chunk` pushed
  /// requests (0 disables the probe and its buffering entirely).
  std::size_t probe_chunk = 0;

  /// Pre-size the item universe / server count (both grow on demand; the
  /// hints only avoid early growth reallocations).
  std::size_t item_count_hint = 0;
  std::size_t server_count_hint = 0;

  /// Throws InvalidArgument naming the offending field (delegates to
  /// OnlineDpGreedyOptions::validate for the policy knobs).
  void validate() const;
};

/// What one push cost and decided.
struct StreamingDecision {
  Cost cost_delta = 0.0;            // total cost charged by this push
  std::size_t transfers = 0;        // wire transfers (λ-charges)
  std::size_t package_fetches = 0;  // 2αλ package fetches (Observation 2)
  std::size_t pack_events = 0;      // pairs formed by this push's epoch
  std::size_t unpack_events = 0;    // pairs dissolved by this push's epoch
  bool repacked = false;            // this push ran an epoch re-pairing
  std::size_t epoch = 0;            // epochs completed so far (after this push)
};

/// One snapshot of the running engine.
struct StreamingSnapshot {
  /// Cumulative canonical report, as if the stream ended here: the same
  /// field mapping as the registry's online_dp_greedy report, valued
  /// non-destructively (live replicas charged to their last use).
  RunReport report;
  /// The same report's cost/event fields minus the previous snapshot's —
  /// what this snapshot interval contributed.
  RunReport delta;

  std::size_t requests = 0;       // pushes so far
  std::size_t epoch = 0;          // epochs (re-pairing rounds) so far
  std::size_t live_packages = 0;  // pairs currently packed
  std::size_t item_count = 0;     // item universe discovered so far

  // Ratio probe (zeros until the first chunk completes / probe disabled).
  Cost online_probe_cost = 0.0;   // online cost over the probed prefix
  Cost offline_probe_cost = 0.0;  // offline optimum over the same prefix
  double cost_ratio = 0.0;        // online / offline, the running estimate
  std::size_t probe_chunks = 0;   // offline solves run so far

  /// Steady-state allocation events in the policy state (ring slots +
  /// scratch growth) — constant once warm; see bench/bm_stream.
  std::uint64_t state_alloc_events = 0;
};

class StreamingEngine {
 public:
  StreamingEngine(const CostModel& model, const StreamingOptions& options);

  /// Serves one request.  `items` need not be sorted (the engine sorts and
  /// dedups into a scratch row); `time` must be strictly greater than every
  /// previous push and > 0.
  StreamingDecision push(ServerId server, Time time,
                         std::span<const ItemId> items);

  /// Serves every row of a block in trace order and returns the aggregate
  /// decision (counts summed, `repacked` if any row repacked, `epoch` after
  /// the last row).  This is the pipelined ingest entry: one mutex
  /// acquisition, one telemetry clock pair, and one counter update per
  /// block instead of per request — and block rows arrive
  /// pre-canonicalized (both block readers guarantee sorted unique items),
  /// so the per-push sort/dedup copy is skipped entirely.  The engine state
  /// after push_batch is bit-identical to per-row push() at every batch
  /// size, including the ratio probe (probe buffering interleaves per row).
  ///
  /// An empty block is a no-op: no mutex, no clock pair, no counter bumps
  /// (so sharded sources delivering empty tail blocks don't skew
  /// `stream.batch_ns`), and the returned decision is value-initialized —
  /// zero deltas, epoch 0.
  StreamingDecision push_batch(const RequestBlock& block);

  /// Values the stream as if it ended now (non-destructive) and returns the
  /// canonical cumulative report, the delta since the previous snapshot and
  /// the probe state.
  StreamingSnapshot snapshot();

  /// Closes the books and returns the final canonical report.  The engine
  /// is spent afterwards (further pushes throw).
  RunReport finish();

  [[nodiscard]] std::size_t requests_seen() const;
  [[nodiscard]] std::size_t epoch() const;

  /// Running online-vs-offline ratio over the probed prefix (0 until the
  /// first chunk).  Valid after finish() too — finish flushes the partial
  /// tail chunk first, so the final ratio covers the whole stream.
  [[nodiscard]] double cost_ratio() const;
  [[nodiscard]] std::size_t probe_chunks() const;

  /// The ratio's numerator / denominator over the probed prefix (0 until
  /// the first chunk; valid after finish() too).  Exposed so a sharded
  /// merge can aggregate Σ online / Σ offline across partition engines
  /// instead of averaging per-partition ratios.
  [[nodiscard]] Cost online_probe_cost() const;
  [[nodiscard]] Cost offline_probe_cost() const;

 private:
  [[nodiscard]] RunReport make_report(const OnlineDpGreedyResult& result) const;
  void maybe_run_probe();

  mutable std::mutex mutex_;
  CostModel model_;
  StreamingOptions options_;
  OnlineDpGreedyState state_;
  bool finished_ = false;

  std::vector<ItemId> row_;  // sorted/deduped scratch for push

  // Probe state (only touched when options_.probe_chunk > 0).
  std::vector<RequestDraft> probe_buffer_;
  ServerId probe_max_server_ = 0;
  Cost offline_probe_cost_ = 0.0;
  Cost online_probe_cost_ = 0.0;
  std::size_t probe_chunks_ = 0;

  // Previous snapshot's cumulative fields, for the delta.
  RunReport last_snapshot_;
};

}  // namespace dpg
