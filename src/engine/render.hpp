// Shared rendering of RunReports: the one place the comparison table, the
// CSV schema and the JSON shape are defined, so the CLI, the examples and
// the harnesses print identical rows for identical runs.
#pragma once

#include <string>
#include <vector>

#include "engine/run_report.hpp"

namespace dpg {

/// Column headers matching comparison_row().
[[nodiscard]] std::vector<std::string> comparison_header();

/// One human-readable table row for a report.
[[nodiscard]] std::vector<std::string> comparison_row(const RunReport& report);

/// The full comparison table (header + one row per report, aligned).
[[nodiscard]] std::string render_comparison(
    const std::vector<RunReport>& reports);

/// Machine-readable flat schema: header + one row per report.  Costs are
/// printed with full round-trip precision.
[[nodiscard]] std::vector<std::string> report_csv_header();
[[nodiscard]] std::vector<std::string> report_csv_row(const RunReport& report);

/// One report as a JSON object; keys match the CSV columns.
[[nodiscard]] std::string report_json(const RunReport& report);

}  // namespace dpg
