// Shared rendering of RunReports: the one place the comparison table, the
// CSV schema and the JSON shape are defined, so the CLI, the examples and
// the harnesses print identical rows for identical runs.
#pragma once

#include <string>
#include <vector>

#include "engine/run_report.hpp"

namespace dpg {

/// Column headers matching comparison_row().
[[nodiscard]] std::vector<std::string> comparison_header();

/// One human-readable table row for a report.
[[nodiscard]] std::vector<std::string> comparison_row(const RunReport& report);

/// The full comparison table (header + one row per report, aligned).
[[nodiscard]] std::string render_comparison(
    const std::vector<RunReport>& reports);

/// Machine-readable flat schema: header + one row per report.  Costs are
/// printed with full round-trip precision.
[[nodiscard]] std::vector<std::string> report_csv_header();
[[nodiscard]] std::vector<std::string> report_csv_row(const RunReport& report);

/// One report as a JSON object; keys match the CSV columns.  When the run
/// recorded telemetry (RunReport::metrics non-empty) the object gains a
/// trailing "metrics" member with counter values and histogram summaries.
[[nodiscard]] std::string report_json(const RunReport& report);

/// Human-readable table of the report's telemetry delta (one row per
/// counter/histogram); empty-bodied when the run recorded no telemetry.
[[nodiscard]] std::string render_metrics(const RunReport& report);

/// The telemetry delta as CSV rows `solver,kind,metric,value[,sum]` —
/// variable-length by design (the flat report_csv schema stays fixed).
[[nodiscard]] std::vector<std::string> metrics_csv_rows(const RunReport& report);

}  // namespace dpg
