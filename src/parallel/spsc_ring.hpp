// Bounded single-producer / single-consumer ring — the hand-off between the
// serve pipeline's decode stage and the engine thread.
//
// The classic two-index design: the producer owns `head_` (next write slot),
// the consumer owns `tail_` (next read slot), each published with release
// stores and observed with acquire loads, so the slot contents written
// before a push are visible to the pop that claims them.  Both indices are
// monotonically increasing and reduced modulo the (power-of-two) capacity on
// access, which sidesteps the classic "full vs empty" ambiguity without
// wasting a slot.
//
// Why not a mutex + deque: the ring is on the ingest hot path, where a
// blocked producer means the trace decoder stalls.  Here the uncontended
// push/pop cost is two relaxed loads and one release store, no allocation,
// and the only waiting is explicit (the blocking push/pop variants spin
// briefly, then yield, then sleep — and count every wait as backpressure,
// so `ring.enqueue_blocked` / `ring.dequeue_blocked` in the metrics tell
// which stage is the bottleneck).
//
// Each index lives on its own cache line together with the owner's cached
// copy of the *other* index, so steady-state pushes/pops do not ping-pong a
// shared line: the producer re-reads the consumer's index only when the ring
// looks full against the cached value (and vice versa).
//
// Thread contract: exactly one producer thread calls try_push/push/close,
// exactly one consumer thread calls try_pop/pop.  size()/capacity() and the
// backpressure counters may be read from anywhere (relaxed).
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <new>
#include <thread>
#include <utility>
#include <vector>

#include "util/error.hpp"

namespace dpg {

// A fixed 64 rather than std::hardware_destructive_interference_size: the
// library's ABI must not vary with compiler version or -mtune (GCC warns
// about exactly that), and 64 is the destructive-interference granularity
// on every x86-64 and the common AArch64 cores.
inline constexpr std::size_t kCacheLineBytes = 64;

template <typename T>
class SpscRing {
 public:
  /// Capacity is rounded up to a power of two (>= 2).
  explicit SpscRing(std::size_t capacity) {
    require(capacity > 0, "SpscRing: capacity must be >= 1");
    std::size_t rounded = 2;
    while (rounded < capacity) rounded *= 2;
    mask_ = rounded - 1;
    slots_.resize(rounded);
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  [[nodiscard]] std::size_t capacity() const noexcept { return mask_ + 1; }

  /// Occupied slots right now (approximate under concurrency; exact when
  /// the other side is quiescent).
  [[nodiscard]] std::size_t size() const noexcept {
    const std::uint64_t head = head_.index.load(std::memory_order_acquire);
    const std::uint64_t tail = tail_.index.load(std::memory_order_acquire);
    return static_cast<std::size_t>(head - tail);
  }

  /// Producer: attempts to move `value` into the ring.  False when full
  /// (value is left intact) or when the ring is closed.
  [[nodiscard]] bool try_push(T& value) {
    if (closed_.load(std::memory_order_relaxed)) return false;
    const std::uint64_t head = head_.index.load(std::memory_order_relaxed);
    if (head - head_.cached_other >= capacity()) {
      head_.cached_other = tail_.index.load(std::memory_order_acquire);
      if (head - head_.cached_other >= capacity()) return false;
    }
    slots_[static_cast<std::size_t>(head) & mask_] = std::move(value);
    head_.index.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Producer: blocking push.  Spins, yields, then sleeps until a slot
  /// frees up; each wait round counts once as backpressure.  Returns false
  /// only if the ring was closed while waiting (value left intact).
  bool push(T& value) {
    if (try_push(value)) return true;
    blocked_push_.fetch_add(1, std::memory_order_relaxed);
    Backoff backoff;
    while (!try_push(value)) {
      if (closed_.load(std::memory_order_acquire)) return false;
      backoff.wait();
    }
    return true;
  }

  /// Consumer: attempts to move the oldest element out.  False when empty.
  [[nodiscard]] bool try_pop(T& out) {
    const std::uint64_t tail = tail_.index.load(std::memory_order_relaxed);
    if (tail == tail_.cached_other) {
      tail_.cached_other = head_.index.load(std::memory_order_acquire);
      if (tail == tail_.cached_other) return false;
    }
    out = std::move(slots_[static_cast<std::size_t>(tail) & mask_]);
    tail_.index.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Consumer: blocking pop.  Waits until an element arrives; returns false
  /// when the ring is closed *and* drained (the end-of-stream signal).
  bool pop(T& out) {
    if (try_pop(out)) return true;
    blocked_pop_.fetch_add(1, std::memory_order_relaxed);
    Backoff backoff;
    for (;;) {
      if (try_pop(out)) return true;
      // Order matters: re-check contents after observing the closed flag,
      // or elements pushed just before close() could be dropped.
      if (closed_.load(std::memory_order_acquire)) return try_pop(out);
      backoff.wait();
    }
  }

  /// Producer: signals end of stream.  Pending elements stay poppable; a
  /// blocked consumer wakes up and drains them, then pop() returns false.
  void close() noexcept { closed_.store(true, std::memory_order_release); }

  [[nodiscard]] bool closed() const noexcept {
    return closed_.load(std::memory_order_acquire);
  }

  /// Backpressure counters: how many pushes/pops entered a blocking wait.
  [[nodiscard]] std::uint64_t push_blocked() const noexcept {
    return blocked_push_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t pop_blocked() const noexcept {
    return blocked_pop_.load(std::memory_order_relaxed);
  }

 private:
  /// Spin -> yield -> sleep, so a stalled peer costs microseconds of
  /// latency, not a busy core.
  struct Backoff {
    unsigned round = 0;
    void wait() {
      if (round < 64) {
        // Busy spin: the peer is typically one batch away.
      } else if (round < 256) {
        std::this_thread::yield();
      } else {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
      }
      ++round;
    }
  };

  /// An index plus its owner's cached copy of the peer index, padded to a
  /// cache line so producer and consumer never share one.
  struct alignas(kCacheLineBytes) PaddedIndex {
    std::atomic<std::uint64_t> index{0};
    std::uint64_t cached_other = 0;  // owner-thread private
  };

  std::vector<T> slots_;
  std::size_t mask_ = 0;
  PaddedIndex head_;  // producer-owned
  PaddedIndex tail_;  // consumer-owned
  alignas(kCacheLineBytes) std::atomic<bool> closed_{false};
  std::atomic<std::uint64_t> blocked_push_{0};
  std::atomic<std::uint64_t> blocked_pop_{0};
};

}  // namespace dpg
