// Bounded multi-producer / multi-consumer ring — the shared-queue topology
// option for the sharded serve path (engine/sharded_serve.hpp), where N
// decode shards feed M engine partitions through one queue per partition.
//
// This generalizes spsc_ring.hpp's monotonic-counter design to many peers
// with the classic bounded-MPMC scheme: every slot carries its own sequence
// atomic, and the global enqueue/dequeue positions advance by CAS.  A
// producer claims slot `pos` when the slot's sequence equals `pos` (slot
// empty, this generation); it writes the value and publishes by storing
// sequence `pos + 1`.  A consumer claims slot `pos` when the sequence equals
// `pos + 1` (value present); it moves the value out and releases the slot to
// the *next* generation by storing `pos + capacity`.  The per-slot sequence
// is both the full/empty test and the publication fence, so producers never
// wait on each other's stores — a slow producer delays only its own slot.
//
// Layout mirrors the SPSC ring: the enqueue and dequeue positions live on
// separate cache lines (as does the closed flag), capacity is rounded to a
// power of two, and the blocking push/pop variants reuse the same
// spin → yield → sleep backoff with the same backpressure counters, so
// `ring.enqueue_blocked` / `ring.dequeue_blocked` mean the same thing for
// both topologies.
//
// Thread contract: any number of threads may call try_push/push, any number
// may call try_pop/pop, and close() may race with all of them.  Per-slot FIFO
// holds (a pop claims the oldest published slot), but cross-thread ordering
// between concurrent producers is whatever the CAS race decides — the
// sharded consumer reorders by block sequence number anyway.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <thread>
#include <utility>
#include <vector>

#include "parallel/spsc_ring.hpp"  // kCacheLineBytes
#include "util/error.hpp"

namespace dpg {

template <typename T>
class MpmcRing {
 public:
  /// Capacity is rounded up to a power of two (>= 2).
  explicit MpmcRing(std::size_t capacity) {
    require(capacity > 0, "MpmcRing: capacity must be >= 1");
    std::size_t rounded = 2;
    while (rounded < capacity) rounded *= 2;
    mask_ = rounded - 1;
    slots_ = std::vector<Slot>(rounded);
    for (std::size_t i = 0; i < rounded; ++i) {
      slots_[i].sequence.store(i, std::memory_order_relaxed);
    }
  }

  MpmcRing(const MpmcRing&) = delete;
  MpmcRing& operator=(const MpmcRing&) = delete;

  [[nodiscard]] std::size_t capacity() const noexcept { return mask_ + 1; }

  /// Occupied slots right now (approximate under concurrency; exact when
  /// all peers are quiescent).
  [[nodiscard]] std::size_t size() const noexcept {
    const std::uint64_t head = enqueue_.pos.load(std::memory_order_acquire);
    const std::uint64_t tail = dequeue_.pos.load(std::memory_order_acquire);
    return head >= tail ? static_cast<std::size_t>(head - tail) : 0;
  }

  /// Producer: attempts to move `value` into the ring.  False when full
  /// (value left intact) or when the ring is closed.
  [[nodiscard]] bool try_push(T& value) {
    if (closed_.load(std::memory_order_relaxed)) return false;
    std::uint64_t pos = enqueue_.pos.load(std::memory_order_relaxed);
    for (;;) {
      Slot& slot = slots_[static_cast<std::size_t>(pos) & mask_];
      const std::uint64_t seq = slot.sequence.load(std::memory_order_acquire);
      const std::int64_t diff =
          static_cast<std::int64_t>(seq) - static_cast<std::int64_t>(pos);
      if (diff == 0) {
        // Slot free for this generation; race other producers for it.
        if (enqueue_.pos.compare_exchange_weak(pos, pos + 1,
                                               std::memory_order_relaxed)) {
          slot.value = std::move(value);
          slot.sequence.store(pos + 1, std::memory_order_release);
          return true;
        }
        // CAS refreshed `pos`; retry against the new slot.
      } else if (diff < 0) {
        // Slot still holds the previous generation's value: ring is full.
        return false;
      } else {
        // Another producer already claimed this position; catch up.
        pos = enqueue_.pos.load(std::memory_order_relaxed);
      }
    }
  }

  /// Producer: blocking push.  Spins, yields, then sleeps until a slot frees
  /// up; each wait round counts once as backpressure.  Returns false only if
  /// the ring was closed while waiting (value left intact).
  bool push(T& value) {
    if (try_push(value)) return true;
    blocked_push_.fetch_add(1, std::memory_order_relaxed);
    Backoff backoff;
    while (!try_push(value)) {
      if (closed_.load(std::memory_order_acquire)) return false;
      backoff.wait();
    }
    return true;
  }

  /// Consumer: attempts to move the oldest published element out.  False
  /// when empty.
  [[nodiscard]] bool try_pop(T& out) {
    std::uint64_t pos = dequeue_.pos.load(std::memory_order_relaxed);
    for (;;) {
      Slot& slot = slots_[static_cast<std::size_t>(pos) & mask_];
      const std::uint64_t seq = slot.sequence.load(std::memory_order_acquire);
      const std::int64_t diff =
          static_cast<std::int64_t>(seq) - static_cast<std::int64_t>(pos + 1);
      if (diff == 0) {
        // Value published; race other consumers for it.
        if (dequeue_.pos.compare_exchange_weak(pos, pos + 1,
                                               std::memory_order_relaxed)) {
          out = std::move(slot.value);
          // Release the slot to the next generation of producers.
          slot.sequence.store(pos + capacity(), std::memory_order_release);
          return true;
        }
      } else if (diff < 0) {
        // Slot not yet published for this generation: ring is empty.
        return false;
      } else {
        pos = dequeue_.pos.load(std::memory_order_relaxed);
      }
    }
  }

  /// Consumer: blocking pop.  Waits until an element arrives; returns false
  /// when the ring is closed *and* drained (the end-of-stream signal).
  bool pop(T& out) {
    if (try_pop(out)) return true;
    blocked_pop_.fetch_add(1, std::memory_order_relaxed);
    Backoff backoff;
    for (;;) {
      if (try_pop(out)) return true;
      // Order matters: re-check contents after observing the closed flag,
      // or elements pushed just before close() could be dropped.
      if (closed_.load(std::memory_order_acquire)) return try_pop(out);
      backoff.wait();
    }
  }

  /// Any thread: signals end of stream.  Pending elements stay poppable;
  /// blocked consumers wake up and drain them, then pop() returns false.
  void close() noexcept { closed_.store(true, std::memory_order_release); }

  [[nodiscard]] bool closed() const noexcept {
    return closed_.load(std::memory_order_acquire);
  }

  /// Backpressure counters: how many pushes/pops entered a blocking wait.
  [[nodiscard]] std::uint64_t push_blocked() const noexcept {
    return blocked_push_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t pop_blocked() const noexcept {
    return blocked_pop_.load(std::memory_order_relaxed);
  }

 private:
  /// Same spin → yield → sleep ladder as SpscRing::Backoff.
  struct Backoff {
    unsigned round = 0;
    void wait() {
      if (round < 64) {
        // Busy spin: the peer is typically one batch away.
      } else if (round < 256) {
        std::this_thread::yield();
      } else {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
      }
      ++round;
    }
  };

  /// Value plus its generation sequence, padded so concurrent claims of
  /// adjacent slots do not share a cache line through the sequence atomics.
  struct alignas(kCacheLineBytes) Slot {
    std::atomic<std::uint64_t> sequence{0};
    T value{};
  };

  struct alignas(kCacheLineBytes) PaddedPos {
    std::atomic<std::uint64_t> pos{0};
  };

  std::vector<Slot> slots_;
  std::size_t mask_ = 0;
  PaddedPos enqueue_;
  PaddedPos dequeue_;
  alignas(kCacheLineBytes) std::atomic<bool> closed_{false};
  std::atomic<std::uint64_t> blocked_push_{0};
  std::atomic<std::uint64_t> blocked_pop_{0};
};

}  // namespace dpg
