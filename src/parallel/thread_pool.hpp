// Fixed-size worker pool with a blocking task queue.
//
// The evaluation sweeps (Figs. 11–13) and the per-package solves in Phase 2
// are embarrassingly parallel; this pool fans them out.  Design follows the
// Core Guidelines concurrency advice: tasks are value-captured closures,
// shutdown is deterministic (join in the destructor), and no task may outlive
// the pool.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace dpg {

class ThreadPool {
 public:
  /// Spawns `worker_count` workers (0 = std::thread::hardware_concurrency,
  /// floored at 1).
  explicit ThreadPool(std::size_t worker_count = 0);

  /// Drains outstanding tasks, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t worker_count() const noexcept {
    return workers_.size();
  }

  /// Enqueues a task and returns a future for its result. Exceptions thrown
  /// by the task are captured into the future.
  template <typename F>
  [[nodiscard]] auto submit(F&& task) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto packaged =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(task));
    std::future<R> result = packaged->get_future();
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      queue_.emplace_back([packaged] { (*packaged)(); });
      note_submit(queue_.size());
    }
    wake_.notify_one();
    return result;
  }

 private:
  void worker_loop();

  /// Telemetry hook: counts the submission and samples the queue depth
  /// (called under mutex_; a no-op unless telemetry is enabled).
  static void note_submit(std::size_t queue_depth) noexcept;

  std::mutex mutex_;
  std::condition_variable wake_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

/// Runs `body(chunk, begin, end)` over contiguous index ranges covering
/// [0, count), one task per chunk.  `setup(chunk_count)`, when provided, is
/// invoked on the calling thread before any chunk is scheduled so callers
/// can size per-chunk state (shard maps, reusable workspaces) that each
/// chunk then owns exclusively.  Blocks until all chunks finish; the first
/// exception (if any) is rethrown on the calling thread.
void parallel_for_chunks(
    ThreadPool& pool, std::size_t count,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& body,
    const std::function<void(std::size_t)>& setup = {});

/// Runs `body(i)` for every i in [0, count), distributing contiguous chunks
/// over `pool`.  Blocks until all iterations finish; the first exception (if
/// any) is rethrown on the calling thread.  `body` must be safe to invoke
/// concurrently for distinct indices.
void parallel_for(ThreadPool& pool, std::size_t count,
                  const std::function<void(std::size_t)>& body);

/// Maps `make(i)` over [0, count) in parallel and collects results in order.
template <typename T>
std::vector<T> parallel_map(ThreadPool& pool, std::size_t count,
                            const std::function<T(std::size_t)>& make) {
  std::vector<T> out(count);
  parallel_for(pool, count, [&](std::size_t i) { out[i] = make(i); });
  return out;
}

}  // namespace dpg
