#include "parallel/thread_pool.hpp"

#include <algorithm>
#include <exception>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace dpg {

namespace {

const obs::Counter g_tasks_submitted = obs::counter("pool.tasks_submitted");
const obs::Counter g_tasks_completed = obs::counter("pool.tasks_completed");
const obs::Histogram g_queue_depth = obs::histogram("pool.queue_depth");
const obs::Histogram g_task_ns = obs::histogram("pool.task_ns");

}  // namespace

ThreadPool::ThreadPool(std::size_t worker_count) {
  std::size_t n = worker_count;
  if (n == 0) {
    n = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::note_submit(std::size_t queue_depth) noexcept {
  if (!obs::enabled()) return;
  g_tasks_submitted.add();
  g_queue_depth.record(queue_depth);
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      // The wait is the worker's idle time; the span makes gaps between
      // busy spans attributable in the trace view.
      const obs::TraceSpan idle("pool/idle");
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    {
      const obs::TraceSpan busy("pool/task");
      const std::uint64_t start_ns =
          obs::enabled() ? obs::trace_now_ns() : 0;
      task();
      if (obs::enabled()) {
        g_tasks_completed.add();
        g_task_ns.record(obs::trace_now_ns() - start_ns);
      }
    }
  }
}

void parallel_for_chunks(
    ThreadPool& pool, std::size_t count,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& body,
    const std::function<void(std::size_t)>& setup) {
  if (count == 0) return;
  const std::size_t chunk_count =
      std::min(count, std::max<std::size_t>(1, pool.worker_count() * 4));
  if (setup) setup(chunk_count);
  std::vector<std::future<void>> pending;
  pending.reserve(chunk_count);
  for (std::size_t c = 0; c < chunk_count; ++c) {
    const std::size_t begin = count * c / chunk_count;
    const std::size_t end = count * (c + 1) / chunk_count;
    pending.push_back(pool.submit([&body, c, begin, end] {
      body(c, begin, end);
    }));
  }
  std::exception_ptr first_error;
  for (auto& f : pending) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

void parallel_for(ThreadPool& pool, std::size_t count,
                  const std::function<void(std::size_t)>& body) {
  parallel_for_chunks(pool, count,
                      [&body](std::size_t, std::size_t begin, std::size_t end) {
                        for (std::size_t i = begin; i < end; ++i) body(i);
                      });
}

}  // namespace dpg
