#include "parallel/thread_pool.hpp"

#include <algorithm>
#include <exception>

namespace dpg {

ThreadPool::ThreadPool(std::size_t worker_count) {
  std::size_t n = worker_count;
  if (n == 0) {
    n = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void parallel_for_chunks(
    ThreadPool& pool, std::size_t count,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& body,
    const std::function<void(std::size_t)>& setup) {
  if (count == 0) return;
  const std::size_t chunk_count =
      std::min(count, std::max<std::size_t>(1, pool.worker_count() * 4));
  if (setup) setup(chunk_count);
  std::vector<std::future<void>> pending;
  pending.reserve(chunk_count);
  for (std::size_t c = 0; c < chunk_count; ++c) {
    const std::size_t begin = count * c / chunk_count;
    const std::size_t end = count * (c + 1) / chunk_count;
    pending.push_back(pool.submit([&body, c, begin, end] {
      body(c, begin, end);
    }));
  }
  std::exception_ptr first_error;
  for (auto& f : pending) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

void parallel_for(ThreadPool& pool, std::size_t count,
                  const std::function<void(std::size_t)>& body) {
  parallel_for_chunks(pool, count,
                      [&body](std::size_t, std::size_t begin, std::size_t end) {
                        for (std::size_t i = begin; i < end; ++i) body(i);
                      });
}

}  // namespace dpg
