// Human-readable rendering of replay metrics (used by examples and the CLI).
#pragma once

#include <string>

#include "sim/replay.hpp"

namespace dpg {

/// Multi-line summary: feasibility, cost, transfer/cache totals, hit ratio,
/// and a per-server occupancy table for the busiest servers.
[[nodiscard]] std::string render_replay_report(const ReplayMetrics& metrics,
                                               std::size_t top_servers = 8);

}  // namespace dpg
